//! Betweenness Centrality via Brandes's algorithm, single source.
//!
//! Two sweeps of `EdgeMap`s: a forward level-synchronous sweep over the
//! graph counting shortest paths (`sigma`), then a backward sweep over the
//! transpose accumulating dependency scores (`delta`). This is why the
//! artifact's `bc` binary requires the `.tgr` transpose files.

use blaze_core::{vertex_map, BlazeEngine, VertexArray};
use blaze_frontier::VertexSubset;
use blaze_types::{Result, VertexId};

use crate::mode::ExecMode;
use crate::translate::to_original_order;

/// Out-of-core single-source Brandes. `out_engine` runs over the graph,
/// `in_engine` over its transpose. Returns the dependency scores
/// `delta[v]` for shortest paths out of `root`; both `root` and the score
/// indices are original vertex ids regardless of physical layout.
pub fn bc(
    out_engine: &BlazeEngine,
    in_engine: &BlazeEngine,
    root: VertexId,
    mode: ExecMode,
) -> Result<VertexArray<f64>> {
    if mode == ExecMode::Async {
        // Sigma counting and dependency accumulation are sums over exact
        // level structure — not a monotone relaxation.
        return Err(blaze_types::BlazeError::Config(
            "bc is not monotone; async mode supports BFS/SSSP/WCC/k-core/labelprop".into(),
        ));
    }
    let n = out_engine.num_vertices();
    assert_eq!(
        n,
        in_engine.num_vertices(),
        "transpose must match the graph"
    );
    let layout = out_engine.graph().layout();
    assert_eq!(
        layout,
        in_engine.graph().layout(),
        "graph and transpose must share one vertex layout"
    );
    let root = layout.to_physical(root);
    let depth = VertexArray::<i64>::new(n, -1);
    let sigma = VertexArray::<f64>::new(n, 0.0);
    depth.set(root as usize, 0);
    sigma.set(root as usize, 1.0);

    // --- Forward sweep: shortest-path counts, level by level. ---
    let mut levels: Vec<VertexSubset> = vec![VertexSubset::single(n, root)];
    while let Some(current) = levels.last() {
        if current.is_empty() {
            levels.pop();
            break;
        }
        let level = levels.len() as i64;
        // SCATTER: path count of the source. COND: only vertices not yet
        // finalized at a shallower level. GATHER: claim depth on first
        // touch, then accumulate sigma for same-level touches.
        let scatter = |s: VertexId, _d: VertexId| sigma.get(s as usize);
        let cond = |d: VertexId| {
            let dd = depth.get(d as usize);
            dd == -1 || dd == level
        };
        let next = match mode {
            ExecMode::Binned => out_engine.edge_map(
                &current.clone_members(n),
                scatter,
                |d: VertexId, v: f64| {
                    let i = d as usize;
                    if depth.get(i) == -1 {
                        depth.set(i, level);
                    }
                    if depth.get(i) == level {
                        sigma.set(i, sigma.get(i) + v);
                        true
                    } else {
                        false
                    }
                },
                cond,
                true,
            )?,
            ExecMode::Sync => out_engine.edge_map_sync(
                &current.clone_members(n),
                scatter,
                |d: VertexId, v: f64| {
                    let i = d as usize;
                    // Claim the depth with CAS, then accumulate atomically.
                    let _ = depth.compare_exchange(i, -1, level);
                    if depth.get(i) == level {
                        sigma.fetch_add(i, v);
                        true
                    } else {
                        false
                    }
                },
                cond,
                true,
            )?,
            ExecMode::Async => unreachable!("rejected at entry"),
        };
        levels.push(next);
    }

    // --- Backward sweep: dependency accumulation over the transpose. ---
    let delta = VertexArray::<f64>::new(n, 0.0);
    let acc = VertexArray::<f64>::new(n, 0.0);
    let threads = out_engine.options().compute_workers();
    for l in (1..levels.len()).rev() {
        let frontier = &levels[l];
        // SCATTER (over in-edges): (1 + delta[w]) / sigma[w] of the deeper
        // vertex w. GATHER accumulates into predecessors at level l-1.
        let scatter =
            |w: VertexId, _v: VertexId| (1.0 + delta.get(w as usize)) / sigma.get(w as usize);
        let cond = |v: VertexId| depth.get(v as usize) == (l as i64) - 1;
        match mode {
            ExecMode::Binned => in_engine.edge_map(
                frontier,
                scatter,
                |v: VertexId, contribution: f64| {
                    if depth.get(v as usize) == (l as i64) - 1 {
                        acc.set(v as usize, acc.get(v as usize) + contribution);
                        true
                    } else {
                        false
                    }
                },
                cond,
                true,
            )?,
            ExecMode::Sync => in_engine.edge_map_sync(
                frontier,
                scatter,
                |v: VertexId, contribution: f64| {
                    if depth.get(v as usize) == (l as i64) - 1 {
                        acc.fetch_add(v as usize, contribution);
                        true
                    } else {
                        false
                    }
                },
                cond,
                true,
            )?,
            ExecMode::Async => unreachable!("rejected at entry"),
        };
        // delta[v] = sigma[v] * acc[v]; reset acc for the next level.
        let parents = &levels[l - 1];
        let _ = vertex_map(
            parents,
            |v: VertexId| {
                let i = v as usize;
                if acc.get(i) != 0.0 {
                    delta.set(i, delta.get(i) + sigma.get(i) * acc.get(i));
                    acc.set(i, 0.0);
                }
                false
            },
            threads,
        );
    }
    // Boundary translation: scores computed in physical order come back
    // indexed by original vertex id (no-op on identity layouts).
    Ok(to_original_order(layout, delta, 0.0))
}

/// Helper: frontiers are consumed by value in loops; rebuild a frontier
/// with the same members cheaply.
trait CloneMembers {
    fn clone_members(&self, capacity: usize) -> VertexSubset;
}

impl CloneMembers for VertexSubset {
    fn clone_members(&self, capacity: usize) -> VertexSubset {
        VertexSubset::from_members(capacity, self.members())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use blaze_core::EngineOptions;
    use blaze_graph::gen::{rmat, RmatConfig};
    use blaze_graph::{Csr, DiskGraph, GraphBuilder};
    use blaze_storage::StripedStorage;
    use std::sync::Arc;

    fn engines(g: &Csr, devices: usize) -> (BlazeEngine, BlazeEngine) {
        let t = g.transpose();
        let s1 = Arc::new(StripedStorage::in_memory(devices).unwrap());
        let s2 = Arc::new(StripedStorage::in_memory(devices).unwrap());
        (
            BlazeEngine::new(
                Arc::new(DiskGraph::create(g, s1).unwrap()),
                EngineOptions::default(),
            )
            .unwrap(),
            BlazeEngine::new(
                Arc::new(DiskGraph::create(&t, s2).unwrap()),
                EngineOptions::default(),
            )
            .unwrap(),
        )
    }

    fn assert_close(a: &[f64], b: &[f64]) {
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() < 1e-9 * x.abs().max(1.0),
                "delta[{i}]: {x} vs {y}"
            );
        }
    }

    #[test]
    fn diamond_matches_reference() {
        let mut b = GraphBuilder::new(5);
        b.extend([(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]);
        let g = b.build();
        let (oe, ie) = engines(&g, 1);
        let delta = bc(&oe, &ie, 0, ExecMode::Binned).unwrap();
        assert_close(&delta.to_vec(), &reference::bc_scores(&g, 0));
    }

    #[test]
    fn rmat_matches_reference_binned() {
        let g = rmat(&RmatConfig::new(8));
        let (oe, ie) = engines(&g, 2);
        let delta = bc(&oe, &ie, 0, ExecMode::Binned).unwrap();
        assert_close(&delta.to_vec(), &reference::bc_scores(&g, 0));
    }

    #[test]
    fn rmat_matches_reference_sync() {
        let g = rmat(&RmatConfig::new(7));
        let (oe, ie) = engines(&g, 1);
        let delta = bc(&oe, &ie, 0, ExecMode::Sync).unwrap();
        assert_close(&delta.to_vec(), &reference::bc_scores(&g, 0));
    }

    #[test]
    fn unreachable_vertices_have_zero_score() {
        let mut b = GraphBuilder::new(6);
        b.extend([(0, 1), (1, 2), (4, 5)]); // 4,5 unreachable from 0
        let g = b.build();
        let (oe, ie) = engines(&g, 1);
        let delta = bc(&oe, &ie, 0, ExecMode::Binned).unwrap();
        assert_eq!(delta.get(4), 0.0);
        assert_eq!(delta.get(5), 0.0);
        assert!(delta.get(1) > 0.0, "vertex 1 lies on the 0->2 path");
    }
}
