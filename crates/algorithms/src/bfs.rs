//! Breadth-First Search — Algorithm 1 of the paper.

use blaze_core::{BlazeEngine, VertexArray};
use blaze_frontier::VertexSubset;
use blaze_types::{Result, VertexId};

use crate::mode::ExecMode;

/// Out-of-core BFS from `root`.
///
/// Returns the parent array: `parent[v]` is the BFS-tree parent of `v`, the
/// root's parent is itself, and unreachable vertices hold `-1` — exactly
/// the state of Algorithm 1. Both `root` and the returned parents are
/// original vertex ids regardless of the graph's physical layout; the
/// traversal itself runs in physical space.
///
/// [`ExecMode::Async`] runs barrier-free: levels are min-relaxed from a
/// priority frontier bucketed by level, so low levels drain first and the
/// fixpoint — the unique shortest unweighted distance — is reached without
/// supersteps. Levels derived from the returned parents are bit-identical
/// to the barriered modes; the parents themselves are one valid BFS tree
/// (as in any mode, ties go to an arbitrary in-neighbor one level up).
pub fn bfs(engine: &BlazeEngine, root: VertexId, mode: ExecMode) -> Result<VertexArray<i64>> {
    let layout = engine.graph().layout();
    let root = layout.to_physical(root);
    let n = engine.num_vertices();
    let parent = VertexArray::<i64>::new(n, -1);
    parent.set(root as usize, root as i64);

    if mode == ExecMode::Async {
        // Level array drives both the min-relaxation and the priority.
        let level = VertexArray::<i64>::new(n, -1);
        level.set(root as usize, 0);
        engine.edge_map_async(
            &[root],
            // Pack candidate level and source: the gather must accept or
            // reject both atomically with respect to its own re-reads.
            |s: VertexId, _d: VertexId| (((level.get(s as usize) + 1) as u64) << 32) | u64::from(s),
            |d: VertexId, packed: u64| {
                let lvl = (packed >> 32) as i64;
                let cur = level.get(d as usize);
                if cur == -1 || lvl < cur {
                    level.set(d as usize, lvl);
                    parent.set(d as usize, (packed & 0xffff_ffff) as i64);
                    true
                } else {
                    false
                }
            },
            |_d: VertexId| true,
            |v: VertexId| level.get(v as usize).max(0) as u64,
        )?;
        return Ok(finish_bfs(layout, parent, n));
    }

    let mut frontier = VertexSubset::single(n, root);

    // SCATTER returns the source id; COND visits unvisited destinations
    // only; GATHER claims the destination and activates it.
    let scatter = |s: VertexId, _d: VertexId| s;
    let cond = |d: VertexId| parent.get(d as usize) == -1;

    while !frontier.is_empty() {
        frontier = match mode {
            ExecMode::Binned => engine.edge_map(
                &frontier,
                scatter,
                |d: VertexId, v: VertexId| {
                    if parent.get(d as usize) == -1 {
                        parent.set(d as usize, v as i64);
                        true
                    } else {
                        false
                    }
                },
                cond,
                true,
            )?,
            ExecMode::Sync => engine.edge_map_sync(
                &frontier,
                scatter,
                |d: VertexId, v: VertexId| {
                    // compare-and-swap claims the vertex exactly once.
                    parent.compare_exchange(d as usize, -1, v as i64).is_ok()
                },
                cond,
                true,
            )?,
            ExecMode::Async => unreachable!("handled above"),
        };
    }
    Ok(finish_bfs(layout, parent, n))
}

/// Boundary translation: parents are vertex-valued, so both the index and
/// the stored id must come back to original space.
fn finish_bfs(
    layout: &blaze_graph::VertexPermutation,
    parent: VertexArray<i64>,
    n: usize,
) -> VertexArray<i64> {
    let Some(map) = layout.phys_to_orig() else {
        return parent;
    };
    let out = VertexArray::<i64>::new(n, -1);
    for (p, &orig) in map.iter().enumerate() {
        let pv = parent.get(p);
        if pv >= 0 {
            out.set(orig as usize, i64::from(map[pv as usize]));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use blaze_core::EngineOptions;
    use blaze_graph::gen::{rmat, uniform, RmatConfig};
    use blaze_graph::{Csr, DiskGraph};
    use blaze_storage::StripedStorage;
    use std::sync::Arc;

    fn engine(g: &Csr, devices: usize) -> BlazeEngine {
        let storage = Arc::new(StripedStorage::in_memory(devices).unwrap());
        BlazeEngine::new(
            Arc::new(DiskGraph::create(g, storage).unwrap()),
            EngineOptions::default(),
        )
        .unwrap()
    }

    /// A parent array is valid iff every reached vertex's parent is a real
    /// in-neighbor one BFS level earlier, and the set of reached vertices
    /// matches the reference levels.
    fn assert_valid_bfs(g: &Csr, root: u32, parent: &VertexArray<i64>) {
        let levels = reference::bfs_levels(g, root);
        for v in 0..g.num_vertices() as u32 {
            let p = parent.get(v as usize);
            if levels[v as usize] == -1 {
                assert_eq!(p, -1, "unreachable vertex {v} must stay -1");
            } else if v == root {
                assert_eq!(p, root as i64);
            } else {
                assert!(p >= 0, "reached vertex {v} needs a parent");
                let p = p as u32;
                assert!(
                    g.neighbors(p).contains(&v),
                    "parent {p} must have edge to {v}"
                );
                assert_eq!(
                    levels[p as usize] + 1,
                    levels[v as usize],
                    "parent of {v} must be one level up"
                );
            }
        }
    }

    #[test]
    fn binned_bfs_is_a_valid_bfs_tree() {
        let g = rmat(&RmatConfig::new(9));
        let e = engine(&g, 1);
        let parent = bfs(&e, 0, ExecMode::Binned).unwrap();
        assert_valid_bfs(&g, 0, &parent);
    }

    #[test]
    fn sync_bfs_is_a_valid_bfs_tree() {
        let g = rmat(&RmatConfig::new(9));
        let e = engine(&g, 2);
        let parent = bfs(&e, 0, ExecMode::Sync).unwrap();
        assert_valid_bfs(&g, 0, &parent);
    }

    #[test]
    fn bfs_on_uniform_graph_striped() {
        let g = uniform(9, 8, 17);
        let e = engine(&g, 4);
        let parent = bfs(&e, 5, ExecMode::Binned).unwrap();
        assert_valid_bfs(&g, 5, &parent);
    }

    #[test]
    fn async_bfs_is_a_valid_bfs_tree_with_oracle_levels() {
        let g = rmat(&RmatConfig::new(9));
        let e = engine(&g, 2);
        let parent = bfs(&e, 0, ExecMode::Async).unwrap();
        // assert_valid_bfs checks reached-set AND per-vertex levels against
        // the reference, which is the bit-identical part of the contract.
        assert_valid_bfs(&g, 0, &parent);
        assert!(e.stats().async_rounds >= 1, "async mode must trace rounds");
    }

    #[test]
    fn bfs_from_isolated_vertex_reaches_nothing() {
        let mut b = blaze_graph::GraphBuilder::new(10);
        b.add_edge(1, 2);
        let g = b.build();
        let e = engine(&g, 1);
        let parent = bfs(&e, 0, ExecMode::Binned).unwrap();
        assert_eq!(parent.get(0), 0);
        for v in 1..10 {
            assert_eq!(parent.get(v), -1);
        }
    }
}
