//! Breadth-First Search — Algorithm 1 of the paper.

use blaze_core::{BlazeEngine, VertexArray};
use blaze_frontier::VertexSubset;
use blaze_types::{Result, VertexId};

use crate::mode::ExecMode;

/// Out-of-core BFS from `root`.
///
/// Returns the parent array: `parent[v]` is the BFS-tree parent of `v`, the
/// root's parent is itself, and unreachable vertices hold `-1` — exactly
/// the state of Algorithm 1. Both `root` and the returned parents are
/// original vertex ids regardless of the graph's physical layout; the
/// traversal itself runs in physical space.
pub fn bfs(engine: &BlazeEngine, root: VertexId, mode: ExecMode) -> Result<VertexArray<i64>> {
    let layout = engine.graph().layout();
    let root = layout.to_physical(root);
    let n = engine.num_vertices();
    let parent = VertexArray::<i64>::new(n, -1);
    parent.set(root as usize, root as i64);
    let mut frontier = VertexSubset::single(n, root);

    // SCATTER returns the source id; COND visits unvisited destinations
    // only; GATHER claims the destination and activates it.
    let scatter = |s: VertexId, _d: VertexId| s;
    let cond = |d: VertexId| parent.get(d as usize) == -1;

    while !frontier.is_empty() {
        frontier = match mode {
            ExecMode::Binned => engine.edge_map(
                &frontier,
                scatter,
                |d: VertexId, v: VertexId| {
                    if parent.get(d as usize) == -1 {
                        parent.set(d as usize, v as i64);
                        true
                    } else {
                        false
                    }
                },
                cond,
                true,
            )?,
            ExecMode::Sync => engine.edge_map_sync(
                &frontier,
                scatter,
                |d: VertexId, v: VertexId| {
                    // compare-and-swap claims the vertex exactly once.
                    parent.compare_exchange(d as usize, -1, v as i64).is_ok()
                },
                cond,
                true,
            )?,
        };
    }
    // Boundary translation: parents are vertex-valued, so both the index
    // and the stored id must come back to original space.
    if let Some(map) = layout.phys_to_orig() {
        let out = VertexArray::<i64>::new(n, -1);
        for (p, &orig) in map.iter().enumerate() {
            let pv = parent.get(p);
            if pv >= 0 {
                out.set(orig as usize, i64::from(map[pv as usize]));
            }
        }
        return Ok(out);
    }
    Ok(parent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use blaze_core::EngineOptions;
    use blaze_graph::gen::{rmat, uniform, RmatConfig};
    use blaze_graph::{Csr, DiskGraph};
    use blaze_storage::StripedStorage;
    use std::sync::Arc;

    fn engine(g: &Csr, devices: usize) -> BlazeEngine {
        let storage = Arc::new(StripedStorage::in_memory(devices).unwrap());
        BlazeEngine::new(
            Arc::new(DiskGraph::create(g, storage).unwrap()),
            EngineOptions::default(),
        )
        .unwrap()
    }

    /// A parent array is valid iff every reached vertex's parent is a real
    /// in-neighbor one BFS level earlier, and the set of reached vertices
    /// matches the reference levels.
    fn assert_valid_bfs(g: &Csr, root: u32, parent: &VertexArray<i64>) {
        let levels = reference::bfs_levels(g, root);
        for v in 0..g.num_vertices() as u32 {
            let p = parent.get(v as usize);
            if levels[v as usize] == -1 {
                assert_eq!(p, -1, "unreachable vertex {v} must stay -1");
            } else if v == root {
                assert_eq!(p, root as i64);
            } else {
                assert!(p >= 0, "reached vertex {v} needs a parent");
                let p = p as u32;
                assert!(
                    g.neighbors(p).contains(&v),
                    "parent {p} must have edge to {v}"
                );
                assert_eq!(
                    levels[p as usize] + 1,
                    levels[v as usize],
                    "parent of {v} must be one level up"
                );
            }
        }
    }

    #[test]
    fn binned_bfs_is_a_valid_bfs_tree() {
        let g = rmat(&RmatConfig::new(9));
        let e = engine(&g, 1);
        let parent = bfs(&e, 0, ExecMode::Binned).unwrap();
        assert_valid_bfs(&g, 0, &parent);
    }

    #[test]
    fn sync_bfs_is_a_valid_bfs_tree() {
        let g = rmat(&RmatConfig::new(9));
        let e = engine(&g, 2);
        let parent = bfs(&e, 0, ExecMode::Sync).unwrap();
        assert_valid_bfs(&g, 0, &parent);
    }

    #[test]
    fn bfs_on_uniform_graph_striped() {
        let g = uniform(9, 8, 17);
        let e = engine(&g, 4);
        let parent = bfs(&e, 5, ExecMode::Binned).unwrap();
        assert_valid_bfs(&g, 5, &parent);
    }

    #[test]
    fn bfs_from_isolated_vertex_reaches_nothing() {
        let mut b = blaze_graph::GraphBuilder::new(10);
        b.add_edge(1, 2);
        let g = b.build();
        let e = engine(&g, 1);
        let parent = bfs(&e, 0, ExecMode::Binned).unwrap();
        assert_eq!(parent.get(0), 0);
        for v in 1..10 {
            assert_eq!(parent.get(v), -1);
        }
    }
}
