//! k-core decomposition (membership for a fixed `k`) over the undirected
//! view of the graph.
//!
//! Bootstrap: one full-frontier `EdgeMap` per direction counts undirected
//! degrees. Peel: vertices whose degree drops below `k` die and scatter a
//! decrement to their neighbors, cascading until no vertex changes. Peeling
//! is confluent — the surviving core is unique regardless of removal order
//! — so the membership flags are bit-identical across all three modes, and
//! the peel phase is async-capable.

use blaze_core::{BlazeEngine, VertexArray};
use blaze_frontier::{PriorityFrontier, VertexSubset};
use blaze_types::{Result, VertexId};

use crate::mode::ExecMode;
use crate::translate::to_original_order;

/// Out-of-core k-core membership. `out_engine` runs over the graph,
/// `in_engine` over its transpose. Returns `1` for vertices in the k-core
/// and `0` for peeled vertices, indexed by original vertex id. Undirected
/// degree counts each directed edge at both endpoints (self-loops twice),
/// matching [`crate::reference::kcore_alive`].
pub fn kcore(
    out_engine: &BlazeEngine,
    in_engine: &BlazeEngine,
    k: u32,
    mode: ExecMode,
) -> Result<VertexArray<u32>> {
    let n = out_engine.num_vertices();
    assert_eq!(
        n,
        in_engine.num_vertices(),
        "transpose must match the graph"
    );
    assert_eq!(
        out_engine.graph().layout(),
        in_engine.graph().layout(),
        "graph and transpose must share one vertex layout"
    );
    let k = i64::from(k);
    let deg = VertexArray::<i64>::new(n, 0);
    let alive = VertexArray::<u32>::new(n, 1);

    // --- Bootstrap: undirected degrees. Sums need exactly-once delivery,
    // so even async mode runs this part barriered (one job per direction).
    let full = VertexSubset::full(n);
    for engine in [out_engine, in_engine] {
        match mode {
            ExecMode::Sync => engine.edge_map_sync(
                &full,
                |_s: VertexId, _d: VertexId| 1u64,
                |d: VertexId, c: u64| {
                    let _ = deg.fetch_update(d as usize, |cur| Some(cur + c as i64));
                    false
                },
                |_d: VertexId| true,
                false,
            )?,
            // Bin exclusivity makes the plain read-modify-write safe.
            ExecMode::Binned | ExecMode::Async => engine.edge_map(
                &full,
                |_s: VertexId, _d: VertexId| 1u64,
                |d: VertexId, c: u64| {
                    deg.set(d as usize, deg.get(d as usize) + c as i64);
                    false
                },
                |_d: VertexId| true,
                false,
            )?,
        };
    }

    // --- Seed: vertices already under the threshold die first.
    let dead0: Vec<VertexId> = (0..n as VertexId)
        .filter(|&v| deg.get(v as usize) < k)
        .collect();
    for &v in &dead0 {
        alive.set(v as usize, 0);
    }

    // --- Peel: each dead vertex scatters one decrement per incident edge,
    // in both directions; a decremented survivor that falls below k dies
    // and joins the frontier exactly once (the 1 -> 0 transition).
    let scatter = |_s: VertexId, _d: VertexId| 1u64;
    let cond = |d: VertexId| alive.get(d as usize) == 1;
    match mode {
        ExecMode::Binned => {
            let gather = |d: VertexId, c: u64| {
                let i = d as usize;
                if alive.get(i) == 1 {
                    let nd = deg.get(i) - c as i64;
                    deg.set(i, nd);
                    if nd < k {
                        alive.set(i, 0);
                        return true;
                    }
                }
                false
            };
            let mut frontier = VertexSubset::from_members(n, dead0);
            while !frontier.is_empty() {
                let out = out_engine.edge_map(&frontier, scatter, gather, cond, true)?;
                let inn = in_engine.edge_map(&frontier, scatter, gather, cond, true)?;
                frontier =
                    VertexSubset::from_members(n, out.members().into_iter().chain(inn.members()));
            }
        }
        ExecMode::Sync => {
            // Decrement unconditionally (dead vertices' degrees are inert),
            // kill with CAS so each vertex enters the frontier once.
            let gather = |d: VertexId, c: u64| {
                let i = d as usize;
                // panic-audit: the closure always returns Some, so
                // fetch_update cannot report failure.
                let prev = deg
                    .fetch_update(i, |cur| Some(cur - c as i64))
                    .expect("unconditional update");
                prev - (c as i64) < k && alive.compare_exchange(i, 1, 0).is_ok()
            };
            let mut frontier = VertexSubset::from_members(n, dead0);
            while !frontier.is_empty() {
                let out = out_engine.edge_map_sync(&frontier, scatter, gather, cond, true)?;
                let inn = in_engine.edge_map_sync(&frontier, scatter, gather, cond, true)?;
                frontier =
                    VertexSubset::from_members(n, out.members().into_iter().chain(inn.members()));
            }
        }
        ExecMode::Async => {
            let opts = out_engine.options();
            let pf = PriorityFrontier::new(n, opts.async_buckets);
            // Peeling has no useful urgency order; one bucket suffices.
            let priority = |_v: VertexId| 0u64;
            for &v in &dead0 {
                pf.push(v, 0);
            }
            let gather = |d: VertexId, c: u64| {
                let i = d as usize;
                if alive.get(i) == 1 {
                    let nd = deg.get(i) - c as i64;
                    deg.set(i, nd);
                    if nd < k {
                        alive.set(i, 0);
                        return true;
                    }
                }
                false
            };
            while let Some((bucket, batch)) = pf.pop_batch(opts.async_batch_max) {
                let round = out_engine
                    .edge_map_async_batch(&batch, bucket, &pf, &scatter, &gather, &cond, &priority)
                    .and_then(|()| {
                        in_engine.edge_map_async_batch(
                            &batch, bucket, &pf, &scatter, &gather, &cond, &priority,
                        )
                    });
                pf.complete_batch();
                round?;
            }
            debug_assert!(pf.is_quiescent(), "drained frontier must be quiescent");
        }
    }
    Ok(to_original_order(out_engine.graph().layout(), alive, 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use blaze_core::EngineOptions;
    use blaze_graph::gen::{rmat, uniform, RmatConfig};
    use blaze_graph::{Csr, DiskGraph, GraphBuilder};
    use blaze_storage::StripedStorage;
    use std::sync::Arc;

    fn engines(g: &Csr, devices: usize) -> (BlazeEngine, BlazeEngine) {
        let t = g.transpose();
        let s1 = Arc::new(StripedStorage::in_memory(devices).unwrap());
        let s2 = Arc::new(StripedStorage::in_memory(devices).unwrap());
        (
            BlazeEngine::new(
                Arc::new(DiskGraph::create(g, s1).unwrap()),
                EngineOptions::default(),
            )
            .unwrap(),
            BlazeEngine::new(
                Arc::new(DiskGraph::create(&t, s2).unwrap()),
                EngineOptions::default(),
            )
            .unwrap(),
        )
    }

    #[test]
    fn binned_matches_reference_peel() {
        let g = rmat(&RmatConfig::new(8));
        let (oe, ie) = engines(&g, 1);
        let alive = kcore(&oe, &ie, 3, ExecMode::Binned).unwrap();
        assert_eq!(alive.to_vec(), reference::kcore_alive(&g, 3));
    }

    #[test]
    fn sync_matches_reference_peel() {
        let g = uniform(8, 5, 31);
        let (oe, ie) = engines(&g, 2);
        let alive = kcore(&oe, &ie, 4, ExecMode::Sync).unwrap();
        assert_eq!(alive.to_vec(), reference::kcore_alive(&g, 4));
    }

    #[test]
    fn async_matches_reference_peel() {
        let g = rmat(&RmatConfig::new(8));
        let (oe, ie) = engines(&g, 1);
        let alive = kcore(&oe, &ie, 3, ExecMode::Async).unwrap();
        assert_eq!(alive.to_vec(), reference::kcore_alive(&g, 3));
    }

    #[test]
    fn chain_peels_to_nothing_triangle_survives() {
        // Triangle {0,1,2} with a pendant path 2 -> 3 -> 4.
        let mut b = GraphBuilder::new(5);
        b.extend([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)]);
        let g = b.build();
        let (oe, ie) = engines(&g, 1);
        let alive = kcore(&oe, &ie, 2, ExecMode::Binned).unwrap();
        assert_eq!(alive.to_vec(), vec![1, 1, 1, 0, 0]);
        // k = 3: the cascade takes the triangle down too.
        let (oe, ie) = engines(&g, 1);
        let alive = kcore(&oe, &ie, 3, ExecMode::Binned).unwrap();
        assert_eq!(alive.to_vec(), vec![0, 0, 0, 0, 0]);
    }
}
