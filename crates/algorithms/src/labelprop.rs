//! Forward min-label propagation: every vertex converges to the minimum
//! original vertex id among itself and its directed ancestors.
//!
//! Unlike WCC this runs over *one* direction only and does no pointer
//! jumping — it is the plain monotone-relaxation benchmark: labels start
//! at each vertex's original id and min-relax along out-edges until the
//! fixpoint, which is unique and therefore identical across all three
//! execution modes and all physical layouts.

use blaze_core::{BlazeEngine, VertexArray};
use blaze_frontier::VertexSubset;
use blaze_types::{Result, VertexId};

use crate::mode::ExecMode;
use crate::translate::to_original_order;

/// Out-of-core forward label propagation. Returns per-vertex labels indexed
/// by original vertex id; the label values are original ids too (the
/// initial labels are original ids, so no re-valuing is needed at the
/// boundary — only re-indexing).
pub fn label_propagation(engine: &BlazeEngine, mode: ExecMode) -> Result<VertexArray<u32>> {
    let layout = engine.graph().layout();
    let n = engine.num_vertices();
    let labels = VertexArray::<u32>::new(n, 0);
    // Labels carry original ids so the fixpoint is layout-invariant.
    for p in 0..n {
        labels.set(p, layout.to_original(p as VertexId));
    }

    let scatter = |s: VertexId, _d: VertexId| labels.get(s as usize);
    let cond = |_d: VertexId| true;

    match mode {
        ExecMode::Async => {
            let nb = engine.options().async_buckets as u64;
            let seeds: Vec<VertexId> = (0..n as VertexId).collect();
            // Small labels win the min-fixpoint; spread them first.
            engine.edge_map_async(
                &seeds,
                scatter,
                |d: VertexId, v: u32| {
                    if v < labels.get(d as usize) {
                        labels.set(d as usize, v);
                        true
                    } else {
                        false
                    }
                },
                cond,
                |v: VertexId| {
                    u64::from(labels.get(v as usize)).saturating_mul(nb) / (n.max(1) as u64)
                },
            )?;
        }
        ExecMode::Binned => {
            let mut frontier = VertexSubset::full(n);
            while !frontier.is_empty() {
                frontier = engine.edge_map(
                    &frontier,
                    scatter,
                    |d: VertexId, v: u32| {
                        if v < labels.get(d as usize) {
                            labels.set(d as usize, v);
                            true
                        } else {
                            false
                        }
                    },
                    cond,
                    true,
                )?;
            }
        }
        ExecMode::Sync => {
            let mut frontier = VertexSubset::full(n);
            while !frontier.is_empty() {
                frontier = engine.edge_map_sync(
                    &frontier,
                    scatter,
                    |d: VertexId, v: u32| {
                        labels
                            .fetch_update(d as usize, |cur| (v < cur).then_some(v))
                            .is_ok()
                    },
                    cond,
                    true,
                )?;
            }
        }
    }
    Ok(to_original_order(layout, labels, 0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use blaze_core::EngineOptions;
    use blaze_graph::gen::{rmat, uniform, RmatConfig};
    use blaze_graph::{Csr, DiskGraph, GraphBuilder};
    use blaze_storage::StripedStorage;
    use std::sync::Arc;

    fn engine(g: &Csr, devices: usize) -> BlazeEngine {
        let storage = Arc::new(StripedStorage::in_memory(devices).unwrap());
        BlazeEngine::new(
            Arc::new(DiskGraph::create(g, storage).unwrap()),
            EngineOptions::default(),
        )
        .unwrap()
    }

    #[test]
    fn binned_matches_reference() {
        let g = rmat(&RmatConfig::new(8));
        let e = engine(&g, 1);
        let labels = label_propagation(&e, ExecMode::Binned).unwrap();
        assert_eq!(labels.to_vec(), reference::labelprop_labels(&g));
    }

    #[test]
    fn sync_matches_reference() {
        let g = uniform(8, 6, 41);
        let e = engine(&g, 2);
        let labels = label_propagation(&e, ExecMode::Sync).unwrap();
        assert_eq!(labels.to_vec(), reference::labelprop_labels(&g));
    }

    #[test]
    fn async_matches_reference() {
        let g = rmat(&RmatConfig::new(8));
        let e = engine(&g, 2);
        let labels = label_propagation(&e, ExecMode::Async).unwrap();
        assert_eq!(labels.to_vec(), reference::labelprop_labels(&g));
        assert!(e.stats().async_rounds >= 1, "async mode must trace rounds");
    }

    #[test]
    fn labels_follow_edge_direction() {
        // 1 -> 0 cannot lower 0; 0 -> 2 -> 3 pulls label 0 downstream.
        let mut b = GraphBuilder::new(5);
        b.extend([(1, 0), (0, 2), (2, 3)]);
        let g = b.build();
        let e = engine(&g, 1);
        let labels = label_propagation(&e, ExecMode::Binned).unwrap();
        assert_eq!(labels.to_vec(), vec![0, 1, 0, 0, 4]);
    }
}
