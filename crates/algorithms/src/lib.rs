//! The paper's five target queries (Section V-A), written against the
//! Blaze `EdgeMap`/`VertexMap` API exactly as in Algorithms 1–3:
//!
//! * [`bfs()`](bfs::bfs) — Breadth-First Search (Algorithm 1),
//! * [`pagerank_delta()`](pagerank::pagerank_delta) — PageRank, delta variant (Algorithm 2),
//! * [`wcc()`](wcc::wcc) — Weakly Connected Components with shortcutting label
//!   propagation (Algorithm 3),
//! * [`spmv()`](spmv::spmv) — Sparse Matrix-Vector multiplication,
//! * [`bc()`](bc::bc) — Betweenness Centrality (Brandes), forward + backward sweeps.
//!
//! Three further monotone queries exercise the barrier-free path:
//!
//! * [`sssp()`](sssp::sssp) — shortest paths over deterministic synthetic weights,
//! * [`kcore()`](kcore::kcore) — k-core membership by confluent peeling,
//! * [`label_propagation()`](labelprop::label_propagation) — forward min-label relaxation.
//!
//! Every query runs in either execution mode ([`ExecMode::Binned`] online
//! binning, or [`ExecMode::Sync`] compare-and-swap — the Figure 8 baseline)
//! and has an in-memory reference implementation in [`reference`](mod@reference) used by
//! the test suite to validate the out-of-core results. Monotone queries
//! (BFS, WCC, SSSP, k-core, label propagation) additionally accept
//! [`ExecMode::Async`]: the engine drops the per-iteration barrier and
//! drains a priority frontier instead, converging to the same unique
//! fixpoint the barriered modes reach.
//!
//! The [`sharded`] module re-expresses BFS, PageRank, WCC, and SpMV over a
//! scale-out [`Cluster`](blaze_scaleout::Cluster): same superstep loops,
//! but every `EdgeMap` is a concurrent multi-shard round exchanging
//! frontier deltas. Deterministic outputs (BFS levels, WCC labels, exact
//! SpMV) are bit-identical to the single-engine run for any shard count.
//!
//! All queries speak *original* vertex ids at the API boundary. Graphs
//! written with a degree-aware physical layout run internally in physical
//! id space; inputs (roots, vectors) and outputs (parents, ranks, labels,
//! scores) are translated at entry/exit so results are identical to the
//! unreordered run.

// The unsafe-audit rule (cargo xtask lint) keys off this: crates that
// need no unsafe code forbid it outright, so the audit scope cannot
// silently grow.
#![forbid(unsafe_code)]

pub mod bc;
pub mod bfs;
pub mod kcore;
pub mod labelprop;
pub mod mode;
pub mod pagerank;
pub mod reference;
pub mod sharded;
pub mod spmv;
pub mod sssp;
mod translate;
pub mod wcc;

pub use bc::bc;
pub use bfs::bfs;
pub use kcore::kcore;
pub use labelprop::label_propagation;
pub use mode::ExecMode;
pub use pagerank::{pagerank_delta, pagerank_delta_combined, PageRankConfig};
pub use sharded::{sharded_bfs, sharded_pagerank, sharded_spmv, sharded_wcc};
pub use spmv::spmv;
pub use sssp::sssp;
pub use wcc::wcc;

/// Query identifiers used across the bench harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Query {
    /// Breadth-First Search.
    Bfs,
    /// PageRank (delta variant).
    PageRank,
    /// Weakly Connected Components.
    Wcc,
    /// Sparse matrix-vector multiplication.
    SpMV,
    /// Betweenness centrality.
    Bc,
}

impl Query {
    /// The five queries in the paper's order.
    pub fn all() -> [Query; 5] {
        [
            Query::Bfs,
            Query::PageRank,
            Query::Wcc,
            Query::SpMV,
            Query::Bc,
        ]
    }

    /// Paper abbreviation.
    pub fn short_name(self) -> &'static str {
        match self {
            Query::Bfs => "BFS",
            Query::PageRank => "PR",
            Query::Wcc => "WCC",
            Query::SpMV => "SpMV",
            Query::Bc => "BC",
        }
    }

    /// Whether the query needs the transpose graph as well.
    pub fn needs_transpose(self) -> bool {
        matches!(self, Query::Wcc | Query::Bc)
    }
}

impl std::fmt::Display for Query {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.short_name())
    }
}
