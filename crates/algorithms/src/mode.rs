//! Execution-mode selection: online binning vs. synchronization.

/// How `EdgeMap` propagates values to vertex data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Online binning (the Blaze contribution): gather threads own bins
    /// exclusively, vertex updates are plain stores.
    #[default]
    Binned,
    /// Synchronization-based variant (Figure 8b): scatter threads update
    /// vertex data directly with compare-and-swap.
    Sync,
    /// Asynchronous priority-frontier execution: no per-iteration barrier;
    /// gather workers feed newly-activated vertices straight back into a
    /// bucketed priority frontier. Only *monotone* algorithms (BFS, SSSP,
    /// WCC, k-core, label propagation) support it; they converge to results
    /// bit-identical to their barriered oracle.
    Async,
}

impl ExecMode {
    /// Parses a `-mode` flag value. Accepts `binned`, `sync`, `async`.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "binned" => Some(ExecMode::Binned),
            "sync" => Some(ExecMode::Sync),
            "async" => Some(ExecMode::Async),
            _ => None,
        }
    }
}

impl std::fmt::Display for ExecMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecMode::Binned => write!(f, "binned"),
            ExecMode::Sync => write!(f, "sync"),
            ExecMode::Async => write!(f, "async"),
        }
    }
}
