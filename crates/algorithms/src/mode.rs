//! Execution-mode selection: online binning vs. synchronization.

/// How `EdgeMap` propagates values to vertex data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Online binning (the Blaze contribution): gather threads own bins
    /// exclusively, vertex updates are plain stores.
    #[default]
    Binned,
    /// Synchronization-based variant (Figure 8b): scatter threads update
    /// vertex data directly with compare-and-swap.
    Sync,
}

impl std::fmt::Display for ExecMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecMode::Binned => write!(f, "binned"),
            ExecMode::Sync => write!(f, "sync"),
        }
    }
}
