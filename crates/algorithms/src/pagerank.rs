//! PageRank, delta variant — Algorithm 2 of the paper.
//!
//! Vertices stay active only while their rank keeps changing by more than
//! `epsilon * p[v]`; EDGEMAP propagates normalized deltas and VERTEXMAP
//! applies the damping factor and filters the next frontier.

use blaze_core::{vertex_map, BlazeEngine, VertexArray};
use blaze_frontier::VertexSubset;
use blaze_types::{Result, VertexId};

use crate::mode::ExecMode;
use crate::translate::to_original_order;

/// PageRank-delta parameters.
#[derive(Debug, Clone, Copy)]
pub struct PageRankConfig {
    /// Damping factor `D` (0.85 in the paper).
    pub damping: f64,
    /// Activation threshold `e`.
    pub epsilon: f64,
    /// Safety cap on iterations.
    pub max_iters: usize,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        Self {
            damping: 0.85,
            epsilon: 0.01,
            max_iters: 100,
        }
    }
}

/// Out-of-core PageRank-delta. Returns the rank vector `p`.
pub fn pagerank_delta(
    engine: &BlazeEngine,
    config: PageRankConfig,
    mode: ExecMode,
) -> Result<VertexArray<f64>> {
    run_pagerank(engine, config, mode, false)
}

/// [`pagerank_delta`] with scatter-side record combining (binned mode
/// only): same-destination delta contributions inside one staging window
/// are summed before they reach the bins, so hub vertices on power-law
/// graphs cost one bin record per window instead of one per in-edge. The
/// combine operator is the same addition `gather` performs, so ranks match
/// the uncombined path up to floating-point summation order (the
/// `combine_equivalence` property test pins exact agreement on
/// integer-valued workloads).
pub fn pagerank_delta_combined(
    engine: &BlazeEngine,
    config: PageRankConfig,
) -> Result<VertexArray<f64>> {
    run_pagerank(engine, config, ExecMode::Binned, true)
}

fn run_pagerank(
    engine: &BlazeEngine,
    config: PageRankConfig,
    mode: ExecMode,
    combined: bool,
) -> Result<VertexArray<f64>> {
    if mode == ExecMode::Async {
        // Rank accumulation is not a monotone relaxation: applying a delta
        // twice (a stale async re-delivery) changes the sum.
        return Err(blaze_types::BlazeError::Config(
            "pagerank is not monotone; async mode supports BFS/SSSP/WCC/k-core/labelprop".into(),
        ));
    }
    let n = engine.num_vertices();
    let graph = engine.graph().clone();
    let p = VertexArray::<f64>::new(n, 0.0);
    let delta = VertexArray::<f64>::new(n, 1.0 / n as f64);
    let ngh_sum = VertexArray::<f64>::new(n, 0.0);

    let mut frontier = VertexSubset::full(n);
    let threads = engine.options().compute_workers();

    // SCATTER: normalized delta of the source (Algorithm 2, line 7).
    let scatter = |s: VertexId, _d: VertexId| delta.get(s as usize) / graph.degree(s) as f64;
    let cond = |_d: VertexId| true;

    for _ in 0..config.max_iters {
        if frontier.is_empty() {
            break;
        }
        // GATHER accumulates into ngh_sum; `output = true` marks every
        // vertex that received mass so APPLYFILTER can visit it.
        // Bin exclusivity: plain read-modify-write, no CAS.
        let gather = |d: VertexId, v: f64| {
            ngh_sum.set(d as usize, ngh_sum.get(d as usize) + v);
            true
        };
        let touched = match mode {
            ExecMode::Binned if combined => {
                engine.edge_map_combined(&frontier, scatter, gather, |a, b| a + b, cond, true)?
            }
            ExecMode::Binned => engine.edge_map(&frontier, scatter, gather, cond, true)?,
            ExecMode::Sync => engine.edge_map_sync(
                &frontier,
                scatter,
                |d: VertexId, v: f64| {
                    ngh_sum.fetch_add(d as usize, v);
                    true
                },
                cond,
                true,
            )?,
            ExecMode::Async => unreachable!("rejected at entry"),
        };
        // APPLYFILTER (Algorithm 2, lines 20-29).
        frontier = vertex_map(
            &touched,
            |i: VertexId| {
                let i = i as usize;
                let nd = ngh_sum.get(i) * config.damping;
                delta.set(i, nd);
                ngh_sum.set(i, 0.0);
                if nd.abs() > config.epsilon * p.get(i) {
                    p.set(i, p.get(i) + nd);
                    true
                } else {
                    false
                }
            },
            threads,
        );
    }
    // Boundary translation: ranks computed in physical order come back
    // indexed by original vertex id (no-op on identity layouts).
    Ok(to_original_order(engine.graph().layout(), p, 0.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use blaze_core::EngineOptions;
    use blaze_graph::gen::{rmat, RmatConfig};
    use blaze_graph::{Csr, DiskGraph};
    use blaze_storage::StripedStorage;
    use std::sync::Arc;

    fn engine(g: &Csr, devices: usize) -> BlazeEngine {
        let storage = Arc::new(StripedStorage::in_memory(devices).unwrap());
        BlazeEngine::new(
            Arc::new(DiskGraph::create(g, storage).unwrap()),
            EngineOptions::default(),
        )
        .unwrap()
    }

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            let scale = x.abs().max(y.abs()).max(1e-12);
            assert!(
                (x - y).abs() / scale < tol,
                "rank mismatch at {i}: {x} vs {y}"
            );
        }
    }

    #[test]
    fn binned_matches_reference() {
        let g = rmat(&RmatConfig::new(8));
        let e = engine(&g, 1);
        let cfg = PageRankConfig::default();
        let p = pagerank_delta(&e, cfg, ExecMode::Binned).unwrap();
        let expect = reference::pagerank_delta(&g, cfg.damping, cfg.epsilon, cfg.max_iters);
        assert_close(&p.to_vec(), &expect, 1e-6);
    }

    #[test]
    fn sync_matches_reference() {
        let g = rmat(&RmatConfig::new(8));
        let e = engine(&g, 2);
        let cfg = PageRankConfig::default();
        let p = pagerank_delta(&e, cfg, ExecMode::Sync).unwrap();
        let expect = reference::pagerank_delta(&g, cfg.damping, cfg.epsilon, cfg.max_iters);
        assert_close(&p.to_vec(), &expect, 1e-6);
    }

    #[test]
    fn combined_matches_reference() {
        let g = rmat(&RmatConfig::new(8));
        let e = engine(&g, 2);
        let cfg = PageRankConfig::default();
        let p = pagerank_delta_combined(&e, cfg).unwrap();
        let expect = reference::pagerank_delta(&g, cfg.damping, cfg.epsilon, cfg.max_iters);
        assert_close(&p.to_vec(), &expect, 1e-6);
        assert!(
            e.stats().records_combined > 0,
            "an R-MAT graph must combine some hub records"
        );
    }

    #[test]
    fn hub_vertices_rank_highest() {
        let g = rmat(&RmatConfig::new(9));
        let e = engine(&g, 1);
        let p = pagerank_delta(&e, PageRankConfig::default(), ExecMode::Binned).unwrap();
        let ranks = p.to_vec();
        // The top-ranked vertex should be among the highest in-degree ones.
        let t = g.transpose();
        let best = ranks
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0 as u32;
        let best_in_deg = t.degree(best);
        let max_in_deg = (0..t.num_vertices() as u32)
            .map(|v| t.degree(v))
            .max()
            .unwrap();
        assert!(
            best_in_deg as f64 >= 0.5 * max_in_deg as f64,
            "top rank vertex has in-degree {best_in_deg}, max is {max_in_deg}"
        );
    }

    #[test]
    fn converges_before_max_iters() {
        let g = rmat(&RmatConfig::new(8));
        let e = engine(&g, 1);
        let cfg = PageRankConfig {
            epsilon: 0.05,
            ..Default::default()
        };
        pagerank_delta(&e, cfg, ExecMode::Binned).unwrap();
        let iters = e.stats().iterations;
        assert!(iters < cfg.max_iters, "needed {iters} iterations");
        assert!(iters >= 2);
    }
}
