//! In-memory reference implementations used to validate the out-of-core
//! engines. Deliberately simple and sequential.

use blaze_graph::Csr;
use blaze_types::VertexId;

/// BFS levels from `root`; `-1` for unreachable vertices.
pub fn bfs_levels(g: &Csr, root: VertexId) -> Vec<i64> {
    let mut level = vec![-1i64; g.num_vertices()];
    level[root as usize] = 0;
    let mut frontier = vec![root];
    let mut depth = 0i64;
    while !frontier.is_empty() {
        depth += 1;
        let mut next = Vec::new();
        for &v in &frontier {
            for &d in g.neighbors(v) {
                if level[d as usize] == -1 {
                    level[d as usize] = depth;
                    next.push(d);
                }
            }
        }
        frontier = next;
    }
    level
}

/// Sequential PageRank-delta, mirroring Algorithm 2 exactly (same damping,
/// same filter, same iteration structure), so the out-of-core result can be
/// compared bit-for-shape.
pub fn pagerank_delta(g: &Csr, damping: f64, epsilon: f64, max_iters: usize) -> Vec<f64> {
    let n = g.num_vertices();
    let mut p = vec![0.0f64; n];
    let mut delta = vec![1.0 / n as f64; n];
    let mut ngh_sum = vec![0.0f64; n];
    let mut frontier: Vec<VertexId> = (0..n as VertexId).collect();
    for _ in 0..max_iters {
        if frontier.is_empty() {
            break;
        }
        for &s in &frontier {
            let deg = g.degree(s);
            if deg == 0 {
                continue;
            }
            let contribution = delta[s as usize] / deg as f64;
            for &d in g.neighbors(s) {
                ngh_sum[d as usize] += contribution;
            }
        }
        // Apply-filter over every vertex that received mass.
        let mut touched: Vec<VertexId> = (0..n as VertexId)
            .filter(|&v| ngh_sum[v as usize] != 0.0)
            .collect();
        let mut next = Vec::new();
        for &i in &touched {
            delta[i as usize] = ngh_sum[i as usize] * damping;
            ngh_sum[i as usize] = 0.0;
            if delta[i as usize].abs() > epsilon * p[i as usize] {
                p[i as usize] += delta[i as usize];
                next.push(i);
            }
        }
        touched.clear();
        frontier = next;
    }
    p
}

/// Component labels: every vertex gets the minimum vertex id of its weakly
/// connected component (computed with union-find over the undirected view).
pub fn wcc_labels(g: &Csr) -> Vec<u32> {
    let n = g.num_vertices();
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            parent[x as usize] = parent[parent[x as usize] as usize];
            x = parent[x as usize];
        }
        x
    }
    for (s, d) in g.edges() {
        let (rs, rd) = (find(&mut parent, s), find(&mut parent, d));
        if rs != rd {
            // Union by smaller id so roots are component minima.
            let (lo, hi) = if rs < rd { (rs, rd) } else { (rd, rs) };
            parent[hi as usize] = lo;
        }
    }
    (0..n as u32).map(|v| find(&mut parent, v)).collect()
}

/// Dijkstra shortest distances from `root` under the deterministic
/// [`crate::sssp::edge_weight`] weights; `u64::MAX` for unreachable
/// vertices.
pub fn sssp_distances(g: &Csr, root: VertexId) -> Vec<u64> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let n = g.num_vertices();
    let mut dist = vec![u64::MAX; n];
    dist[root as usize] = 0;
    let mut heap = BinaryHeap::new();
    heap.push(Reverse((0u64, root)));
    while let Some(Reverse((d, v))) = heap.pop() {
        if d > dist[v as usize] {
            continue;
        }
        for &u in g.neighbors(v) {
            let nd = d + crate::sssp::edge_weight(v, u);
            if nd < dist[u as usize] {
                dist[u as usize] = nd;
                heap.push(Reverse((nd, u)));
            }
        }
    }
    dist
}

/// k-core membership over the undirected view: `1` iff the vertex survives
/// iterated removal of vertices whose undirected degree (in + out, each
/// directed edge counted at both endpoints, self-loops twice) drops below
/// `k`.
pub fn kcore_alive(g: &Csr, k: i64) -> Vec<u32> {
    let n = g.num_vertices();
    let mut deg = vec![0i64; n];
    let mut in_adj: Vec<Vec<VertexId>> = vec![Vec::new(); n];
    for (s, d) in g.edges() {
        deg[s as usize] += 1;
        deg[d as usize] += 1;
        in_adj[d as usize].push(s);
    }
    let mut alive = vec![1u32; n];
    let mut queue: Vec<VertexId> = (0..n as VertexId)
        .filter(|&v| deg[v as usize] < k)
        .collect();
    for &v in &queue {
        alive[v as usize] = 0;
    }
    let mut head = 0;
    while head < queue.len() {
        let v = queue[head];
        head += 1;
        let neighbors = g
            .neighbors(v)
            .iter()
            .chain(in_adj[v as usize].iter())
            .copied()
            .collect::<Vec<_>>();
        for u in neighbors {
            deg[u as usize] -= 1;
            if alive[u as usize] == 1 && deg[u as usize] < k {
                alive[u as usize] = 0;
                queue.push(u);
            }
        }
    }
    alive
}

/// Forward min-label propagation fixpoint: every vertex gets the minimum
/// vertex id among itself and all its ancestors along directed edges.
pub fn labelprop_labels(g: &Csr) -> Vec<u32> {
    let n = g.num_vertices();
    let mut label: Vec<u32> = (0..n as u32).collect();
    let mut changed = true;
    while changed {
        changed = false;
        for (s, d) in g.edges() {
            if label[s as usize] < label[d as usize] {
                label[d as usize] = label[s as usize];
                changed = true;
            }
        }
    }
    label
}

/// y = Aᵀ·x over the out-edge representation: `y[d] = Σ_{(s,d) ∈ E} x[s]`.
pub fn spmv(g: &Csr, x: &[f64]) -> Vec<f64> {
    let mut y = vec![0.0f64; g.num_vertices()];
    for (s, d) in g.edges() {
        y[d as usize] += x[s as usize];
    }
    y
}

/// Single-source Brandes betweenness-centrality contribution: dependency
/// scores `delta[v]` accumulated from shortest paths out of `root`.
pub fn bc_scores(g: &Csr, root: VertexId) -> Vec<f64> {
    let n = g.num_vertices();
    let mut sigma = vec![0.0f64; n];
    let mut depth = vec![-1i64; n];
    sigma[root as usize] = 1.0;
    depth[root as usize] = 0;
    let mut levels: Vec<Vec<VertexId>> = vec![vec![root]];
    // Forward sweep: count shortest paths level by level.
    while let Some(current) = levels.last() {
        let d = levels.len() as i64;
        let mut next = Vec::new();
        let mut sigma_add: Vec<(VertexId, f64)> = Vec::new();
        for &v in current {
            for &w in g.neighbors(v) {
                if depth[w as usize] == -1 {
                    depth[w as usize] = d;
                    next.push(w);
                }
                if depth[w as usize] == d {
                    sigma_add.push((w, sigma[v as usize]));
                }
            }
        }
        for (w, add) in sigma_add {
            sigma[w as usize] += add;
        }
        if next.is_empty() {
            break;
        }
        levels.push(next);
    }
    // Backward sweep: accumulate dependencies.
    let mut delta = vec![0.0f64; n];
    for l in (1..levels.len()).rev() {
        for &w in &levels[l] {
            // Predecessors v of w: in-neighbors at depth l-1.
            // Scan forward edges of level l-1 instead (cheap for tests).
            let _ = w;
        }
        for &v in &levels[l - 1] {
            let mut acc = 0.0;
            for &w in g.neighbors(v) {
                if depth[w as usize] == l as i64 {
                    acc += (1.0 + delta[w as usize]) / sigma[w as usize];
                }
            }
            delta[v as usize] += sigma[v as usize] * acc;
        }
    }
    delta
}

#[cfg(test)]
mod tests {
    use super::*;
    use blaze_graph::GraphBuilder;

    fn diamond() -> Csr {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3, 3 -> 4
        let mut b = GraphBuilder::new(5);
        b.extend([(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]);
        b.build()
    }

    #[test]
    fn bfs_levels_on_diamond() {
        assert_eq!(bfs_levels(&diamond(), 0), vec![0, 1, 1, 2, 3]);
    }

    #[test]
    fn wcc_singletons_and_components() {
        let mut b = GraphBuilder::new(6);
        b.extend([(0, 1), (1, 2), (4, 3)]);
        let labels = wcc_labels(&b.build());
        assert_eq!(labels, vec![0, 0, 0, 3, 3, 5]);
    }

    #[test]
    fn spmv_on_diamond() {
        let y = spmv(&diamond(), &[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(y, vec![0.0, 1.0, 1.0, 5.0, 4.0]);
    }

    #[test]
    fn bc_on_diamond() {
        let delta = bc_scores(&diamond(), 0);
        // Vertex 3 lies on both 0->4 paths; sigma[3]=2, delta[3]=1.
        // Vertices 1 and 2 each carry half of the paths through 3 plus
        // their own shortest path: delta = sigma_v * (1+delta_3)/sigma_3.
        assert!((delta[3] - 1.0).abs() < 1e-12);
        assert!((delta[1] - 1.0).abs() < 1e-12);
        assert!((delta[2] - 1.0).abs() < 1e-12);
        assert_eq!(delta[4], 0.0);
    }

    #[test]
    fn sssp_distances_respect_triangle_inequality() {
        let g = diamond();
        let dist = sssp_distances(&g, 0);
        assert_eq!(dist[0], 0);
        for (s, d) in g.edges() {
            let w = crate::sssp::edge_weight(s, d);
            if dist[s as usize] != u64::MAX {
                assert!(dist[d as usize] <= dist[s as usize] + w);
            }
        }
        assert!(dist.iter().all(|&d| d != u64::MAX), "diamond is connected");
    }

    #[test]
    fn kcore_peels_a_pendant_chain() {
        // Triangle {0,1,2} plus a pendant path 2 -> 3 -> 4.
        let mut b = GraphBuilder::new(5);
        b.extend([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)]);
        let alive = kcore_alive(&b.build(), 2);
        assert_eq!(alive, vec![1, 1, 1, 0, 0]);
    }

    #[test]
    fn labelprop_follows_direction() {
        // 1 -> 0 lowers nothing (0 is already minimal); 0 -> 2 -> 3 pulls
        // label 0 downstream; 4 is isolated.
        let mut b = GraphBuilder::new(5);
        b.extend([(1, 0), (0, 2), (2, 3)]);
        assert_eq!(labelprop_labels(&b.build()), vec![0, 1, 0, 0, 4]);
    }

    #[test]
    fn pagerank_mass_is_bounded() {
        let g = diamond();
        let p = pagerank_delta(&g, 0.85, 0.01, 50);
        assert!(p.iter().all(|&v| v >= 0.0));
        let total: f64 = p.iter().sum();
        assert!(total > 0.0 && total < 2.0, "total {total}");
    }
}
