//! Sharded drivers: the paper's queries re-expressed over a scale-out
//! [`Cluster`] instead of a single engine.
//!
//! Each driver runs the same superstep loop as its single-engine
//! counterpart, but every `EdgeMap` is a distributed round: the shards
//! exchange frontier deltas, gather machine-locally over their destination
//! partitions, and the union of their outputs becomes the next frontier.
//! `VertexMap` (APPLYFILTER) stays on the calling thread — vertex state is
//! replicated, only edges are partitioned — exactly as the paper's
//! Section VI sketch prescribes.
//!
//! Determinism: BFS levels, WCC labels, and SpMV sums over exactly
//! representable inputs are *bit-identical* to a single engine built with
//! the same layout, for any shard count — the per-destination gather runs
//! entirely on the one shard owning that destination, so partitioning only
//! reorders work *between* vertices, never within one vertex's
//! accumulation across shards. PageRank accumulates floating-point mass in
//! a bin order that differs between shard counts, so ranks agree to
//! rounding (the equivalence suite pins 1e-6 relative).
//!
//! All drivers speak *original* vertex ids at the boundary, like the
//! single-engine queries: inputs are translated through the cluster's
//! layout on entry, results on exit.

use std::borrow::Cow;

use blaze_core::{vertex_map, VertexArray};
use blaze_frontier::VertexSubset;
use blaze_scaleout::Cluster;
use blaze_types::{Result, VertexId};

use crate::pagerank::PageRankConfig;
use crate::translate::to_original_order;
use crate::wcc::canonicalize_labels;

/// Sharded BFS from `root` (an original-space id). Returns per-vertex
/// *levels* (hop distance; `-1` unreached), indexed by original id.
///
/// Levels, not parents: the level of a vertex is a property of the graph,
/// identical for every shard count, while the parent that wins the claim
/// depends on gather order within a round — which shard partitioning
/// changes. The deterministic output is what the equivalence suite (and a
/// routed point query) can hold bit-identical.
pub fn sharded_bfs(cluster: &Cluster, root: VertexId) -> Result<VertexArray<i64>> {
    let n = cluster.num_vertices();
    assert!((root as usize) < n, "root out of range");
    let root = cluster.layout().to_physical(root);
    let level = VertexArray::<i64>::new(n, -1);
    level.set(root as usize, 0);
    let mut frontier = VertexSubset::single(n, root);
    let mut depth = 0i64;
    while !frontier.is_empty() {
        depth += 1;
        let d = depth;
        frontier = cluster.edge_map(
            &frontier,
            // The activation itself is the message; no payload needed.
            |_s: VertexId, _d: VertexId| 0u32,
            |dst: VertexId, _v: u32| {
                if level.get(dst as usize) == -1 {
                    level.set(dst as usize, d);
                    true
                } else {
                    false
                }
            },
            |dst: VertexId| level.get(dst as usize) == -1,
            true,
            4,
        )?;
    }
    Ok(to_original_order(cluster.layout(), level, -1))
}

/// Sharded PageRank-delta (Algorithm 2 over the cluster). Returns the rank
/// vector indexed by original id.
///
/// Scatter normalizes by the *global* out-degree from
/// [`Cluster::out_degrees`] — each shard's subgraph only keeps the
/// neighbors it gathers for, so the local degree under-counts.
pub fn sharded_pagerank(cluster: &Cluster, config: PageRankConfig) -> Result<VertexArray<f64>> {
    let n = cluster.num_vertices();
    let degrees = cluster.out_degrees();
    let p = VertexArray::<f64>::new(n, 0.0);
    let delta = VertexArray::<f64>::new(n, 1.0 / n as f64);
    let ngh_sum = VertexArray::<f64>::new(n, 0.0);
    let mut frontier = VertexSubset::full(n);
    let threads = apply_threads(cluster);

    // SCATTER: normalized delta of the source (Algorithm 2, line 7).
    let scatter = |s: VertexId, _d: VertexId| delta.get(s as usize) / degrees[s as usize] as f64;
    let cond = |_d: VertexId| true;

    for _ in 0..config.max_iters {
        if frontier.is_empty() {
            break;
        }
        // GATHER accumulates into ngh_sum. Bin exclusivity holds per shard,
        // and destinations are partitioned, so plain read-modify-write.
        let touched = cluster.edge_map(
            &frontier,
            scatter,
            |d: VertexId, v: f64| {
                ngh_sum.set(d as usize, ngh_sum.get(d as usize) + v);
                true
            },
            cond,
            true,
            8,
        )?;
        // APPLYFILTER (Algorithm 2, lines 20-29), identical to the
        // single-engine driver.
        frontier = vertex_map(
            &touched,
            |i: VertexId| {
                let i = i as usize;
                let nd = ngh_sum.get(i) * config.damping;
                delta.set(i, nd);
                ngh_sum.set(i, 0.0);
                if nd.abs() > config.epsilon * p.get(i) {
                    p.set(i, p.get(i) + nd);
                    true
                } else {
                    false
                }
            },
            threads,
        );
    }
    Ok(to_original_order(cluster.layout(), p, 0.0))
}

/// Sharded WCC (Algorithm 3 over two clusters: the graph and its
/// transpose, so labels flow along the undirected view). Returns per-vertex
/// labels — the minimum original id of each component — indexed by
/// original id, bit-identical to the single-engine run.
///
/// Both clusters must be built from the same vertex layout; their
/// destination partitions may differ (the transpose has its own in-degree
/// distribution), which is harmless because the exchanged frontier is
/// global.
pub fn sharded_wcc(out_cluster: &Cluster, in_cluster: &Cluster) -> Result<VertexArray<u32>> {
    let n = out_cluster.num_vertices();
    assert_eq!(
        n,
        in_cluster.num_vertices(),
        "transpose must match the graph"
    );
    assert_eq!(
        out_cluster.layout(),
        in_cluster.layout(),
        "graph and transpose clusters must share one vertex layout"
    );
    let ids = VertexArray::<u32>::new(n, 0);
    let prev_ids = VertexArray::<u32>::new(n, 0);
    for v in 0..n {
        ids.set(v, v as u32);
        prev_ids.set(v, v as u32);
    }
    let mut frontier = VertexSubset::full(n);
    let threads = apply_threads(out_cluster);

    let scatter = |s: VertexId, _d: VertexId| ids.get(s as usize);
    let gather = |d: VertexId, v: u32| {
        if v < ids.get(d as usize) {
            ids.set(d as usize, v);
            true
        } else {
            false
        }
    };
    let cond = |_d: VertexId| true;

    while !frontier.is_empty() {
        // Propagate along out-edges, then in-edges (Algorithm 3 lines 36-37).
        let touched_out = out_cluster.edge_map(&frontier, scatter, gather, cond, true, 4)?;
        let touched_in = in_cluster.edge_map(&frontier, scatter, gather, cond, true, 4)?;
        let candidates = VertexSubset::from_members(
            n,
            touched_out
                .members()
                .into_iter()
                .chain(touched_in.members()),
        );
        // APPLYFILTER: shortcut (pointer jump) and keep only changed ids.
        frontier = vertex_map(
            &candidates,
            |i: VertexId| {
                let i = i as usize;
                let id = ids.get(ids.get(i) as usize);
                if ids.get(i) != id {
                    ids.set(i, id);
                }
                if prev_ids.get(i) != ids.get(i) {
                    prev_ids.set(i, ids.get(i));
                    true
                } else {
                    false
                }
            },
            threads,
        );
    }
    Ok(canonicalize_labels(out_cluster.layout(), ids))
}

/// Sharded SpMV: `y = Aᵀ·x` accumulated along out-edges into destinations.
/// `x` and the returned `y` are indexed by original id.
pub fn sharded_spmv(cluster: &Cluster, x: &[f64]) -> Result<VertexArray<f64>> {
    let n = cluster.num_vertices();
    assert_eq!(x.len(), n, "input vector must have one entry per vertex");
    let layout = cluster.layout();
    // Boundary translation in: physical slot p reads x[orig(p)].
    let px: Cow<'_, [f64]> = match layout.phys_to_orig() {
        Some(map) => map.iter().map(|&orig| x[orig as usize]).collect(),
        None => Cow::Borrowed(x),
    };
    let x = px.as_ref();
    let y = VertexArray::<f64>::new(n, 0.0);
    let frontier = VertexSubset::full(n);
    cluster.edge_map(
        &frontier,
        |s: VertexId, _d: VertexId| x[s as usize],
        |d: VertexId, v: f64| {
            y.set(d as usize, y.get(d as usize) + v);
            false
        },
        |_d: VertexId| true,
        false,
        8,
    )?;
    Ok(to_original_order(cluster.layout(), y, 0.0))
}

/// APPLYFILTER thread count: mirror what the shard engines were configured
/// with so the sharded and single-engine drivers split vertex work alike.
fn apply_threads(cluster: &Cluster) -> usize {
    cluster.machines()[0].engine.options().compute_workers()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use blaze_core::EngineOptions;
    use blaze_graph::gen::{rmat, RmatConfig};

    #[test]
    fn sharded_bfs_levels_match_reference() {
        let g = rmat(&RmatConfig::new(8));
        let cluster = Cluster::build(&g, 3, 1, EngineOptions::default()).unwrap();
        let levels = sharded_bfs(&cluster, 0).unwrap();
        assert_eq!(levels.to_vec(), reference::bfs_levels(&g, 0));
    }

    #[test]
    fn sharded_wcc_labels_match_reference() {
        let g = rmat(&RmatConfig::new(8));
        let t = g.transpose();
        let oc = Cluster::build(&g, 2, 1, EngineOptions::default()).unwrap();
        let ic = Cluster::build(&t, 2, 1, EngineOptions::default()).unwrap();
        let ids = sharded_wcc(&oc, &ic).unwrap();
        assert_eq!(ids.to_vec(), reference::wcc_labels(&g));
    }

    #[test]
    fn sharded_spmv_is_exact_on_integer_vectors() {
        let g = rmat(&RmatConfig::new(8));
        let cluster = Cluster::build(&g, 4, 1, EngineOptions::default()).unwrap();
        let x: Vec<f64> = (0..g.num_vertices()).map(|v| (v % 17) as f64).collect();
        let y = sharded_spmv(&cluster, &x).unwrap();
        assert_eq!(y.to_vec(), reference::spmv(&g, &x));
    }

    #[test]
    fn sharded_pagerank_tracks_reference_within_rounding() {
        let g = rmat(&RmatConfig::new(8));
        let cluster = Cluster::build(&g, 2, 1, EngineOptions::default()).unwrap();
        let cfg = PageRankConfig::default();
        let p = sharded_pagerank(&cluster, cfg).unwrap();
        let expect = reference::pagerank_delta(&g, cfg.damping, cfg.epsilon, cfg.max_iters);
        for (i, (a, b)) in p.to_vec().iter().zip(&expect).enumerate() {
            let scale = a.abs().max(b.abs()).max(1e-12);
            assert!(
                (a - b).abs() / scale < 1e-6,
                "rank mismatch at {i}: {a} vs {b}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "share one vertex layout")]
    fn wcc_rejects_mismatched_layouts() {
        let g = rmat(&RmatConfig::new(7));
        let t = g.transpose();
        let oc = Cluster::build_with_layout(
            &g,
            blaze_graph::VertexLayout::Degree,
            2,
            1,
            EngineOptions::default(),
        )
        .unwrap();
        let ic = Cluster::build(&t, 2, 1, EngineOptions::default()).unwrap();
        let _ = sharded_wcc(&oc, &ic);
    }
}
