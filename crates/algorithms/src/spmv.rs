//! Sparse matrix-vector multiplication over the out-of-core CSR.
//!
//! Treats the graph as its adjacency matrix A and computes
//! `y[d] = Σ_{(s,d) ∈ E} x[s]` — one full-frontier `EdgeMap`, the most
//! IO-intensive query in the evaluation (every edge page is read exactly
//! once, every edge produces one bin record).

use blaze_core::{BlazeEngine, VertexArray};
use blaze_frontier::VertexSubset;
use blaze_types::{Result, VertexId};

use crate::mode::ExecMode;
use crate::translate::to_original_order;

/// Out-of-core SpMV: returns `y = Aᵀ·x` (accumulating along out-edges into
/// destinations). `x` is indexed by original vertex id and so is the
/// returned `y`; on layouted graphs the vector is permuted into physical
/// order for the edge map and the result permuted back.
pub fn spmv(engine: &BlazeEngine, x: &[f64], mode: ExecMode) -> Result<VertexArray<f64>> {
    if mode == ExecMode::Async {
        // A sum over edges is not a monotone relaxation; every edge must be
        // applied exactly once, which the barrier guarantees.
        return Err(blaze_types::BlazeError::Config(
            "spmv is not monotone; async mode supports BFS/SSSP/WCC/k-core/labelprop".into(),
        ));
    }
    let n = engine.num_vertices();
    assert_eq!(x.len(), n, "input vector must have one entry per vertex");
    let layout = engine.graph().layout();
    // Boundary translation in: physical slot p reads x[orig(p)].
    let px: std::borrow::Cow<'_, [f64]> = match layout.phys_to_orig() {
        Some(map) => map.iter().map(|&orig| x[orig as usize]).collect(),
        None => std::borrow::Cow::Borrowed(x),
    };
    let x = px.as_ref();
    let y = VertexArray::<f64>::new(n, 0.0);
    let frontier = VertexSubset::full(n);
    let scatter = |s: VertexId, _d: VertexId| x[s as usize];
    let cond = |_d: VertexId| true;
    match mode {
        ExecMode::Binned => engine.edge_map(
            &frontier,
            scatter,
            |d: VertexId, v: f64| {
                y.set(d as usize, y.get(d as usize) + v);
                false
            },
            cond,
            false,
        )?,
        ExecMode::Sync => engine.edge_map_sync(
            &frontier,
            scatter,
            |d: VertexId, v: f64| {
                y.fetch_add(d as usize, v);
                false
            },
            cond,
            false,
        )?,
        ExecMode::Async => unreachable!("rejected at entry"),
    };
    // Boundary translation out: y[orig(p)] = y_phys[p].
    Ok(to_original_order(layout, y, 0.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use blaze_core::EngineOptions;
    use blaze_graph::gen::{rmat, RmatConfig};
    use blaze_graph::{Csr, DiskGraph};
    use blaze_storage::StripedStorage;
    use std::sync::Arc;

    fn engine(g: &Csr, devices: usize) -> BlazeEngine {
        let storage = Arc::new(StripedStorage::in_memory(devices).unwrap());
        BlazeEngine::new(
            Arc::new(DiskGraph::create(g, storage).unwrap()),
            EngineOptions::default(),
        )
        .unwrap()
    }

    fn assert_close(a: &[f64], b: &[f64]) {
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() < 1e-9 * x.abs().max(1.0),
                "y[{i}]: {x} vs {y}"
            );
        }
    }

    #[test]
    fn matches_reference_binned() {
        let g = rmat(&RmatConfig::new(9));
        let x: Vec<f64> = (0..g.num_vertices())
            .map(|i| (i % 13) as f64 * 0.5)
            .collect();
        let e = engine(&g, 1);
        let y = spmv(&e, &x, ExecMode::Binned).unwrap();
        assert_close(&y.to_vec(), &reference::spmv(&g, &x));
    }

    #[test]
    fn matches_reference_sync_striped() {
        let g = rmat(&RmatConfig::new(8));
        let x: Vec<f64> = (0..g.num_vertices())
            .map(|i| 1.0 / (i + 1) as f64)
            .collect();
        let e = engine(&g, 4);
        let y = spmv(&e, &x, ExecMode::Sync).unwrap();
        assert_close(&y.to_vec(), &reference::spmv(&g, &x));
    }

    #[test]
    fn reads_every_edge_exactly_once() {
        let g = rmat(&RmatConfig::new(9));
        let x = vec![1.0; g.num_vertices()];
        let e = engine(&g, 1);
        let y = spmv(&e, &x, ExecMode::Binned).unwrap();
        // With x = 1, y[d] equals the in-degree of d.
        let t = g.transpose();
        for v in 0..g.num_vertices() {
            assert_eq!(y.get(v), t.degree(v as u32) as f64);
        }
        assert_eq!(e.stats().iterations, 1);
        assert_eq!(e.stats().edges_processed, g.num_edges());
    }
}
