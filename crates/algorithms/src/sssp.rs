//! Single-Source Shortest Paths over deterministic synthetic weights.
//!
//! The artifact's graph files carry no edge weights, so weights are derived
//! from a fixed hash of the endpoint ids — every run (and every physical
//! layout) sees the same weighted graph. Distances min-relax to the unique
//! shortest-path fixpoint, which makes the algorithm monotone and therefore
//! async-capable: [`ExecMode::Async`] drains a priority frontier bucketed
//! by tentative distance, which is delta-stepping in the Blaze runtime —
//! near-Dijkstra settle order without a priority queue in the hot path.

use blaze_core::{BlazeEngine, VertexArray};
use blaze_frontier::VertexSubset;
use blaze_types::{Result, VertexId};

use crate::mode::ExecMode;
use crate::translate::to_original_order;

/// Distance of an unreachable vertex.
pub const UNREACHED: u64 = u64::MAX;

/// Deterministic edge weight in `1..=8`, hashed (splitmix-style finalizer)
/// from the *original* endpoint ids so the weighted graph is invariant
/// under physical relayout and matches the in-memory reference directly.
pub fn edge_weight(s: VertexId, d: VertexId) -> u64 {
    let mut x = (u64::from(s) << 32) | u64::from(d);
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    1 + (x % 8)
}

/// Out-of-core SSSP from `root`. Returns the distance array indexed by
/// original vertex id ([`UNREACHED`] where no path exists); `root` is an
/// original id too. All three modes converge to the same unique fixpoint,
/// so the distances are bit-identical across modes.
pub fn sssp(engine: &BlazeEngine, root: VertexId, mode: ExecMode) -> Result<VertexArray<u64>> {
    let layout = engine.graph().layout();
    let root = layout.to_physical(root);
    let n = engine.num_vertices();
    let dist = VertexArray::<u64>::new(n, UNREACHED);
    dist.set(root as usize, 0);

    // SCATTER: candidate distance through s; weights keyed by original ids.
    let scatter = |s: VertexId, d: VertexId| {
        dist.get(s as usize)
            .saturating_add(edge_weight(layout.to_original(s), layout.to_original(d)))
    };
    let cond = |_d: VertexId| true;

    match mode {
        ExecMode::Async => {
            // Delta-stepping: buckets are distance bands of width DELTA
            // (the maximum edge weight), so a drained batch is a whole
            // band — near-Dijkstra settle order without fragmenting the
            // page access stream into one round per distance value. Far
            // bands saturate into the last bucket and re-bucket as the
            // frontier advances.
            const DELTA: u64 = 8;
            engine.edge_map_async(
                &[root],
                scatter,
                |d: VertexId, cand: u64| {
                    if cand < dist.get(d as usize) {
                        dist.set(d as usize, cand);
                        true
                    } else {
                        false
                    }
                },
                cond,
                |v: VertexId| dist.get(v as usize) / DELTA,
            )?;
        }
        ExecMode::Binned => {
            let mut frontier = VertexSubset::single(n, root);
            while !frontier.is_empty() {
                // Bellman-Ford supersteps; bin exclusivity makes the plain
                // read-modify-write min safe.
                frontier = engine.edge_map(
                    &frontier,
                    scatter,
                    |d: VertexId, cand: u64| {
                        if cand < dist.get(d as usize) {
                            dist.set(d as usize, cand);
                            true
                        } else {
                            false
                        }
                    },
                    cond,
                    true,
                )?;
            }
        }
        ExecMode::Sync => {
            let mut frontier = VertexSubset::single(n, root);
            while !frontier.is_empty() {
                frontier = engine.edge_map_sync(
                    &frontier,
                    scatter,
                    |d: VertexId, cand: u64| {
                        dist.fetch_update(d as usize, |cur| (cand < cur).then_some(cand))
                            .is_ok()
                    },
                    cond,
                    true,
                )?;
            }
        }
    }
    Ok(to_original_order(layout, dist, UNREACHED))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use blaze_core::EngineOptions;
    use blaze_graph::gen::{rmat, uniform, RmatConfig};
    use blaze_graph::{Csr, DiskGraph};
    use blaze_storage::StripedStorage;
    use std::sync::Arc;

    fn engine(g: &Csr, devices: usize) -> BlazeEngine {
        let storage = Arc::new(StripedStorage::in_memory(devices).unwrap());
        BlazeEngine::new(
            Arc::new(DiskGraph::create(g, storage).unwrap()),
            EngineOptions::default(),
        )
        .unwrap()
    }

    #[test]
    fn edge_weights_are_stable_and_bounded() {
        for (s, d) in [(0u32, 1u32), (1, 0), (7, 7), (1000, 2000)] {
            let w = edge_weight(s, d);
            assert_eq!(w, edge_weight(s, d), "weights must be deterministic");
            assert!((1..=8).contains(&w));
        }
        // Directional: some (s, d) pair must disagree with its reverse
        // (any single pair may collide mod 8).
        assert!(
            (0u32..64).any(|s| (0u32..64).any(|d| edge_weight(s, d) != edge_weight(d, s))),
            "weights must depend on edge direction"
        );
    }

    #[test]
    fn binned_matches_dijkstra() {
        let g = rmat(&RmatConfig::new(9));
        let e = engine(&g, 1);
        let dist = sssp(&e, 0, ExecMode::Binned).unwrap();
        assert_eq!(dist.to_vec(), reference::sssp_distances(&g, 0));
    }

    #[test]
    fn sync_matches_dijkstra() {
        let g = uniform(9, 8, 23);
        let e = engine(&g, 2);
        let dist = sssp(&e, 3, ExecMode::Sync).unwrap();
        assert_eq!(dist.to_vec(), reference::sssp_distances(&g, 3));
    }

    #[test]
    fn async_matches_dijkstra() {
        let g = rmat(&RmatConfig::new(9));
        let e = engine(&g, 2);
        let dist = sssp(&e, 0, ExecMode::Async).unwrap();
        assert_eq!(dist.to_vec(), reference::sssp_distances(&g, 0));
        assert!(e.stats().async_rounds >= 1, "async mode must trace rounds");
    }

    #[test]
    fn unreachable_vertices_stay_at_max() {
        let mut b = blaze_graph::GraphBuilder::new(6);
        b.extend([(0, 1), (1, 2), (4, 5)]);
        let g = b.build();
        let e = engine(&g, 1);
        let dist = sssp(&e, 0, ExecMode::Binned).unwrap();
        assert_eq!(dist.get(0), 0);
        assert!(dist.get(1) >= 1 && dist.get(2) > dist.get(1));
        assert_eq!(dist.get(3), UNREACHED);
        assert_eq!(dist.get(4), UNREACHED);
        assert_eq!(dist.get(5), UNREACHED);
    }
}
