//! API-boundary translation between original and physical vertex ids.
//!
//! Graphs written with a non-identity [`VertexPermutation`] store vertices
//! in degree-aware physical order. The algorithms run entirely in that
//! physical space — frontiers, vertex arrays, and `EdgeMap`s all speak
//! physical ids — and translate only at the public boundary: source
//! vertices are mapped to physical on the way in, result arrays are
//! re-indexed (and, where values are vertex ids, re-valued) to original
//! ids on the way out. Callers therefore see results identical to the
//! same run on an unreordered graph. Identity layouts skip every step at
//! zero cost.

use blaze_core::vertex_array::VertexValue;
use blaze_core::VertexArray;
use blaze_graph::VertexPermutation;

/// Re-indexes `phys` (indexed by physical id) into original-id order.
///
/// `fill` seeds the output array; every slot is overwritten because the
/// permutation is a bijection. Identity layouts return `phys` untouched.
pub(crate) fn to_original_order<T: VertexValue>(
    layout: &VertexPermutation,
    phys: VertexArray<T>,
    fill: T,
) -> VertexArray<T> {
    let Some(map) = layout.phys_to_orig() else {
        return phys;
    };
    let out = VertexArray::new(map.len(), fill);
    for (p, &orig) in map.iter().enumerate() {
        out.set(orig as usize, phys.get(p));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use blaze_graph::{GraphBuilder, VertexLayout};

    #[test]
    fn identity_layout_is_a_passthrough() {
        let layout = VertexPermutation::identity(4);
        let a = VertexArray::<i64>::new(4, 7);
        a.set(2, 9);
        let b = to_original_order(&layout, a, -1);
        assert_eq!(b.to_vec(), vec![7, 7, 9, 7]);
    }

    #[test]
    fn mapped_layout_reindexes_every_slot() {
        // Star with hub 3: degree layout moves vertex 3 to physical 0.
        let mut b = GraphBuilder::new(5);
        for v in [0u32, 1, 2, 4] {
            b.add_edge(3, v);
        }
        let g = b.build();
        let (perm, _) = VertexLayout::Degree.plan(&g);
        assert!(!perm.is_identity());
        let phys = VertexArray::<f64>::new(5, 0.0);
        for p in 0..5u32 {
            phys.set(p as usize, f64::from(perm.to_original(p)));
        }
        let out = to_original_order(&perm, phys, -1.0);
        for v in 0..5 {
            assert_eq!(out.get(v), v as f64, "slot {v} holds its original id");
        }
        assert_eq!(perm.to_physical(3), 0, "hub moves to the front");
    }
}
