//! Weakly Connected Components — Algorithm 3 of the paper: label
//! propagation with shortcutting (pointer jumping), run over both the CSR
//! and its transpose so labels flow along the undirected view.

use blaze_sync::Arc;

use blaze_core::{vertex_map, BlazeEngine, VertexArray};
use blaze_frontier::{PriorityFrontier, VertexSubset};
use blaze_types::{Result, VertexId};

use crate::mode::ExecMode;

/// Out-of-core WCC. `out_engine` runs over the graph, `in_engine` over its
/// transpose (the `.tgr` files of the artifact). Returns per-vertex labels:
/// the minimum *original* vertex id of each weakly connected component,
/// independent of the physical layout the graph was written with.
pub fn wcc(
    out_engine: &BlazeEngine,
    in_engine: &BlazeEngine,
    mode: ExecMode,
) -> Result<VertexArray<u32>> {
    let n = out_engine.num_vertices();
    assert_eq!(
        n,
        in_engine.num_vertices(),
        "transpose must match the graph"
    );
    assert_eq!(
        out_engine.graph().layout(),
        in_engine.graph().layout(),
        "graph and transpose must share one vertex layout"
    );
    let ids = Arc::new(VertexArray::<u32>::new(n, 0));
    let prev_ids = VertexArray::<u32>::new(n, 0);
    for v in 0..n {
        ids.set(v, v as u32);
        prev_ids.set(v, v as u32);
    }

    if mode == ExecMode::Async {
        run_async(out_engine, in_engine, &ids, n)?;
        // panic-audit: run_async's closures borrow the Arc clone only for
        // the duration of the call; by here this is the sole owner.
        let ids = Arc::try_unwrap(ids).expect("async path holds the only Arc");
        return Ok(canonicalize_labels(out_engine.graph().layout(), ids));
    }

    let mut frontier = VertexSubset::full(n);
    let threads = out_engine.options().compute_workers();

    while !frontier.is_empty() {
        // Propagate along out-edges, then in-edges (Algorithm 3 lines 36-37).
        let touched_out = run_direction(out_engine, &frontier, &ids, mode)?;
        let touched_in = run_direction(in_engine, &frontier, &ids, mode)?;
        let candidates = VertexSubset::from_members(
            n,
            touched_out
                .members()
                .into_iter()
                .chain(touched_in.members()),
        );
        // APPLYFILTER: shortcut (pointer jump) and keep only changed ids.
        frontier = vertex_map(
            &candidates,
            |i: VertexId| {
                let i = i as usize;
                let id = ids.get(ids.get(i) as usize);
                if ids.get(i) != id {
                    ids.set(i, id);
                }
                if prev_ids.get(i) != ids.get(i) {
                    prev_ids.set(i, ids.get(i));
                    true
                } else {
                    false
                }
            },
            threads,
        );
    }
    let ids = Arc::try_unwrap(ids).unwrap_or_else(|arc| {
        // Another Arc alive would be a bug; copy out defensively.
        let copy = VertexArray::<u32>::new(arc.len(), 0);
        for i in 0..arc.len() {
            copy.set(i, arc.get(i));
        }
        copy
    });
    Ok(canonicalize_labels(out_engine.graph().layout(), ids))
}

/// Barrier-free WCC: every vertex seeds one shared priority frontier
/// (bucketed by scaled label — small labels spread first, since they are
/// the ones that survive the min-fixpoint), and each drained batch scatters
/// over *both* directions before completing, so labels flow along the
/// undirected view exactly as in the barriered rounds. No pointer jumping:
/// quiescence of the frontier *is* the fixpoint, and min-label relaxation
/// is order-independent, so the converged labels — the minimum physical id
/// per component — are bit-identical to the barriered modes'.
fn run_async(
    out_engine: &BlazeEngine,
    in_engine: &BlazeEngine,
    ids: &Arc<VertexArray<u32>>,
    n: usize,
) -> Result<()> {
    let opts = out_engine.options();
    let nb = opts.async_buckets as u64;
    let pf = PriorityFrontier::new(n, opts.async_buckets);
    let priority =
        |v: VertexId| u64::from(ids.get(v as usize)).saturating_mul(nb) / (n.max(1) as u64);
    for v in 0..n as u32 {
        pf.push(v, priority(v));
    }
    let scatter = |s: VertexId, _d: VertexId| ids.get(s as usize);
    let gather = |d: VertexId, v: u32| {
        if v < ids.get(d as usize) {
            ids.set(d as usize, v);
            true
        } else {
            false
        }
    };
    let cond = |_d: VertexId| true;
    while let Some((bucket, batch)) = pf.pop_batch(opts.async_batch_max) {
        let round = out_engine
            .edge_map_async_batch(&batch, bucket, &pf, &scatter, &gather, &cond, &priority)
            .and_then(|()| {
                in_engine
                    .edge_map_async_batch(&batch, bucket, &pf, &scatter, &gather, &cond, &priority)
            });
        pf.complete_batch();
        round?;
    }
    debug_assert!(pf.is_quiescent(), "drained frontier must be quiescent");
    Ok(())
}

/// Boundary translation for WCC. Propagation converges to the minimum
/// *physical* id per component, and labels are used as array indices along
/// the way — so the run itself must stay physical. Afterwards each
/// component is relabeled to the minimum *original* id of its members and
/// the array re-indexed to original order, matching the unreordered run
/// exactly. Identity layouts skip the pass: physical == original there.
/// Shared with the sharded driver, which converges to the same fixpoint.
pub(crate) fn canonicalize_labels(
    layout: &blaze_graph::VertexPermutation,
    ids: VertexArray<u32>,
) -> VertexArray<u32> {
    let Some(map) = layout.phys_to_orig() else {
        return ids;
    };
    let n = map.len();
    // Pass 1: minimum original id per component representative.
    let mut comp_min = vec![VertexId::MAX; n];
    for (p, &orig) in map.iter().enumerate() {
        let rep = ids.get(p) as usize;
        comp_min[rep] = comp_min[rep].min(orig);
    }
    // Pass 2: re-index to original order with the canonical label.
    let out = VertexArray::<u32>::new(n, 0);
    for (p, &orig) in map.iter().enumerate() {
        out.set(orig as usize, comp_min[ids.get(p) as usize]);
    }
    out
}

/// One EDGEMAP over one direction: scatter the source's label, gather the
/// minimum into the destination, activating destinations whose label
/// shrank.
fn run_direction(
    engine: &BlazeEngine,
    frontier: &VertexSubset,
    ids: &Arc<VertexArray<u32>>,
    mode: ExecMode,
) -> Result<VertexSubset> {
    let scatter = {
        let ids = ids.clone();
        move |s: VertexId, _d: VertexId| ids.get(s as usize)
    };
    let cond = |_d: VertexId| true;
    match mode {
        ExecMode::Binned => engine.edge_map(
            frontier,
            scatter,
            |d: VertexId, v: u32| {
                if v < ids.get(d as usize) {
                    ids.set(d as usize, v);
                    true
                } else {
                    false
                }
            },
            cond,
            true,
        ),
        ExecMode::Sync => engine.edge_map_sync(
            frontier,
            scatter,
            |d: VertexId, v: u32| {
                ids.fetch_update(d as usize, |cur| (v < cur).then_some(v))
                    .is_ok()
            },
            cond,
            true,
        ),
        ExecMode::Async => unreachable!("async WCC runs through run_async"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use blaze_core::EngineOptions;
    use blaze_graph::gen::{rmat, uniform, RmatConfig};
    use blaze_graph::{Csr, DiskGraph, GraphBuilder};
    use blaze_storage::StripedStorage;

    fn engines(g: &Csr, devices: usize) -> (BlazeEngine, BlazeEngine) {
        let t = g.transpose();
        let s1 = Arc::new(StripedStorage::in_memory(devices).unwrap());
        let s2 = Arc::new(StripedStorage::in_memory(devices).unwrap());
        (
            BlazeEngine::new(
                Arc::new(DiskGraph::create(g, s1).unwrap()),
                EngineOptions::default(),
            )
            .unwrap(),
            BlazeEngine::new(
                Arc::new(DiskGraph::create(&t, s2).unwrap()),
                EngineOptions::default(),
            )
            .unwrap(),
        )
    }

    #[test]
    fn labels_match_union_find_on_rmat() {
        let g = rmat(&RmatConfig::new(8));
        let (oe, ie) = engines(&g, 1);
        let ids = wcc(&oe, &ie, ExecMode::Binned).unwrap();
        assert_eq!(ids.to_vec(), reference::wcc_labels(&g));
    }

    #[test]
    fn sync_mode_matches_too() {
        let g = uniform(8, 4, 9);
        let (oe, ie) = engines(&g, 2);
        let ids = wcc(&oe, &ie, ExecMode::Sync).unwrap();
        assert_eq!(ids.to_vec(), reference::wcc_labels(&g));
    }

    #[test]
    fn async_mode_matches_union_find() {
        let g = rmat(&RmatConfig::new(8));
        let (oe, ie) = engines(&g, 1);
        let ids = wcc(&oe, &ie, ExecMode::Async).unwrap();
        assert_eq!(ids.to_vec(), reference::wcc_labels(&g));
        assert!(oe.stats().async_rounds >= 1);
        assert!(ie.stats().async_rounds >= 1, "both directions run async");
    }

    #[test]
    fn disconnected_components_keep_separate_labels() {
        let mut b = GraphBuilder::new(7);
        // Component {0,1,2}, component {3,4} (via directed edge), isolated 5, 6.
        b.extend([(1, 0), (2, 1), (4, 3)]);
        let g = b.build();
        let (oe, ie) = engines(&g, 1);
        let ids = wcc(&oe, &ie, ExecMode::Binned).unwrap();
        assert_eq!(ids.to_vec(), vec![0, 0, 0, 3, 3, 5, 6]);
    }

    #[test]
    fn direction_does_not_matter_for_weak_connectivity() {
        // A directed chain is weakly connected regardless of orientation.
        let mut b = GraphBuilder::new(5);
        b.extend([(1, 0), (1, 2), (3, 2), (3, 4)]);
        let g = b.build();
        let (oe, ie) = engines(&g, 1);
        let ids = wcc(&oe, &ie, ExecMode::Binned).unwrap();
        assert!(ids.to_vec().iter().all(|&l| l == 0));
    }
}
