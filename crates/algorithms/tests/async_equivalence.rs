//! Property tests pinning barrier-free execution to the barriered oracle:
//! for every monotone query, [`ExecMode::Async`] must return answers
//! *bit-identical* to [`ExecMode::Sync`] (and to the in-memory reference)
//! — the async engine reorders work, it must never change the fixpoint.
//!
//! Covered: BFS levels, SSSP distances, WCC labels, k-core membership and
//! forward propagation labels, over random edge sets, a super-vertex hub
//! shape, and R-MAT graphs, under both the identity layout and the
//! degree-aware physical layout. Small async batch/bucket knobs are also
//! exercised so multi-round draining (not just one big batch) is covered.

use std::path::Path;

use proptest::prelude::*;

use blaze_algorithms::{bfs, kcore, label_propagation, reference, sssp, wcc, ExecMode};
use blaze_core::{BlazeEngine, EngineOptions};
use blaze_graph::disk::{save_files_with_layout, LayoutMeta};
use blaze_graph::gen::{rmat, RmatConfig};
use blaze_graph::{Csr, DiskGraph, GraphBuilder, VertexLayout};
use blaze_storage::StripedStorage;
use blaze_sync::Arc;

const N: u32 = 64;
const LAYOUTS: [VertexLayout; 2] = [VertexLayout::None, VertexLayout::Degree];

fn build(edges: Vec<(u32, u32)>) -> Csr {
    let mut b = GraphBuilder::new(N as usize);
    b.extend(edges);
    b.build()
}

/// Random edges or a hub-heavy super-vertex shape — chosen per case (the
/// R-MAT shape gets its own deterministic test below).
fn arb_graph() -> impl Strategy<Value = Csr> {
    (
        proptest::sample::select(vec![0usize, 1]),
        proptest::collection::vec((0..N, 0..N), 1..400),
        0..N,
        proptest::collection::vec(0..N, 50..300),
    )
        .prop_map(|(kind, edges, hub, sources)| match kind {
            0 => build(edges),
            _ => build(
                sources
                    .into_iter()
                    .map(|s| (s, hub))
                    .chain(edges.into_iter().take(50))
                    .collect(),
            ),
        })
}

/// Tiny batches and few buckets force many async rounds, bucket
/// saturation, and re-prioritized pushes — the interesting schedules.
fn opts() -> EngineOptions {
    EngineOptions::default()
        .with_cache_bytes(1 << 20)
        .with_async_batch_max(16)
        .with_async_buckets(4)
}

fn engine_with_layout(g: &Csr, layout: VertexLayout) -> BlazeEngine {
    let storage = Arc::new(StripedStorage::in_memory(2).unwrap());
    BlazeEngine::new(
        Arc::new(DiskGraph::create_with_layout(g, storage, layout).unwrap()),
        opts(),
    )
    .unwrap()
}

/// Out + transpose engines sharing ONE permutation via the on-disk path.
fn engine_pair_with_layout(
    g: &Csr,
    layout: VertexLayout,
    dir: &Path,
) -> (BlazeEngine, BlazeEngine) {
    let (perm, hot_vertices) = layout.plan(g);
    let phys = perm.permute_csr(g);
    let phys_t = phys.transpose();
    let meta = LayoutMeta {
        kind: layout,
        hot_vertices,
        perm,
    };
    let (gi, ga) = save_files_with_layout(&phys, dir, "g.gr", 2, Some(&meta)).unwrap();
    let (ti, ta) = save_files_with_layout(&phys_t, dir, "g.tgr", 2, Some(&meta)).unwrap();
    let oe = BlazeEngine::new(Arc::new(DiskGraph::open_files(&gi, &ga).unwrap()), opts()).unwrap();
    let ie = BlazeEngine::new(Arc::new(DiskGraph::open_files(&ti, &ta).unwrap()), opts()).unwrap();
    (oe, ie)
}

/// BFS levels derived from a parent array; the tree may differ between
/// schedules, the levels may not.
fn levels_from_parents(parent: &[i64], root: u32) -> Vec<i64> {
    parent
        .iter()
        .enumerate()
        .map(|(v, &p)| {
            if p < 0 {
                return -1;
            }
            let mut cur = v as u32;
            let mut depth = 0i64;
            while cur != root {
                cur = parent[cur as usize] as u32;
                depth += 1;
                assert!(depth <= parent.len() as i64, "parent cycle at {v}");
            }
            depth
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Async BFS levels are bit-identical to the sync oracle's under both
    /// layouts, and every async parent edge exists in the original graph.
    #[test]
    fn async_bfs_levels_match_sync_oracle(g in arb_graph(), root in 0..N) {
        for layout in LAYOUTS {
            let e = engine_with_layout(&g, layout);
            let sync_parent = bfs(&e, root, ExecMode::Sync).unwrap().to_vec();
            let async_parent = bfs(&e, root, ExecMode::Async).unwrap().to_vec();
            prop_assert_eq!(
                levels_from_parents(&async_parent, root),
                levels_from_parents(&sync_parent, root),
                "levels under {} layout", layout.name()
            );
            for (v, &p) in async_parent.iter().enumerate() {
                if p >= 0 && v as u32 != root {
                    prop_assert!(
                        g.neighbors(p as u32).contains(&(v as u32)),
                        "{} layout: async parent {p} lacks edge to {v}", layout.name()
                    );
                }
            }
        }
    }

    /// Async SSSP distances are bit-identical to the sync oracle's (and
    /// distances are a unique fixpoint, so this pins the exact array).
    #[test]
    fn async_sssp_distances_match_sync_oracle(g in arb_graph(), root in 0..N) {
        for layout in LAYOUTS {
            let e = engine_with_layout(&g, layout);
            let want = sssp(&e, root, ExecMode::Sync).unwrap().to_vec();
            prop_assert_eq!(&want, &reference::sssp_distances(&g, root));
            let got = sssp(&e, root, ExecMode::Async).unwrap().to_vec();
            prop_assert_eq!(&got, &want, "distances under {} layout", layout.name());
        }
    }

    /// Async WCC labels are bit-identical to the sync oracle's.
    #[test]
    fn async_wcc_labels_match_sync_oracle(g in arb_graph()) {
        for layout in LAYOUTS {
            let dir = tempfile::tempdir().unwrap();
            let (oe, ie) = engine_pair_with_layout(&g, layout, dir.path());
            let want = wcc(&oe, &ie, ExecMode::Sync).unwrap().to_vec();
            prop_assert_eq!(&want, &reference::wcc_labels(&g));
            let got = wcc(&oe, &ie, ExecMode::Async).unwrap().to_vec();
            prop_assert_eq!(&got, &want, "labels under {} layout", layout.name());
        }
    }

    /// Async k-core membership and label-propagation labels are
    /// bit-identical to their sync oracles.
    #[test]
    fn async_kcore_and_labelprop_match_sync_oracle(g in arb_graph(), k in 1u32..5) {
        for layout in LAYOUTS {
            let dir = tempfile::tempdir().unwrap();
            let (oe, ie) = engine_pair_with_layout(&g, layout, dir.path());
            let want = kcore(&oe, &ie, k, ExecMode::Sync).unwrap().to_vec();
            prop_assert_eq!(&want, &reference::kcore_alive(&g, i64::from(k)));
            let got = kcore(&oe, &ie, k, ExecMode::Async).unwrap().to_vec();
            prop_assert_eq!(&got, &want, "k-core under {} layout", layout.name());

            let want = label_propagation(&oe, ExecMode::Sync).unwrap().to_vec();
            prop_assert_eq!(&want, &reference::labelprop_labels(&g));
            let got = label_propagation(&oe, ExecMode::Async).unwrap().to_vec();
            prop_assert_eq!(&got, &want, "labelprop under {} layout", layout.name());
        }
    }
}

/// R-MAT graphs (power-law): all five monotone queries agree between async
/// and sync under both layouts at scale 8.
#[test]
fn rmat_async_matches_sync_for_all_monotone_queries() {
    let g = rmat(&RmatConfig::new(8));
    for layout in LAYOUTS {
        let e = engine_with_layout(&g, layout);
        let sync_parent = bfs(&e, 0, ExecMode::Sync).unwrap().to_vec();
        let async_parent = bfs(&e, 0, ExecMode::Async).unwrap().to_vec();
        assert_eq!(
            levels_from_parents(&async_parent, 0),
            levels_from_parents(&sync_parent, 0),
            "bfs under {} layout",
            layout.name()
        );
        assert_eq!(
            sssp(&e, 0, ExecMode::Async).unwrap().to_vec(),
            sssp(&e, 0, ExecMode::Sync).unwrap().to_vec(),
            "sssp under {} layout",
            layout.name()
        );
        assert_eq!(
            label_propagation(&e, ExecMode::Async).unwrap().to_vec(),
            label_propagation(&e, ExecMode::Sync).unwrap().to_vec(),
            "labelprop under {} layout",
            layout.name()
        );
        let dir = tempfile::tempdir().unwrap();
        let (oe, ie) = engine_pair_with_layout(&g, layout, dir.path());
        assert_eq!(
            wcc(&oe, &ie, ExecMode::Async).unwrap().to_vec(),
            wcc(&oe, &ie, ExecMode::Sync).unwrap().to_vec(),
            "wcc under {} layout",
            layout.name()
        );
        assert_eq!(
            kcore(&oe, &ie, 3, ExecMode::Async).unwrap().to_vec(),
            kcore(&oe, &ie, 3, ExecMode::Sync).unwrap().to_vec(),
            "kcore under {} layout",
            layout.name()
        );
        assert!(
            oe.stats().async_rounds >= 1,
            "async runs must trace rounds under {} layout",
            layout.name()
        );
    }
}
