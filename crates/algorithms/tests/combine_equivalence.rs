//! Property tests pinning scatter-side combining to the uncombined
//! semantics: for associative operators, `edge_map_combined` must produce
//! results *identical* to the uncombined binned path, the sync (CAS) path,
//! and an in-memory reference — on both R-MAT-like random graphs and
//! super-vertex graphs where nearly every edge targets one hub (the
//! combining-heaviest shape).
//!
//! Exactness is deliberate, not tolerance-based: the payloads are either
//! `u32` (`min` for labels/levels) or integer-valued `f64` (sums stay well
//! below 2^53, so floating-point addition is exact and order-independent).

use proptest::prelude::*;

use blaze_algorithms::reference;
use blaze_algorithms::{pagerank_delta, pagerank_delta_combined, ExecMode, PageRankConfig};
use blaze_core::{BlazeEngine, EngineOptions, VertexArray};
use blaze_frontier::VertexSubset;
use blaze_graph::{Csr, DiskGraph, GraphBuilder};
use blaze_storage::StripedStorage;
use blaze_sync::Arc;
use blaze_types::VertexId;

const N: u32 = 64;

fn build(edges: Vec<(u32, u32)>) -> Csr {
    let mut b = GraphBuilder::new(N as usize);
    b.extend(edges);
    b.build()
}

/// Random edges — the R-MAT-shaped case (duplicates allowed; they exercise
/// repeated-destination windows too).
fn arb_random() -> impl Strategy<Value = Csr> {
    proptest::collection::vec((0..N, 0..N), 1..500).prop_map(build)
}

/// Either a random-edge graph or a super-vertex graph where most edges
/// point at one hub — the combining-heaviest shape, every staging window
/// full of same-destination records.
fn arb_graph() -> impl Strategy<Value = Csr> {
    (
        proptest::sample::select(vec![0usize, 1]),
        proptest::collection::vec((0..N, 0..N), 1..500),
        0..N,
        proptest::collection::vec(0..N, 50..400),
    )
        .prop_map(|(kind, edges, hub, sources)| {
            if kind == 0 {
                build(edges)
            } else {
                let hub_edges = sources
                    .into_iter()
                    .map(|s| (s, hub))
                    .chain(edges.into_iter().take(50))
                    .collect();
                build(hub_edges)
            }
        })
}

fn engine(g: &Csr, devices: usize) -> BlazeEngine {
    let storage = Arc::new(StripedStorage::in_memory(devices).unwrap());
    BlazeEngine::new(
        Arc::new(DiskGraph::create(g, storage).unwrap()),
        EngineOptions::default(),
    )
    .unwrap()
}

/// SpMV with integer-valued `f64` entries, in all four flavors.
fn spmv_all_paths(g: &Csr, x: &[f64]) -> [Vec<f64>; 4] {
    let e = engine(g, 2);
    let frontier = VertexSubset::full(g.num_vertices());
    let run = |path: usize| {
        let y = VertexArray::<f64>::new(g.num_vertices(), 0.0);
        let scatter = |s: VertexId, _d: VertexId| x[s as usize];
        let gather = |d: VertexId, v: f64| {
            y.set(d as usize, y.get(d as usize) + v);
            false
        };
        match path {
            0 => e
                .edge_map_combined(&frontier, scatter, gather, |a, b| a + b, |_| true, false)
                .unwrap(),
            1 => e
                .edge_map(&frontier, scatter, gather, |_| true, false)
                .unwrap(),
            _ => e
                .edge_map_sync(
                    &frontier,
                    scatter,
                    |d: VertexId, v: f64| {
                        y.fetch_add(d as usize, v);
                        false
                    },
                    |_| true,
                    false,
                )
                .unwrap(),
        };
        y.to_vec()
    };
    [run(0), run(1), run(2), reference::spmv(g, x)]
}

/// One full WCC by label propagation (out-direction only on an undirected
/// doubled edge set would need a transpose engine; instead we fold both
/// directions into the graph itself so one engine suffices).
fn undirect(g: &Csr) -> Csr {
    let mut b = GraphBuilder::new(g.num_vertices()).dedup(true);
    b.extend(g.edges());
    b.extend(g.edges().map(|(s, d)| (d, s)));
    b.build()
}

/// Label-propagation WCC over one (already undirected) engine, with the
/// given edge-map flavor: 0 combined, 1 binned, 2 sync.
fn wcc_labels_via(e: &BlazeEngine, path: usize) -> Vec<u32> {
    let n = e.num_vertices();
    let ids = VertexArray::<u32>::new(n, 0);
    for v in 0..n {
        ids.set(v, v as u32);
    }
    let mut frontier = VertexSubset::full(n);
    while !frontier.is_empty() {
        let scatter = |s: VertexId, _d: VertexId| ids.get(s as usize);
        let gather = |d: VertexId, v: u32| {
            if v < ids.get(d as usize) {
                ids.set(d as usize, v);
                true
            } else {
                false
            }
        };
        frontier = match path {
            0 => e
                .edge_map_combined(
                    &frontier,
                    scatter,
                    gather,
                    |a: u32, b: u32| a.min(b),
                    |_| true,
                    true,
                )
                .unwrap(),
            1 => e
                .edge_map(&frontier, scatter, gather, |_| true, true)
                .unwrap(),
            _ => e
                .edge_map_sync(
                    &frontier,
                    scatter,
                    |d: VertexId, v: u32| {
                        ids.fetch_update(d as usize, |cur| (v < cur).then_some(v))
                            .is_ok()
                    },
                    |_| true,
                    true,
                )
                .unwrap(),
        };
    }
    ids.to_vec()
}

/// BFS levels with the given edge-map flavor: 0 combined (min over the
/// constant level payload), 1 binned, 2 sync.
fn bfs_levels_via(e: &BlazeEngine, root: u32, path: usize) -> Vec<i64> {
    let n = e.num_vertices();
    let level = VertexArray::<i64>::new(n, -1);
    level.set(root as usize, 0);
    let mut frontier = VertexSubset::single(n, root);
    let mut depth: i64 = 0;
    while !frontier.is_empty() {
        depth += 1;
        let d = depth;
        let scatter = |_s: u32, _dst: u32| d as u32;
        let cond = |dst: u32| level.get(dst as usize) == -1;
        let gather = |dst: u32, v: u32| {
            if level.get(dst as usize) == -1 {
                level.set(dst as usize, v as i64);
                true
            } else {
                false
            }
        };
        frontier = match path {
            0 => e
                .edge_map_combined(
                    &frontier,
                    scatter,
                    gather,
                    |a: u32, b: u32| a.min(b),
                    cond,
                    true,
                )
                .unwrap(),
            1 => e.edge_map(&frontier, scatter, gather, cond, true).unwrap(),
            _ => e
                .edge_map_sync(
                    &frontier,
                    scatter,
                    |dst: u32, v: u32| {
                        level
                            .fetch_update(dst as usize, |cur| (cur == -1).then_some(v as i64))
                            .is_ok()
                    },
                    cond,
                    true,
                )
                .unwrap(),
        };
    }
    level.to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Integer-valued SpMV: combined, binned, sync, and the in-memory
    /// reference agree bit for bit.
    #[test]
    fn spmv_combining_is_exact(g in arb_graph(), seed in 0u64..1000) {
        let x: Vec<f64> = (0..g.num_vertices())
            .map(|i| ((i as u64).wrapping_mul(seed + 1) % 17) as f64)
            .collect();
        let [combined, binned, sync, reference] = spmv_all_paths(&g, &x);
        prop_assert_eq!(&combined, &binned);
        prop_assert_eq!(&combined, &sync);
        prop_assert_eq!(&combined, &reference);
    }

    /// WCC labels from the combined min-propagation loop equal the
    /// uncombined paths and the union-find reference exactly.
    #[test]
    fn wcc_combining_is_exact(g in arb_graph()) {
        let u = undirect(&g);
        let e = engine(&u, 1);
        let combined = wcc_labels_via(&e, 0);
        prop_assert_eq!(&combined, &wcc_labels_via(&e, 1));
        prop_assert_eq!(&combined, &wcc_labels_via(&e, 2));
        prop_assert_eq!(&combined, &reference::wcc_labels(&g));
    }

    /// BFS levels agree exactly across all three edge-map flavors and the
    /// reference.
    #[test]
    fn bfs_combining_is_exact(g in arb_graph(), root in 0..N) {
        let e = engine(&g, 2);
        let combined = bfs_levels_via(&e, root, 0);
        prop_assert_eq!(&combined, &bfs_levels_via(&e, root, 1));
        prop_assert_eq!(&combined, &bfs_levels_via(&e, root, 2));
        prop_assert_eq!(&combined, &reference::bfs_levels(&g, root));
    }

    /// PageRank-delta with combining converges to the same ranks as the
    /// reference (tolerance-based: real rank payloads are non-integer
    /// f64, where summation order legitimately perturbs low bits).
    #[test]
    fn pagerank_combining_matches_reference(g in arb_random()) {
        let e = engine(&g, 1);
        let cfg = PageRankConfig::default();
        let combined = pagerank_delta_combined(&e, cfg).unwrap().to_vec();
        let binned = pagerank_delta(&e, cfg, ExecMode::Binned).unwrap().to_vec();
        let expect = reference::pagerank_delta(&g, cfg.damping, cfg.epsilon, cfg.max_iters);
        for (i, (a, b)) in combined.iter().zip(&expect).enumerate() {
            let scale = a.abs().max(b.abs()).max(1e-12);
            prop_assert!((a - b).abs() / scale < 1e-6, "rank {i}: {a} vs {b}");
        }
        for (i, (a, b)) in combined.iter().zip(&binned).enumerate() {
            let scale = a.abs().max(b.abs()).max(1e-12);
            prop_assert!((a - b).abs() / scale < 1e-6, "rank {i}: {a} vs {b}");
        }
    }
}
