//! Property tests pinning the degree-aware physical layouts to the
//! unreordered semantics: every query must return the *same answer* on a
//! graph written with `--layout degree` or `--layout hub` as on the
//! original vertex order — BFS levels and WCC labels exactly, SpMV on
//! integer vectors exactly, PageRank within 1e-6 (floating-point
//! summation order legitimately shifts low bits), BC within 1e-9.
//!
//! Graph shapes: random edge sets, a zero-degree prefix, a super-vertex
//! hub absorbing most edges, and generated R-MAT graphs — the degree
//! sequences the layouts were designed around.

use std::path::Path;

use proptest::prelude::*;

use blaze_algorithms::{bc, bfs, pagerank_delta, reference, spmv, wcc, ExecMode, PageRankConfig};
use blaze_core::{BlazeEngine, EngineOptions};
use blaze_graph::disk::{save_files_with_layout, LayoutMeta};
use blaze_graph::gen::{rmat, RmatConfig};
use blaze_graph::{Csr, DiskGraph, GraphBuilder, VertexLayout};
use blaze_storage::StripedStorage;
use blaze_sync::Arc;

const N: u32 = 64;
const LAYOUTS: [VertexLayout; 2] = [VertexLayout::Degree, VertexLayout::Hub];

fn build(edges: Vec<(u32, u32)>) -> Csr {
    let mut b = GraphBuilder::new(N as usize);
    b.extend(edges);
    b.build()
}

/// Random edges, a hub-heavy super-vertex shape, or a zero-degree prefix
/// (vertices 0..16 own no out-edges) — chosen per case.
fn arb_graph() -> impl Strategy<Value = Csr> {
    (
        proptest::sample::select(vec![0usize, 1, 2]),
        proptest::collection::vec((0..N, 0..N), 1..400),
        0..N,
        proptest::collection::vec(0..N, 50..300),
    )
        .prop_map(|(kind, edges, hub, sources)| match kind {
            0 => build(edges),
            1 => build(
                sources
                    .into_iter()
                    .map(|s| (s, hub))
                    .chain(edges.into_iter().take(50))
                    .collect(),
            ),
            _ => build(
                edges
                    .into_iter()
                    .map(|(s, d)| (s % (N - 16) + 16, d))
                    .collect(),
            ),
        })
}

/// Engine options with a small page cache, so layouted runs also exercise
/// the heat-informed admission path end to end.
fn opts() -> EngineOptions {
    EngineOptions::default().with_cache_bytes(1 << 20)
}

/// One engine over `g` written under `layout` (in-memory storage).
fn engine_with_layout(g: &Csr, layout: VertexLayout) -> BlazeEngine {
    let storage = Arc::new(StripedStorage::in_memory(2).unwrap());
    BlazeEngine::new(
        Arc::new(DiskGraph::create_with_layout(g, storage, layout).unwrap()),
        opts(),
    )
    .unwrap()
}

/// Out + transpose engines sharing ONE permutation, via the on-disk file
/// path — exactly what the convert/gengraph tools produce.
fn engine_pair_with_layout(
    g: &Csr,
    layout: VertexLayout,
    dir: &Path,
) -> (BlazeEngine, BlazeEngine) {
    let (perm, hot_vertices) = layout.plan(g);
    let phys = perm.permute_csr(g);
    let phys_t = phys.transpose();
    let meta = LayoutMeta {
        kind: layout,
        hot_vertices,
        perm,
    };
    let (gi, ga) = save_files_with_layout(&phys, dir, "g.gr", 2, Some(&meta)).unwrap();
    let (ti, ta) = save_files_with_layout(&phys_t, dir, "g.tgr", 2, Some(&meta)).unwrap();
    let oe = BlazeEngine::new(Arc::new(DiskGraph::open_files(&gi, &ga).unwrap()), opts()).unwrap();
    let ie = BlazeEngine::new(Arc::new(DiskGraph::open_files(&ti, &ta).unwrap()), opts()).unwrap();
    (oe, ie)
}

/// BFS levels derived from a parent array: tree choice may differ between
/// layouts, but the level of every vertex may not.
fn levels_from_parents(parent: &[i64], root: u32) -> Vec<i64> {
    parent
        .iter()
        .enumerate()
        .map(|(v, &p)| {
            if p < 0 {
                return -1;
            }
            let mut cur = v as u32;
            let mut depth = 0i64;
            while cur != root {
                cur = parent[cur as usize] as u32;
                depth += 1;
                assert!(depth <= parent.len() as i64, "parent cycle at {v}");
            }
            depth
        })
        .collect()
}

fn assert_close(a: &[f64], b: &[f64], tol: f64, what: &str) {
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        let scale = x.abs().max(y.abs()).max(1e-12);
        assert!((x - y).abs() / scale < tol, "{what}[{i}]: {x} vs {y}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// BFS levels are identical across identity, degree, and hub layouts,
    /// and each layout's parent array is a valid tree over original ids.
    #[test]
    fn bfs_levels_are_layout_invariant(g in arb_graph(), root in 0..N) {
        let want = reference::bfs_levels(&g, root);
        for layout in LAYOUTS {
            let e = engine_with_layout(&g, layout);
            let parent = bfs(&e, root, ExecMode::Binned).unwrap().to_vec();
            prop_assert_eq!(
                &levels_from_parents(&parent, root), &want,
                "levels under {} layout", layout.name()
            );
            // Every parent edge must exist in the ORIGINAL graph: proof
            // the boundary translation returned original ids.
            for (v, &p) in parent.iter().enumerate() {
                if p >= 0 && v as u32 != root {
                    prop_assert!(
                        g.neighbors(p as u32).contains(&(v as u32)),
                        "{} layout: parent {p} lacks edge to {v}", layout.name()
                    );
                }
            }
        }
    }

    /// WCC labels (minimum original id per component) are bit-identical
    /// across layouts, in both execution modes.
    #[test]
    fn wcc_labels_are_layout_invariant(g in arb_graph()) {
        let want = reference::wcc_labels(&g);
        for layout in LAYOUTS {
            let dir = tempfile::tempdir().unwrap();
            let (oe, ie) = engine_pair_with_layout(&g, layout, dir.path());
            let ids = wcc(&oe, &ie, ExecMode::Binned).unwrap().to_vec();
            prop_assert_eq!(&ids, &want, "labels under {} layout", layout.name());
            let ids = wcc(&oe, &ie, ExecMode::Sync).unwrap().to_vec();
            prop_assert_eq!(&ids, &want, "sync labels under {} layout", layout.name());
        }
    }

    /// PageRank ranks agree with the unreordered reference to 1e-6 under
    /// every layout.
    #[test]
    fn pagerank_is_layout_invariant_to_1e6(g in arb_graph()) {
        let cfg = PageRankConfig::default();
        let want = reference::pagerank_delta(&g, cfg.damping, cfg.epsilon, cfg.max_iters);
        for layout in LAYOUTS {
            let e = engine_with_layout(&g, layout);
            let p = pagerank_delta(&e, cfg, ExecMode::Binned).unwrap().to_vec();
            assert_close(&p, &want, 1e-6, layout.name());
        }
    }

    /// SpMV on an integer-valued vector is EXACT across layouts: sums of
    /// small integers are order-independent in f64.
    #[test]
    fn integer_spmv_is_layout_invariant_exactly(g in arb_graph(), seed in 0u64..1000) {
        let x: Vec<f64> = (0..g.num_vertices())
            .map(|i| ((i as u64).wrapping_mul(seed + 1) % 17) as f64)
            .collect();
        let want = reference::spmv(&g, &x);
        for layout in LAYOUTS {
            let e = engine_with_layout(&g, layout);
            let y = spmv(&e, &x, ExecMode::Binned).unwrap().to_vec();
            prop_assert_eq!(&y, &want, "spmv under {} layout", layout.name());
        }
    }

    /// BC dependency scores agree to 1e-9 under every layout.
    #[test]
    fn bc_scores_are_layout_invariant(g in arb_graph(), root in 0..N) {
        let want = reference::bc_scores(&g, root);
        for layout in LAYOUTS {
            let dir = tempfile::tempdir().unwrap();
            let (oe, ie) = engine_pair_with_layout(&g, layout, dir.path());
            let scores = bc(&oe, &ie, root, ExecMode::Binned).unwrap().to_vec();
            assert_close(&scores, &want, 1e-9, layout.name());
        }
    }
}

/// R-MAT graphs (power-law, the shape the layouts target): BFS levels,
/// WCC labels, and PageRank all layout-invariant at scale 8.
#[test]
fn rmat_queries_are_layout_invariant() {
    let g = rmat(&RmatConfig::new(8));
    let bfs_want = reference::bfs_levels(&g, 0);
    let pr_cfg = PageRankConfig::default();
    let pr_want = reference::pagerank_delta(&g, pr_cfg.damping, pr_cfg.epsilon, pr_cfg.max_iters);
    let wcc_want = reference::wcc_labels(&g);
    for layout in LAYOUTS {
        let e = engine_with_layout(&g, layout);
        assert!(
            !e.graph().layout().is_identity(),
            "an R-MAT graph must actually reorder under {}",
            layout.name()
        );
        let parent = bfs(&e, 0, ExecMode::Binned).unwrap().to_vec();
        assert_eq!(levels_from_parents(&parent, 0), bfs_want);
        let p = pagerank_delta(&e, pr_cfg, ExecMode::Binned)
            .unwrap()
            .to_vec();
        assert_close(&p, &pr_want, 1e-6, layout.name());
        let dir = tempfile::tempdir().unwrap();
        let (oe, ie) = engine_pair_with_layout(&g, layout, dir.path());
        let ids = wcc(&oe, &ie, ExecMode::Binned).unwrap().to_vec();
        assert_eq!(ids, wcc_want, "wcc labels under {} layout", layout.name());
    }
}
