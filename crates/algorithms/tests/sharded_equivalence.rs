//! Property tests pinning the sharded drivers to the single-engine
//! semantics: the concurrent destination-partitioned cluster must return
//! the *same answer* as one engine over the whole graph, for every shard
//! count — BFS levels and WCC labels bit-identical, SpMV on integer
//! vectors exact, PageRank within 1e-6 (floating-point summation order
//! legitimately shifts low bits across partitionings).
//!
//! Axes: shard counts {1, 2, 3, 8} x graph shapes (random edge sets, a
//! super-vertex hub absorbing most in-edges, generated R-MAT) x physical
//! layouts (identity and degree-reordered).

use proptest::prelude::*;

use blaze_algorithms::{
    reference, sharded_bfs, sharded_pagerank, sharded_spmv, sharded_wcc, wcc, ExecMode,
    PageRankConfig,
};
use blaze_core::{BlazeEngine, EngineOptions};
use blaze_graph::gen::{rmat, RmatConfig};
use blaze_graph::{Csr, DiskGraph, GraphBuilder, VertexLayout};
use blaze_scaleout::Cluster;
use blaze_storage::StripedStorage;
use blaze_sync::Arc;

const N: u32 = 48;
const SHARDS: [usize; 4] = [1, 2, 3, 8];
const LAYOUTS: [VertexLayout; 2] = [VertexLayout::None, VertexLayout::Degree];

fn build(edges: Vec<(u32, u32)>) -> Csr {
    let mut b = GraphBuilder::new(N as usize);
    b.extend(edges);
    b.build()
}

/// Random edges or a hub-heavy super-vertex shape — the skew that makes
/// destination partitioning earn its repair pass.
fn arb_graph() -> impl Strategy<Value = Csr> {
    (
        any::<bool>(),
        proptest::collection::vec((0..N, 0..N), 1..300),
        0..N,
        proptest::collection::vec(0..N, 40..200),
    )
        .prop_map(|(hubby, edges, hub, sources)| {
            if hubby {
                build(
                    sources
                        .into_iter()
                        .map(|s| (s, hub))
                        .chain(edges.into_iter().take(40))
                        .collect(),
                )
            } else {
                build(edges)
            }
        })
}

fn opts() -> EngineOptions {
    EngineOptions::default()
}

/// Graph + transpose clusters sharing ONE permutation (the transpose must
/// not re-plan its own degree order), as the WCC driver requires.
fn cluster_pair(g: &Csr, layout: VertexLayout, shards: usize) -> (Cluster, Cluster) {
    let (perm, _hot) = layout.plan(g);
    let phys = perm.permute_csr(g);
    let phys_t = phys.transpose();
    let oc = Cluster::build_physical(&phys, perm.clone(), shards, 1, opts()).unwrap();
    let ic = Cluster::build_physical(&phys_t, perm, shards, 1, opts()).unwrap();
    (oc, ic)
}

fn assert_close(a: &[f64], b: &[f64], tol: f64, what: &str) {
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        let scale = x.abs().max(y.abs()).max(1e-12);
        assert!((x - y).abs() / scale < tol, "{what}[{i}]: {x} vs {y}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// BFS levels are bit-identical to the reference for every shard count
    /// and layout.
    #[test]
    fn bfs_levels_match_for_every_shard_count(g in arb_graph(), root in 0..N) {
        let want = reference::bfs_levels(&g, root);
        for layout in LAYOUTS {
            for shards in SHARDS {
                let c = Cluster::build_with_layout(&g, layout, shards, 1, opts()).unwrap();
                let levels = sharded_bfs(&c, root).unwrap().to_vec();
                prop_assert_eq!(
                    &levels, &want,
                    "levels with {} shards under {} layout", shards, layout.name()
                );
            }
        }
    }

    /// WCC labels (minimum original id per component) are bit-identical to
    /// the reference for every shard count and layout.
    #[test]
    fn wcc_labels_match_for_every_shard_count(g in arb_graph()) {
        let want = reference::wcc_labels(&g);
        for layout in LAYOUTS {
            for shards in SHARDS {
                let (oc, ic) = cluster_pair(&g, layout, shards);
                let ids = sharded_wcc(&oc, &ic).unwrap().to_vec();
                prop_assert_eq!(
                    &ids, &want,
                    "labels with {} shards under {} layout", shards, layout.name()
                );
            }
        }
    }

    /// SpMV on an integer-valued vector is EXACT for every shard count:
    /// each destination's sum runs entirely on the one shard owning it, so
    /// partitioning cannot even reorder the accumulation.
    #[test]
    fn integer_spmv_is_exact_for_every_shard_count(g in arb_graph(), seed in 0u64..1000) {
        let x: Vec<f64> = (0..g.num_vertices())
            .map(|i| ((i as u64).wrapping_mul(seed + 1) % 23) as f64)
            .collect();
        let want = reference::spmv(&g, &x);
        for layout in LAYOUTS {
            for shards in SHARDS {
                let c = Cluster::build_with_layout(&g, layout, shards, 1, opts()).unwrap();
                let y = sharded_spmv(&c, &x).unwrap().to_vec();
                prop_assert_eq!(
                    &y, &want,
                    "spmv with {} shards under {} layout", shards, layout.name()
                );
            }
        }
    }

    /// PageRank ranks agree with the reference to 1e-6 relative for every
    /// shard count.
    #[test]
    fn pagerank_tracks_reference_for_every_shard_count(g in arb_graph()) {
        let cfg = PageRankConfig::default();
        let want = reference::pagerank_delta(&g, cfg.damping, cfg.epsilon, cfg.max_iters);
        for layout in LAYOUTS {
            for shards in SHARDS {
                let c = Cluster::build_with_layout(&g, layout, shards, 1, opts()).unwrap();
                let p = sharded_pagerank(&c, cfg).unwrap().to_vec();
                assert_close(
                    &p, &want, 1e-6,
                    &format!("{} shards, {} layout", shards, layout.name()),
                );
            }
        }
    }
}

/// R-MAT at scale 8 (power-law, the shape destination partitioning
/// targets): all four sharded queries against the single-engine oracle on
/// 8 shards with a degree layout — the deepest configuration the proptest
/// axes reach, held bit-identical where the output is deterministic.
#[test]
fn rmat_sharded_queries_match_single_engine_oracle() {
    let g = rmat(&RmatConfig::new(8));
    let t = g.transpose();

    // Single-engine oracle runs (identity layout; outputs in original ids).
    let engine = |graph: &Csr| -> BlazeEngine {
        let storage = Arc::new(StripedStorage::in_memory(2).unwrap());
        BlazeEngine::new(Arc::new(DiskGraph::create(graph, storage).unwrap()), opts()).unwrap()
    };
    let oracle_wcc = wcc(&engine(&g), &engine(&t), ExecMode::Binned)
        .unwrap()
        .to_vec();
    let oracle_levels = reference::bfs_levels(&g, 0);
    let pr_cfg = PageRankConfig::default();
    let oracle_pr = reference::pagerank_delta(&g, pr_cfg.damping, pr_cfg.epsilon, pr_cfg.max_iters);
    let x: Vec<f64> = (0..g.num_vertices()).map(|v| (v % 13) as f64).collect();
    let oracle_y = reference::spmv(&g, &x);

    for layout in LAYOUTS {
        let c = Cluster::build_with_layout(&g, layout, 8, 1, opts()).unwrap();
        if layout == VertexLayout::Degree {
            assert!(!c.layout().is_identity(), "rmat must reorder under degree");
        }
        assert_eq!(sharded_bfs(&c, 0).unwrap().to_vec(), oracle_levels);
        assert_eq!(sharded_spmv(&c, &x).unwrap().to_vec(), oracle_y);
        assert_close(
            &sharded_pagerank(&c, pr_cfg).unwrap().to_vec(),
            &oracle_pr,
            1e-6,
            layout.name(),
        );
        let (oc, ic) = cluster_pair(&g, layout, 8);
        assert_eq!(sharded_wcc(&oc, &ic).unwrap().to_vec(), oracle_wcc);
        // The cluster genuinely ran distributed: every round crossed the
        // fabric and every shard's engine did real work.
        let stats = c.stats();
        assert!(stats.exchange_messages > 0 && stats.exchange_bytes > 0);
        assert_eq!(stats.per_shard.len(), 8);
    }
}
