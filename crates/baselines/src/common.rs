//! The engine interface shared by the baseline implementations.

use blaze_frontier::VertexSubset;
use blaze_types::{Result, VertexId};

/// A generic out-of-core `EdgeMap` engine, letting the query definitions in
/// [`queries`](crate::queries) run unchanged on FlashGraph-like and
/// Graphene-like engines.
pub trait OocEngine {
    /// Number of vertices in the graph.
    fn num_vertices(&self) -> usize;

    /// Applies `scatter`/`gather` over the edges of `frontier` sources
    /// (destinations filtered by `cond`), returning the activated frontier
    /// when `output` is true.
    fn edge_map<V, FS, FG, FC>(
        &self,
        frontier: &VertexSubset,
        scatter: FS,
        gather: FG,
        cond: FC,
        output: bool,
    ) -> Result<VertexSubset>
    where
        V: Copy + Send + Sync + 'static,
        FS: Fn(VertexId, VertexId) -> V + Sync,
        FG: Fn(VertexId, V) -> bool + Sync,
        FC: Fn(VertexId) -> bool + Sync;

    /// Records an in-memory vertex-map pass of `size` vertices in the
    /// current iteration trace (for the performance model).
    fn note_vertex_map(&self, size: u64);
}
