//! FlashGraph-like engine: message passing keyed by vertex id, plus a
//! page cache (Sections II-D, III-A). The cache is the shared
//! [`PageCache`] (clock replacement, which approximates SAFS's LRU
//! behavior for the access patterns modeled here).

use blaze_sync::Arc;

use blaze_core::PageCache;
use blaze_sync::Mutex;

use blaze_frontier::VertexSubset;
use blaze_graph::DiskGraph;
use blaze_types::{IterationTrace, Result, VertexId, PAGE_SIZE};

use crate::common::OocEngine;
use crate::stats_util::{fill_io_trace, snapshot_devices};

/// FlashGraph configuration.
#[derive(Debug, Clone)]
pub struct FlashGraphOptions {
    /// Computation threads; messages route to `dst % num_threads`, which is
    /// what skews the end-of-iteration processing on power-law graphs.
    pub num_threads: usize,
    /// Page-cache capacity in pages.
    pub cache_pages: usize,
}

impl Default for FlashGraphOptions {
    fn default() -> Self {
        Self {
            num_threads: 16,
            cache_pages: 1024,
        }
    }
}

/// The FlashGraph-like baseline engine.
pub struct FlashGraphEngine {
    graph: Arc<DiskGraph>,
    options: FlashGraphOptions,
    /// FlashGraph's SAFS-style page cache — the reason it beats the
    /// published Blaze on the high-locality sk2005 graph: repeated BFS
    /// iterations re-touch the same pages and skip storage entirely.
    cache: PageCache,
    traces: Mutex<Vec<IterationTrace>>,
}

impl FlashGraphEngine {
    /// Creates the engine over a disk graph.
    pub fn new(graph: Arc<DiskGraph>, options: FlashGraphOptions) -> Self {
        let cache = PageCache::with_capacity_pages(options.cache_pages);
        Self {
            graph,
            options,
            cache,
            traces: Mutex::new(Vec::new()),
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Arc<DiskGraph> {
        &self.graph
    }

    /// Takes (and clears) the recorded per-iteration traces.
    pub fn take_traces(&self) -> Vec<IterationTrace> {
        std::mem::take(&mut self.traces.lock())
    }

    /// Current number of cached pages.
    pub fn cached_pages(&self) -> usize {
        self.cache.len()
    }

    /// Fetches one page through the cache; counts hits in `trace`.
    fn fetch_page(&self, page: u64, trace: &mut IterationTrace) -> Result<Arc<[u8]>> {
        if let Some(data) = self.cache.get(page) {
            trace.cache_hit_pages += 1;
            return Ok(data);
        }
        let mut buf = vec![0u8; PAGE_SIZE];
        self.graph.storage().read_page(page, &mut buf)?;
        let data: Arc<[u8]> = buf.into();
        self.cache.insert(page, data.clone());
        Ok(data)
    }
}

impl OocEngine for FlashGraphEngine {
    fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    fn edge_map<V, FS, FG, FC>(
        &self,
        frontier: &VertexSubset,
        scatter: FS,
        gather: FG,
        cond: FC,
        output: bool,
    ) -> Result<VertexSubset>
    where
        V: Copy + Send + Sync + 'static,
        FS: Fn(VertexId, VertexId) -> V + Sync,
        FG: Fn(VertexId, V) -> bool + Sync,
        FC: Fn(VertexId) -> bool + Sync,
    {
        let storage = self.graph.storage();
        let before = snapshot_devices(storage);
        let threads = self.options.num_threads;
        let mut trace = IterationTrace::new(storage.num_devices());
        trace.frontier_size = frontier.len() as u64;

        // Phase 1+2: fetch pages (through the page cache) and process edges,
        // queueing messages per computation thread (thread = dst % T).
        let mut queues: Vec<Vec<(VertexId, V)>> = (0..threads).map(|_| Vec::new()).collect();
        let members = frontier.members();
        let mut pages: Vec<u64> = Vec::new();
        for &v in &members {
            if let Some(range) = self.graph.pages_of_vertex(v) {
                pages.extend(range);
            }
        }
        pages.sort_unstable();
        pages.dedup();

        let mut scratch = Vec::new();
        for page in pages {
            let data = self.fetch_page(page, &mut trace)?;
            self.graph
                .for_each_vertex_in_page(page, &data, &mut scratch, |src, dsts| {
                    if !frontier.contains(src) {
                        return;
                    }
                    for &dst in dsts {
                        trace.edges_processed += 1;
                        if cond(dst) {
                            let value = scatter(src, dst);
                            queues[dst as usize % threads].push((dst, value));
                        }
                    }
                });
        }

        // Phase 3: end-of-iteration message processing. In FlashGraph every
        // thread drains its own queue — on power-law graphs the hub-heavy
        // queues make one thread the straggler while the SSD sits idle.
        let out = VertexSubset::new(self.graph.num_vertices());
        trace.messages_per_thread = queues.iter().map(|q| q.len() as u64).collect();
        trace.records_produced = trace.messages_per_thread.iter().sum();
        for queue in &queues {
            for &(dst, value) in queue {
                if gather(dst, value) && output {
                    out.insert(dst);
                }
            }
        }

        let after = snapshot_devices(storage);
        fill_io_trace(&mut trace, &before, &after);
        self.traces.lock().push(trace);
        let mut out = out;
        out.seal();
        Ok(out)
    }

    fn note_vertex_map(&self, size: u64) {
        if let Some(last) = self.traces.lock().last_mut() {
            last.vertex_map_size += size;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blaze_graph::gen::{relabel_bfs_order, rmat, RmatConfig};
    use blaze_graph::Csr;
    use blaze_storage::StripedStorage;

    fn engine(g: &Csr, cache_pages: usize) -> FlashGraphEngine {
        let storage = Arc::new(StripedStorage::in_memory(1).unwrap());
        let graph = Arc::new(DiskGraph::create(g, storage).unwrap());
        FlashGraphEngine::new(
            graph,
            FlashGraphOptions {
                num_threads: 16,
                cache_pages,
            },
        )
    }

    #[test]
    fn full_edge_map_touches_every_edge() {
        let g = rmat(&RmatConfig::new(8));
        let e = engine(&g, 64);
        let frontier = VertexSubset::full(g.num_vertices());
        let count = blaze_sync::atomic::AtomicU64::new(0);
        e.edge_map(
            &frontier,
            |_s, _d| (),
            |_d, _v| {
                count.fetch_add(1, blaze_sync::atomic::Ordering::Relaxed);
                false
            },
            |_| true,
            false,
        )
        .unwrap();
        assert_eq!(
            count.load(blaze_sync::atomic::Ordering::Relaxed),
            g.num_edges()
        );
        let t = e.take_traces().pop().unwrap();
        assert_eq!(t.edges_processed, g.num_edges());
        assert_eq!(t.records_produced, g.num_edges());
        assert_eq!(t.messages_per_thread.len(), 16);
    }

    #[test]
    fn power_law_graph_skews_message_queues() {
        let g = rmat(&RmatConfig::new(10));
        let e = engine(&g, 16);
        let frontier = VertexSubset::full(g.num_vertices());
        e.edge_map(&frontier, |_s, _d| (), |_d, _v| false, |_| true, false)
            .unwrap();
        let t = e.take_traces().pop().unwrap();
        assert!(
            t.message_skew() > 1.5,
            "rmat should skew messages: {}",
            t.message_skew()
        );
    }

    #[test]
    fn cache_hits_appear_on_repeated_iterations() {
        let g = relabel_bfs_order(&rmat(&RmatConfig::new(8)));
        let e = engine(&g, 1 << 16); // cache larger than the graph
        let frontier = VertexSubset::full(g.num_vertices());
        for _ in 0..2 {
            e.edge_map(&frontier, |_s, _d| (), |_d, _v| false, |_| true, false)
                .unwrap();
        }
        let traces = e.take_traces();
        assert_eq!(traces[0].cache_hit_pages, 0);
        let pages = traces[0].total_io_bytes() / PAGE_SIZE as u64;
        assert_eq!(traces[1].cache_hit_pages, pages, "second pass fully cached");
        assert_eq!(traces[1].total_io_bytes(), 0);
    }

    #[test]
    fn small_cache_limits_hits() {
        let g = rmat(&RmatConfig::new(9));
        let e = engine(&g, 4);
        let frontier = VertexSubset::full(g.num_vertices());
        for _ in 0..2 {
            e.edge_map(&frontier, |_s, _d| (), |_d, _v| false, |_| true, false)
                .unwrap();
        }
        let traces = e.take_traces();
        let pages = traces[0].total_io_bytes() / PAGE_SIZE as u64;
        assert!(
            traces[1].cache_hit_pages < pages / 2,
            "tiny cache cannot serve most pages"
        );
    }
}
