//! Graphene-like engine: 2-D topology-aware partitioning over a disk array
//! (Sections II-D, III-B).
//!
//! The edge grid is cut into `grid × grid` blocks whose row and column
//! boundaries follow out-/in-degree mass, aiming (as Graphene does) for
//! partitions with equal edge counts. Partitions are placed whole on disks,
//! each disk receiving the same number of partitions. Under selective
//! scheduling — reading only the edges of frontier vertices — the bytes
//! pulled from each disk diverge on power-law graphs, which is exactly the
//! skewed-IO pathology of Figure 3.

use blaze_sync::Arc;

use blaze_sync::Mutex;

use blaze_frontier::VertexSubset;
use blaze_graph::Csr;
use blaze_storage::request::merge_pages_with_window;
use blaze_storage::{BlockDevice, MemDevice};
use blaze_types::{BlazeError, IterationTrace, Result, VertexId, EDGES_PER_PAGE, PAGE_SIZE};

use crate::common::OocEngine;
use crate::stats_util::fill_io_trace;

/// Graphene configuration.
#[derive(Debug, Clone)]
pub struct GrapheneOptions {
    /// Number of disks in the array (8 in the paper's Figure 3 setup).
    pub num_disks: usize,
    /// Grid dimension: `grid × grid` partitions.
    pub grid: usize,
    /// Pages merged per IO request. Graphene favors larger requests than
    /// Blaze and bridges small gaps; we model the merge window only.
    pub merge_window: usize,
}

impl Default for GrapheneOptions {
    fn default() -> Self {
        Self {
            num_disks: 8,
            grid: 8,
            merge_window: 8,
        }
    }
}

/// One 2-D partition: the edges `(s, d)` with `s` in `rows` and `d` in the
/// partition's column range, stored contiguously on one disk.
struct Partition {
    device: usize,
    base_page: u64,
    rows: std::ops::Range<VertexId>,
    /// Local edge offsets per row (length `rows.len() + 1`).
    offsets: Vec<u64>,
}

impl Partition {
    fn num_edges(&self) -> u64 {
        *self.offsets.last().unwrap_or(&0)
    }

    fn local_degree(&self, v: VertexId) -> u64 {
        let i = (v - self.rows.start) as usize;
        self.offsets[i + 1] - self.offsets[i]
    }

    fn local_offset(&self, v: VertexId) -> u64 {
        self.offsets[(v - self.rows.start) as usize]
    }
}

/// The Graphene-like baseline engine.
pub struct GrapheneEngine {
    num_vertices: usize,
    partitions: Vec<Partition>,
    devices: Vec<Arc<MemDevice>>,
    options: GrapheneOptions,
    traces: Mutex<Vec<IterationTrace>>,
}

/// Splits `0..n` into `parts` ranges of approximately equal `mass`.
fn mass_splits(mass: &[u64], parts: usize) -> Vec<VertexId> {
    let total: u64 = mass.iter().sum();
    let mut splits = Vec::with_capacity(parts + 1);
    splits.push(0 as VertexId);
    let mut acc = 0u64;
    let mut next_target = 1u64;
    for (v, &m) in mass.iter().enumerate() {
        acc += m;
        while splits.len() < parts && acc * parts as u64 >= next_target * total.max(1) {
            splits.push((v + 1) as VertexId);
            next_target += 1;
        }
    }
    while splits.len() < parts {
        splits.push(mass.len() as VertexId);
    }
    splits.push(mass.len() as VertexId);
    splits
}

impl GrapheneEngine {
    /// Builds the partitioned representation of `g` across fresh in-memory
    /// disks.
    pub fn new(g: &Csr, options: GrapheneOptions) -> Result<Self> {
        let n = g.num_vertices();
        let p = options.grid;
        let out_mass: Vec<u64> = (0..n as VertexId).map(|v| g.degree(v) as u64).collect();
        let t = g.transpose();
        let in_mass: Vec<u64> = (0..n as VertexId).map(|v| t.degree(v) as u64).collect();
        let row_splits = mass_splits(&out_mass, p);
        let col_splits = mass_splits(&in_mass, p);

        let devices: Vec<Arc<MemDevice>> = (0..options.num_disks)
            .map(|_| Arc::new(MemDevice::new()))
            .collect();
        let mut device_cursor = vec![0u64; options.num_disks];
        let mut partitions = Vec::with_capacity(p * p);

        for i in 0..p {
            for j in 0..p {
                let rows = row_splits[i]..row_splits[i + 1];
                let cols = col_splits[j]..col_splits[j + 1];
                // Graphene's topology-aware placement: consecutive
                // partitions group onto the same disk (each disk gets the
                // same number of partitions and, by the equal-mass splits,
                // the same number of edges). With grid == num_disks this
                // puts one whole row strip per disk — balanced statically,
                // but selective scheduling concentrates IO on the disks
                // whose row ranges hold the current frontier.
                let device = (i * p + j) * options.num_disks / (p * p);
                let mut offsets = Vec::with_capacity(rows.len() + 1);
                offsets.push(0u64);
                let mut stream: Vec<VertexId> = Vec::new();
                for v in rows.clone() {
                    for &d in g.neighbors(v) {
                        if cols.contains(&d) {
                            stream.push(d);
                        }
                    }
                    offsets.push(stream.len() as u64);
                }
                let base_page = device_cursor[device];
                let num_pages = stream.len().div_ceil(EDGES_PER_PAGE) as u64;
                let mut page = vec![0u8; PAGE_SIZE];
                for pg in 0..num_pages {
                    let start = pg as usize * EDGES_PER_PAGE;
                    let end = (start + EDGES_PER_PAGE).min(stream.len());
                    page.fill(0);
                    for (k, &d) in stream[start..end].iter().enumerate() {
                        page[k * 4..k * 4 + 4].copy_from_slice(&d.to_le_bytes());
                    }
                    devices[device].write_at((base_page + pg) * PAGE_SIZE as u64, &page)?;
                }
                device_cursor[device] += num_pages;
                partitions.push(Partition {
                    device,
                    base_page,
                    rows,
                    offsets,
                });
            }
        }
        // Placement written; clear construction-time write stats.
        for d in &devices {
            d.stats().reset();
        }
        Ok(Self {
            num_vertices: n,
            partitions,
            devices,
            options,
            traces: Mutex::new(Vec::new()),
        })
    }

    /// Takes (and clears) the recorded per-iteration traces.
    pub fn take_traces(&self) -> Vec<IterationTrace> {
        std::mem::take(&mut self.traces.lock())
    }

    /// Edge count of the fullest and emptiest partitions — the balance the
    /// 2-D scheme optimizes for.
    pub fn partition_edge_range(&self) -> (u64, u64) {
        let counts: Vec<u64> = self.partitions.iter().map(Partition::num_edges).collect();
        (
            counts.iter().max().copied().unwrap_or(0),
            counts.iter().min().copied().unwrap_or(0),
        )
    }

    /// Total edges per disk (the quantity Graphene balances statically).
    pub fn edges_per_disk(&self) -> Vec<u64> {
        let mut per = vec![0u64; self.options.num_disks];
        for p in &self.partitions {
            per[p.device] += p.num_edges();
        }
        per
    }
}

impl OocEngine for GrapheneEngine {
    fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    fn edge_map<V, FS, FG, FC>(
        &self,
        frontier: &VertexSubset,
        scatter: FS,
        gather: FG,
        cond: FC,
        output: bool,
    ) -> Result<VertexSubset>
    where
        V: Copy + Send + Sync + 'static,
        FS: Fn(VertexId, VertexId) -> V + Sync,
        FG: Fn(VertexId, V) -> bool + Sync,
        FC: Fn(VertexId) -> bool + Sync,
    {
        let before: Vec<_> = self.devices.iter().map(|d| d.stats().snapshot()).collect();
        let mut trace = IterationTrace::new(self.devices.len());
        trace.frontier_size = frontier.len() as u64;
        let out = VertexSubset::new(self.num_vertices);
        let members = frontier.members();

        for part in &self.partitions {
            // Selective scheduling: only rows in the frontier are read.
            let lo = members.partition_point(|&v| v < part.rows.start);
            let hi = members.partition_point(|&v| v < part.rows.end);
            if lo == hi {
                continue;
            }
            let active = &members[lo..hi];
            // Collect the partition-local pages these rows touch.
            let mut pages: Vec<u64> = Vec::new();
            for &v in active {
                let deg = part.local_degree(v);
                if deg == 0 {
                    continue;
                }
                let off = part.local_offset(v);
                let first = off / EDGES_PER_PAGE as u64;
                let last = (off + deg - 1) / EDGES_PER_PAGE as u64;
                pages.extend(first..=last);
            }
            pages.sort_unstable();
            pages.dedup();
            if pages.is_empty() {
                continue;
            }
            // Read merged requests; keep the fetched pages for decoding.
            let device = &self.devices[part.device];
            let mut fetched: Vec<(u64, Vec<u8>)> = Vec::with_capacity(pages.len());
            for req in merge_pages_with_window(&pages, self.options.merge_window) {
                let mut buf = vec![0u8; req.len_bytes()];
                device.read_at(
                    (part.base_page + req.first_page) * PAGE_SIZE as u64,
                    &mut buf,
                )?;
                for k in 0..req.num_pages as u64 {
                    let start = k as usize * PAGE_SIZE;
                    fetched.push((req.first_page + k, buf[start..start + PAGE_SIZE].to_vec()));
                }
            }
            let page_data = |pg: u64| -> Result<&[u8]> {
                let idx = fetched
                    .binary_search_by_key(&pg, |(p, _)| *p)
                    .map_err(|_| BlazeError::Engine(format!("page {pg} was not fetched")))?;
                Ok(&fetched[idx].1)
            };
            // Decode and apply. Graphene updates vertex state directly with
            // atomic operations (no binning), so every record is an RMW.
            for &v in active {
                let deg = part.local_degree(v);
                let off = part.local_offset(v);
                for e in off..off + deg {
                    let pg = e / EDGES_PER_PAGE as u64;
                    let slot = (e % EDGES_PER_PAGE as u64) as usize * 4;
                    let bytes = page_data(pg)?;
                    let dst = VertexId::from_le_bytes([
                        bytes[slot],
                        bytes[slot + 1],
                        bytes[slot + 2],
                        bytes[slot + 3],
                    ]);
                    trace.edges_processed += 1;
                    if cond(dst) {
                        let value = scatter(v, dst);
                        trace.records_produced += 1;
                        trace.atomic_ops += 1;
                        if gather(dst, value) && output {
                            out.insert(dst);
                        }
                    }
                }
            }
        }

        let after: Vec<_> = self.devices.iter().map(|d| d.stats().snapshot()).collect();
        fill_io_trace(&mut trace, &before, &after);
        self.traces.lock().push(trace);
        let mut out = out;
        out.seal();
        Ok(out)
    }

    fn note_vertex_map(&self, size: u64) {
        if let Some(last) = self.traces.lock().last_mut() {
            last.vertex_map_size += size;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blaze_graph::gen::{rmat, uniform, RmatConfig};

    #[test]
    fn mass_splits_balance() {
        let mass = vec![1u64; 100];
        let s = mass_splits(&mass, 4);
        assert_eq!(s, vec![0, 25, 50, 75, 100]);
        // Skewed mass: hub at the front.
        let mut skew = vec![1u64; 100];
        skew[0] = 1000;
        let s = mass_splits(&skew, 4);
        assert_eq!(s[0], 0);
        assert_eq!(s[4], 100);
        assert!(s[1] <= 2, "hub forces an early first split: {s:?}");
    }

    #[test]
    fn partitions_preserve_every_edge() {
        let g = rmat(&RmatConfig::new(8));
        let e = GrapheneEngine::new(&g, GrapheneOptions::default()).unwrap();
        let total: u64 = e.partitions.iter().map(Partition::num_edges).sum();
        assert_eq!(total, g.num_edges());
    }

    #[test]
    fn static_edges_per_disk_are_balanced() {
        let g = rmat(&RmatConfig::new(10));
        let e = GrapheneEngine::new(&g, GrapheneOptions::default()).unwrap();
        let per = e.edges_per_disk();
        let max = *per.iter().max().unwrap() as f64;
        let min = *per.iter().min().unwrap() as f64;
        assert!(
            max / min.max(1.0) < 1.6,
            "static balance should hold: {per:?}"
        );
    }

    #[test]
    fn full_frontier_delivers_every_edge() {
        let g = uniform(8, 8, 3);
        let e = GrapheneEngine::new(&g, GrapheneOptions::default()).unwrap();
        let frontier = VertexSubset::full(g.num_vertices());
        let count = blaze_sync::atomic::AtomicU64::new(0);
        e.edge_map(
            &frontier,
            |_s, _d| (),
            |_d, _v| {
                count.fetch_add(1, blaze_sync::atomic::Ordering::Relaxed);
                false
            },
            |_| true,
            false,
        )
        .unwrap();
        assert_eq!(
            count.load(blaze_sync::atomic::Ordering::Relaxed),
            g.num_edges()
        );
        let t = e.take_traces().pop().unwrap();
        assert_eq!(t.edges_processed, g.num_edges());
        assert_eq!(t.atomic_ops, g.num_edges());
    }

    #[test]
    fn gather_sees_correct_destinations() {
        let g = rmat(&RmatConfig::new(7));
        let e = GrapheneEngine::new(
            &g,
            GrapheneOptions {
                num_disks: 4,
                grid: 4,
                merge_window: 4,
            },
        )
        .unwrap();
        let frontier = VertexSubset::full(g.num_vertices());
        // Sum of dst ids must match the graph.
        let sum = blaze_sync::atomic::AtomicU64::new(0);
        e.edge_map(
            &frontier,
            |_s, d| d,
            |_d, v: u32| {
                sum.fetch_add(v as u64, blaze_sync::atomic::Ordering::Relaxed);
                false
            },
            |_| true,
            false,
        )
        .unwrap();
        let expected: u64 = g.edges().map(|(_, d)| d as u64).sum();
        assert_eq!(sum.load(blaze_sync::atomic::Ordering::Relaxed), expected);
    }

    #[test]
    fn selective_scheduling_reads_less_than_full_scan() {
        let g = rmat(&RmatConfig::new(9));
        let e = GrapheneEngine::new(&g, GrapheneOptions::default()).unwrap();
        let full = VertexSubset::full(g.num_vertices());
        e.edge_map(&full, |_s, _d| (), |_d, _v| false, |_| true, false)
            .unwrap();
        let full_bytes = e.take_traces().pop().unwrap().total_io_bytes();
        let sparse = VertexSubset::from_members(g.num_vertices(), [0u32, 7, 19]);
        e.edge_map(&sparse, |_s, _d| (), |_d, _v| false, |_| true, false)
            .unwrap();
        let sparse_bytes = e.take_traces().pop().unwrap().total_io_bytes();
        assert!(
            sparse_bytes < full_bytes / 2,
            "{sparse_bytes} vs {full_bytes}"
        );
    }
}
