//! Baseline out-of-core engines re-implementing the execution models the
//! paper analyzes (Sections II-D and III):
//!
//! * [`FlashGraphEngine`] — semi-external vertex-centric processing with
//!   **message passing**: edge processing appends messages to per-thread
//!   queues keyed by `dst % nthreads`, and a separate end-of-iteration
//!   phase drains them. On power-law graphs the queue sizes skew badly
//!   (*skewed computation*), stalling IO at each iteration tail
//!   (Figure 2). Includes the page cache that lets FlashGraph win on
//!   high-locality graphs like sk2005 (Section V-B).
//! * [`GrapheneEngine`] — **2-D topology-aware partitioning**: the edge
//!   grid is split into equal-edge blocks distributed over the disk array.
//!   Under selective scheduling the per-disk IO skews (*skewed IO*,
//!   Figure 3), and the one-IO-plus-one-compute-thread-per-disk policy
//!   caps per-disk throughput (*fast IO, slow computation*).
//!
//! Both engines execute queries *functionally* (their results are checked
//! against the same references as Blaze) while recording the per-iteration
//! work traces ([`blaze_types::IterationTrace`]) that the performance
//! model turns into the paper's timing figures.

// The unsafe-audit rule (cargo xtask lint) keys off this: crates that
// need no unsafe code forbid it outright, so the audit scope cannot
// silently grow.
#![forbid(unsafe_code)]

pub mod common;
pub mod flashgraph;
pub mod graphene;
pub mod queries;
pub mod stats_util;

pub use common::OocEngine;
pub use flashgraph::{FlashGraphEngine, FlashGraphOptions};
pub use graphene::{GrapheneEngine, GrapheneOptions};
