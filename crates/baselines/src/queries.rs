//! The paper's five queries written against the generic [`OocEngine`]
//! trait, so the FlashGraph-like and Graphene-like baselines run exactly
//! the workloads of the evaluation. Results are validated against the same
//! in-memory references as Blaze's own implementations.

use blaze_core::VertexArray;
use blaze_frontier::VertexSubset;
use blaze_types::{Result, VertexId};

use crate::common::OocEngine;

/// BFS parent array from `root` (Algorithm 1 semantics).
pub fn bfs<E: OocEngine>(engine: &E, root: VertexId) -> Result<VertexArray<i64>> {
    let n = engine.num_vertices();
    let parent = VertexArray::<i64>::new(n, -1);
    parent.set(root as usize, root as i64);
    let mut frontier = VertexSubset::single(n, root);
    while !frontier.is_empty() {
        frontier = engine.edge_map(
            &frontier,
            |s: VertexId, _d: VertexId| s,
            |d: VertexId, v: VertexId| {
                if parent.get(d as usize) == -1 {
                    parent.set(d as usize, v as i64);
                    true
                } else {
                    false
                }
            },
            |d: VertexId| parent.get(d as usize) == -1,
            true,
        )?;
    }
    Ok(parent)
}

/// PageRank-delta (Algorithm 2 semantics). `degree` must give the
/// out-degree of each vertex.
pub fn pagerank_delta<E: OocEngine>(
    engine: &E,
    degree: &(dyn Fn(VertexId) -> u32 + Sync),
    damping: f64,
    epsilon: f64,
    max_iters: usize,
) -> Result<VertexArray<f64>> {
    let n = engine.num_vertices();
    let p = VertexArray::<f64>::new(n, 0.0);
    let delta = VertexArray::<f64>::new(n, 1.0 / n as f64);
    let ngh_sum = VertexArray::<f64>::new(n, 0.0);
    let mut frontier = VertexSubset::full(n);
    for _ in 0..max_iters {
        if frontier.is_empty() {
            break;
        }
        let touched = engine.edge_map(
            &frontier,
            |s: VertexId, _d: VertexId| delta.get(s as usize) / degree(s) as f64,
            |d: VertexId, v: f64| {
                ngh_sum.set(d as usize, ngh_sum.get(d as usize) + v);
                true
            },
            |_d: VertexId| true,
            true,
        )?;
        let mut next = VertexSubset::new(n);
        let mut count = 0u64;
        touched.for_each(|i| {
            count += 1;
            let i = i as usize;
            let nd = ngh_sum.get(i) * damping;
            delta.set(i, nd);
            ngh_sum.set(i, 0.0);
            if nd.abs() > epsilon * p.get(i) {
                p.set(i, p.get(i) + nd);
                next.insert(i as VertexId);
            }
        });
        engine.note_vertex_map(count);
        next.seal();
        frontier = next;
    }
    Ok(p)
}

/// One PageRank iteration over the full frontier — the paper compares
/// against Graphene with "1 PR iteration" because Graphene lacks selective
/// scheduling for PR (Section V-B).
pub fn pagerank_one_iteration<E: OocEngine>(
    engine: &E,
    degree: &(dyn Fn(VertexId) -> u32 + Sync),
) -> Result<VertexArray<f64>> {
    let n = engine.num_vertices();
    let contribution = VertexArray::<f64>::new(n, 0.0);
    let frontier = VertexSubset::full(n);
    engine.edge_map(
        &frontier,
        |s: VertexId, _d: VertexId| 1.0 / (n as f64 * degree(s) as f64),
        |d: VertexId, v: f64| {
            contribution.set(d as usize, contribution.get(d as usize) + v);
            false
        },
        |_d: VertexId| true,
        false,
    )?;
    Ok(contribution)
}

/// WCC labels via shortcutting label propagation over both directions
/// (Algorithm 3 semantics). `in_engine` must hold the transpose.
pub fn wcc<E: OocEngine>(out_engine: &E, in_engine: &E) -> Result<VertexArray<u32>> {
    let n = out_engine.num_vertices();
    let ids = VertexArray::<u32>::new(n, 0);
    let prev = VertexArray::<u32>::new(n, 0);
    for v in 0..n {
        ids.set(v, v as u32);
        prev.set(v, v as u32);
    }
    let mut frontier = VertexSubset::full(n);
    while !frontier.is_empty() {
        let run = |engine: &E, frontier: &VertexSubset| {
            engine.edge_map(
                frontier,
                |s: VertexId, _d: VertexId| ids.get(s as usize),
                |d: VertexId, v: u32| {
                    if v < ids.get(d as usize) {
                        ids.set(d as usize, v);
                        true
                    } else {
                        false
                    }
                },
                |_d: VertexId| true,
                true,
            )
        };
        let a = run(out_engine, &frontier)?;
        let b = run(in_engine, &frontier)?;
        let candidates = VertexSubset::from_members(n, a.members().into_iter().chain(b.members()));
        let mut next = VertexSubset::new(n);
        let mut count = 0u64;
        candidates.for_each(|i| {
            count += 1;
            let i = i as usize;
            let id = ids.get(ids.get(i) as usize);
            if ids.get(i) != id {
                ids.set(i, id);
            }
            if prev.get(i) != ids.get(i) {
                prev.set(i, ids.get(i));
                next.insert(i as VertexId);
            }
        });
        out_engine.note_vertex_map(count);
        next.seal();
        frontier = next;
    }
    Ok(ids)
}

/// SpMV: `y[d] = Σ x[s]` over all edges.
pub fn spmv<E: OocEngine>(engine: &E, x: &[f64]) -> Result<VertexArray<f64>> {
    let n = engine.num_vertices();
    assert_eq!(x.len(), n);
    let y = VertexArray::<f64>::new(n, 0.0);
    let frontier = VertexSubset::full(n);
    engine.edge_map(
        &frontier,
        |s: VertexId, _d: VertexId| x[s as usize],
        |d: VertexId, v: f64| {
            y.set(d as usize, y.get(d as usize) + v);
            false
        },
        |_d: VertexId| true,
        false,
    )?;
    Ok(y)
}

/// Single-source Brandes betweenness centrality (forward + backward sweep;
/// the backward sweep runs over the transpose engine). Graphene does not
/// implement BC in the paper, so this only runs on the FlashGraph-like
/// engine in the benches.
pub fn bc<E: OocEngine>(out_engine: &E, in_engine: &E, root: VertexId) -> Result<VertexArray<f64>> {
    let n = out_engine.num_vertices();
    let depth = VertexArray::<i64>::new(n, -1);
    let sigma = VertexArray::<f64>::new(n, 0.0);
    depth.set(root as usize, 0);
    sigma.set(root as usize, 1.0);
    let mut levels = vec![VertexSubset::single(n, root)];
    loop {
        let level = levels.len() as i64;
        let Some(deepest) = levels.last() else { break };
        let current = VertexSubset::from_members(n, deepest.members());
        if current.is_empty() {
            levels.pop();
            break;
        }
        let next = out_engine.edge_map(
            &current,
            |s: VertexId, _d: VertexId| sigma.get(s as usize),
            |d: VertexId, v: f64| {
                let i = d as usize;
                if depth.get(i) == -1 {
                    depth.set(i, level);
                }
                if depth.get(i) == level {
                    sigma.set(i, sigma.get(i) + v);
                    true
                } else {
                    false
                }
            },
            |d: VertexId| {
                let dd = depth.get(d as usize);
                dd == -1 || dd == level
            },
            true,
        )?;
        levels.push(next);
    }
    let delta = VertexArray::<f64>::new(n, 0.0);
    let acc = VertexArray::<f64>::new(n, 0.0);
    for l in (1..levels.len()).rev() {
        in_engine.edge_map(
            &levels[l],
            |w: VertexId, _v: VertexId| (1.0 + delta.get(w as usize)) / sigma.get(w as usize),
            |v: VertexId, contribution: f64| {
                if depth.get(v as usize) == (l as i64) - 1 {
                    acc.set(v as usize, acc.get(v as usize) + contribution);
                    true
                } else {
                    false
                }
            },
            |v: VertexId| depth.get(v as usize) == (l as i64) - 1,
            true,
        )?;
        let mut count = 0u64;
        levels[l - 1].for_each(|v| {
            count += 1;
            let i = v as usize;
            if acc.get(i) != 0.0 {
                delta.set(i, delta.get(i) + sigma.get(i) * acc.get(i));
                acc.set(i, 0.0);
            }
        });
        in_engine.note_vertex_map(count);
    }
    Ok(delta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flashgraph::{FlashGraphEngine, FlashGraphOptions};
    use crate::graphene::{GrapheneEngine, GrapheneOptions};
    use blaze_graph::gen::{rmat, RmatConfig};
    use blaze_graph::{Csr, DiskGraph};
    use blaze_storage::StripedStorage;
    use blaze_sync::Arc;

    fn reference_levels(g: &Csr, root: u32) -> Vec<i64> {
        let mut level = vec![-1i64; g.num_vertices()];
        level[root as usize] = 0;
        let mut frontier = vec![root];
        let mut d = 0;
        while !frontier.is_empty() {
            d += 1;
            let mut next = Vec::new();
            for &v in &frontier {
                for &w in g.neighbors(v) {
                    if level[w as usize] == -1 {
                        level[w as usize] = d;
                        next.push(w);
                    }
                }
            }
            frontier = next;
        }
        level
    }

    fn flashgraph(g: &Csr) -> FlashGraphEngine {
        let storage = Arc::new(StripedStorage::in_memory(1).unwrap());
        FlashGraphEngine::new(
            Arc::new(DiskGraph::create(g, storage).unwrap()),
            FlashGraphOptions::default(),
        )
    }

    fn levels_from_parents(g: &Csr, root: u32, parent: &VertexArray<i64>) -> Vec<i64> {
        // Validate parents by recomputing levels.
        let expect = reference_levels(g, root);
        for v in 0..g.num_vertices() as u32 {
            if expect[v as usize] == -1 {
                assert_eq!(parent.get(v as usize), -1);
            } else if v != root {
                let p = parent.get(v as usize) as u32;
                assert_eq!(expect[p as usize] + 1, expect[v as usize]);
            }
        }
        expect
    }

    #[test]
    fn flashgraph_bfs_is_valid() {
        let g = rmat(&RmatConfig::new(8));
        let e = flashgraph(&g);
        let parent = bfs(&e, 0).unwrap();
        levels_from_parents(&g, 0, &parent);
    }

    #[test]
    fn graphene_bfs_is_valid() {
        let g = rmat(&RmatConfig::new(8));
        let e = GrapheneEngine::new(&g, GrapheneOptions::default()).unwrap();
        let parent = bfs(&e, 0).unwrap();
        levels_from_parents(&g, 0, &parent);
    }

    #[test]
    fn flashgraph_spmv_matches_in_degrees() {
        let g = rmat(&RmatConfig::new(8));
        let e = flashgraph(&g);
        let y = spmv(&e, &vec![1.0; g.num_vertices()]).unwrap();
        let t = g.transpose();
        for v in 0..g.num_vertices() {
            assert_eq!(y.get(v), t.degree(v as u32) as f64);
        }
    }

    #[test]
    fn graphene_wcc_matches_flashgraph_wcc() {
        let g = rmat(&RmatConfig::new(7));
        let t = g.transpose();
        let fg_out = flashgraph(&g);
        let fg_in = flashgraph(&t);
        let fg = wcc(&fg_out, &fg_in).unwrap();
        let gr_out = GrapheneEngine::new(&g, GrapheneOptions::default()).unwrap();
        let gr_in = GrapheneEngine::new(&t, GrapheneOptions::default()).unwrap();
        let gr = wcc(&gr_out, &gr_in).unwrap();
        assert_eq!(fg.to_vec(), gr.to_vec());
    }

    #[test]
    fn flashgraph_bc_runs_and_scores_roots_neighbors() {
        let g = rmat(&RmatConfig::new(7));
        let t = g.transpose();
        let out = flashgraph(&g);
        let inn = flashgraph(&t);
        let delta = bc(&out, &inn, 0).unwrap();
        assert!(delta.to_vec().iter().all(|&d| d >= 0.0));
    }

    #[test]
    fn pagerank_delta_converges_on_both_engines() {
        let g = rmat(&RmatConfig::new(7));
        let deg = |v: u32| g.degree(v);
        let fg = flashgraph(&g);
        let p1 = pagerank_delta(&fg, &deg, 0.85, 0.01, 50).unwrap();
        let gr = GrapheneEngine::new(&g, GrapheneOptions::default()).unwrap();
        let p2 = pagerank_delta(&gr, &deg, 0.85, 0.01, 50).unwrap();
        for v in 0..g.num_vertices() {
            assert!(
                (p1.get(v) - p2.get(v)).abs() < 1e-9,
                "vertex {v}: {} vs {}",
                p1.get(v),
                p2.get(v)
            );
        }
    }
}
