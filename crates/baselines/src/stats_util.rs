//! Re-exports of the trace-recording helpers shared with the core engine.

pub use blaze_core::stats::{fill_io_trace, snapshot_devices};
