//! Ablations of the design choices DESIGN.md calls out, beyond the paper's
//! own figures:
//!
//! 1. **Page cache (the paper's future work)** — Blaze loses to FlashGraph
//!    on sk2005 because FlashGraph's page cache exploits the crawl's
//!    locality (Section V-B). Enabling the engine's optional clock cache
//!    should recover that loss.
//! 2. **Merge window** — modeled IO time of a full scan with 1/2/4/8-page
//!    merging: the 4-page window captures most of the win (Section IV-C).
//! 3. **Page interleave vs 2-D placement** — worst per-disk IO ratio under
//!    BFS selective scheduling, Blaze vs Graphene (Section IV-E).

use blaze_algorithms::{bfs, ExecMode, Query};
use blaze_bench::datasets::{prepare, scale_from_env};
use blaze_bench::engines::{
    run_flashgraph_query, run_graphene_query, traversal_root, BenchQueryOptions,
};
use blaze_bench::report::{print_table, write_csv};
use blaze_core::{BlazeEngine, EngineOptions};
use blaze_graph::{Dataset, DiskGraph};
use blaze_perfmodel::{MachineConfig, PerfModel};
use blaze_storage::StripedStorage;
use blaze_types::IterationTrace;
use std::sync::Arc;

fn blaze_bfs_traces(g: &blaze_bench::PreparedGraph, options: EngineOptions) -> Vec<IterationTrace> {
    let storage = Arc::new(StripedStorage::in_memory(1).expect("storage"));
    let graph = Arc::new(DiskGraph::create(&g.csr, storage).expect("graph"));
    let engine = BlazeEngine::new(graph, options).expect("engine");
    bfs(&engine, traversal_root(&g.csr), ExecMode::Binned).expect("bfs");
    engine.take_traces()
}

fn main() {
    let scale = scale_from_env();
    let opts = BenchQueryOptions::default();
    let model = PerfModel::new(MachineConfig::paper_optane());
    let sk = prepare(Dataset::Sk2005, scale);

    // --- 1. Page-cache ablation on sk2005 BFS. ---
    let cache_pages = (sk.csr.num_edges() / 1024 / 8).max(64) as usize; // 1/8 of graph
    let no_cache = blaze_bfs_traces(&sk, EngineOptions::default());
    let with_cache = blaze_bfs_traces(&sk, EngineOptions::default().with_page_cache(cache_pages));
    let fg = run_flashgraph_query(Query::Bfs, &sk, &opts);
    let t_plain = model.blaze_query(&no_cache).total_s();
    let t_cache = model.blaze_query(&with_cache).total_s();
    let t_fg = model.flashgraph_query(&fg).total_s();
    let sums = |ts: &[IterationTrace]| {
        (
            ts.iter().map(IterationTrace::total_io_bytes).sum::<u64>(),
            ts.iter().map(|t| t.cache_hit_pages).sum::<u64>(),
        )
    };
    let (io_plain, _) = sums(&no_cache);
    let (io_cache, hits_cache) = sums(&with_cache);
    let (io_fg, hits_fg) = sums(&fg);
    let rows = vec![
        vec![
            "blaze (published, no cache)".to_string(),
            format!("{t_plain:.5}"),
            io_plain.to_string(),
            "0".to_string(),
            format!("{:.2}x", t_fg / t_plain),
        ],
        vec![
            format!("blaze + clock cache ({cache_pages} pages)"),
            format!("{t_cache:.5}"),
            io_cache.to_string(),
            hits_cache.to_string(),
            format!("{:.2}x", t_fg / t_cache),
        ],
        vec![
            "flashgraph (page cache)".to_string(),
            format!("{t_fg:.5}"),
            io_fg.to_string(),
            hits_fg.to_string(),
            "1.00x".to_string(),
        ],
    ];
    print_table(
        "Ablation 1: page cache on sk2005 BFS (modeled time, speedup vs FlashGraph)",
        &["system", "time s", "io bytes", "cache hits", "vs FG"],
        &rows,
    );
    write_csv(
        "ablation_pagecache",
        &["system", "time_s", "io_bytes", "cache_hits", "vs_fg"],
        &rows,
    );

    // --- 2. Merge-window ablation: full-scan IO time. ---
    let r3 = prepare(Dataset::Rmat30, scale);
    let mut merge_rows = Vec::new();
    for window in [1usize, 2, 4, 8] {
        let traces = blaze_bfs_traces(&r3, EngineOptions::default().with_merge_window(window));
        let q = model.blaze_query(&traces);
        let io_s: f64 = q.iterations.iter().map(|i| i.io_ns).sum::<f64>() * 1e-9;
        let requests: u64 = traces.iter().map(IterationTrace::total_io_requests).sum();
        merge_rows.push(vec![
            window.to_string(),
            requests.to_string(),
            format!("{io_s:.5}"),
            format!("{:.5}", q.total_s()),
        ]);
    }
    print_table(
        "Ablation 2: merge window on rmat30 BFS",
        &["window pages", "io requests", "io time s", "total s"],
        &merge_rows,
    );
    write_csv(
        "ablation_merge",
        &["window", "requests", "io_s", "total_s"],
        &merge_rows,
    );

    // --- 3. Placement: worst per-disk max/min ratio under BFS. ---
    let mut place_rows = Vec::new();
    for dataset in [Dataset::Rmat30, Dataset::Uran27] {
        let g = prepare(dataset, scale);
        // Blaze: 8-way page interleave.
        let blaze_opts = BenchQueryOptions {
            blaze_devices: 8,
            ..opts.clone()
        };
        let blaze_traces =
            blaze_bench::run_blaze_query(Query::Bfs, &g, ExecMode::Binned, &blaze_opts);
        let graphene_traces = run_graphene_query(Query::Bfs, &g, &opts).expect("bfs");
        // Only iterations moving meaningful volume (>= 64 pages total):
        // one-page iterations make any layout look skewed.
        let worst = |traces: &[IterationTrace]| {
            traces
                .iter()
                .filter(|t| t.total_io_bytes() >= 64 * 4096)
                .filter_map(|t| {
                    let max = *t.io_bytes_per_device.iter().max()?;
                    let min = *t.io_bytes_per_device.iter().min()?;
                    (min > 0).then(|| max as f64 / min as f64)
                })
                .fold(1.0, f64::max)
        };
        place_rows.push(vec![
            g.short_name().to_string(),
            format!("{:.2}x", worst(&blaze_traces)),
            format!("{:.2}x", worst(&graphene_traces)),
        ]);
    }
    print_table(
        "Ablation 3: worst per-disk IO ratio, page interleave (Blaze) vs 2-D placement (Graphene), BFS, 8 disks",
        &["graph", "blaze", "graphene"],
        &place_rows,
    );
    let path = write_csv(
        "ablation_placement",
        &["graph", "blaze", "graphene"],
        &place_rows,
    );
    println!("\nwrote {}", path.display());
}
