//! Async A/B: does dropping the per-iteration barrier save device traffic?
//!
//! Runs the monotone queries (BFS, SSSP, WCC) on sk2005 in all three
//! execution modes and compares iterations-to-convergence and total device
//! bytes, with every mode behind the same quarter-of-the-graph clock
//! cache. Two effects compete. Priority ordering saves *work*: vertices
//! settle closer to their fixpoint before they scatter, so async WCC
//! processes roughly half the edges of its barriered twin and async SSSP
//! (delta-stepping vs Bellman-Ford) relaxes measurably fewer. Round
//! granularity costs *pages*: an async round is one priority band, much
//! sparser than a superstep, so the same page surfaces in more rounds.
//! The cache is the referee — band-ordered rounds re-touch pages while
//! they are still resident, whereas a barriered sweep is the cyclic
//! pattern clock eviction handles worst. WCC is where the combination
//! wins outright (fewer edges *and* cache-friendly band locality), and
//! that pair carries the assert; BFS and SSSP rows report honestly
//! whatever they measure. Results are checked identical across modes in
//! every trial (the bit-identical contract, enforced here too).

use blaze_algorithms::{bfs, sssp, wcc, ExecMode};
use blaze_bench::datasets::{prepare, scale_from_env};
use blaze_bench::report::{print_table, write_csv};
use blaze_bench::PreparedGraph;
use blaze_core::{BlazeEngine, EngineOptions};
use blaze_graph::{Dataset, DiskGraph};
use blaze_storage::StripedStorage;
use blaze_types::{EDGES_PER_PAGE, PAGE_SIZE};
use std::sync::Arc;

const DEVICES: usize = 2;
/// Pooled trials per (query, mode) cell: worker interleaving perturbs the
/// async round composition, so the reported numbers sum over the trials.
const TRIALS: usize = 5;

#[derive(Default)]
struct Run {
    iterations: usize,
    async_rounds: u64,
    io_bytes: u64,
    edges: u64,
    wall: f64,
}

fn engine(csr: &blaze_graph::Csr) -> BlazeEngine {
    let storage = Arc::new(StripedStorage::in_memory(DEVICES).expect("storage"));
    let graph = Arc::new(DiskGraph::create(csr, storage).expect("graph"));
    // Every mode gets the same quarter-of-the-graph clock cache (the
    // layout_ab middle budget): the comparison is about *access order*,
    // and order only matters to the device through the cache. Barriered
    // supersteps sweep the full page set each iteration — a cyclic access
    // pattern that defeats clock eviction — while the async frontier
    // drains one priority band at a time and re-touches a band's pages
    // while they are still resident.
    let graph_pages = (csr.num_edges() as usize).div_ceil(EDGES_PER_PAGE).max(8);
    BlazeEngine::new(
        graph,
        EngineOptions::default()
            .with_compute_workers(2, 0.5)
            .with_cache_bytes(graph_pages / 4 * PAGE_SIZE),
    )
    .expect("engine")
}

fn absorb(run: &mut Run, engines: &[&BlazeEngine], wall: f64) {
    run.wall += wall;
    for e in engines {
        let stats = e.stats();
        run.iterations += stats.iterations;
        run.async_rounds += stats.async_rounds;
        run.io_bytes += stats.io_bytes;
        run.edges += stats.edges_processed;
    }
}

fn run_query(g: &PreparedGraph, query: &str, mode: ExecMode, oracle: &mut Option<Vec<u64>>) -> Run {
    let mut run = Run::default();
    for _ in 0..TRIALS {
        let t0 = std::time::Instant::now();
        let (result, engines): (Vec<u64>, Vec<BlazeEngine>) = match query {
            "bfs" => {
                let e = engine(&g.csr);
                let parent = bfs(&e, 0, mode).expect("bfs");
                // Compare levels, not parents: the tree is schedule-
                // dependent, the levels are the unique fixpoint.
                let levels = levels_from_parents(&parent.to_vec(), 0);
                (levels, vec![e])
            }
            "sssp" => {
                let e = engine(&g.csr);
                let dist = sssp(&e, 0, mode).expect("sssp");
                (dist.to_vec(), vec![e])
            }
            _ => {
                let oe = engine(&g.csr);
                let ie = engine(&g.transpose);
                let ids = wcc(&oe, &ie, mode).expect("wcc");
                let ids = (0..ids.len()).map(|v| u64::from(ids.get(v))).collect();
                (ids, vec![oe, ie])
            }
        };
        match oracle {
            Some(want) => assert_eq!(&result, want, "{query} {mode}: result drifted"),
            None => *oracle = Some(result),
        }
        let refs: Vec<&BlazeEngine> = engines.iter().collect();
        absorb(&mut run, &refs, t0.elapsed().as_secs_f64());
    }
    run
}

fn levels_from_parents(parent: &[i64], root: u32) -> Vec<u64> {
    parent
        .iter()
        .enumerate()
        .map(|(v, &p)| {
            if p < 0 {
                return u64::MAX;
            }
            let mut cur = v as u32;
            let mut depth = 0u64;
            while cur != root {
                cur = parent[cur as usize] as u32;
                depth += 1;
                assert!(depth <= parent.len() as u64, "parent cycle at {v}");
            }
            depth
        })
        .collect()
}

fn main() {
    let scale = scale_from_env();
    let g = prepare(Dataset::Sk2005, scale);
    let modes = [ExecMode::Binned, ExecMode::Sync, ExecMode::Async];
    let mut rows = Vec::new();
    let mut sync_wcc = 0u64;
    let mut async_wcc = 0u64;
    for query in ["bfs", "sssp", "wcc"] {
        let mut oracle: Option<Vec<u64>> = None;
        let mut baseline = 0u64;
        for mode in modes {
            let r = run_query(&g, query, mode, &mut oracle);
            if mode == ExecMode::Sync {
                baseline = r.io_bytes;
                if query == "wcc" {
                    sync_wcc = r.io_bytes;
                }
            }
            if query == "wcc" && mode == ExecMode::Async {
                async_wcc = r.io_bytes;
            }
            let delta = if mode == ExecMode::Async && baseline > 0 {
                format!(
                    "{:+.1}%",
                    100.0 * (r.io_bytes as f64 / baseline as f64 - 1.0)
                )
            } else {
                String::new()
            };
            rows.push(vec![
                query.to_string(),
                mode.to_string(),
                r.iterations.to_string(),
                r.async_rounds.to_string(),
                r.io_bytes.to_string(),
                r.edges.to_string(),
                delta,
                format!("{:.3}", r.wall),
            ]);
        }
    }
    print_table(
        &format!("Async A/B: sk2005 monotone queries x{TRIALS} trials, barriered vs async"),
        &[
            "query",
            "mode",
            "iterations",
            "async rounds",
            "io bytes",
            "edges",
            "io vs sync",
            "wall s",
        ],
        &rows,
    );
    let path = write_csv(
        "async_ab",
        &[
            "query",
            "mode",
            "iterations",
            "async_rounds",
            "io_bytes",
            "edges_processed",
            "io_delta_vs_sync",
            "wall_s",
        ],
        &rows,
    );
    println!("\nwrote {}", path.display());
    // The acceptance pair: async WCC must reach the fixpoint with fewer
    // total device bytes than the barriered sync oracle — it halves the
    // edges processed and its label-band rounds keep the clock cache warm.
    assert!(
        async_wcc < sync_wcc,
        "async WCC read {async_wcc} device bytes, sync read {sync_wcc} — \
         the priority frontier must save device traffic on this pair"
    );
}
