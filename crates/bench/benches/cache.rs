//! Page-cache bench: device bytes of a multi-iteration PageRank as the
//! clock cache's byte budget grows.
//!
//! PageRank re-reads nearly the full page set every iteration, so any
//! page retained across iterations is a device read saved. With a budget
//! of 0 the engine runs the published (uncached) IO path; every non-zero
//! budget must read strictly fewer device bytes, and a budget covering
//! the whole graph should collapse iterations 2..n to almost pure cache
//! hits. Hit/miss/eviction counts come from the per-job `JobIoStats`
//! surfaced through `ExecStats`.

use blaze_algorithms::{pagerank_delta, ExecMode, PageRankConfig};
use blaze_bench::datasets::{prepare, scale_from_env};
use blaze_bench::report::{print_table, write_csv};
use blaze_core::{BlazeEngine, EngineOptions};
use blaze_graph::{Dataset, DiskGraph};
use blaze_storage::StripedStorage;
use blaze_types::PAGE_SIZE;
use std::sync::Arc;

const ITERS: usize = 4;

fn run_with_budget(g: &blaze_bench::PreparedGraph, cache_bytes: usize) -> (BlazeEngine, f64) {
    let storage = Arc::new(StripedStorage::in_memory(2).expect("storage"));
    let graph = Arc::new(DiskGraph::create(&g.csr, storage).expect("graph"));
    let options = EngineOptions::default().with_cache_bytes(cache_bytes);
    let engine = BlazeEngine::new(graph, options).expect("engine");
    let config = PageRankConfig {
        max_iters: ITERS,
        ..Default::default()
    };
    let t0 = std::time::Instant::now();
    pagerank_delta(&engine, config, ExecMode::Binned).expect("pagerank");
    (engine, t0.elapsed().as_secs_f64())
}

fn main() {
    let scale = scale_from_env();
    let g = prepare(Dataset::Sk2005, scale);

    // Budgets from zero (the published engine) to the whole graph.
    let graph_pages = {
        let storage = Arc::new(StripedStorage::in_memory(1).expect("storage"));
        let graph = DiskGraph::create(&g.csr, storage).expect("graph");
        (graph.storage_bytes() as usize).div_ceil(PAGE_SIZE)
    };
    let budgets = [
        0usize,
        graph_pages / 8 * PAGE_SIZE,
        graph_pages / 2 * PAGE_SIZE,
        (graph_pages + 16) * PAGE_SIZE,
    ];

    let mut rows = Vec::new();
    let mut baseline_io = 0u64;
    for &budget in &budgets {
        let (engine, wall) = run_with_budget(&g, budget);
        let stats = engine.stats();
        if budget == 0 {
            baseline_io = stats.io_bytes;
            assert!(baseline_io > 0, "uncached PageRank must touch the device");
            assert_eq!(stats.cache_hit_pages, 0);
            assert_eq!(stats.cache_miss_pages, 0);
        } else {
            assert!(
                stats.io_bytes < baseline_io,
                "budget {budget}: {} device bytes, expected fewer than the \
                 uncached {baseline_io}",
                stats.io_bytes
            );
            assert!(stats.cache_hit_pages > 0, "warm iterations must hit");
        }
        rows.push(vec![
            format!("{} KiB", budget >> 10),
            stats.io_bytes.to_string(),
            stats.cache_hit_pages.to_string(),
            stats.cache_miss_pages.to_string(),
            stats.cache_evictions.to_string(),
            format!(
                "{:.1}%",
                100.0 * (1.0 - stats.io_bytes as f64 / baseline_io as f64)
            ),
            format!("{wall:.3}"),
        ]);
    }

    print_table(
        &format!("Clock page cache: sk2005 PageRank x{ITERS}, device bytes vs budget"),
        &[
            "budget",
            "io bytes",
            "hits",
            "misses",
            "evictions",
            "io saved",
            "wall s",
        ],
        &rows,
    );
    let path = write_csv(
        "cache_budget",
        &[
            "budget",
            "io_bytes",
            "hits",
            "misses",
            "evictions",
            "io_saved",
            "wall_s",
        ],
        &rows,
    );
    println!("\nwrote {}", path.display());
}
