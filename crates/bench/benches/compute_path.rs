//! Compute-path A/B: scatter throughput with the zero-copy adjacency
//! decode and scatter-side combining versus the pre-optimization byte-copy
//! path, on a cache-hot engine.
//!
//! The page cache is sized to hold the whole graph and a warm-up pass
//! fills it, so the timed runs never touch the device: wall time is the
//! scatter/gather compute path alone. "before" decodes every page through
//! the byte-wise scratch copy (`EngineOptions::with_bytewise_decode`) with
//! plain staging; "after" is the default aligned `&[u32]` reinterpret,
//! plus record combining for PageRank (BFS frontiers are too sparse for
//! combining to matter; it runs decode-only).
//!
//! Both arms must produce identical answers; the CSV records edges/second
//! and the speedup ratio per query.

use blaze_algorithms::{bfs, pagerank_delta, pagerank_delta_combined, ExecMode, PageRankConfig};
use blaze_bench::datasets::{prepare, scale_from_env};
use blaze_bench::report::{print_table, write_csv};
use blaze_core::{BlazeEngine, EngineOptions};
use blaze_graph::{Csr, Dataset, DiskGraph};
use blaze_storage::StripedStorage;
use std::sync::Arc;

const ITERS: usize = 10;
const DEVICES: usize = 2;
const ROOT: u32 = 0;

struct Sample {
    edges: u64,
    wall_s: f64,
    records_combined: u64,
    cache_hits: u64,
}

impl Sample {
    fn edges_per_sec(&self) -> f64 {
        self.edges as f64 / self.wall_s
    }
}

fn engine_for(csr: &Csr, bytewise: bool) -> BlazeEngine {
    let storage = Arc::new(StripedStorage::in_memory(DEVICES).expect("storage"));
    let graph = Arc::new(DiskGraph::create(csr, storage).expect("graph"));
    // Cache with headroom over the whole on-disk graph: after the warm-up
    // pass every page is a hit and the device is out of the picture.
    let cache_bytes = (graph.storage_bytes() as usize) * 2 + (1 << 20);
    let options = EngineOptions::default()
        .with_compute_workers(4, 0.5)
        .with_cache_bytes(cache_bytes)
        .with_bytewise_decode(bytewise);
    BlazeEngine::new(graph, options).expect("engine")
}

/// Cache-hot PageRank: warm-up pass, then `ITERS` timed iterations.
fn run_pagerank(csr: &Csr, bytewise: bool, combined: bool) -> (Sample, Vec<f64>) {
    let engine = engine_for(csr, bytewise);
    let config = PageRankConfig {
        max_iters: ITERS,
        // No early convergence: keep both arms on identical iteration
        // counts so edges/sec compares like with like.
        epsilon: 0.0,
        ..Default::default()
    };
    // Warm-up: one full run fills the page cache (and faults in the bin
    // space); its stats are subtracted below.
    let warm = if combined {
        pagerank_delta_combined(&engine, config)
    } else {
        pagerank_delta(&engine, config, ExecMode::Binned)
    }
    .expect("warm-up");
    drop(warm);
    let s0 = engine.stats();
    let t0 = std::time::Instant::now();
    let ranks = if combined {
        pagerank_delta_combined(&engine, config)
    } else {
        pagerank_delta(&engine, config, ExecMode::Binned)
    }
    .expect("pagerank");
    let wall_s = t0.elapsed().as_secs_f64();
    let s1 = engine.stats();
    assert_eq!(
        s1.cache_miss_pages, s0.cache_miss_pages,
        "timed run must be fully cache-hot"
    );
    (
        Sample {
            edges: s1.edges_processed - s0.edges_processed,
            wall_s,
            records_combined: s1.records_combined - s0.records_combined,
            cache_hits: s1.cache_hit_pages - s0.cache_hit_pages,
        },
        ranks.to_vec(),
    )
}

/// Cache-hot BFS: warm-up traversal, then a timed one.
fn run_bfs(csr: &Csr, bytewise: bool) -> (Sample, Vec<i64>) {
    let engine = engine_for(csr, bytewise);
    bfs(&engine, ROOT, ExecMode::Binned).expect("warm-up");
    let s0 = engine.stats();
    let t0 = std::time::Instant::now();
    let parents = bfs(&engine, ROOT, ExecMode::Binned).expect("bfs");
    let wall_s = t0.elapsed().as_secs_f64();
    let s1 = engine.stats();
    (
        Sample {
            edges: s1.edges_processed - s0.edges_processed,
            wall_s,
            records_combined: 0,
            cache_hits: s1.cache_hit_pages - s0.cache_hit_pages,
        },
        parents.to_vec(),
    )
}

fn row(query: &str, arm: &str, s: &Sample, speedup: f64) -> Vec<String> {
    vec![
        query.to_string(),
        arm.to_string(),
        s.edges.to_string(),
        format!("{:.4}", s.wall_s),
        format!("{:.0}", s.edges_per_sec()),
        s.records_combined.to_string(),
        format!("{speedup:.2}"),
    ]
}

fn main() {
    let scale = scale_from_env();
    let g = prepare(Dataset::Sk2005, scale);

    // PageRank: byte-copy uncombined ("before") vs zero-copy + combining
    // ("after").
    let (pr_before, ranks_before) = run_pagerank(&g.csr, true, false);
    let (pr_after, ranks_after) = run_pagerank(&g.csr, false, true);
    assert!(pr_before.cache_hits > 0, "warm cache must serve the run");
    assert_eq!(
        pr_before.edges, pr_after.edges,
        "both arms must process the same edge stream"
    );
    assert!(
        pr_after.records_combined > 0,
        "sk2005 hubs must trigger combining"
    );
    for (i, (a, b)) in ranks_before.iter().zip(&ranks_after).enumerate() {
        let scale = a.abs().max(b.abs()).max(1e-12);
        assert!(
            (a - b).abs() / scale < 1e-6,
            "rank {i} diverged: {a} vs {b}"
        );
    }
    let pr_speedup = pr_after.edges_per_sec() / pr_before.edges_per_sec();

    // BFS: byte-copy vs zero-copy decode (no combining on sparse
    // frontiers).
    let (bfs_before, parents_before) = run_bfs(&g.csr, true);
    let (bfs_after, parents_after) = run_bfs(&g.csr, false);
    assert_eq!(parents_before, parents_after, "BFS parents diverged");
    let bfs_speedup = bfs_after.edges_per_sec() / bfs_before.edges_per_sec();

    let rows = vec![
        row("pagerank", "bytewise", &pr_before, 1.0),
        row("pagerank", "zero_copy_combined", &pr_after, pr_speedup),
        row("bfs", "bytewise", &bfs_before, 1.0),
        row("bfs", "zero_copy", &bfs_after, bfs_speedup),
    ];
    print_table(
        &format!("Compute path A/B: cache-hot sk2005, {ITERS} PageRank iters + BFS"),
        &[
            "query",
            "arm",
            "edges",
            "wall s",
            "edges/s",
            "records combined",
            "speedup",
        ],
        &rows,
    );
    let path = write_csv(
        "compute_path",
        &[
            "query",
            "arm",
            "edges",
            "wall_s",
            "edges_per_sec",
            "records_combined",
            "speedup",
        ],
        &rows,
    );
    println!("\nwrote {}", path.display());
    println!(
        "pagerank speedup {pr_speedup:.2}x, bfs speedup {bfs_speedup:.2}x \
         (zero-copy decode + scatter-side combining vs byte-copy baseline)"
    );
}
