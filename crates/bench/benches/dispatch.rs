//! Dispatch-overhead benchmark: the persistent runtime (workers live for
//! the engine's lifetime, jobs are mailbox submissions) against the
//! spawn-per-call model it replaced (every `edge_map` started five scoped
//! threads and allocated a fresh bin space and IO buffer pool).
//!
//! Two views:
//!
//! * `dispatch` — pure overhead, no graph work: a no-op job submitted to
//!   the persistent runtime vs spawning and joining the same worker set
//!   per call, with and without the per-call arena allocations.
//! * `bfs_iters` — a multi-iteration out-of-core BFS (R-MAT 12, ~20
//!   frontier expansions) on the engine, vs the same BFS paying an
//!   emulated spawn-per-call tax per iteration: thread spawn+join for the
//!   worker set plus a fresh `BinSpace` and `BufferPool`, which is
//!   exactly what the old scoped pipeline re-created on every call.

use blaze_bench::report::{print_table, write_csv};
use blaze_binning::{BinSpace, BinningConfig};
use blaze_core::runtime::{PipelineJob, Runtime};
use blaze_core::{BlazeEngine, EngineOptions, VertexArray};
use blaze_frontier::VertexSubset;
use blaze_graph::gen::{rmat, with_path_tail, RmatConfig};
use blaze_graph::DiskGraph;
use blaze_storage::{BufferPool, StripedStorage};
use std::sync::Arc;
use std::thread;
use std::time::Instant;

const CALLS: usize = 200;
const IO_BUFFER_BYTES: usize = 4 << 20;
const PAGES_PER_BUFFER: usize = 4;

/// Best-of-`runs` wall time of `f`, in nanoseconds, after one warm-up.
fn time_best<T>(runs: usize, mut f: impl FnMut() -> T) -> u64 {
    std::hint::black_box(f());
    let mut best = u64::MAX;
    for _ in 0..runs {
        let t0 = Instant::now();
        std::hint::black_box(f());
        best = best.min(t0.elapsed().as_nanos() as u64);
    }
    best
}

fn row(group: &str, name: &str, nanos: u64) -> Vec<String> {
    vec![
        group.to_string(),
        name.to_string(),
        format!("{:.3}", nanos as f64 / 1e6),
    ]
}

struct NoopJob;

impl PipelineJob for NoopJob {
    fn run_io(&self, _device: usize, _lane: usize) {}
    fn run_scatter(&self, _worker: usize) {}
    fn run_gather(&self, _worker: usize) {}
}

fn bin_config() -> BinningConfig {
    BinningConfig::new(1024, 4 << 20, 64).unwrap()
}

/// Pure dispatch cost, no graph attached: submit CALLS no-op jobs.
fn bench_dispatch(rows: &mut Vec<Vec<String>>) {
    // Persistent: one worker set for all calls (1 IO + 2 scatter +
    // 2 gather, the engine default on one device).
    rows.push(row(
        "dispatch",
        &format!("persistent_x{CALLS}"),
        time_best(5, || {
            let rt = Runtime::new(1, 1, 2, 2);
            for _ in 0..CALLS {
                rt.submit(&NoopJob, true);
            }
        }),
    ));
    // Spawn-per-call: five fresh threads per call, as the old scoped
    // pipeline did.
    rows.push(row(
        "dispatch",
        &format!("spawn_per_call_x{CALLS}"),
        time_best(5, || {
            for _ in 0..CALLS {
                thread::scope(|s| {
                    for _ in 0..5 {
                        s.spawn(|| std::hint::black_box(()));
                    }
                });
            }
        }),
    ));
    // Spawn-per-call plus the per-call arena allocations (fresh bin space
    // and IO buffer pool), the full price of the old entry sequence.
    rows.push(row(
        "dispatch",
        &format!("spawn_plus_arenas_x{CALLS}"),
        time_best(5, || {
            for _ in 0..CALLS {
                let space: BinSpace<u32> = BinSpace::new(bin_config());
                let pool = BufferPool::with_bytes_and_pages(IO_BUFFER_BYTES, PAGES_PER_BUFFER);
                std::hint::black_box((&space, &pool));
                thread::scope(|s| {
                    for _ in 0..5 {
                        s.spawn(|| std::hint::black_box(()));
                    }
                });
            }
        }),
    ));
}

/// Multi-iteration BFS: every frontier expansion is one job. The
/// persistent engine dispatches each to the standing workers; the
/// emulation additionally pays the old per-call cost before each
/// iteration. A path tail stretches the R-MAT core's ~4-level traversal
/// past 20 levels, mimicking the long-diameter web graphs of the paper.
fn bench_bfs(rows: &mut Vec<Vec<String>>) {
    let g = with_path_tail(&rmat(&RmatConfig::new(12)), 16);
    let storage = Arc::new(StripedStorage::in_memory(1).unwrap());
    let graph = Arc::new(DiskGraph::create(&g, storage).unwrap());
    let n = graph.num_vertices();
    let root = 0u32;

    let run_bfs = |per_iteration_tax: bool| {
        let engine = BlazeEngine::new(graph.clone(), EngineOptions::default()).unwrap();
        let parent = VertexArray::<i64>::new(n, -1);
        parent.set(root as usize, root as i64);
        let mut frontier = VertexSubset::single(n, root);
        let mut iterations = 0usize;
        while !frontier.is_empty() {
            if per_iteration_tax {
                let space: BinSpace<u32> = BinSpace::new(bin_config());
                let pool = BufferPool::with_bytes_and_pages(IO_BUFFER_BYTES, PAGES_PER_BUFFER);
                std::hint::black_box((&space, &pool));
                thread::scope(|s| {
                    for _ in 0..5 {
                        s.spawn(|| std::hint::black_box(()));
                    }
                });
            }
            frontier = engine
                .edge_map(
                    &frontier,
                    |src, _dst| src,
                    |dst, v| {
                        if parent.get(dst as usize) == -1 {
                            parent.set(dst as usize, v as i64);
                            true
                        } else {
                            false
                        }
                    },
                    |dst| parent.get(dst as usize) == -1,
                    true,
                )
                .unwrap();
            iterations += 1;
        }
        assert!(
            iterations >= 10,
            "need a deep BFS ({iterations} iterations)"
        );
        iterations
    };

    rows.push(row("bfs_iters", "persistent_runtime", {
        time_best(5, || run_bfs(false))
    }));
    rows.push(row("bfs_iters", "spawn_per_call_emulation", {
        time_best(5, || run_bfs(true))
    }));
}

fn main() {
    let mut rows = Vec::new();
    bench_dispatch(&mut rows);
    bench_bfs(&mut rows);
    print_table(
        "Dispatch overhead: persistent runtime vs spawn-per-call",
        &["group", "case", "ms"],
        &rows,
    );
    let path = write_csv("dispatch", &["group", "case", "ms"], &rows);
    println!("\nwrote {}", path.display());
}
