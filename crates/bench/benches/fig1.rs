//! Figure 1: underutilized IO in FlashGraph and Graphene on an Optane SSD.
//!
//! Runs {BFS, PR, WCC, SpMV} on the six main graphs through both baseline
//! engines, then reports the modeled average read bandwidth on the paper's
//! 16-thread Optane machine. The red line of the figure is the device's
//! random-read bandwidth (2.36 GB/s).

use blaze_algorithms::Query;
use blaze_bench::datasets::{prepare_main_six, scale_from_env};
use blaze_bench::engines::{run_flashgraph_query, run_graphene_query, BenchQueryOptions};
use blaze_bench::report::{gbps, print_table, write_csv};
use blaze_perfmodel::{MachineConfig, PerfModel};

fn main() {
    let scale = scale_from_env();
    let opts = BenchQueryOptions::default();
    let model = PerfModel::new(MachineConfig::paper_optane());
    let queries = [Query::Bfs, Query::PageRank, Query::Wcc, Query::SpMV];
    let graphs = prepare_main_six(scale);

    let mut rows = Vec::new();
    for system in ["flashgraph", "graphene"] {
        for query in queries {
            for g in &graphs {
                let timing = match system {
                    "flashgraph" => {
                        let traces = run_flashgraph_query(query, g, &opts);
                        model.flashgraph_query(&traces)
                    }
                    _ => {
                        // Graphene's figure-1 run uses a single Optane SSD:
                        // partitions on one disk, 1 IO + 1 compute thread.
                        let one_disk = BenchQueryOptions {
                            graphene_disks: 1,
                            ..opts.clone()
                        };
                        let traces = run_graphene_query(query, g, &one_disk).expect("query");
                        model.graphene_query(&traces)
                    }
                };
                rows.push(vec![
                    system.to_string(),
                    query.short_name().to_string(),
                    g.short_name().to_string(),
                    gbps(timing.avg_bandwidth()),
                    format!(
                        "{:.0}%",
                        100.0 * timing.avg_bandwidth() / model.machine.aggregate_bandwidth()
                    ),
                ]);
            }
        }
    }
    print_table(
        &format!(
            "Figure 1: baseline read bandwidth on Optane (device line = {} GB/s)",
            gbps(model.machine.aggregate_bandwidth())
        ),
        &["system", "query", "graph", "read GB/s", "utilization"],
        &rows,
    );
    let path = write_csv(
        "fig1",
        &["system", "query", "graph", "gbps", "utilization"],
        &rows,
    );
    println!("\nwrote {}", path.display());
    println!(
        "paper shape: BFS near device BW for both; PR/WCC/SpMV drop to 23-30% on power-law graphs"
    );
}
