//! Figure 10: impact of total bin space on SpMV read bandwidth.
//!
//! The paper sweeps 16 MB → 1 GB on paper-scale graphs; this harness
//! sweeps a proportionally scaled range. Undersized bins force frequent
//! full-bin handoffs and scatter stalls, degrading bandwidth; beyond the
//! ~5%-of-graph heuristic, bandwidth is flat.

use blaze_algorithms::{spmv, ExecMode};
use blaze_bench::datasets::{prepare_main_six, scale_from_env};
use blaze_bench::engines::BenchQueryOptions;
use blaze_bench::report::{gbps, print_table, write_csv};
use blaze_binning::BinningConfig;
use blaze_core::{BlazeEngine, EngineOptions};
use blaze_graph::DiskGraph;
use blaze_perfmodel::{MachineConfig, PerfModel};
use blaze_storage::StripedStorage;
use std::sync::Arc;

/// Scaled sweep: 16 KiB → 4 MiB stands in for the paper's 16 MB → 1 GB.
const BIN_SPACES: [usize; 6] = [16 << 10, 64 << 10, 256 << 10, 1 << 20, 2 << 20, 4 << 20];

fn main() {
    let scale = scale_from_env();
    let _ = BenchQueryOptions::default();
    let model = PerfModel::new(MachineConfig::paper_optane());
    let graphs = prepare_main_six(scale);

    let mut rows = Vec::new();
    for g in &graphs {
        let mut row = vec![g.short_name().to_string()];
        for &space in &BIN_SPACES {
            let storage = Arc::new(StripedStorage::in_memory(1).expect("storage"));
            let graph = Arc::new(DiskGraph::create(&g.csr, storage).expect("graph"));
            // Small staging batches so tiny bin spaces are not floored away.
            let binning = BinningConfig::new(1024, space, 8).expect("binning");
            let engine = BlazeEngine::new(graph, EngineOptions::default().with_binning(binning))
                .expect("engine");
            let x: Vec<f64> = (0..g.csr.num_vertices())
                .map(|i| 1.0 / (i + 1) as f64)
                .collect();
            spmv(&engine, &x, ExecMode::Binned).expect("spmv");
            let traces = engine.take_traces();
            row.push(gbps(model.blaze_query(&traces).avg_bandwidth()));
        }
        rows.push(row);
    }
    let headers: Vec<String> = std::iter::once("graph".to_string())
        .chain(BIN_SPACES.iter().map(|s| format!("{}K", s >> 10)))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    print_table(
        "Figure 10: SpMV read bandwidth (GB/s) vs total bin space (scaled sweep)",
        &header_refs,
        &rows,
    );
    let path = write_csv("fig10", &header_refs, &rows);
    println!("\nwrote {}", path.display());
    println!("paper shape: bandwidth degrades below ~5% of graph size, flat above");
}
