//! Figure 11: impact of binning configuration on rmat27 — (left) bin count
//! sweep at fixed bin space, (right) scatter:gather thread-ratio sweep at
//! 16 threads.
//!
//! Expected shapes: a wide flat valley in bin count with sharp rises at
//! both extremes (too few bins → gather imbalance; too many → per-bin
//! overhead); flat runtime around 1:1 thread split with sharp rises at
//! lopsided ratios.

use blaze_algorithms::{bfs, pagerank_delta, spmv, wcc, ExecMode, PageRankConfig, Query};
use blaze_bench::datasets::{prepare, scale_from_env};
use blaze_bench::engines::{run_blaze_query, traversal_root, BenchQueryOptions};
use blaze_bench::report::{print_table, write_csv};
use blaze_binning::BinningConfig;
use blaze_core::{BlazeEngine, EngineOptions};
use blaze_graph::{Dataset, DiskGraph};
use blaze_perfmodel::{MachineConfig, PerfModel};
use blaze_storage::StripedStorage;
use blaze_types::IterationTrace;
use std::sync::Arc;

/// Scaled from the paper's 4 → 131072 sweep at 256 MB bin space.
const BIN_COUNTS: [usize; 8] = [4, 16, 64, 256, 1024, 4096, 16384, 131072];
const BIN_SPACE: usize = 256 << 10; // scaled from 256 MB

fn run_query_with_bins(
    g: &blaze_bench::PreparedGraph,
    query: Query,
    bins: usize,
) -> Vec<IterationTrace> {
    let storage = Arc::new(StripedStorage::in_memory(1).expect("storage"));
    let graph = Arc::new(DiskGraph::create(&g.csr, storage).expect("graph"));
    let binning = BinningConfig::new(bins, BIN_SPACE, 8).expect("binning");
    let engine =
        BlazeEngine::new(graph, EngineOptions::default().with_binning(binning)).expect("engine");
    match query {
        Query::Bfs => {
            bfs(&engine, traversal_root(&g.csr), ExecMode::Binned).expect("bfs");
        }
        Query::PageRank => {
            pagerank_delta(&engine, PageRankConfig::default(), ExecMode::Binned).expect("pr");
        }
        Query::SpMV => {
            let x: Vec<f64> = (0..g.csr.num_vertices())
                .map(|i| 1.0 / (i + 1) as f64)
                .collect();
            spmv(&engine, &x, ExecMode::Binned).expect("spmv");
        }
        Query::Wcc => {
            let storage2 = Arc::new(StripedStorage::in_memory(1).expect("storage"));
            let graph2 = Arc::new(DiskGraph::create(&g.transpose, storage2).expect("graph"));
            let binning2 = BinningConfig::new(bins, BIN_SPACE, 8).expect("binning");
            let in_engine =
                BlazeEngine::new(graph2, EngineOptions::default().with_binning(binning2))
                    .expect("engine");
            wcc(&engine, &in_engine, ExecMode::Binned).expect("wcc");
            let mut t = engine.take_traces();
            t.extend(in_engine.take_traces());
            return t;
        }
        Query::Bc => unreachable!("fig11 uses BFS/PR/WCC/SpMV"),
    }
    engine.take_traces()
}

fn main() {
    let scale = scale_from_env();
    let g = prepare(Dataset::Rmat27, scale);
    let model = PerfModel::new(MachineConfig::paper_optane());
    let queries = [Query::Bfs, Query::PageRank, Query::Wcc, Query::SpMV];

    // (a) bin-count sweep.
    let mut count_rows = Vec::new();
    for query in queries {
        let mut row = vec![query.short_name().to_string()];
        for &bins in &BIN_COUNTS {
            let traces = run_query_with_bins(&g, query, bins);
            row.push(format!("{:.4}", model.blaze_query(&traces).total_s()));
        }
        count_rows.push(row);
    }
    let headers: Vec<String> = std::iter::once("query".to_string())
        .chain(BIN_COUNTS.iter().map(|b| b.to_string()))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    print_table(
        "Figure 11a: modeled time (s) vs bin count, rmat27",
        &header_refs,
        &count_rows,
    );
    write_csv("fig11_bincount", &header_refs, &count_rows);

    // (b) scatter:gather ratio sweep at 16 threads, using one trace set.
    let opts = BenchQueryOptions::default();
    let ratios: [(usize, usize); 7] =
        [(1, 15), (2, 14), (4, 12), (8, 8), (12, 4), (14, 2), (15, 1)];
    let mut ratio_rows = Vec::new();
    for query in queries {
        let traces = run_blaze_query(query, &g, ExecMode::Binned, &opts);
        let mut row = vec![query.short_name().to_string()];
        for &(s, gth) in &ratios {
            let machine =
                MachineConfig::paper_optane().with_scatter_ratio(s as f64 / (s + gth) as f64);
            let m = PerfModel::new(machine);
            row.push(format!("{:.4}", m.blaze_query(&traces).total_s()));
        }
        ratio_rows.push(row);
    }
    let rheaders: Vec<String> = std::iter::once("query".to_string())
        .chain(ratios.iter().map(|(s, g)| format!("{s}:{g}")))
        .collect();
    let rheader_refs: Vec<&str> = rheaders.iter().map(String::as_str).collect();
    print_table(
        "Figure 11b: modeled time (s) vs scatter:gather split (16 threads), rmat27",
        &rheader_refs,
        &ratio_rows,
    );
    let path = write_csv("fig11_ratio", &rheader_refs, &ratio_rows);
    println!("\nwrote {}", path.display());
    println!("paper shape: flat valley across mid bin counts, rising at extremes; flat near 1:1 split, sharp at lopsided ratios");
}
