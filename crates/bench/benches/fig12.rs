//! Figure 12: memory footprint relative to input graph size, per query and
//! graph, under the semi-external model.
//!
//! Byte-accurate accounting of everything Blaze keeps in DRAM: graph
//! metadata (index + page map), IO buffers, bins, staging, frontiers, and
//! the algorithm's vertex arrays. BC on hyperlink14 is reported as
//! exceeding the paper's 96 GB budget, as in the paper.

use blaze_algorithms::Query;
use blaze_bench::datasets::{prepare, scale_from_env};
use blaze_bench::report::{print_table, write_csv};
use blaze_core::{BlazeEngine, EngineOptions, MemoryFootprint};
use blaze_graph::{Dataset, DiskGraph};
use blaze_storage::StripedStorage;
use std::sync::Arc;

/// Bytes per vertex of algorithm state, per query (Algorithms 1-3 + BC).
fn algorithm_bytes_per_vertex(query: Query) -> u64 {
    match query {
        Query::Bfs => 8,       // Parent: one i64 array
        Query::PageRank => 24, // p, delta, ngh_sum: three f64 arrays
        Query::Wcc => 8,       // Ids, PrevIds: two u32 arrays
        Query::SpMV => 16,     // x and y: two f64 arrays
        Query::Bc => 32,       // depth, sigma, delta, acc
    }
}

/// Bin record bytes per query (dst + value).
fn record_bytes(query: Query) -> usize {
    match query {
        Query::Bfs | Query::Wcc => 8,
        _ => 16,
    }
}

fn main() {
    let scale = scale_from_env();
    let mut rows = Vec::new();
    for dataset in Dataset::all() {
        let g = prepare(dataset, scale);
        let n = g.csr.num_vertices() as u64;
        let storage = Arc::new(StripedStorage::in_memory(1).expect("storage"));
        let graph = Arc::new(DiskGraph::create(&g.csr, storage).expect("graph"));
        let graph_bytes = graph.storage_bytes();
        // Paper proportions: 64 MB of IO buffers against multi-GB graphs
        // (~0.8%) and bin space at 5% of the graph; at reduced scale the
        // default per-bin floors (1024 bins x 64-record staging) would
        // swamp a sub-megabyte graph, so bin count and staging batch scale
        // down with the graph while keeping the paper's ratios.
        let bin_count = (graph.num_pages() as usize).clamp(16, 1024);
        let binning = blaze_binning::BinningConfig::new(
            bin_count,
            ((graph_bytes / 20) as usize).max(4 << 10),
            2,
        )
        .expect("binning");
        let options = EngineOptions {
            io_buffer_bytes: ((graph_bytes / 128) as usize).max(16 << 10),
            binning: Some(binning),
            ..Default::default()
        };
        let engine = BlazeEngine::new(graph, options).expect("engine");
        for query in Query::all() {
            // BC needs the transpose resident too (a second engine); the
            // paper reports it cannot run on hyperlink14 within 96 GB.
            if query == Query::Bc && dataset == Dataset::Hyperlink14 {
                rows.push(vec![
                    query.short_name().to_string(),
                    dataset.short_name().to_string(),
                    "-".into(),
                    "OOM at paper scale (>96 GB, as in the paper)".into(),
                ]);
                continue;
            }
            let algo = algorithm_bytes_per_vertex(query) * n;
            let fp = MemoryFootprint::measure(&engine, algo, record_bytes(query));
            rows.push(vec![
                query.short_name().to_string(),
                dataset.short_name().to_string(),
                format!("{:.1}%", fp.ratio() * 100.0),
                format!(
                    "meta {:.1}% io {:.1}% bins {:.1}% algo {:.1}%",
                    100.0 * fp.metadata_bytes as f64 / fp.graph_bytes as f64,
                    100.0 * fp.io_buffer_bytes as f64 / fp.graph_bytes as f64,
                    100.0 * (fp.bin_bytes + fp.staging_bytes) as f64 / fp.graph_bytes as f64,
                    100.0 * fp.algorithm_bytes as f64 / fp.graph_bytes as f64,
                ),
            ]);
        }
    }
    print_table(
        "Figure 12: memory footprint / input graph size",
        &["query", "graph", "ratio", "breakdown"],
        &rows,
    );
    let path = write_csv("fig12", &["query", "graph", "ratio", "breakdown"], &rows);
    println!("\nwrote {}", path.display());
    println!("paper shape: 10-34% overall; BFS lowest (10-20%), PR highest (16-33%); BC/hy out of memory");
}
