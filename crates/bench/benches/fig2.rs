//! Figure 2: idle IO periods in FlashGraph — read-bandwidth timelines of
//! PR, WCC, and SpMV on rmat30, on NAND (a) vs Optane (b).
//!
//! On NAND the device is the bottleneck and stays busy; on Optane the IO
//! finishes early each iteration and the device idles while the straggler
//! thread drains its message queue.

use blaze_algorithms::Query;
use blaze_bench::datasets::{prepare, scale_from_env};
use blaze_bench::engines::{run_flashgraph_query, BenchQueryOptions};
use blaze_bench::report::{print_table, write_csv};
use blaze_graph::Dataset;
use blaze_perfmodel::{MachineConfig, PerfModel, Timeline};

fn main() {
    let scale = scale_from_env();
    let opts = BenchQueryOptions::default();
    let g = prepare(Dataset::Rmat30, scale);
    let machines = [
        ("nand", MachineConfig::paper_nand()),
        ("optane", MachineConfig::paper_optane()),
    ];
    let queries = [Query::PageRank, Query::Wcc, Query::SpMV];

    let mut summary = Vec::new();
    let mut series_rows = Vec::new();
    for query in queries {
        let traces = run_flashgraph_query(query, &g, &opts);
        for (device, machine) in &machines {
            let model = PerfModel::new(machine.clone());
            let timeline = Timeline::build(&model, &traces, PerfModel::flashgraph_iteration);
            let idle = timeline.idle_fraction(50e6); // < 50 MB/s counts as idle
            summary.push(vec![
                device.to_string(),
                query.short_name().to_string(),
                format!("{:.3}", timeline.duration_s()),
                format!("{:.0}%", idle * 100.0),
            ]);
            for (t, bw) in timeline.sample(200) {
                series_rows.push(vec![
                    device.to_string(),
                    query.short_name().to_string(),
                    format!("{t:.6}"),
                    format!("{:.3}", bw / 1e9),
                ]);
            }
        }
    }
    print_table(
        "Figure 2: FlashGraph idle-IO fraction on rmat30 (timeline CSV in results/)",
        &["device", "query", "duration s", "idle fraction"],
        &summary,
    );
    let path = write_csv(
        "fig2_timeline",
        &["device", "query", "time_s", "gbps"],
        &series_rows,
    );
    let spath = write_csv(
        "fig2_summary",
        &["device", "query", "duration_s", "idle_pct"],
        &summary,
    );
    println!("\nwrote {} and {}", path.display(), spath.display());
    println!("paper shape: NAND timeline pinned at device BW; Optane timeline drops to zero at every iteration tail");
}
