//! Figure 3: skewed IO in Graphene — max − min IO bytes across the 8-disk
//! array, per BFS iteration, for the six main graphs.
//!
//! The 2-D topology-aware partitioning balances *total* edges per disk,
//! but BFS's selective scheduling touches partitions unevenly: power-law
//! graphs skew hard, the uniform graph barely.

use blaze_algorithms::Query;
use blaze_bench::datasets::{prepare_main_six, scale_from_env};
use blaze_bench::engines::{run_graphene_query, BenchQueryOptions};
use blaze_bench::report::{print_table, write_csv};
use blaze_types::util::human_bytes;

fn main() {
    let scale = scale_from_env();
    let opts = BenchQueryOptions::default(); // 8 disks
    let graphs = prepare_main_six(scale);

    let mut summary = Vec::new();
    let mut per_iter_rows = Vec::new();
    for g in &graphs {
        let traces = run_graphene_query(Query::Bfs, g, &opts).expect("bfs");
        let mut max_skew = 0u64;
        let mut worst_ratio = 1.0f64;
        for (i, t) in traces.iter().enumerate() {
            let skew = t.io_skew_bytes();
            max_skew = max_skew.max(skew);
            let max = *t.io_bytes_per_device.iter().max().unwrap_or(&0);
            let min = *t.io_bytes_per_device.iter().min().unwrap_or(&0);
            if min > 0 {
                worst_ratio = worst_ratio.max(max as f64 / min as f64);
            }
            per_iter_rows.push(vec![
                g.short_name().to_string(),
                i.to_string(),
                skew.to_string(),
                max.to_string(),
                min.to_string(),
            ]);
        }
        summary.push(vec![
            g.short_name().to_string(),
            human_bytes(max_skew),
            format!("{worst_ratio:.2}x"),
            traces.len().to_string(),
        ]);
    }
    print_table(
        "Figure 3: Graphene per-iteration IO skew across 8 disks (BFS)",
        &[
            "graph",
            "max (max-min) bytes",
            "worst max/min",
            "iterations",
        ],
        &summary,
    );
    let path = write_csv(
        "fig3",
        &["graph", "iteration", "skew_bytes", "max_bytes", "min_bytes"],
        &per_iter_rows,
    );
    println!("\nwrote {}", path.display());
    println!("paper shape: power-law graphs skew up to >100 MB and 1.7-2.1x max/min; uran27 stays under ~1 MB (scales with dataset size)");
}
