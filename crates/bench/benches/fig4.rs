//! Figure 4: single-threaded graph computation speed (bars) vs device read
//! bandwidth (lines).
//!
//! For each query × graph, the functional run gives the edge/record
//! volumes; the cost model converts them into a single-thread processing
//! rate in GB/s of edge data, compared against NAND and Optane bandwidth.
//! The point of the figure: one thread keeps up with NAND but not with an
//! FND, so Graphene's one-compute-thread-per-SSD policy starves fast
//! drives.

use blaze_algorithms::{ExecMode, Query};
use blaze_bench::datasets::{prepare, scale_from_env};
use blaze_bench::engines::{run_blaze_query, BenchQueryOptions};
use blaze_bench::report::{gbps, print_table, write_csv};
use blaze_graph::Dataset;
use blaze_perfmodel::CostModel;
use blaze_storage::DeviceProfile;

fn main() {
    let scale = scale_from_env();
    let opts = BenchQueryOptions::default();
    let costs = CostModel::default();
    let graphs = [
        Dataset::Rmat27,
        Dataset::Uran27,
        Dataset::Twitter,
        Dataset::Sk2005,
    ];
    let queries = [Query::Bfs, Query::Bc, Query::PageRank];
    let nand = DeviceProfile::nand_s3520();
    let optane = DeviceProfile::optane_p4800x();

    let mut rows = Vec::new();
    for query in queries {
        for dataset in graphs {
            let g = prepare(dataset, scale);
            let traces = run_blaze_query(query, &g, ExecMode::Binned, &opts);
            let edges: u64 = traces.iter().map(|t| t.edges_processed).sum();
            let records: u64 = traces.iter().map(|t| t.records_produced).sum();
            let rate = costs.single_thread_rate(edges, records);
            rows.push(vec![
                query.short_name().to_string(),
                dataset.short_name().to_string(),
                gbps(rate),
                if rate >= nand.rand_read_bw {
                    "yes"
                } else {
                    "no"
                }
                .to_string(),
                if rate >= optane.rand_read_bw {
                    "yes"
                } else {
                    "no"
                }
                .to_string(),
            ]);
        }
    }
    print_table(
        &format!(
            "Figure 4: 1-thread compute GB/s vs device BW (NAND {} / Optane {} GB/s)",
            gbps(nand.rand_read_bw),
            gbps(optane.rand_read_bw)
        ),
        &["query", "graph", "compute GB/s", ">= NAND", ">= Optane"],
        &rows,
    );
    let path = write_csv(
        "fig4",
        &["query", "graph", "gbps", "beats_nand", "beats_optane"],
        &rows,
    );
    println!("\nwrote {}", path.display());
    println!("paper shape: bars clear the NAND line on most workloads but never the Optane line");
}
