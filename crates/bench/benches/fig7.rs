//! Figure 7: Blaze speedup over FlashGraph (left) and Graphene (right) on
//! the six main graphs and five queries.
//!
//! Times come from the performance model replaying each engine's measured
//! work trace on the paper's 16-thread Optane machine. Per the paper:
//! Graphene lacks BC, and the Graphene PR comparison uses one full
//! iteration on both sides.

use blaze_algorithms::{ExecMode, Query};
use blaze_bench::datasets::{prepare_main_six, scale_from_env};
use blaze_bench::engines::{
    run_blaze_query, run_flashgraph_query, run_graphene_query, BenchQueryOptions,
};
use blaze_bench::report::{print_table, speedup, write_csv};
use blaze_perfmodel::{MachineConfig, PerfModel};

fn main() {
    let scale = scale_from_env();
    let opts = BenchQueryOptions::default();
    let model = PerfModel::new(MachineConfig::paper_optane());
    let graphs = prepare_main_six(scale);

    let mut rows = Vec::new();
    for query in Query::all() {
        for g in &graphs {
            let blaze_traces = run_blaze_query(query, g, ExecMode::Binned, &opts);
            let blaze_s = model.blaze_query(&blaze_traces).total_s();

            let fg_traces = run_flashgraph_query(query, g, &opts);
            let fg_s = model.flashgraph_query(&fg_traces).total_s();

            // Graphene comparison: one disk (the Figure 7 testbed is a
            // single Optane SSD); PR compares a single full iteration.
            let one_disk = BenchQueryOptions {
                graphene_disks: 1,
                ..opts.clone()
            };
            let gr_s = run_graphene_query(query, g, &one_disk)
                .map(|traces| model.graphene_query(&traces).total_s());
            let blaze_vs_gr_s = if query == Query::PageRank {
                // First iteration only (full frontier) on the Blaze side.
                model
                    .blaze_query(&blaze_traces[..1.min(blaze_traces.len())])
                    .total_s()
            } else {
                blaze_s
            };

            rows.push(vec![
                query.short_name().to_string(),
                g.short_name().to_string(),
                format!("{blaze_s:.4}"),
                format!("{fg_s:.4}"),
                speedup(fg_s / blaze_s),
                gr_s.map_or("n/a".into(), |s| format!("{s:.4}")),
                gr_s.map_or("n/a".into(), |s| speedup(s / blaze_vs_gr_s)),
            ]);
        }
    }
    print_table(
        "Figure 7: modeled query times (s) and Blaze speedups",
        &[
            "query",
            "graph",
            "blaze s",
            "flashgraph s",
            "vs FG",
            "graphene s",
            "vs GR",
        ],
        &rows,
    );
    let path = write_csv(
        "fig7",
        &[
            "query",
            "graph",
            "blaze_s",
            "flashgraph_s",
            "speedup_fg",
            "graphene_s",
            "speedup_gr",
        ],
        &rows,
    );
    println!("\nwrote {}", path.display());
    println!("paper shape: biggest win PR on r3 (up to 13.6x vs FG); FG wins slightly on sk (page cache); 1.6-7.9x vs Graphene");
}
