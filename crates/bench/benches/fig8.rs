//! Figure 8: average read bandwidth on Optane — Blaze (a) vs the
//! synchronization-based variant (b).
//!
//! Both variants execute the same queries functionally; the model then
//! shows that online binning keeps the device saturated while the CAS
//! variant drops to a fraction of the bandwidth on computation-heavy
//! queries.

use blaze_algorithms::{ExecMode, Query};
use blaze_bench::datasets::{prepare_main_six, scale_from_env};
use blaze_bench::engines::{run_blaze_query, BenchQueryOptions};
use blaze_bench::report::{gbps, print_table, write_csv};
use blaze_perfmodel::{MachineConfig, PerfModel};

fn main() {
    let scale = scale_from_env();
    let opts = BenchQueryOptions::default();
    let model = PerfModel::new(MachineConfig::paper_optane());
    let device_bw = model.machine.aggregate_bandwidth();
    let graphs = prepare_main_six(scale);

    let mut rows = Vec::new();
    for query in Query::all() {
        for g in &graphs {
            // The binned run provides the trace for both variants: the sync
            // model reuses the measured bin histogram as its contention
            // proxy (same destination distribution).
            let traces = run_blaze_query(query, g, ExecMode::Binned, &opts);
            let blaze = model.blaze_query(&traces);
            let sync = model.sync_query(&traces);
            rows.push(vec![
                query.short_name().to_string(),
                g.short_name().to_string(),
                gbps(blaze.avg_bandwidth()),
                format!("{:.0}%", 100.0 * blaze.avg_bandwidth() / device_bw),
                gbps(sync.avg_bandwidth()),
                format!("{:.0}%", 100.0 * sync.avg_bandwidth() / device_bw),
            ]);
        }
    }
    print_table(
        &format!(
            "Figure 8: Blaze vs sync-variant read bandwidth (device {} GB/s)",
            gbps(device_bw)
        ),
        &["query", "graph", "blaze GB/s", "util", "sync GB/s", "util"],
        &rows,
    );
    let path = write_csv(
        "fig8",
        &[
            "query",
            "graph",
            "blaze_gbps",
            "blaze_util",
            "sync_gbps",
            "sync_util",
        ],
        &rows,
    );
    println!("\nwrote {}", path.display());
    println!("paper shape: Blaze near device BW everywhere; sync variant 38-85% on PR/SpMV");
}
