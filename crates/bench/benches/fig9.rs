//! Figure 9: thread scaling — modeled Blaze runtime on one Optane SSD with
//! 2, 4, 8, and 16 compute threads, per graph and query.
//!
//! Scaling is near-linear while compute-bound and flattens once the device
//! saturates; high-locality/cheap workloads (BFS on sk2005) saturate with
//! two threads.

use blaze_algorithms::{ExecMode, Query};
use blaze_bench::datasets::{prepare_main_six, scale_from_env};
use blaze_bench::engines::{run_blaze_query, BenchQueryOptions};
use blaze_bench::report::{print_table, write_csv};
use blaze_perfmodel::{MachineConfig, PerfModel};

const THREADS: [usize; 4] = [2, 4, 8, 16];

fn main() {
    let scale = scale_from_env();
    let opts = BenchQueryOptions::default();
    let graphs = prepare_main_six(scale);

    let mut rows = Vec::new();
    for query in Query::all() {
        for g in &graphs {
            let traces = run_blaze_query(query, g, ExecMode::Binned, &opts);
            let times: Vec<f64> = THREADS
                .iter()
                .map(|&t| {
                    let model = PerfModel::new(MachineConfig::paper_optane().with_threads(t));
                    model.blaze_query(&traces).total_s()
                })
                .collect();
            let mut row = vec![query.short_name().to_string(), g.short_name().to_string()];
            for (i, &t) in THREADS.iter().enumerate() {
                let _ = t;
                row.push(format!("{:.4}", times[i]));
            }
            row.push(format!("{:.2}x", times[0] / times[3]));
            rows.push(row);
        }
    }
    print_table(
        "Figure 9: modeled Blaze runtime (s) vs compute threads",
        &[
            "query",
            "graph",
            "t=2",
            "t=4",
            "t=8",
            "t=16",
            "2->16 speedup",
        ],
        &rows,
    );
    let path = write_csv(
        "fig9",
        &[
            "query",
            "graph",
            "t2_s",
            "t4_s",
            "t8_s",
            "t16_s",
            "speedup_2_to_16",
        ],
        &rows,
    );
    println!("\nwrote {}", path.display());
    println!("paper shape: near-linear until the SSD saturates; sk2005 BFS flat (2 threads already saturate)");
}
