//! Layout A/B: does the degree-aware physical layout earn its keep on the
//! page cache?
//!
//! Runs multi-iteration PageRank (with scatter-side combining) and BFS on
//! sk2005 under three cache budgets, once per layout (`none`, `degree`,
//! `hub`). PageRank's sparse late iterations concentrate their re-reads;
//! packing vertices by degree shrinks the page footprint of those re-read
//! sets, so at the largest budget (half the page set) the degree layout
//! shows a higher hit ratio and fewer device bytes than `none` on the
//! typical run — that row carries the asserts, the rest are reported.
//! BFS rows are reported unasserted: sk2005 ships in BFS-friendly order,
//! so reordering can legitimately cost BFS locality — that trade-off is
//! exactly what this table documents. The combine-rate column tracks how
//! the layout shifts scatter-side record combining.

use blaze_algorithms::{bfs, pagerank_delta_combined, ExecMode, PageRankConfig};
use blaze_bench::datasets::{prepare, scale_from_env};
use blaze_bench::report::{print_table, write_csv};
use blaze_core::{BlazeEngine, EngineOptions};
use blaze_graph::{Dataset, DiskGraph, VertexLayout};
use blaze_storage::StripedStorage;
use blaze_types::{EDGES_PER_PAGE, PAGE_SIZE};
use std::sync::Arc;

const ITERS: usize = 12;
const DEVICES: usize = 2;
/// Pooled trials per (query, budget, layout) cell: clock-cache hit counts
/// vary run to run with threaded insertion order, so every reported number
/// sums over the trials and the asserts compare pooled statistics.
const TRIALS: usize = 15;

struct Run {
    io_bytes: u64,
    hits: u64,
    misses: u64,
    hot_hits: u64,
    hot_admits: u64,
    combine_rate: f64,
    wall: f64,
}

fn engine(g: &blaze_bench::PreparedGraph, layout: VertexLayout, cache_bytes: usize) -> BlazeEngine {
    let storage = Arc::new(StripedStorage::in_memory(DEVICES).expect("storage"));
    let graph = Arc::new(DiskGraph::create_with_layout(&g.csr, storage, layout).expect("graph"));
    // Two compute workers (one scatter, one gather): the fewer the threads,
    // the fewer float-summation orders, and the steadier the delta-PageRank
    // activation sets that drive the page access stream.
    BlazeEngine::new(
        graph,
        EngineOptions::default()
            .with_compute_workers(2, 0.5)
            .with_cache_bytes(cache_bytes),
    )
    .expect("engine")
}

fn run_query(
    g: &blaze_bench::PreparedGraph,
    layout: VertexLayout,
    cache_bytes: usize,
    query: &str,
) -> Run {
    let mut pooled = Run {
        io_bytes: 0,
        hits: 0,
        misses: 0,
        hot_hits: 0,
        hot_admits: 0,
        combine_rate: 0.0,
        wall: f64::INFINITY,
    };
    let (mut combined, mut produced) = (0u64, 0u64);
    for _ in 0..TRIALS {
        let e = engine(g, layout, cache_bytes);
        let t0 = std::time::Instant::now();
        match query {
            "pr" => {
                let config = PageRankConfig {
                    max_iters: ITERS,
                    ..Default::default()
                };
                pagerank_delta_combined(&e, config).expect("pagerank");
            }
            _ => {
                bfs(&e, 0, ExecMode::Binned).expect("bfs");
            }
        }
        pooled.wall = pooled.wall.min(t0.elapsed().as_secs_f64());
        let stats = e.stats();
        pooled.io_bytes += stats.io_bytes;
        pooled.hits += stats.cache_hit_pages;
        pooled.misses += stats.cache_miss_pages;
        pooled.hot_hits += stats.cache_hot_hit_pages;
        pooled.hot_admits += stats.cache_hot_admits;
        combined += stats.records_combined;
        produced += stats.records_produced;
    }
    if produced + combined > 0 {
        pooled.combine_rate = combined as f64 / (produced + combined) as f64;
    }
    pooled
}

fn hit_ratio(r: &Run) -> f64 {
    if r.hits + r.misses == 0 {
        0.0
    } else {
        r.hits as f64 / (r.hits + r.misses) as f64
    }
}

fn main() {
    let scale = scale_from_env();
    let g = prepare(Dataset::Sk2005, scale);
    let graph_pages = (g.csr.num_edges() as usize).div_ceil(EDGES_PER_PAGE).max(8);
    // Three fixed budgets: an eighth, a quarter, and half the page set —
    // big enough to matter, small enough that policy decides what stays.
    let budgets = [
        graph_pages / 8 * PAGE_SIZE,
        graph_pages / 4 * PAGE_SIZE,
        graph_pages / 2 * PAGE_SIZE,
    ];

    let layouts = [VertexLayout::None, VertexLayout::Degree, VertexLayout::Hub];
    let mut rows = Vec::new();
    for query in ["pr", "bfs"] {
        for &budget in &budgets {
            let mut baseline: Option<Run> = None;
            for layout in layouts {
                let r = run_query(&g, layout, budget, query);
                let (io_delta, combine_delta) = match &baseline {
                    Some(b) => (
                        100.0 * (1.0 - r.io_bytes as f64 / b.io_bytes.max(1) as f64),
                        100.0 * (r.combine_rate - b.combine_rate),
                    ),
                    None => (0.0, 0.0),
                };
                // Asserted at the largest budget, where cache policy (not
                // raw capacity starvation) decides what stays. The hot-path
                // mechanics are deterministic and asserted exactly; the
                // comparison against `none` allows a small tolerance
                // because threaded IO arrival order perturbs pooled hit
                // counts by a few percent run to run — the degree layout
                // wins the pooled comparison on the typical run (that is
                // what the committed CSV records) and must never lose it
                // by more than noise. Smaller budgets are reported
                // unasserted: a dozen-page cache is churn for every
                // layout. BFS rows are likewise report-only — sk2005
                // ships in BFS-friendly order, so reordering trades BFS
                // locality for PageRank locality, and the table documents
                // that honestly.
                if query == "pr" && layout == VertexLayout::Degree && budget == budgets[2] {
                    let b = baseline.as_ref().expect("none runs first");
                    assert!(r.hot_admits > 0, "hot admissions must be counted");
                    assert!(r.hot_hits > 0, "hub pages must see cache hits");
                    assert!(
                        hit_ratio(&r) > hit_ratio(b) - 0.03,
                        "budget {budget}: degree layout hit ratio {:.4} fell more \
                         than noise below none {:.4}",
                        hit_ratio(&r),
                        hit_ratio(b)
                    );
                    assert!(
                        (r.io_bytes as f64) < b.io_bytes as f64 * 1.03,
                        "budget {budget}: degree layout read {} device bytes, \
                         materially more than none's {}",
                        r.io_bytes,
                        b.io_bytes
                    );
                }
                rows.push(vec![
                    query.to_string(),
                    format!("{} KiB", budget >> 10),
                    layout.name().to_string(),
                    r.io_bytes.to_string(),
                    format!("{:.4}", hit_ratio(&r)),
                    r.hot_hits.to_string(),
                    format!("{:.2}%", 100.0 * r.combine_rate),
                    format!("{io_delta:+.1}%"),
                    format!("{combine_delta:+.1}pp"),
                    format!("{:.3}", r.wall),
                ]);
                if layout == VertexLayout::None {
                    baseline = Some(r);
                }
            }
        }
    }

    print_table(
        &format!("Layout A/B: sk2005 PageRank x{ITERS} + BFS, cache budgets x3"),
        &[
            "query",
            "budget",
            "layout",
            "io bytes",
            "hit ratio",
            "hot hits",
            "combine",
            "io vs none",
            "combine vs none",
            "wall s",
        ],
        &rows,
    );
    let path = write_csv(
        "layout_ab",
        &[
            "query",
            "budget",
            "layout",
            "io_bytes",
            "hit_ratio",
            "hot_hits",
            "combine_rate",
            "io_delta_vs_none",
            "combine_delta_pp",
            "wall_s",
        ],
        &rows,
    );
    println!("\nwrote {}", path.display());
}
