//! Microbenchmarks of the core mechanisms, including the ablations called
//! out in DESIGN.md: binning vs CAS propagation, staging on/off,
//! merge-window sizes, frontier representations, and the indirection index.
//!
//! Plain wall-clock harness (no external bench framework): each case runs a
//! couple of warm-up iterations, then reports the best-of-N time.

use blaze_bench::report::{print_table, write_csv};
use blaze_binning::{BinRecord, BinSpace, BinningConfig, ScatterStaging};
use blaze_core::{BlazeEngine, EngineOptions, VertexArray};
use blaze_frontier::{AtomicBitmap, VertexSubset};
use blaze_graph::gen::{rmat, RmatConfig};
use blaze_graph::{DiskGraph, GraphIndex};
use blaze_storage::request::merge_pages_with_window;
use blaze_storage::StripedStorage;
use std::sync::Arc;
use std::time::Instant;

const N: usize = 1 << 16;

/// Best-of-`runs` wall time of `f`, in nanoseconds, after one warm-up.
fn time_best<T>(runs: usize, mut f: impl FnMut() -> T) -> u64 {
    std::hint::black_box(f());
    let mut best = u64::MAX;
    for _ in 0..runs {
        let t0 = Instant::now();
        std::hint::black_box(f());
        best = best.min(t0.elapsed().as_nanos() as u64);
    }
    best
}

fn row(group: &str, name: &str, nanos: u64) -> Vec<String> {
    vec![
        group.to_string(),
        name.to_string(),
        format!("{:.3}", nanos as f64 / 1e6),
    ]
}

/// Value propagation: online binning (staged) vs direct CAS updates.
fn bench_propagation(rows: &mut Vec<Vec<String>>) {
    let dsts: Vec<u32> = (0..N as u32)
        .map(|i| i.wrapping_mul(2654435761) % N as u32)
        .collect();
    let binned = |staged: bool| {
        let space: BinSpace<u32> = BinSpace::new(BinningConfig::new(1024, 4 << 20, 64).unwrap());
        if staged {
            let mut staging = ScatterStaging::new(&space);
            for &d in &dsts {
                staging.push(&space, d, d);
            }
            staging.flush(&space);
        } else {
            // Ablation: skip the per-thread staging buffer (one lock per
            // record).
            for &d in &dsts {
                space.append_batch(space.bin_of(d), &[BinRecord::new(d, d)]);
            }
        }
        space.flush_partials();
        let mut sum = 0u64;
        while space.process_one_full(|_, records| {
            for r in records {
                sum += r.value as u64;
            }
        }) {}
        sum
    };
    rows.push(row(
        "propagation",
        "online_binning",
        time_best(5, || binned(true)),
    ));
    rows.push(row(
        "propagation",
        "binning_unstaged",
        time_best(5, || binned(false)),
    ));
    let arr = VertexArray::<u64>::new(N, 0);
    rows.push(row(
        "propagation",
        "cas_direct",
        time_best(5, || {
            for &d in &dsts {
                arr.fetch_update(d as usize, |v| Some(v + 1)).ok();
            }
            arr.get(0)
        }),
    ));
}

/// Frontier inserts and iteration: sparse vs dense.
fn bench_frontier(rows: &mut Vec<Vec<String>>) {
    rows.push(row(
        "frontier",
        "sparse_insert_1pct",
        time_best(10, || {
            let s = VertexSubset::new(N);
            for v in (0..N as u32).step_by(100) {
                s.insert(v);
            }
            s.len()
        }),
    ));
    rows.push(row(
        "frontier",
        "dense_insert_all",
        time_best(10, || {
            let s = VertexSubset::new(N);
            for v in 0..N as u32 {
                s.insert(v);
            }
            s.len()
        }),
    ));
    let mut bm = AtomicBitmap::new(N);
    bm.set_all();
    rows.push(row(
        "frontier",
        "bitmap_scan",
        time_best(10, || bm.iter_ones().count()),
    ));
}

/// IO request merging at different windows (ablation: 1/2/4/8 pages).
fn bench_merge(rows: &mut Vec<Vec<String>>) {
    // Realistic page list: clustered runs with gaps.
    let pages: Vec<u64> = (0..N as u64)
        .filter(|p| p % 7 != 3 && p % 11 != 5)
        .collect();
    for window in [1usize, 2, 4, 8] {
        rows.push(row(
            "merge_pages",
            &format!("window_{window}"),
            time_best(10, || merge_pages_with_window(&pages, window).len()),
        ));
    }
}

/// Indirection-index offset lookups vs a plain prefix-sum array.
fn bench_index(rows: &mut Vec<Vec<String>>) {
    let degrees: Vec<u32> = (0..N as u32).map(|i| i % 37).collect();
    let index = GraphIndex::from_degrees(degrees.clone());
    let mut plain = vec![0u64; N + 1];
    for i in 0..N {
        plain[i + 1] = plain[i] + degrees[i] as u64;
    }
    rows.push(row(
        "index_lookup",
        "indirection",
        time_best(10, || {
            let mut sum = 0u64;
            for v in (0..N as u32).step_by(17) {
                sum += index.edge_offset(v);
            }
            sum
        }),
    ));
    rows.push(row(
        "index_lookup",
        "full_offsets",
        time_best(10, || {
            let mut sum = 0u64;
            for v in (0..N).step_by(17) {
                sum += plain[v];
            }
            sum
        }),
    ));
}

/// End-to-end out-of-core BFS on a small R-MAT graph.
fn bench_bfs_e2e(rows: &mut Vec<Vec<String>>) {
    let g = rmat(&RmatConfig::new(12));
    let storage = Arc::new(StripedStorage::in_memory(1).unwrap());
    let graph = Arc::new(DiskGraph::create(&g, storage).unwrap());
    for (name, mode) in [
        ("blaze_rmat12", blaze_algorithms::ExecMode::Binned),
        ("sync_rmat12", blaze_algorithms::ExecMode::Sync),
    ] {
        rows.push(row(
            "bfs_e2e",
            name,
            time_best(3, || {
                let engine = BlazeEngine::new(graph.clone(), EngineOptions::default()).unwrap();
                let parent = blaze_algorithms::bfs(&engine, 0, mode).unwrap();
                parent.get(1)
            }),
        ));
    }
}

fn main() {
    let mut rows = Vec::new();
    bench_propagation(&mut rows);
    bench_frontier(&mut rows);
    bench_merge(&mut rows);
    bench_index(&mut rows);
    bench_bfs_e2e(&mut rows);
    print_table(
        "Microbenchmarks (best-of-N wall time)",
        &["group", "case", "ms"],
        &rows,
    );
    let path = write_csv("micro", &["group", "case", "ms"], &rows);
    println!("\nwrote {}", path.display());
}
