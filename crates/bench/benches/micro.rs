//! Criterion microbenchmarks of the core mechanisms, including the
//! ablations called out in DESIGN.md: binning vs CAS propagation, staging
//! on/off, merge-window sizes, frontier representations, and the
//! indirection index.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use blaze_binning::{BinRecord, BinSpace, BinningConfig, ScatterStaging};
use blaze_core::{BlazeEngine, EngineOptions, VertexArray};
use blaze_frontier::{AtomicBitmap, VertexSubset};
use blaze_graph::gen::{rmat, RmatConfig};
use blaze_graph::{DiskGraph, GraphIndex};
use blaze_storage::request::merge_pages_with_window;
use blaze_storage::StripedStorage;
use std::sync::Arc;

const N: usize = 1 << 16;

/// Value propagation: online binning (staged) vs direct CAS updates.
fn bench_propagation(c: &mut Criterion) {
    let dsts: Vec<u32> = (0..N as u32).map(|i| i.wrapping_mul(2654435761) % N as u32).collect();
    let mut group = c.benchmark_group("propagation");
    group.bench_function("online_binning", |b| {
        b.iter(|| {
            let space: BinSpace<u32> =
                BinSpace::new(BinningConfig::new(1024, 4 << 20, 64).unwrap());
            let mut staging = ScatterStaging::new(&space);
            for &d in &dsts {
                staging.push(&space, d, d);
            }
            staging.flush(&space);
            space.flush_partials();
            let mut sum = 0u64;
            while space.process_one_full(|_, records| {
                for r in records {
                    sum += r.value as u64;
                }
            }) {}
            black_box(sum)
        })
    });
    group.bench_function("binning_unstaged", |b| {
        // Ablation: skip the per-thread staging buffer (one lock per record).
        b.iter(|| {
            let space: BinSpace<u32> =
                BinSpace::new(BinningConfig::new(1024, 4 << 20, 64).unwrap());
            for &d in &dsts {
                space.append_batch(space.bin_of(d), &[BinRecord::new(d, d)]);
            }
            space.flush_partials();
            let mut sum = 0u64;
            while space.process_one_full(|_, records| {
                for r in records {
                    sum += r.value as u64;
                }
            }) {}
            black_box(sum)
        })
    });
    group.bench_function("cas_direct", |b| {
        let arr = VertexArray::<u64>::new(N, 0);
        b.iter(|| {
            for &d in &dsts {
                arr.fetch_update(d as usize, |v| Some(v + 1)).ok();
            }
            black_box(arr.get(0))
        })
    });
    group.finish();
}

/// Frontier inserts and iteration: sparse vs dense.
fn bench_frontier(c: &mut Criterion) {
    let mut group = c.benchmark_group("frontier");
    group.bench_function("sparse_insert_1pct", |b| {
        b.iter(|| {
            let s = VertexSubset::new(N);
            for v in (0..N as u32).step_by(100) {
                s.insert(v);
            }
            black_box(s.len())
        })
    });
    group.bench_function("dense_insert_all", |b| {
        b.iter(|| {
            let s = VertexSubset::new(N);
            for v in 0..N as u32 {
                s.insert(v);
            }
            black_box(s.len())
        })
    });
    group.bench_function("bitmap_scan", |b| {
        let mut bm = AtomicBitmap::new(N);
        bm.set_all();
        b.iter(|| black_box(bm.iter_ones().count()))
    });
    group.finish();
}

/// IO request merging at different windows (ablation: 1/2/4/8 pages).
fn bench_merge(c: &mut Criterion) {
    // Realistic page list: clustered runs with gaps.
    let pages: Vec<u64> =
        (0..N as u64).filter(|p| p % 7 != 3 && p % 11 != 5).collect();
    let mut group = c.benchmark_group("merge_pages");
    for window in [1usize, 2, 4, 8] {
        group.bench_function(format!("window_{window}"), |b| {
            b.iter(|| black_box(merge_pages_with_window(&pages, window).len()))
        });
    }
    group.finish();
}

/// Indirection-index offset lookups vs a plain prefix-sum array.
fn bench_index(c: &mut Criterion) {
    let degrees: Vec<u32> = (0..N as u32).map(|i| i % 37).collect();
    let index = GraphIndex::from_degrees(degrees.clone());
    let mut plain = vec![0u64; N + 1];
    for i in 0..N {
        plain[i + 1] = plain[i] + degrees[i] as u64;
    }
    let mut group = c.benchmark_group("index_lookup");
    group.bench_function("indirection", |b| {
        b.iter(|| {
            let mut sum = 0u64;
            for v in (0..N as u32).step_by(17) {
                sum += index.edge_offset(v);
            }
            black_box(sum)
        })
    });
    group.bench_function("full_offsets", |b| {
        b.iter(|| {
            let mut sum = 0u64;
            for v in (0..N).step_by(17) {
                sum += plain[v];
            }
            black_box(sum)
        })
    });
    group.finish();
}

/// End-to-end out-of-core BFS on a small R-MAT graph.
fn bench_bfs_e2e(c: &mut Criterion) {
    let g = rmat(&RmatConfig::new(12));
    let storage = Arc::new(StripedStorage::in_memory(1).unwrap());
    let graph = Arc::new(DiskGraph::create(&g, storage).unwrap());
    let mut group = c.benchmark_group("bfs_e2e");
    group.sample_size(10);
    group.bench_function("blaze_rmat12", |b| {
        b.iter(|| {
            let engine = BlazeEngine::new(graph.clone(), EngineOptions::default()).unwrap();
            let parent =
                blaze_algorithms::bfs(&engine, 0, blaze_algorithms::ExecMode::Binned).unwrap();
            black_box(parent.get(1))
        })
    });
    group.bench_function("sync_rmat12", |b| {
        b.iter(|| {
            let engine = BlazeEngine::new(graph.clone(), EngineOptions::default()).unwrap();
            let parent =
                blaze_algorithms::bfs(&engine, 0, blaze_algorithms::ExecMode::Sync).unwrap();
            black_box(parent.get(1))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_propagation,
    bench_frontier,
    bench_merge,
    bench_index,
    bench_bfs_e2e
);
criterion_main!(benches);
