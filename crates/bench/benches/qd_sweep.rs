//! Queue-depth sweep: modeled device bandwidth of sk2005 PageRank as the
//! IO backend's per-device window grows.
//!
//! Every run uses the threaded backend over queue-depth-aware simulated
//! devices, so the service model prices each request with the in-flight
//! depth at submission (`DeviceProfile::read_service_ns_at_depth`): the
//! fixed device latency is shared by the requests overlapping it, while
//! the transfer term never overlaps. A deeper window therefore drives the
//! modeled bandwidth up — the QD→bandwidth behaviour behind the paper's
//! claim that graph engines must keep fast SSDs saturated — and the sweep
//! asserts the curve is monotonically non-decreasing.

use blaze_algorithms::{pagerank_delta, ExecMode, PageRankConfig};
use blaze_bench::datasets::{prepare, scale_from_env};
use blaze_bench::report::{print_table, write_csv};
use blaze_core::{BlazeEngine, EngineOptions};
use blaze_graph::{Dataset, DiskGraph};
use blaze_storage::{
    BlockDevice, DeviceProfile, IoBackendKind, MemDevice, SimDevice, StripedStorage,
};
use std::sync::Arc;

const ITERS: usize = 3;
const DEVICES: usize = 2;
const DEPTHS: [usize; 4] = [1, 4, 16, 32];

struct Sample {
    io_bytes: u64,
    busy_ns: u64,
    max_in_flight: u64,
    wall_s: f64,
}

impl Sample {
    /// Modeled aggregate read bandwidth in bytes/s: engine bytes over the
    /// time the simulated devices were busy serving them.
    fn bandwidth(&self) -> f64 {
        self.io_bytes as f64 / (self.busy_ns as f64 / 1e9)
    }
}

fn run_at_depth(g: &blaze_bench::PreparedGraph, queue_depth: usize) -> Sample {
    let sims: Vec<Arc<SimDevice<MemDevice>>> = (0..DEVICES)
        .map(|_| {
            Arc::new(SimDevice::new(
                MemDevice::new(),
                DeviceProfile::optane_p4800x(),
            ))
        })
        .collect();
    let devs: Vec<Arc<dyn BlockDevice>> = sims
        .iter()
        .map(|s| s.clone() as Arc<dyn BlockDevice>)
        .collect();
    let storage = Arc::new(StripedStorage::new(devs).expect("storage"));
    let graph = Arc::new(DiskGraph::create(&g.csr, storage).expect("graph"));
    let options = EngineOptions::default()
        .with_io_backend(IoBackendKind::Threaded)
        .with_queue_depth(queue_depth);
    let engine = BlazeEngine::new(graph, options).expect("engine");
    let config = PageRankConfig {
        max_iters: ITERS,
        ..Default::default()
    };
    let t0 = std::time::Instant::now();
    pagerank_delta(&engine, config, ExecMode::Binned).expect("pagerank");
    let wall_s = t0.elapsed().as_secs_f64();
    let stats = engine.stats();
    Sample {
        io_bytes: stats.io_bytes,
        busy_ns: sims.iter().map(|s| s.stats().busy_ns()).sum(),
        max_in_flight: stats.io_max_in_flight,
        wall_s,
    }
}

fn main() {
    let scale = scale_from_env();
    let g = prepare(Dataset::Sk2005, scale);

    let mut rows = Vec::new();
    let mut prev: Option<(usize, f64)> = None;
    for &qd in &DEPTHS {
        let s = run_at_depth(&g, qd);
        assert!(s.io_bytes > 0, "qd {qd}: PageRank must touch the devices");
        assert!(
            s.busy_ns > 0,
            "qd {qd}: simulated devices must accrue busy time"
        );
        assert!(
            s.max_in_flight <= qd as u64,
            "qd {qd}: window overflowed to {} in flight",
            s.max_in_flight
        );
        let bw = s.bandwidth();
        if let Some((prev_qd, prev_bw)) = prev {
            assert!(
                bw >= prev_bw,
                "bandwidth must not regress with depth: qd {qd} modeled \
                 {bw:.0} B/s < qd {prev_qd} modeled {prev_bw:.0} B/s"
            );
        }
        prev = Some((qd, bw));
        rows.push(vec![
            qd.to_string(),
            s.io_bytes.to_string(),
            s.max_in_flight.to_string(),
            format!("{:.3}", s.busy_ns as f64 / 1e6),
            format!("{:.0}", bw / 1e6),
            format!("{:.3}", s.wall_s),
        ]);
    }

    print_table(
        &format!("IO queue-depth sweep: sk2005 PageRank x{ITERS}, {DEVICES}-device stripe"),
        &[
            "queue depth",
            "io bytes",
            "max in flight",
            "device busy ms",
            "modeled MB/s",
            "wall s",
        ],
        &rows,
    );
    let path = write_csv(
        "qd_sweep",
        &[
            "queue_depth",
            "io_bytes",
            "max_in_flight",
            "busy_ms",
            "modeled_mbps",
            "wall_s",
        ],
        &rows,
    );
    println!("\nwrote {}", path.display());
    println!(
        "deeper windows amortize the fixed device latency; the transfer term is depth-invariant"
    );
}
