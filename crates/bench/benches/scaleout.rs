//! Scale-out projection (Section VI): modeled query time on a cluster of
//! 1–8 machines, each a paper-spec box (16 threads + one Optane SSD),
//! connected by 10 GbE.
//!
//! Destination partitioning keeps `EdgeMap` communication-free; the only
//! network cost is broadcasting newly activated frontier entries between
//! iterations. The projection shows near-linear IO scaling with a
//! broadcast overhead that grows with machine count — exactly the
//! trade-off the paper's sketch anticipates.

use blaze_bench::datasets::{prepare, scale_from_env};
use blaze_bench::report::{print_table, write_csv};
use blaze_core::{EngineOptions, VertexArray};
use blaze_frontier::VertexSubset;
use blaze_graph::Dataset;
use blaze_perfmodel::{MachineConfig, PerfModel};
use blaze_scaleout::Cluster;

const NETWORK_BW: f64 = 1.25e9; // 10 GbE, bytes/second

fn main() {
    let scale = scale_from_env();
    let g = prepare(Dataset::Rmat30, scale);
    let n = g.csr.num_vertices();
    let model = PerfModel::new(MachineConfig::paper_optane());

    let mut rows = Vec::new();
    for machines in [1usize, 2, 4, 8] {
        let cluster = Cluster::build(&g.csr, machines, 1, EngineOptions::default()).unwrap();
        // BFS from the hub.
        let root = (0..n as u32).max_by_key(|&v| g.csr.degree(v)).unwrap_or(0);
        let level = VertexArray::<i64>::new(n, -1);
        level.set(root as usize, 0);
        let mut frontier = VertexSubset::single(n, root);
        let mut depth = 0i64;
        while !frontier.is_empty() {
            depth += 1;
            let d = depth;
            frontier = cluster
                .edge_map(
                    &frontier,
                    |_s, _dst| 0u32,
                    |dst, _v| {
                        if level.get(dst as usize) == -1 {
                            level.set(dst as usize, d);
                            true
                        } else {
                            false
                        }
                    },
                    |dst| level.get(dst as usize) == -1,
                    true,
                    4,
                )
                .unwrap();
        }
        // Rounds are synchronized across machines, so per-round time is the
        // slowest machine's. Summing max-per-round equals summing over the
        // per-machine trace lists aligned by round.
        let per_machine: Vec<Vec<f64>> = cluster
            .machines()
            .iter()
            .map(|m| {
                m.engine
                    .take_traces()
                    .iter()
                    .map(|t| model.blaze_iteration(t).total_ns() * 1e-9)
                    .collect()
            })
            .collect();
        let rounds = per_machine.iter().map(Vec::len).max().unwrap_or(0);
        let machine_s: f64 = (0..rounds)
            .map(|r| {
                per_machine
                    .iter()
                    .filter_map(|m| m.get(r).copied())
                    .fold(0.0, f64::max)
            })
            .sum();
        let network_s = cluster.stats().broadcast_bytes as f64 / NETWORK_BW;
        let total = machine_s + network_s;
        rows.push(vec![
            machines.to_string(),
            format!("{machine_s:.5}"),
            format!("{network_s:.5}"),
            format!("{total:.5}"),
        ]);
    }
    // Speedups vs 1 machine.
    let base: f64 = rows[0][3].parse().unwrap();
    for row in &mut rows {
        let t: f64 = row[3].parse().unwrap();
        row.push(format!("{:.2}x", base / t));
    }
    print_table(
        "Scale-out projection: BFS on rmat30, modeled (paper-spec machines, 10 GbE)",
        &[
            "machines",
            "compute+io s",
            "network s",
            "total s",
            "speedup",
        ],
        &rows,
    );
    let path = write_csv(
        "scaleout",
        &["machines", "compute_s", "network_s", "total_s", "speedup"],
        &rows,
    );
    println!("\nwrote {}", path.display());
}
