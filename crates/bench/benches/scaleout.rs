//! Scale-out scaling curve (Section VI, Fig 9-style): measured query
//! execution on a concurrent cluster of 1–8 shards, each a paper-spec
//! machine (16 threads + one Optane SSD), priced by the perfmodel with its
//! 10 GbE network leg.
//!
//! Destination partitioning keeps `EdgeMap` gathers machine-local; the
//! shards run real supersteps on their own threads and swap frontier
//! deltas over the bounded exchange fabric. The compute+IO leg is the
//! per-round maximum over the shards' measured iteration traces (rounds
//! are barrier-synchronized, so the slowest shard sets the pace); the
//! network leg prices the *measured* exchange wire bytes plus the modeled
//! value payload at the machine's network profile. Device IO per shard
//! shrinks as shards grow — the column to watch for the paper's
//! near-linear IO scaling claim.

use blaze_algorithms::{sharded_bfs, sharded_pagerank, sharded_wcc, PageRankConfig};
use blaze_bench::datasets::{prepare, scale_from_env};
use blaze_bench::report::{print_table, write_csv};
use blaze_core::EngineOptions;
use blaze_graph::{Csr, Dataset, VertexPermutation};
use blaze_perfmodel::{MachineConfig, PerfModel};
use blaze_scaleout::Cluster;

/// Per-round max over the shards' measured traces, priced by `model` —
/// the barrier makes the slowest shard's iteration the round's cost.
fn compute_seconds(cluster: &Cluster, model: &PerfModel) -> f64 {
    let per_machine: Vec<Vec<f64>> = cluster
        .machines()
        .iter()
        .map(|m| {
            m.engine
                .take_traces()
                .iter()
                .map(|t| model.blaze_iteration(t).total_ns() * 1e-9)
                .collect()
        })
        .collect();
    let rounds = per_machine.iter().map(Vec::len).max().unwrap_or(0);
    (0..rounds)
        .map(|r| {
            per_machine
                .iter()
                .filter_map(|m| m.get(r).copied())
                .fold(0.0, f64::max)
        })
        .sum()
}

fn main() {
    let scale = scale_from_env();
    let g = prepare(Dataset::Rmat30, scale);
    let n = g.csr.num_vertices();
    let root = (0..n as u32).max_by_key(|&v| g.csr.degree(v)).unwrap_or(0);
    let transpose = g.csr.transpose();
    let machine = MachineConfig::paper_optane();
    let model = PerfModel::new(machine.clone());

    let build = |csr: &Csr, shards: usize| {
        Cluster::build_physical(
            csr,
            VertexPermutation::identity(n),
            shards,
            1,
            EngineOptions::default(),
        )
        .unwrap()
    };

    let mut rows = Vec::new();
    let mut base_per_algo: Vec<(String, f64)> = Vec::new();
    for shards in [1usize, 2, 4, 8] {
        for algo in ["BFS", "PR", "WCC"] {
            let cluster = build(&g.csr, shards);
            match algo {
                "BFS" => {
                    sharded_bfs(&cluster, root).unwrap();
                }
                "PR" => {
                    sharded_pagerank(&cluster, PageRankConfig::default()).unwrap();
                }
                "WCC" => {
                    let in_cluster = build(&transpose, shards);
                    sharded_wcc(&cluster, &in_cluster).unwrap();
                    // The transpose direction's rounds run in lockstep with
                    // the out direction; fold its compute leg in too.
                    let stats = cluster.stats();
                    let in_stats = in_cluster.stats();
                    let compute_s =
                        compute_seconds(&cluster, &model) + compute_seconds(&in_cluster, &model);
                    let wire = stats.exchange_bytes
                        + stats.exchange_value_bytes
                        + in_stats.exchange_bytes
                        + in_stats.exchange_value_bytes;
                    let msgs = stats.exchange_messages + in_stats.exchange_messages;
                    let network_s = machine.network_ns(wire, msgs) * 1e-9;
                    push_row(
                        &mut rows,
                        &mut base_per_algo,
                        algo,
                        shards,
                        stats
                            .per_shard
                            .iter()
                            .zip(&in_stats.per_shard)
                            .map(|(a, b)| a.io_bytes + b.io_bytes)
                            .max()
                            .unwrap_or(0),
                        wire,
                        msgs,
                        compute_s,
                        network_s,
                    );
                    continue;
                }
                _ => unreachable!(),
            }
            let stats = cluster.stats();
            let compute_s = compute_seconds(&cluster, &model);
            let wire = stats.exchange_bytes + stats.exchange_value_bytes;
            let network_s = machine.network_ns(wire, stats.exchange_messages) * 1e-9;
            push_row(
                &mut rows,
                &mut base_per_algo,
                algo,
                shards,
                stats
                    .per_shard
                    .iter()
                    .map(|s| s.io_bytes)
                    .max()
                    .unwrap_or(0),
                wire,
                stats.exchange_messages,
                compute_s,
                network_s,
            );
        }
    }
    print_table(
        "Scale-out: measured sharded supersteps on rmat30 (paper-spec machines, 10 GbE)",
        &[
            "algo",
            "shards",
            "max shard device B",
            "exchange B",
            "exchange msgs",
            "compute s",
            "network s",
            "total s",
            "speedup",
        ],
        &rows,
    );
    let path = write_csv(
        "scaleout",
        &[
            "algo",
            "shards",
            "max_shard_device_bytes",
            "exchange_bytes",
            "exchange_msgs",
            "compute_s",
            "network_s",
            "total_s",
            "speedup",
        ],
        &rows,
    );
    println!("\nwrote {}", path.display());
}

#[allow(clippy::too_many_arguments)]
fn push_row(
    rows: &mut Vec<Vec<String>>,
    base_per_algo: &mut Vec<(String, f64)>,
    algo: &str,
    shards: usize,
    max_shard_device_bytes: u64,
    exchange_bytes: u64,
    exchange_msgs: u64,
    compute_s: f64,
    network_s: f64,
) {
    let total = compute_s + network_s;
    // Speedup vs this algorithm's 1-shard run (the first row pushed per
    // algo is always shards == 1).
    let base = match base_per_algo.iter().find(|(a, _)| a == algo) {
        Some((_, b)) => *b,
        None => {
            base_per_algo.push((algo.to_string(), total));
            total
        }
    };
    rows.push(vec![
        algo.to_string(),
        shards.to_string(),
        max_shard_device_bytes.to_string(),
        exchange_bytes.to_string(),
        exchange_msgs.to_string(),
        format!("{compute_s:.5}"),
        format!("{network_s:.5}"),
        format!("{total:.5}"),
        format!("{:.2}x", base / total.max(1e-12)),
    ]);
}
