//! Table I: the evolution of storage bandwidth — sequential vs random
//! 4 KiB read bandwidth across four SSD generations.
//!
//! Runs the actual simulated-device microbenchmark: 4 KiB reads, first
//! back-to-back sequential, then uniformly-random offsets, against each
//! [`DeviceProfile`], and reports the modeled bandwidth.

use blaze_bench::report::{print_table, write_csv};
use blaze_storage::{BlockDevice, DeviceProfile, MemDevice, SimDevice};
use blaze_types::PAGE_SIZE;

const DEVICE_PAGES: u64 = 4096;
const READS: u64 = 4096;

fn measure(profile: &DeviceProfile, random: bool) -> f64 {
    let dev = SimDevice::new(
        MemDevice::with_len((DEVICE_PAGES as usize) * PAGE_SIZE),
        profile.clone(),
    );
    let mut buf = vec![0u8; PAGE_SIZE];
    for i in 0..READS {
        let page = if random {
            (i.wrapping_mul(2654435761)) % DEVICE_PAGES
        } else {
            i % DEVICE_PAGES
        };
        dev.read_pages(page, &mut buf).expect("read");
    }
    dev.stats()
        .modeled_read_bandwidth()
        .expect("busy time recorded")
}

fn main() {
    let mut rows = Vec::new();
    for profile in DeviceProfile::table1() {
        let seq = measure(&profile, false);
        let rand = measure(&profile, true);
        rows.push(vec![
            profile.name.clone(),
            format!("{:.0}", seq / 1e6),
            format!("{:.0}", rand / 1e6),
            format!("{:.2}", rand / seq),
            if profile.is_fnd() { "yes" } else { "no" }.to_string(),
        ]);
    }
    print_table(
        "Table I: measured simulated-device bandwidth (4 KiB reads)",
        &["SSD model", "seq MB/s", "rand MB/s", "rand/seq", "FND"],
        &rows,
    );
    let path = write_csv(
        "table1",
        &["model", "seq_mbps", "rand_mbps", "symmetry", "is_fnd"],
        &rows,
    );
    println!("\nwrote {}", path.display());
    println!(
        "paper shape: NAND rand/seq ~0.34; Optane/Z-NAND/980Pro >= 0.8; Optane ~6.6x NAND seq"
    );
}
