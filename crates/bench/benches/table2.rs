//! Table II: the target datasets — vertex/edge counts, degree
//! distribution, approximate diameter, and origin, for the seven scaled
//! stand-in graphs.

use blaze_bench::datasets::scale_from_env;
use blaze_bench::report::{print_table, write_csv};
use blaze_graph::{Dataset, GraphStats};

fn main() {
    let scale = scale_from_env();
    let mut rows = Vec::new();
    for dataset in Dataset::all() {
        let g = dataset.generate(scale);
        let stats = GraphStats::compute(&g);
        rows.push(vec![
            dataset.name().to_string(),
            dataset.short_name().to_string(),
            format!("{:.1}", stats.num_vertices as f64 / 1e3),
            format!("{:.1}", stats.num_edges as f64 / 1e3),
            stats.distribution.to_string(),
            stats.approx_diameter.to_string(),
            if dataset.is_synthetic() {
                "synthetic"
            } else {
                "real (stand-in)"
            }
            .to_string(),
        ]);
    }
    print_table(
        &format!("Table II: target graphs at {scale:?} scale (|V|,|E| in thousands)"),
        &[
            "dataset",
            "short",
            "|V| k",
            "|E| k",
            "distribution",
            "diameter",
            "type",
        ],
        &rows,
    );
    let path = write_csv(
        "table2",
        &[
            "dataset",
            "short",
            "vertices_k",
            "edges_k",
            "distribution",
            "diameter",
            "type",
        ],
        &rows,
    );
    println!("\nwrote {}", path.display());
    println!("paper shape: all power-law except uran27; diameters r2/r3/ur ~10, tw 75, sk 205, fr 56, hy 790 (scaled tails shorter)");
}
