//! Table III: system comparison — which engine suffers which root cause of
//! low IO utilization. Instead of the paper's qualitative yes/no grid,
//! this harness reports the *measured proxies*:
//!
//! * skewed computation — max/mean message (or bin) load across threads,
//! * skewed IO — worst per-disk max/min byte ratio under BFS,
//! * fast IO & slow computation — modeled compute/IO time ratio on Optane.

use blaze_algorithms::{ExecMode, Query};
use blaze_bench::datasets::{prepare, scale_from_env};
use blaze_bench::engines::{
    run_blaze_query, run_flashgraph_query, run_graphene_query, BenchQueryOptions,
};
use blaze_bench::report::{print_table, write_csv};
use blaze_graph::Dataset;
use blaze_perfmodel::{MachineConfig, PerfModel};
use blaze_types::IterationTrace;

fn worst_io_ratio(traces: &[IterationTrace]) -> f64 {
    traces
        .iter()
        .filter_map(|t| {
            let max = *t.io_bytes_per_device.iter().max()?;
            let min = *t.io_bytes_per_device.iter().min()?;
            (min > 0).then(|| max as f64 / min as f64)
        })
        .fold(1.0, f64::max)
}

fn compute_skew(traces: &[IterationTrace], per_bin: bool) -> f64 {
    traces
        .iter()
        .map(|t| {
            if per_bin {
                let total: u64 = t.records_per_bin.iter().sum();
                let n = t.records_per_bin.len();
                if total == 0 || n == 0 {
                    return 1.0;
                }
                // Gather balance is per *thread* (16), not per bin: compare
                // the heaviest bin with a thread's fair share.
                let max = *t.records_per_bin.iter().max().unwrap() as f64;
                (max / (total as f64 / 16.0)).max(1.0)
            } else {
                t.message_skew()
            }
        })
        .fold(1.0, f64::max)
}

fn main() {
    let scale = scale_from_env();
    let opts = BenchQueryOptions::default();
    let g = prepare(Dataset::Rmat30, scale);
    let model = PerfModel::new(MachineConfig::paper_optane());

    // FlashGraph: PR (skew-heavy query).
    let fg = run_flashgraph_query(Query::PageRank, &g, &opts);
    let fg_skew = compute_skew(&fg, false);
    let fg_util: f64 = {
        let q = model.flashgraph_query(&fg);
        q.avg_bandwidth() / model.machine.aggregate_bandwidth()
    };

    // Graphene: BFS on 8 disks for IO skew; PR on 1 disk for the pipeline.
    let gr_bfs = run_graphene_query(Query::Bfs, &g, &opts).expect("bfs");
    let gr_io_ratio = worst_io_ratio(&gr_bfs);
    let one_disk = BenchQueryOptions {
        graphene_disks: 1,
        ..opts.clone()
    };
    let gr_pr = run_graphene_query(Query::PageRank, &g, &one_disk).expect("pr");
    let gr_timing = model.graphene_query(&gr_pr);
    let gr_compute_bound = gr_timing
        .iterations
        .iter()
        .map(|i| i.compute_ns / i.io_ns.max(1.0))
        .fold(0.0, f64::max);

    // Blaze: PR.
    let bl = run_blaze_query(Query::PageRank, &g, ExecMode::Binned, &opts);
    let bl_skew = compute_skew(&bl, true);
    let bl_io_ratio = worst_io_ratio(&bl);
    let bl_util = model.blaze_query(&bl).avg_bandwidth() / model.machine.aggregate_bandwidth();

    let rows = vec![
        vec![
            "FlashGraph".into(),
            format!("YES (straggler {fg_skew:.1}x mean)"),
            "no (single disk layout)".into(),
            format!("no (util {:.0}% from skew, not pipeline)", fg_util * 100.0),
        ],
        vec![
            "Graphene".into(),
            "no (per-disk workers)".into(),
            format!("YES (per-disk bytes up to {gr_io_ratio:.1}x)"),
            format!("YES (compute/IO up to {gr_compute_bound:.1}x per disk)"),
        ],
        vec![
            "Blaze".into(),
            format!("no (bin skew {bl_skew:.1}x, balanced dynamically)"),
            format!("no (page interleave, max/min {bl_io_ratio:.2}x)"),
            format!("no (util {:.0}%)", bl_util * 100.0),
        ],
    ];
    print_table(
        "Table III: root causes, measured (rmat30)",
        &[
            "system",
            "skewed computation",
            "skewed IO",
            "fast IO & slow computation",
        ],
        &rows,
    );
    let path = write_csv(
        "table3",
        &[
            "system",
            "skewed_compute",
            "skewed_io",
            "fast_io_slow_compute",
        ],
        &rows,
    );
    println!("\nwrote {}", path.display());
}
