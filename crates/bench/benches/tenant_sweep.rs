//! Tenant sweep: N concurrent identical jobs should cost ~1 job of
//! device IO under cross-job scan sharing.
//!
//! Runs 1/2/8/16 identical PageRank jobs concurrently against one engine
//! at cache budget 0, with the scan-sharing flight table on, and reports
//! device bytes per job. Without sharing, N tenants pay N full scans per
//! iteration; with it, the first job to miss a page run leads one device
//! read and every overlapping job subscribes to the completed frames, so
//! total device bytes stay near the solo cost while aggregate query
//! throughput scales with N. A sharing-off contrast arm at N = 8 shows
//! the ~8× bill the flight table removes. Every job's ranks are checked
//! against the solo oracle — sharing must be invisible to results.
//!
//! The acceptance assert: 8 concurrent jobs with sharing read at most 2×
//! the device bytes of 1 job (vs ~8× without).

use blaze_algorithms::{pagerank_delta, ExecMode, PageRankConfig};
use blaze_bench::datasets::{prepare, scale_from_env};
use blaze_bench::report::{print_table, write_csv};
use blaze_core::{BlazeEngine, EngineOptions};
use blaze_graph::{Dataset, DiskGraph};
use blaze_storage::StripedStorage;
use std::sync::Arc;

const DEVICES: usize = 2;
const MAX_ITERS: usize = 3;

fn engine(csr: &blaze_graph::Csr, jobs: usize, sharing: bool) -> BlazeEngine {
    let storage = Arc::new(StripedStorage::in_memory(DEVICES).expect("storage"));
    let graph = Arc::new(DiskGraph::create(csr, storage).expect("graph"));
    // Cache budget 0: every page the flight table does not share is a
    // device read, so the sweep isolates the sharing effect itself.
    let mut options = EngineOptions::default().with_compute_workers(2, 0.5);
    if sharing {
        options = options
            .with_scan_sharing(true)
            .with_scan_share_lanes(jobs)
            .with_scan_share_retain(512);
    }
    BlazeEngine::new(graph, options).expect("engine")
}

struct Arm {
    jobs: usize,
    sharing: bool,
    device_bytes: u64,
    shared_pages: u64,
    flights_led: u64,
    wall: f64,
}

/// Runs `jobs` identical PageRank queries concurrently and checks every
/// job's ranks against the solo oracle.
fn run_arm(csr: &blaze_graph::Csr, jobs: usize, sharing: bool, oracle: &[f64]) -> Arm {
    let e = engine(csr, jobs, sharing);
    let cfg = PageRankConfig {
        max_iters: MAX_ITERS,
        ..Default::default()
    };
    let t0 = std::time::Instant::now();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..jobs)
            .map(|_| s.spawn(|| pagerank_delta(&e, cfg, ExecMode::Binned).expect("pagerank")))
            .collect();
        for h in handles {
            let ranks = h.join().expect("job");
            for (v, &want) in oracle.iter().enumerate() {
                assert!(
                    (ranks.get(v) - want).abs() < 1e-9,
                    "jobs={jobs} sharing={sharing}: rank diverged at vertex {v}"
                );
            }
        }
    });
    let wall = t0.elapsed().as_secs_f64();
    let stats = e.stats();
    Arm {
        jobs,
        sharing,
        device_bytes: stats.io_bytes,
        shared_pages: stats.shared_hit_pages,
        flights_led: stats.flights_led,
        wall,
    }
}

fn main() {
    let scale = scale_from_env();
    let g = prepare(Dataset::Rmat27, scale);
    let cfg = PageRankConfig {
        max_iters: MAX_ITERS,
        ..Default::default()
    };
    let oracle = pagerank_delta(&engine(&g.csr, 1, false), cfg, ExecMode::Binned)
        .expect("oracle")
        .to_vec();

    let mut arms = Vec::new();
    for jobs in [1usize, 2, 8, 16] {
        arms.push(run_arm(&g.csr, jobs, true, &oracle));
    }
    // Contrast: the bill without the flight table.
    arms.push(run_arm(&g.csr, 8, false, &oracle));

    let rows: Vec<Vec<String>> = arms
        .iter()
        .map(|a| {
            vec![
                a.jobs.to_string(),
                if a.sharing { "on" } else { "off" }.to_string(),
                a.device_bytes.to_string(),
                (a.device_bytes / a.jobs as u64).to_string(),
                a.shared_pages.to_string(),
                a.flights_led.to_string(),
                format!("{:.3}", a.wall),
            ]
        })
        .collect();
    print_table(
        &format!("Tenant sweep: rmat27 PageRank x{MAX_ITERS} iters, concurrent identical jobs"),
        &[
            "jobs",
            "sharing",
            "device bytes",
            "bytes/job",
            "shared pages",
            "flights led",
            "wall s",
        ],
        &rows,
    );
    let path = write_csv(
        "tenant_sweep",
        &[
            "jobs",
            "sharing",
            "device_bytes",
            "bytes_per_job",
            "shared_pages",
            "flights_led",
            "wall_s",
        ],
        &rows,
    );
    println!("\nwrote {}", path.display());

    // The acceptance pair: 8 tenants under sharing cost at most 2 solo
    // jobs of device IO (the unshared arm pays ~8x).
    let solo = arms[0].device_bytes.max(1);
    let eight_shared = arms
        .iter()
        .find(|a| a.jobs == 8 && a.sharing)
        .expect("8-job sharing arm")
        .device_bytes;
    let eight_unshared = arms
        .iter()
        .find(|a| a.jobs == 8 && !a.sharing)
        .expect("8-job unshared arm")
        .device_bytes;
    assert!(
        eight_shared <= 2 * solo,
        "8 concurrent jobs read {eight_shared} device bytes, solo read {solo} — \
         scan sharing must keep N tenants near one job of device IO"
    );
    assert!(
        eight_unshared > eight_shared,
        "unshared arm read {eight_unshared} <= shared {eight_shared} — \
         the contrast arm should pay for every tenant"
    );
}
