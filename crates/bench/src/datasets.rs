//! Dataset preparation for the bench targets.

use blaze_graph::{Csr, Dataset, DatasetScale};

/// A generated dataset plus its transpose (queries like WCC and BC need
/// both directions).
pub struct PreparedGraph {
    /// The dataset identity.
    pub dataset: Dataset,
    /// Out-edge CSR.
    pub csr: Csr,
    /// In-edge CSR (transpose).
    pub transpose: Csr,
}

impl PreparedGraph {
    /// Paper shorthand for tables.
    pub fn short_name(&self) -> &'static str {
        self.dataset.short_name()
    }
}

/// Reads `BLAZE_SCALE` (tiny | small | medium), defaulting to tiny.
pub fn scale_from_env() -> DatasetScale {
    match std::env::var("BLAZE_SCALE")
        .unwrap_or_default()
        .to_lowercase()
        .as_str()
    {
        "medium" => DatasetScale::Medium,
        "small" => DatasetScale::Small,
        _ => DatasetScale::Tiny,
    }
}

/// Generates `dataset` at `scale` along with its transpose.
pub fn prepare(dataset: Dataset, scale: DatasetScale) -> PreparedGraph {
    let csr = dataset.generate(scale);
    let transpose = csr.transpose();
    PreparedGraph {
        dataset,
        csr,
        transpose,
    }
}

/// Prepares the six main-evaluation graphs.
pub fn prepare_main_six(scale: DatasetScale) -> Vec<PreparedGraph> {
    Dataset::main_six()
        .into_iter()
        .map(|d| prepare(d, scale))
        .collect()
}
