//! Query execution adapters: run one (engine, query, dataset) combination
//! functionally and return the recorded work traces.

use blaze_sync::Arc;

use blaze_algorithms::{self as algo, ExecMode, Query};
use blaze_baselines::{
    queries as base_queries, FlashGraphEngine, FlashGraphOptions, GrapheneEngine, GrapheneOptions,
};
use blaze_core::{BlazeEngine, EngineOptions};
use blaze_graph::{Csr, DiskGraph};
use blaze_storage::StripedStorage;
use blaze_types::{IterationTrace, VertexId};

use crate::datasets::PreparedGraph;

/// Options shared by the query runners.
#[derive(Debug, Clone)]
pub struct BenchQueryOptions {
    /// Devices in the Blaze RAID-0 array.
    pub blaze_devices: usize,
    /// Real threads used by the functional Blaze engine (does not affect
    /// traces; kept small because trace collection is what matters).
    pub blaze_threads: usize,
    /// FlashGraph computation threads (affects the message-skew trace).
    pub flashgraph_threads: usize,
    /// FlashGraph page-cache capacity in pages; 0 = auto (1/8 of the
    /// graph's pages, min 64) — proportional to the paper's multi-GB SAFS
    /// cache against multi-GB graphs.
    pub flashgraph_cache_pages: usize,
    /// Graphene disk-array size.
    pub graphene_disks: usize,
    /// PageRank-delta threshold.
    pub pr_epsilon: f64,
    /// PageRank-delta iteration cap.
    pub pr_max_iters: usize,
}

impl Default for BenchQueryOptions {
    fn default() -> Self {
        Self {
            blaze_devices: 1,
            blaze_threads: 2,
            flashgraph_threads: 16,
            flashgraph_cache_pages: 0,
            graphene_disks: 8,
            pr_epsilon: 0.01,
            pr_max_iters: 30,
        }
    }
}

/// Root choice for traversal queries: the highest-out-degree vertex, which
/// reaches the giant component.
pub fn traversal_root(g: &Csr) -> VertexId {
    (0..g.num_vertices() as VertexId)
        .max_by_key(|&v| g.degree(v))
        .unwrap_or(0)
}

fn blaze_engine(csr: &Csr, opts: &BenchQueryOptions) -> BlazeEngine {
    let storage = Arc::new(StripedStorage::in_memory(opts.blaze_devices).expect("storage"));
    let graph = Arc::new(DiskGraph::create(csr, storage).expect("disk graph"));
    let engine_opts = EngineOptions::default().with_compute_workers(opts.blaze_threads.max(2), 0.5);
    BlazeEngine::new(graph, engine_opts).expect("engine")
}

/// Runs `query` on the Blaze engine (binned or sync) and returns the
/// per-iteration traces.
pub fn run_blaze_query(
    query: Query,
    g: &PreparedGraph,
    mode: ExecMode,
    opts: &BenchQueryOptions,
) -> Vec<IterationTrace> {
    let engine = blaze_engine(&g.csr, opts);
    match query {
        Query::Bfs => {
            algo::bfs(&engine, traversal_root(&g.csr), mode).expect("bfs");
            engine.take_traces()
        }
        Query::PageRank => {
            let cfg = algo::PageRankConfig {
                epsilon: opts.pr_epsilon,
                max_iters: opts.pr_max_iters,
                ..Default::default()
            };
            algo::pagerank_delta(&engine, cfg, mode).expect("pagerank");
            engine.take_traces()
        }
        Query::SpMV => {
            let x: Vec<f64> = (0..g.csr.num_vertices())
                .map(|i| 1.0 / (i + 1) as f64)
                .collect();
            algo::spmv(&engine, &x, mode).expect("spmv");
            engine.take_traces()
        }
        Query::Wcc => {
            let in_engine = blaze_engine(&g.transpose, opts);
            algo::wcc(&engine, &in_engine, mode).expect("wcc");
            let mut traces = Vec::new();
            // Interleave out/in traces in execution order (one per EdgeMap).
            let a = engine.take_traces();
            let b = in_engine.take_traces();
            for (x, y) in a.into_iter().zip(b) {
                traces.push(x);
                traces.push(y);
            }
            traces
        }
        Query::Bc => {
            let in_engine = blaze_engine(&g.transpose, opts);
            algo::bc(&engine, &in_engine, traversal_root(&g.csr), mode).expect("bc");
            let mut traces = engine.take_traces();
            traces.extend(in_engine.take_traces());
            traces
        }
    }
}

fn flashgraph_engine(csr: &Csr, opts: &BenchQueryOptions) -> FlashGraphEngine {
    let storage = Arc::new(StripedStorage::in_memory(1).expect("storage"));
    let graph = Arc::new(DiskGraph::create(csr, storage).expect("disk graph"));
    let cache_pages = if opts.flashgraph_cache_pages > 0 {
        opts.flashgraph_cache_pages
    } else {
        (graph.num_pages() as usize / 8).max(64)
    };
    FlashGraphEngine::new(
        graph,
        FlashGraphOptions {
            num_threads: opts.flashgraph_threads,
            cache_pages,
        },
    )
}

/// Runs `query` on the FlashGraph-like engine.
pub fn run_flashgraph_query(
    query: Query,
    g: &PreparedGraph,
    opts: &BenchQueryOptions,
) -> Vec<IterationTrace> {
    let engine = flashgraph_engine(&g.csr, opts);
    let degree = |v: VertexId| g.csr.degree(v);
    match query {
        Query::Bfs => {
            base_queries::bfs(&engine, traversal_root(&g.csr)).expect("bfs");
            engine.take_traces()
        }
        Query::PageRank => {
            base_queries::pagerank_delta(
                &engine,
                &degree,
                0.85,
                opts.pr_epsilon,
                opts.pr_max_iters,
            )
            .expect("pagerank");
            engine.take_traces()
        }
        Query::SpMV => {
            let x: Vec<f64> = (0..g.csr.num_vertices())
                .map(|i| 1.0 / (i + 1) as f64)
                .collect();
            base_queries::spmv(&engine, &x).expect("spmv");
            engine.take_traces()
        }
        Query::Wcc => {
            let in_engine = flashgraph_engine(&g.transpose, opts);
            base_queries::wcc(&engine, &in_engine).expect("wcc");
            let mut traces = Vec::new();
            let a = engine.take_traces();
            let b = in_engine.take_traces();
            for (x, y) in a.into_iter().zip(b) {
                traces.push(x);
                traces.push(y);
            }
            traces
        }
        Query::Bc => {
            let in_engine = flashgraph_engine(&g.transpose, opts);
            base_queries::bc(&engine, &in_engine, traversal_root(&g.csr)).expect("bc");
            let mut traces = engine.take_traces();
            traces.extend(in_engine.take_traces());
            traces
        }
    }
}

/// Runs `query` on the Graphene-like engine. Returns `None` for BC
/// (Graphene does not implement it — Section V-B) and runs a single
/// full-frontier iteration for PR (Graphene lacks selective scheduling
/// for PR).
pub fn run_graphene_query(
    query: Query,
    g: &PreparedGraph,
    opts: &BenchQueryOptions,
) -> Option<Vec<IterationTrace>> {
    let graphene_opts = GrapheneOptions {
        num_disks: opts.graphene_disks,
        ..Default::default()
    };
    let engine = GrapheneEngine::new(&g.csr, graphene_opts.clone()).expect("graphene");
    let degree = |v: VertexId| g.csr.degree(v);
    match query {
        Query::Bfs => {
            base_queries::bfs(&engine, traversal_root(&g.csr)).expect("bfs");
            Some(engine.take_traces())
        }
        Query::PageRank => {
            base_queries::pagerank_one_iteration(&engine, &degree).expect("pagerank");
            Some(engine.take_traces())
        }
        Query::SpMV => {
            let x: Vec<f64> = (0..g.csr.num_vertices())
                .map(|i| 1.0 / (i + 1) as f64)
                .collect();
            base_queries::spmv(&engine, &x).expect("spmv");
            Some(engine.take_traces())
        }
        Query::Wcc => {
            let in_engine = GrapheneEngine::new(&g.transpose, graphene_opts).expect("graphene");
            base_queries::wcc(&engine, &in_engine).expect("wcc");
            let mut traces = Vec::new();
            let a = engine.take_traces();
            let b = in_engine.take_traces();
            for (x, y) in a.into_iter().zip(b) {
                traces.push(x);
                traces.push(y);
            }
            Some(traces)
        }
        Query::Bc => None,
    }
}
