//! Shared infrastructure for the benchmark harness.
//!
//! Every table and figure of the paper has a dedicated bench target (see
//! `benches/`). Each target:
//!
//! 1. generates the scaled datasets (deterministic, see `blaze_graph::datasets`),
//! 2. runs the relevant engines *functionally*, collecting work traces,
//! 3. replays the traces on the paper's virtual machine (`blaze_perfmodel`),
//! 4. prints the table and writes a CSV under `results/`.
//!
//! Environment knobs:
//!
//! * `BLAZE_SCALE` — `tiny` (default, 1/16384 of paper scale), `small`
//!   (1/4096), or `medium` (1/1024). Larger scales sharpen the shapes at
//!   the cost of runtime.
//! * `BLAZE_RESULTS` — output directory for CSVs (default `./results`).

pub mod datasets;
pub mod engines;
pub mod report;

pub use datasets::{prepare, scale_from_env, PreparedGraph};
pub use engines::{run_blaze_query, run_flashgraph_query, run_graphene_query, BenchQueryOptions};
pub use report::{print_table, results_dir, write_csv};
