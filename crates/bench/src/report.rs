//! Result reporting: aligned console tables and CSV files.

use std::io::Write;
use std::path::PathBuf;

/// Output directory (`BLAZE_RESULTS`, default `./results`), created on
/// first use.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("BLAZE_RESULTS").unwrap_or_else(|_| "results".to_string());
    let path = PathBuf::from(dir);
    let _ = std::fs::create_dir_all(&path);
    path
}

/// Writes a CSV with a header row; returns the file path.
pub fn write_csv(name: &str, headers: &[&str], rows: &[Vec<String>]) -> PathBuf {
    let path = results_dir().join(format!("{name}.csv"));
    let mut f = std::io::BufWriter::new(std::fs::File::create(&path).expect("create csv"));
    writeln!(f, "{}", headers.join(",")).expect("write header");
    for row in rows {
        writeln!(f, "{}", row.join(",")).expect("write row");
    }
    path
}

/// Prints an aligned table to stdout.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let formatted: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect();
        println!("  {}", formatted.join("  "));
    };
    line(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Formats bytes/second as GB/s with two decimals (paper figure units).
pub fn gbps(bytes_per_sec: f64) -> String {
    format!("{:.2}", bytes_per_sec / 1e9)
}

/// Formats a ratio with two decimals and an `x` suffix.
pub fn speedup(r: f64) -> String {
    format!("{r:.2}x")
}
