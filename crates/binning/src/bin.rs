//! A single bin: a pair of fixed-capacity record buffers with a swap
//! protocol that keeps scatter and gather threads concurrently productive
//! (Section IV-A, third optimization).

use blaze_sync::{Condvar, Mutex};

use crate::record::{BinRecord, BinValue};

/// Inner state protected by the append lock.
#[derive(Debug)]
struct BinInner<V> {
    /// Buffer scatter threads currently append into.
    active: Vec<BinRecord<V>>,
    /// The other half of the pair, when the bin owns it (i.e. it is not out
    /// with a gather thread or in the full queue).
    spare: Option<Vec<BinRecord<V>>>,
}

/// One bin of the online-binning space.
///
/// Appends are batched (whole staging buffers), so the append lock is held
/// for one short memcpy per ~64 records — this is the "per-CPU buffer"
/// amortization of propagation blocking. When the active buffer reaches
/// capacity it is handed to `on_full` (the engine pushes it to the MPMC
/// `full_bins` queue) and the spare takes over; if the spare is still out
/// with a gather thread, the appending scatter thread blocks until
/// [`return_buffer`](Bin::return_buffer) brings it back — the back-pressure
/// the paper describes.
#[derive(Debug)]
pub struct Bin<V> {
    inner: Mutex<BinInner<V>>,
    /// Signalled when a buffer returns from gather.
    spare_returned: Condvar,
    /// Held by the gather thread processing this bin's records, ensuring no
    /// two gather threads touch the same destination vertices concurrently.
    gather_lock: Mutex<()>,
    capacity: usize,
}

impl<V: BinValue> Bin<V> {
    /// Creates a bin whose two buffers hold `capacity` records each.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            inner: Mutex::new(BinInner {
                active: Vec::with_capacity(capacity),
                spare: Some(Vec::with_capacity(capacity)),
            }),
            spare_returned: Condvar::new(),
            gather_lock: Mutex::new(()),
            capacity,
        }
    }

    /// Records per buffer.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends a batch of records, invoking `on_full(buffer)` each time the
    /// active buffer fills. Blocks if both buffers are full/out.
    pub fn append_batch(&self, batch: &[BinRecord<V>], mut on_full: impl FnMut(Vec<BinRecord<V>>)) {
        let mut inner = self.inner.lock();
        let mut remaining = batch;
        loop {
            let space = self.capacity - inner.active.len();
            let take = space.min(remaining.len());
            inner.active.extend_from_slice(&remaining[..take]);
            remaining = &remaining[take..];
            // Hand a filled buffer to gather eagerly (the paper pushes to
            // full_bins the moment one of the pair fills).
            if inner.active.len() == self.capacity {
                match inner.spare.take() {
                    Some(spare) => {
                        let full = std::mem::replace(&mut inner.active, spare);
                        on_full(full);
                    }
                    None if remaining.is_empty() => break,
                    None => {
                        // Both buffers busy: wait for gather to return one.
                        self.spare_returned.wait(&mut inner);
                    }
                }
            }
            if remaining.is_empty() {
                break;
            }
        }
    }

    /// Pushes the active buffer out even if only partially filled — the
    /// end-of-iteration flush. Returns `None` if the buffer is empty.
    pub fn drain_partial(&self) -> Option<Vec<BinRecord<V>>> {
        let mut inner = self.inner.lock();
        if inner.active.is_empty() {
            return None;
        }
        let replacement = inner
            .spare
            .take()
            .unwrap_or_else(|| Vec::with_capacity(self.capacity));
        Some(std::mem::replace(&mut inner.active, replacement))
    }

    /// Returns a drained buffer to the pair after gather finishes with it.
    pub fn return_buffer(&self, mut buffer: Vec<BinRecord<V>>) {
        buffer.clear();
        let mut inner = self.inner.lock();
        if inner.spare.is_none() {
            inner.spare = Some(buffer);
            self.spare_returned.notify_all();
        }
        // A third buffer can exist transiently after a drain_partial that
        // had to allocate; it is simply dropped here.
    }

    /// Locks this bin for gather processing. While the guard lives, no other
    /// gather thread may process records of this bin — the exclusivity that
    /// makes vertex updates synchronization-free.
    pub fn lock_for_gather(&self) -> blaze_sync::MutexGuard<'_, ()> {
        self.gather_lock.lock()
    }

    /// Records currently waiting in the active buffer.
    pub fn pending_records(&self) -> usize {
        self.inner.lock().active.len()
    }

    /// Restores the bin to its freshly-constructed state so the buffer pair
    /// can be reused by a later job: clears the active buffer and ensures
    /// the spare is present. Must only be called while no scatter or gather
    /// thread is touching the bin (the arena calls it between jobs).
    pub fn reset(&self) {
        let mut inner = self.inner.lock();
        inner.active.clear();
        if inner.spare.is_none() {
            inner.spare = Some(Vec::with_capacity(self.capacity));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(dst: u32) -> BinRecord<u32> {
        BinRecord::new(dst, dst * 10)
    }

    #[test]
    fn append_below_capacity_stays_pending() {
        let bin = Bin::new(8);
        bin.append_batch(&[rec(1), rec(2)], |_| panic!("no full buffer expected"));
        assert_eq!(bin.pending_records(), 2);
    }

    #[test]
    fn filling_capacity_emits_full_buffer() {
        let bin = Bin::new(4);
        let mut fulls = Vec::new();
        let batch: Vec<_> = (0..6).map(rec).collect();
        bin.append_batch(&batch, |b| fulls.push(b));
        assert_eq!(fulls.len(), 1);
        assert_eq!(fulls[0].len(), 4);
        assert_eq!(bin.pending_records(), 2);
    }

    #[test]
    fn drain_partial_returns_leftovers_once() {
        let bin = Bin::new(4);
        bin.append_batch(&[rec(7)], |_| {});
        let drained = bin.drain_partial().unwrap();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].dst, 7);
        assert!(bin.drain_partial().is_none());
    }

    #[test]
    fn buffers_recycle_through_return() {
        let bin = Bin::new(2);
        let mut fulls = Vec::new();
        // Fill and return repeatedly; with prompt returns nothing blocks.
        for round in 0..10u32 {
            bin.append_batch(&[rec(round), rec(round)], |b| fulls.push(b));
            if let Some(b) = fulls.pop() {
                bin.return_buffer(b);
            }
        }
        assert_eq!(bin.pending_records(), 0);
    }

    #[test]
    fn scatter_blocks_until_gather_returns_buffer() {
        use blaze_sync::atomic::{AtomicBool, Ordering};
        use blaze_sync::Arc;
        let bin = Arc::new(Bin::new(2));
        let queue = Arc::new(blaze_sync::queue::SegQueue::<Vec<BinRecord<u32>>>::new());
        let made_progress = Arc::new(AtomicBool::new(false));

        // Fill both buffers: first append emits one full buffer, second
        // fills the replacement.
        let q = queue.clone();
        bin.append_batch(&(0..4).map(rec).collect::<Vec<_>>(), |b| q.push(b));
        assert_eq!(queue.len(), 1);
        assert_eq!(bin.pending_records(), 2);

        // A further append must block until the gather side returns a buffer.
        let scatter_bin = bin.clone();
        let scatter_q = queue.clone();
        let progress = made_progress.clone();
        let scatter = std::thread::spawn(move || {
            scatter_bin.append_batch(&[rec(9)], |b| scatter_q.push(b));
            progress.store(true, Ordering::SeqCst);
        });
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert!(
            !made_progress.load(Ordering::SeqCst),
            "scatter should be blocked"
        );

        // Gather: process the queued full buffer and return it.
        let full = queue.pop().unwrap();
        {
            let _guard = bin.lock_for_gather();
            assert_eq!(full.len(), 2);
        }
        bin.return_buffer(full);
        scatter.join().unwrap();
        assert!(made_progress.load(Ordering::SeqCst));
    }

    #[test]
    fn gather_lock_is_exclusive() {
        let bin: Bin<u32> = Bin::new(4);
        let g1 = bin.lock_for_gather();
        assert!(bin.gather_lock.try_lock().is_none());
        drop(g1);
        assert!(bin.gather_lock.try_lock().is_some());
    }
}
