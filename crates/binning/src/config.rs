//! Binning configuration and the paper's tuning heuristics (Section V-E).

use blaze_types::{
    BlazeError, Result, DEFAULT_BIN_COUNT, DEFAULT_BIN_SPACE_RATIO, DEFAULT_STAGING_RECORDS,
};

/// Parameters of the online-binning machinery.
///
/// The paper finds performance robust across a wide range: ~1000 bins,
/// total bin space ≈ 5% of the input graph (equivalently ≈ `5·|E|·4` bytes
/// ÷ 16, see Figure 10), and an equal number of scatter and gather threads
/// are good defaults, with careful tuning worth at most ~5%.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinningConfig {
    /// Number of bins. Records route to `dst % bin_count`.
    pub bin_count: usize,
    /// Total bytes across all bin buffers (both halves of every pair).
    pub bin_space_bytes: usize,
    /// Records a scatter thread stages per bin before flushing in batch.
    pub staging_records: usize,
}

impl BinningConfig {
    /// Validated constructor.
    pub fn new(bin_count: usize, bin_space_bytes: usize, staging_records: usize) -> Result<Self> {
        if bin_count == 0 {
            return Err(BlazeError::Config("bin_count must be >= 1".into()));
        }
        if staging_records == 0 {
            return Err(BlazeError::Config("staging_records must be >= 1".into()));
        }
        Ok(Self {
            bin_count,
            bin_space_bytes,
            staging_records,
        })
    }

    /// The paper's default heuristic for a graph of `graph_bytes` on disk:
    /// bin space = 5% of the graph, 1024 bins.
    pub fn for_graph(graph_bytes: u64) -> Self {
        let space = ((graph_bytes as f64 * DEFAULT_BIN_SPACE_RATIO) as usize).max(64 << 10);
        Self {
            bin_count: DEFAULT_BIN_COUNT,
            bin_space_bytes: space,
            staging_records: DEFAULT_STAGING_RECORDS,
        }
    }

    /// Overrides the bin count.
    pub fn with_bin_count(mut self, n: usize) -> Self {
        self.bin_count = n.max(1);
        self
    }

    /// Overrides the total bin space.
    pub fn with_bin_space(mut self, bytes: usize) -> Self {
        self.bin_space_bytes = bytes;
        self
    }

    /// Records per *single* bin buffer for record size `record_bytes`: the
    /// space is divided over `bin_count` bins × 2 buffers each. Never below
    /// the staging batch so one flush always fits.
    pub fn buffer_capacity(&self, record_bytes: usize) -> usize {
        let per_buffer = self.bin_space_bytes / self.bin_count / 2 / record_bytes.max(1);
        per_buffer.max(self.staging_records)
    }

    /// Actual bytes the bin space will occupy after rounding.
    pub fn allocated_bytes(&self, record_bytes: usize) -> u64 {
        (self.buffer_capacity(record_bytes) * 2 * self.bin_count * record_bytes) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_bins_rejected() {
        assert!(BinningConfig::new(0, 1024, 8).is_err());
        assert!(BinningConfig::new(4, 1024, 0).is_err());
        assert!(BinningConfig::new(4, 1024, 8).is_ok());
    }

    #[test]
    fn heuristic_is_five_percent() {
        let c = BinningConfig::for_graph(100 << 20);
        assert_eq!(c.bin_space_bytes, 5 << 20);
        assert_eq!(c.bin_count, 1024);
    }

    #[test]
    fn heuristic_has_floor() {
        let c = BinningConfig::for_graph(1024);
        assert!(c.bin_space_bytes >= 64 << 10);
    }

    #[test]
    fn buffer_capacity_divides_space() {
        let c = BinningConfig::new(8, 8 * 2 * 100 * 8, 16).unwrap();
        // 8 bins x 2 buffers x 100 records x 8 bytes.
        assert_eq!(c.buffer_capacity(8), 100);
    }

    #[test]
    fn buffer_capacity_never_below_staging() {
        let c = BinningConfig::new(1024, 1024, 64).unwrap();
        assert_eq!(c.buffer_capacity(8), 64);
    }
}
