//! Online binning (Section IV-A): atomic-free value propagation between
//! scatter and gather threads.
//!
//! A *bin record* is a `(dst_vertex, value)` pair produced by an
//! algorithm's scatter function. Records are routed to bin
//! `dst % bin_count`. Each [`Bin`] owns a *pair* of fixed-capacity buffers:
//! scatter threads append into the active buffer (batched through a small
//! per-thread [`ScatterStaging`] to amortize the bin lock, as in
//! propagation blocking); when it fills, the buffer is pushed onto the
//! MPMC `full_bins` queue and the spare buffer takes over, so scatter and
//! gather both keep making progress. A per-bin gather lock guarantees that
//! **no two gather threads ever process the same bin concurrently** — which
//! is the whole trick: all records for a destination vertex live in one
//! bin, so gather can update vertex data with plain stores, no
//! compare-and-swap, while the MPMC queue balances bins across gather
//! threads dynamically.

pub mod bin;
pub mod config;
pub mod record;
pub mod space;
pub mod staging;

pub use bin::Bin;
pub use config::BinningConfig;
pub use record::{BinRecord, BinValue};
pub use space::BinSpace;
pub use staging::ScatterStaging;
