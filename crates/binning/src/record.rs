//! Bin records: the unit of scatter → gather communication.

use blaze_types::VertexId;

/// Types that can travel through bins as scattered values.
///
/// Implemented for the primitive payloads the queries use: vertex ids
/// (BFS, WCC), floats (PageRank, SpMV, BC), and `()` for pure activations.
pub trait BinValue: Copy + Send + Sync + 'static {}

impl BinValue for () {}
impl BinValue for u32 {}
impl BinValue for u64 {}
impl BinValue for i32 {}
impl BinValue for i64 {}
impl BinValue for f32 {}
impl BinValue for f64 {}
impl BinValue for (u32, f64) {}
impl BinValue for (f64, f64) {}

/// One `(destination, value)` pair (Section IV-A).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BinRecord<V> {
    /// Destination vertex the value is gathered into.
    pub dst: VertexId,
    /// Algorithm-specific value returned by the scatter function.
    pub value: V,
}

impl<V: BinValue> BinRecord<V> {
    /// Creates a record.
    #[inline]
    pub fn new(dst: VertexId, value: V) -> Self {
        Self { dst, value }
    }

    /// In-memory size of one record, used by the bin-space heuristics.
    pub const fn size_bytes() -> usize {
        std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_size_is_compact() {
        assert_eq!(BinRecord::<u32>::size_bytes(), 8);
        assert!(BinRecord::<f64>::size_bytes() <= 16);
    }

    #[test]
    fn construction() {
        let r = BinRecord::new(5, 1.5f64);
        assert_eq!(r.dst, 5);
        assert_eq!(r.value, 1.5);
    }
}
