//! The bin space: all bins plus the MPMC full-buffer queues.
//!
//! Full buffers are routed to one of `gather_queues` queues by
//! `bin_id % gather_queues`, mirroring how the engine assigns gather
//! workers. Each gather worker drains its own queue first and steals from
//! the others only when it is empty, so a bin's buffers (and its gather
//! lock) tend to stay on one thread instead of bouncing between them.

use blaze_sync::atomic::{AtomicU64, Ordering};

use blaze_sync::queue::SegQueue;

use blaze_types::{CachePadded, VertexId};

use crate::bin::Bin;
use crate::config::BinningConfig;
use crate::record::{BinRecord, BinValue};

/// A full (or final-partial) buffer travelling to a gather thread.
#[derive(Debug)]
pub struct FullBin<V> {
    /// Which bin the records belong to.
    pub bin_id: usize,
    /// The records.
    pub records: Vec<BinRecord<V>>,
}

/// The complete online-binning state for one `EdgeMap` execution.
pub struct BinSpace<V> {
    bins: Vec<Bin<V>>,
    /// One full-buffer queue per gather worker; bin `b` routes to queue
    /// `b % full_queues.len()`.
    full_queues: Vec<SegQueue<FullBin<V>>>,
    /// Per-bin record counters for work-trace instrumentation.
    records_per_bin: Vec<CachePadded<AtomicU64>>,
    config: BinningConfig,
    record_bytes: usize,
}

impl<V: BinValue> BinSpace<V> {
    /// Allocates bins per `config` with a single full-buffer queue.
    pub fn new(config: BinningConfig) -> Self {
        Self::with_gather_queues(config, 1)
    }

    /// Allocates bins per `config` with one full-buffer queue per gather
    /// worker (`gather_queues` is clamped to at least 1).
    pub fn with_gather_queues(config: BinningConfig, gather_queues: usize) -> Self {
        let record_bytes = BinRecord::<V>::size_bytes();
        let capacity = config.buffer_capacity(record_bytes);
        let bins = (0..config.bin_count).map(|_| Bin::new(capacity)).collect();
        let records_per_bin = (0..config.bin_count)
            .map(|_| CachePadded::new(AtomicU64::new(0)))
            .collect();
        let full_queues = (0..gather_queues.max(1)).map(|_| SegQueue::new()).collect();
        Self {
            bins,
            full_queues,
            records_per_bin,
            config,
            record_bytes,
        }
    }

    /// Number of gather-affinity queues.
    pub fn gather_queue_count(&self) -> usize {
        self.full_queues.len()
    }

    /// Routes a full buffer to its bin's affinity queue.
    fn push_full(&self, full: FullBin<V>) {
        self.full_queues[full.bin_id % self.full_queues.len()].push(full);
    }

    /// Number of bins.
    pub fn bin_count(&self) -> usize {
        self.bins.len()
    }

    /// The bin a destination vertex routes to.
    #[inline]
    pub fn bin_of(&self, dst: VertexId) -> usize {
        dst as usize % self.bins.len()
    }

    /// Appends a batch of records that all route to `bin_id`; full buffers
    /// move to the `full_bins` queue.
    pub fn append_batch(&self, bin_id: usize, batch: &[BinRecord<V>]) {
        self.records_per_bin[bin_id].fetch_add(batch.len() as u64, Ordering::Relaxed); // sync-audit: per-bin work counter; read post-join or for heuristics.
        self.bins[bin_id].append_batch(batch, |records| {
            self.push_full(FullBin { bin_id, records });
        });
    }

    /// Pops one full bin and processes it under the bin's gather lock,
    /// calling `f(bin_id, records)`. Returns `false` when every queue was
    /// empty. The buffer is recycled afterwards.
    ///
    /// Equivalent to [`process_one_full_for`](Self::process_one_full_for)
    /// with worker 0 — single-consumer callers need no affinity.
    pub fn process_one_full<F>(&self, f: F) -> bool
    where
        F: FnMut(usize, &[BinRecord<V>]),
    {
        self.process_one_full_for(0, f)
    }

    /// Affinity-aware variant of [`process_one_full`](Self::process_one_full)
    /// for gather worker `worker`: pops from the worker's own queue
    /// (`worker % gather_queue_count`) first and steals from the other
    /// queues only when it is empty.
    pub fn process_one_full_for<F>(&self, worker: usize, mut f: F) -> bool
    where
        F: FnMut(usize, &[BinRecord<V>]),
    {
        let queues = self.full_queues.len();
        let home = worker % queues;
        let Some(full) = (0..queues).find_map(|i| self.full_queues[(home + i) % queues].pop())
        else {
            return false;
        };
        let bin = &self.bins[full.bin_id];
        {
            let _exclusive = bin.lock_for_gather();
            f(full.bin_id, &full.records);
        }
        bin.return_buffer(full.records);
        true
    }

    /// Flushes every bin's partially-filled active buffer into the full
    /// queues. Called once scatter is done so gather can drain everything.
    pub fn flush_partials(&self) {
        for (bin_id, bin) in self.bins.iter().enumerate() {
            if let Some(records) = bin.drain_partial() {
                self.push_full(FullBin { bin_id, records });
            }
        }
    }

    /// Whether every full-buffer queue is currently empty.
    pub fn full_queue_is_empty(&self) -> bool {
        self.full_queues.iter().all(SegQueue::is_empty)
    }

    /// Total records appended since the last
    /// [`take_record_counts`](Self::take_record_counts).
    pub fn total_records(&self) -> u64 {
        self.records_per_bin
            .iter()
            // sync-audit: work counter; authoritative only after scatter joins.
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Returns and resets the per-bin record counters (one `EdgeMap`'s
    /// gather-work distribution, fed to the performance model).
    pub fn take_record_counts(&self) -> Vec<u64> {
        self.records_per_bin
            .iter()
            // sync-audit: reset between iterations; scatter threads are quiescent.
            .map(|c| c.swap(0, Ordering::Relaxed))
            .collect()
    }

    /// Restores the space to its freshly-constructed state so it can be
    /// recycled into a later job's arena checkout: drains any leftover full
    /// buffers back into their bins, resets every bin's pair, and zeroes
    /// the per-bin record counters. Must only be called while no scatter or
    /// gather thread is using the space.
    pub fn reset(&self) {
        for queue in &self.full_queues {
            while let Some(full) = queue.pop() {
                self.bins[full.bin_id].return_buffer(full.records);
            }
        }
        for bin in &self.bins {
            bin.reset();
        }
        for counter in &self.records_per_bin {
            // sync-audit: reset between jobs; the space is quiescent here.
            counter.store(0, Ordering::Relaxed);
        }
    }

    /// The configuration this space was built with.
    pub fn config(&self) -> &BinningConfig {
        &self.config
    }

    /// Bytes of memory held by the bin buffers (Figure 12 accounting).
    pub fn memory_bytes(&self) -> u64 {
        self.config.allocated_bytes(self.record_bytes)
    }
}

impl<V> std::fmt::Debug for BinSpace<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BinSpace")
            .field("bin_count", &self.bins.len())
            .field("gather_queues", &self.full_queues.len())
            .field(
                "full_queue",
                &self.full_queues.iter().map(SegQueue::len).sum::<usize>(),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(bins: usize, records_per_buffer: usize) -> BinningConfig {
        BinningConfig::new(bins, bins * 2 * records_per_buffer * 8, 4).unwrap()
    }

    #[test]
    fn records_route_by_modulo() {
        let space: BinSpace<u32> = BinSpace::new(config(4, 16));
        assert_eq!(space.bin_of(0), 0);
        assert_eq!(space.bin_of(5), 1);
        assert_eq!(space.bin_of(7), 3);
    }

    #[test]
    fn flush_then_gather_sees_every_record() {
        let space: BinSpace<u32> = BinSpace::new(config(4, 16));
        for dst in 0..40u32 {
            let bin = space.bin_of(dst);
            space.append_batch(bin, &[BinRecord::new(dst, dst * 2)]);
        }
        space.flush_partials();
        let mut seen = Vec::new();
        while space.process_one_full(|bin_id, records| {
            for r in records {
                assert_eq!(bin_id, (r.dst % 4) as usize, "record in wrong bin");
                seen.push(r.dst);
            }
        }) {}
        seen.sort_unstable();
        assert_eq!(seen, (0..40).collect::<Vec<_>>());
        assert_eq!(space.total_records(), 40);
    }

    #[test]
    fn take_record_counts_resets() {
        let space: BinSpace<u32> = BinSpace::new(config(2, 8));
        space.append_batch(0, &[BinRecord::new(0, 1), BinRecord::new(2, 1)]);
        space.append_batch(1, &[BinRecord::new(1, 1)]);
        let counts = space.take_record_counts();
        assert_eq!(counts, vec![2, 1]);
        assert_eq!(space.total_records(), 0);
    }

    #[test]
    fn reset_restores_a_dirty_space() {
        let space: BinSpace<u32> = BinSpace::new(config(4, 4));
        // Dirty it: fill buffers, leave partials and full-queue entries.
        for dst in 0..30u32 {
            let bin = space.bin_of(dst);
            space.append_batch(bin, &[BinRecord::new(dst, dst)]);
        }
        space.flush_partials();
        assert!(!space.full_queue_is_empty());
        space.reset();
        assert!(space.full_queue_is_empty());
        assert_eq!(space.total_records(), 0);
        // The reset space behaves like a fresh one. Stay within the two
        // buffers per bin (2 x 4 records x 4 bins = 32) — with no gather
        // thread returning buffers, more would block on back-pressure.
        for dst in 0..32u32 {
            let bin = space.bin_of(dst);
            space.append_batch(bin, &[BinRecord::new(dst, dst * 2)]);
        }
        space.flush_partials();
        let mut seen = Vec::new();
        while space.process_one_full(|_, records| {
            seen.extend(records.iter().map(|r| r.dst));
        }) {}
        seen.sort_unstable();
        assert_eq!(seen, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn affinity_routes_bins_to_home_queues() {
        // 4 bins over 2 queues: bins {0, 2} home to queue 0, {1, 3} to
        // queue 1. With work in every queue, a worker drains its own
        // queue's bins before touching the other's.
        let space: BinSpace<u32> = BinSpace::with_gather_queues(config(4, 16), 2);
        assert_eq!(space.gather_queue_count(), 2);
        for dst in 0..4u32 {
            space.append_batch(space.bin_of(dst), &[BinRecord::new(dst, dst)]);
        }
        space.flush_partials();
        let mut worker0_bins = Vec::new();
        space.process_one_full_for(0, |bin, _| worker0_bins.push(bin));
        space.process_one_full_for(0, |bin, _| worker0_bins.push(bin));
        assert_eq!(
            worker0_bins,
            vec![0, 2],
            "worker 0 drains its home queue first"
        );
        let mut worker1_bins = Vec::new();
        space.process_one_full_for(1, |bin, _| worker1_bins.push(bin));
        space.process_one_full_for(1, |bin, _| worker1_bins.push(bin));
        assert_eq!(worker1_bins, vec![1, 3]);
        assert!(space.full_queue_is_empty());
    }

    #[test]
    fn idle_workers_steal_from_other_queues() {
        let space: BinSpace<u32> = BinSpace::with_gather_queues(config(4, 16), 2);
        // Only bin 0 has work — it homes to queue 0.
        space.append_batch(0, &[BinRecord::new(0, 7)]);
        space.flush_partials();
        let mut got = Vec::new();
        assert!(space.process_one_full_for(1, |bin, records| {
            got.extend(records.iter().map(|r| (bin, r.value)));
        }));
        assert_eq!(got, vec![(0, 7)], "worker 1 steals queue 0's buffer");
        assert!(!space.process_one_full_for(1, |_, _| {}));
        assert!(space.full_queue_is_empty());
    }

    #[test]
    fn concurrent_scatter_gather_pipeline() {
        // 4 scatter threads + 2 gather threads over a small bin space;
        // every value must be gathered exactly once.
        use blaze_sync::atomic::{AtomicBool, AtomicU64};
        use blaze_sync::Arc;
        const N: u32 = 20_000;
        let space: Arc<BinSpace<u32>> = Arc::new(BinSpace::new(config(8, 32)));
        let sum = Arc::new(AtomicU64::new(0));
        let count = Arc::new(AtomicU64::new(0));
        let scatter_done = Arc::new(AtomicBool::new(false));
        let finished_scatters = Arc::new(AtomicU64::new(0));

        blaze_sync::thread::scope(|s| {
            for t in 0..4u32 {
                let space = space.clone();
                let finished = finished_scatters.clone();
                s.spawn(move || {
                    for i in (t..N).step_by(4) {
                        let bin = space.bin_of(i);
                        space.append_batch(bin, &[BinRecord::new(i, i)]);
                    }
                    finished.fetch_add(1, Ordering::Release); // sync-audit: per-bin work counter; read post-join or for heuristics.
                });
            }
            for _ in 0..2 {
                let space = space.clone();
                let sum = sum.clone();
                let count = count.clone();
                let done = scatter_done.clone();
                s.spawn(move || loop {
                    let progressed = space.process_one_full(|_, records| {
                        for r in records {
                            sum.fetch_add(r.value as u64, Ordering::Relaxed); // sync-audit: per-bin work counter; read post-join or for heuristics.
                            count.fetch_add(1, Ordering::Relaxed); // sync-audit: per-bin work counter; read post-join or for heuristics.
                        }
                    });
                    if !progressed {
                        if done.load(Ordering::Acquire) && space.full_queue_is_empty() {
                            // sync-audit: work counter; authoritative only after scatter joins.
                            break;
                        }
                        std::thread::yield_now();
                    }
                });
            }
            // Coordinator: once every scatter thread has finished, flush the
            // partial buffers and release the gather threads — exactly the
            // engine's end-of-iteration protocol.
            let space2 = space.clone();
            let done2 = scatter_done.clone();
            let finished = finished_scatters.clone();
            s.spawn(move || {
                while finished.load(Ordering::Acquire) < 4 {
                    // sync-audit: work counter; authoritative only after scatter joins.
                    std::thread::yield_now();
                }
                space2.flush_partials();
                done2.store(true, Ordering::Release);
            });
        });

        assert_eq!(count.load(Ordering::Relaxed), N as u64); // sync-audit: work counter; authoritative only after scatter joins.
        let expected: u64 = (0..N as u64).sum();
        assert_eq!(sum.load(Ordering::Relaxed), expected); // sync-audit: work counter; authoritative only after scatter joins.
    }
}
