//! Per-thread staging buffers (Section IV-A, first optimization).
//!
//! Each scatter thread keeps a small fixed-size buffer *per bin* and
//! appends records there without any synchronization; when a per-bin
//! staging buffer fills, its records are copied into the shared bin in one
//! batch. This is the propagation-blocking trick that amortizes the bin
//! lock over ~64 records.
//!
//! When the query's gather operator is associative, the staging window
//! doubles as a combiner ([`ScatterStaging::push_combined`]): a record
//! whose destination is already staged for the same bin merges in place
//! instead of occupying a new slot, so repeated targets (the heavy heads
//! of a power-law in-degree distribution) collapse before they ever touch
//! the shared bin — the update-log reduction BigSparse applies before its
//! vertex-array pass.

use blaze_types::VertexId;

use crate::record::{BinRecord, BinValue};
use crate::space::BinSpace;

/// Thread-local staging for one scatter thread.
#[derive(Debug)]
pub struct ScatterStaging<V> {
    buffers: Vec<Vec<BinRecord<V>>>,
    capacity: usize,
    /// Records merged away by [`push_combined`](Self::push_combined).
    combined: u64,
}

impl<V: BinValue> ScatterStaging<V> {
    /// Creates staging buffers matching `space`'s bin count and configured
    /// staging batch size.
    pub fn new(space: &BinSpace<V>) -> Self {
        let capacity = space.config().staging_records;
        let buffers = (0..space.bin_count())
            .map(|_| Vec::with_capacity(capacity))
            .collect();
        Self {
            buffers,
            capacity,
            combined: 0,
        }
    }

    /// Stages one record; flushes its bin's staging buffer to `space` when
    /// the batch is full.
    #[inline]
    pub fn push(&mut self, space: &BinSpace<V>, dst: VertexId, value: V) {
        let bin = space.bin_of(dst);
        let buf = &mut self.buffers[bin];
        buf.push(BinRecord::new(dst, value));
        if buf.len() == self.capacity {
            space.append_batch(bin, buf);
            buf.clear();
        }
    }

    /// Stages one record, merging it into an already-staged record for the
    /// same destination via `combine` when one exists.
    ///
    /// `combine` must be associative and insensitive to argument order for
    /// the combined result to match the uncombined gather sequence; the
    /// staged record's value is passed first, the incoming value second.
    /// Only the current staging window (at most `staging_records` entries,
    /// all cache-resident) is scanned, so a miss costs one short linear
    /// probe and never touches the shared bin.
    #[inline]
    pub fn push_combined<F>(&mut self, space: &BinSpace<V>, dst: VertexId, value: V, combine: &F)
    where
        F: Fn(V, V) -> V,
    {
        let bin = space.bin_of(dst);
        let buf = &mut self.buffers[bin];
        if let Some(r) = buf.iter_mut().find(|r| r.dst == dst) {
            r.value = combine(r.value, value);
            self.combined += 1;
            return;
        }
        buf.push(BinRecord::new(dst, value));
        if buf.len() == self.capacity {
            space.append_batch(bin, buf);
            buf.clear();
        }
    }

    /// Records merged away by combining since construction (pre-combine
    /// minus post-combine record count).
    pub fn records_combined(&self) -> u64 {
        self.combined
    }

    /// Flushes every non-empty staging buffer. Must be called before a
    /// scatter thread reports completion, or records would be lost.
    pub fn flush(&mut self, space: &BinSpace<V>) {
        for (bin, buf) in self.buffers.iter_mut().enumerate() {
            if !buf.is_empty() {
                space.append_batch(bin, buf);
                buf.clear();
            }
        }
    }

    /// Records currently staged across all bins.
    pub fn staged(&self) -> usize {
        self.buffers.iter().map(Vec::len).sum()
    }

    /// Memory held by the staging buffers (per thread).
    pub fn memory_bytes(&self) -> u64 {
        (self.buffers.len() * self.capacity * BinRecord::<V>::size_bytes()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BinningConfig;

    fn space(bins: usize, staging: usize) -> BinSpace<u32> {
        BinSpace::new(BinningConfig::new(bins, bins * 2 * 64 * 8, staging).unwrap())
    }

    #[test]
    fn records_stage_until_batch_full() {
        let space = space(2, 4);
        let mut st = ScatterStaging::new(&space);
        for dst in [0u32, 2, 4] {
            st.push(&space, dst, dst);
        }
        assert_eq!(st.staged(), 3);
        assert_eq!(space.total_records(), 0, "nothing flushed yet");
        st.push(&space, 6, 6); // 4th record for bin 0 triggers the flush
        assert_eq!(st.staged(), 0);
        assert_eq!(space.total_records(), 4);
    }

    #[test]
    fn flush_pushes_leftovers() {
        let space = space(4, 8);
        let mut st = ScatterStaging::new(&space);
        for dst in 0..10u32 {
            st.push(&space, dst, dst);
        }
        st.flush(&space);
        assert_eq!(st.staged(), 0);
        assert_eq!(space.total_records(), 10);
        space.flush_partials();
        let mut got = 0;
        while space.process_one_full(|_, r| got += r.len()) {}
        assert_eq!(got, 10);
    }

    #[test]
    fn combine_merges_same_destination_in_window() {
        let space = space(2, 4);
        let mut st = ScatterStaging::new(&space);
        let add = |a: u32, b: u32| a + b;
        // Three hits on dst 0 collapse into one staged record.
        st.push_combined(&space, 0, 1, &add);
        st.push_combined(&space, 0, 10, &add);
        st.push_combined(&space, 0, 100, &add);
        st.push_combined(&space, 2, 5, &add);
        assert_eq!(st.staged(), 2);
        assert_eq!(st.records_combined(), 2);
        st.flush(&space);
        space.flush_partials();
        let mut got = Vec::new();
        while space.process_one_full(|_, r| got.extend(r.iter().map(|r| (r.dst, r.value)))) {}
        got.sort_unstable();
        assert_eq!(got, vec![(0, 111), (2, 5)]);
    }

    #[test]
    fn combine_window_resets_after_flush() {
        // Once a staging buffer flushes to the bin, a later record for the
        // same dst starts a fresh entry — combining is window-local.
        let space = space(1, 2);
        let mut st = ScatterStaging::new(&space);
        let add = |a: u32, b: u32| a + b;
        st.push_combined(&space, 0, 1, &add);
        st.push_combined(&space, 1, 1, &add); // fills the window, flushes
        st.push_combined(&space, 0, 1, &add);
        assert_eq!(st.staged(), 1, "post-flush dst 0 staged anew");
        assert_eq!(st.records_combined(), 0);
        st.flush(&space);
        space.flush_partials();
        let mut total = 0u32;
        while space.process_one_full(|_, r| total += r.iter().map(|r| r.value).sum::<u32>()) {}
        assert_eq!(total, 3, "no update lost across the window boundary");
    }

    #[test]
    fn values_survive_the_staging_path() {
        let space = space(3, 2);
        let mut st = ScatterStaging::new(&space);
        for dst in 0..30u32 {
            st.push(&space, dst, dst * 7);
        }
        st.flush(&space);
        space.flush_partials();
        let mut ok = 0;
        while space.process_one_full(|bin, records| {
            for r in records {
                assert_eq!(bin, (r.dst % 3) as usize);
                assert_eq!(r.value, r.dst * 7);
                ok += 1;
            }
        }) {}
        assert_eq!(ok, 30);
    }
}
