//! Per-thread staging buffers (Section IV-A, first optimization).
//!
//! Each scatter thread keeps a small fixed-size buffer *per bin* and
//! appends records there without any synchronization; when a per-bin
//! staging buffer fills, its records are copied into the shared bin in one
//! batch. This is the propagation-blocking trick that amortizes the bin
//! lock over ~64 records.

use blaze_types::VertexId;

use crate::record::{BinRecord, BinValue};
use crate::space::BinSpace;

/// Thread-local staging for one scatter thread.
#[derive(Debug)]
pub struct ScatterStaging<V> {
    buffers: Vec<Vec<BinRecord<V>>>,
    capacity: usize,
}

impl<V: BinValue> ScatterStaging<V> {
    /// Creates staging buffers matching `space`'s bin count and configured
    /// staging batch size.
    pub fn new(space: &BinSpace<V>) -> Self {
        let capacity = space.config().staging_records;
        let buffers = (0..space.bin_count())
            .map(|_| Vec::with_capacity(capacity))
            .collect();
        Self { buffers, capacity }
    }

    /// Stages one record; flushes its bin's staging buffer to `space` when
    /// the batch is full.
    #[inline]
    pub fn push(&mut self, space: &BinSpace<V>, dst: VertexId, value: V) {
        let bin = space.bin_of(dst);
        let buf = &mut self.buffers[bin];
        buf.push(BinRecord::new(dst, value));
        if buf.len() == self.capacity {
            space.append_batch(bin, buf);
            buf.clear();
        }
    }

    /// Flushes every non-empty staging buffer. Must be called before a
    /// scatter thread reports completion, or records would be lost.
    pub fn flush(&mut self, space: &BinSpace<V>) {
        for (bin, buf) in self.buffers.iter_mut().enumerate() {
            if !buf.is_empty() {
                space.append_batch(bin, buf);
                buf.clear();
            }
        }
    }

    /// Records currently staged across all bins.
    pub fn staged(&self) -> usize {
        self.buffers.iter().map(Vec::len).sum()
    }

    /// Memory held by the staging buffers (per thread).
    pub fn memory_bytes(&self) -> u64 {
        (self.buffers.len() * self.capacity * BinRecord::<V>::size_bytes()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BinningConfig;

    fn space(bins: usize, staging: usize) -> BinSpace<u32> {
        BinSpace::new(BinningConfig::new(bins, bins * 2 * 64 * 8, staging).unwrap())
    }

    #[test]
    fn records_stage_until_batch_full() {
        let space = space(2, 4);
        let mut st = ScatterStaging::new(&space);
        for dst in [0u32, 2, 4] {
            st.push(&space, dst, dst);
        }
        assert_eq!(st.staged(), 3);
        assert_eq!(space.total_records(), 0, "nothing flushed yet");
        st.push(&space, 6, 6); // 4th record for bin 0 triggers the flush
        assert_eq!(st.staged(), 0);
        assert_eq!(space.total_records(), 4);
    }

    #[test]
    fn flush_pushes_leftovers() {
        let space = space(4, 8);
        let mut st = ScatterStaging::new(&space);
        for dst in 0..10u32 {
            st.push(&space, dst, dst);
        }
        st.flush(&space);
        assert_eq!(st.staged(), 0);
        assert_eq!(space.total_records(), 10);
        space.flush_partials();
        let mut got = 0;
        while space.process_one_full(|_, r| got += r.len()) {}
        assert_eq!(got, 10);
    }

    #[test]
    fn values_survive_the_staging_path() {
        let space = space(3, 2);
        let mut st = ScatterStaging::new(&space);
        for dst in 0..30u32 {
            st.push(&space, dst, dst * 7);
        }
        st.flush(&space);
        space.flush_partials();
        let mut ok = 0;
        while space.process_one_full(|bin, records| {
            for r in records {
                assert_eq!(bin, (r.dst % 3) as usize);
                assert_eq!(r.value, r.dst * 7);
                ok += 1;
            }
        }) {}
        assert_eq!(ok, 30);
    }
}
