//! Model-checked tests of the bin pair-buffer swap protocol: a scatter
//! thread appending past capacity races a gather thread returning buffers,
//! exercising the back-pressure wait (`spare_returned`) and the gather
//! exclusivity lock under every schedule the bounded explorer can reach.
//!
//! Run with:
//! `RUSTFLAGS="--cfg loom" cargo test -p blaze-binning --test loom_bin --release`
#![cfg(loom)]

use blaze_binning::{Bin, BinRecord};
use blaze_sync::model::{check_with, Config};
use blaze_sync::{thread, Arc, Condvar, Mutex};
use std::cell::UnsafeCell;

fn cfg(preemption_bound: usize) -> Config {
    Config {
        preemption_bound,
        ..Config::default()
    }
}

fn rec(v: u32) -> BinRecord<u32> {
    BinRecord::new(v, v)
}

/// One scatter thread pushes three records through a capacity-1 bin while a
/// gather thread consumes and returns the buffers. Forcing three records
/// through a two-buffer pair means some schedules park the scatter thread on
/// `spare_returned`; the model proves no schedule loses a record, dies in a
/// missed wakeup, or deadlocks.
#[test]
fn swap_protocol_conserves_records_under_backpressure() {
    let report = check_with(cfg(2), || {
        let bin = Arc::new(Bin::<u32>::new(1));
        // Test-local channel standing in for the engine's full_bins queue:
        // `on_full` pushes here and the gather thread blocks on the condvar,
        // so the model never spins.
        let chan = Arc::new((Mutex::new(Vec::new()), Condvar::new()));

        let scatter = {
            let (bin, chan) = (bin.clone(), chan.clone());
            thread::spawn(move || {
                bin.append_batch(&[rec(0), rec(1), rec(2)], |full| {
                    chan.0.lock().push(full);
                    chan.1.notify_all();
                });
            })
        };

        // Capacity 1 and a 3-record batch guarantee exactly two full
        // hand-offs (the third record stays in the active buffer).
        let mut gathered = Vec::new();
        for _ in 0..2 {
            let full = {
                let mut q = chan.0.lock();
                loop {
                    if let Some(full) = q.pop() {
                        break full;
                    }
                    chan.1.wait(&mut q);
                }
            };
            gathered.extend(full.iter().map(|r| r.value));
            bin.return_buffer(full);
        }
        scatter.join().unwrap();

        let partial = bin.drain_partial().expect("third record pending");
        gathered.extend(partial.iter().map(|r| r.value));
        gathered.sort_unstable();
        assert_eq!(gathered, vec![0, 1, 2], "records lost or duplicated");
        assert_eq!(bin.pending_records(), 0);
    });
    assert!(report.executions > 1, "explored only one schedule");
}

/// `drain_partial` racing a concurrent append: every interleaving must
/// conserve the records between the drained buffer and the active buffer.
#[test]
fn drain_partial_races_append() {
    check_with(cfg(2), || {
        let bin = Arc::new(Bin::<u32>::new(2));
        let appender = {
            let bin = bin.clone();
            thread::spawn(move || {
                bin.append_batch(&[rec(7)], |_| unreachable!("capacity 2 cannot fill"));
            })
        };
        let drained = bin.drain_partial().map(|b| b.len()).unwrap_or(0);
        appender.join().unwrap();
        let rest = bin.drain_partial().map(|b| b.len()).unwrap_or(0);
        assert_eq!(drained + rest, 1, "record lost or duplicated by drain race");
    });
}

/// A non-atomic canary protected only by `lock_for_gather`. The model plants
/// a scheduling point between the canary's read and write; exclusivity of
/// the gather lock must make the read-modify-write atomic anyway.
struct Canary(UnsafeCell<u64>);
// SAFETY: all access to the cell is serialized either by the bin's gather
// lock (positive test) or deliberately unsynchronized (negative test, where
// the checker is expected to report the race-induced lost update).
unsafe impl Sync for Canary {}
impl Canary {
    fn bump_with_yield(&self) {
        // SAFETY: see the `Sync` impl — the surrounding test provides (or
        // deliberately withholds) the exclusion.
        let v = unsafe { *self.0.get() };
        thread::yield_now();
        // SAFETY: as above.
        unsafe { *self.0.get() = v + 1 };
    }
    fn read(&self) -> u64 {
        // SAFETY: called only after every writer has been joined.
        unsafe { *self.0.get() }
    }
}

/// Two gather threads bump the canary under `lock_for_gather`: no schedule
/// may lose an increment.
#[test]
fn gather_lock_makes_canary_updates_atomic() {
    let report = check_with(cfg(2), || {
        let bin = Arc::new(Bin::<u32>::new(4));
        let canary = Arc::new(Canary(UnsafeCell::new(0)));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let (bin, canary) = (bin.clone(), canary.clone());
                thread::spawn(move || {
                    let _guard = bin.lock_for_gather();
                    canary.bump_with_yield();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(canary.read(), 2, "gather exclusivity violated");
    });
    assert!(report.executions > 1, "explored only one schedule");
}

/// The same canary WITHOUT the gather lock: the checker must find the
/// double-count. This proves the previous test actually depends on the lock
/// (a regression that drops `lock_for_gather` would be caught).
#[test]
fn canary_without_gather_lock_is_caught() {
    let result = std::panic::catch_unwind(|| {
        check_with(cfg(2), || {
            let canary = Arc::new(Canary(UnsafeCell::new(0)));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let canary = canary.clone();
                    thread::spawn(move || canary.bump_with_yield())
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(canary.read(), 2);
        });
    });
    assert!(result.is_err(), "checker missed the unlocked canary race");
}

/// `return_buffer` when the spare slot is already occupied (possible after a
/// `drain_partial` that had to allocate a third buffer) must drop the extra
/// buffer rather than corrupt the pair.
#[test]
fn extra_buffer_from_drain_is_dropped_cleanly() {
    check_with(cfg(2), || {
        let bin = Arc::new(Bin::<u32>::new(1));
        let chan = Arc::new((Mutex::new(Vec::new()), Condvar::new()));
        let scatter = {
            let (bin, chan) = (bin.clone(), chan.clone());
            thread::spawn(move || {
                bin.append_batch(&[rec(1), rec(2)], |full| {
                    chan.0.lock().push(full);
                    chan.1.notify_all();
                });
            })
        };
        // Exactly one full hand-off (two records, capacity 1, second stays
        // active): block for it, and race a drain against the tail append.
        let full = {
            let mut q = chan.0.lock();
            loop {
                if let Some(full) = q.pop() {
                    break full;
                }
                chan.1.wait(&mut q);
            }
        };
        let mut total = full.len();
        let drained = bin.drain_partial();
        bin.return_buffer(full);
        if let Some(buf) = drained {
            total += buf.len();
            // In schedules where the spare slot is already occupied this is
            // the transient third buffer; `return_buffer` must drop it.
            bin.return_buffer(buf);
        }
        scatter.join().unwrap();
        total += bin.drain_partial().map(|b| b.len()).unwrap_or(0);
        assert_eq!(total, 2, "records lost across drain/return race");
    });
}
