//! Model-checked tests of the gather-affinity full-bin queues: two gather
//! workers racing `process_one_full_for` over the per-worker queues, with
//! home-queue preference and work stealing, under every schedule the
//! bounded explorer can reach.
//!
//! Run with:
//! `RUSTFLAGS="--cfg loom" cargo test -p blaze-binning --test loom_gather --release`
#![cfg(loom)]

use blaze_binning::{BinRecord, BinSpace, BinningConfig};
use blaze_sync::model::{check_with, Config};
use blaze_sync::{thread, Arc, Mutex};

fn cfg(preemption_bound: usize) -> Config {
    Config {
        preemption_bound,
        ..Config::default()
    }
}

/// A two-queue space with one record staged in each of `bins` bins, flushed
/// so every bin sits in its affinity queue (`bin_id % 2`).
fn space_with_bins(bins: usize) -> Arc<BinSpace<u32>> {
    let config = BinningConfig::new(bins, 1 << 16, 4).unwrap();
    let space = Arc::new(BinSpace::<u32>::with_gather_queues(config, 2));
    for b in 0..bins {
        space.append_batch(b, &[BinRecord::new(b as u32, b as u32)]);
    }
    space.flush_partials();
    space
}

/// Two gather workers drain a four-bin space concurrently. No schedule may
/// process a record twice, lose one, or leave a queue non-empty after both
/// workers observe exhaustion.
#[test]
fn racing_workers_process_each_bin_exactly_once() {
    let report = check_with(cfg(2), || {
        let space = space_with_bins(4);
        let seen = Arc::new(Mutex::new(Vec::new()));
        let workers: Vec<_> = (0..2)
            .map(|id| {
                let (space, seen) = (space.clone(), seen.clone());
                thread::spawn(move || {
                    while space.process_one_full_for(id, |bin, records| {
                        let mut s = seen.lock();
                        for r in records {
                            s.push((bin, r.value));
                        }
                    }) {}
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        let mut seen = Arc::try_unwrap(seen).unwrap().into_inner();
        seen.sort_unstable();
        assert_eq!(
            seen,
            vec![(0, 0), (1, 1), (2, 2), (3, 3)],
            "records lost or duplicated across racing gather workers"
        );
        assert!(space.full_queue_is_empty());
    });
    assert!(report.executions > 1, "explored only one schedule");
}

/// A worker whose home queue is empty must steal from the other queue: one
/// record lands in queue 1 (bin 1 of 2), and worker 0 — racing worker 1 for
/// it — must never let it strand. Exactly one of the two processes it.
#[test]
fn idle_worker_steals_from_the_other_queue() {
    let report = check_with(cfg(2), || {
        let config = BinningConfig::new(2, 1 << 16, 4).unwrap();
        let space = Arc::new(BinSpace::<u32>::with_gather_queues(config, 2));
        space.append_batch(1, &[BinRecord::new(7, 7)]);
        space.flush_partials();
        let processed = Arc::new(Mutex::new(0usize));
        let workers: Vec<_> = (0..2)
            .map(|id| {
                let (space, processed) = (space.clone(), processed.clone());
                thread::spawn(move || {
                    while space.process_one_full_for(id, |bin, records| {
                        assert_eq!(bin, 1);
                        assert_eq!(records.len(), 1);
                        *processed.lock() += 1;
                    }) {}
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(
            *processed.lock(),
            1,
            "the lone full bin must be processed exactly once"
        );
        assert!(space.full_queue_is_empty());
    });
    assert!(report.executions > 1, "explored only one schedule");
}
