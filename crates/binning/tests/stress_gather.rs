//! Stress test of gather exclusivity: several scatter threads and several
//! gather threads hammer a single bin; a canary counter that gather
//! callbacks update NON-atomically (it is protected only by the bin's
//! `gather_lock`, held by `process_one_full` around the callback) must come
//! out exact — any tearing or double-count means two gather threads entered
//! the same bin's critical section concurrently.
//!
//! This is the real-thread companion to the exhaustive-but-tiny loom model
//! in `loom_bin.rs` (`gather_lock_makes_canary_updates_atomic`).
#![cfg(not(loom))]

use blaze_binning::{BinRecord, BinSpace, BinningConfig};
use blaze_sync::atomic::{AtomicU64, Ordering};
use blaze_sync::thread;
use std::cell::UnsafeCell;

const SCATTER_THREADS: usize = 4;
const GATHER_THREADS: usize = 3;
const RECORDS_PER_SCATTER: u64 = 20_000;
const TOTAL: u64 = SCATTER_THREADS as u64 * RECORDS_PER_SCATTER;
const BATCH: usize = 33;

/// Deliberately non-atomic counter; soundness comes from the gather lock.
struct Canary {
    count: UnsafeCell<u64>,
    value_sum: UnsafeCell<u64>,
}

// SAFETY: both cells are only mutated inside `process_one_full` callbacks,
// which the bin space runs under the (single) bin's `gather_lock`; reads
// happen after every gather thread has been joined. That exclusivity is
// exactly the property under test.
unsafe impl Sync for Canary {}

#[test]
fn gather_exclusivity_stress() {
    // One bin => every gather callback contends for the same gather lock.
    // 1024 bytes of bin space / 2 buffers / 8-byte records = 64-record
    // buffers, so the full queue churns constantly.
    let space: BinSpace<u32> = BinSpace::new(BinningConfig::new(1, 1024, 16).unwrap());
    let canary = Canary {
        count: UnsafeCell::new(0),
        value_sum: UnsafeCell::new(0),
    };
    let processed = AtomicU64::new(0);

    thread::scope(|s| {
        let mut scatters = Vec::new();
        for t in 0..SCATTER_THREADS {
            let space = &space;
            scatters.push(s.spawn(move || {
                let mut batch = Vec::with_capacity(BATCH);
                for i in 0..RECORDS_PER_SCATTER {
                    // Value encodes (thread, index) so the checksum below
                    // detects duplicated as well as lost records.
                    batch.push(BinRecord::new(0, (t as u32) << 24 | (i as u32 & 0xff_ffff)));
                    if batch.len() == BATCH {
                        space.append_batch(0, &batch);
                        batch.clear();
                    }
                }
                if !batch.is_empty() {
                    space.append_batch(0, &batch);
                }
            }));
        }

        let gather = |_| {
            let (space, canary, processed) = (&space, &canary, &processed);
            s.spawn(move || {
                while processed.load(Ordering::Acquire) < TOTAL {
                    let worked = space.process_one_full(|_, records| {
                        for r in records {
                            // SAFETY: inside the gather-locked callback; see
                            // the `Sync` impl on `Canary`.
                            unsafe {
                                *canary.count.get() += 1;
                                *canary.value_sum.get() += r.value as u64;
                            }
                        }
                        processed.fetch_add(records.len() as u64, Ordering::Release);
                    });
                    if !worked {
                        std::hint::spin_loop();
                    }
                }
            })
        };
        let gathers: Vec<_> = (0..GATHER_THREADS).map(gather).collect();

        for h in scatters {
            h.join().expect("scatter thread panicked");
        }
        // End-of-iteration flush: push the partially filled buffers so the
        // gather threads can reach TOTAL and exit.
        space.flush_partials();
        for h in gathers {
            h.join().expect("gather thread panicked");
        }
    });

    let expected_sum: u64 = (0..SCATTER_THREADS as u64)
        .map(|t| {
            (0..RECORDS_PER_SCATTER)
                .map(|i| t << 24 | (i & 0xff_ffff))
                .sum::<u64>()
        })
        .sum();
    // SAFETY: every gather thread has been joined; no concurrent access
    // remains.
    let (count, value_sum) = unsafe { (*canary.count.get(), *canary.value_sum.get()) };
    assert_eq!(count, TOTAL, "canary count torn or double-counted");
    assert_eq!(
        value_sum, expected_sum,
        "record payloads lost or duplicated"
    );
    assert!(space.full_queue_is_empty());
    assert_eq!(space.total_records(), TOTAL);
}
