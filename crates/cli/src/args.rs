//! Artifact-compatible argument parsing (hand-rolled; single-dash long
//! flags like the original binaries: `-computeWorkers 16 -startNode 0`).

use std::path::PathBuf;

use blaze_algorithms::ExecMode;
use blaze_types::{BlazeError, Result};

/// Parsed command line shared by all query binaries.
#[derive(Debug, Clone)]
pub struct CliArgs {
    /// Compute threads, split evenly between scatter and gather by
    /// `binning_ratio` (`-computeWorkers`, default 2).
    pub compute_workers: usize,
    /// Root vertex for traversals (`-startNode`, default 0).
    pub start_node: u32,
    /// Total bin space in MiB (`-binSpace`; 0 = paper heuristic).
    pub bin_space_mib: usize,
    /// Scatter fraction of compute workers (`-binningRatio`, default 0.5).
    pub binning_ratio: f64,
    /// Number of bins (`-binCount`, default 1024).
    pub bin_count: usize,
    /// Device profile to simulate (`-device optane|nand|znand|vnand|none`).
    pub device: String,
    /// Maximum PageRank iterations (`-maxIters`, default 100).
    pub max_iters: usize,
    /// Concurrent queries submitted to one engine (`-jobs`, default 1).
    /// Traversal binaries run this many copies of the query from separate
    /// threads against the shared persistent runtime.
    pub jobs: usize,
    /// Clock page-cache budget in MiB (`-cache-mb`, default 0 = no cache,
    /// matching the published system).
    pub cache_mb: usize,
    /// Per-device IO queue depth (`-qd`, default 1 = synchronous backend,
    /// matching the published engine; deeper windows use the threaded
    /// backend with out-of-order completions).
    pub queue_depth: usize,
    /// Enable scatter-side record combining (`-combine`; PageRank only —
    /// same-destination delta records merge in the staging window before
    /// reaching the bins).
    pub combine: bool,
    /// Execution mode (`-mode binned|sync|async`, default binned). Async
    /// is accepted only by the monotone queries.
    pub mode: ExecMode,
    /// Core threshold for the k-core query (`-k`, default 2).
    pub k: u32,
    /// Disable cross-job scan sharing (`-no-share`). By default, running
    /// with `-jobs` > 1 coalesces concurrent jobs' overlapping device
    /// reads through the flight table (one read, N consumers); this flag
    /// makes every job pay its own device IO, for A/B measurement.
    pub no_share: bool,
    /// Scale-out shards (`-shards`, default 1 = single engine). BFS,
    /// PageRank, and WCC accept >1 and run the graph as a concurrent
    /// destination-partitioned cluster.
    pub shards: usize,
    /// The `.gr.index` file (first positional argument).
    pub index: PathBuf,
    /// The `.gr.adj.<i>` stripe files (remaining positional arguments).
    pub adj: Vec<PathBuf>,
    /// Transpose index (`-inIndexFilename`), for WCC/BC.
    pub in_index: Option<PathBuf>,
    /// Transpose stripe files (`-inAdjFilenames`, comma-separated).
    pub in_adj: Vec<PathBuf>,
}

impl Default for CliArgs {
    fn default() -> Self {
        Self {
            compute_workers: 2,
            start_node: 0,
            bin_space_mib: 0,
            binning_ratio: 0.5,
            bin_count: 1024,
            device: "optane".to_string(),
            max_iters: 100,
            jobs: 1,
            cache_mb: 0,
            queue_depth: 1,
            combine: false,
            mode: ExecMode::Binned,
            k: 2,
            no_share: false,
            shards: 1,
            index: PathBuf::new(),
            adj: Vec::new(),
            in_index: None,
            in_adj: Vec::new(),
        }
    }
}

/// Uniform numeric-flag parsing: every count-valued flag reports a missing
/// value, a malformed value, and an out-of-range value with the same
/// message shapes (`flag X needs a value`, `X: <value> is not a
/// non-negative integer`, `X must be >= N`).
fn parse_count(flag: &str, value: Option<&String>, min: usize) -> Result<usize> {
    let v = value.ok_or_else(|| BlazeError::Config(format!("flag {flag} needs a value")))?;
    let n: usize = v
        .parse()
        .map_err(|_| BlazeError::Config(format!("{flag}: {v:?} is not a non-negative integer")))?;
    if n < min {
        return Err(BlazeError::Config(format!("{flag} must be >= {min}")));
    }
    Ok(n)
}

/// Parses an artifact-style argument list (without the program name).
pub fn parse(args: &[String]) -> Result<CliArgs> {
    let mut out = CliArgs::default();
    let mut positional: Vec<PathBuf> = Vec::new();
    let mut once = crate::toolargs::FlagOnce::new();
    let mut it = args.iter();
    let missing = |flag: &str| BlazeError::Config(format!("flag {flag} needs a value"));
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-computeWorkers" => {
                out.compute_workers = it
                    .next()
                    .ok_or_else(|| missing("-computeWorkers"))?
                    .parse()
                    .map_err(|e| BlazeError::Config(format!("-computeWorkers: {e}")))?;
            }
            "-startNode" => {
                out.start_node = it
                    .next()
                    .ok_or_else(|| missing("-startNode"))?
                    .parse()
                    .map_err(|e| BlazeError::Config(format!("-startNode: {e}")))?;
            }
            "-binSpace" => {
                out.bin_space_mib = it
                    .next()
                    .ok_or_else(|| missing("-binSpace"))?
                    .parse()
                    .map_err(|e| BlazeError::Config(format!("-binSpace: {e}")))?;
            }
            "-binningRatio" => {
                out.binning_ratio = it
                    .next()
                    .ok_or_else(|| missing("-binningRatio"))?
                    .parse()
                    .map_err(|e| BlazeError::Config(format!("-binningRatio: {e}")))?;
            }
            "-binCount" => {
                out.bin_count = it
                    .next()
                    .ok_or_else(|| missing("-binCount"))?
                    .parse()
                    .map_err(|e| BlazeError::Config(format!("-binCount: {e}")))?;
            }
            "-maxIters" => {
                out.max_iters = it
                    .next()
                    .ok_or_else(|| missing("-maxIters"))?
                    .parse()
                    .map_err(|e| BlazeError::Config(format!("-maxIters: {e}")))?;
            }
            "-jobs" => {
                out.jobs = parse_count("-jobs", it.next(), 1)?;
            }
            "-cache-mb" => {
                out.cache_mb = parse_count("-cache-mb", it.next(), 0)?;
            }
            "-qd" => {
                out.queue_depth = parse_count("-qd", it.next(), 1)?;
            }
            "-k" => {
                out.k = parse_count("-k", it.next(), 1)? as u32;
            }
            "-shards" => {
                // Contradictory shard counts would silently change what
                // "per-shard" stats mean; reject repeats like the dataset
                // tools do.
                once.check("-shards").map_err(BlazeError::Config)?;
                out.shards = parse_count("-shards", it.next(), 1)?;
            }
            "-combine" => {
                out.combine = true;
            }
            "-no-share" => {
                // A repeat means a mangled command line (probably meant to
                // toggle something else); reject like `-shards` does.
                once.check("-no-share").map_err(BlazeError::Config)?;
                out.no_share = true;
            }
            "-mode" => {
                let v = it.next().ok_or_else(|| missing("-mode"))?;
                out.mode = ExecMode::parse(v).ok_or_else(|| {
                    BlazeError::Config(format!("unknown -mode {v} (expected binned|sync|async)"))
                })?;
            }
            "-device" => {
                out.device = it.next().ok_or_else(|| missing("-device"))?.clone();
            }
            "-inIndexFilename" => {
                out.in_index = Some(PathBuf::from(
                    it.next().ok_or_else(|| missing("-inIndexFilename"))?,
                ));
            }
            "-inAdjFilenames" => {
                let v = it.next().ok_or_else(|| missing("-inAdjFilenames"))?;
                out.in_adj = v.split(',').map(PathBuf::from).collect();
            }
            flag if flag.starts_with('-') => {
                return Err(BlazeError::Config(format!("unknown flag {flag}")));
            }
            path => positional.push(PathBuf::from(path)),
        }
    }
    if positional.is_empty() {
        return Err(BlazeError::Config(
            "usage: <query> [flags] <graph.gr.index> <graph.gr.adj.0> [more stripes...]".into(),
        ));
    }
    out.index = positional.remove(0);
    out.adj = positional;
    if out.adj.is_empty() {
        return Err(BlazeError::Config(
            "at least one .gr.adj stripe file is required".into(),
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_artifact_example() {
        // From the artifact appendix: bfs -computeWorkers 16 -startNode 0 ...
        let a = parse(&args(
            "-computeWorkers 16 -startNode 0 /mnt/nvme/rmat27.gr.index /mnt/nvme/rmat27.gr.adj.0",
        ))
        .unwrap();
        assert_eq!(a.compute_workers, 16);
        assert_eq!(a.start_node, 0);
        assert_eq!(a.index.to_str().unwrap(), "/mnt/nvme/rmat27.gr.index");
        assert_eq!(a.adj.len(), 1);
    }

    #[test]
    fn parses_transpose_flags() {
        let a = parse(&args(
            "-computeWorkers 16 g.gr.index g.gr.adj.0 -inIndexFilename g.tgr.index \
             -inAdjFilenames g.tgr.adj.0,g.tgr.adj.1",
        ))
        .unwrap();
        assert!(a.in_index.is_some());
        assert_eq!(a.in_adj.len(), 2);
    }

    #[test]
    fn parses_binning_flags() {
        let a = parse(&args(
            "-binSpace 256 -binningRatio 0.5 -binCount 1024 g.gr.index g.gr.adj.0",
        ))
        .unwrap();
        assert_eq!(a.bin_space_mib, 256);
        assert_eq!(a.bin_count, 1024);
        assert!((a.binning_ratio - 0.5).abs() < 1e-12);
    }

    #[test]
    fn parses_jobs_flag() {
        let a = parse(&args("-jobs 4 g.gr.index g.gr.adj.0")).unwrap();
        assert_eq!(a.jobs, 4);
        assert_eq!(parse(&args("g.gr.index g.gr.adj.0")).unwrap().jobs, 1);
        assert!(parse(&args("-jobs 0 g.gr.index g.gr.adj.0")).is_err());
    }

    #[test]
    fn parses_cache_flag() {
        let a = parse(&args("-cache-mb 64 g.gr.index g.gr.adj.0")).unwrap();
        assert_eq!(a.cache_mb, 64);
        assert_eq!(parse(&args("g.gr.index g.gr.adj.0")).unwrap().cache_mb, 0);
        assert!(parse(&args("-cache-mb x g.gr.index g.gr.adj.0")).is_err());
        assert!(parse(&args("-cache-mb")).is_err());
    }

    #[test]
    fn parses_queue_depth_flag() {
        let a = parse(&args("-qd 32 g.gr.index g.gr.adj.0")).unwrap();
        assert_eq!(a.queue_depth, 32);
        assert_eq!(
            parse(&args("g.gr.index g.gr.adj.0")).unwrap().queue_depth,
            1
        );
        assert!(parse(&args("-qd 0 g.gr.index g.gr.adj.0")).is_err());
        assert!(parse(&args("-qd x g.gr.index g.gr.adj.0")).is_err());
        assert!(parse(&args("-qd")).is_err());
    }

    #[test]
    fn parses_combine_flag() {
        let a = parse(&args("-combine g.gr.index g.gr.adj.0")).unwrap();
        assert!(a.combine);
        assert!(!parse(&args("g.gr.index g.gr.adj.0")).unwrap().combine);
    }

    #[test]
    fn parses_mode_flag() {
        let a = parse(&args("-mode async g.gr.index g.gr.adj.0")).unwrap();
        assert_eq!(a.mode, ExecMode::Async);
        let a = parse(&args("-mode sync g.gr.index g.gr.adj.0")).unwrap();
        assert_eq!(a.mode, ExecMode::Sync);
        let a = parse(&args("g.gr.index g.gr.adj.0")).unwrap();
        assert_eq!(a.mode, ExecMode::Binned);
        let err = parse(&args("-mode turbo g.gr.index g.gr.adj.0")).unwrap_err();
        assert!(
            err.to_string().contains("expected binned|sync|async"),
            "{err}"
        );
        assert!(parse(&args("-mode")).is_err());
    }

    #[test]
    fn parses_shards_flag() {
        let a = parse(&args("-shards 4 g.gr.index g.gr.adj.0")).unwrap();
        assert_eq!(a.shards, 4);
        assert_eq!(parse(&args("g.gr.index g.gr.adj.0")).unwrap().shards, 1);
        assert!(parse(&args("-shards 0 g.gr.index g.gr.adj.0")).is_err());
        assert!(parse(&args("-shards x g.gr.index g.gr.adj.0")).is_err());
        assert!(parse(&args("-shards")).is_err());
    }

    /// `-shards` shares the dataset tools' duplicate rejection (and its
    /// diagnostic shape): two values mean a mangled command line, even if
    /// they agree.
    #[test]
    fn rejects_duplicate_shards_flag() {
        for dup in [
            "-shards 2 -shards 4 g.gr.index g.gr.adj.0",
            "-shards 2 -shards 2 g.gr.index g.gr.adj.0",
        ] {
            let err = parse(&args(dup)).unwrap_err().to_string();
            assert!(
                err.contains("duplicate flag -shards (each may be given once)"),
                "input {dup:?} gave {err:?}"
            );
        }
    }

    #[test]
    fn parses_no_share_flag() {
        let a = parse(&args("-no-share g.gr.index g.gr.adj.0")).unwrap();
        assert!(a.no_share);
        assert!(!parse(&args("g.gr.index g.gr.adj.0")).unwrap().no_share);
    }

    /// `-no-share` shares the `FlagOnce` duplicate rejection and its
    /// exact diagnostic shape.
    #[test]
    fn rejects_duplicate_no_share_flag() {
        let err = parse(&args("-no-share -no-share g.gr.index g.gr.adj.0"))
            .unwrap_err()
            .to_string();
        assert!(
            err.contains("duplicate flag -no-share (each may be given once)"),
            "{err:?}"
        );
    }

    #[test]
    fn parses_k_flag() {
        let a = parse(&args("-k 4 g.gr.index g.gr.adj.0")).unwrap();
        assert_eq!(a.k, 4);
        assert_eq!(parse(&args("g.gr.index g.gr.adj.0")).unwrap().k, 2);
        assert!(parse(&args("-k 0 g.gr.index g.gr.adj.0")).is_err());
    }

    /// Satellite contract: `-jobs`, `-qd`, and `-cache-mb` all go through
    /// one parse helper, so their error messages share one shape for each
    /// failure class instead of drifting per flag.
    #[test]
    fn numeric_flags_report_uniform_errors() {
        let msg = |input: &str| parse(&args(input)).unwrap_err().to_string();
        // Missing value: "flag <f> needs a value".
        for flag in ["-jobs", "-qd", "-cache-mb"] {
            assert_eq!(
                msg(flag),
                format!("configuration error: flag {flag} needs a value")
            );
        }
        // Malformed value: "<f>: <v> is not a non-negative integer".
        for flag in ["-jobs", "-qd", "-cache-mb"] {
            assert_eq!(
                msg(&format!("{flag} x g.gr.index g.gr.adj.0")),
                format!("configuration error: {flag}: \"x\" is not a non-negative integer")
            );
            assert_eq!(
                msg(&format!("{flag} -3 g.gr.index g.gr.adj.0")),
                format!("configuration error: {flag}: \"-3\" is not a non-negative integer")
            );
        }
        // Below-minimum value: "<f> must be >= <min>"; zero stays legal
        // for -cache-mb (0 = cache disabled) and illegal for the rest.
        for flag in ["-jobs", "-qd"] {
            assert_eq!(
                msg(&format!("{flag} 0 g.gr.index g.gr.adj.0")),
                format!("configuration error: {flag} must be >= 1")
            );
        }
        let a = parse(&args("-cache-mb 0 g.gr.index g.gr.adj.0")).unwrap();
        assert_eq!(a.cache_mb, 0);
    }

    #[test]
    fn rejects_unknown_flags_and_missing_files() {
        assert!(parse(&args("-bogus 1 g.gr.index g.gr.adj.0")).is_err());
        assert!(parse(&args("-computeWorkers 4")).is_err());
        assert!(parse(&args("g.gr.index")).is_err());
        assert!(parse(&args("-computeWorkers")).is_err());
    }
}
