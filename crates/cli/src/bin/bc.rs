//! Artifact-style betweenness-centrality binary. Requires the transpose
//! via `-inIndexFilename` / `-inAdjFilenames` (as in the paper's appendix).

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match blaze_cli::parse(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("bc: {e}");
            std::process::exit(2);
        }
    };
    let Some(in_index) = cli.in_index.clone() else {
        eprintln!("bc: the transpose graph is required (-inIndexFilename / -inAdjFilenames)");
        std::process::exit(2);
    };
    let out_engine = blaze_cli::open_engine(&cli, &cli.index, &cli.adj).unwrap_or_else(|e| {
        eprintln!("bc: {e}");
        std::process::exit(1);
    });
    let in_engine = blaze_cli::open_engine(&cli, &in_index, &cli.in_adj).unwrap_or_else(|e| {
        eprintln!("bc: {e}");
        std::process::exit(1);
    });
    let t0 = std::time::Instant::now();
    let scores = blaze_algorithms::bc(&out_engine, &in_engine, cli.start_node, cli.mode)
        .unwrap_or_else(|e| {
            eprintln!("bc: {e}");
            std::process::exit(1);
        });
    let wall = t0.elapsed();
    blaze_cli::print_run_summary("bc", &out_engine, wall);
    let top = (0..out_engine.num_vertices())
        .max_by(|&a, &b| scores.get(a).total_cmp(&scores.get(b)))
        .unwrap_or(0);
    println!("top broker: vertex {top} (score {:.2})", scores.get(top));
}
