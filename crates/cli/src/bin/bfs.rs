//! Artifact-style BFS binary.
//!
//! ```sh
//! bfs -computeWorkers 16 -startNode 0 rmat27.gr.index rmat27.gr.adj.0
//! ```

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match blaze_cli::parse(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("bfs: {e}");
            std::process::exit(2);
        }
    };
    let engine = match blaze_cli::open_engine(&cli, &cli.index, &cli.adj) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("bfs: {e}");
            std::process::exit(1);
        }
    };
    let t0 = std::time::Instant::now();
    let parent = blaze_algorithms::bfs(&engine, cli.start_node, blaze_algorithms::ExecMode::Binned)
        .unwrap_or_else(|e| {
            eprintln!("bfs: {e}");
            std::process::exit(1);
        });
    let wall = t0.elapsed();
    let reached = (0..engine.num_vertices())
        .filter(|&v| parent.get(v) != -1)
        .count();
    blaze_cli::print_run_summary("bfs", &engine, wall);
    println!("reached {reached} vertices from root {}", cli.start_node);
}
