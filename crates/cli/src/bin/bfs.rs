//! Artifact-style BFS binary.
//!
//! ```sh
//! bfs -computeWorkers 16 -startNode 0 rmat27.gr.index rmat27.gr.adj.0
//! ```
//!
//! With `-jobs N` (default 1), N copies of the query are submitted from
//! separate threads against the one engine; the persistent runtime
//! interleaves them on its shared IO/scatter/gather workers.
//!
//! `-cache-mb N` gives the IO workers a clock page cache of N MiB
//! (default 0, i.e. no cache — matching the published system).
//!
//! `-qd N` sets the per-device IO queue depth (default 1, the published
//! engine's synchronous backend; deeper windows switch to the threaded
//! backend and keep up to N requests in flight per device).
//!
//! `-mode binned|sync|async` picks the execution mode; `async` drops the
//! per-iteration barrier and drains a priority frontier bucketed by BFS
//! level.
//!
//! `-shards N` (default 1) runs the graph as a concurrent
//! destination-partitioned cluster of N engines exchanging frontier
//! deltas; the summary's `shards:` line reports per-shard device bytes
//! and the measured exchange traffic.

use std::thread;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match blaze_cli::parse(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("bfs: {e}");
            std::process::exit(2);
        }
    };
    if cli.shards > 1 {
        let cluster = blaze_cli::open_cluster(&cli, &cli.index, &cli.adj).unwrap_or_else(|e| {
            eprintln!("bfs: {e}");
            std::process::exit(1);
        });
        let t0 = std::time::Instant::now();
        let levels = blaze_algorithms::sharded_bfs(&cluster, cli.start_node).unwrap_or_else(|e| {
            eprintln!("bfs: {e}");
            std::process::exit(1);
        });
        let wall = t0.elapsed();
        let reached = (0..cluster.num_vertices())
            .filter(|&v| levels.get(v) != -1)
            .count();
        blaze_cli::print_cluster_summary("bfs", &cluster, wall);
        println!("reached {reached} vertices from root {}", cli.start_node);
        return;
    }
    let engine = match blaze_cli::open_engine(&cli, &cli.index, &cli.adj) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("bfs: {e}");
            std::process::exit(1);
        }
    };
    let t0 = std::time::Instant::now();
    let parents: Vec<_> = thread::scope(|s| {
        let handles: Vec<_> = (0..cli.jobs)
            .map(|_| {
                let engine = &engine;
                s.spawn(move || blaze_algorithms::bfs(engine, cli.start_node, cli.mode))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("bfs job panicked"))
            .collect()
    });
    let wall = t0.elapsed();
    let parent = parents
        .into_iter()
        .collect::<Result<Vec<_>, _>>()
        .unwrap_or_else(|e| {
            eprintln!("bfs: {e}");
            std::process::exit(1);
        })
        .pop()
        .expect("-jobs guarantees at least one run");
    let reached = (0..engine.num_vertices())
        .filter(|&v| parent.get(v) != -1)
        .count();
    blaze_cli::print_run_summary("bfs", &engine, wall);
    if cli.jobs > 1 {
        println!("{} concurrent jobs over one engine", cli.jobs);
    }
    println!("reached {reached} vertices from root {}", cli.start_node);
}
