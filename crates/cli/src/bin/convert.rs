//! Converts a text or binary edge list into the Blaze on-disk format
//! (`.gr.index` + striped `.gr.adj.<i>`, plus the `.tgr.*` transpose).
//!
//! ```sh
//! convert edges.txt /data/mygraph --stripes 2 --dedup
//! ```

use blaze_graph::disk::save_files;
use blaze_graph::io::{read_edge_list_binary, read_edge_list_file};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional = Vec::new();
    let mut stripes = 1usize;
    let mut dedup = false;
    let mut binary = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--stripes" => {
                stripes = it.next().and_then(|v| v.parse().ok()).unwrap_or(0);
                if stripes == 0 {
                    eprintln!("convert: bad --stripes");
                    std::process::exit(2);
                }
            }
            "--dedup" => dedup = true,
            "--binary" => binary = true,
            other => positional.push(other.to_string()),
        }
    }
    if positional.len() != 2 {
        eprintln!(
            "usage: convert <edge-list-file> <output-base> [--stripes N] [--dedup] [--binary]"
        );
        eprintln!("  output-base like /data/mygraph produces mygraph.gr.* and mygraph.tgr.*");
        std::process::exit(2);
    }
    let input = &positional[0];
    let out_base = std::path::PathBuf::from(&positional[1]);
    let dir = out_base.parent().unwrap_or(std::path::Path::new("."));
    let name = out_base
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("graph");
    std::fs::create_dir_all(dir).expect("create output dir");

    let csr = if binary {
        let f = std::fs::File::open(input).unwrap_or_else(|e| {
            eprintln!("convert: cannot open {input}: {e}");
            std::process::exit(1);
        });
        read_edge_list_binary(f, dedup)
    } else {
        read_edge_list_file(input, dedup)
    }
    .unwrap_or_else(|e| {
        eprintln!("convert: {e}");
        std::process::exit(1);
    });
    println!(
        "parsed {} vertices, {} edges",
        csr.num_vertices(),
        csr.num_edges()
    );
    let transpose = csr.transpose();
    let (gi, ga) = save_files(&csr, dir, &format!("{name}.gr"), stripes).expect("write out-edges");
    let (ti, ta) =
        save_files(&transpose, dir, &format!("{name}.tgr"), stripes).expect("write transpose");
    for p in [gi, ti].iter().chain(ga.iter()).chain(ta.iter()) {
        println!("wrote {}", p.display());
    }
}
