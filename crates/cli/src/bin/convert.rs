//! Converts a text or binary edge list into the Blaze on-disk format
//! (`.gr.index` + striped `.gr.adj.<i>`, plus the `.tgr.*` transpose).
//!
//! ```sh
//! convert edges.txt /data/mygraph --stripes 2 --dedup --layout degree
//! ```
//!
//! `--layout degree|hub` relabels vertices into a degree-aware physical
//! order before writing; queries still speak original ids.

use blaze_cli::toolargs::{parse_tool_args, write_graph_pair, COMMON_USAGE};
use blaze_graph::io::{read_edge_list_binary, read_edge_list_file};

fn main() {
    let args = parse_tool_args(
        "convert",
        std::env::args().skip(1),
        &["--dedup", "--binary"],
        &[],
    );
    if args.positional.len() != 2 {
        eprintln!(
            "usage: convert <edge-list-file> <output-base> {COMMON_USAGE} [--dedup] [--binary]"
        );
        eprintln!("  output-base like /data/mygraph produces mygraph.gr.* and mygraph.tgr.*");
        std::process::exit(2);
    }
    let dedup = args.has_flag("--dedup");
    let input = &args.positional[0];
    let out_base = std::path::PathBuf::from(&args.positional[1]);
    let dir = out_base.parent().unwrap_or(std::path::Path::new("."));
    let name = out_base
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("graph");
    std::fs::create_dir_all(dir).expect("create output dir");

    let csr = if args.has_flag("--binary") {
        let f = std::fs::File::open(input).unwrap_or_else(|e| {
            eprintln!("convert: cannot open {input}: {e}");
            std::process::exit(1);
        });
        read_edge_list_binary(f, dedup)
    } else {
        read_edge_list_file(input, dedup)
    }
    .unwrap_or_else(|e| {
        eprintln!("convert: {e}");
        std::process::exit(1);
    });
    println!(
        "parsed {} vertices, {} edges ({} layout)",
        csr.num_vertices(),
        csr.num_edges(),
        args.layout.name()
    );
    let paths = write_graph_pair(&csr, dir, name, args.stripes, args.layout).unwrap_or_else(|e| {
        eprintln!("convert: {e}");
        std::process::exit(1);
    });
    for p in &paths {
        println!("wrote {}", p.display());
    }
}
