//! Generates the paper's datasets to artifact-style files.
//!
//! ```sh
//! gengraph rmat27 /data --scale tiny --stripes 1 --layout degree
//! ```
//!
//! Produces `<name>.gr.index`, `<name>.gr.adj.<i>` (out-edges) and the
//! `.tgr.*` transpose set, exactly the files the query binaries take.
//! `--layout degree|hub` relabels vertices into a degree-aware physical
//! order before writing; queries still speak original ids.

use blaze_cli::toolargs::{parse_tool_args, write_graph_pair, COMMON_USAGE};
use blaze_graph::{Dataset, DatasetScale};

fn main() {
    let args = parse_tool_args("gengraph", std::env::args().skip(1), &[], &["--scale"]);
    let scale = match args.value_of("--scale") {
        None | Some("tiny") => DatasetScale::Tiny,
        Some("small") => DatasetScale::Small,
        Some("medium") => DatasetScale::Medium,
        Some(other) => {
            eprintln!("gengraph: bad --scale {other:?}");
            std::process::exit(2);
        }
    };
    if args.positional.len() != 2 {
        eprintln!(
            "usage: gengraph <dataset> <output-dir> [--scale tiny|small|medium] {COMMON_USAGE}"
        );
        eprintln!("datasets: {}", Dataset::all().map(|d| d.name()).join(", "));
        std::process::exit(2);
    }
    let Some(dataset) = Dataset::from_name(&args.positional[0]) else {
        eprintln!("gengraph: unknown dataset {}", args.positional[0]);
        std::process::exit(2);
    };
    let dir = std::path::PathBuf::from(&args.positional[1]);
    std::fs::create_dir_all(&dir).expect("create output dir");

    println!(
        "generating {dataset} at {scale:?} scale ({} layout)...",
        args.layout.name()
    );
    let csr = dataset.generate(scale);
    println!(
        "  {} vertices, {} edges",
        csr.num_vertices(),
        csr.num_edges()
    );
    let paths = write_graph_pair(&csr, &dir, dataset.name(), args.stripes, args.layout)
        .unwrap_or_else(|e| {
            eprintln!("gengraph: {e}");
            std::process::exit(1);
        });
    for p in &paths {
        let len = std::fs::metadata(p).map(|m| m.len()).unwrap_or(0);
        println!("  wrote {} ({} bytes)", p.display(), len);
    }
}
