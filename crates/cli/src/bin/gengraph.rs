//! Generates the paper's datasets to artifact-style files.
//!
//! ```sh
//! gengraph rmat27 /data --scale tiny --stripes 1
//! ```
//!
//! Produces `<name>.gr.index`, `<name>.gr.adj.<i>` (out-edges) and the
//! `.tgr.*` transpose set, exactly the files the query binaries take.

use blaze_graph::disk::save_files;
use blaze_graph::{Dataset, DatasetScale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional = Vec::new();
    let mut scale = DatasetScale::Tiny;
    let mut stripes = 1usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                scale = match it.next().map(String::as_str) {
                    Some("tiny") => DatasetScale::Tiny,
                    Some("small") => DatasetScale::Small,
                    Some("medium") => DatasetScale::Medium,
                    other => {
                        eprintln!("gengraph: bad --scale {other:?}");
                        std::process::exit(2);
                    }
                };
            }
            "--stripes" => {
                stripes = it.next().and_then(|v| v.parse().ok()).unwrap_or(0);
                if stripes == 0 {
                    eprintln!("gengraph: bad --stripes");
                    std::process::exit(2);
                }
            }
            other => positional.push(other.to_string()),
        }
    }
    if positional.len() != 2 {
        eprintln!(
            "usage: gengraph <dataset> <output-dir> [--scale tiny|small|medium] [--stripes N]"
        );
        eprintln!("datasets: {}", Dataset::all().map(|d| d.name()).join(", "));
        std::process::exit(2);
    }
    let Some(dataset) = Dataset::from_name(&positional[0]) else {
        eprintln!("gengraph: unknown dataset {}", positional[0]);
        std::process::exit(2);
    };
    let dir = std::path::PathBuf::from(&positional[1]);
    std::fs::create_dir_all(&dir).expect("create output dir");

    println!("generating {dataset} at {scale:?} scale...");
    let csr = dataset.generate(scale);
    let transpose = csr.transpose();
    println!(
        "  {} vertices, {} edges",
        csr.num_vertices(),
        csr.num_edges()
    );
    let (gi, ga) = save_files(&csr, &dir, &format!("{}.gr", dataset.name()), stripes)
        .expect("write out-edges");
    let (ti, ta) = save_files(
        &transpose,
        &dir,
        &format!("{}.tgr", dataset.name()),
        stripes,
    )
    .expect("write transpose");
    for p in [gi, ti].iter().chain(ga.iter()).chain(ta.iter()) {
        let len = std::fs::metadata(p).map(|m| m.len()).unwrap_or(0);
        println!("  wrote {} ({} bytes)", p.display(), len);
    }
}
