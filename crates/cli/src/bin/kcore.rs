//! Artifact-style k-core binary. Requires the transpose via
//! `-inIndexFilename` / `-inAdjFilenames` (degrees and peeling run over
//! the undirected view). `-k N` sets the core threshold (default 2);
//! `-mode binned|sync|async` picks the execution mode.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match blaze_cli::parse(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("kcore: {e}");
            std::process::exit(2);
        }
    };
    let Some(in_index) = cli.in_index.clone() else {
        eprintln!("kcore: the transpose graph is required (-inIndexFilename / -inAdjFilenames)");
        std::process::exit(2);
    };
    let out_engine = blaze_cli::open_engine(&cli, &cli.index, &cli.adj).unwrap_or_else(|e| {
        eprintln!("kcore: {e}");
        std::process::exit(1);
    });
    let in_engine = blaze_cli::open_engine(&cli, &in_index, &cli.in_adj).unwrap_or_else(|e| {
        eprintln!("kcore: {e}");
        std::process::exit(1);
    });
    let t0 = std::time::Instant::now();
    let alive =
        blaze_algorithms::kcore(&out_engine, &in_engine, cli.k, cli.mode).unwrap_or_else(|e| {
            eprintln!("kcore: {e}");
            std::process::exit(1);
        });
    let wall = t0.elapsed();
    blaze_cli::print_run_summary("kcore", &out_engine, wall);
    let survivors = (0..alive.len()).filter(|&v| alive.get(v) == 1).count();
    println!("{survivors} vertices in the {}-core", cli.k);
}
