//! Artifact-style forward label-propagation binary: every vertex converges
//! to the minimum original id among itself and its directed ancestors.
//! `-mode binned|sync|async` picks the execution mode.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match blaze_cli::parse(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("lp: {e}");
            std::process::exit(2);
        }
    };
    let engine = match blaze_cli::open_engine(&cli, &cli.index, &cli.adj) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("lp: {e}");
            std::process::exit(1);
        }
    };
    let t0 = std::time::Instant::now();
    let labels = blaze_algorithms::label_propagation(&engine, cli.mode).unwrap_or_else(|e| {
        eprintln!("lp: {e}");
        std::process::exit(1);
    });
    let wall = t0.elapsed();
    blaze_cli::print_run_summary("lp", &engine, wall);
    let mut distinct: Vec<u32> = (0..labels.len()).map(|v| labels.get(v)).collect();
    distinct.sort_unstable();
    distinct.dedup();
    println!("{} distinct propagation labels", distinct.len());
}
