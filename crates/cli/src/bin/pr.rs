//! Artifact-style PageRank (delta variant) binary.
//!
//! `-cache-mb N` gives the IO workers a clock page cache of N MiB
//! (default 0 = no cache); PageRank's repeated near-full scans are where
//! a warm cache saves the most device bytes. `-combine` merges
//! same-destination delta records in the scatter staging windows before
//! they reach the bins (the summary's "records combined" count).
//! `-shards N` runs a concurrent destination-partitioned cluster instead
//! of one engine.

use blaze_algorithms::{pagerank_delta, pagerank_delta_combined, PageRankConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match blaze_cli::parse(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("pr: {e}");
            std::process::exit(2);
        }
    };
    let config = PageRankConfig {
        max_iters: cli.max_iters,
        ..Default::default()
    };
    if cli.shards > 1 {
        if cli.combine {
            // Combining happens inside each shard's staging windows; the
            // sharded driver does not expose it yet.
            eprintln!("pr: -combine is not supported with -shards > 1");
            std::process::exit(2);
        }
        let cluster = blaze_cli::open_cluster(&cli, &cli.index, &cli.adj).unwrap_or_else(|e| {
            eprintln!("pr: {e}");
            std::process::exit(1);
        });
        let t0 = std::time::Instant::now();
        let ranks = blaze_algorithms::sharded_pagerank(&cluster, config).unwrap_or_else(|e| {
            eprintln!("pr: {e}");
            std::process::exit(1);
        });
        let wall = t0.elapsed();
        blaze_cli::print_cluster_summary("pr", &cluster, wall);
        let top = (0..cluster.num_vertices())
            .max_by(|&a, &b| ranks.get(a).total_cmp(&ranks.get(b)))
            .unwrap_or(0);
        println!("top-ranked vertex: {top} (rank {:.6})", ranks.get(top));
        return;
    }
    let engine = match blaze_cli::open_engine(&cli, &cli.index, &cli.adj) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("pr: {e}");
            std::process::exit(1);
        }
    };
    let t0 = std::time::Instant::now();
    let result = if cli.combine {
        pagerank_delta_combined(&engine, config)
    } else {
        // Non-monotone: -mode async comes back as a config error here.
        pagerank_delta(&engine, config, cli.mode)
    };
    let ranks = result.unwrap_or_else(|e| {
        eprintln!("pr: {e}");
        std::process::exit(1);
    });
    let wall = t0.elapsed();
    blaze_cli::print_run_summary("pr", &engine, wall);
    let top = (0..engine.num_vertices())
        .max_by(|&a, &b| ranks.get(a).total_cmp(&ranks.get(b)))
        .unwrap_or(0);
    println!("top-ranked vertex: {top} (rank {:.6})", ranks.get(top));
}
