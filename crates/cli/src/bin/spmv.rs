//! Artifact-style SpMV binary: computes `y = A^T x` with `x[i] = 1/(i+1)`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match blaze_cli::parse(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("spmv: {e}");
            std::process::exit(2);
        }
    };
    let engine = blaze_cli::open_engine(&cli, &cli.index, &cli.adj).unwrap_or_else(|e| {
        eprintln!("spmv: {e}");
        std::process::exit(1);
    });
    let x: Vec<f64> = (0..engine.num_vertices())
        .map(|i| 1.0 / (i + 1) as f64)
        .collect();
    let t0 = std::time::Instant::now();
    let y = blaze_algorithms::spmv(&engine, &x, cli.mode).unwrap_or_else(|e| {
        eprintln!("spmv: {e}");
        std::process::exit(1);
    });
    let wall = t0.elapsed();
    blaze_cli::print_run_summary("spmv", &engine, wall);
    let norm: f64 = (0..engine.num_vertices())
        .map(|v| y.get(v) * y.get(v))
        .sum();
    println!("|y|_2 = {:.6}", norm.sqrt());
}
