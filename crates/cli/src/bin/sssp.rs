//! Artifact-style SSSP binary over deterministic synthetic edge weights.
//!
//! ```sh
//! sssp -startNode 0 -mode async rmat27.gr.index rmat27.gr.adj.0
//! ```
//!
//! `-mode binned|sync|async` picks the execution mode; `async` is the
//! delta-stepping-flavoured configuration — the priority frontier buckets
//! vertices by tentative distance so near vertices settle first.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match blaze_cli::parse(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("sssp: {e}");
            std::process::exit(2);
        }
    };
    let engine = match blaze_cli::open_engine(&cli, &cli.index, &cli.adj) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("sssp: {e}");
            std::process::exit(1);
        }
    };
    let t0 = std::time::Instant::now();
    let dist = blaze_algorithms::sssp(&engine, cli.start_node, cli.mode).unwrap_or_else(|e| {
        eprintln!("sssp: {e}");
        std::process::exit(1);
    });
    let wall = t0.elapsed();
    blaze_cli::print_run_summary("sssp", &engine, wall);
    let mut reached = 0usize;
    let mut max_dist = 0u64;
    for v in 0..engine.num_vertices() {
        let d = dist.get(v);
        if d != blaze_algorithms::sssp::UNREACHED {
            reached += 1;
            max_dist = max_dist.max(d);
        }
    }
    println!(
        "settled {reached} vertices from root {} (eccentricity {max_dist})",
        cli.start_node
    );
}
