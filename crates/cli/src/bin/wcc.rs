//! Artifact-style WCC binary. Requires the transpose via
//! `-inIndexFilename` / `-inAdjFilenames`. `-cache-mb N` gives each
//! direction's IO workers a clock page cache of N MiB (default 0).
//! `-mode binned|sync|async` picks the execution mode. `-shards N` runs
//! both directions as concurrent destination-partitioned clusters.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match blaze_cli::parse(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("wcc: {e}");
            std::process::exit(2);
        }
    };
    let Some(in_index) = cli.in_index.clone() else {
        eprintln!("wcc: the transpose graph is required (-inIndexFilename / -inAdjFilenames)");
        std::process::exit(2);
    };
    if cli.shards > 1 {
        // Both file sets were written under one permutation (the dataset
        // tools guarantee it), which sharded_wcc asserts.
        let open = |index: &std::path::Path, adj: &[std::path::PathBuf]| {
            blaze_cli::open_cluster(&cli, index, adj).unwrap_or_else(|e| {
                eprintln!("wcc: {e}");
                std::process::exit(1);
            })
        };
        let out_cluster = open(&cli.index, &cli.adj);
        let in_cluster = open(&in_index, &cli.in_adj);
        let t0 = std::time::Instant::now();
        let labels = blaze_algorithms::sharded_wcc(&out_cluster, &in_cluster).unwrap_or_else(|e| {
            eprintln!("wcc: {e}");
            std::process::exit(1);
        });
        let wall = t0.elapsed();
        blaze_cli::print_cluster_summary("wcc", &out_cluster, wall);
        let mut roots: Vec<u32> = (0..labels.len()).map(|v| labels.get(v)).collect();
        roots.sort_unstable();
        roots.dedup();
        println!("{} weakly connected components", roots.len());
        return;
    }
    let out_engine = blaze_cli::open_engine(&cli, &cli.index, &cli.adj).unwrap_or_else(|e| {
        eprintln!("wcc: {e}");
        std::process::exit(1);
    });
    let in_engine = blaze_cli::open_engine(&cli, &in_index, &cli.in_adj).unwrap_or_else(|e| {
        eprintln!("wcc: {e}");
        std::process::exit(1);
    });
    let t0 = std::time::Instant::now();
    let labels = blaze_algorithms::wcc(&out_engine, &in_engine, cli.mode).unwrap_or_else(|e| {
        eprintln!("wcc: {e}");
        std::process::exit(1);
    });
    let wall = t0.elapsed();
    blaze_cli::print_run_summary("wcc", &out_engine, wall);
    let mut roots: Vec<u32> = (0..labels.len()).map(|v| labels.get(v)).collect();
    roots.sort_unstable();
    roots.dedup();
    println!("{} weakly connected components", roots.len());
}
