//! Shared plumbing for the artifact-style command-line binaries.
//!
//! The paper's artifact ships `bfs`, `pr`, `wcc`, `spmv`, and `bc` binaries
//! taking a `.gr.index` file plus one or more `.gr.adj.<i>` stripe files
//! and flags like `-computeWorkers`, `-startNode`, `-binSpace`,
//! `-binningRatio`, and `-binCount`. This crate reproduces that interface
//! (single-dash long flags included) over the Rust engine, plus a
//! `gengraph` tool that generates the scaled datasets to disk.

// The unsafe-audit rule (cargo xtask lint) keys off this: crates that
// need no unsafe code forbid it outright, so the audit scope cannot
// silently grow.
#![forbid(unsafe_code)]

pub mod args;
pub mod run;
pub mod toolargs;

pub use args::{parse, CliArgs};
pub use run::{open_cluster, open_engine, print_cluster_summary, print_run_summary};
pub use toolargs::{parse_tool_args, try_parse_tool_args, write_graph_pair, FlagOnce, ToolArgs};
