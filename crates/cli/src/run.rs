//! Engine and cluster construction from parsed CLI arguments.

use blaze_sync::Arc;
use std::path::{Path, PathBuf};

use blaze_binning::BinningConfig;
use blaze_core::{BlazeEngine, EngineOptions};
use blaze_graph::{DiskGraph, GraphBuilder};
use blaze_scaleout::Cluster;
use blaze_storage::{BlockDevice, DeviceProfile, FileDevice, SimDevice, StripedStorage};
use blaze_types::{BlazeError, Result};

use crate::args::CliArgs;

/// Resolves the `-device` flag to a simulation profile (`none` disables
/// the device model and runs on raw files).
fn profile_for(name: &str) -> Result<Option<DeviceProfile>> {
    Ok(match name {
        "optane" => Some(DeviceProfile::optane_p4800x()),
        "nand" => Some(DeviceProfile::nand_s3520()),
        "znand" => Some(DeviceProfile::znand_sz983()),
        "vnand" => Some(DeviceProfile::vnand_980pro()),
        "none" => None,
        other => {
            return Err(BlazeError::Config(format!(
                "unknown -device {other} (expected optane|nand|znand|vnand|none)"
            )))
        }
    })
}

/// Opens the stripe files into a device array, optionally wrapped in the
/// simulated-device model.
fn open_storage(adj: &[PathBuf], device: &str) -> Result<Arc<StripedStorage>> {
    let profile = profile_for(device)?;
    let devices: Vec<Arc<dyn BlockDevice>> = adj
        .iter()
        .map(|p| -> Result<Arc<dyn BlockDevice>> {
            let file = FileDevice::open(p)?;
            Ok(match &profile {
                Some(prof) => Arc::new(SimDevice::new(file, prof.clone())),
                None => Arc::new(file),
            })
        })
        .collect::<Result<_>>()?;
    Ok(Arc::new(StripedStorage::new(devices)?))
}

/// Resolves the binning/cache/worker flags into engine options.
/// `storage_bytes` feeds the bin-count heuristic when no explicit bin
/// space was given.
fn engine_options(args: &CliArgs, storage_bytes: u64) -> Result<EngineOptions> {
    let mut options = EngineOptions::default()
        .with_compute_workers(args.compute_workers.max(2), args.binning_ratio)
        .with_cache_bytes(args.cache_mb << 20)
        .with_queue_depth(args.queue_depth);
    if args.jobs > 1 && !args.no_share {
        // Concurrent identical queries scan the same pages; coalesce their
        // misses so N jobs cost ~1 job of device IO. One IO lane per job
        // lets every job's pump make independent progress.
        options = options
            .with_scan_sharing(true)
            .with_scan_share_lanes(args.jobs);
    }
    if args.bin_space_mib > 0 {
        options = options.with_binning(BinningConfig::new(
            args.bin_count,
            args.bin_space_mib << 20,
            blaze_types::DEFAULT_STAGING_RECORDS,
        )?);
    } else if args.bin_count != blaze_types::DEFAULT_BIN_COUNT {
        let heuristic = BinningConfig::for_graph(storage_bytes);
        options = options.with_binning(heuristic.with_bin_count(args.bin_count));
    }
    Ok(options)
}

/// Builds an engine over one graph direction.
pub fn open_engine(args: &CliArgs, index: &Path, adj: &[PathBuf]) -> Result<BlazeEngine> {
    let storage = open_storage(adj, &args.device)?;
    let graph = Arc::new(DiskGraph::open(index, storage)?);
    if args.start_node as usize >= graph.num_vertices() {
        return Err(BlazeError::Config(format!(
            "-startNode {} is out of range (graph has {} vertices)",
            args.start_node,
            graph.num_vertices()
        )));
    }
    let options = engine_options(args, graph.storage_bytes())?;
    BlazeEngine::new(graph, options)
}

/// Builds a `-shards N` scale-out cluster over one graph direction: the
/// on-disk graph is read back, repartitioned by destination, and each
/// shard gets its own engine (over `adj.len()` simulated devices) plus its
/// own pool thread. The written physical layout carries over, so results
/// match the single-engine run on the same files.
pub fn open_cluster(args: &CliArgs, index: &Path, adj: &[PathBuf]) -> Result<Cluster> {
    let graph = DiskGraph::open_files(index, adj)?;
    let n = graph.num_vertices();
    if args.start_node as usize >= n {
        return Err(BlazeError::Config(format!(
            "-startNode {} is out of range (graph has {} vertices)",
            args.start_node, n
        )));
    }
    let options = engine_options(args, graph.storage_bytes())?;
    let mut b = GraphBuilder::new(n);
    for v in 0..n as u32 {
        for w in graph.read_neighbors(v)? {
            b.add_edge(v, w);
        }
    }
    Cluster::build_physical(
        &b.build(),
        graph.layout().clone(),
        args.shards,
        adj.len().max(1),
        options,
    )
}

/// Prints the post-run summary every binary emits.
pub fn print_run_summary(query: &str, engine: &BlazeEngine, wall: std::time::Duration) {
    let stats = engine.stats();
    let graph = engine.graph();
    println!("== {query} done ==");
    println!(
        "graph: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );
    println!(
        "iterations: {}, edges processed: {}, bin records: {}",
        stats.iterations, stats.edges_processed, stats.records_produced
    );
    println!(
        "io: {} bytes in {} requests",
        stats.io_bytes, stats.io_requests
    );
    if engine.options().queue_depth > 1 {
        println!(
            "io queue: depth {} requested, {} max in flight",
            engine.options().queue_depth,
            stats.io_max_in_flight
        );
    }
    if let Some(cache) = engine.page_cache() {
        println!(
            "page cache: {} MiB budget, {} hits, {} misses, {} evictions",
            cache.capacity_bytes() >> 20,
            stats.cache_hit_pages,
            stats.cache_miss_pages,
            stats.cache_evictions
        );
        if cache.hot_pages() > 0 {
            println!(
                "hot region: {} pages, {} hot hits, {} hot admits",
                cache.hot_pages(),
                stats.cache_hot_hit_pages,
                stats.cache_hot_admits
            );
        }
    }
    if engine.options().scan_sharing {
        println!(
            "shared: {} pages ({} bytes) served from other jobs' reads, {} flights led",
            stats.shared_hit_pages, stats.shared_bytes, stats.flights_led
        );
    }
    if stats.async_rounds > 0 {
        println!(
            "async: {} rounds, {} activations, {} dedup-skipped pushes",
            stats.async_rounds, stats.async_activations, stats.async_dedup_skipped
        );
    }
    if stats.scatter_ns > 0 || stats.gather_ns > 0 {
        // Per-stage compute profile: worker-summed busy time, so totals can
        // exceed wall time when several workers overlap.
        println!(
            "compute: scatter {:.3} s, gather {:.3} s, io wait {:.3} s, {} records combined",
            stats.scatter_ns as f64 / 1e9,
            stats.gather_ns as f64 / 1e9,
            stats.io_wait_ns as f64 / 1e9,
            stats.records_combined
        );
    }
    let busy_ns: u64 = graph
        .storage()
        .devices()
        .iter()
        .map(|d| d.stats().busy_ns())
        .sum();
    if busy_ns > 0 {
        println!(
            "modeled device time: {:.3} s ({:.2} GB/s average)",
            busy_ns as f64 / 1e9,
            stats.io_bytes as f64 / busy_ns as f64
        );
    }
    println!("wall time: {:.3} s", wall.as_secs_f64());
}

/// Prints the post-run summary for a `-shards N` cluster run: the
/// `shards:` line carries per-shard device bytes and the measured
/// exchange traffic.
pub fn print_cluster_summary(query: &str, cluster: &Cluster, wall: std::time::Duration) {
    let stats = cluster.stats();
    println!("== {query} done ==");
    println!(
        "graph: {} vertices over {} shards",
        cluster.num_vertices(),
        cluster.num_machines()
    );
    let device_bytes: Vec<String> = stats
        .per_shard
        .iter()
        .map(|s| s.io_bytes.to_string())
        .collect();
    println!(
        "shards: {} device bytes per shard [{}], exchange {} wire bytes + {} value bytes \
         in {} messages over {} rounds",
        cluster.num_machines(),
        device_bytes.join(" "),
        stats.exchange_bytes,
        stats.exchange_value_bytes,
        stats.exchange_messages,
        stats.rounds
    );
    println!("io: {} bytes across all shards", stats.io_bytes);
    println!("wall time: {:.3} s", wall.as_secs_f64());
}

#[cfg(test)]
mod tests {
    use super::*;
    use blaze_graph::disk::save_files;
    use blaze_graph::gen::{rmat, RmatConfig};

    #[test]
    fn opens_engine_from_files_with_and_without_sim() {
        let g = rmat(&RmatConfig::new(7));
        let dir = tempfile::tempdir().unwrap();
        let (index, adj) = save_files(&g, dir.path(), "t.gr", 2).unwrap();
        for device in ["optane", "nand", "none"] {
            let args = CliArgs {
                device: device.into(),
                ..Default::default()
            };
            let engine = open_engine(&args, &index, &adj).unwrap();
            assert_eq!(engine.num_vertices(), g.num_vertices());
        }
    }

    #[test]
    fn custom_binning_flags_apply() {
        let g = rmat(&RmatConfig::new(6));
        let dir = tempfile::tempdir().unwrap();
        let (index, adj) = save_files(&g, dir.path(), "t.gr", 1).unwrap();
        let args = CliArgs {
            bin_space_mib: 2,
            bin_count: 64,
            ..Default::default()
        };
        let engine = open_engine(&args, &index, &adj).unwrap();
        assert_eq!(engine.binning().bin_count, 64);
        assert_eq!(engine.binning().bin_space_bytes, 2 << 20);
    }

    #[test]
    fn cache_flag_enables_engine_cache() {
        let g = rmat(&RmatConfig::new(6));
        let dir = tempfile::tempdir().unwrap();
        let (index, adj) = save_files(&g, dir.path(), "t.gr", 1).unwrap();
        let args = CliArgs {
            cache_mb: 8,
            ..Default::default()
        };
        let engine = open_engine(&args, &index, &adj).unwrap();
        let cache = engine.page_cache().expect("-cache-mb 8 enables the cache");
        assert_eq!(cache.capacity_bytes(), 8 << 20);
        let no_cache = open_engine(&CliArgs::default(), &index, &adj).unwrap();
        assert!(no_cache.page_cache().is_none(), "default stays uncached");
    }

    #[test]
    fn queue_depth_flag_selects_threaded_backend() {
        use blaze_storage::IoBackendKind;
        let g = rmat(&RmatConfig::new(6));
        let dir = tempfile::tempdir().unwrap();
        let (index, adj) = save_files(&g, dir.path(), "t.gr", 2).unwrap();
        let args = CliArgs {
            queue_depth: 16,
            ..Default::default()
        };
        let engine = open_engine(&args, &index, &adj).unwrap();
        assert_eq!(engine.options().queue_depth, 16);
        assert_eq!(engine.options().io_backend, IoBackendKind::Threaded);
        assert_eq!(engine.io_backend().queue_depth(), 16);
        let default = open_engine(&CliArgs::default(), &index, &adj).unwrap();
        assert_eq!(default.options().io_backend, IoBackendKind::Sync);
        assert_eq!(default.io_backend().queue_depth(), 1);
    }

    #[test]
    fn stats_carry_per_stage_compute_timings() {
        use blaze_frontier::VertexSubset;
        let g = rmat(&RmatConfig::new(8));
        let dir = tempfile::tempdir().unwrap();
        let (index, adj) = save_files(&g, dir.path(), "t.gr", 1).unwrap();
        let engine = open_engine(&CliArgs::default(), &index, &adj).unwrap();
        let frontier = VertexSubset::full(engine.num_vertices());
        engine
            .edge_map(&frontier, |s, _d| s, |_d, _v: u32| false, |_| true, false)
            .unwrap();
        let stats = engine.stats();
        assert!(stats.scatter_ns > 0, "scatter time must be recorded");
        assert!(stats.gather_ns > 0, "gather time must be recorded");
        assert_eq!(stats.records_combined, 0, "uncombined run combines nothing");
    }

    #[test]
    fn jobs_flag_enables_scan_sharing_and_no_share_disables_it() {
        let g = rmat(&RmatConfig::new(6));
        let dir = tempfile::tempdir().unwrap();
        let (index, adj) = save_files(&g, dir.path(), "t.gr", 1).unwrap();
        let shared = open_engine(
            &CliArgs {
                jobs: 4,
                ..Default::default()
            },
            &index,
            &adj,
        )
        .unwrap();
        assert!(shared.options().scan_sharing);
        assert_eq!(shared.options().scan_share_lanes, 4);
        for args in [
            CliArgs {
                jobs: 4,
                no_share: true,
                ..Default::default()
            },
            CliArgs::default(),
        ] {
            let engine = open_engine(&args, &index, &adj).unwrap();
            assert!(!engine.options().scan_sharing);
        }
    }

    #[test]
    fn unknown_device_is_rejected() {
        let g = rmat(&RmatConfig::new(6));
        let dir = tempfile::tempdir().unwrap();
        let (index, adj) = save_files(&g, dir.path(), "t.gr", 1).unwrap();
        let args = CliArgs {
            device: "floppy".into(),
            ..Default::default()
        };
        assert!(open_engine(&args, &index, &adj).is_err());
    }
}
