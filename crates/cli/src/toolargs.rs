//! Shared command-line plumbing for the dataset tools (`convert` and
//! `gengraph`): one flag parser so both speak the same dialect —
//! `--stripes N` and `--layout degree|hub|none` with identical error
//! messages and exit codes — plus one writer that lays a graph and its
//! transpose out under a single vertex permutation.

use std::path::{Path, PathBuf};

use blaze_graph::disk::{save_files_with_layout, LayoutMeta};
use blaze_graph::{Csr, VertexLayout};
use blaze_types::Result;

/// Common flags plus whatever tool-specific flags the caller declared.
#[derive(Debug)]
pub struct ToolArgs {
    /// Non-flag arguments, in order.
    pub positional: Vec<String>,
    /// `--stripes N` (default 1).
    pub stripes: usize,
    /// `--layout degree|hub|none` (default `none`).
    pub layout: VertexLayout,
    /// Tool-specific boolean switches that were present (from `switches`).
    pub flags: Vec<String>,
    /// Tool-specific `--flag value` pairs, in order (from `value_flags`).
    pub values: Vec<(String, String)>,
}

/// Tracks value-taking flags that may be given at most once. Silently
/// honoring only one of two contradictory values is how a
/// `--layout degree ... --layout none` typo corrupts a dataset — so the
/// dataset tools and the query binaries (`-shards`) share this one
/// rejection, with one diagnostic shape.
#[derive(Debug, Default)]
pub struct FlagOnce {
    seen: Vec<String>,
}

impl FlagOnce {
    /// An empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `flag`; errors if it was already recorded.
    pub fn check(&mut self, flag: &str) -> std::result::Result<(), String> {
        if self.seen.iter().any(|s| s == flag) {
            return Err(format!("duplicate flag {flag} (each may be given once)"));
        }
        self.seen.push(flag.to_string());
        Ok(())
    }
}

impl ToolArgs {
    /// Whether the boolean switch `name` was passed.
    pub fn has_flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// The last value passed for `name`, if any.
    pub fn value_of(&self, name: &str) -> Option<&str> {
        self.values
            .iter()
            .rev()
            .find(|(f, _)| f == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Parses `args` for `tool`. `switches` lists the tool's boolean flags
/// (e.g. `--dedup`), `value_flags` its flags taking one value (e.g.
/// `--scale`). Malformed common flags, unknown `--` flags, and repeated
/// value-taking flags print a `tool: ...` diagnostic and exit 2 — the
/// usage-error convention both tools share.
pub fn parse_tool_args(
    tool: &str,
    args: impl IntoIterator<Item = String>,
    switches: &[&str],
    value_flags: &[&str],
) -> ToolArgs {
    match try_parse_tool_args(args, switches, value_flags) {
        Ok(out) => out,
        Err(msg) => die(tool, &msg),
    }
}

/// [`parse_tool_args`] without the exit-2 policy: errors come back as the
/// diagnostic message so the rejection rules stay unit-testable.
pub fn try_parse_tool_args(
    args: impl IntoIterator<Item = String>,
    switches: &[&str],
    value_flags: &[&str],
) -> std::result::Result<ToolArgs, String> {
    let mut out = ToolArgs {
        positional: Vec::new(),
        stripes: 1,
        layout: VertexLayout::None,
        flags: Vec::new(),
        values: Vec::new(),
    };
    // Every value-taking flag — common or tool-specific — may be given at
    // most once; see [`FlagOnce`].
    let mut seen = FlagOnce::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--stripes" => {
                seen.check("--stripes")?;
                out.stripes = it.next().and_then(|v| v.parse().ok()).unwrap_or(0);
                if out.stripes == 0 {
                    return Err("bad --stripes (want a positive integer)".into());
                }
            }
            "--layout" => {
                seen.check("--layout")?;
                let v = it.next();
                out.layout = match v.as_deref().and_then(VertexLayout::parse) {
                    Some(l) => l,
                    None => {
                        return Err(format!(
                            "bad --layout {:?} (want degree|hub|none)",
                            v.as_deref().unwrap_or("")
                        ))
                    }
                };
            }
            s if switches.contains(&s) => out.flags.push(s.to_string()),
            s if value_flags.contains(&s) => {
                seen.check(s)?;
                match it.next() {
                    Some(v) => out.values.push((s.to_string(), v)),
                    None => return Err(format!("{s} needs a value")),
                }
            }
            s if s.starts_with("--") => return Err(format!("unknown flag {s}")),
            other => out.positional.push(other.to_string()),
        }
    }
    Ok(out)
}

/// The usage line fragment for the flags [`parse_tool_args`] handles
/// itself, so both tools advertise them identically.
pub const COMMON_USAGE: &str = "[--stripes N] [--layout degree|hub|none]";

fn die(tool: &str, msg: &str) -> ! {
    eprintln!("{tool}: {msg}");
    std::process::exit(2);
}

/// Plans `layout` on the out-edge CSR, relabels the graph *and* its
/// transpose under that one permutation, and writes both artifact file
/// sets (`<name>.gr.*`, `<name>.tgr.*`). Returns the written paths,
/// index files first. `--layout none` produces byte-identical output to
/// the pre-layout tools.
pub fn write_graph_pair(
    csr: &Csr,
    dir: &Path,
    name: &str,
    stripes: usize,
    layout: VertexLayout,
) -> Result<Vec<PathBuf>> {
    let (perm, hot_vertices) = layout.plan(csr);
    let physical = perm.permute_csr(csr);
    let transpose = physical.transpose();
    let meta = LayoutMeta {
        kind: layout,
        hot_vertices,
        perm,
    };
    let (gi, ga) =
        save_files_with_layout(&physical, dir, &format!("{name}.gr"), stripes, Some(&meta))?;
    let (ti, ta) = save_files_with_layout(
        &transpose,
        dir,
        &format!("{name}.tgr"),
        stripes,
        Some(&meta),
    )?;
    let mut paths = vec![gi, ti];
    paths.extend(ga);
    paths.extend(ta);
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    fn parse(s: &str) -> std::result::Result<ToolArgs, String> {
        try_parse_tool_args(args(s), &["--dedup"], &["--scale"])
    }

    #[test]
    fn accepts_each_value_flag_once() {
        let a = parse("in out --stripes 2 --layout degree --scale tiny --dedup").unwrap();
        assert_eq!(a.positional, vec!["in", "out"]);
        assert_eq!(a.stripes, 2);
        assert_eq!(a.layout, VertexLayout::Degree);
        assert_eq!(a.value_of("--scale"), Some("tiny"));
        assert!(a.has_flag("--dedup"));
    }

    #[test]
    fn rejects_duplicate_value_flags_with_one_diagnostic() {
        for dup in [
            "in out --stripes 2 --stripes 4",
            "in out --layout degree --layout none",
            "in out --scale tiny --scale small",
        ] {
            let flag = dup.split_whitespace().nth(2).unwrap();
            assert_eq!(
                parse(dup).unwrap_err(),
                format!("duplicate flag {flag} (each may be given once)"),
                "input: {dup}"
            );
        }
        // Even an identical repeat is rejected — repetition is the signal
        // of a mangled command line, not the values disagreeing.
        assert!(parse("in out --layout hub --layout hub").is_err());
        // Boolean switches are idempotent and may repeat.
        assert!(parse("in out --dedup --dedup").is_ok());
    }

    #[test]
    fn rejects_zero_and_malformed_stripes() {
        assert_eq!(
            parse("in out --stripes 0").unwrap_err(),
            "bad --stripes (want a positive integer)"
        );
        assert!(parse("in out --stripes x").is_err());
        assert!(parse("in out --stripes").is_err());
    }
}
