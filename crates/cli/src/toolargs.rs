//! Shared command-line plumbing for the dataset tools (`convert` and
//! `gengraph`): one flag parser so both speak the same dialect —
//! `--stripes N` and `--layout degree|hub|none` with identical error
//! messages and exit codes — plus one writer that lays a graph and its
//! transpose out under a single vertex permutation.

use std::path::{Path, PathBuf};

use blaze_graph::disk::{save_files_with_layout, LayoutMeta};
use blaze_graph::{Csr, VertexLayout};
use blaze_types::Result;

/// Common flags plus whatever tool-specific flags the caller declared.
pub struct ToolArgs {
    /// Non-flag arguments, in order.
    pub positional: Vec<String>,
    /// `--stripes N` (default 1).
    pub stripes: usize,
    /// `--layout degree|hub|none` (default `none`).
    pub layout: VertexLayout,
    /// Tool-specific boolean switches that were present (from `switches`).
    pub flags: Vec<String>,
    /// Tool-specific `--flag value` pairs, in order (from `value_flags`).
    pub values: Vec<(String, String)>,
}

impl ToolArgs {
    /// Whether the boolean switch `name` was passed.
    pub fn has_flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// The last value passed for `name`, if any.
    pub fn value_of(&self, name: &str) -> Option<&str> {
        self.values
            .iter()
            .rev()
            .find(|(f, _)| f == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Parses `args` for `tool`. `switches` lists the tool's boolean flags
/// (e.g. `--dedup`), `value_flags` its flags taking one value (e.g.
/// `--scale`). Malformed common flags and unknown `--` flags print a
/// `tool: ...` diagnostic and exit 2 — the usage-error convention both
/// tools share.
pub fn parse_tool_args(
    tool: &str,
    args: impl IntoIterator<Item = String>,
    switches: &[&str],
    value_flags: &[&str],
) -> ToolArgs {
    let mut out = ToolArgs {
        positional: Vec::new(),
        stripes: 1,
        layout: VertexLayout::None,
        flags: Vec::new(),
        values: Vec::new(),
    };
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--stripes" => {
                out.stripes = it.next().and_then(|v| v.parse().ok()).unwrap_or(0);
                if out.stripes == 0 {
                    die(tool, "bad --stripes (want a positive integer)");
                }
            }
            "--layout" => {
                let v = it.next();
                out.layout = match v.as_deref().and_then(VertexLayout::parse) {
                    Some(l) => l,
                    None => die(
                        tool,
                        &format!(
                            "bad --layout {:?} (want degree|hub|none)",
                            v.as_deref().unwrap_or("")
                        ),
                    ),
                };
            }
            s if switches.contains(&s) => out.flags.push(s.to_string()),
            s if value_flags.contains(&s) => match it.next() {
                Some(v) => out.values.push((s.to_string(), v)),
                None => die(tool, &format!("{s} needs a value")),
            },
            s if s.starts_with("--") => die(tool, &format!("unknown flag {s}")),
            other => out.positional.push(other.to_string()),
        }
    }
    out
}

/// The usage line fragment for the flags [`parse_tool_args`] handles
/// itself, so both tools advertise them identically.
pub const COMMON_USAGE: &str = "[--stripes N] [--layout degree|hub|none]";

fn die(tool: &str, msg: &str) -> ! {
    eprintln!("{tool}: {msg}");
    std::process::exit(2);
}

/// Plans `layout` on the out-edge CSR, relabels the graph *and* its
/// transpose under that one permutation, and writes both artifact file
/// sets (`<name>.gr.*`, `<name>.tgr.*`). Returns the written paths,
/// index files first. `--layout none` produces byte-identical output to
/// the pre-layout tools.
pub fn write_graph_pair(
    csr: &Csr,
    dir: &Path,
    name: &str,
    stripes: usize,
    layout: VertexLayout,
) -> Result<Vec<PathBuf>> {
    let (perm, hot_vertices) = layout.plan(csr);
    let physical = perm.permute_csr(csr);
    let transpose = physical.transpose();
    let meta = LayoutMeta {
        kind: layout,
        hot_vertices,
        perm,
    };
    let (gi, ga) =
        save_files_with_layout(&physical, dir, &format!("{name}.gr"), stripes, Some(&meta))?;
    let (ti, ta) = save_files_with_layout(
        &transpose,
        dir,
        &format!("{name}.tgr"),
        stripes,
        Some(&meta),
    )?;
    let mut paths = vec![gi, ti];
    paths.extend(ga);
    paths.extend(ta);
    Ok(paths)
}
