//! End-to-end tests of the artifact-style binaries: generate a graph with
//! `gengraph`, then run every query binary against the produced files,
//! exactly as the paper's appendix describes.

use std::path::Path;
use std::process::Command;

fn run(bin: &str, args: &[&str]) -> (bool, String) {
    let out = Command::new(bin).args(args).output().expect("spawn binary");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.success(), text)
}

fn gen_graph(dir: &Path) -> (String, String, String, String) {
    let (ok, text) = run(
        env!("CARGO_BIN_EXE_gengraph"),
        &[
            "rmat27",
            dir.to_str().unwrap(),
            "--scale",
            "tiny",
            "--stripes",
            "2",
        ],
    );
    assert!(ok, "gengraph failed: {text}");
    let p = |name: &str| dir.join(name).to_str().unwrap().to_string();
    (
        p("rmat27.gr.index"),
        p("rmat27.gr.adj.0"),
        p("rmat27.gr.adj.1"),
        p("rmat27.tgr.index"),
    )
}

#[test]
fn gengraph_then_bfs() {
    let dir = tempfile::tempdir().unwrap();
    let (index, adj0, adj1, _) = gen_graph(dir.path());
    let (ok, text) = run(
        env!("CARGO_BIN_EXE_bfs"),
        &[
            "-computeWorkers",
            "4",
            "-startNode",
            "0",
            &index,
            &adj0,
            &adj1,
        ],
    );
    assert!(ok, "bfs failed: {text}");
    assert!(text.contains("reached"), "{text}");
    assert!(text.contains("io:"), "{text}");
}

#[test]
fn pr_with_binning_flags() {
    let dir = tempfile::tempdir().unwrap();
    let (index, adj0, adj1, _) = gen_graph(dir.path());
    let (ok, text) = run(
        env!("CARGO_BIN_EXE_pr"),
        &[
            "-computeWorkers",
            "4",
            "-binSpace",
            "4",
            "-binningRatio",
            "0.5",
            "-binCount",
            "256",
            "-maxIters",
            "10",
            &index,
            &adj0,
            &adj1,
        ],
    );
    assert!(ok, "pr failed: {text}");
    assert!(text.contains("top-ranked vertex"), "{text}");
}

#[test]
fn wcc_requires_and_uses_transpose() {
    let dir = tempfile::tempdir().unwrap();
    let (index, adj0, adj1, tindex) = gen_graph(dir.path());
    // Without the transpose: usage error.
    let (ok, _) = run(env!("CARGO_BIN_EXE_wcc"), &[&index, &adj0, &adj1]);
    assert!(!ok, "wcc must demand the transpose");
    // With it: success.
    let tadj0 = dir
        .path()
        .join("rmat27.tgr.adj.0")
        .to_str()
        .unwrap()
        .to_string();
    let tadj1 = dir
        .path()
        .join("rmat27.tgr.adj.1")
        .to_str()
        .unwrap()
        .to_string();
    let (ok, text) = run(
        env!("CARGO_BIN_EXE_wcc"),
        &[
            &index,
            &adj0,
            &adj1,
            "-inIndexFilename",
            &tindex,
            "-inAdjFilenames",
            &format!("{tadj0},{tadj1}"),
        ],
    );
    assert!(ok, "wcc failed: {text}");
    assert!(text.contains("weakly connected components"), "{text}");
}

#[test]
fn spmv_and_bc_run() {
    let dir = tempfile::tempdir().unwrap();
    let (index, adj0, adj1, tindex) = gen_graph(dir.path());
    let (ok, text) = run(env!("CARGO_BIN_EXE_spmv"), &[&index, &adj0, &adj1]);
    assert!(ok, "spmv failed: {text}");
    assert!(text.contains("|y|_2"), "{text}");
    let tadj0 = dir
        .path()
        .join("rmat27.tgr.adj.0")
        .to_str()
        .unwrap()
        .to_string();
    let tadj1 = dir
        .path()
        .join("rmat27.tgr.adj.1")
        .to_str()
        .unwrap()
        .to_string();
    let (ok, text) = run(
        env!("CARGO_BIN_EXE_bc"),
        &[
            "-startNode",
            "0",
            &index,
            &adj0,
            &adj1,
            "-inIndexFilename",
            &tindex,
            "-inAdjFilenames",
            &format!("{tadj0},{tadj1}"),
        ],
    );
    assert!(ok, "bc failed: {text}");
    assert!(text.contains("top broker"), "{text}");
}

#[test]
fn bad_flags_exit_nonzero() {
    let (ok, text) = run(env!("CARGO_BIN_EXE_bfs"), &["-bogusFlag", "1"]);
    assert!(!ok);
    assert!(text.contains("unknown flag"), "{text}");
    let (ok, _) = run(
        env!("CARGO_BIN_EXE_bfs"),
        &["/does/not/exist.index", "/nope.adj.0"],
    );
    assert!(!ok);
}

/// The monotone queries give identical result lines in every execution
/// mode — async included — and the async runs advertise their rounds.
#[test]
fn async_mode_matches_binned_for_monotone_binaries() {
    let dir = tempfile::tempdir().unwrap();
    let (index, adj0, adj1, tindex) = gen_graph(dir.path());
    let tadj = format!(
        "{},{}",
        dir.path().join("rmat27.tgr.adj.0").to_str().unwrap(),
        dir.path().join("rmat27.tgr.adj.1").to_str().unwrap()
    );
    for (bin, key, extra) in [
        (env!("CARGO_BIN_EXE_bfs"), "reached", false),
        (env!("CARGO_BIN_EXE_sssp"), "settled", false),
        (
            env!("CARGO_BIN_EXE_lp"),
            "distinct propagation labels",
            false,
        ),
        (
            env!("CARGO_BIN_EXE_wcc"),
            "weakly connected components",
            true,
        ),
        (env!("CARGO_BIN_EXE_kcore"), "-core", true),
    ] {
        let mut results = Vec::new();
        for mode in ["binned", "sync", "async"] {
            let mut args = vec!["-mode", mode, &index, &adj0, &adj1];
            if extra {
                args.extend(["-inIndexFilename", &tindex, "-inAdjFilenames", &tadj]);
            }
            let (ok, text) = run(bin, &args);
            assert!(ok, "{bin} -mode {mode} failed: {text}");
            if mode == "async" {
                assert!(text.contains("async:"), "{bin} async summary line: {text}");
            }
            results.push(result_line(&text, key));
        }
        assert_eq!(results[0], results[1], "{bin}: sync differs from binned");
        assert_eq!(results[0], results[2], "{bin}: async differs from binned");
    }
}

/// Non-monotone queries refuse -mode async with a clear diagnostic.
#[test]
fn async_mode_is_rejected_by_non_monotone_binaries() {
    let dir = tempfile::tempdir().unwrap();
    let (index, adj0, adj1, _) = gen_graph(dir.path());
    for bin in [env!("CARGO_BIN_EXE_pr"), env!("CARGO_BIN_EXE_spmv")] {
        let (ok, text) = run(bin, &["-mode", "async", &index, &adj0, &adj1]);
        assert!(!ok, "{bin} must reject -mode async");
        assert!(text.contains("not monotone"), "{text}");
    }
    let (ok, text) = run(
        env!("CARGO_BIN_EXE_bfs"),
        &["-mode", "turbo", &index, &adj0],
    );
    assert!(!ok);
    assert!(text.contains("expected binned|sync|async"), "{text}");
}

/// Repeated value-taking flags are a usage error (exit 2) for both dataset
/// tools, with one shared diagnostic.
#[test]
fn duplicate_tool_flags_exit_two() {
    let dir = tempfile::tempdir().unwrap();
    let input = dir.path().join("e.txt");
    std::fs::write(&input, "0 1\n").unwrap();
    let out = dir.path().join("x");
    for dup in [
        ["--stripes", "2", "--stripes", "4"],
        ["--layout", "degree", "--layout", "none"],
    ] {
        let mut args = vec![input.to_str().unwrap(), out.to_str().unwrap()];
        args.extend(dup);
        let (ok, text) = run(env!("CARGO_BIN_EXE_convert"), &args);
        assert!(!ok, "convert must reject {dup:?}");
        assert!(text.contains("duplicate flag"), "{text}");
        let mut args = vec!["rmat27", dir.path().to_str().unwrap()];
        args.extend(dup);
        let (ok, text) = run(env!("CARGO_BIN_EXE_gengraph"), &args);
        assert!(!ok, "gengraph must reject {dup:?}");
        assert!(text.contains("duplicate flag"), "{text}");
    }
    let (ok, text) = run(
        env!("CARGO_BIN_EXE_gengraph"),
        &["rmat27", dir.path().to_str().unwrap(), "--stripes", "0"],
    );
    assert!(!ok, "gengraph must reject --stripes 0");
    assert!(text.contains("bad --stripes"), "{text}");
}

/// The result line each query binary prints, for cross-layout comparison.
fn result_line(text: &str, key: &str) -> String {
    text.lines()
        .find(|l| l.contains(key))
        .unwrap_or_else(|| panic!("no line containing {key:?} in: {text}"))
        .to_string()
}

/// Convert the same edge list under `--layout none` and `--layout degree`,
/// run every query binary against both file sets, and demand identical
/// result lines: the physical reordering must be invisible at the API.
#[test]
fn degree_layout_matches_unordered_results_for_every_binary() {
    let dir = tempfile::tempdir().unwrap();
    // Hub-heavy digraph: vertex 7 fans out to everything (so a degree
    // layout genuinely moves it), a chain adds depth, 9->7 closes the
    // weak component.
    let edges = "7 0\n7 1\n7 2\n7 3\n7 4\n7 5\n7 6\n7 8\n7 9\n\
                 0 1\n1 2\n2 3\n3 4\n4 5\n5 6\n8 9\n9 7\n";
    let input = dir.path().join("edges.txt");
    std::fs::write(&input, edges).unwrap();
    let mut outputs: Vec<Vec<String>> = Vec::new();
    for layout in ["none", "degree"] {
        let base = dir.path().join(layout).join("g");
        let (ok, text) = run(
            env!("CARGO_BIN_EXE_convert"),
            &[
                input.to_str().unwrap(),
                base.to_str().unwrap(),
                "--stripes",
                "2",
                "--layout",
                layout,
            ],
        );
        assert!(ok, "convert --layout {layout} failed: {text}");
        let p = |s: &str| {
            dir.path()
                .join(layout)
                .join(s)
                .to_str()
                .unwrap()
                .to_string()
        };
        let index = p("g.gr.index");
        let adj0 = p("g.gr.adj.0");
        let adj1 = p("g.gr.adj.1");
        let tindex = p("g.tgr.index");
        let tadj = format!("{},{}", p("g.tgr.adj.0"), p("g.tgr.adj.1"));
        let mut lines = Vec::new();
        let (ok, text) = run(
            env!("CARGO_BIN_EXE_bfs"),
            &["-startNode", "0", &index, &adj0, &adj1],
        );
        assert!(ok, "bfs ({layout}) failed: {text}");
        lines.push(result_line(&text, "reached"));
        let (ok, text) = run(env!("CARGO_BIN_EXE_pr"), &[&index, &adj0, &adj1]);
        assert!(ok, "pr ({layout}) failed: {text}");
        lines.push(result_line(&text, "top-ranked vertex"));
        let (ok, text) = run(
            env!("CARGO_BIN_EXE_wcc"),
            &[
                &index,
                &adj0,
                &adj1,
                "-inIndexFilename",
                &tindex,
                "-inAdjFilenames",
                &tadj,
            ],
        );
        assert!(ok, "wcc ({layout}) failed: {text}");
        lines.push(result_line(&text, "weakly connected components"));
        let (ok, text) = run(env!("CARGO_BIN_EXE_spmv"), &[&index, &adj0, &adj1]);
        assert!(ok, "spmv ({layout}) failed: {text}");
        lines.push(result_line(&text, "|y|_2"));
        let (ok, text) = run(
            env!("CARGO_BIN_EXE_bc"),
            &[
                "-startNode",
                "0",
                &index,
                &adj0,
                &adj1,
                "-inIndexFilename",
                &tindex,
                "-inAdjFilenames",
                &tadj,
            ],
        );
        assert!(ok, "bc ({layout}) failed: {text}");
        lines.push(result_line(&text, "top broker"));
        outputs.push(lines);
    }
    assert_eq!(
        outputs[0], outputs[1],
        "degree layout changed query results"
    );
}

#[test]
fn gengraph_hub_layout_then_bfs() {
    let dir = tempfile::tempdir().unwrap();
    let (ok, text) = run(
        env!("CARGO_BIN_EXE_gengraph"),
        &[
            "rmat27",
            dir.path().to_str().unwrap(),
            "--scale",
            "tiny",
            "--stripes",
            "2",
            "--layout",
            "hub",
        ],
    );
    assert!(ok, "gengraph --layout hub failed: {text}");
    let p = |name: &str| dir.path().join(name).to_str().unwrap().to_string();
    let (ok, text) = run(
        env!("CARGO_BIN_EXE_bfs"),
        &[
            "-startNode",
            "0",
            &p("rmat27.gr.index"),
            &p("rmat27.gr.adj.0"),
            &p("rmat27.gr.adj.1"),
        ],
    );
    assert!(ok, "bfs on hub-layout graph failed: {text}");
    assert!(text.contains("reached"), "{text}");
}

#[test]
fn bad_layout_flag_exits_nonzero_for_both_tools() {
    let dir = tempfile::tempdir().unwrap();
    let input = dir.path().join("e.txt");
    std::fs::write(&input, "0 1\n").unwrap();
    let (ok, text) = run(
        env!("CARGO_BIN_EXE_convert"),
        &[
            input.to_str().unwrap(),
            dir.path().join("x").to_str().unwrap(),
            "--layout",
            "zigzag",
        ],
    );
    assert!(!ok, "convert must reject --layout zigzag");
    assert!(text.contains("bad --layout"), "{text}");
    let (ok, text) = run(
        env!("CARGO_BIN_EXE_gengraph"),
        &["rmat27", dir.path().to_str().unwrap(), "--layout", "zigzag"],
    );
    assert!(!ok, "gengraph must reject --layout zigzag");
    assert!(text.contains("bad --layout"), "{text}");
}

/// `-shards N` runs the query as a concurrent destination-partitioned
/// cluster: the result line matches the single-engine run, and the summary
/// gains a `shards:` line with per-shard device bytes and exchange
/// traffic. A repeated `-shards` is a usage error with the dataset tools'
/// duplicate diagnostic.
#[test]
fn sharded_queries_match_single_engine_results() {
    let dir = tempfile::tempdir().unwrap();
    let (index, adj0, adj1, tindex) = gen_graph(dir.path());
    let tadj = format!(
        "{},{}",
        dir.path().join("rmat27.tgr.adj.0").to_str().unwrap(),
        dir.path().join("rmat27.tgr.adj.1").to_str().unwrap()
    );

    // BFS: identical "reached" line, sharded summary present.
    let (ok, text) = run(
        env!("CARGO_BIN_EXE_bfs"),
        &["-startNode", "0", &index, &adj0, &adj1],
    );
    assert!(ok, "bfs failed: {text}");
    let single = result_line(&text, "reached");
    let (ok, text) = run(
        env!("CARGO_BIN_EXE_bfs"),
        &["-startNode", "0", "-shards", "4", &index, &adj0, &adj1],
    );
    assert!(ok, "sharded bfs failed: {text}");
    assert_eq!(result_line(&text, "reached"), single);
    let shards_line = result_line(&text, "shards: 4");
    assert!(
        shards_line.contains("device bytes per shard") && shards_line.contains("exchange"),
        "{shards_line}"
    );

    // PageRank: the top-ranked vertex is stable (ranks agree to 1e-6;
    // the printed 6-decimal rank may wobble in the last digit).
    let (ok, text) = run(env!("CARGO_BIN_EXE_pr"), &[&index, &adj0, &adj1]);
    assert!(ok, "pr failed: {text}");
    let top = result_line(&text, "top-ranked vertex");
    let top_id = top.split(" (rank").next().unwrap().to_string();
    let (ok, text) = run(
        env!("CARGO_BIN_EXE_pr"),
        &["-shards", "2", &index, &adj0, &adj1],
    );
    assert!(ok, "sharded pr failed: {text}");
    assert!(
        result_line(&text, "top-ranked vertex").starts_with(&top_id),
        "{text}"
    );
    result_line(&text, "shards: 2");

    // WCC: identical component count across both sharded directions.
    let run_wcc = |extra: &[&str]| {
        let owned: Vec<String> = extra
            .iter()
            .map(|s| (*s).to_string())
            .chain([
                index.clone(),
                adj0.clone(),
                adj1.clone(),
                "-inIndexFilename".to_string(),
                tindex.clone(),
                "-inAdjFilenames".to_string(),
                tadj.clone(),
            ])
            .collect();
        let refs: Vec<&str> = owned.iter().map(String::as_str).collect();
        run(env!("CARGO_BIN_EXE_wcc"), &refs)
    };
    let (ok, text) = run_wcc(&[]);
    assert!(ok, "wcc failed: {text}");
    let components = result_line(&text, "weakly connected components");
    let (ok, text) = run_wcc(&["-shards", "3"]);
    assert!(ok, "sharded wcc failed: {text}");
    assert_eq!(
        result_line(&text, "weakly connected components"),
        components
    );
    result_line(&text, "shards: 3");

    // Duplicate -shards: usage error, shared diagnostic.
    let (ok, text) = run(
        env!("CARGO_BIN_EXE_bfs"),
        &["-shards", "2", "-shards", "4", &index, &adj0, &adj1],
    );
    assert!(!ok, "duplicate -shards must be rejected");
    assert!(text.contains("duplicate flag -shards"), "{text}");
}

#[test]
fn convert_text_edge_list_then_query() {
    let dir = tempfile::tempdir().unwrap();
    // A small ring + chords, with comments and duplicates.
    let edges = "# test graph\n0 1\n1 2\n2 3\n3 0\n0 2\n0 2\n";
    let input = dir.path().join("edges.txt");
    std::fs::write(&input, edges).unwrap();
    let base = dir.path().join("ring");
    let (ok, text) = run(
        env!("CARGO_BIN_EXE_convert"),
        &[
            input.to_str().unwrap(),
            base.to_str().unwrap(),
            "--dedup",
            "--stripes",
            "2",
        ],
    );
    assert!(ok, "convert failed: {text}");
    assert!(
        text.contains("5 edges"),
        "dedup should leave 5 edges: {text}"
    );
    let index = dir.path().join("ring.gr.index");
    let adj0 = dir.path().join("ring.gr.adj.0");
    let adj1 = dir.path().join("ring.gr.adj.1");
    let (ok, text) = run(
        env!("CARGO_BIN_EXE_bfs"),
        &[
            "-startNode",
            "0",
            index.to_str().unwrap(),
            adj0.to_str().unwrap(),
            adj1.to_str().unwrap(),
        ],
    );
    assert!(ok, "bfs on converted graph failed: {text}");
    assert!(text.contains("reached 4 vertices"), "{text}");
}
