//! End-to-end tests of the artifact-style binaries: generate a graph with
//! `gengraph`, then run every query binary against the produced files,
//! exactly as the paper's appendix describes.

use std::path::Path;
use std::process::Command;

fn run(bin: &str, args: &[&str]) -> (bool, String) {
    let out = Command::new(bin).args(args).output().expect("spawn binary");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.success(), text)
}

fn gen_graph(dir: &Path) -> (String, String, String, String) {
    let (ok, text) = run(
        env!("CARGO_BIN_EXE_gengraph"),
        &[
            "rmat27",
            dir.to_str().unwrap(),
            "--scale",
            "tiny",
            "--stripes",
            "2",
        ],
    );
    assert!(ok, "gengraph failed: {text}");
    let p = |name: &str| dir.join(name).to_str().unwrap().to_string();
    (
        p("rmat27.gr.index"),
        p("rmat27.gr.adj.0"),
        p("rmat27.gr.adj.1"),
        p("rmat27.tgr.index"),
    )
}

#[test]
fn gengraph_then_bfs() {
    let dir = tempfile::tempdir().unwrap();
    let (index, adj0, adj1, _) = gen_graph(dir.path());
    let (ok, text) = run(
        env!("CARGO_BIN_EXE_bfs"),
        &[
            "-computeWorkers",
            "4",
            "-startNode",
            "0",
            &index,
            &adj0,
            &adj1,
        ],
    );
    assert!(ok, "bfs failed: {text}");
    assert!(text.contains("reached"), "{text}");
    assert!(text.contains("io:"), "{text}");
}

#[test]
fn pr_with_binning_flags() {
    let dir = tempfile::tempdir().unwrap();
    let (index, adj0, adj1, _) = gen_graph(dir.path());
    let (ok, text) = run(
        env!("CARGO_BIN_EXE_pr"),
        &[
            "-computeWorkers",
            "4",
            "-binSpace",
            "4",
            "-binningRatio",
            "0.5",
            "-binCount",
            "256",
            "-maxIters",
            "10",
            &index,
            &adj0,
            &adj1,
        ],
    );
    assert!(ok, "pr failed: {text}");
    assert!(text.contains("top-ranked vertex"), "{text}");
}

#[test]
fn wcc_requires_and_uses_transpose() {
    let dir = tempfile::tempdir().unwrap();
    let (index, adj0, adj1, tindex) = gen_graph(dir.path());
    // Without the transpose: usage error.
    let (ok, _) = run(env!("CARGO_BIN_EXE_wcc"), &[&index, &adj0, &adj1]);
    assert!(!ok, "wcc must demand the transpose");
    // With it: success.
    let tadj0 = dir
        .path()
        .join("rmat27.tgr.adj.0")
        .to_str()
        .unwrap()
        .to_string();
    let tadj1 = dir
        .path()
        .join("rmat27.tgr.adj.1")
        .to_str()
        .unwrap()
        .to_string();
    let (ok, text) = run(
        env!("CARGO_BIN_EXE_wcc"),
        &[
            &index,
            &adj0,
            &adj1,
            "-inIndexFilename",
            &tindex,
            "-inAdjFilenames",
            &format!("{tadj0},{tadj1}"),
        ],
    );
    assert!(ok, "wcc failed: {text}");
    assert!(text.contains("weakly connected components"), "{text}");
}

#[test]
fn spmv_and_bc_run() {
    let dir = tempfile::tempdir().unwrap();
    let (index, adj0, adj1, tindex) = gen_graph(dir.path());
    let (ok, text) = run(env!("CARGO_BIN_EXE_spmv"), &[&index, &adj0, &adj1]);
    assert!(ok, "spmv failed: {text}");
    assert!(text.contains("|y|_2"), "{text}");
    let tadj0 = dir
        .path()
        .join("rmat27.tgr.adj.0")
        .to_str()
        .unwrap()
        .to_string();
    let tadj1 = dir
        .path()
        .join("rmat27.tgr.adj.1")
        .to_str()
        .unwrap()
        .to_string();
    let (ok, text) = run(
        env!("CARGO_BIN_EXE_bc"),
        &[
            "-startNode",
            "0",
            &index,
            &adj0,
            &adj1,
            "-inIndexFilename",
            &tindex,
            "-inAdjFilenames",
            &format!("{tadj0},{tadj1}"),
        ],
    );
    assert!(ok, "bc failed: {text}");
    assert!(text.contains("top broker"), "{text}");
}

#[test]
fn bad_flags_exit_nonzero() {
    let (ok, text) = run(env!("CARGO_BIN_EXE_bfs"), &["-bogusFlag", "1"]);
    assert!(!ok);
    assert!(text.contains("unknown flag"), "{text}");
    let (ok, _) = run(
        env!("CARGO_BIN_EXE_bfs"),
        &["/does/not/exist.index", "/nope.adj.0"],
    );
    assert!(!ok);
}

#[test]
fn convert_text_edge_list_then_query() {
    let dir = tempfile::tempdir().unwrap();
    // A small ring + chords, with comments and duplicates.
    let edges = "# test graph\n0 1\n1 2\n2 3\n3 0\n0 2\n0 2\n";
    let input = dir.path().join("edges.txt");
    std::fs::write(&input, edges).unwrap();
    let base = dir.path().join("ring");
    let (ok, text) = run(
        env!("CARGO_BIN_EXE_convert"),
        &[
            input.to_str().unwrap(),
            base.to_str().unwrap(),
            "--dedup",
            "--stripes",
            "2",
        ],
    );
    assert!(ok, "convert failed: {text}");
    assert!(
        text.contains("5 edges"),
        "dedup should leave 5 edges: {text}"
    );
    let index = dir.path().join("ring.gr.index");
    let adj0 = dir.path().join("ring.gr.adj.0");
    let adj1 = dir.path().join("ring.gr.adj.1");
    let (ok, text) = run(
        env!("CARGO_BIN_EXE_bfs"),
        &[
            "-startNode",
            "0",
            index.to_str().unwrap(),
            adj0.to_str().unwrap(),
            adj1.to_str().unwrap(),
        ],
    );
    assert!(ok, "bfs on converted graph failed: {text}");
    assert!(text.contains("reached 4 vertices"), "{text}");
}
