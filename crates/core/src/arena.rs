//! Checked-out bin/buffer arenas: `BinSpace` and `BufferPool` reuse across
//! jobs.
//!
//! The per-call pipeline allocated a fresh bin space (tens of MiB of record
//! buffers) and a fresh IO buffer pool for every `edge_map`, then dropped
//! both. With the persistent runtime, each job instead *checks out* an
//! arena from the engine, uses it exclusively for the job's lifetime, and
//! *recycles* it afterwards:
//!
//! * arenas are never shared between in-flight jobs — that is what lets
//!   independent jobs interleave through the shared worker pools without
//!   their buffer queues or bin back-pressure entangling;
//! * a recycled arena is [`reset`](blaze_binning::BinSpace::reset) /
//!   [`recycled`](blaze_storage::BufferPool::recycle) back to its pristine
//!   state and cached for the next checkout, capped at
//!   `EngineOptions::max_idle_arenas` idle entries;
//! * a job that fails (IO error) or panics does **not** recycle — its arena
//!   may have buffers stranded on unwound stacks, so the engine drops it
//!   and the next checkout allocates fresh. [`BufferPool::is_intact`]
//!   backstops this: a pool that lost buffers is refused at recycle time.
//!
//! Bin spaces are typed by their record value, so the cache stores them
//! type-erased (`Box<dyn Any>`) and a checkout scans for a matching
//! `BinSpace<V>` — a BFS (u32 records) and a PageRank (f64 records) running
//! against one engine each find or create their own.
//!
//! [`BufferPool::is_intact`]: blaze_storage::BufferPool::is_intact

use std::any::Any;

use blaze_sync::Mutex;

use blaze_binning::{BinSpace, BinValue, BinningConfig};
use blaze_storage::BufferPool;

/// The engine's cache of idle per-job arenas.
pub struct EngineArena {
    binning: BinningConfig,
    io_buffer_bytes: usize,
    pages_per_buffer: usize,
    /// Gather-affinity queue count for fresh bin spaces (the engine's
    /// `num_gather`).
    gather_queues: usize,
    max_idle: usize,
    pools: Mutex<Vec<BufferPool>>,
    spaces: Mutex<Vec<Box<dyn Any + Send>>>,
}

impl EngineArena {
    /// Creates an empty arena cache; checkouts allocate on demand using
    /// these parameters.
    pub fn new(
        binning: BinningConfig,
        io_buffer_bytes: usize,
        pages_per_buffer: usize,
        gather_queues: usize,
        max_idle: usize,
    ) -> Self {
        Self {
            binning,
            io_buffer_bytes,
            pages_per_buffer,
            gather_queues: gather_queues.max(1),
            max_idle,
            pools: Mutex::new(Vec::new()),
            spaces: Mutex::new(Vec::new()),
        }
    }

    /// The binning configuration checkout uses for fresh spaces.
    pub fn binning(&self) -> &BinningConfig {
        &self.binning
    }

    /// Checks out a buffer pool for one job: a cached idle pool if
    /// available, else a freshly allocated one.
    pub fn checkout_pool(&self) -> BufferPool {
        if let Some(pool) = self.pools.lock().pop() {
            return pool;
        }
        BufferPool::with_bytes_and_pages(self.io_buffer_bytes, self.pages_per_buffer)
    }

    /// Returns a pool after a *successful* job. The pool is drained back to
    /// pristine and cached unless the idle cap is reached or buffers went
    /// missing (then it is dropped).
    pub fn recycle_pool(&self, pool: BufferPool) {
        pool.recycle();
        if !pool.is_intact() {
            return;
        }
        let mut pools = self.pools.lock();
        if pools.len() < self.max_idle {
            pools.push(pool);
        }
    }

    /// Checks out a bin space for records of type `V`: a cached idle
    /// `BinSpace<V>` if one exists, else a freshly allocated one.
    pub fn checkout_space<V: BinValue>(&self) -> BinSpace<V> {
        {
            let mut spaces = self.spaces.lock();
            if let Some(pos) = spaces.iter().position(|s| s.is::<BinSpace<V>>()) {
                let boxed = spaces.remove(pos);
                drop(spaces);
                if let Ok(space) = boxed.downcast::<BinSpace<V>>() {
                    return *space;
                }
            }
        }
        BinSpace::with_gather_queues(self.binning.clone(), self.gather_queues)
    }

    /// Returns a bin space after a *successful* job, reset to pristine and
    /// cached unless the idle cap is reached.
    pub fn recycle_space<V: BinValue>(&self, space: BinSpace<V>) {
        space.reset();
        let mut spaces = self.spaces.lock();
        if spaces.len() < self.max_idle {
            spaces.push(Box::new(space));
        }
    }

    /// Number of idle cached entries (pools + spaces), for tests.
    pub fn idle_len(&self) -> usize {
        self.pools.lock().len() + self.spaces.lock().len()
    }
}

impl std::fmt::Debug for EngineArena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineArena")
            .field("idle_pools", &self.pools.lock().len())
            .field("idle_spaces", &self.spaces.lock().len())
            .field("max_idle", &self.max_idle)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arena(max_idle: usize) -> EngineArena {
        let binning = BinningConfig::new(4, 1 << 16, 4).unwrap();
        EngineArena::new(binning, 1 << 20, 4, 2, max_idle)
    }

    #[test]
    fn fresh_spaces_get_the_arena_gather_queue_count() {
        let a = arena(2);
        let s: BinSpace<u32> = a.checkout_space();
        assert_eq!(s.gather_queue_count(), 2);
    }

    #[test]
    fn pool_checkout_reuses_recycled_pool() {
        let a = arena(2);
        let pool = a.checkout_pool();
        let capacity = pool.capacity();
        a.recycle_pool(pool);
        assert_eq!(a.idle_len(), 1);
        let again = a.checkout_pool();
        assert_eq!(again.capacity(), capacity);
        assert_eq!(a.idle_len(), 0);
    }

    #[test]
    fn spaces_are_cached_per_value_type() {
        let a = arena(4);
        let s_u32: BinSpace<u32> = a.checkout_space();
        let s_f64: BinSpace<f64> = a.checkout_space();
        a.recycle_space(s_u32);
        a.recycle_space(s_f64);
        assert_eq!(a.idle_len(), 2);
        // A u32 checkout must get the u32 space back, leaving the f64 one.
        let _s: BinSpace<u32> = a.checkout_space();
        assert_eq!(a.idle_len(), 1);
        let _s: BinSpace<f64> = a.checkout_space();
        assert_eq!(a.idle_len(), 0);
    }

    #[test]
    fn idle_cap_bounds_the_cache() {
        let a = arena(1);
        let p1 = a.checkout_pool();
        let p2 = a.checkout_pool();
        a.recycle_pool(p1);
        a.recycle_pool(p2); // over the cap: dropped
        assert_eq!(a.idle_len(), 1);
    }

    #[test]
    fn non_intact_pool_is_refused() {
        let a = arena(2);
        let pool = a.checkout_pool();
        let lost = pool.try_acquire_free().unwrap();
        a.recycle_pool(pool);
        assert_eq!(a.idle_len(), 0, "pool missing a buffer must be dropped");
        drop(lost);
    }
}
