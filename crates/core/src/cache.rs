//! An LRU page cache for IO buffers.
//!
//! The published Blaze only recycles IO buffers randomly; the paper names
//! smarter eviction as future work after losing to FlashGraph's LRU page
//! cache on the high-locality sk2005 graph (Section V-B). This module
//! implements that future work: a concurrent, lazily-evicting LRU keyed by
//! global page id, optionally consulted by the engine's IO threads
//! ([`EngineOptions::page_cache_pages`](crate::EngineOptions)) and shared
//! with the FlashGraph-like baseline.

use blaze_sync::Arc;
use std::collections::HashMap;
use std::collections::VecDeque;

use blaze_sync::Mutex;

use blaze_types::PageId;

/// Inner state under one lock. Eviction is *lazy*: every touch appends a
/// `(page, stamp)` history entry and bumps the page's current stamp; on
/// insert, stale history entries pop off the front until a live victim
/// appears. Amortized O(1) per operation.
#[derive(Debug, Default)]
struct CacheInner {
    pages: HashMap<PageId, (Arc<[u8]>, u64)>,
    order: VecDeque<(PageId, u64)>,
    next_stamp: u64,
    hits: u64,
    misses: u64,
}

/// A concurrent LRU cache of 4 KiB adjacency pages.
#[derive(Debug)]
pub struct PageCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
}

impl PageCache {
    /// Creates a cache holding at most `capacity` pages. Capacity 0
    /// disables storage entirely (every lookup misses).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(CacheInner::default()),
            capacity,
        }
    }

    /// Page capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks `page` up, refreshing its recency on a hit.
    pub fn get(&self, page: PageId) -> Option<Arc<[u8]>> {
        let mut inner = self.inner.lock();
        let stamp = inner.next_stamp;
        inner.next_stamp += 1;
        if let Some(entry) = inner.pages.get_mut(&page) {
            entry.1 = stamp;
            let data = entry.0.clone();
            inner.order.push_back((page, stamp));
            inner.hits += 1;
            Some(data)
        } else {
            inner.misses += 1;
            None
        }
    }

    /// Inserts `page`, evicting least-recently-used pages as needed.
    pub fn insert(&self, page: PageId, data: Arc<[u8]>) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock();
        while inner.pages.len() >= self.capacity && !inner.pages.contains_key(&page) {
            let Some((victim, stamp)) = inner.order.pop_front() else {
                break;
            };
            if inner.pages.get(&victim).is_some_and(|(_, s)| *s == stamp) {
                inner.pages.remove(&victim);
            }
        }
        let stamp = inner.next_stamp;
        inner.next_stamp += 1;
        inner.pages.insert(page, (data, stamp));
        inner.order.push_back((page, stamp));
    }

    /// Current number of cached pages.
    pub fn len(&self) -> usize {
        self.inner.lock().pages.len()
    }

    /// Whether the cache holds no pages.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(hits, misses)` since construction or the last [`reset_stats`].
    ///
    /// [`reset_stats`]: Self::reset_stats
    pub fn stats(&self) -> (u64, u64) {
        let inner = self.inner.lock();
        (inner.hits, inner.misses)
    }

    /// Clears the hit/miss counters.
    pub fn reset_stats(&self) {
        let mut inner = self.inner.lock();
        inner.hits = 0;
        inner.misses = 0;
    }

    /// Bytes held by cached page data (excludes bookkeeping).
    pub fn memory_bytes(&self) -> u64 {
        (self.len() * blaze_types::PAGE_SIZE) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(byte: u8) -> Arc<[u8]> {
        vec![byte; 8].into()
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let c = PageCache::new(4);
        assert!(c.get(1).is_none());
        c.insert(1, page(1));
        assert_eq!(c.get(1).unwrap()[0], 1);
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn lru_evicts_coldest() {
        let c = PageCache::new(2);
        c.insert(1, page(1));
        c.insert(2, page(2));
        assert!(c.get(1).is_some()); // 1 is now hottest
        c.insert(3, page(3)); // evicts 2
        assert!(c.get(2).is_none());
        assert!(c.get(1).is_some());
        assert!(c.get(3).is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinserting_existing_page_does_not_evict_others() {
        let c = PageCache::new(2);
        c.insert(1, page(1));
        c.insert(2, page(2));
        c.insert(2, page(22)); // update, no eviction
        assert!(c.get(1).is_some());
        assert_eq!(c.get(2).unwrap()[0], 22);
    }

    #[test]
    fn zero_capacity_never_stores() {
        let c = PageCache::new(0);
        c.insert(9, page(9));
        assert!(c.get(9).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn heavy_reuse_stays_bounded() {
        let c = PageCache::new(8);
        for round in 0..100u64 {
            for p in 0..16u64 {
                if c.get(p).is_none() {
                    c.insert(p, page(p as u8));
                }
            }
            assert!(c.len() <= 8, "round {round}: len {}", c.len());
        }
        let (hits, misses) = c.stats();
        assert!(hits + misses == 1600);
    }

    #[test]
    fn concurrent_access_is_safe_and_bounded() {
        let c = Arc::new(PageCache::new(32));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..1000u64 {
                    let p = (t * 13 + i) % 64;
                    if c.get(p).is_none() {
                        c.insert(p, vec![p as u8; 4].into());
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(c.len() <= 32);
    }
}
