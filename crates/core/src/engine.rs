//! The out-of-core `EdgeMap` engine (Section IV-C, Figure 5).

use blaze_sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use blaze_sync::Arc;
use std::time::Instant;

use blaze_sync::Backoff;
use blaze_sync::Mutex;

use blaze_binning::{BinSpace, BinValue, BinningConfig, ScatterStaging};
use blaze_frontier::{PageSubset, VertexSubset};
use blaze_graph::DiskGraph;
use blaze_storage::buffer::FilledBuffer;
use blaze_storage::request::merge_pages_with_window;
use blaze_storage::BufferPool;
use blaze_types::{IterationTrace, Result, VertexId};

use crate::options::EngineOptions;
use crate::stats::{fill_io_trace, snapshot_devices, ExecStats};

/// Increments a counter when dropped — even if the owning thread panics in
/// user code, so peers waiting on the counter cannot spin forever.
struct CompletionGuard<'a> {
    counter: &'a AtomicUsize,
}

impl Drop for CompletionGuard<'_> {
    fn drop(&mut self) {
        self.counter.fetch_add(1, Ordering::Release); // sync-audit: trace counter; read only after the worker scope joins.
    }
}

/// The Blaze engine: binds a [`DiskGraph`] to thread-pool and binning
/// configuration and executes `EdgeMap`s over it.
pub struct BlazeEngine {
    graph: Arc<DiskGraph>,
    options: EngineOptions,
    binning: BinningConfig,
    pool: BufferPool,
    cache: Option<crate::cache::PageCache>,
    traces: Mutex<Vec<IterationTrace>>,
    stats: Mutex<ExecStats>,
}

impl BlazeEngine {
    /// Creates an engine over `graph`. Binning defaults to the paper's
    /// heuristics (5% of graph size, 1024 bins) unless overridden.
    pub fn new(graph: Arc<DiskGraph>, options: EngineOptions) -> Result<Self> {
        options.validate()?;
        let binning = options
            .binning
            .clone()
            .unwrap_or_else(|| BinningConfig::for_graph(graph.storage_bytes()));
        let pool = BufferPool::with_bytes_and_pages(
            options.io_buffer_bytes,
            options.merge_window.max(blaze_types::MAX_MERGED_PAGES),
        );
        let cache = (options.page_cache_pages > 0)
            .then(|| crate::cache::PageCache::new(options.page_cache_pages));
        Ok(Self {
            graph,
            options,
            binning,
            pool,
            cache,
            traces: Mutex::new(Vec::new()),
            stats: Mutex::new(ExecStats::default()),
        })
    }

    /// The LRU page cache, when enabled via
    /// [`EngineOptions::page_cache_pages`].
    pub fn page_cache(&self) -> Option<&crate::cache::PageCache> {
        self.cache.as_ref()
    }

    /// The graph this engine operates on.
    pub fn graph(&self) -> &Arc<DiskGraph> {
        &self.graph
    }

    /// Engine options.
    pub fn options(&self) -> &EngineOptions {
        &self.options
    }

    /// The effective binning configuration.
    pub fn binning(&self) -> &BinningConfig {
        &self.binning
    }

    /// Number of vertices of the underlying graph.
    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    /// Takes the recorded per-iteration work traces (and clears them).
    pub fn take_traces(&self) -> Vec<IterationTrace> {
        std::mem::take(&mut self.traces.lock())
    }

    /// Cumulative execution statistics.
    pub fn stats(&self) -> ExecStats {
        self.stats.lock().clone()
    }

    /// Transforms the vertex frontier into the per-device page frontier
    /// (Figure 5, step 1), in parallel over frontier chunks.
    pub fn build_page_subset(&self, frontier: &VertexSubset) -> PageSubset {
        let members = frontier.members();
        let num_devices = self.graph.storage().num_devices();
        let threads = self.options.compute_workers().max(1);
        if members.len() < 4096 || threads == 1 {
            let ranges = members
                .iter()
                .filter_map(|&v| self.graph.pages_of_vertex(v));
            return PageSubset::from_page_ranges(ranges, num_devices);
        }
        let chunk = members.len().div_ceil(threads);
        let parts: Vec<PageSubset> = blaze_sync::thread::scope(|s| {
            let handles: Vec<_> = members
                .chunks(chunk)
                .map(|slice| {
                    s.spawn(move || {
                        let ranges = slice.iter().filter_map(|&v| self.graph.pages_of_vertex(v));
                        PageSubset::from_page_ranges(ranges, num_devices)
                    })
                })
                .collect();
            handles
                .into_iter()
                // panic-audit: re-raises a worker thread's panic on the caller
                // (the same propagation std::thread::scope performs).
                .map(|h| h.join().expect("page transform panicked"))
                .collect()
        });
        PageSubset::merge(parts, num_devices)
    }

    /// Out-of-core `EdgeMap` with online binning.
    ///
    /// Runs `scatter(src, dst) -> value` for every edge `(src, dst)` with
    /// `src` in `frontier` and `cond(dst)` true; gather threads then apply
    /// `gather(dst, value) -> activate` to accumulate values into vertex
    /// data. When `output` is true, destinations for which `gather` returns
    /// `true` form the returned frontier.
    ///
    /// `gather` may update [`VertexArray`](crate::VertexArray)s with plain
    /// `get`/`set` — bin exclusivity guarantees a destination vertex is
    /// only touched by one gather thread at a time.
    pub fn edge_map<V, FS, FG, FC>(
        &self,
        frontier: &VertexSubset,
        scatter: FS,
        gather: FG,
        cond: FC,
        output: bool,
    ) -> Result<VertexSubset>
    where
        V: BinValue,
        FS: Fn(VertexId, VertexId) -> V + Sync,
        FG: Fn(VertexId, V) -> bool + Sync,
        FC: Fn(VertexId) -> bool + Sync,
    {
        self.run_edge_map(frontier, &scatter, &gather, &cond, output, false)
    }

    /// The synchronization-based variant (Figure 8b): no bins — scatter
    /// threads apply `gather` directly, so `gather` must perform its
    /// updates with atomic read-modify-write operations
    /// ([`VertexArray::fetch_update`](crate::VertexArray::fetch_update) /
    /// [`fetch_add`](crate::VertexArray::fetch_add)).
    pub fn edge_map_sync<V, FS, FG, FC>(
        &self,
        frontier: &VertexSubset,
        scatter: FS,
        gather: FG,
        cond: FC,
        output: bool,
    ) -> Result<VertexSubset>
    where
        V: BinValue,
        FS: Fn(VertexId, VertexId) -> V + Sync,
        FG: Fn(VertexId, V) -> bool + Sync,
        FC: Fn(VertexId) -> bool + Sync,
    {
        self.run_edge_map(frontier, &scatter, &gather, &cond, output, true)
    }

    /// One IO thread's work: fetch the device's local page list into
    /// filled buffers. Without a page cache, contiguous local pages merge
    /// into requests of up to `merge_window` pages. With the cache
    /// (the paper's future-work extension), cached pages are served from
    /// memory and only uncached runs touch the device.
    fn run_io_thread(&self, dev: usize, local_pages: &[u64], cache_hits: &AtomicU64) -> Result<()> {
        let storage = self.graph.storage();
        let read_run = |first: u64, n: usize| -> Result<()> {
            let mut buffer = self.pool.acquire_free();
            if let Err(e) = storage.read_local_run(dev, first, buffer.pages_mut(n)) {
                self.pool.release(buffer);
                return Err(e);
            }
            if let Some(cache) = &self.cache {
                for i in 0..n {
                    let global = storage.global_page(dev, first + i as u64);
                    let start = i * blaze_types::PAGE_SIZE;
                    cache.insert(
                        global,
                        buffer.pages(n)[start..start + blaze_types::PAGE_SIZE].into(),
                    );
                }
            }
            let globals = (0..n as u64)
                .map(|i| storage.global_page(dev, first + i))
                .collect();
            self.pool.push_filled(FilledBuffer {
                buffer,
                pages: globals,
            });
            Ok(())
        };
        let Some(cache) = &self.cache else {
            for req in merge_pages_with_window(local_pages, self.options.merge_window) {
                read_run(req.first_page, req.num_pages as usize)?;
            }
            return Ok(());
        };
        // Cached pages are delivered from memory; uncached pages still
        // merge into contiguous runs before hitting the device.
        let mut run: Vec<u64> = Vec::with_capacity(self.options.merge_window);
        let flush = |run: &mut Vec<u64>| -> Result<()> {
            if let Some(&first) = run.first() {
                read_run(first, run.len())?;
                run.clear();
            }
            Ok(())
        };
        for &local in local_pages {
            let global = storage.global_page(dev, local);
            if let Some(data) = cache.get(global) {
                flush(&mut run)?;
                cache_hits.fetch_add(1, Ordering::Relaxed); // sync-audit: trace counter; read only after the worker scope joins.
                let mut buffer = self.pool.acquire_free();
                buffer.pages_mut(1).copy_from_slice(&data);
                self.pool.push_filled(FilledBuffer {
                    buffer,
                    pages: vec![global],
                });
                continue;
            }
            let extends_run = run.last().is_some_and(|&last| local == last + 1)
                && run.len() < self.options.merge_window;
            if !extends_run {
                flush(&mut run)?;
            }
            run.push(local);
        }
        flush(&mut run)
    }

    fn run_edge_map<V, FS, FG, FC>(
        &self,
        frontier: &VertexSubset,
        scatter: &FS,
        gather: &FG,
        cond: &FC,
        output: bool,
        sync_variant: bool,
    ) -> Result<VertexSubset>
    where
        V: BinValue,
        FS: Fn(VertexId, VertexId) -> V + Sync,
        FG: Fn(VertexId, V) -> bool + Sync,
        FC: Fn(VertexId) -> bool + Sync,
    {
        let t0 = Instant::now();
        let storage = self.graph.storage();
        let num_devices = storage.num_devices();
        let before = snapshot_devices(storage);

        let pages = self.build_page_subset(frontier);
        let out = VertexSubset::new(self.graph.num_vertices());
        let space: BinSpace<V> = BinSpace::new(self.binning.clone());

        let io_done = AtomicUsize::new(0);
        let cache_hits = AtomicU64::new(0);
        let scatters_done = AtomicUsize::new(0);
        let all_scatter_done = AtomicBool::new(false);
        let edges_processed = AtomicU64::new(0);
        let records_sync = AtomicU64::new(0);
        let io_error: Mutex<Option<blaze_types::BlazeError>> = Mutex::new(None);

        let num_scatter = self.options.num_scatter;
        let num_gather = if sync_variant {
            0
        } else {
            self.options.num_gather
        };

        blaze_sync::thread::scope(|s| {
            // --- IO threads: one per device (Figure 5, steps 2-4). ---
            for dev in 0..num_devices {
                let pages = &pages;
                let io_done = &io_done;
                let io_error = &io_error;
                let cache_hits = &cache_hits;
                s.spawn(move || {
                    // Guard: even a panic inside the IO path (or user code
                    // reachable from it) must count the thread as done, or
                    // scatter threads would spin on `io_done` forever.
                    let _done = CompletionGuard { counter: io_done };
                    if let Err(e) = self.run_io_thread(dev, pages.local_pages(dev), cache_hits) {
                        *io_error.lock() = Some(e);
                    }
                });
            }

            // --- Scatter threads (steps 5-7). ---
            for _ in 0..num_scatter {
                let pool = &self.pool;
                let space = &space;
                let io_done = &io_done;
                let scatters_done = &scatters_done;
                let all_scatter_done = &all_scatter_done;
                let edges_processed = &edges_processed;
                let records_sync = &records_sync;
                let graph = &self.graph;
                let out = &out;
                s.spawn(move || {
                    // Guard: a panic in the user's scatter/cond closures
                    // still counts this thread as done; the last departing
                    // scatter (panicked or not) releases the gather side.
                    struct ScatterGuard<'a, V: BinValue> {
                        counter: &'a AtomicUsize,
                        total: usize,
                        space: &'a BinSpace<V>,
                        all_done: &'a AtomicBool,
                    }
                    impl<V: BinValue> Drop for ScatterGuard<'_, V> {
                        fn drop(&mut self) {
                            if self.counter.fetch_add(1, Ordering::AcqRel) + 1 == self.total {
                                // sync-audit: trace counter; read only after the worker scope joins.
                                self.space.flush_partials();
                                self.all_done.store(true, Ordering::Release);
                            }
                        }
                    }
                    let _done = ScatterGuard {
                        counter: scatters_done,
                        total: num_scatter,
                        space,
                        all_done: all_scatter_done,
                    };
                    let mut staging = ScatterStaging::new(space);
                    let mut scratch = Vec::new();
                    let mut local_edges = 0u64;
                    let mut local_records = 0u64;
                    let backoff = Backoff::new();
                    loop {
                        let Some(filled) = pool.pop_filled() else {
                            if io_done.load(Ordering::Acquire) == num_devices // sync-audit: trace counter; workers joined by the enclosing scope.
                                && pool.filled_len() == 0
                            {
                                break;
                            }
                            backoff.snooze();
                            continue;
                        };
                        backoff.reset();
                        for (i, &page) in filled.pages.iter().enumerate() {
                            let data = filled.page_data(i);
                            graph.for_each_vertex_in_page(page, data, &mut scratch, |src, dsts| {
                                if !frontier.contains(src) {
                                    return;
                                }
                                for &dst in dsts {
                                    local_edges += 1;
                                    if !cond(dst) {
                                        continue;
                                    }
                                    let value = scatter(src, dst);
                                    if sync_variant {
                                        // Apply directly with the user's
                                        // atomic gather — the CAS path.
                                        local_records += 1;
                                        if gather(dst, value) && output {
                                            out.insert(dst);
                                        }
                                    } else {
                                        staging.push(space, dst, value);
                                    }
                                }
                            });
                        }
                        pool.release(filled.buffer);
                    }
                    staging.flush(space);
                    edges_processed.fetch_add(local_edges, Ordering::Relaxed); // sync-audit: trace counter; read only after the worker scope joins.
                    records_sync.fetch_add(local_records, Ordering::Relaxed); // sync-audit: trace counter; read only after the worker scope joins.
                });
            }

            // --- Gather threads (steps 8-9); absent in the sync variant. ---
            for _ in 0..num_gather {
                let space = &space;
                let all_scatter_done = &all_scatter_done;
                let out = &out;
                s.spawn(move || {
                    let backoff = Backoff::new();
                    loop {
                        let progressed = space.process_one_full(|_, records| {
                            for r in records {
                                if gather(r.dst, r.value) && output {
                                    out.insert(r.dst);
                                }
                            }
                        });
                        if progressed {
                            backoff.reset();
                            continue;
                        }
                        if all_scatter_done.load(Ordering::Acquire) // sync-audit: trace counter; workers joined by the enclosing scope.
                            && space.full_queue_is_empty()
                        {
                            break;
                        }
                        backoff.snooze();
                    }
                });
            }
        });

        if let Some(e) = io_error.into_inner() {
            return Err(e);
        }

        // Record the iteration's work trace.
        let wall_ns = t0.elapsed().as_nanos() as u64;
        let mut trace = IterationTrace::new(num_devices);
        let after = snapshot_devices(storage);
        fill_io_trace(&mut trace, &before, &after);
        trace.frontier_size = frontier.len() as u64;
        trace.cache_hit_pages = cache_hits.load(Ordering::Relaxed); // sync-audit: trace counter; workers joined by the enclosing scope.
        trace.edges_processed = edges_processed.load(Ordering::Relaxed); // sync-audit: trace counter; workers joined by the enclosing scope.
        if sync_variant {
            let records = records_sync.load(Ordering::Relaxed); // sync-audit: trace counter; workers joined by the enclosing scope.
            trace.records_produced = records;
            trace.atomic_ops = records;
        } else {
            let counts = space.take_record_counts();
            trace.records_produced = counts.iter().sum();
            trace.records_per_bin = counts;
            trace.bin_buffer_capacity = self
                .binning
                .buffer_capacity(std::mem::size_of::<blaze_binning::BinRecord<V>>())
                as u64;
        }
        self.stats.lock().absorb(&trace, wall_ns);
        if self.options.record_trace {
            self.traces.lock().push(trace);
        }

        let mut out = out;
        out.seal();
        Ok(out)
    }
}

impl std::fmt::Debug for BlazeEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlazeEngine")
            .field("graph", &self.graph)
            .field("scatter", &self.options.num_scatter)
            .field("gather", &self.options.num_gather)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vertex_array::VertexArray;
    use blaze_graph::gen::{rmat, uniform, RmatConfig};
    use blaze_graph::Csr;
    use blaze_storage::StripedStorage;

    fn engine(g: &Csr, devices: usize, options: EngineOptions) -> BlazeEngine {
        let storage = Arc::new(StripedStorage::in_memory(devices).unwrap());
        let graph = Arc::new(DiskGraph::create(g, storage).unwrap());
        BlazeEngine::new(graph, options).unwrap()
    }

    /// In-memory BFS parents -> levels for comparison.
    fn bfs_levels_ref(g: &Csr, root: u32) -> Vec<i64> {
        let mut level = vec![-1i64; g.num_vertices()];
        level[root as usize] = 0;
        let mut frontier = vec![root];
        let mut depth = 0;
        while !frontier.is_empty() {
            depth += 1;
            let mut next = Vec::new();
            for &v in &frontier {
                for &d in g.neighbors(v) {
                    if level[d as usize] == -1 {
                        level[d as usize] = depth;
                        next.push(d);
                    }
                }
            }
            frontier = next;
        }
        level
    }

    /// Out-of-core BFS levels via edge_map.
    fn bfs_levels_engine(engine: &BlazeEngine, root: u32, sync: bool) -> Vec<i64> {
        let n = engine.num_vertices();
        let level = VertexArray::<i64>::new(n, -1);
        level.set(root as usize, 0);
        let mut frontier = VertexSubset::single(n, root);
        let mut depth: i64 = 0;
        while !frontier.is_empty() {
            depth += 1;
            let d = depth;
            let scatter = |_s: u32, _d: u32| 0u32;
            let cond = |dst: u32| level.get(dst as usize) == -1;
            frontier = if sync {
                engine
                    .edge_map_sync(
                        &frontier,
                        scatter,
                        |dst: u32, _v: u32| {
                            level
                                .fetch_update(dst as usize, |cur| (cur == -1).then_some(d))
                                .is_ok()
                        },
                        cond,
                        true,
                    )
                    .unwrap()
            } else {
                engine
                    .edge_map(
                        &frontier,
                        scatter,
                        |dst: u32, _v: u32| {
                            if level.get(dst as usize) == -1 {
                                level.set(dst as usize, d);
                                true
                            } else {
                                false
                            }
                        },
                        cond,
                        true,
                    )
                    .unwrap()
            };
        }
        level.to_vec()
    }

    #[test]
    fn edge_map_bfs_matches_reference_single_device() {
        let g = rmat(&RmatConfig::new(9));
        let e = engine(&g, 1, EngineOptions::default());
        assert_eq!(bfs_levels_engine(&e, 0, false), bfs_levels_ref(&g, 0));
    }

    #[test]
    fn edge_map_bfs_matches_reference_striped() {
        let g = uniform(9, 8, 3);
        let e = engine(&g, 4, EngineOptions::default());
        assert_eq!(bfs_levels_engine(&e, 1, false), bfs_levels_ref(&g, 1));
    }

    #[test]
    fn sync_variant_matches_reference() {
        let g = rmat(&RmatConfig::new(8));
        let e = engine(&g, 2, EngineOptions::default());
        assert_eq!(bfs_levels_engine(&e, 0, true), bfs_levels_ref(&g, 0));
    }

    #[test]
    fn edge_map_with_many_threads() {
        let g = rmat(&RmatConfig::new(8));
        let e = engine(&g, 2, EngineOptions::default().with_compute_workers(8, 0.5));
        assert_eq!(bfs_levels_engine(&e, 0, false), bfs_levels_ref(&g, 0));
    }

    #[test]
    fn full_frontier_touches_every_edge() {
        let g = rmat(&RmatConfig::new(8));
        let e = engine(&g, 1, EngineOptions::default());
        let frontier = VertexSubset::full(g.num_vertices());
        let sum = VertexArray::<u64>::new(g.num_vertices(), 0);
        e.edge_map(
            &frontier,
            |_s, _d| 1u32,
            |dst, v| {
                sum.set(dst as usize, sum.get(dst as usize) + v as u64);
                true
            },
            |_| true,
            false,
        )
        .unwrap();
        let total: u64 = (0..g.num_vertices()).map(|i| sum.get(i)).sum();
        assert_eq!(total, g.num_edges(), "every edge delivered exactly once");
        let stats = e.stats();
        assert_eq!(stats.edges_processed, g.num_edges());
        assert_eq!(stats.records_produced, g.num_edges());
    }

    #[test]
    fn cond_filters_scatter() {
        let g = rmat(&RmatConfig::new(8));
        let e = engine(&g, 1, EngineOptions::default());
        let frontier = VertexSubset::full(g.num_vertices());
        // cond rejects everything: no records, no gather calls.
        let out = e
            .edge_map(
                &frontier,
                |_s, _d| 0u32,
                |_dst, _v| panic!("gather must not run"),
                |_| false,
                true,
            )
            .unwrap();
        assert!(out.is_empty());
        assert_eq!(e.stats().records_produced, 0);
        assert_eq!(e.stats().edges_processed, g.num_edges());
    }

    #[test]
    fn output_false_returns_empty_frontier() {
        let g = rmat(&RmatConfig::new(7));
        let e = engine(&g, 1, EngineOptions::default());
        let frontier = VertexSubset::full(g.num_vertices());
        let out = e
            .edge_map(&frontier, |_s, _d| 0u32, |_d, _v| true, |_| true, false)
            .unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn empty_frontier_is_a_no_op() {
        let g = rmat(&RmatConfig::new(7));
        let e = engine(&g, 1, EngineOptions::default());
        let frontier = VertexSubset::new(g.num_vertices());
        let out = e
            .edge_map(&frontier, |_s, _d| 0u32, |_d, _v| true, |_| true, true)
            .unwrap();
        assert!(out.is_empty());
        assert_eq!(e.stats().io_bytes, 0);
    }

    #[test]
    fn traces_record_io_and_work() {
        let g = rmat(&RmatConfig::new(9));
        let e = engine(&g, 2, EngineOptions::default());
        let frontier = VertexSubset::full(g.num_vertices());
        e.edge_map(&frontier, |s, _d| s, |_d, _v| false, |_| true, false)
            .unwrap();
        let traces = e.take_traces();
        assert_eq!(traces.len(), 1);
        let t = &traces[0];
        assert_eq!(t.io_bytes_per_device.len(), 2);
        assert!(
            t.total_io_bytes() >= g.num_edges() * 4,
            "every edge byte read"
        );
        assert_eq!(t.edges_processed, g.num_edges());
        assert_eq!(t.records_per_bin.iter().sum::<u64>(), t.records_produced);
        // Page interleaving keeps the per-device IO balanced (Section IV-E).
        let max = *t.io_bytes_per_device.iter().max().unwrap();
        let min = *t.io_bytes_per_device.iter().min().unwrap();
        assert!(max - min <= 8 * 4096, "skew {max}-{min}");
        // A full-frontier scan reads contiguous pages: merging must produce
        // mostly multi-page (sequential) requests.
        assert!(
            t.total_io_requests() < t.total_io_bytes() / 4096,
            "requests should cover merged pages"
        );
    }

    #[test]
    fn sparse_frontier_reads_only_needed_pages() {
        let g = rmat(&RmatConfig::new(10));
        let e = engine(&g, 1, EngineOptions::default());
        // One low-degree vertex: IO should be a handful of pages, not the
        // whole graph.
        let v = (0..g.num_vertices() as u32)
            .find(|&v| g.degree(v) >= 1 && g.degree(v) <= 8)
            .unwrap();
        let frontier = VertexSubset::single(g.num_vertices(), v);
        e.edge_map(&frontier, |s, _d| s, |_d, _v| false, |_| true, false)
            .unwrap();
        let io = e.stats().io_bytes;
        assert!(io <= 4 * 4096, "sparse frontier read {io} bytes");
        assert!(io >= 4096);
    }

    #[test]
    fn page_cache_serves_repeated_iterations() {
        let g = rmat(&RmatConfig::new(9));
        let e = engine(&g, 2, EngineOptions::default().with_page_cache(1 << 16));
        let frontier = VertexSubset::full(g.num_vertices());
        for _ in 0..2 {
            e.edge_map(&frontier, |s, _d| s, |_d, _v| false, |_| true, false)
                .unwrap();
        }
        let traces = e.take_traces();
        assert_eq!(traces[0].cache_hit_pages, 0, "cold cache");
        let pages = traces[0].total_io_bytes() / 4096;
        assert_eq!(traces[1].cache_hit_pages, pages, "second pass fully cached");
        assert_eq!(traces[1].total_io_bytes(), 0, "no device reads when cached");
    }

    #[test]
    fn cached_bfs_matches_reference() {
        let g = rmat(&RmatConfig::new(9));
        let e = engine(&g, 1, EngineOptions::default().with_page_cache(128));
        assert_eq!(bfs_levels_engine(&e, 0, false), bfs_levels_ref(&g, 0));
        let (hits, misses) = e.page_cache().unwrap().stats();
        assert!(hits + misses > 0);
    }

    #[test]
    fn tiny_cache_partially_serves() {
        let g = rmat(&RmatConfig::new(10));
        let e = engine(&g, 1, EngineOptions::default().with_page_cache(4));
        let frontier = VertexSubset::full(g.num_vertices());
        for _ in 0..2 {
            e.edge_map(&frontier, |s, _d| s, |_d, _v| false, |_| true, false)
                .unwrap();
        }
        let traces = e.take_traces();
        let pages = traces[0].total_io_bytes() / 4096;
        assert!(
            traces[1].cache_hit_pages < pages / 2,
            "4-page cache cannot serve a scan"
        );
        assert!(traces[1].total_io_bytes() > 0);
    }

    #[test]
    fn atomic_ops_counted_only_in_sync_variant() {
        let g = rmat(&RmatConfig::new(8));
        let e = engine(&g, 1, EngineOptions::default());
        let frontier = VertexSubset::full(g.num_vertices());
        e.edge_map(&frontier, |_s, _d| 0u32, |_d, _v| false, |_| true, false)
            .unwrap();
        let t = e.take_traces().pop().unwrap();
        assert_eq!(t.atomic_ops, 0);
        e.edge_map_sync(&frontier, |_s, _d| 0u32, |_d, _v| false, |_| true, false)
            .unwrap();
        let t = e.take_traces().pop().unwrap();
        assert_eq!(t.atomic_ops, g.num_edges());
    }
}
