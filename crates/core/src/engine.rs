//! The out-of-core `EdgeMap` engine (Section IV-C, Figure 5).
//!
//! Since the persistent-runtime refactor, `edge_map` no longer spawns a
//! scoped thread pipeline per call. The engine owns a long-lived
//! [`Runtime`] — one IO worker per device plus standing scatter/gather
//! pools — and each `edge_map` is packaged as an `EdgeMapJob` and
//! *submitted* to it, blocking on the job's completion handle. Bin spaces
//! and IO buffer pools are checked out of an [`EngineArena`] per job and
//! recycled after a clean finish, so a 20-iteration BFS reuses one set of
//! buffers instead of allocating twenty, and independent jobs submitted
//! from different threads interleave through the shared workers.

use blaze_sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use blaze_sync::Arc;
use std::time::Instant;

use blaze_sync::Backoff;
use blaze_sync::Mutex;

use blaze_binning::{BinSpace, BinValue, BinningConfig, ScatterStaging};
use blaze_frontier::{PageSubset, PriorityFrontier, PrioritySnapshot, VertexSubset};
use blaze_graph::DiskGraph;
use blaze_storage::buffer::{FilledBuffer, IoBuffer};
use blaze_storage::request::merge_pages_with_window;
use blaze_storage::{
    BufferPool, FlightLease, FlightPart, FlightTable, IoBackend, IoRequest, JobIoStats, PageCache,
    PageFrame,
};
use blaze_types::{BlazeError, IterationTrace, LocalPageId, Result, VertexId, PAGE_SIZE};

use crate::arena::EngineArena;
use crate::options::EngineOptions;
use crate::runtime::{PipelineJob, Runtime};
use crate::stats::{fill_io_trace_from_job, ExecStats};

/// Increments a counter when dropped — even if the owning worker panics in
/// user code, so peers waiting on the counter cannot spin forever.
struct CompletionGuard<'a> {
    counter: &'a AtomicUsize,
}

impl Drop for CompletionGuard<'_> {
    fn drop(&mut self) {
        self.counter.fetch_add(1, Ordering::Release); // sync-audit: trace counter; read only after the job completes.
    }
}

/// The Blaze engine: binds a [`DiskGraph`] to its persistent pipeline
/// runtime and binning configuration and executes `EdgeMap`s over it.
pub struct BlazeEngine {
    graph: Arc<DiskGraph>,
    options: EngineOptions,
    binning: BinningConfig,
    arena: EngineArena,
    runtime: Runtime,
    cache: Option<PageCache>,
    /// The submission/completion IO engines the per-device IO workers
    /// pump — one per IO lane, because the backends' per-device
    /// submit/reap queues assume a single pumper per device and a lane is
    /// exactly that: the one worker pumping a given device for its jobs.
    /// A single entry without scan sharing.
    backends: Vec<Arc<dyn IoBackend>>,
    /// Cross-job scan-sharing registry (single-flight miss coalescing);
    /// `None` leaves the IO path byte-identical to the unshared engine.
    flights: Option<FlightTable>,
    traces: Mutex<Vec<IterationTrace>>,
    stats: Mutex<ExecStats>,
}

impl BlazeEngine {
    /// Creates an engine over `graph`. Binning defaults to the paper's
    /// heuristics (5% of graph size, 1024 bins) unless overridden. The
    /// persistent worker set (one IO worker per device, plus the scatter
    /// and gather pools) is spawned here and lives until the engine drops.
    pub fn new(graph: Arc<DiskGraph>, options: EngineOptions) -> Result<Self> {
        options.validate()?;
        let binning = options
            .binning
            .clone()
            .unwrap_or_else(|| BinningConfig::for_graph(graph.storage_bytes()));
        let arena = EngineArena::new(
            binning.clone(),
            options.io_buffer_bytes,
            options.merge_window.max(blaze_types::MAX_MERGED_PAGES),
            options.num_gather,
            options.max_idle_arenas,
        );
        // Scan sharing needs concurrent jobs' IO phases to overlap on each
        // device, so it widens the runtime to several IO lanes per device;
        // without it one lane reproduces the paper's pipeline exactly.
        let io_lanes = if options.scan_sharing {
            options.scan_share_lanes.max(1)
        } else {
            1
        };
        let runtime = Runtime::new(
            graph.storage().num_devices(),
            io_lanes,
            options.num_scatter,
            options.num_gather,
        );
        // A budget below one page yields zero frames; skip the cache
        // entirely so the IO path stays identical to the uncached engine.
        let cache = Some(PageCache::new(options.cache_bytes))
            .filter(|c| c.capacity_pages() > 0)
            .map(|mut c| {
                // Degree-aware layouts record a hot (hub) page prefix in the
                // page map; hand it to the cache for heat-informed admission
                // before the cache is shared. Identity graphs report zero
                // hot pages and leave admission untouched.
                c.set_hot_region(graph.pagemap().hot_pages(), options.cache_hot_fraction);
                c
            });
        let backends = (0..io_lanes)
            .map(|_| {
                options
                    .io_backend
                    .build(graph.storage().clone(), options.queue_depth)
            })
            .collect();
        let flights = options
            .scan_sharing
            .then(|| FlightTable::new(graph.storage().num_devices(), options.scan_share_retain));
        Ok(Self {
            graph,
            options,
            binning,
            arena,
            runtime,
            cache,
            backends,
            flights,
            traces: Mutex::new(Vec::new()),
            stats: Mutex::new(ExecStats::default()),
        })
    }

    /// The IO backend serving this engine's device reads (lane 0's when
    /// scan sharing runs several lanes).
    pub fn io_backend(&self) -> &Arc<dyn IoBackend> {
        &self.backends[0]
    }

    /// The scan-sharing flight table, when enabled via
    /// [`EngineOptions::scan_sharing`].
    pub fn flight_table(&self) -> Option<&FlightTable> {
        self.flights.as_ref()
    }

    /// The clock page cache, when enabled via
    /// [`EngineOptions::cache_bytes`].
    pub fn page_cache(&self) -> Option<&PageCache> {
        self.cache.as_ref()
    }

    /// The graph this engine operates on.
    pub fn graph(&self) -> &Arc<DiskGraph> {
        &self.graph
    }

    /// Engine options.
    pub fn options(&self) -> &EngineOptions {
        &self.options
    }

    /// The effective binning configuration.
    pub fn binning(&self) -> &BinningConfig {
        &self.binning
    }

    /// The persistent pipeline runtime serving this engine's jobs.
    pub fn runtime(&self) -> &Runtime {
        &self.runtime
    }

    /// Number of vertices of the underlying graph.
    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    /// Takes the recorded per-iteration work traces (and clears them).
    pub fn take_traces(&self) -> Vec<IterationTrace> {
        std::mem::take(&mut self.traces.lock())
    }

    /// Cumulative execution statistics.
    pub fn stats(&self) -> ExecStats {
        self.stats.lock().clone()
    }

    /// Transforms the vertex frontier into the per-device page frontier
    /// (Figure 5, step 1), in parallel over frontier chunks.
    pub fn build_page_subset(&self, frontier: &VertexSubset) -> PageSubset {
        let members = frontier.members();
        let num_devices = self.graph.storage().num_devices();
        let threads = self.options.compute_workers().max(1);
        if members.len() < 4096 || threads == 1 {
            let ranges = members
                .iter()
                .filter_map(|&v| self.graph.pages_of_vertex(v));
            return PageSubset::from_page_ranges(ranges, num_devices);
        }
        let chunk = members.len().div_ceil(threads);
        let parts: Vec<PageSubset> = blaze_sync::thread::scope(|s| {
            let handles: Vec<_> = members
                .chunks(chunk)
                .map(|slice| {
                    s.spawn(move || {
                        let ranges = slice.iter().filter_map(|&v| self.graph.pages_of_vertex(v));
                        PageSubset::from_page_ranges(ranges, num_devices)
                    })
                })
                .collect();
            handles
                .into_iter()
                // panic-audit: re-raises a worker thread's panic on the caller
                // (the same propagation std::thread::scope performs).
                .map(|h| h.join().expect("page transform panicked"))
                .collect()
        });
        PageSubset::merge(parts, num_devices)
    }

    /// Out-of-core `EdgeMap` with online binning.
    ///
    /// Runs `scatter(src, dst) -> value` for every edge `(src, dst)` with
    /// `src` in `frontier` and `cond(dst)` true; gather threads then apply
    /// `gather(dst, value) -> activate` to accumulate values into vertex
    /// data. When `output` is true, destinations for which `gather` returns
    /// `true` form the returned frontier.
    ///
    /// `gather` may update [`VertexArray`](crate::VertexArray)s with plain
    /// `get`/`set` — bin exclusivity guarantees a destination vertex is
    /// only touched by one gather thread at a time.
    ///
    /// The call is a *job submission*: it may be issued from any number of
    /// threads concurrently against one engine, and blocks until the
    /// persistent runtime has completed this job.
    pub fn edge_map<V, FS, FG, FC>(
        &self,
        frontier: &VertexSubset,
        scatter: FS,
        gather: FG,
        cond: FC,
        output: bool,
    ) -> Result<VertexSubset>
    where
        V: BinValue,
        FS: Fn(VertexId, VertexId) -> V + Sync,
        FG: Fn(VertexId, V) -> bool + Sync,
        FC: Fn(VertexId) -> bool + Sync,
    {
        self.run_edge_map(
            frontier,
            &scatter,
            &gather,
            None::<&fn(V, V) -> V>,
            &cond,
            output,
            false,
            None,
        )
    }

    /// [`edge_map`](Self::edge_map) with scatter-side record combining:
    /// when two staged records in one scatter worker's staging window share
    /// a destination, `combine` merges their values into one record instead
    /// of shipping both through the bins. `combine` must be associative and
    /// agree with `gather`'s accumulation (e.g. addition for PageRank
    /// deltas, `min` for label propagation) — then the gather side observes
    /// the same reduction it would have computed itself, record by record,
    /// and results are identical to the uncombined path.
    ///
    /// The payoff mirrors propagation-blocking update-log reduction: on
    /// power-law graphs many records in a window target the same hub
    /// vertex, and each merged record saves a bin-buffer slot, a flush, and
    /// a gather application. The merged count is reported per iteration as
    /// [`IterationTrace::records_combined`] (`records_produced` counts the
    /// post-combine stream).
    ///
    /// [`IterationTrace::records_combined`]: blaze_types::IterationTrace::records_combined
    pub fn edge_map_combined<V, FS, FG, FM, FC>(
        &self,
        frontier: &VertexSubset,
        scatter: FS,
        gather: FG,
        combine: FM,
        cond: FC,
        output: bool,
    ) -> Result<VertexSubset>
    where
        V: BinValue,
        FS: Fn(VertexId, VertexId) -> V + Sync,
        FG: Fn(VertexId, V) -> bool + Sync,
        FM: Fn(V, V) -> V + Sync,
        FC: Fn(VertexId) -> bool + Sync,
    {
        self.run_edge_map(
            frontier,
            &scatter,
            &gather,
            Some(&combine),
            &cond,
            output,
            false,
            None,
        )
    }

    /// The synchronization-based variant (Figure 8b): no bins — scatter
    /// threads apply `gather` directly, so `gather` must perform its
    /// updates with atomic read-modify-write operations
    /// ([`VertexArray::fetch_update`](crate::VertexArray::fetch_update) /
    /// [`fetch_add`](crate::VertexArray::fetch_add)).
    pub fn edge_map_sync<V, FS, FG, FC>(
        &self,
        frontier: &VertexSubset,
        scatter: FS,
        gather: FG,
        cond: FC,
        output: bool,
    ) -> Result<VertexSubset>
    where
        V: BinValue,
        FS: Fn(VertexId, VertexId) -> V + Sync,
        FG: Fn(VertexId, V) -> bool + Sync,
        FC: Fn(VertexId) -> bool + Sync,
    {
        self.run_edge_map(
            frontier,
            &scatter,
            &gather,
            None::<&fn(V, V) -> V>,
            &cond,
            output,
            true,
            None,
        )
    }

    /// Asynchronous `EdgeMap` for **monotone** algorithms: no per-iteration
    /// barrier. Gather workers push newly-activated vertices into a
    /// [`PriorityFrontier`] bucketed by `priority` (BFS/SSSP distance, WCC
    /// label), and the driver keeps draining the most urgent batch until the
    /// frontier is quiescent — convergence is a *quiescence* test (no queued
    /// vertices, no batch in flight), not an empty-frontier superstep.
    ///
    /// Correctness requires monotonicity: `gather` must only move vertex
    /// values in one direction (e.g. min-relaxation) and return `true` iff
    /// it improved the value, so stale re-deliveries are no-ops and the
    /// fixpoint is order-independent. Deterministic monotone algorithms
    /// therefore converge to results *bit-identical* to their barriered
    /// `edge_map` oracle. `seeds` are pushed at their `priority` before the
    /// first batch is drained.
    ///
    /// Each drained batch reuses the whole barriered machinery — page
    /// transform, SQ/CQ IO pump, online binning, combining — as one job
    /// submission; only the iteration structure changes. Batch size and
    /// bucket count come from [`EngineOptions::async_batch_max`] and
    /// [`EngineOptions::async_buckets`]. Returns the frontier's final
    /// counters (pushes, dedup hits, pops, batches).
    pub fn edge_map_async<V, FS, FG, FC, FP>(
        &self,
        seeds: &[VertexId],
        scatter: FS,
        gather: FG,
        cond: FC,
        priority: FP,
    ) -> Result<PrioritySnapshot>
    where
        V: BinValue,
        FS: Fn(VertexId, VertexId) -> V + Sync,
        FG: Fn(VertexId, V) -> bool + Sync,
        FC: Fn(VertexId) -> bool + Sync,
        FP: Fn(VertexId) -> u64 + Sync,
    {
        let pf = PriorityFrontier::new(self.graph.num_vertices(), self.options.async_buckets);
        for &v in seeds {
            pf.push(v, priority(v));
        }
        while let Some((bucket, batch)) = pf.pop_batch(self.options.async_batch_max) {
            let round =
                self.edge_map_async_batch(&batch, bucket, &pf, &scatter, &gather, &cond, &priority);
            pf.complete_batch();
            round?;
        }
        debug_assert!(pf.is_quiescent(), "drained frontier must be quiescent");
        Ok(pf.snapshot())
    }

    /// One round of [`edge_map_async`](Self::edge_map_async): scatters
    /// `batch` (drained from bucket `bucket` of `pf`) and re-queues every
    /// vertex `gather` activates at its current `priority`. Exposed so
    /// algorithms that interleave several engines per batch (WCC's
    /// out+in direction pair, k-core's degree updates) can drive the
    /// drain loop themselves against one shared frontier; call
    /// [`PriorityFrontier::complete_batch`] after the batch's last round.
    #[allow(clippy::too_many_arguments)]
    pub fn edge_map_async_batch<V, FS, FG, FC, FP>(
        &self,
        batch: &[VertexId],
        bucket: u64,
        pf: &PriorityFrontier,
        scatter: &FS,
        gather: &FG,
        cond: &FC,
        priority: &FP,
    ) -> Result<()>
    where
        V: BinValue,
        FS: Fn(VertexId, VertexId) -> V + Sync,
        FG: Fn(VertexId, V) -> bool + Sync,
        FC: Fn(VertexId) -> bool + Sync,
        FP: Fn(VertexId) -> u64 + Sync,
    {
        let frontier = VertexSubset::from_members(self.graph.num_vertices(), batch.iter().copied());
        let gather_async = |dst: VertexId, value: V| {
            if gather(dst, value) {
                pf.push(dst, priority(dst));
            }
            false
        };
        self.run_edge_map(
            &frontier,
            scatter,
            &gather_async,
            None::<&fn(V, V) -> V>,
            cond,
            false,
            false,
            Some((bucket, pf)),
        )
        .map(drop)
    }

    #[allow(clippy::too_many_arguments)]
    fn run_edge_map<V, FS, FG, FM, FC>(
        &self,
        frontier: &VertexSubset,
        scatter: &FS,
        gather: &FG,
        combine: Option<&FM>,
        cond: &FC,
        output: bool,
        sync_variant: bool,
        async_round: Option<(u64, &PriorityFrontier)>,
    ) -> Result<VertexSubset>
    where
        V: BinValue,
        FS: Fn(VertexId, VertexId) -> V + Sync,
        FG: Fn(VertexId, V) -> bool + Sync,
        FM: Fn(V, V) -> V + Sync,
        FC: Fn(VertexId) -> bool + Sync,
    {
        let t0 = Instant::now();
        let num_devices = self.graph.storage().num_devices();
        let async_before = async_round.map(|(_, pf)| pf.snapshot());

        let pages = self.build_page_subset(frontier);
        let out = VertexSubset::new(self.graph.num_vertices());

        // Check out this job's private arena: never shared with another
        // in-flight job, which is what lets independent submissions
        // interleave through the shared workers without entangling their
        // buffer queues or bin back-pressure.
        let pool = self.arena.checkout_pool();
        let space: Option<BinSpace<V>> = (!sync_variant).then(|| self.arena.checkout_space());

        let job = EdgeMapJob {
            engine: self,
            frontier,
            pages: &pages,
            out: &out,
            pool: &pool,
            space: space.as_ref(),
            scatter,
            gather,
            combine,
            cond,
            output,
            num_devices,
            num_scatter: self.options.num_scatter,
            io_done: AtomicUsize::new(0),
            scatters_done: AtomicUsize::new(0),
            all_scatter_done: AtomicBool::new(false),
            edges_processed: AtomicU64::new(0),
            records_sync: AtomicU64::new(0),
            error: Mutex::new(None),
            order: AtomicU64::new(u64::MAX),
            io_stats: JobIoStats::new(num_devices),
        };

        // Blocks until every participating worker finished its role; a
        // panic in a user closure is re-raised here (unwinding drops the
        // checked-out pool/space without recycling them).
        self.runtime.submit(&job, !sync_variant);

        let error = job.error.lock().take();
        let edges_processed = job.edges_processed.load(Ordering::Relaxed); // sync-audit: trace counter; job completed.
        let records_sync = job.records_sync.load(Ordering::Relaxed); // sync-audit: trace counter; job completed.
        if let (Some((bucket, pf)), Some(before)) = (async_round, async_before) {
            // The round's workers have joined, so the frontier delta is
            // exactly this job's pushes; record it before the trace copy.
            let after = pf.snapshot();
            job.io_stats.record_async_round(
                bucket,
                after.pushed - before.pushed,
                after.deduped - before.deduped,
            );
        }
        let mut trace = IterationTrace::new(num_devices);
        fill_io_trace_from_job(&mut trace, &job.io_stats);
        drop(job);

        if let Some(e) = error {
            // A job that failed cleanly (IO error, not a panic) has drained
            // its submission and completion queues and returned every
            // buffer, so its arena is reusable. `recycle_pool` re-verifies
            // with `is_intact` and drops any pool that lost buffers;
            // `recycle_space` resets bins. Panics never reach here — they
            // re-raise out of `submit` above and drop the arena unrecycled.
            if let Some(space) = space {
                self.arena.recycle_space(space);
            }
            self.arena.recycle_pool(pool);
            return Err(e);
        }

        // Record the iteration's work trace.
        let wall_ns = t0.elapsed().as_nanos() as u64;
        trace.frontier_size = frontier.len() as u64;
        trace.edges_processed = edges_processed;
        if sync_variant {
            trace.records_produced = records_sync;
            trace.atomic_ops = records_sync;
        } else if let Some(space) = &space {
            let counts = space.take_record_counts();
            trace.records_produced = counts.iter().sum();
            trace.records_per_bin = counts;
            trace.bin_buffer_capacity = self
                .binning
                .buffer_capacity(std::mem::size_of::<blaze_binning::BinRecord<V>>())
                as u64;
        }
        // Clean finish: return the arena for the next job.
        if let Some(space) = space {
            self.arena.recycle_space(space);
        }
        self.arena.recycle_pool(pool);

        self.stats.lock().absorb(&trace, wall_ns);
        if self.options.record_trace {
            self.traces.lock().push(trace);
        }

        let mut out = out;
        out.seal();
        Ok(out)
    }
}

/// One `edge_map` submission travelling through the persistent runtime:
/// the user closures, the frontier, the job's private arena (buffer pool
/// and bin space), and all per-job coordination state. The runtime's
/// workers call the [`PipelineJob`] roles below; nothing here is shared
/// with any other in-flight job, so per-job counters and the first-error
/// slot cannot be polluted by concurrent submissions.
struct EdgeMapJob<'a, V, FS, FG, FM, FC>
where
    V: BinValue,
{
    engine: &'a BlazeEngine,
    frontier: &'a VertexSubset,
    pages: &'a PageSubset,
    out: &'a VertexSubset,
    pool: &'a BufferPool,
    /// `None` in the synchronization-based variant (no bins).
    space: Option<&'a BinSpace<V>>,
    scatter: &'a FS,
    gather: &'a FG,
    /// Associative merge for same-destination records inside one staging
    /// window; `None` disables combining (the default path).
    combine: Option<&'a FM>,
    cond: &'a FC,
    output: bool,
    num_devices: usize,
    num_scatter: usize,
    /// IO workers that have finished this job (panics included, via guard).
    io_done: AtomicUsize,
    /// Scatter workers that have finished this job.
    scatters_done: AtomicUsize,
    /// Set by the last departing scatter worker, releasing gather.
    all_scatter_done: AtomicBool,
    edges_processed: AtomicU64,
    records_sync: AtomicU64,
    /// First IO error of the job; later errors are dropped (the first one
    /// is the cause, the rest are downstream noise).
    error: Mutex<Option<BlazeError>>,
    /// Submission sequence number, assigned by the runtime under its queue
    /// lock before any worker sees the job (`u64::MAX` until then). Scan
    /// sharing compares it against a flight's leader to decide between
    /// parking and a non-blocking probe (see `pump_shared`).
    order: AtomicU64,
    io_stats: JobIoStats,
}

impl<V, FS, FG, FM, FC> EdgeMapJob<'_, V, FS, FG, FM, FC>
where
    V: BinValue,
    FS: Fn(VertexId, VertexId) -> V + Sync,
    FG: Fn(VertexId, V) -> bool + Sync,
    FM: Fn(V, V) -> V + Sync,
    FC: Fn(VertexId) -> bool + Sync,
{
    /// Records `e` as the job's failure unless one is already recorded —
    /// first error wins, so a root-cause device error is not clobbered by
    /// the knock-on errors of other devices.
    fn record_error(&self, e: BlazeError) {
        let mut slot = self.error.lock();
        if slot.is_none() {
            *slot = Some(e);
        }
    }

    /// One IO worker's work: fetch the device's local page list into
    /// filled buffers. Without a page cache, contiguous local pages merge
    /// into requests of up to `merge_window` pages — the published IO path,
    /// byte-for-byte under the synchronous backend. With the cache (the
    /// paper's future-work extension), the worker first consults the cache
    /// page by page: hits are packed into shared buffers straight from
    /// frames, and only the *misses* are re-merged into contiguous runs, so
    /// a hit in the middle of what would have been one request splits it
    /// into two shorter device reads. Either way the merged requests are
    /// then pumped through the engine's [`IoBackend`] with up to
    /// `queue_depth` in flight.
    fn fetch_device(&self, dev: usize, lane: usize) -> Result<()> {
        let storage = self.engine.graph.storage();
        let merge_window = self.engine.options.merge_window;
        let local_pages = self.pages.local_pages(dev);
        let Some(cache) = &self.engine.cache else {
            return self.pump(
                dev,
                lane,
                merge_pages_with_window(local_pages, merge_window),
            );
        };
        // Cache pass: serve hits from frames, collect misses. Consecutive
        // hits pack into one buffer (frame `i` ↔ `pages[i]`, no contiguity
        // promised) instead of costing a pool buffer per page.
        let capacity = self.pool.pages_per_buffer();
        let mut pending: Option<(IoBuffer, Vec<u64>)> = None;
        let flush = |packed: (IoBuffer, Vec<u64>)| {
            self.pool.push_filled(FilledBuffer {
                buffer: packed.0,
                pages: packed.1,
            });
        };
        let mut misses: Vec<LocalPageId> = Vec::new();
        let mut hits = 0u64;
        let mut hot_hits = 0u64;
        let hot_pages = self.engine.graph.pagemap().hot_pages();
        for &local in local_pages {
            let global = storage.global_page(dev, local);
            let Some(data) = cache.get(global) else {
                // A miss ends the current hit run; flush it so scatter can
                // start on the hits while the device read is in flight.
                if let Some(packed) = pending.take() {
                    flush(packed);
                }
                misses.push(local);
                continue;
            };
            hits += 1;
            hot_hits += u64::from(global < hot_pages);
            let mut packed = pending
                .take()
                .unwrap_or_else(|| (self.pool.acquire_free(), Vec::new()));
            let slot = packed.1.len();
            packed.0.pages_mut(slot + 1)[slot * PAGE_SIZE..].copy_from_slice(&data);
            packed.1.push(global);
            if packed.1.len() == capacity {
                flush(packed);
            } else {
                pending = Some(packed);
            }
        }
        if let Some(packed) = pending.take() {
            flush(packed);
        }
        if hits > 0 {
            self.io_stats.record_cache_hits(dev, hits);
        }
        if hot_hits > 0 {
            self.io_stats.record_cache_hot_hits(dev, hot_hits);
        }
        // Miss pass: hits punched holes into the page list, so re-merging
        // naturally splits runs around them before touching the device.
        self.pump(dev, lane, merge_pages_with_window(&misses, merge_window))
    }

    /// Routes merged requests to the device: through the flight table when
    /// scan sharing is on, straight to the backend otherwise.
    fn pump(&self, dev: usize, lane: usize, requests: Vec<IoRequest>) -> Result<()> {
        match &self.engine.flights {
            Some(table) => self.pump_shared(dev, lane, table, requests),
            None => self.pump_requests(dev, lane, requests, Vec::new()),
        }
    }

    /// Scan-sharing pump (single-flight miss coalescing): each merged
    /// request is split against the [`FlightTable`]. Subranges nobody else
    /// is reading become *lead* parts — registered before this returns, so
    /// concurrent planners of the same pages join instead of double-reading
    /// — and go to the device exactly once, carrying their leases so the
    /// completed frames fan out to every subscriber. Subranges already in
    /// flight (or retained from a recent flight) become *join* parts and
    /// are satisfied from the leader's frames without touching the device.
    ///
    /// Deadlock discipline: leases are all resolved (the lead pump returns)
    /// before any ticket is consulted, so a parked subscriber never holds a
    /// flight another job is parked on. A ticket is *waited* on only when
    /// its leader is strictly older (smaller submission seq) than this job;
    /// the runtime serves every worker's mailbox in submission order, so an
    /// older leader's IO role is never queued behind this job and the
    /// cross-job wait graph stays acyclic. Younger leaders are only probed
    /// (`try_wait`); on a miss the subrange is re-read here — a duplicate
    /// device read, never a correctness hazard.
    fn pump_shared(
        &self,
        dev: usize,
        lane: usize,
        table: &FlightTable,
        requests: Vec<IoRequest>,
    ) -> Result<()> {
        let my_seq = self.order.load(Ordering::Acquire); // sync-audit: written once by Runtime::submit under its queue lock before any worker runs this job.
        let mut leads: Vec<IoRequest> = Vec::new();
        let mut leases: Vec<Option<FlightLease>> = Vec::new();
        let mut tickets = Vec::new();
        for request in requests {
            for part in table.plan(dev, request, my_seq) {
                match part {
                    FlightPart::Lead(lease) => {
                        leads.push(lease.request());
                        leases.push(Some(lease));
                    }
                    FlightPart::Join(ticket) => tickets.push(ticket),
                }
            }
        }
        if !leases.is_empty() {
            self.io_stats.record_flights_led(dev, leads.len() as u64);
        }
        self.pump_requests(dev, lane, leads, leases)?;
        let mut fallback: Vec<IoRequest> = Vec::new();
        let mut shared_pages = 0u64;
        let mut first_error: Option<BlazeError> = None;
        for ticket in tickets {
            if first_error.is_some() {
                break;
            }
            let outcome = if ticket.leader_seq() < my_seq {
                Some(ticket.wait())
            } else {
                ticket.try_wait()
            };
            match outcome {
                Some(Ok(frames)) => {
                    shared_pages += frames.len() as u64;
                    self.pack_shared(dev, ticket.first_page(), &frames);
                }
                Some(Err(e)) => first_error = Some(e),
                None => fallback.push(IoRequest {
                    first_page: ticket.first_page(),
                    num_pages: ticket.num_pages(),
                }),
            }
        }
        if shared_pages > 0 {
            self.io_stats.record_shared_hits(dev, shared_pages);
        }
        match first_error {
            Some(e) => Err(e),
            None => self.pump_requests(dev, lane, fallback, Vec::new()),
        }
    }

    /// Hands subscriber-received frames to scatter: packed into pool
    /// buffers exactly like cache hits (frame `i` ↔ `pages[i]`, no
    /// contiguity promised). The leader already admitted these pages to
    /// the cache, so no insert happens here.
    fn pack_shared(&self, dev: usize, first_local: LocalPageId, frames: &[PageFrame]) {
        let storage = self.engine.graph.storage();
        let capacity = self.pool.pages_per_buffer();
        for (chunk_idx, chunk) in frames.chunks(capacity).enumerate() {
            let mut buffer = self.pool.acquire_free();
            let mut globals = Vec::with_capacity(chunk.len());
            for (slot, frame) in chunk.iter().enumerate() {
                let offset = (chunk_idx * capacity + slot) as u64;
                buffer.pages_mut(slot + 1)[slot * PAGE_SIZE..].copy_from_slice(frame.as_ref());
                globals.push(storage.global_page(dev, first_local + offset));
            }
            self.pool.push_filled(FilledBuffer {
                buffer,
                pages: globals,
            });
        }
    }

    /// Pumps `requests` through the lane's IO backend: keeps up to
    /// `queue_depth` submissions in flight, reaps completions (possibly out
    /// of order), and hands successful buffers to scatter. On an error the
    /// pump stops submitting but keeps reaping until the queue drains, so
    /// no buffer is lost and the pool stays intact — first error wins.
    ///
    /// With scan sharing, `leases[i]` is the flight lease for `requests[i]`
    /// (the submit tag indexes both): a successful completion fans its
    /// frames out to the flight's subscribers, a failed one propagates the
    /// error to them, and leases never submitted (pump stopped early) are
    /// failed by their `Drop` when the vector falls off the end — no
    /// subscriber is ever left parked. Without sharing, pass an empty
    /// vector.
    fn pump_requests(
        &self,
        dev: usize,
        lane: usize,
        requests: Vec<IoRequest>,
        mut leases: Vec<Option<FlightLease>>,
    ) -> Result<()> {
        if requests.is_empty() {
            return Ok(());
        }
        let storage = self.engine.graph.storage();
        let backend = &self.engine.backends[lane];
        let window = backend.queue_depth().max(1);
        let mut next = 0usize;
        let mut in_flight = 0usize;
        let mut first_error: Option<BlazeError> = None;
        while next < requests.len() || in_flight > 0 {
            while first_error.is_none() && in_flight < window && next < requests.len() {
                let buffer = self.pool.acquire_free();
                backend.submit(dev, requests[next], buffer, next as u64);
                next += 1;
                in_flight += 1;
                self.io_stats.record_submit(dev, in_flight as u64);
            }
            if in_flight == 0 {
                break;
            }
            let completion = backend.reap(dev);
            in_flight -= 1;
            self.io_stats.record_latency(dev, completion.service_ns);
            let buffer = completion.buffer;
            let lease = leases
                .get_mut(completion.tag as usize)
                .and_then(Option::take);
            match completion.result {
                Err(e) => {
                    if let Some(lease) = lease {
                        lease.fail(&e.to_string());
                    }
                    self.pool.release(buffer);
                    if first_error.is_none() {
                        first_error = Some(e);
                    }
                }
                Ok(()) if first_error.is_some() => {
                    // Draining after an error: data is good but the job is
                    // failing; subscribers still get their frames (their
                    // jobs are not the ones failing), then the buffer goes
                    // back to the pool.
                    if let Some(lease) = lease {
                        let n = completion.request.num_pages as usize;
                        lease.complete(page_frames(&buffer, n));
                    }
                    self.pool.release(buffer);
                }
                Ok(()) => {
                    let first = completion.request.first_page;
                    let n = completion.request.num_pages as usize;
                    self.io_stats.record_read(dev, first, n);
                    // Subscribers want per-page `Arc` frames; build them
                    // once and let the cache admit the same allocations.
                    let frames = lease.is_some().then(|| page_frames(&buffer, n));
                    if let Some(cache) = &self.engine.cache {
                        self.io_stats.record_cache_misses(dev, n as u64);
                        let mut evictions = 0;
                        let mut hot_admits = 0;
                        for i in 0..n {
                            let global = storage.global_page(dev, first + i as u64);
                            let frame = match &frames {
                                Some(frames) => frames[i].clone(),
                                None => {
                                    let start = i * PAGE_SIZE;
                                    buffer.pages(n)[start..start + PAGE_SIZE].into()
                                }
                            };
                            let outcome = cache.insert(global, frame);
                            evictions += u64::from(outcome.evicted);
                            hot_admits += u64::from(outcome.hot_admitted);
                        }
                        if evictions > 0 {
                            self.io_stats.record_cache_evictions(dev, evictions);
                        }
                        if hot_admits > 0 {
                            self.io_stats.record_cache_hot_admits(dev, hot_admits);
                        }
                    }
                    if let (Some(lease), Some(frames)) = (lease, frames) {
                        lease.complete(frames);
                    }
                    let globals = (0..n as u64)
                        .map(|i| storage.global_page(dev, first + i))
                        .collect();
                    self.pool.push_filled(FilledBuffer {
                        buffer,
                        pages: globals,
                    });
                }
            }
        }
        match first_error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

/// Per-page `Arc` frames of `buffer`'s first `n` pages — the fan-out
/// currency of the flight table and the page cache.
fn page_frames(buffer: &IoBuffer, n: usize) -> Vec<PageFrame> {
    let data = buffer.pages(n);
    (0..n)
        .map(|i| data[i * PAGE_SIZE..(i + 1) * PAGE_SIZE].into())
        .collect()
}

impl<V, FS, FG, FM, FC> PipelineJob for EdgeMapJob<'_, V, FS, FG, FM, FC>
where
    V: BinValue,
    FS: Fn(VertexId, VertexId) -> V + Sync,
    FG: Fn(VertexId, V) -> bool + Sync,
    FM: Fn(V, V) -> V + Sync,
    FC: Fn(VertexId) -> bool + Sync,
{
    /// Records the submission sequence number the runtime assigned under
    /// its queue lock; `pump_shared` reads it for the park/probe decision.
    fn set_order(&self, seq: u64) {
        self.order.store(seq, Ordering::Release); // sync-audit: happens-before every worker via the runtime queue lock.
    }

    /// IO role (Figure 5, steps 2-4): one worker per device (per lane when
    /// scan sharing widens the pump).
    fn run_io(&self, device: usize, lane: usize) {
        // Guard: even a panic inside the IO path must count the worker as
        // done, or scatter workers would spin on `io_done` forever.
        let _done = CompletionGuard {
            counter: &self.io_done,
        };
        if let Err(e) = self.fetch_device(device, lane) {
            self.record_error(e);
        }
    }

    /// Scatter role (steps 5-7).
    fn run_scatter(&self, _worker: usize) {
        // Guard: a panic in the user's scatter/cond closures still counts
        // this worker as done; the last departing scatter (panicked or not)
        // releases the gather side.
        struct ScatterGuard<'a, V: BinValue> {
            counter: &'a AtomicUsize,
            total: usize,
            space: Option<&'a BinSpace<V>>,
            all_done: &'a AtomicBool,
        }
        impl<V: BinValue> Drop for ScatterGuard<'_, V> {
            fn drop(&mut self) {
                if self.counter.fetch_add(1, Ordering::AcqRel) + 1 == self.total {
                    if let Some(space) = self.space {
                        space.flush_partials();
                    }
                    self.all_done.store(true, Ordering::Release);
                }
            }
        }
        let _done = ScatterGuard {
            counter: &self.scatters_done,
            total: self.num_scatter,
            space: self.space,
            all_done: &self.all_scatter_done,
        };
        let mut staging = self.space.map(ScatterStaging::new);
        let mut scratch = Vec::new();
        let mut local_edges = 0u64;
        let mut local_records = 0u64;
        let mut busy_ns = 0u64;
        let mut wait_ns = 0u64;
        // A frontier built by `VertexSubset::full` contains every vertex by
        // construction, so the per-source membership probe is pure overhead
        // in dense iterations (PageRank, WCC) — hoist it out of the loop.
        let all_active = self.frontier.is_complete();
        let bytewise = self.engine.options.bytewise_decode;
        let backoff = Backoff::new();
        loop {
            let Some(filled) = self.pool.pop_filled() else {
                if self.io_done.load(Ordering::Acquire) == self.num_devices // sync-audit: completion counter; guarded by the filled-queue recheck below.
                    && self.pool.filled_len() == 0
                {
                    break;
                }
                let t = Instant::now();
                backoff.snooze();
                wait_ns += t.elapsed().as_nanos() as u64;
                continue;
            };
            backoff.reset();
            let t = Instant::now();
            for (i, &page) in filled.pages.iter().enumerate() {
                let data = filled.page_data(i);
                let mut body = |src: VertexId, dsts: &[VertexId]| {
                    if !all_active && !self.frontier.contains(src) {
                        return;
                    }
                    for &dst in dsts {
                        local_edges += 1;
                        if !(self.cond)(dst) {
                            continue;
                        }
                        let value = (self.scatter)(src, dst);
                        match (&mut staging, self.space) {
                            (Some(staging), Some(space)) => match self.combine {
                                Some(combine) => staging.push_combined(space, dst, value, combine),
                                None => staging.push(space, dst, value),
                            },
                            _ => {
                                // Sync variant: apply directly with the
                                // user's atomic gather — the CAS path.
                                local_records += 1;
                                if (self.gather)(dst, value) && self.output {
                                    self.out.insert(dst);
                                }
                            }
                        }
                    }
                };
                if bytewise {
                    self.engine.graph.for_each_vertex_in_page_bytewise(
                        page,
                        data,
                        &mut scratch,
                        &mut body,
                    );
                } else {
                    self.engine
                        .graph
                        .for_each_vertex_in_page(page, data, &mut scratch, &mut body);
                }
            }
            self.pool.release(filled.buffer);
            busy_ns += t.elapsed().as_nanos() as u64;
        }
        if let (Some(staging), Some(space)) = (&mut staging, self.space) {
            let t = Instant::now();
            staging.flush(space);
            busy_ns += t.elapsed().as_nanos() as u64;
            self.io_stats
                .add_records_combined(staging.records_combined());
        }
        self.io_stats.add_scatter_ns(busy_ns);
        self.io_stats.add_io_wait_ns(wait_ns);
        self.edges_processed
            .fetch_add(local_edges, Ordering::Relaxed); // sync-audit: trace counter; read only after the job completes.
        self.records_sync
            .fetch_add(local_records, Ordering::Relaxed); // sync-audit: trace counter; read only after the job completes.
    }

    /// Gather role (steps 8-9); not dispatched in the sync variant. Each
    /// worker drains its *home* full-bin queue (`bin_id % num_gather`)
    /// before stealing from peers, so repeated fills of one bin keep
    /// landing on the same worker's cache-warm vertex range.
    fn run_gather(&self, worker: usize) {
        let Some(space) = self.space else {
            return;
        };
        let mut busy_ns = 0u64;
        let backoff = Backoff::new();
        loop {
            let t = Instant::now();
            let progressed = space.process_one_full_for(worker, |_, records| {
                for r in records {
                    if (self.gather)(r.dst, r.value) && self.output {
                        self.out.insert(r.dst);
                    }
                }
            });
            if progressed {
                busy_ns += t.elapsed().as_nanos() as u64;
                backoff.reset();
                continue;
            }
            if self.all_scatter_done.load(Ordering::Acquire) // sync-audit: completion flag; guarded by the full-queue recheck below.
                && space.full_queue_is_empty()
            {
                break;
            }
            backoff.snooze();
        }
        self.io_stats.add_gather_ns(busy_ns);
    }
}

impl std::fmt::Debug for BlazeEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlazeEngine")
            .field("graph", &self.graph)
            .field("scatter", &self.options.num_scatter)
            .field("gather", &self.options.num_gather)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vertex_array::VertexArray;
    use blaze_graph::gen::{rmat, uniform, RmatConfig};
    use blaze_graph::Csr;
    use blaze_storage::StripedStorage;

    fn engine(g: &Csr, devices: usize, options: EngineOptions) -> BlazeEngine {
        let storage = Arc::new(StripedStorage::in_memory(devices).unwrap());
        let graph = Arc::new(DiskGraph::create(g, storage).unwrap());
        BlazeEngine::new(graph, options).unwrap()
    }

    /// In-memory BFS parents -> levels for comparison.
    fn bfs_levels_ref(g: &Csr, root: u32) -> Vec<i64> {
        let mut level = vec![-1i64; g.num_vertices()];
        level[root as usize] = 0;
        let mut frontier = vec![root];
        let mut depth = 0;
        while !frontier.is_empty() {
            depth += 1;
            let mut next = Vec::new();
            for &v in &frontier {
                for &d in g.neighbors(v) {
                    if level[d as usize] == -1 {
                        level[d as usize] = depth;
                        next.push(d);
                    }
                }
            }
            frontier = next;
        }
        level
    }

    /// Out-of-core BFS levels via edge_map.
    fn bfs_levels_engine(engine: &BlazeEngine, root: u32, sync: bool) -> Vec<i64> {
        let n = engine.num_vertices();
        let level = VertexArray::<i64>::new(n, -1);
        level.set(root as usize, 0);
        let mut frontier = VertexSubset::single(n, root);
        let mut depth: i64 = 0;
        while !frontier.is_empty() {
            depth += 1;
            let d = depth;
            let scatter = |_s: u32, _d: u32| 0u32;
            let cond = |dst: u32| level.get(dst as usize) == -1;
            frontier = if sync {
                engine
                    .edge_map_sync(
                        &frontier,
                        scatter,
                        |dst: u32, _v: u32| {
                            level
                                .fetch_update(dst as usize, |cur| (cur == -1).then_some(d))
                                .is_ok()
                        },
                        cond,
                        true,
                    )
                    .unwrap()
            } else {
                engine
                    .edge_map(
                        &frontier,
                        scatter,
                        |dst: u32, _v: u32| {
                            if level.get(dst as usize) == -1 {
                                level.set(dst as usize, d);
                                true
                            } else {
                                false
                            }
                        },
                        cond,
                        true,
                    )
                    .unwrap()
            };
        }
        level.to_vec()
    }

    #[test]
    fn edge_map_bfs_matches_reference_single_device() {
        let g = rmat(&RmatConfig::new(9));
        let e = engine(&g, 1, EngineOptions::default());
        assert_eq!(bfs_levels_engine(&e, 0, false), bfs_levels_ref(&g, 0));
    }

    #[test]
    fn edge_map_bfs_matches_reference_striped() {
        let g = uniform(9, 8, 3);
        let e = engine(&g, 4, EngineOptions::default());
        assert_eq!(bfs_levels_engine(&e, 1, false), bfs_levels_ref(&g, 1));
    }

    #[test]
    fn sync_variant_matches_reference() {
        let g = rmat(&RmatConfig::new(8));
        let e = engine(&g, 2, EngineOptions::default());
        assert_eq!(bfs_levels_engine(&e, 0, true), bfs_levels_ref(&g, 0));
    }

    #[test]
    fn edge_map_with_many_threads() {
        let g = rmat(&RmatConfig::new(8));
        let e = engine(&g, 2, EngineOptions::default().with_compute_workers(8, 0.5));
        assert_eq!(bfs_levels_engine(&e, 0, false), bfs_levels_ref(&g, 0));
    }

    #[test]
    fn full_frontier_touches_every_edge() {
        let g = rmat(&RmatConfig::new(8));
        let e = engine(&g, 1, EngineOptions::default());
        let frontier = VertexSubset::full(g.num_vertices());
        let sum = VertexArray::<u64>::new(g.num_vertices(), 0);
        e.edge_map(
            &frontier,
            |_s, _d| 1u32,
            |dst, v| {
                sum.set(dst as usize, sum.get(dst as usize) + v as u64);
                true
            },
            |_| true,
            false,
        )
        .unwrap();
        let total: u64 = (0..g.num_vertices()).map(|i| sum.get(i)).sum();
        assert_eq!(total, g.num_edges(), "every edge delivered exactly once");
        let stats = e.stats();
        assert_eq!(stats.edges_processed, g.num_edges());
        assert_eq!(stats.records_produced, g.num_edges());
    }

    #[test]
    fn cond_filters_scatter() {
        let g = rmat(&RmatConfig::new(8));
        let e = engine(&g, 1, EngineOptions::default());
        let frontier = VertexSubset::full(g.num_vertices());
        // cond rejects everything: no records, no gather calls.
        let out = e
            .edge_map(
                &frontier,
                |_s, _d| 0u32,
                |_dst, _v| panic!("gather must not run"),
                |_| false,
                true,
            )
            .unwrap();
        assert!(out.is_empty());
        assert_eq!(e.stats().records_produced, 0);
        assert_eq!(e.stats().edges_processed, g.num_edges());
    }

    #[test]
    fn output_false_returns_empty_frontier() {
        let g = rmat(&RmatConfig::new(7));
        let e = engine(&g, 1, EngineOptions::default());
        let frontier = VertexSubset::full(g.num_vertices());
        let out = e
            .edge_map(&frontier, |_s, _d| 0u32, |_d, _v| true, |_| true, false)
            .unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn empty_frontier_is_a_no_op() {
        let g = rmat(&RmatConfig::new(7));
        let e = engine(&g, 1, EngineOptions::default());
        let mut frontier = VertexSubset::new(g.num_vertices());
        frontier.seal();
        let out = e
            .edge_map(&frontier, |_s, _d| 0u32, |_d, _v| true, |_| true, true)
            .unwrap();
        assert!(out.is_empty());
        assert_eq!(e.stats().io_bytes, 0);
    }

    #[test]
    fn traces_record_io_and_work() {
        let g = rmat(&RmatConfig::new(9));
        let e = engine(&g, 2, EngineOptions::default());
        let frontier = VertexSubset::full(g.num_vertices());
        e.edge_map(&frontier, |s, _d| s, |_d, _v| false, |_| true, false)
            .unwrap();
        let traces = e.take_traces();
        assert_eq!(traces.len(), 1);
        let t = &traces[0];
        assert_eq!(t.io_bytes_per_device.len(), 2);
        assert!(
            t.total_io_bytes() >= g.num_edges() * 4,
            "every edge byte read"
        );
        assert_eq!(t.edges_processed, g.num_edges());
        assert_eq!(t.records_per_bin.iter().sum::<u64>(), t.records_produced);
        // Page interleaving keeps the per-device IO balanced (Section IV-E).
        let max = *t.io_bytes_per_device.iter().max().unwrap();
        let min = *t.io_bytes_per_device.iter().min().unwrap();
        assert!(max - min <= 8 * 4096, "skew {max}-{min}");
        // A full-frontier scan reads contiguous pages: merging must produce
        // mostly multi-page (sequential) requests.
        assert!(
            t.total_io_requests() < t.total_io_bytes() / 4096,
            "requests should cover merged pages"
        );
    }

    #[test]
    fn sparse_frontier_reads_only_needed_pages() {
        let g = rmat(&RmatConfig::new(10));
        let e = engine(&g, 1, EngineOptions::default());
        // One low-degree vertex: IO should be a handful of pages, not the
        // whole graph.
        let v = (0..g.num_vertices() as u32)
            .find(|&v| g.degree(v) >= 1 && g.degree(v) <= 8)
            .unwrap();
        let frontier = VertexSubset::single(g.num_vertices(), v);
        e.edge_map(&frontier, |s, _d| s, |_d, _v| false, |_| true, false)
            .unwrap();
        let io = e.stats().io_bytes;
        assert!(io <= 4 * 4096, "sparse frontier read {io} bytes");
        assert!(io >= 4096);
    }

    #[test]
    fn page_cache_serves_repeated_iterations() {
        let g = rmat(&RmatConfig::new(9));
        let e = engine(&g, 2, EngineOptions::default().with_page_cache(1 << 16));
        let frontier = VertexSubset::full(g.num_vertices());
        for _ in 0..2 {
            e.edge_map(&frontier, |s, _d| s, |_d, _v| false, |_| true, false)
                .unwrap();
        }
        let traces = e.take_traces();
        assert_eq!(traces[0].cache_hit_pages, 0, "cold cache");
        let pages = traces[0].total_io_bytes() / 4096;
        assert_eq!(traces[0].cache_miss_pages, pages, "cold pass all misses");
        assert_eq!(traces[1].cache_hit_pages, pages, "second pass fully cached");
        assert_eq!(traces[1].cache_miss_pages, 0);
        assert_eq!(traces[1].total_io_bytes(), 0, "no device reads when cached");
        let stats = e.stats();
        assert_eq!(stats.cache_hit_pages, pages);
        assert_eq!(stats.cache_miss_pages, pages);
    }

    #[test]
    fn zero_budget_bypasses_cache_entirely() {
        let g = rmat(&RmatConfig::new(9));
        let uncached = engine(&g, 2, EngineOptions::default());
        let bypassed = engine(&g, 2, EngineOptions::default().with_cache_bytes(0));
        assert!(bypassed.page_cache().is_none(), "0 bytes means no cache");
        // Sub-page budgets round down to zero frames and are also bypassed.
        let tiny = engine(&g, 2, EngineOptions::default().with_cache_bytes(100));
        assert!(tiny.page_cache().is_none());
        let frontier = VertexSubset::full(g.num_vertices());
        for e in [&uncached, &bypassed] {
            for _ in 0..2 {
                e.edge_map(&frontier, |s, _d| s, |_d, _v| false, |_| true, false)
                    .unwrap();
            }
        }
        let a = uncached.take_traces();
        let b = bypassed.take_traces();
        for (ta, tb) in a.iter().zip(&b) {
            assert_eq!(ta.io_bytes_per_device, tb.io_bytes_per_device);
            assert_eq!(ta.io_requests_per_device, tb.io_requests_per_device);
            assert_eq!(
                ta.io_sequential_requests_per_device,
                tb.io_sequential_requests_per_device
            );
            assert_eq!(tb.cache_hit_pages, 0);
            assert_eq!(tb.cache_miss_pages, 0);
            assert_eq!(tb.cache_evictions, 0);
        }
    }

    #[test]
    fn cache_hit_splits_merged_runs() {
        // Prime only the middle page of a contiguous three-page run: the
        // next scan must serve it from the cache and read the two
        // neighbors as two separate single-page requests.
        let g = rmat(&RmatConfig::new(10));
        let e = engine(&g, 1, EngineOptions::default().with_page_cache(1));
        let n = g.num_vertices();
        // A vertex whose single page sits strictly inside the page range of
        // a full scan.
        let v = (0..n as u32)
            .find(|&v| {
                e.graph()
                    .pages_of_vertex(v)
                    .is_some_and(|r| r.start() == r.end() && *r.start() > 0)
            })
            .unwrap();
        e.edge_map(
            &VertexSubset::single(n, v),
            |s, _d| s,
            |_d, _v| false,
            |_| true,
            false,
        )
        .unwrap();
        let frontier = VertexSubset::full(n);
        e.edge_map(&frontier, |s, _d| s, |_d, _v| false, |_| true, false)
            .unwrap();
        let traces = e.take_traces();
        let t = &traces[1];
        assert!(t.cache_hit_pages >= 1, "primed page must hit");
        // The hole forces at least one extra request versus unbroken
        // merging of the same page count.
        let pages = (t.total_io_bytes() / 4096) as usize;
        let window = e.options().merge_window as u64;
        assert!(
            t.total_io_requests() > (pages as u64).div_ceil(window),
            "a mid-run hit must split a merged request"
        );
    }

    #[test]
    fn cached_bfs_matches_reference() {
        let g = rmat(&RmatConfig::new(9));
        let e = engine(&g, 1, EngineOptions::default().with_page_cache(128));
        assert_eq!(bfs_levels_engine(&e, 0, false), bfs_levels_ref(&g, 0));
        let s = e.page_cache().unwrap().stats();
        assert!(s.hits + s.misses > 0);
    }

    #[test]
    fn tiny_cache_partially_serves() {
        let g = rmat(&RmatConfig::new(10));
        let e = engine(&g, 1, EngineOptions::default().with_page_cache(4));
        let frontier = VertexSubset::full(g.num_vertices());
        for _ in 0..2 {
            e.edge_map(&frontier, |s, _d| s, |_d, _v| false, |_| true, false)
                .unwrap();
        }
        let traces = e.take_traces();
        let pages = traces[0].total_io_bytes() / 4096;
        assert!(
            traces[1].cache_hit_pages < pages / 2,
            "4-page cache cannot serve a scan"
        );
        assert!(traces[1].total_io_bytes() > 0);
    }

    #[test]
    fn atomic_ops_counted_only_in_sync_variant() {
        let g = rmat(&RmatConfig::new(8));
        let e = engine(&g, 1, EngineOptions::default());
        let frontier = VertexSubset::full(g.num_vertices());
        e.edge_map(&frontier, |_s, _d| 0u32, |_d, _v| false, |_| true, false)
            .unwrap();
        let t = e.take_traces().pop().unwrap();
        assert_eq!(t.atomic_ops, 0);
        e.edge_map_sync(&frontier, |_s, _d| 0u32, |_d, _v| false, |_| true, false)
            .unwrap();
        let t = e.take_traces().pop().unwrap();
        assert_eq!(t.atomic_ops, g.num_edges());
    }

    #[test]
    fn arena_is_reused_across_iterations() {
        let g = rmat(&RmatConfig::new(8));
        let e = engine(&g, 1, EngineOptions::default());
        let frontier = VertexSubset::full(g.num_vertices());
        e.edge_map(&frontier, |s, _d| s, |_d, _v| false, |_| true, false)
            .unwrap();
        // A clean job recycles its pool and bin space into the arena cache.
        assert_eq!(e.arena.idle_len(), 2);
        e.edge_map(&frontier, |s, _d| s, |_d, _v| false, |_| true, false)
            .unwrap();
        assert_eq!(e.arena.idle_len(), 2, "second job reused the cached arena");
    }

    #[test]
    fn threaded_backend_bfs_matches_reference() {
        let g = uniform(9, 8, 7);
        for devices in [1, 4] {
            let e = engine(&g, devices, EngineOptions::default().with_queue_depth(8));
            assert_eq!(bfs_levels_engine(&e, 1, false), bfs_levels_ref(&g, 1));
            // And with the cache in the loop (packed hit buffers + deep
            // queue on the miss path).
            let e = engine(
                &g,
                devices,
                EngineOptions::default()
                    .with_queue_depth(8)
                    .with_page_cache(64),
            );
            assert_eq!(bfs_levels_engine(&e, 1, false), bfs_levels_ref(&g, 1));
        }
    }

    #[test]
    fn traces_record_in_flight_depth() {
        // Big enough that one device sees well over `queue_depth` merged
        // requests (4096 vertices × 16 edges ≈ 64 pages ≈ 16 requests).
        let g = uniform(12, 16, 3);
        let frontier = VertexSubset::full(g.num_vertices());
        // Synchronous backend: exactly one request in flight, ever.
        let e = engine(&g, 2, EngineOptions::default());
        e.edge_map(&frontier, |s, _d| s, |_d, _v| false, |_| true, false)
            .unwrap();
        let t = e.take_traces().pop().unwrap();
        assert_eq!(t.io_max_in_flight, 1);
        assert!((t.io_mean_in_flight - 1.0).abs() < 1e-9);
        assert_eq!(
            t.io_latency_buckets.iter().sum::<u64>(),
            t.total_io_requests(),
            "every request lands in one latency bucket"
        );
        assert_eq!(e.stats().io_max_in_flight, 1);
        // Threaded backend: the pump fills the window before reaping, so a
        // scan with enough requests per device must reach the full depth.
        let e = engine(&g, 1, EngineOptions::default().with_queue_depth(8));
        e.edge_map(&frontier, |s, _d| s, |_d, _v| false, |_| true, false)
            .unwrap();
        let t = e.take_traces().pop().unwrap();
        assert!(t.total_io_requests() >= 8, "scan too small for the window");
        assert_eq!(t.io_max_in_flight, 8);
        assert!(t.io_mean_in_flight > 1.0);
        assert!(t.io_mean_in_flight <= 8.0);
        assert_eq!(
            t.io_latency_buckets.iter().sum::<u64>(),
            t.total_io_requests()
        );
        assert_eq!(e.stats().io_max_in_flight, 8);
    }

    #[test]
    fn packed_cache_hits_deliver_every_edge() {
        // A fully-cached second scan serves hits from *packed* buffers
        // (many frames per buffer); every edge must still be delivered
        // exactly once through the frame ↔ pages[i] mapping.
        let g = rmat(&RmatConfig::new(9));
        let e = engine(&g, 2, EngineOptions::default().with_page_cache(1 << 16));
        let frontier = VertexSubset::full(g.num_vertices());
        for pass in 0..2 {
            let sum = VertexArray::<u64>::new(g.num_vertices(), 0);
            e.edge_map(
                &frontier,
                |_s, _d| 1u32,
                |dst, v| {
                    sum.set(dst as usize, sum.get(dst as usize) + v as u64);
                    true
                },
                |_| true,
                false,
            )
            .unwrap();
            let total: u64 = (0..g.num_vertices()).map(|i| sum.get(i)).sum();
            assert_eq!(total, g.num_edges(), "pass {pass} delivered every edge");
        }
        let traces = e.take_traces();
        let pages = traces[0].total_io_bytes() / 4096;
        assert_eq!(traces[1].cache_hit_pages, pages, "second pass fully cached");
        assert_eq!(traces[1].total_io_bytes(), 0);
    }

    #[test]
    fn io_error_fails_job_and_recycles_arena() {
        use blaze_storage::{FaultyDevice, MemDevice, StripedStorage};
        let g = rmat(&RmatConfig::new(8));
        let storage = Arc::new(
            StripedStorage::new(vec![Arc::new(FaultyDevice::fail_every(
                MemDevice::new(),
                1,
            ))])
            .unwrap(),
        );
        let graph = Arc::new(DiskGraph::create(&g, storage).unwrap());
        let e = BlazeEngine::new(graph, EngineOptions::default()).unwrap();
        let frontier = VertexSubset::full(g.num_vertices());
        let r = e.edge_map(&frontier, |s, _d| s, |_d, _v| false, |_| true, false);
        assert!(matches!(r, Err(BlazeError::Io(_))), "got {r:?}");
        // The job drained cleanly: its pool returned every buffer and both
        // arena pieces were recycled for the next job.
        assert_eq!(e.arena.idle_len(), 2, "failed job must recycle its arena");
    }

    #[test]
    fn io_error_under_threaded_backend_drains_and_fails() {
        use blaze_storage::{FaultyDevice, MemDevice, StripedStorage};
        let g = uniform(12, 16, 3);
        // Every third read fails: successes and failures interleave in the
        // completion stream at depth 8, exercising the drain path.
        let storage = Arc::new(
            StripedStorage::new(vec![Arc::new(FaultyDevice::fail_every(
                MemDevice::new(),
                3,
            ))])
            .unwrap(),
        );
        let graph = Arc::new(DiskGraph::create(&g, storage).unwrap());
        let e = BlazeEngine::new(graph, EngineOptions::default().with_queue_depth(8)).unwrap();
        let frontier = VertexSubset::full(g.num_vertices());
        let r = e.edge_map(&frontier, |s, _d| s, |_d, _v| false, |_| true, false);
        assert!(matches!(r, Err(BlazeError::Io(_))), "got {r:?}");
        assert_eq!(e.arena.idle_len(), 2, "drained job must recycle its arena");
    }

    /// Full-frontier edge-count scan: delivers every edge exactly once
    /// when correct, so the returned sum doubles as a delivery check.
    fn edge_sum(e: &BlazeEngine) -> u64 {
        let n = e.num_vertices();
        let frontier = VertexSubset::full(n);
        let sum = VertexArray::<u64>::new(n, 0);
        e.edge_map(
            &frontier,
            |_s, _d| 1u32,
            |dst, v| {
                sum.set(dst as usize, sum.get(dst as usize) + v as u64);
                true
            },
            |_| true,
            false,
        )
        .unwrap();
        (0..n).map(|i| sum.get(i)).sum()
    }

    #[test]
    fn retained_flights_serve_back_to_back_scans() {
        // With scan sharing on and no page cache, the retention ring alone
        // must serve a repeat scan: every page of the second pass joins a
        // retained flight and zero device bytes move.
        let g = rmat(&RmatConfig::new(9));
        let e = engine(&g, 2, EngineOptions::default().with_scan_sharing(true));
        assert_eq!(edge_sum(&e), g.num_edges(), "first pass delivery");
        assert_eq!(edge_sum(&e), g.num_edges(), "shared-frame pass delivery");
        let traces = e.take_traces();
        let pages = traces[0].total_io_bytes() / PAGE_SIZE as u64;
        assert!(traces[0].flights_led > 0, "cold pass leads its reads");
        assert_eq!(
            traces[0].shared_hit_pages, 0,
            "cold pass has nothing to join"
        );
        assert_eq!(traces[1].total_io_bytes(), 0, "repeat scan fully shared");
        assert_eq!(traces[1].shared_hit_pages, pages);
        assert_eq!(traces[1].flights_led, 0);
        let stats = e.stats();
        assert_eq!(stats.shared_hit_pages, pages);
        assert_eq!(stats.shared_bytes, pages * PAGE_SIZE as u64);
        assert!(stats.flights_led > 0);
    }

    #[test]
    fn zero_retention_scan_sharing_still_reads_everything() {
        // retain = 0: only concurrently-pending flights coalesce, so two
        // back-to-back scans both pay full device IO — and both deliver.
        let g = rmat(&RmatConfig::new(8));
        let e = engine(
            &g,
            1,
            EngineOptions::default()
                .with_scan_sharing(true)
                .with_scan_share_retain(0),
        );
        assert_eq!(edge_sum(&e), g.num_edges());
        assert_eq!(edge_sum(&e), g.num_edges());
        let traces = e.take_traces();
        assert_eq!(traces[0].total_io_bytes(), traces[1].total_io_bytes());
        assert_eq!(traces[1].shared_hit_pages, 0);
    }

    #[test]
    fn concurrent_shared_scans_conserve_pages_and_deliver_every_edge() {
        // K identical concurrent full scans under sharing: each job's
        // device pages + shared pages must equal the solo page count (every
        // planned page lands in exactly one flight part), every job's edge
        // delivery must be exact, and — with flights either pending or
        // retained whenever a later planner arrives — somebody shares.
        let g = rmat(&RmatConfig::new(9));
        let solo = engine(&g, 2, EngineOptions::default());
        assert_eq!(edge_sum(&solo), g.num_edges());
        let solo_pages = solo.take_traces()[0].total_io_bytes() / PAGE_SIZE as u64;
        let e = engine(
            &g,
            2,
            EngineOptions::default()
                .with_scan_sharing(true)
                .with_scan_share_lanes(4),
        );
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..4).map(|_| s.spawn(|| edge_sum(&e))).collect();
            for h in handles {
                assert_eq!(h.join().unwrap(), g.num_edges());
            }
        });
        let traces = e.take_traces();
        assert_eq!(traces.len(), 4);
        for t in &traces {
            let device_pages = t.total_io_bytes() / PAGE_SIZE as u64;
            assert_eq!(
                device_pages + t.shared_hit_pages,
                solo_pages,
                "every page read once or shared"
            );
        }
        let stats = e.stats();
        assert!(stats.shared_hit_pages > 0, "concurrent scans must share");
        assert!(stats.flights_led > 0);
    }

    #[test]
    fn failed_leader_wave_does_not_wedge_the_next_wave() {
        use blaze_storage::{FaultyDevice, MemDevice, StripedStorage};
        // Wave 1: every device read fails, so leaders fail their flights
        // and subscribers see the propagated error — all jobs fail. Heal
        // the device; wave 2 on the same engine must succeed: no wedged
        // waiters, no leaked flights, arena fully recycled.
        let g = rmat(&RmatConfig::new(8));
        let dev = Arc::new(FaultyDevice::fail_every(MemDevice::new(), 1));
        let storage = Arc::new(StripedStorage::new(vec![dev.clone()]).unwrap());
        let graph = Arc::new(DiskGraph::create(&g, storage).unwrap());
        let e = BlazeEngine::new(
            graph,
            EngineOptions::default()
                .with_scan_sharing(true)
                .with_scan_share_lanes(4),
        )
        .unwrap();
        let frontier = VertexSubset::full(g.num_vertices());
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    s.spawn(|| e.edge_map(&frontier, |s, _d| s, |_d, _v| false, |_| true, false))
                })
                .collect();
            for h in handles {
                let r = h.join().unwrap();
                assert!(matches!(r, Err(BlazeError::Io(_))), "got {r:?}");
            }
        });
        assert!(dev.injected_failures() > 0);
        // Concurrent jobs may have forced extra arenas into existence, but
        // every piece checked out must be back (pool + space pairs).
        let idle = e.arena.idle_len();
        assert!(
            idle >= 2 && idle.is_multiple_of(2),
            "failed wave recycled its arenas, idle {idle}"
        );
        dev.set_fail_every(0);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..4).map(|_| s.spawn(|| edge_sum(&e))).collect();
            for h in handles {
                assert_eq!(h.join().unwrap(), g.num_edges(), "healed wave delivers");
            }
        });
    }

    #[test]
    fn shared_scans_match_unshared_byte_identical_traces() {
        // Sharing off vs a solo job with sharing on: identical request
        // streams (one lane, no joins possible solo after reset) — the
        // flight table must be IO-invisible to a lone job with retention 0.
        let g = rmat(&RmatConfig::new(9));
        let plain = engine(&g, 2, EngineOptions::default());
        let shared = engine(
            &g,
            2,
            EngineOptions::default()
                .with_scan_sharing(true)
                .with_scan_share_retain(0),
        );
        assert_eq!(edge_sum(&plain), g.num_edges());
        assert_eq!(edge_sum(&shared), g.num_edges());
        let a = plain.take_traces();
        let b = shared.take_traces();
        assert_eq!(a[0].io_bytes_per_device, b[0].io_bytes_per_device);
        assert_eq!(a[0].io_requests_per_device, b[0].io_requests_per_device);
        assert_eq!(b[0].shared_hit_pages, 0);
    }

    /// A star graph: every vertex points at vertex 0, so every staged
    /// record shares one destination and scatter-side combining is
    /// guaranteed to merge within every staging window.
    fn star(n: usize) -> Csr {
        let offsets = (0..=n as u64).collect();
        let neighbors = vec![0u32; n];
        Csr::from_parts(offsets, neighbors)
    }

    #[test]
    fn combined_edge_map_matches_uncombined() {
        for g in [rmat(&RmatConfig::new(9)), star(3000)] {
            let e = engine(&g, 2, EngineOptions::default());
            let frontier = VertexSubset::full(g.num_vertices());
            let run = |combined: bool| {
                let sum = VertexArray::<u64>::new(g.num_vertices(), 0);
                let scatter = |_s: u32, _d: u32| 1u64;
                let gather = |dst: u32, v: u64| {
                    sum.set(dst as usize, sum.get(dst as usize) + v);
                    true
                };
                if combined {
                    e.edge_map_combined(&frontier, scatter, gather, |a, b| a + b, |_| true, false)
                        .unwrap();
                } else {
                    e.edge_map(&frontier, scatter, gather, |_| true, false)
                        .unwrap();
                }
                (0..g.num_vertices())
                    .map(|i| sum.get(i))
                    .collect::<Vec<_>>()
            };
            assert_eq!(run(false), run(true), "combining must not change sums");
        }
    }

    #[test]
    fn combining_reduces_records_on_a_star_graph() {
        let g = star(3000);
        let e = engine(&g, 1, EngineOptions::default());
        let frontier = VertexSubset::full(g.num_vertices());
        e.edge_map_combined(
            &frontier,
            |_s, _d| 1u64,
            |_d, _v| false,
            |a, b| a + b,
            |_| true,
            false,
        )
        .unwrap();
        let t = e.take_traces().pop().unwrap();
        assert_eq!(
            t.records_combined + t.records_produced,
            g.num_edges(),
            "pre-combine stream is edges passing cond"
        );
        assert!(
            t.records_combined > t.records_produced,
            "a single-hub graph must combine most records \
             ({} combined, {} produced)",
            t.records_combined,
            t.records_produced
        );
        // The uncombined path reports zero.
        e.edge_map(&frontier, |_s, _d| 1u64, |_d, _v| false, |_| true, false)
            .unwrap();
        let t = e.take_traces().pop().unwrap();
        assert_eq!(t.records_combined, 0);
        assert_eq!(t.records_produced, g.num_edges());
    }

    #[test]
    fn bytewise_decode_matches_zero_copy() {
        let g = rmat(&RmatConfig::new(9));
        let e = engine(&g, 2, EngineOptions::default().with_bytewise_decode(true));
        assert_eq!(bfs_levels_engine(&e, 0, false), bfs_levels_ref(&g, 0));
    }

    #[test]
    fn traces_record_compute_stage_timings() {
        let g = rmat(&RmatConfig::new(9));
        let e = engine(&g, 1, EngineOptions::default());
        let frontier = VertexSubset::full(g.num_vertices());
        e.edge_map(&frontier, |s, _d| s, |_d, _v| false, |_| true, false)
            .unwrap();
        let t = e.take_traces().pop().unwrap();
        assert!(t.scatter_ns > 0, "scatter walked every page");
        assert!(t.gather_ns > 0, "gather applied full bins");
        let s = e.stats();
        assert_eq!(s.scatter_ns, t.scatter_ns);
        assert_eq!(s.gather_ns, t.gather_ns);
        // The sync variant never runs gather workers.
        e.edge_map_sync(&frontier, |s, _d| s, |_d, _v| false, |_| true, false)
            .unwrap();
        let t = e.take_traces().pop().unwrap();
        assert!(t.scatter_ns > 0);
        assert_eq!(t.gather_ns, 0);
    }

    /// Barrier-free BFS via `edge_map_async`: min-relax levels, priority =
    /// current level (lower levels drain first, Dijkstra-style).
    fn bfs_levels_async(engine: &BlazeEngine, root: u32) -> Vec<i64> {
        let n = engine.num_vertices();
        let level = VertexArray::<i64>::new(n, -1);
        level.set(root as usize, 0);
        let snap = engine
            .edge_map_async(
                &[root],
                |s: u32, _d: u32| (level.get(s as usize) + 1) as u64,
                |dst: u32, lvl: u64| {
                    let lvl = lvl as i64;
                    let cur = level.get(dst as usize);
                    if cur == -1 || lvl < cur {
                        level.set(dst as usize, lvl);
                        true
                    } else {
                        false
                    }
                },
                |_| true,
                |v: u32| level.get(v as usize).max(0) as u64,
            )
            .unwrap();
        assert!(snap.batches >= 1, "a seeded run drains at least one batch");
        assert_eq!(snap.pushed, snap.popped, "quiescent: every push was popped");
        level.to_vec()
    }

    #[test]
    fn async_edge_map_bfs_matches_reference() {
        let g = rmat(&RmatConfig::new(9));
        let e = engine(&g, 2, EngineOptions::default());
        assert_eq!(bfs_levels_async(&e, 0), bfs_levels_ref(&g, 0));
        let stats = e.stats();
        assert!(stats.async_rounds >= 1, "rounds must be traced as async");
        assert_eq!(stats.iterations as u64, stats.async_rounds);
        assert!(stats.async_activations >= 1);
        let traces = e.take_traces();
        assert!(traces.iter().all(|t| t.async_round));
        assert_eq!(
            traces.iter().map(|t| t.async_activations).sum::<u64>(),
            stats.async_activations
        );
    }

    #[test]
    fn async_tiny_batches_still_converge() {
        // Batch cap far below the frontier size plus a saturating bucket
        // count: overflow re-queueing and bucket saturation both exercised.
        let g = uniform(9, 8, 3);
        let e = engine(
            &g,
            1,
            EngineOptions::default()
                .with_async_batch_max(16)
                .with_async_buckets(4),
        );
        assert_eq!(bfs_levels_async(&e, 1), bfs_levels_ref(&g, 1));
    }

    #[test]
    fn async_rounds_interleave_with_barriered_jobs() {
        // One engine serves an async run and a barriered BFS back to back;
        // the sync path's traces must stay un-flagged.
        let g = rmat(&RmatConfig::new(8));
        let e = engine(&g, 1, EngineOptions::default());
        assert_eq!(bfs_levels_async(&e, 0), bfs_levels_ref(&g, 0));
        e.take_traces();
        assert_eq!(bfs_levels_engine(&e, 0, false), bfs_levels_ref(&g, 0));
        assert!(e.take_traces().iter().all(|t| !t.async_round));
    }

    #[test]
    fn panicking_job_leaves_engine_usable() {
        let g = rmat(&RmatConfig::new(8));
        let e = engine(&g, 1, EngineOptions::default());
        let frontier = VertexSubset::full(g.num_vertices());
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            e.edge_map(
                &frontier,
                |_s, _d| -> u32 { panic!("user scatter exploded") },
                |_d, _v| false,
                |_| true,
                false,
            )
        }));
        assert!(caught.is_err(), "scatter panic must reach the submitter");
        // The persistent workers survive a poisoned job; the same engine
        // serves the next query correctly.
        assert_eq!(bfs_levels_engine(&e, 0, false), bfs_levels_ref(&g, 0));
    }
}
