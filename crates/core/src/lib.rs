//! The Blaze out-of-core engine: `EdgeMap` / `VertexMap` over a
//! disk-resident, page-interleaved CSR, powered by online binning.
//!
//! # Architecture (Figure 5)
//!
//! The engine owns a *persistent* pipeline [`Runtime`] of
//! three worker groups, spawned once at engine construction and reused for
//! every call; each `edge_map` is a *job submission* that blocks until the
//! runtime completes it:
//!
//! 1. **IO workers** (one per device) pop local page ids, merge up to four
//!    contiguous pages per request, read them into buffers from the job's
//!    free MPMC queue, and push filled buffers to the filled MPMC queue.
//! 2. **Scatter workers** pop filled buffers, decode each page via the
//!    page→vertex map, evaluate `cond`/`scatter` for every edge whose
//!    source is in the frontier, and stage the resulting `(dst, value)`
//!    records into bins through per-thread staging buffers.
//! 3. **Gather workers** pop full bins and apply the user's `gather`
//!    function to vertex data — each bin exclusively, so updates need no
//!    atomics — inserting activated vertices into the output frontier.
//!
//! Bin spaces and IO buffer pools are per-job, checked out of an
//! [`EngineArena`] and recycled across iterations, so
//! independent jobs submitted from multiple threads interleave through the
//! shared workers without contending on each other's buffers.
//!
//! A synchronization-based variant ([`BlazeEngine::edge_map_sync`]) applies
//! updates directly from scatter workers with compare-and-swap, reproducing
//! the baseline of Figure 8(b).
//!
//! # Quickstart
//!
//! ```
//! use blaze_sync::Arc;
//! use blaze_core::{BlazeEngine, EngineOptions, VertexArray};
//! use blaze_frontier::VertexSubset;
//! use blaze_graph::{gen, DiskGraph};
//! use blaze_storage::StripedStorage;
//!
//! // Build a small graph on one in-memory "SSD".
//! let csr = gen::rmat(&gen::RmatConfig::new(8));
//! let storage = Arc::new(StripedStorage::in_memory(1).unwrap());
//! let graph = Arc::new(DiskGraph::create(&csr, storage).unwrap());
//! let engine = BlazeEngine::new(graph.clone(), EngineOptions::default()).unwrap();
//!
//! // Out-of-core BFS from vertex 0 (Algorithm 1 of the paper).
//! let n = graph.num_vertices();
//! let parent = VertexArray::<i64>::new(n, -1);
//! parent.set(0, 0);
//! let mut frontier = VertexSubset::single(n, 0);
//! while !frontier.is_empty() {
//!     frontier = engine.edge_map(
//!         &frontier,
//!         |src, _dst| src,                       // scatter: propagate parent id
//!         |dst, v| {
//!             if parent.get(dst as usize) == -1 {
//!                 parent.set(dst as usize, v as i64);
//!                 true
//!             } else {
//!                 false
//!             }
//!         },
//!         |dst| parent.get(dst as usize) == -1,  // cond: unvisited only
//!         true,
//!     ).unwrap();
//! }
//! assert_eq!(parent.get(0), 0);
//! ```

pub mod arena;
pub mod engine;
pub mod memory;
pub mod options;
pub mod runtime;
pub mod shardpool;
pub mod stats;
pub mod vertex_array;
pub mod vertex_map;

pub use arena::EngineArena;
pub use blaze_storage::PageCache;
pub use engine::BlazeEngine;
pub use memory::MemoryFootprint;
pub use options::EngineOptions;
pub use runtime::{PipelineJob, Runtime};
pub use shardpool::ShardPool;
pub use stats::ExecStats;
pub use vertex_array::VertexArray;
pub use vertex_map::{vertex_map, vertex_map_with_grain};
