//! Memory-footprint accounting (Section IV-F, Figure 12).
//!
//! Under the semi-external model Blaze keeps in DRAM: the IO buffer pool
//! (fixed), the bin space, the graph metadata (index + page→vertex map),
//! the two frontiers, and the algorithm's vertex arrays. Everything else —
//! the adjacency lists — stays on disk. Figure 12 reports the sum of these
//! relative to the on-disk graph size.

use crate::engine::BlazeEngine;

/// Byte-accurate breakdown of an engine's DRAM usage for one query.
#[derive(Debug, Clone, Default)]
pub struct MemoryFootprint {
    /// Graph index (degrees + line offsets) and page→vertex map.
    pub metadata_bytes: u64,
    /// The fixed IO buffer pool.
    pub io_buffer_bytes: u64,
    /// Bin buffers (both halves of every pair).
    pub bin_bytes: u64,
    /// Per-scatter-thread staging buffers.
    pub staging_bytes: u64,
    /// Frontier bitmaps/lists (input + output, conservatively 2 bitmaps).
    pub frontier_bytes: u64,
    /// Algorithm-specific vertex arrays (caller-reported).
    pub algorithm_bytes: u64,
    /// On-disk graph size, the denominator of Figure 12.
    pub graph_bytes: u64,
}

impl MemoryFootprint {
    /// Measures `engine`, taking the algorithm arrays' size (and the bin
    /// record size in bytes) from the caller.
    pub fn measure(engine: &BlazeEngine, algorithm_bytes: u64, record_bytes: usize) -> Self {
        let graph = engine.graph();
        let binning = engine.binning();
        let n = graph.num_vertices() as u64;
        Self {
            metadata_bytes: graph.metadata_bytes(),
            io_buffer_bytes: engine.options().io_buffer_bytes as u64,
            bin_bytes: binning.allocated_bytes(record_bytes),
            staging_bytes: (engine.options().num_scatter
                * binning.bin_count
                * binning.staging_records
                * record_bytes) as u64,
            // Two frontiers at one bit per vertex each, plus sparse lists
            // bounded by the bitmap size.
            frontier_bytes: 2 * n.div_ceil(8),
            algorithm_bytes,
            graph_bytes: graph.storage_bytes(),
        }
    }

    /// Total DRAM bytes.
    pub fn total_bytes(&self) -> u64 {
        self.metadata_bytes
            + self.io_buffer_bytes
            + self.bin_bytes
            + self.staging_bytes
            + self.frontier_bytes
            + self.algorithm_bytes
    }

    /// Footprint relative to the on-disk graph size — the y-axis of
    /// Figure 12.
    pub fn ratio(&self) -> f64 {
        if self.graph_bytes == 0 {
            return 0.0;
        }
        self.total_bytes() as f64 / self.graph_bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::EngineOptions;
    use blaze_graph::gen::{rmat, RmatConfig};
    use blaze_graph::DiskGraph;
    use blaze_storage::StripedStorage;
    use blaze_sync::Arc;

    #[test]
    fn footprint_sums_components() {
        let g = rmat(&RmatConfig::new(10));
        let storage = Arc::new(StripedStorage::in_memory(1).unwrap());
        let graph = Arc::new(DiskGraph::create(&g, storage).unwrap());
        let engine = BlazeEngine::new(graph, EngineOptions::default()).unwrap();
        let algo = (g.num_vertices() * 4) as u64; // one u32 per vertex (BFS)
        let fp = MemoryFootprint::measure(&engine, algo, 8);
        assert!(fp.metadata_bytes > 0);
        assert!(fp.bin_bytes > 0);
        assert_eq!(
            fp.total_bytes(),
            fp.metadata_bytes
                + fp.io_buffer_bytes
                + fp.bin_bytes
                + fp.staging_bytes
                + fp.frontier_bytes
                + fp.algorithm_bytes
        );
        assert!(fp.ratio() > 0.0);
    }
}
