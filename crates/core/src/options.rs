//! Engine configuration.

use blaze_binning::BinningConfig;
use blaze_storage::IoBackendKind;
use blaze_types::{
    BlazeError, Result, DEFAULT_IO_BUFFER_BYTES, DEFAULT_VERTEX_MAP_GRAIN, MAX_MERGED_PAGES,
};

/// Configuration of one [`BlazeEngine`](crate::BlazeEngine).
///
/// Mirrors the knobs of the artifact binaries: compute workers split into
/// scatter and gather threads (`-computeWorkers`, `-binningRatio`), bin
/// space and count (`-binSpace`, `-binCount`), plus the IO-buffer budget.
/// IO threads are always one per device, as in the paper.
#[derive(Debug, Clone)]
pub struct EngineOptions {
    /// Number of scatter threads.
    pub num_scatter: usize,
    /// Number of gather threads.
    pub num_gather: usize,
    /// Total memory for IO buffers (64 MiB in the paper; scaled here).
    pub io_buffer_bytes: usize,
    /// Max contiguous pages merged per IO request (4 in the paper).
    pub merge_window: usize,
    /// Binning parameters; `None` applies the paper's heuristics for the
    /// graph at engine construction.
    pub binning: Option<BinningConfig>,
    /// Byte budget of the clock page cache consulted by the IO workers;
    /// 0 (the default, matching the published system) bypasses the cache
    /// and leaves the IO path identical to the uncached engine. Budgets
    /// below one 4 KiB page round down to zero. Enabling it implements the
    /// paper's stated future work and recovers the sk2005 loss to
    /// FlashGraph (Section V-B).
    pub cache_bytes: usize,
    /// Fraction of each cache shard's frames reservable as hot-region
    /// admission credits (see `PageCache::set_hot_region`). Only takes
    /// effect when the graph was written with a degree-aware layout (its
    /// page map reports a non-zero hot region); 0.0 disables heat-informed
    /// admission even then. Must lie in `0.0..=1.0`.
    pub cache_hot_fraction: f64,
    /// Whether to record per-iteration work traces for the performance
    /// model.
    pub record_trace: bool,
    /// Maximum number of idle bin/buffer arenas the engine keeps cached
    /// between jobs. One suffices for a sequential algorithm; concurrent
    /// submitters each check out their own, and checkouts beyond the cache
    /// simply allocate fresh arenas (returned ones beyond the cap are
    /// dropped).
    pub max_idle_arenas: usize,
    /// Which IO backend the engine constructs. The default
    /// [`IoBackendKind::Sync`] issues depth-1 blocking reads whose device
    /// traffic is byte-for-byte the published engine's;
    /// [`IoBackendKind::Threaded`] keeps up to [`queue_depth`] requests in
    /// flight per device with out-of-order completions.
    ///
    /// [`queue_depth`]: Self::queue_depth
    pub io_backend: IoBackendKind,
    /// Per-device in-flight request window of the IO backend (the CLI's
    /// `-qd`). Must be 1 for the synchronous backend.
    pub queue_depth: usize,
    /// Per-thread grain of the in-memory vertex-map phase: a frontier with
    /// fewer than `vertex_map_grain * compute_workers` members runs
    /// serially instead of forking scoped threads. Lower it to force the
    /// parallel path on tiny graphs (loom and smoke builds), raise it to
    /// pin small maps to one thread.
    pub vertex_map_grain: usize,
    /// Decode adjacency pages with the pre-optimization byte-copy path
    /// instead of the aligned zero-copy reinterpret. Only useful for A/B
    /// measurement (the `compute_path` bench) and as a hard fallback; the
    /// two paths are semantically identical.
    pub bytewise_decode: bool,
    /// Cross-job scan sharing (single-flight miss coalescing): the first
    /// job to miss a page run leads the device read, overlapping
    /// concurrent misses subscribe to its completed frames, and a bounded
    /// per-device window of recently completed runs serves slightly
    /// trailing scans. Off by default — the published engine re-reads per
    /// job, and with sharing off the IO path is byte-for-byte identical
    /// to it. FlashGraph's page-request merging shows this is the
    /// decisive lever for concurrent SSD graph workloads.
    pub scan_sharing: bool,
    /// IO lanes (workers) per device when `scan_sharing` is on. One lane
    /// serializes concurrent jobs' IO phases per device (nothing to
    /// share); size it at least to the expected number of concurrent
    /// jobs. Ignored (forced to 1) when sharing is off.
    pub scan_share_lanes: usize,
    /// Completed flights retained per device for trailing subscribers
    /// (each at most `merge_window` pages). 0 coalesces only
    /// instantaneously overlapping misses.
    pub scan_share_retain: usize,
    /// Maximum vertices `edge_map_async` drains from the priority frontier
    /// per round. Smaller batches follow the priority order more closely
    /// (fewer wasted relaxations) at the cost of more, smaller IO rounds.
    pub async_batch_max: usize,
    /// Number of priority buckets of the async frontier. Priorities at or
    /// beyond the last bucket saturate into it.
    pub async_buckets: usize,
}

impl Default for EngineOptions {
    fn default() -> Self {
        Self {
            num_scatter: 2,
            num_gather: 2,
            io_buffer_bytes: DEFAULT_IO_BUFFER_BYTES,
            merge_window: MAX_MERGED_PAGES,
            binning: None,
            cache_bytes: 0,
            cache_hot_fraction: 0.5,
            record_trace: true,
            max_idle_arenas: 2,
            io_backend: IoBackendKind::Sync,
            queue_depth: 1,
            vertex_map_grain: DEFAULT_VERTEX_MAP_GRAIN,
            bytewise_decode: false,
            scan_sharing: false,
            scan_share_lanes: 4,
            scan_share_retain: 128,
            async_batch_max: 4096,
            async_buckets: 256,
        }
    }
}

impl EngineOptions {
    /// Splits `compute_workers` threads into scatter/gather at
    /// `scatter_ratio` (the artifact's `-binningRatio`, default 0.5).
    pub fn with_compute_workers(mut self, workers: usize, scatter_ratio: f64) -> Self {
        let workers = workers.max(2);
        let scatter = ((workers as f64 * scatter_ratio).round() as usize).clamp(1, workers - 1);
        self.num_scatter = scatter;
        self.num_gather = workers - scatter;
        self
    }

    /// Overrides the binning configuration.
    pub fn with_binning(mut self, binning: BinningConfig) -> Self {
        self.binning = Some(binning);
        self
    }

    /// Overrides the merge window.
    pub fn with_merge_window(mut self, window: usize) -> Self {
        self.merge_window = window.max(1);
        self
    }

    /// Enables the clock page cache with the given byte budget (0 bypasses
    /// the cache entirely).
    pub fn with_cache_bytes(mut self, bytes: usize) -> Self {
        self.cache_bytes = bytes;
        self
    }

    /// Enables the clock page cache with the given capacity in 4 KiB pages.
    pub fn with_page_cache(self, pages: usize) -> Self {
        self.with_cache_bytes(pages * blaze_types::PAGE_SIZE)
    }

    /// Overrides the protected hot-region budget fraction of the page
    /// cache (`0.0..=1.0`; 0.0 disables heat-informed admission).
    pub fn with_cache_hot_fraction(mut self, fraction: f64) -> Self {
        self.cache_hot_fraction = fraction;
        self
    }

    /// Sets the per-device IO queue depth (the CLI's `-qd N`). A depth of
    /// 1 keeps the default synchronous backend; any deeper window switches
    /// to the threaded backend, which is the only one that can hold
    /// multiple requests in flight.
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth.max(1);
        if self.queue_depth > 1 {
            self.io_backend = IoBackendKind::Threaded;
        }
        self
    }

    /// Overrides the IO backend kind explicitly (e.g. the threaded backend
    /// at queue depth 1, for backend-equivalence tests and QD sweeps).
    pub fn with_io_backend(mut self, kind: IoBackendKind) -> Self {
        self.io_backend = kind;
        self
    }

    /// Overrides the per-thread vertex-map serial grain (clamped to ≥ 1).
    pub fn with_vertex_map_grain(mut self, grain: usize) -> Self {
        self.vertex_map_grain = grain.max(1);
        self
    }

    /// Selects the byte-copy adjacency decode (the `compute_path` bench's
    /// "before" arm).
    pub fn with_bytewise_decode(mut self, bytewise: bool) -> Self {
        self.bytewise_decode = bytewise;
        self
    }

    /// Enables (or disables) cross-job scan sharing: concurrent jobs'
    /// overlapping page reads coalesce into single device reads through
    /// the engine's flight table.
    pub fn with_scan_sharing(mut self, sharing: bool) -> Self {
        self.scan_sharing = sharing;
        self
    }

    /// Overrides the IO lanes per device used when scan sharing is on
    /// (clamped to ≥ 1).
    pub fn with_scan_share_lanes(mut self, lanes: usize) -> Self {
        self.scan_share_lanes = lanes.max(1);
        self
    }

    /// Overrides the per-device retention window of completed flights
    /// (0 disables retention).
    pub fn with_scan_share_retain(mut self, retain: usize) -> Self {
        self.scan_share_retain = retain;
        self
    }

    /// Overrides the per-round batch cap of `edge_map_async` (clamped to
    /// ≥ 1).
    pub fn with_async_batch_max(mut self, max: usize) -> Self {
        self.async_batch_max = max.max(1);
        self
    }

    /// Overrides the bucket count of the async priority frontier (clamped
    /// to ≥ 1).
    pub fn with_async_buckets(mut self, buckets: usize) -> Self {
        self.async_buckets = buckets.max(1);
        self
    }

    /// Total compute threads.
    pub fn compute_workers(&self) -> usize {
        self.num_scatter + self.num_gather
    }

    /// Validates thread counts and the IO backend configuration.
    pub fn validate(&self) -> Result<()> {
        if self.num_scatter == 0 || self.num_gather == 0 {
            return Err(BlazeError::Config(
                "need at least one scatter and one gather thread".into(),
            ));
        }
        if self.merge_window == 0 {
            return Err(BlazeError::Config("merge_window must be >= 1".into()));
        }
        if self.queue_depth == 0 {
            return Err(BlazeError::Config("queue_depth must be >= 1".into()));
        }
        if self.vertex_map_grain == 0 {
            return Err(BlazeError::Config("vertex_map_grain must be >= 1".into()));
        }
        if self.async_batch_max == 0 {
            return Err(BlazeError::Config("async_batch_max must be >= 1".into()));
        }
        if self.async_buckets == 0 {
            return Err(BlazeError::Config("async_buckets must be >= 1".into()));
        }
        if !(0.0..=1.0).contains(&self.cache_hot_fraction) {
            return Err(BlazeError::Config(format!(
                "cache_hot_fraction {} outside 0.0..=1.0",
                self.cache_hot_fraction
            )));
        }
        if self.scan_share_lanes == 0 {
            return Err(BlazeError::Config("scan_share_lanes must be >= 1".into()));
        }
        if self.io_backend == IoBackendKind::Sync && self.queue_depth > 1 {
            return Err(BlazeError::Config(format!(
                "the synchronous IO backend is depth-1; use the threaded \
                 backend for queue_depth {} (-qd > 1)",
                self.queue_depth
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        assert!(EngineOptions::default().validate().is_ok());
    }

    #[test]
    fn compute_worker_split() {
        let o = EngineOptions::default().with_compute_workers(16, 0.5);
        assert_eq!(o.num_scatter, 8);
        assert_eq!(o.num_gather, 8);
        let o = EngineOptions::default().with_compute_workers(16, 0.25);
        assert_eq!(o.num_scatter, 4);
        assert_eq!(o.num_gather, 12);
    }

    #[test]
    fn split_never_zeroes_a_side() {
        let o = EngineOptions::default().with_compute_workers(4, 0.0);
        assert_eq!(o.num_scatter, 1);
        let o = EngineOptions::default().with_compute_workers(4, 1.0);
        assert_eq!(o.num_gather, 1);
    }

    #[test]
    fn page_cache_helper_converts_pages_to_bytes() {
        let o = EngineOptions::default().with_page_cache(16);
        assert_eq!(o.cache_bytes, 16 * blaze_types::PAGE_SIZE);
        let o = EngineOptions::default().with_cache_bytes(1 << 20);
        assert_eq!(o.cache_bytes, 1 << 20);
        assert_eq!(EngineOptions::default().cache_bytes, 0);
    }

    #[test]
    fn queue_depth_selects_backend() {
        let o = EngineOptions::default();
        assert_eq!(o.io_backend, IoBackendKind::Sync);
        assert_eq!(o.queue_depth, 1);
        let o = EngineOptions::default().with_queue_depth(1);
        assert_eq!(o.io_backend, IoBackendKind::Sync, "qd 1 stays sync");
        let o = EngineOptions::default().with_queue_depth(16);
        assert_eq!(o.io_backend, IoBackendKind::Threaded);
        assert_eq!(o.queue_depth, 16);
        assert!(o.validate().is_ok());
        // Explicit threaded backend at depth 1 is allowed (QD sweeps).
        let o = EngineOptions::default().with_io_backend(IoBackendKind::Threaded);
        assert_eq!(o.queue_depth, 1);
        assert!(o.validate().is_ok());
        // Zero clamps rather than erroring through the builder...
        assert_eq!(EngineOptions::default().with_queue_depth(0).queue_depth, 1);
        // ...but a hand-built invalid combination is rejected.
        let o = EngineOptions {
            queue_depth: 0,
            ..Default::default()
        };
        assert!(o.validate().is_err());
        let o = EngineOptions {
            queue_depth: 4,
            ..Default::default()
        };
        assert!(o.validate().is_err(), "sync backend cannot hold qd 4");
    }

    #[test]
    fn vertex_map_grain_defaults_and_clamps() {
        let o = EngineOptions::default();
        assert_eq!(o.vertex_map_grain, DEFAULT_VERTEX_MAP_GRAIN);
        // Default workers (2) × default grain reproduce the historical
        // serial threshold of 2048.
        assert_eq!(o.vertex_map_grain * o.compute_workers(), 2048);
        assert_eq!(
            EngineOptions::default()
                .with_vertex_map_grain(0)
                .vertex_map_grain,
            1
        );
        let o = EngineOptions {
            vertex_map_grain: 0,
            ..Default::default()
        };
        assert!(o.validate().is_err());
    }

    #[test]
    fn bytewise_decode_is_off_by_default() {
        assert!(!EngineOptions::default().bytewise_decode);
        assert!(
            EngineOptions::default()
                .with_bytewise_decode(true)
                .bytewise_decode
        );
    }

    #[test]
    fn cache_hot_fraction_defaults_and_validates() {
        let o = EngineOptions::default();
        assert!((o.cache_hot_fraction - 0.5).abs() < 1e-12);
        assert!(o.validate().is_ok());
        let o = EngineOptions::default().with_cache_hot_fraction(1.0);
        assert!(o.validate().is_ok());
        for bad in [-0.1, 1.5, f64::NAN] {
            let o = EngineOptions::default().with_cache_hot_fraction(bad);
            assert!(o.validate().is_err(), "fraction {bad} accepted");
        }
    }

    #[test]
    fn async_knobs_default_clamp_and_validate() {
        let o = EngineOptions::default();
        assert_eq!(o.async_batch_max, 4096);
        assert_eq!(o.async_buckets, 256);
        let o = EngineOptions::default()
            .with_async_batch_max(0)
            .with_async_buckets(0);
        assert_eq!(o.async_batch_max, 1, "builder clamps rather than erroring");
        assert_eq!(o.async_buckets, 1);
        assert!(o.validate().is_ok());
        for bad in [
            EngineOptions {
                async_batch_max: 0,
                ..Default::default()
            },
            EngineOptions {
                async_buckets: 0,
                ..Default::default()
            },
        ] {
            assert!(bad.validate().is_err(), "hand-built zero knob accepted");
        }
    }

    #[test]
    fn scan_sharing_defaults_clamp_and_validate() {
        let o = EngineOptions::default();
        assert!(!o.scan_sharing, "sharing is opt-in");
        assert_eq!(o.scan_share_lanes, 4);
        assert_eq!(o.scan_share_retain, 128);
        let o = EngineOptions::default()
            .with_scan_sharing(true)
            .with_scan_share_lanes(0)
            .with_scan_share_retain(0);
        assert!(o.scan_sharing);
        assert_eq!(o.scan_share_lanes, 1, "builder clamps rather than erroring");
        assert_eq!(o.scan_share_retain, 0, "zero retention is a valid mode");
        assert!(o.validate().is_ok());
        let o = EngineOptions {
            scan_share_lanes: 0,
            ..Default::default()
        };
        assert!(o.validate().is_err(), "hand-built zero lanes accepted");
    }

    #[test]
    fn zero_threads_rejected() {
        let o = EngineOptions {
            num_gather: 0,
            ..Default::default()
        };
        assert!(o.validate().is_err());
    }
}
