//! The persistent pipeline runtime: long-lived IO/scatter/gather workers
//! with job submission.
//!
//! The paper's pipelined execution model (Figure 5) assumes a *standing*
//! pipeline that stays saturated across an algorithm's iterations. Earlier
//! versions of this engine tore the whole pipeline down after every
//! `edge_map` — fresh scoped threads and a fresh bin space per call — so a
//! 20-iteration BFS paid 20 rounds of thread spawn/join and buffer
//! allocation, and only one job could ever be in flight. This module keeps
//! the workers alive for the lifetime of the engine instead:
//!
//! * one persistent **IO worker per device** — or, when the engine enables
//!   scan sharing, several IO *lanes* per device (see below),
//! * a persistent **scatter pool** and **gather pool**,
//! * `edge_map` becomes a *job submission* ([`Runtime::submit`]) that
//!   blocks on a completion handle.
//!
//! # IO lanes
//!
//! With exactly one IO worker per device, two concurrent jobs' IO roles on
//! the same device run back to back (the worker pops its mailbox FIFO), so
//! their device reads can never overlap in time — which would make the
//! scan-sharing flight table useless across jobs. `io_lanes > 1` spawns
//! that many IO workers per device and assigns each submitted job to one
//! lane (round-robin), so different jobs pump the same device
//! concurrently while any single job still sees the one-pumper-per-device
//! contract the IO backends rely on: a (job, device) pair is always
//! served by exactly one worker, and backend submit/reap calls remain
//! per-device single-threaded *per job*. Backends that keep per-device
//! state across calls ([`ThreadedBackend`]'s completion queues are keyed
//! by device and MPMC) tolerate interleaved pumpers by construction;
//! the flight table then dedupes the overlapping reads the lanes expose.
//!
//! [`ThreadedBackend`]: blaze_storage::ThreadedBackend
//!
//! # Job lifecycle
//!
//! A job is a type-erased [`PipelineJob`]: role entry points the workers
//! call (`run_io` / `run_scatter` / `run_gather`). On submission the job is
//! enqueued — under one lock, so every worker observes the same job order —
//! into the mailbox of every participating worker. Each worker pops its
//! mailbox in FIFO order and runs its role to completion; the last
//! participant to finish signals the submitter's completion handle.
//! Because all mailboxes share the submission order and each job's roles
//! finish in pipeline order (gather after scatter after IO), independent
//! jobs from multiple caller threads interleave across the pools without
//! deadlock: a worker can be gathering job A while another is already
//! scattering job B. Per-job state (bin space, buffer pool, counters) is
//! the caller's responsibility — see `EngineArena`.
//!
//! # Panics and shutdown
//!
//! A panic inside a job role (user scatter/gather/cond code) is caught at
//! the worker's top level, recorded in the job's panic slot (first panic
//! wins), and re-raised on the *submitting* thread once the job completes —
//! exactly the behaviour the old scoped-thread pipeline had, except the
//! workers survive: the panic poisons only its job, and the runtime keeps
//! serving subsequent submissions. Dropping the runtime quiesces it:
//! shutdown is flagged, workers drain their mailboxes (no submitted job is
//! ever lost), exit, and `drop` joins every one of them (no worker leaks).

use std::any::Any;
use std::collections::VecDeque;

use blaze_sync::atomic::{AtomicUsize, Ordering};
use blaze_sync::panic::{catch_unwind, resume_unwind};
use blaze_sync::{Arc, Condvar, Mutex};

/// Role entry points of one pipeline job, called by the runtime's
/// persistent workers. All methods may run concurrently with each other;
/// the implementation coordinates its own internal hand-offs (IO → scatter
/// → gather), as `EdgeMapJob` does with its completion counters.
///
/// The `Sync` supertrait is what lets one job instance be shared by every
/// worker in the pipeline.
pub trait PipelineJob: Sync {
    /// Called once per submission, under the submission lock, with the
    /// job's global submission sequence number — the exact order every
    /// worker mailbox observes jobs in. Scan sharing uses it as the
    /// seniority rule that keeps cross-job waits acyclic (a job may park
    /// only on flights led by strictly older jobs). Default: ignored.
    fn set_order(&self, _seq: u64) {}
    /// One IO worker's share: fetch `device`'s pages into filled buffers.
    /// `lane` identifies which of the per-device IO lanes is running this
    /// job (always 0 without scan sharing); the engine keeps one IO
    /// backend per lane so concurrent pumpers never interleave on one
    /// backend's per-device queues.
    fn run_io(&self, device: usize, lane: usize);
    /// One scatter worker's share: drain filled buffers into bins.
    fn run_scatter(&self, worker: usize);
    /// One gather worker's share: drain full bins into vertex data.
    fn run_gather(&self, worker: usize);
}

/// Fixed role a worker thread is born with.
#[derive(Debug, Clone, Copy)]
enum Role {
    Io { device: usize, lane: usize },
    Scatter(usize),
    Gather(usize),
}

/// Shared per-job completion state. The `job` reference is lifetime-erased:
/// see the safety argument in [`Runtime::submit`].
struct JobState {
    job: &'static dyn PipelineJob,
    /// Participants (workers) that have not yet finished their role.
    remaining: AtomicUsize,
    /// Completion handle the submitter blocks on.
    complete: Mutex<bool>,
    completed: Condvar,
    /// First panic payload raised inside a role, re-raised by the submitter.
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
}

impl JobState {
    /// Marks one participant finished; the last one signals the submitter.
    fn finish_participant(&self) {
        // AcqRel: the decrement publishes this worker's role writes to the
        // last finisher, whose mutex hand-off below publishes them onward
        // to the submitter.
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            *self.complete.lock() = true;
            self.completed.notify_all();
        }
    }
}

/// Mailboxes plus the shutdown flag, all under one lock so that every
/// worker observes submitted jobs in the same order.
struct QueueState {
    mailboxes: Vec<VecDeque<Arc<JobState>>>,
    shutdown: bool,
    /// Jobs submitted so far; doubles as the per-job sequence number and
    /// the round-robin IO-lane selector.
    submitted: u64,
}

struct Shared {
    state: Mutex<QueueState>,
    /// Signalled on submission and on shutdown.
    work: Condvar,
}

/// The persistent pipeline runtime owned by a `BlazeEngine`: one IO worker
/// per device plus scatter and gather pools, fed through [`submit`].
///
/// [`submit`]: Runtime::submit
pub struct Runtime {
    shared: Arc<Shared>,
    workers: Vec<blaze_sync::thread::JoinHandle<()>>,
    num_devices: usize,
    io_lanes: usize,
    num_scatter: usize,
    num_gather: usize,
}

impl Runtime {
    /// Spawns the persistent worker set: `io_lanes` IO workers per device
    /// (`io_lanes * num_devices` total — 1 lane reproduces the paper's
    /// one-IO-worker-per-device pipeline), `num_scatter` scatter workers,
    /// `num_gather` gather workers. `io_lanes` below 1 is clamped to 1.
    pub fn new(num_devices: usize, io_lanes: usize, num_scatter: usize, num_gather: usize) -> Self {
        let io_lanes = io_lanes.max(1);
        let num_io = num_devices * io_lanes;
        let total = num_io + num_scatter + num_gather;
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                mailboxes: (0..total).map(|_| VecDeque::new()).collect(),
                shutdown: false,
                submitted: 0,
            }),
            work: Condvar::new(),
        });
        let mut workers = Vec::with_capacity(total);
        for index in 0..total {
            let role = if index < num_io {
                // Lane L's IO workers occupy the contiguous mailbox block
                // [L * num_devices, (L + 1) * num_devices); `submit` routes
                // each job to exactly one lane's block.
                Role::Io {
                    device: index % num_devices.max(1),
                    lane: index / num_devices.max(1),
                }
            } else if index < num_io + num_scatter {
                Role::Scatter(index - num_io)
            } else {
                Role::Gather(index - num_io - num_scatter)
            };
            let shared = shared.clone();
            workers.push(blaze_sync::thread::spawn(move || {
                worker_loop(&shared, index, role)
            }));
        }
        Self {
            shared,
            workers,
            num_devices,
            io_lanes,
            num_scatter,
            num_gather,
        }
    }

    /// Number of worker threads (IO lanes × devices + scatter + gather).
    pub fn worker_count(&self) -> usize {
        self.num_devices * self.io_lanes + self.num_scatter + self.num_gather
    }

    /// IO lanes per device.
    pub fn io_lanes(&self) -> usize {
        self.io_lanes
    }

    /// Submits `job` to the standing pipeline and blocks until every
    /// participating worker has finished its role. When `with_gather` is
    /// false (the synchronization-based variant), gather workers do not
    /// participate.
    ///
    /// If any role panicked, the first panic is re-raised here on the
    /// submitting thread; the workers themselves survive and keep serving
    /// other jobs.
    pub fn submit(&self, job: &dyn PipelineJob, with_gather: bool) {
        // One lane serves each (job, device) pair, so a job's IO
        // participation is per *device*, not per IO worker.
        let participants =
            self.num_devices + self.num_scatter + if with_gather { self.num_gather } else { 0 };
        // SAFETY: lifetime erasure only. `job` borrows from the submitting
        // thread's stack, but workers only reach it through this `JobState`,
        // and `submit` does not return until `remaining` hits zero — i.e.
        // until every worker that received the job has returned from its
        // role and will never touch the reference again (`finish_participant`
        // is the last access, and it only uses the 'static parts of
        // `JobState`). The borrow therefore strictly outlives every use,
        // which is the same argument `std::thread::scope` relies on.
        let job: &'static dyn PipelineJob =
            unsafe { std::mem::transmute::<&dyn PipelineJob, &'static dyn PipelineJob>(job) };
        let state = Arc::new(JobState {
            job,
            remaining: AtomicUsize::new(participants),
            complete: Mutex::new(false),
            completed: Condvar::new(),
            panic: Mutex::new(None),
        });
        {
            let mut st = self.shared.state.lock();
            debug_assert!(!st.shutdown, "submit on a shut-down runtime");
            // Sequence the job under the same lock that orders the
            // mailboxes, so the seniority number handed to the job agrees
            // exactly with the order every worker pops jobs in — the
            // invariant the scan-sharing wait rule rests on.
            let seq = st.submitted;
            st.submitted += 1;
            job.set_order(seq);
            // Round-robin this job onto one IO lane: its IO roles land on
            // that lane's per-device workers, so concurrent jobs on
            // different lanes pump the same devices in parallel.
            let lane = (seq as usize) % self.io_lanes;
            let num_io = self.num_devices * self.io_lanes;
            for mailbox in &mut st.mailboxes[lane * self.num_devices..(lane + 1) * self.num_devices]
            {
                mailbox.push_back(state.clone());
            }
            for mailbox in &mut st.mailboxes[num_io..num_io + self.num_scatter] {
                mailbox.push_back(state.clone());
            }
            if with_gather {
                for mailbox in &mut st.mailboxes[num_io + self.num_scatter..] {
                    mailbox.push_back(state.clone());
                }
            }
            self.shared.work.notify_all();
        }
        let mut done = state.complete.lock();
        while !*done {
            state.completed.wait(&mut done);
        }
        drop(done);
        let payload = state.panic.lock().take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }
}

impl Drop for Runtime {
    /// Quiesce: flag shutdown, wake everyone, and join every worker.
    /// Workers drain their mailboxes before exiting, so a submitted job is
    /// never lost (though `submit`'s blocking semantics already guarantee
    /// no job can be pending here: drop requires `&mut self`).
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock();
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        for handle in self.workers.drain(..) {
            // Worker bodies catch job panics, so join only fails if the
            // runtime itself is broken; surfacing that as a panic in drop
            // would abort, and losing the join error is the lesser evil.
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("devices", &self.num_devices)
            .field("io_lanes", &self.io_lanes)
            .field("scatter", &self.num_scatter)
            .field("gather", &self.num_gather)
            .finish()
    }
}

/// One worker's life: pop the next job from the own mailbox (FIFO), run the
/// born role on it, mark participation finished, repeat; exit once the
/// mailbox is empty *and* shutdown is flagged (drain-then-quit).
fn worker_loop(shared: &Shared, index: usize, role: Role) {
    loop {
        let job = {
            let mut st = shared.state.lock();
            loop {
                if let Some(job) = st.mailboxes[index].pop_front() {
                    break job;
                }
                if st.shutdown {
                    return;
                }
                shared.work.wait(&mut st);
            }
        };
        // A panic in user code must poison only this job, not the worker:
        // catch it (via the facade, which re-throws the model checker's
        // abort sentinel), record it for the submitter, and keep serving.
        let outcome = catch_unwind(|| match role {
            Role::Io { device, lane } => job.job.run_io(device, lane),
            Role::Scatter(worker) => job.job.run_scatter(worker),
            Role::Gather(worker) => job.job.run_gather(worker),
        });
        if let Err(payload) = outcome {
            let mut slot = job.panic.lock();
            // First panic wins; later ones are echoes of the same failure.
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
        job.finish_participant();
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use blaze_sync::atomic::AtomicU64;

    /// A job that counts role invocations.
    #[derive(Default)]
    struct CountingJob {
        io: AtomicU64,
        scatter: AtomicU64,
        gather: AtomicU64,
    }

    impl PipelineJob for CountingJob {
        fn run_io(&self, _device: usize, _lane: usize) {
            self.io.fetch_add(1, Ordering::Relaxed); // sync-audit: test counter; read after submit returns (completion handle orders it).
        }
        fn run_scatter(&self, _worker: usize) {
            self.scatter.fetch_add(1, Ordering::Relaxed); // sync-audit: test counter; read after submit returns.
        }
        fn run_gather(&self, _worker: usize) {
            self.gather.fetch_add(1, Ordering::Relaxed); // sync-audit: test counter; read after submit returns.
        }
    }

    #[test]
    fn every_role_participates_once_per_worker() {
        let rt = Runtime::new(2, 1, 3, 2);
        let job = CountingJob::default();
        rt.submit(&job, true);
        assert_eq!(job.io.load(Ordering::Relaxed), 2); // sync-audit: post-submit read.
        assert_eq!(job.scatter.load(Ordering::Relaxed), 3); // sync-audit: post-submit read.
        assert_eq!(job.gather.load(Ordering::Relaxed), 2); // sync-audit: post-submit read.
    }

    #[test]
    fn sync_variant_skips_gather_workers() {
        let rt = Runtime::new(1, 1, 2, 2);
        let job = CountingJob::default();
        rt.submit(&job, false);
        assert_eq!(job.gather.load(Ordering::Relaxed), 0); // sync-audit: post-submit read.
        assert_eq!(job.scatter.load(Ordering::Relaxed), 2); // sync-audit: post-submit read.
    }

    #[test]
    fn sequential_jobs_reuse_the_same_workers() {
        let rt = Runtime::new(1, 1, 1, 1);
        for _ in 0..50 {
            let job = CountingJob::default();
            rt.submit(&job, true);
            assert_eq!(job.io.load(Ordering::Relaxed), 1); // sync-audit: post-submit read.
        }
        assert_eq!(rt.worker_count(), 3);
    }

    #[test]
    fn io_lanes_serve_each_job_once_per_device() {
        // 2 devices × 3 lanes: every job's IO role still runs exactly once
        // per device, whichever lane it round-robins onto.
        let rt = Runtime::new(2, 3, 2, 1);
        assert_eq!(rt.worker_count(), 2 * 3 + 2 + 1);
        assert_eq!(rt.io_lanes(), 3);
        for _ in 0..7 {
            let job = CountingJob::default();
            rt.submit(&job, true);
            assert_eq!(job.io.load(Ordering::Relaxed), 2); // sync-audit: post-submit read.
            assert_eq!(job.scatter.load(Ordering::Relaxed), 2); // sync-audit: post-submit read.
        }
    }

    #[test]
    fn set_order_observes_the_submission_sequence() {
        struct OrderJob {
            seq: AtomicU64,
        }
        impl PipelineJob for OrderJob {
            fn set_order(&self, seq: u64) {
                self.seq.store(seq, Ordering::Relaxed); // sync-audit: test capture; read after submit returns.
            }
            fn run_io(&self, _device: usize, _lane: usize) {}
            fn run_scatter(&self, _worker: usize) {}
            fn run_gather(&self, _worker: usize) {}
        }
        let rt = Runtime::new(1, 4, 1, 1);
        for expect in 0..5u64 {
            let job = OrderJob {
                seq: AtomicU64::new(u64::MAX),
            };
            rt.submit(&job, true);
            assert_eq!(job.seq.load(Ordering::Relaxed), expect); // sync-audit: post-submit read.
        }
    }

    #[test]
    fn concurrent_submitters_interleave_safely() {
        let rt = Runtime::new(1, 1, 2, 2);
        blaze_sync::thread::scope(|s| {
            for _ in 0..4 {
                let rt = &rt;
                s.spawn(move || {
                    for _ in 0..10 {
                        let job = CountingJob::default();
                        rt.submit(&job, true);
                        assert_eq!(job.scatter.load(Ordering::Relaxed), 2); // sync-audit: post-submit read.
                    }
                });
            }
        });
    }

    #[test]
    fn panicking_job_poisons_only_itself() {
        struct PanickingJob;
        impl PipelineJob for PanickingJob {
            fn run_io(&self, _device: usize, _lane: usize) {}
            fn run_scatter(&self, _worker: usize) {
                panic!("scatter closure exploded");
            }
            fn run_gather(&self, _worker: usize) {}
        }
        let rt = Runtime::new(1, 1, 1, 1);
        let caught = catch_unwind(|| rt.submit(&PanickingJob, true));
        assert!(caught.is_err(), "panic must surface to the submitter");
        // The runtime stays operational for the next job.
        let job = CountingJob::default();
        rt.submit(&job, true);
        assert_eq!(job.gather.load(Ordering::Relaxed), 1); // sync-audit: post-submit read.
    }

    #[test]
    fn drop_joins_all_workers() {
        let rt = Runtime::new(2, 2, 2, 2);
        let job = CountingJob::default();
        rt.submit(&job, true);
        drop(rt); // must not hang or leak
    }
}
