//! The persistent pipeline runtime: long-lived IO/scatter/gather workers
//! with job submission.
//!
//! The paper's pipelined execution model (Figure 5) assumes a *standing*
//! pipeline that stays saturated across an algorithm's iterations. Earlier
//! versions of this engine tore the whole pipeline down after every
//! `edge_map` — fresh scoped threads and a fresh bin space per call — so a
//! 20-iteration BFS paid 20 rounds of thread spawn/join and buffer
//! allocation, and only one job could ever be in flight. This module keeps
//! the workers alive for the lifetime of the engine instead:
//!
//! * one persistent **IO worker per device**,
//! * a persistent **scatter pool** and **gather pool**,
//! * `edge_map` becomes a *job submission* ([`Runtime::submit`]) that
//!   blocks on a completion handle.
//!
//! # Job lifecycle
//!
//! A job is a type-erased [`PipelineJob`]: role entry points the workers
//! call (`run_io` / `run_scatter` / `run_gather`). On submission the job is
//! enqueued — under one lock, so every worker observes the same job order —
//! into the mailbox of every participating worker. Each worker pops its
//! mailbox in FIFO order and runs its role to completion; the last
//! participant to finish signals the submitter's completion handle.
//! Because all mailboxes share the submission order and each job's roles
//! finish in pipeline order (gather after scatter after IO), independent
//! jobs from multiple caller threads interleave across the pools without
//! deadlock: a worker can be gathering job A while another is already
//! scattering job B. Per-job state (bin space, buffer pool, counters) is
//! the caller's responsibility — see `EngineArena`.
//!
//! # Panics and shutdown
//!
//! A panic inside a job role (user scatter/gather/cond code) is caught at
//! the worker's top level, recorded in the job's panic slot (first panic
//! wins), and re-raised on the *submitting* thread once the job completes —
//! exactly the behaviour the old scoped-thread pipeline had, except the
//! workers survive: the panic poisons only its job, and the runtime keeps
//! serving subsequent submissions. Dropping the runtime quiesces it:
//! shutdown is flagged, workers drain their mailboxes (no submitted job is
//! ever lost), exit, and `drop` joins every one of them (no worker leaks).

use std::any::Any;
use std::collections::VecDeque;

use blaze_sync::atomic::{AtomicUsize, Ordering};
use blaze_sync::panic::{catch_unwind, resume_unwind};
use blaze_sync::{Arc, Condvar, Mutex};

/// Role entry points of one pipeline job, called by the runtime's
/// persistent workers. All methods may run concurrently with each other;
/// the implementation coordinates its own internal hand-offs (IO → scatter
/// → gather), as `EdgeMapJob` does with its completion counters.
///
/// The `Sync` supertrait is what lets one job instance be shared by every
/// worker in the pipeline.
pub trait PipelineJob: Sync {
    /// One IO worker's share: fetch `device`'s pages into filled buffers.
    fn run_io(&self, device: usize);
    /// One scatter worker's share: drain filled buffers into bins.
    fn run_scatter(&self, worker: usize);
    /// One gather worker's share: drain full bins into vertex data.
    fn run_gather(&self, worker: usize);
}

/// Fixed role a worker thread is born with.
#[derive(Debug, Clone, Copy)]
enum Role {
    Io(usize),
    Scatter(usize),
    Gather(usize),
}

/// Shared per-job completion state. The `job` reference is lifetime-erased:
/// see the safety argument in [`Runtime::submit`].
struct JobState {
    job: &'static dyn PipelineJob,
    /// Participants (workers) that have not yet finished their role.
    remaining: AtomicUsize,
    /// Completion handle the submitter blocks on.
    complete: Mutex<bool>,
    completed: Condvar,
    /// First panic payload raised inside a role, re-raised by the submitter.
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
}

impl JobState {
    /// Marks one participant finished; the last one signals the submitter.
    fn finish_participant(&self) {
        // AcqRel: the decrement publishes this worker's role writes to the
        // last finisher, whose mutex hand-off below publishes them onward
        // to the submitter.
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            *self.complete.lock() = true;
            self.completed.notify_all();
        }
    }
}

/// Mailboxes plus the shutdown flag, all under one lock so that every
/// worker observes submitted jobs in the same order.
struct QueueState {
    mailboxes: Vec<VecDeque<Arc<JobState>>>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<QueueState>,
    /// Signalled on submission and on shutdown.
    work: Condvar,
}

/// The persistent pipeline runtime owned by a `BlazeEngine`: one IO worker
/// per device plus scatter and gather pools, fed through [`submit`].
///
/// [`submit`]: Runtime::submit
pub struct Runtime {
    shared: Arc<Shared>,
    workers: Vec<blaze_sync::thread::JoinHandle<()>>,
    num_io: usize,
    num_scatter: usize,
    num_gather: usize,
}

impl Runtime {
    /// Spawns the persistent worker set: `num_io` IO workers (one per
    /// device), `num_scatter` scatter workers, `num_gather` gather workers.
    pub fn new(num_io: usize, num_scatter: usize, num_gather: usize) -> Self {
        let total = num_io + num_scatter + num_gather;
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                mailboxes: (0..total).map(|_| VecDeque::new()).collect(),
                shutdown: false,
            }),
            work: Condvar::new(),
        });
        let mut workers = Vec::with_capacity(total);
        for index in 0..total {
            let role = if index < num_io {
                Role::Io(index)
            } else if index < num_io + num_scatter {
                Role::Scatter(index - num_io)
            } else {
                Role::Gather(index - num_io - num_scatter)
            };
            let shared = shared.clone();
            workers.push(blaze_sync::thread::spawn(move || {
                worker_loop(&shared, index, role)
            }));
        }
        Self {
            shared,
            workers,
            num_io,
            num_scatter,
            num_gather,
        }
    }

    /// Number of worker threads (IO + scatter + gather).
    pub fn worker_count(&self) -> usize {
        self.num_io + self.num_scatter + self.num_gather
    }

    /// Submits `job` to the standing pipeline and blocks until every
    /// participating worker has finished its role. When `with_gather` is
    /// false (the synchronization-based variant), gather workers do not
    /// participate.
    ///
    /// If any role panicked, the first panic is re-raised here on the
    /// submitting thread; the workers themselves survive and keep serving
    /// other jobs.
    pub fn submit(&self, job: &dyn PipelineJob, with_gather: bool) {
        let participants =
            self.num_io + self.num_scatter + if with_gather { self.num_gather } else { 0 };
        // SAFETY: lifetime erasure only. `job` borrows from the submitting
        // thread's stack, but workers only reach it through this `JobState`,
        // and `submit` does not return until `remaining` hits zero — i.e.
        // until every worker that received the job has returned from its
        // role and will never touch the reference again (`finish_participant`
        // is the last access, and it only uses the 'static parts of
        // `JobState`). The borrow therefore strictly outlives every use,
        // which is the same argument `std::thread::scope` relies on.
        let job: &'static dyn PipelineJob =
            unsafe { std::mem::transmute::<&dyn PipelineJob, &'static dyn PipelineJob>(job) };
        let state = Arc::new(JobState {
            job,
            remaining: AtomicUsize::new(participants),
            complete: Mutex::new(false),
            completed: Condvar::new(),
            panic: Mutex::new(None),
        });
        {
            let mut st = self.shared.state.lock();
            debug_assert!(!st.shutdown, "submit on a shut-down runtime");
            let non_gather = self.num_io + self.num_scatter;
            for mailbox in &mut st.mailboxes[..non_gather] {
                mailbox.push_back(state.clone());
            }
            if with_gather {
                for mailbox in &mut st.mailboxes[non_gather..] {
                    mailbox.push_back(state.clone());
                }
            }
            self.shared.work.notify_all();
        }
        let mut done = state.complete.lock();
        while !*done {
            state.completed.wait(&mut done);
        }
        drop(done);
        let payload = state.panic.lock().take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }
}

impl Drop for Runtime {
    /// Quiesce: flag shutdown, wake everyone, and join every worker.
    /// Workers drain their mailboxes before exiting, so a submitted job is
    /// never lost (though `submit`'s blocking semantics already guarantee
    /// no job can be pending here: drop requires `&mut self`).
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock();
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        for handle in self.workers.drain(..) {
            // Worker bodies catch job panics, so join only fails if the
            // runtime itself is broken; surfacing that as a panic in drop
            // would abort, and losing the join error is the lesser evil.
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("io", &self.num_io)
            .field("scatter", &self.num_scatter)
            .field("gather", &self.num_gather)
            .finish()
    }
}

/// One worker's life: pop the next job from the own mailbox (FIFO), run the
/// born role on it, mark participation finished, repeat; exit once the
/// mailbox is empty *and* shutdown is flagged (drain-then-quit).
fn worker_loop(shared: &Shared, index: usize, role: Role) {
    loop {
        let job = {
            let mut st = shared.state.lock();
            loop {
                if let Some(job) = st.mailboxes[index].pop_front() {
                    break job;
                }
                if st.shutdown {
                    return;
                }
                shared.work.wait(&mut st);
            }
        };
        // A panic in user code must poison only this job, not the worker:
        // catch it (via the facade, which re-throws the model checker's
        // abort sentinel), record it for the submitter, and keep serving.
        let outcome = catch_unwind(|| match role {
            Role::Io(device) => job.job.run_io(device),
            Role::Scatter(worker) => job.job.run_scatter(worker),
            Role::Gather(worker) => job.job.run_gather(worker),
        });
        if let Err(payload) = outcome {
            let mut slot = job.panic.lock();
            // First panic wins; later ones are echoes of the same failure.
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
        job.finish_participant();
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use blaze_sync::atomic::AtomicU64;

    /// A job that counts role invocations.
    #[derive(Default)]
    struct CountingJob {
        io: AtomicU64,
        scatter: AtomicU64,
        gather: AtomicU64,
    }

    impl PipelineJob for CountingJob {
        fn run_io(&self, _device: usize) {
            self.io.fetch_add(1, Ordering::Relaxed); // sync-audit: test counter; read after submit returns (completion handle orders it).
        }
        fn run_scatter(&self, _worker: usize) {
            self.scatter.fetch_add(1, Ordering::Relaxed); // sync-audit: test counter; read after submit returns.
        }
        fn run_gather(&self, _worker: usize) {
            self.gather.fetch_add(1, Ordering::Relaxed); // sync-audit: test counter; read after submit returns.
        }
    }

    #[test]
    fn every_role_participates_once_per_worker() {
        let rt = Runtime::new(2, 3, 2);
        let job = CountingJob::default();
        rt.submit(&job, true);
        assert_eq!(job.io.load(Ordering::Relaxed), 2); // sync-audit: post-submit read.
        assert_eq!(job.scatter.load(Ordering::Relaxed), 3); // sync-audit: post-submit read.
        assert_eq!(job.gather.load(Ordering::Relaxed), 2); // sync-audit: post-submit read.
    }

    #[test]
    fn sync_variant_skips_gather_workers() {
        let rt = Runtime::new(1, 2, 2);
        let job = CountingJob::default();
        rt.submit(&job, false);
        assert_eq!(job.gather.load(Ordering::Relaxed), 0); // sync-audit: post-submit read.
        assert_eq!(job.scatter.load(Ordering::Relaxed), 2); // sync-audit: post-submit read.
    }

    #[test]
    fn sequential_jobs_reuse_the_same_workers() {
        let rt = Runtime::new(1, 1, 1);
        for _ in 0..50 {
            let job = CountingJob::default();
            rt.submit(&job, true);
            assert_eq!(job.io.load(Ordering::Relaxed), 1); // sync-audit: post-submit read.
        }
        assert_eq!(rt.worker_count(), 3);
    }

    #[test]
    fn concurrent_submitters_interleave_safely() {
        let rt = Runtime::new(1, 2, 2);
        blaze_sync::thread::scope(|s| {
            for _ in 0..4 {
                let rt = &rt;
                s.spawn(move || {
                    for _ in 0..10 {
                        let job = CountingJob::default();
                        rt.submit(&job, true);
                        assert_eq!(job.scatter.load(Ordering::Relaxed), 2); // sync-audit: post-submit read.
                    }
                });
            }
        });
    }

    #[test]
    fn panicking_job_poisons_only_itself() {
        struct PanickingJob;
        impl PipelineJob for PanickingJob {
            fn run_io(&self, _device: usize) {}
            fn run_scatter(&self, _worker: usize) {
                panic!("scatter closure exploded");
            }
            fn run_gather(&self, _worker: usize) {}
        }
        let rt = Runtime::new(1, 1, 1);
        let caught = catch_unwind(|| rt.submit(&PanickingJob, true));
        assert!(caught.is_err(), "panic must surface to the submitter");
        // The runtime stays operational for the next job.
        let job = CountingJob::default();
        rt.submit(&job, true);
        assert_eq!(job.gather.load(Ordering::Relaxed), 1); // sync-audit: post-submit read.
    }

    #[test]
    fn drop_joins_all_workers() {
        let rt = Runtime::new(2, 2, 2);
        let job = CountingJob::default();
        rt.submit(&job, true);
        drop(rt); // must not hang or leak
    }
}
