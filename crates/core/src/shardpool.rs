//! Persistent shard threads for scale-out supersteps.
//!
//! The cluster layer runs every shard's half of a superstep concurrently:
//! encode the owned frontier slice, exchange deltas with peers, drive the
//! shard's engine, validate locality. Spawning a thread per shard per
//! superstep would repeat the exact mistake the [`Runtime`] was built to
//! fix for the pipeline workers, so the pool mirrors it: one long-lived
//! thread per shard, spawned at cluster construction, fed borrowed
//! closures per superstep, joined on drop.
//!
//! [`run`](ShardPool::run) is the superstep barrier. It publishes one
//! `Fn(usize)` to every worker, blocks until all of them have executed it
//! for their shard index, and re-raises the first panic on the caller —
//! the same completion/panic contract as [`Runtime::submit`], including
//! the lifetime-erasure trick that lets the closure borrow the caller's
//! stack (frontier, scatter/gather closures, result slots).
//!
//! [`Runtime`]: crate::runtime::Runtime
//! [`Runtime::submit`]: crate::runtime::Runtime::submit

use std::any::Any;

use blaze_sync::panic::{catch_unwind, resume_unwind};
use blaze_sync::{Arc, Condvar, Mutex};

/// One task generation plus the completion bookkeeping, all under one lock
/// so workers observe a generation and its task atomically.
struct PoolState {
    /// Monotone generation counter; workers run every generation exactly
    /// once for their own index.
    epoch: u64,
    /// The borrowed task of the current generation, lifetime-erased: see
    /// the safety argument in [`ShardPool::run`].
    task: Option<&'static (dyn Fn(usize) + Sync)>,
    /// Workers that have not yet finished the current generation.
    remaining: usize,
    shutdown: bool,
    /// First panic raised inside the task, re-raised by the caller.
    panic: Option<Box<dyn Any + Send + 'static>>,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Signalled on a new generation and on shutdown.
    work: Condvar,
    /// Signalled when the last worker finishes a generation.
    done: Condvar,
}

/// A fixed set of persistent worker threads, one per shard, that execute a
/// borrowed closure per [`run`](Self::run) call — the superstep engine of
/// the scale-out cluster.
pub struct ShardPool {
    shared: Arc<PoolShared>,
    workers: Vec<blaze_sync::thread::JoinHandle<()>>,
}

impl ShardPool {
    /// Spawns `shards` persistent workers; worker `i` executes every
    /// submitted task as `task(i)`.
    pub fn new(shards: usize) -> Self {
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                epoch: 0,
                task: None,
                remaining: 0,
                shutdown: false,
                panic: None,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let workers = (0..shards)
            .map(|index| {
                let shared = shared.clone();
                blaze_sync::thread::spawn(move || worker_loop(&shared, index))
            })
            .collect();
        Self { shared, workers }
    }

    /// Number of shard workers.
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// Whether the pool has no workers.
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// Executes `task(i)` on every worker `i` concurrently and blocks until
    /// all of them finish — one superstep. Concurrent `run` calls from
    /// several caller threads serialize: a generation is only published
    /// once the previous one has fully completed.
    ///
    /// If the task panicked on any worker, the first panic is re-raised
    /// here; the workers survive and keep serving later generations.
    pub fn run(&self, task: &(dyn Fn(usize) + Sync)) {
        if self.workers.is_empty() {
            return;
        }
        // SAFETY: lifetime erasure only, the same argument as
        // `Runtime::submit`. `task` borrows from the calling thread's
        // stack, but workers reach it only through `PoolState::task`, and
        // `run` does not return until `remaining` hits zero — i.e. until
        // every worker has returned from `task` and cleared any use of the
        // reference (the generation's task slot is taken back below before
        // the next caller can publish). The borrow therefore strictly
        // outlives every use, as with `std::thread::scope`.
        let task: &'static (dyn Fn(usize) + Sync) =
            unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), _>(task) };
        let mut st = self.shared.state.lock();
        // Wait out any in-flight generation from another caller — including
        // its epilogue: the slot must be empty again, or we could clobber a
        // generation whose owner has not yet collected it.
        while st.remaining > 0 || st.task.is_some() {
            self.shared.done.wait(&mut st);
        }
        st.task = Some(task);
        st.epoch += 1;
        st.remaining = self.workers.len();
        self.shared.work.notify_all();
        // No other caller can publish until we take the slot back below, so
        // `remaining` here is ours.
        while st.remaining > 0 {
            self.shared.done.wait(&mut st);
        }
        st.task = None;
        let payload = st.panic.take();
        drop(st);
        // Wake any caller queued behind us on the `remaining > 0` wait.
        self.shared.done.notify_all();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }
}

impl Drop for ShardPool {
    /// Quiesce: flag shutdown, wake everyone, join every worker. `&mut
    /// self` guarantees no generation is in flight.
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock();
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        for handle in self.workers.drain(..) {
            // Worker bodies catch task panics, so a join error means the
            // pool itself is broken; panicking in drop would abort, so the
            // error is dropped.
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for ShardPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardPool")
            .field("shards", &self.workers.len())
            .finish()
    }
}

/// One worker's life: wait for a generation newer than the last one it
/// ran, execute the task for its shard index, report completion, repeat;
/// exit on shutdown (no generation can be pending then — `run` blocks its
/// caller until completion, and drop needs `&mut`).
fn worker_loop(shared: &PoolShared, index: usize) {
    let mut seen = 0u64;
    loop {
        let task = {
            let mut st = shared.state.lock();
            loop {
                if st.epoch > seen {
                    seen = st.epoch;
                    // The task of a fresh generation is always present:
                    // `run` publishes it before bumping the epoch under the
                    // same lock. The fallback only defends release builds.
                    match st.task {
                        Some(task) => break task,
                        None => return,
                    }
                }
                if st.shutdown {
                    return;
                }
                shared.work.wait(&mut st);
            }
        };
        let outcome = catch_unwind(|| task(index));
        let mut st = shared.state.lock();
        if let Err(payload) = outcome {
            // First panic wins; later ones are echoes of the same failure.
            if st.panic.is_none() {
                st.panic = Some(payload);
            }
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            shared.done.notify_all();
        }
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use blaze_sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_the_task_once_per_shard() {
        let pool = ShardPool::new(4);
        let hits = [(); 4].map(|()| AtomicUsize::new(0));
        pool.run(&|i| {
            hits[i].fetch_add(1, Ordering::Relaxed); // sync-audit: read after run returns (completion barrier orders it).
        });
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 1); // sync-audit: post-run read.
        }
        assert_eq!(pool.len(), 4);
    }

    #[test]
    fn generations_reuse_the_same_workers() {
        let pool = ShardPool::new(2);
        let total = AtomicUsize::new(0);
        for _ in 0..50 {
            pool.run(&|_| {
                total.fetch_add(1, Ordering::Relaxed); // sync-audit: post-run read.
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 100); // sync-audit: post-run read.
    }

    #[test]
    fn tasks_borrow_the_callers_stack() {
        let pool = ShardPool::new(3);
        let inputs = [10usize, 20, 30];
        let outputs: Vec<AtomicUsize> = (0..3).map(|_| AtomicUsize::new(0)).collect();
        pool.run(&|i| {
            outputs[i].store(inputs[i] * 2, Ordering::Relaxed); // sync-audit: post-run read.
        });
        let got: Vec<usize> = outputs.iter().map(|o| o.load(Ordering::Relaxed)).collect(); // sync-audit: post-run read.
        assert_eq!(got, vec![20, 40, 60]);
    }

    #[test]
    fn panicking_task_poisons_only_its_generation() {
        let pool = ShardPool::new(2);
        let caught = catch_unwind(|| {
            pool.run(&|i| {
                if i == 1 {
                    panic!("shard task exploded");
                }
            })
        });
        assert!(caught.is_err(), "panic must surface to the caller");
        // The pool stays operational.
        let ran = AtomicUsize::new(0);
        pool.run(&|_| {
            ran.fetch_add(1, Ordering::Relaxed); // sync-audit: post-run read.
        });
        assert_eq!(ran.load(Ordering::Relaxed), 2); // sync-audit: post-run read.
    }

    #[test]
    fn concurrent_callers_serialize_generations() {
        let pool = ShardPool::new(2);
        let total = AtomicUsize::new(0);
        blaze_sync::thread::scope(|s| {
            for _ in 0..4 {
                let pool = &pool;
                let total = &total;
                s.spawn(move || {
                    for _ in 0..10 {
                        pool.run(&|_| {
                            total.fetch_add(1, Ordering::Relaxed); // sync-audit: post-run read.
                        });
                    }
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 80); // sync-audit: post-run read.
    }

    #[test]
    fn empty_pool_and_drop_are_clean() {
        let pool = ShardPool::new(0);
        pool.run(&|_| unreachable!("no workers to run on"));
        drop(pool);
        let pool = ShardPool::new(3);
        pool.run(&|_| {});
        drop(pool); // must not hang or leak
    }
}
