//! Execution statistics and work-trace recording.

use blaze_storage::stats::IoStatsSnapshot;
use blaze_storage::{JobIoStats, StripedStorage};
use blaze_types::IterationTrace;

/// Cumulative statistics of a query execution on the functional engine.
#[derive(Debug, Clone, Default)]
pub struct ExecStats {
    /// Number of `edge_map` iterations executed.
    pub iterations: usize,
    /// Total edges examined by scatter.
    pub edges_processed: u64,
    /// Total bin records produced.
    pub records_produced: u64,
    /// Total bytes read from storage.
    pub io_bytes: u64,
    /// Total IO requests issued.
    pub io_requests: u64,
    /// Wall time spent inside `edge_map`, nanoseconds (real, machine-local —
    /// shape comparisons use the performance model instead).
    pub wall_ns: u64,
    /// Pages served from the clock page cache (no device IO).
    pub cache_hit_pages: u64,
    /// Pages that missed the cache and were read from the devices. Zero
    /// when the cache is disabled (misses are only counted on the cached
    /// IO path).
    pub cache_miss_pages: u64,
    /// Resident pages evicted from the cache to make room for fills.
    pub cache_evictions: u64,
    /// Cache hits that fell in the graph's hot (hub) page region.
    pub cache_hot_hit_pages: u64,
    /// Fills admitted with a hot-region second-chance credit.
    pub cache_hot_admits: u64,
    /// Pages received from other jobs' device reads via the scan-sharing
    /// flight table (no device IO charged to this query).
    pub shared_hit_pages: u64,
    /// Bytes corresponding to `shared_hit_pages`.
    pub shared_bytes: u64,
    /// Scan-sharing flights this query's jobs led.
    pub flights_led: u64,
    /// Maximum per-device in-flight IO depth observed across all
    /// iterations (1 under the synchronous backend; 0 when no IO was
    /// issued).
    pub io_max_in_flight: u64,
    /// Nanoseconds scatter workers spent decoding pages and staging
    /// records, summed across workers and iterations.
    pub scatter_ns: u64,
    /// Nanoseconds gather workers spent applying full bins, summed across
    /// workers and iterations (zero for the sync variant).
    pub gather_ns: u64,
    /// Nanoseconds scatter workers spent idle waiting for filled buffers.
    pub io_wait_ns: u64,
    /// Records merged away by scatter-side combining across all iterations
    /// (`records_produced` counts the post-combine stream).
    pub records_combined: u64,
    /// Asynchronous priority-frontier rounds absorbed (counted inside
    /// `iterations` as well; zero for purely barriered executions).
    pub async_rounds: u64,
    /// Vertices pushed into the priority frontier across all async rounds.
    pub async_activations: u64,
    /// Priority-frontier pushes that collapsed into already-queued vertices.
    pub async_dedup_skipped: u64,
}

impl ExecStats {
    /// Folds one iteration trace into the totals.
    pub fn absorb(&mut self, it: &IterationTrace, wall_ns: u64) {
        self.iterations += 1;
        self.edges_processed += it.edges_processed;
        self.records_produced += it.records_produced;
        self.io_bytes += it.total_io_bytes();
        self.io_requests += it.total_io_requests();
        self.wall_ns += wall_ns;
        self.cache_hit_pages += it.cache_hit_pages;
        self.cache_miss_pages += it.cache_miss_pages;
        self.cache_evictions += it.cache_evictions;
        self.cache_hot_hit_pages += it.cache_hot_hit_pages;
        self.cache_hot_admits += it.cache_hot_admits;
        self.shared_hit_pages += it.shared_hit_pages;
        self.shared_bytes += it.shared_bytes;
        self.flights_led += it.flights_led;
        self.io_max_in_flight = self.io_max_in_flight.max(it.io_max_in_flight);
        self.scatter_ns += it.scatter_ns;
        self.gather_ns += it.gather_ns;
        self.io_wait_ns += it.io_wait_ns;
        self.records_combined += it.records_combined;
        if it.async_round {
            self.async_rounds += 1;
            self.async_activations += it.async_activations;
            self.async_dedup_skipped += it.async_dedup_skipped;
        }
    }
}

/// Computes the per-device IO delta between two snapshot vectors and fills
/// the corresponding fields of `trace`.
pub fn fill_io_trace(
    trace: &mut IterationTrace,
    before: &[IoStatsSnapshot],
    after: &[IoStatsSnapshot],
) {
    debug_assert_eq!(before.len(), after.len());
    trace.io_bytes_per_device = after
        .iter()
        .zip(before)
        .map(|(a, b)| a.read_bytes - b.read_bytes)
        .collect();
    trace.io_requests_per_device = after
        .iter()
        .zip(before)
        .map(|(a, b)| a.read_ops - b.read_ops)
        .collect();
    trace.io_sequential_requests_per_device = after
        .iter()
        .zip(before)
        .map(|(a, b)| a.sequential_reads - b.sequential_reads)
        .collect();
}

/// Fills `trace`'s IO fields from one job's own counters. Traces must be
/// scoped per job, not derived from device-counter deltas: once independent
/// jobs interleave on the same engine, a before/after snapshot of the
/// shared device stats would charge one job with another's IO.
pub fn fill_io_trace_from_job(trace: &mut IterationTrace, job: &JobIoStats) {
    let after = job.snapshots();
    let before = vec![IoStatsSnapshot::default(); after.len()];
    fill_io_trace(trace, &before, &after);
    let (hits, misses, evictions) = job.cache_totals();
    trace.cache_hit_pages = hits;
    trace.cache_miss_pages = misses;
    trace.cache_evictions = evictions;
    let (hot_hits, hot_admits) = job.cache_hot_totals();
    trace.cache_hot_hit_pages = hot_hits;
    trace.cache_hot_admits = hot_admits;
    let (shared_hits, flights_led) = job.shared_totals();
    trace.shared_hit_pages = shared_hits;
    trace.shared_bytes = shared_hits * blaze_types::PAGE_SIZE as u64;
    trace.flights_led = flights_led;
    let (depth_max, depth_mean) = job.depth_stats();
    trace.io_max_in_flight = depth_max;
    trace.io_mean_in_flight = depth_mean;
    trace.io_latency_buckets = job.latency_histogram();
    let (scatter_ns, gather_ns, io_wait_ns, records_combined) = job.compute_totals();
    trace.scatter_ns = scatter_ns;
    trace.gather_ns = gather_ns;
    trace.io_wait_ns = io_wait_ns;
    trace.records_combined = records_combined;
    let (rounds, priority, activations, deduped) = job.async_totals();
    trace.async_round = rounds > 0;
    trace.async_batch_priority = priority;
    trace.async_activations = activations;
    trace.async_dedup_skipped = deduped;
}

/// Snapshots every device's stats.
pub fn snapshot_devices(storage: &StripedStorage) -> Vec<IoStatsSnapshot> {
    storage
        .devices()
        .iter()
        .map(|d| d.stats().snapshot())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_accumulates() {
        let mut s = ExecStats::default();
        let mut it = IterationTrace::new(2);
        it.io_bytes_per_device = vec![4096, 8192];
        it.io_requests_per_device = vec![1, 2];
        it.edges_processed = 100;
        it.records_produced = 60;
        it.cache_hit_pages = 3;
        it.cache_miss_pages = 4;
        it.cache_evictions = 1;
        it.cache_hot_hit_pages = 2;
        it.cache_hot_admits = 1;
        s.absorb(&it, 5000);
        s.absorb(&it, 5000);
        assert_eq!(s.iterations, 2);
        assert_eq!(s.io_bytes, 2 * 12288);
        assert_eq!(s.io_requests, 6);
        assert_eq!(s.edges_processed, 200);
        assert_eq!(s.wall_ns, 10_000);
        assert_eq!(s.cache_hit_pages, 6);
        assert_eq!(s.cache_miss_pages, 8);
        assert_eq!(s.cache_evictions, 2);
        assert_eq!(s.cache_hot_hit_pages, 4);
        assert_eq!(s.cache_hot_admits, 2);
    }

    #[test]
    fn job_trace_carries_cache_totals() {
        let j = JobIoStats::new(2);
        j.record_read(0, 0, 2);
        j.record_cache_hits(1, 5);
        j.record_cache_misses(0, 2);
        j.record_cache_evictions(0, 1);
        j.record_cache_hot_hits(1, 3);
        j.record_cache_hot_admits(0, 2);
        let mut t = IterationTrace::new(2);
        fill_io_trace_from_job(&mut t, &j);
        assert_eq!(t.cache_hit_pages, 5);
        assert_eq!(t.cache_miss_pages, 2);
        assert_eq!(t.cache_evictions, 1);
        assert_eq!(t.cache_hot_hit_pages, 3);
        assert_eq!(t.cache_hot_admits, 2);
        assert_eq!(t.total_io_bytes(), 2 * 4096);
    }

    #[test]
    fn job_trace_carries_shared_scan_totals() {
        let j = JobIoStats::new(2);
        j.record_shared_hits(0, 3);
        j.record_shared_hits(1, 4);
        j.record_flights_led(0, 2);
        let mut t = IterationTrace::new(2);
        fill_io_trace_from_job(&mut t, &j);
        assert_eq!(t.shared_hit_pages, 7);
        assert_eq!(t.shared_bytes, 7 * blaze_types::PAGE_SIZE as u64);
        assert_eq!(t.flights_led, 2);
        let mut s = ExecStats::default();
        s.absorb(&t, 0);
        s.absorb(&t, 0);
        assert_eq!(s.shared_hit_pages, 14);
        assert_eq!(s.shared_bytes, 14 * blaze_types::PAGE_SIZE as u64);
        assert_eq!(s.flights_led, 4);
    }

    #[test]
    fn job_trace_carries_compute_stage_totals() {
        let j = JobIoStats::new(1);
        j.add_scatter_ns(100);
        j.add_gather_ns(50);
        j.add_io_wait_ns(25);
        j.add_records_combined(9);
        let mut t = IterationTrace::new(1);
        fill_io_trace_from_job(&mut t, &j);
        assert_eq!(t.scatter_ns, 100);
        assert_eq!(t.gather_ns, 50);
        assert_eq!(t.io_wait_ns, 25);
        assert_eq!(t.records_combined, 9);
        let mut s = ExecStats::default();
        s.absorb(&t, 0);
        s.absorb(&t, 0);
        assert_eq!(s.scatter_ns, 200);
        assert_eq!(s.gather_ns, 100);
        assert_eq!(s.io_wait_ns, 50);
        assert_eq!(s.records_combined, 18);
    }

    #[test]
    fn job_trace_carries_async_round_totals() {
        let j = JobIoStats::new(1);
        j.record_async_round(3, 17, 4);
        let mut t = IterationTrace::new(1);
        fill_io_trace_from_job(&mut t, &j);
        assert!(t.async_round);
        assert_eq!(t.async_batch_priority, 3);
        assert_eq!(t.async_activations, 17);
        assert_eq!(t.async_dedup_skipped, 4);
        let mut s = ExecStats::default();
        s.absorb(&t, 0);
        s.absorb(&t, 0);
        assert_eq!(s.async_rounds, 2);
        assert_eq!(s.async_activations, 34);
        assert_eq!(s.async_dedup_skipped, 8);
        // A barrier job leaves the async fields untouched.
        let barrier = JobIoStats::new(1);
        let mut bt = IterationTrace::new(1);
        fill_io_trace_from_job(&mut bt, &barrier);
        assert!(!bt.async_round);
        s.absorb(&bt, 0);
        assert_eq!(s.async_rounds, 2);
    }

    #[test]
    fn io_trace_is_the_snapshot_delta() {
        let mut before = vec![IoStatsSnapshot::default(); 2];
        before[0].read_bytes = 100;
        before[0].read_ops = 1;
        let mut after = before.clone();
        after[0].read_bytes = 4196;
        after[0].read_ops = 2;
        after[1].read_bytes = 8192;
        after[1].read_ops = 2;
        after[1].sequential_reads = 1;
        let mut t = IterationTrace::new(2);
        fill_io_trace(&mut t, &before, &after);
        assert_eq!(t.io_bytes_per_device, vec![4096, 8192]);
        assert_eq!(t.io_requests_per_device, vec![1, 2]);
        assert_eq!(t.io_sequential_requests_per_device, vec![0, 1]);
    }
}
