//! Algorithm-specific vertex data under the semi-external model.
//!
//! Vertex data lives fully in DRAM. During an `edge_map`, gather threads
//! write it while scatter threads concurrently read it through `cond` — a
//! data race in C++, which the paper tolerates benignly. In Rust we make
//! the same pattern sound with *relaxed atomic* cells: on x86 these compile
//! to plain loads and stores (no `lock` prefix, no fences), preserving the
//! "no synchronization" property of online binning while avoiding UB.
//! Read-modify-write operations (`fetch_update`, `fetch_add_f64`, …) are
//! provided for the synchronization-based engine variant, which is exactly
//! the CPU cost Blaze exists to avoid.

use blaze_sync::atomic::{AtomicI64, AtomicU32, AtomicU64, Ordering};

/// Element types storable in a [`VertexArray`].
pub trait VertexValue: Copy + Send + Sync + 'static {
    /// The backing atomic cell.
    type Cell: Send + Sync;
    /// Creates a cell holding `v`.
    fn new_cell(v: Self) -> Self::Cell;
    /// Relaxed load.
    fn load(cell: &Self::Cell) -> Self;
    /// Relaxed store.
    fn store(cell: &Self::Cell, v: Self);
    /// Relaxed compare-exchange; returns `Ok(prev)` on success.
    fn compare_exchange(cell: &Self::Cell, current: Self, new: Self) -> Result<Self, Self>;
}

macro_rules! impl_direct {
    ($t:ty, $atomic:ty) => {
        impl VertexValue for $t {
            type Cell = $atomic;
            #[inline]
            fn new_cell(v: Self) -> Self::Cell {
                <$atomic>::new(v)
            }
            #[inline]
            fn load(cell: &Self::Cell) -> Self {
                // sync-audit: Relaxed — vertex slots are independent cells;
                // binned gather serializes same-vertex updates via the bin
                // gather lock, and sync mode relies on CAS atomicity only.
                cell.load(Ordering::Relaxed)
            }
            #[inline]
            fn store(cell: &Self::Cell, v: Self) {
                // sync-audit: Relaxed — see `load` above.
                cell.store(v, Ordering::Relaxed)
            }
            #[inline]
            fn compare_exchange(cell: &Self::Cell, current: Self, new: Self) -> Result<Self, Self> {
                // sync-audit: Relaxed — see `load` above; the RMW itself is
                // atomic, which is all edge-parallel updates need.
                cell.compare_exchange(current, new, Ordering::Relaxed, Ordering::Relaxed)
            }
        }
    };
}

impl_direct!(u32, AtomicU32);
impl_direct!(u64, AtomicU64);
impl_direct!(i64, AtomicI64);

macro_rules! impl_float {
    ($t:ty, $bits:ty, $atomic:ty) => {
        impl VertexValue for $t {
            type Cell = $atomic;
            #[inline]
            fn new_cell(v: Self) -> Self::Cell {
                <$atomic>::new(v.to_bits())
            }
            #[inline]
            fn load(cell: &Self::Cell) -> Self {
                // sync-audit: Relaxed — same cell-independence argument as
                // the integer impl above; floats ride in their bit pattern.
                <$t>::from_bits(cell.load(Ordering::Relaxed))
            }
            #[inline]
            fn store(cell: &Self::Cell, v: Self) {
                // sync-audit: Relaxed — see `load` above.
                cell.store(v.to_bits(), Ordering::Relaxed)
            }
            #[inline]
            fn compare_exchange(cell: &Self::Cell, current: Self, new: Self) -> Result<Self, Self> {
                // sync-audit: Relaxed — atomic RMW on the bit pattern; no
                // ordering obligation beyond the exchange itself.
                cell.compare_exchange(
                    current.to_bits(),
                    new.to_bits(),
                    Ordering::Relaxed, // sync-audit: see above.
                    Ordering::Relaxed, // sync-audit: see above.
                )
                .map(<$t>::from_bits)
                .map_err(<$t>::from_bits)
            }
        }
    };
}

impl_float!(f32, u32, AtomicU32);
impl_float!(f64, u64, AtomicU64);

/// A fixed-length array of per-vertex values with interior mutability.
pub struct VertexArray<T: VertexValue> {
    cells: Box<[T::Cell]>,
}

impl<T: VertexValue> VertexArray<T> {
    /// Creates an array of `n` cells, all holding `init`.
    pub fn new(n: usize, init: T) -> Self {
        Self {
            cells: (0..n).map(|_| T::new_cell(init)).collect(),
        }
    }

    /// Number of vertices covered.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Relaxed read of vertex `i`'s value.
    #[inline]
    pub fn get(&self, i: usize) -> T {
        T::load(&self.cells[i])
    }

    /// Relaxed write of vertex `i`'s value. Plain store — safe under the
    /// bin-exclusivity invariant (only one gather thread per destination).
    #[inline]
    pub fn set(&self, i: usize, v: T) {
        T::store(&self.cells[i], v)
    }

    /// Compare-and-swap, for the synchronization-based variant. Returns
    /// `Ok(previous)` on success.
    #[inline]
    pub fn compare_exchange(&self, i: usize, current: T, new: T) -> Result<T, T> {
        T::compare_exchange(&self.cells[i], current, new)
    }

    /// CAS-loop read-modify-write: applies `f` until it sticks or `f`
    /// returns `None`. Returns the previous value on success.
    pub fn fetch_update(&self, i: usize, mut f: impl FnMut(T) -> Option<T>) -> Result<T, T> {
        let mut current = self.get(i);
        loop {
            let Some(new) = f(current) else {
                return Err(current);
            };
            match self.compare_exchange(i, current, new) {
                Ok(prev) => return Ok(prev),
                Err(actual) => current = actual,
            }
        }
    }

    /// Snapshot of all values.
    pub fn to_vec(&self) -> Vec<T> {
        (0..self.len()).map(|i| self.get(i)).collect()
    }

    /// Bytes of memory held (Figure 12 accounting).
    pub fn memory_bytes(&self) -> u64 {
        (self.cells.len() * std::mem::size_of::<T::Cell>()) as u64
    }
}

impl VertexArray<f64> {
    /// Atomic `+=` via CAS loop — the per-edge cost of the
    /// synchronization-based PageRank/SpMV variants.
    #[inline]
    pub fn fetch_add(&self, i: usize, delta: f64) -> f64 {
        // The closure always returns `Some`, so `fetch_update` cannot fail;
        // `Err` would still carry the previous value, keeping this total.
        self.fetch_update(i, |v| Some(v + delta))
            .unwrap_or_else(|v| v)
    }
}

impl<T: VertexValue + std::fmt::Debug> std::fmt::Debug for VertexArray<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VertexArray")
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_round_trip_all_types() {
        let a = VertexArray::<u32>::new(4, 7);
        assert_eq!(a.get(3), 7);
        a.set(3, 9);
        assert_eq!(a.get(3), 9);

        let b = VertexArray::<i64>::new(2, -1);
        assert_eq!(b.get(0), -1);
        b.set(0, 42);
        assert_eq!(b.get(0), 42);

        let c = VertexArray::<f64>::new(2, 0.25);
        assert_eq!(c.get(1), 0.25);
        c.set(1, -1.5);
        assert_eq!(c.get(1), -1.5);

        let d = VertexArray::<f32>::new(1, 3.5);
        assert_eq!(d.get(0), 3.5);
    }

    #[test]
    fn compare_exchange_succeeds_and_fails() {
        let a = VertexArray::<u32>::new(1, 5);
        assert_eq!(a.compare_exchange(0, 5, 6), Ok(5));
        assert_eq!(a.compare_exchange(0, 5, 7), Err(6));
        assert_eq!(a.get(0), 6);
    }

    #[test]
    fn fetch_update_applies_until_none() {
        let a = VertexArray::<u32>::new(1, 10);
        // Min-update: only write smaller values (the WCC pattern).
        assert_eq!(a.fetch_update(0, |v| (3 < v).then_some(3)), Ok(10));
        assert_eq!(a.fetch_update(0, |v| (8 < v).then_some(8)), Err(3));
        assert_eq!(a.get(0), 3);
    }

    #[test]
    fn concurrent_fetch_add_is_exact() {
        let a = blaze_sync::Arc::new(VertexArray::<f64>::new(4, 0.0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let a = a.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..1000 {
                    a.fetch_add(i % 4, 1.0);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let total: f64 = (0..4).map(|i| a.get(i)).sum();
        assert_eq!(total, 4000.0);
    }

    #[test]
    fn memory_accounting() {
        let a = VertexArray::<f64>::new(1000, 0.0);
        assert_eq!(a.memory_bytes(), 8000);
        assert_eq!(a.to_vec().len(), 1000);
    }
}
