//! `VertexMap` (Section IV-B): in-memory application of a vertex function
//! to every frontier member, producing a filtered frontier.

use blaze_frontier::VertexSubset;
use blaze_types::VertexId;

/// Applies `f` to each vertex in `frontier`; the returned frontier contains
/// exactly the vertices for which `f` returned `true`.
///
/// All vertex data is memory-resident under the semi-external model, so
/// this runs without IO, parallelized over `threads` workers.
pub fn vertex_map<F>(frontier: &VertexSubset, f: F, threads: usize) -> VertexSubset
where
    F: Fn(VertexId) -> bool + Sync,
{
    let members = frontier.members();
    let mut out = VertexSubset::new(frontier.capacity());
    let threads = threads.max(1);
    if members.len() < 2048 || threads == 1 {
        for &v in &members {
            if f(v) {
                out.insert(v);
            }
        }
    } else {
        let chunk = members.len().div_ceil(threads);
        let out_ref = &out;
        let f_ref = &f;
        blaze_sync::thread::scope(|s| {
            for slice in members.chunks(chunk) {
                s.spawn(move || {
                    for &v in slice {
                        if f_ref(v) {
                            out_ref.insert(v);
                        }
                    }
                });
            }
        });
    }
    out.seal();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filters_members() {
        let f = VertexSubset::from_members(100, 0..100u32);
        let out = vertex_map(&f, |v| v % 3 == 0, 2);
        assert_eq!(out.len(), 34);
        assert!(out.contains(0));
        assert!(out.contains(99));
        assert!(!out.contains(1));
    }

    #[test]
    fn empty_in_empty_out() {
        let f = VertexSubset::new(10);
        let out = vertex_map(&f, |_| true, 4);
        assert!(out.is_empty());
    }

    #[test]
    fn parallel_matches_serial() {
        let f = VertexSubset::from_members(10_000, (0..10_000u32).filter(|v| v % 7 != 0));
        let serial = vertex_map(&f, |v| v % 2 == 0, 1);
        let parallel = vertex_map(&f, |v| v % 2 == 0, 8);
        assert_eq!(serial.members(), parallel.members());
    }

    #[test]
    fn side_effects_run_once_per_member() {
        use blaze_sync::atomic::{AtomicU64, Ordering};
        let calls = AtomicU64::new(0);
        let f = VertexSubset::from_members(5000, 0..5000u32);
        let out = vertex_map(
            &f,
            |_| {
                calls.fetch_add(1, Ordering::Relaxed);
                true
            },
            4,
        );
        assert_eq!(calls.load(Ordering::Relaxed), 5000);
        assert_eq!(out.len(), 5000);
    }
}
