//! `VertexMap` (Section IV-B): in-memory application of a vertex function
//! to every frontier member, producing a filtered frontier.

use blaze_frontier::VertexSubset;
use blaze_types::{VertexId, DEFAULT_VERTEX_MAP_GRAIN};

/// Applies `f` to each vertex in `frontier`; the returned frontier contains
/// exactly the vertices for which `f` returned `true`.
///
/// All vertex data is memory-resident under the semi-external model, so
/// this runs without IO, parallelized over `threads` workers. Runs with the
/// default serial grain ([`DEFAULT_VERTEX_MAP_GRAIN`] members per thread);
/// callers with an [`EngineOptions`](crate::EngineOptions) at hand should
/// pass its `vertex_map_grain` to [`vertex_map_with_grain`] instead.
pub fn vertex_map<F>(frontier: &VertexSubset, f: F, threads: usize) -> VertexSubset
where
    F: Fn(VertexId) -> bool + Sync,
{
    vertex_map_with_grain(frontier, f, threads, DEFAULT_VERTEX_MAP_GRAIN)
}

/// [`vertex_map`] with an explicit serial grain: the map runs serially when
/// the frontier has fewer than `grain * threads` members, since forking
/// scoped threads costs more than a small map. A grain of 1 forces the
/// parallel path for any frontier with at least `threads` members.
pub fn vertex_map_with_grain<F>(
    frontier: &VertexSubset,
    f: F,
    threads: usize,
    grain: usize,
) -> VertexSubset
where
    F: Fn(VertexId) -> bool + Sync,
{
    let members = frontier.members();
    let mut out = VertexSubset::new(frontier.capacity());
    let threads = threads.max(1);
    if members.len() < grain.max(1) * threads || threads == 1 {
        for &v in &members {
            if f(v) {
                out.insert(v);
            }
        }
    } else {
        let chunk = members.len().div_ceil(threads);
        let out_ref = &out;
        let f_ref = &f;
        blaze_sync::thread::scope(|s| {
            for slice in members.chunks(chunk) {
                s.spawn(move || {
                    for &v in slice {
                        if f_ref(v) {
                            out_ref.insert(v);
                        }
                    }
                });
            }
        });
    }
    out.seal();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filters_members() {
        let f = VertexSubset::from_members(100, 0..100u32);
        let out = vertex_map(&f, |v| v % 3 == 0, 2);
        assert_eq!(out.len(), 34);
        assert!(out.contains(0));
        assert!(out.contains(99));
        assert!(!out.contains(1));
    }

    #[test]
    fn empty_in_empty_out() {
        let f = VertexSubset::new(10);
        let out = vertex_map(&f, |_| true, 4);
        assert!(out.is_empty());
    }

    #[test]
    fn parallel_matches_serial() {
        let f = VertexSubset::from_members(10_000, (0..10_000u32).filter(|v| v % 7 != 0));
        let serial = vertex_map(&f, |v| v % 2 == 0, 1);
        let parallel = vertex_map(&f, |v| v % 2 == 0, 8);
        assert_eq!(serial.members(), parallel.members());
    }

    #[test]
    fn grain_scales_threshold_with_threads() {
        use blaze_sync::atomic::{AtomicU64, Ordering};
        // 100 members, 4 threads: a large grain stays serial, while grain 1
        // forces the forked path. Count the distinct threads that ran `f`
        // to observe which path was taken.
        let f = VertexSubset::from_members(1000, 0..100u32);
        let count_threads = |grain: usize| {
            let main_thread = std::thread::current().id();
            let off_main = AtomicU64::new(0);
            let out = vertex_map_with_grain(
                &f,
                |_| {
                    if std::thread::current().id() != main_thread {
                        off_main.fetch_add(1, Ordering::Relaxed);
                    }
                    true
                },
                4,
                grain,
            );
            assert_eq!(out.len(), 100);
            off_main.load(Ordering::Relaxed)
        };
        assert_eq!(count_threads(1024), 0, "default grain runs serially");
        assert_eq!(count_threads(1), 100, "grain 1 forks workers");
    }

    #[test]
    fn explicit_grain_matches_default_results() {
        let f = VertexSubset::from_members(10_000, 0..10_000u32);
        let a = vertex_map(&f, |v| v % 5 == 0, 4);
        let b = vertex_map_with_grain(&f, |v| v % 5 == 0, 4, 1);
        assert_eq!(a.members(), b.members());
    }

    #[test]
    fn side_effects_run_once_per_member() {
        use blaze_sync::atomic::{AtomicU64, Ordering};
        let calls = AtomicU64::new(0);
        let f = VertexSubset::from_members(5000, 0..5000u32);
        let out = vertex_map(
            &f,
            |_| {
                calls.fetch_add(1, Ordering::Relaxed);
                true
            },
            4,
        );
        assert_eq!(calls.load(Ordering::Relaxed), 5000);
        assert_eq!(out.len(), 5000);
    }
}
