//! IO-backend equivalence and robustness tests.
//!
//! The refactor from blocking per-request reads to a submission/completion
//! pump must not change what reaches the devices:
//!
//! * the default configuration (synchronous backend, queue depth 1) must
//!   produce byte-for-byte the request stream of the published blocking IO
//!   path — same offsets, same lengths, same order;
//! * the threaded backend at depth 1 serializes to the identical stream;
//! * deeper windows may reorder but must read the same request multiset;
//! * a failing device under the threaded backend fails the query with the
//!   injected error — no hang, no lost buffers, engine usable afterwards.

use blaze_core::{BlazeEngine, EngineOptions, VertexArray};
use blaze_frontier::VertexSubset;
use blaze_graph::gen::{rmat, uniform, RmatConfig};
use blaze_graph::{Csr, DiskGraph};
use blaze_storage::recorder::RecordedRead;
use blaze_storage::request::merge_pages_with_window;
use blaze_storage::{
    BlockDevice, FaultyDevice, IoBackendKind, MemDevice, RecordingDevice, StripedStorage,
};
use blaze_sync::Arc;
use blaze_types::{BlazeError, EDGES_PER_PAGE, MAX_MERGED_PAGES, PAGE_SIZE};

/// Builds an engine whose stripe devices log every read.
fn recording_engine(
    g: &Csr,
    devices: usize,
    options: EngineOptions,
) -> (BlazeEngine, Vec<Arc<RecordingDevice<MemDevice>>>) {
    let recs: Vec<Arc<RecordingDevice<MemDevice>>> = (0..devices)
        .map(|_| Arc::new(RecordingDevice::new(MemDevice::new())))
        .collect();
    let devs: Vec<Arc<dyn BlockDevice>> = recs
        .iter()
        .map(|r| r.clone() as Arc<dyn BlockDevice>)
        .collect();
    let storage = Arc::new(StripedStorage::new(devs).unwrap());
    let graph = Arc::new(DiskGraph::create(g, storage).unwrap());
    let engine = BlazeEngine::new(graph, options).unwrap();
    // Graph creation only writes; reads start with the first query.
    for r in &recs {
        assert!(r.read_log().is_empty());
    }
    (engine, recs)
}

fn full_scan(e: &BlazeEngine) {
    let frontier = VertexSubset::full(e.num_vertices());
    e.edge_map(
        &frontier,
        |s: u32, _d: u32| s,
        |_d, _v| false,
        |_| true,
        false,
    )
    .unwrap();
}

/// BFS levels via edge_map, for the robustness tests.
fn bfs(e: &BlazeEngine, root: u32) -> blaze_types::Result<Vec<i64>> {
    let n = e.num_vertices();
    let level = VertexArray::<i64>::new(n, -1);
    level.set(root as usize, 0);
    let mut frontier = VertexSubset::single(n, root);
    let mut depth: i64 = 0;
    while !frontier.is_empty() {
        depth += 1;
        let d = depth;
        frontier = e.edge_map(
            &frontier,
            |_s: u32, _d: u32| 0u32,
            |dst: u32, _v: u32| {
                if level.get(dst as usize) == -1 {
                    level.set(dst as usize, d);
                    true
                } else {
                    false
                }
            },
            |dst: u32| level.get(dst as usize) == -1,
            true,
        )?;
    }
    Ok(level.to_vec())
}

/// The published request stream of a full scan: every adjacency page,
/// partitioned to its stripe device, merged into runs of at most
/// `MAX_MERGED_PAGES`, issued in ascending order at depth 1.
fn merge_oracle(e: &BlazeEngine, g: &Csr) -> Vec<Vec<RecordedRead>> {
    let total_pages = g.num_edges().div_ceil(EDGES_PER_PAGE as u64);
    let all_pages: Vec<u64> = (0..total_pages).collect();
    let storage = e.graph().storage();
    storage
        .partition_pages(&all_pages)
        .iter()
        .map(|locals| {
            merge_pages_with_window(locals, MAX_MERGED_PAGES)
                .into_iter()
                .map(|r| {
                    (
                        r.first_page * PAGE_SIZE as u64,
                        r.num_pages as usize * PAGE_SIZE,
                        1,
                    )
                })
                .collect()
        })
        .collect()
}

#[test]
fn default_sync_stream_matches_the_published_io_path() {
    let g = uniform(11, 12, 5);
    for devices in [1, 3] {
        let (e, recs) = recording_engine(&g, devices, EngineOptions::default());
        full_scan(&e);
        let oracle = merge_oracle(&e, &g);
        for (dev, rec) in recs.iter().enumerate() {
            assert_eq!(
                rec.read_log(),
                oracle[dev],
                "device {dev} of {devices}: stream must match the merge oracle exactly"
            );
        }
    }
}

#[test]
fn threaded_depth_one_issues_the_identical_stream() {
    let g = uniform(11, 12, 5);
    let (sync_e, sync_recs) = recording_engine(&g, 2, EngineOptions::default());
    full_scan(&sync_e);
    let (thr_e, thr_recs) = recording_engine(
        &g,
        2,
        EngineOptions::default().with_io_backend(IoBackendKind::Threaded),
    );
    full_scan(&thr_e);
    for dev in 0..2 {
        let sync_log = sync_recs[dev].read_log();
        let thr_log = thr_recs[dev].read_log();
        assert_eq!(
            sync_log, thr_log,
            "device {dev}: a depth-1 window serializes to the sync stream, \
             including order and depth hints"
        );
    }
}

#[test]
fn deep_queue_reads_the_same_request_multiset() {
    let g = uniform(11, 12, 5);
    let (sync_e, sync_recs) = recording_engine(&g, 2, EngineOptions::default());
    let sync_levels = bfs(&sync_e, 1).unwrap();
    let (thr_e, thr_recs) = recording_engine(&g, 2, EngineOptions::default().with_queue_depth(8));
    let thr_levels = bfs(&thr_e, 1).unwrap();
    assert_eq!(sync_levels, thr_levels, "same BFS result either way");
    for dev in 0..2 {
        // Completions reorder, so drop the depth hint and compare sorted
        // (offset, len) multisets across the whole multi-iteration run.
        let strip = |log: Vec<RecordedRead>| {
            let mut reqs: Vec<(u64, usize)> = log.into_iter().map(|(o, l, _)| (o, l)).collect();
            reqs.sort_unstable();
            reqs
        };
        assert_eq!(
            strip(sync_recs[dev].read_log()),
            strip(thr_recs[dev].read_log()),
            "device {dev}: deep queue must request exactly the same bytes"
        );
    }
}

#[test]
fn faulty_device_fails_bfs_cleanly_under_threaded_backend() {
    let g = rmat(&RmatConfig::new(10));
    let devs: Vec<Arc<dyn BlockDevice>> = vec![
        Arc::new(FaultyDevice::fail_every(MemDevice::new(), 2)),
        Arc::new(MemDevice::new()),
    ];
    let storage = Arc::new(StripedStorage::new(devs).unwrap());
    let graph = Arc::new(DiskGraph::create(&g, storage).unwrap());
    let e = BlazeEngine::new(graph, EngineOptions::default().with_queue_depth(8)).unwrap();
    // The injected error must surface as the job's failure; repeated runs
    // must keep failing promptly — a lost buffer would wedge a later run
    // on the free queue instead.
    for round in 0..3 {
        let r = bfs(&e, 0);
        assert!(
            matches!(r, Err(BlazeError::Io(_))),
            "round {round}: expected the injected IO error, got {r:?}"
        );
    }
    // The engine itself stays usable: a query that needs no IO succeeds.
    let mut empty = VertexSubset::new(g.num_vertices());
    empty.seal();
    let out = e
        .edge_map(
            &empty,
            |_s: u32, _d: u32| 0u32,
            |_d, _v| true,
            |_| true,
            true,
        )
        .unwrap();
    assert!(out.is_empty());
}
