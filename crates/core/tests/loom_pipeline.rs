//! Model-checked tests of the scatter → `full_bins` → gather pipeline
//! hand-off the engine drives: scatter threads append records through the
//! bin space (per-bin swap + MPMC full queue) while a gather loop drains,
//! processes under the per-bin gather lock, and recycles buffers; the
//! end-of-iteration `flush_partials` pushes the stragglers.
//!
//! Run with:
//! `RUSTFLAGS="--cfg loom" cargo test -p blaze-core --test loom_pipeline --release`
#![cfg(loom)]

use blaze_binning::{BinRecord, BinSpace, BinningConfig};
use blaze_sync::{thread, Arc, Condvar, Mutex};

use blaze_sync::model::{check_with, Config};

fn cfg(preemption_bound: usize) -> Config {
    Config {
        preemption_bound,
        ..Config::default()
    }
}

/// Two bins, one-record buffers: the smallest space that still exercises
/// the swap + queue machinery.
fn tiny_space() -> BinSpace<u32> {
    BinSpace::new(BinningConfig::new(2, 1, 1).unwrap())
}

/// Drains every currently-queued full bin into `out`.
fn drain(space: &BinSpace<u32>, out: &mut Vec<u32>) {
    while space.process_one_full(|_, records| out.extend(records.iter().map(|r| r.value))) {}
}

/// One scatter thread feeds the space while the gather loop (main thread)
/// concurrently drains, then flushes partials once scatter signals done.
/// Every schedule must deliver each record exactly once.
#[test]
fn scatter_gather_handoff_conserves_records() {
    let report = check_with(cfg(2), || {
        let space = Arc::new(tiny_space());
        let done = Arc::new((Mutex::new(false), Condvar::new()));

        let scatter = {
            let (space, done) = (space.clone(), done.clone());
            thread::spawn(move || {
                for r in 0..4u32 {
                    space.append_batch(space.bin_of(r), &[BinRecord::new(r, r)]);
                }
                *done.0.lock() = true;
                done.1.notify_all();
            })
        };

        // Gather loop: drain whatever is queued, then sleep until the
        // scatter side signals completion (no spinning — the model explores
        // every wakeup order).
        let mut got = Vec::new();
        loop {
            drain(&space, &mut got);
            let mut d = done.0.lock();
            if *d {
                break;
            }
            done.1.wait(&mut d);
        }
        scatter.join().unwrap();

        // End-of-iteration flush pushes the partially-filled buffers.
        space.flush_partials();
        drain(&space, &mut got);

        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3], "pipeline lost or duplicated records");
        assert!(space.full_queue_is_empty());
        assert_eq!(space.total_records(), 4);
    });
    assert!(report.executions > 1, "explored only one schedule");
}

/// Two scatter threads race on the same bins (append-lock contention plus
/// concurrent MPMC pushes) while the main thread gathers.
#[test]
fn racing_scatter_threads_conserve_records() {
    let report = check_with(cfg(2), || {
        let space = Arc::new(tiny_space());
        let done = Arc::new((Mutex::new(0usize), Condvar::new()));

        let spawn_scatter = |records: [u32; 2]| {
            let (space, done) = (space.clone(), done.clone());
            thread::spawn(move || {
                for r in records {
                    space.append_batch(space.bin_of(r), &[BinRecord::new(r, r)]);
                }
                *done.0.lock() += 1;
                done.1.notify_all();
            })
        };
        // Both threads hit bin 0 and bin 1 (r % 2 routing) — real contention
        // on the same append locks.
        let a = spawn_scatter([0, 1]);
        let b = spawn_scatter([2, 3]);

        let mut got = Vec::new();
        loop {
            drain(&space, &mut got);
            let mut d = done.0.lock();
            if *d == 2 {
                break;
            }
            done.1.wait(&mut d);
        }
        a.join().unwrap();
        b.join().unwrap();

        space.flush_partials();
        drain(&space, &mut got);
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3], "racing scatters lost a record");
    });
    assert!(report.executions > 1, "explored only one schedule");
}

/// The engine's actual thread topology in miniature: scoped scatter workers
/// borrowing the space from the driver's stack (as `BlazeEngine` does), with
/// the gather drain after the scope joins.
#[test]
fn scoped_scatter_workers_like_engine() {
    check_with(cfg(2), || {
        let space = tiny_space();
        thread::scope(|s| {
            for base in [0u32, 2] {
                let space = &space;
                s.spawn(move || {
                    for r in [base, base + 1] {
                        space.append_batch(space.bin_of(r), &[BinRecord::new(r, r)]);
                    }
                });
            }
        });
        space.flush_partials();
        let mut got = Vec::new();
        drain(&space, &mut got);
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    });
}

/// Per-bin record accounting (`records_per_bin` relaxed counters) must agree
/// with what gather actually observes, in every schedule.
#[test]
fn record_counters_match_gathered_totals() {
    check_with(cfg(2), || {
        let space = Arc::new(tiny_space());
        let handles: Vec<_> = [0u32, 1]
            .into_iter()
            .map(|r| {
                let space = space.clone();
                thread::spawn(move || {
                    space.append_batch(space.bin_of(r), &[BinRecord::new(r, r)]);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        space.flush_partials();
        let mut got = Vec::new();
        drain(&space, &mut got);
        assert_eq!(space.total_records() as usize, got.len());
        let counts = space.take_record_counts();
        assert_eq!(counts.iter().sum::<u64>(), 2);
        assert_eq!(space.total_records(), 0, "take_record_counts must reset");
    });
}
