//! Model-checked tests of the persistent runtime's shutdown/quiesce
//! protocol: job submission into per-worker mailboxes, completion
//! signalling, panic isolation, and drop = drain + join.
//!
//! Run with:
//! `RUSTFLAGS="--cfg loom" cargo test -p blaze-core --test loom_runtime --release`
#![cfg(loom)]

use blaze_core::runtime::{PipelineJob, Runtime};
use blaze_sync::atomic::{AtomicUsize, Ordering};
use blaze_sync::model::{check_with, Config};
use blaze_sync::thread;

fn cfg(preemption_bound: usize) -> Config {
    Config {
        preemption_bound,
        ..Config::default()
    }
}

/// A job that counts how many times each role ran.
#[derive(Default)]
struct CountingJob {
    io: AtomicUsize,
    scatter: AtomicUsize,
    gather: AtomicUsize,
}

impl CountingJob {
    fn counts(&self) -> (usize, usize, usize) {
        // sync-audit: read after submit returned; the completion handle
        // ordered every worker's writes before this load.
        (
            self.io.load(Ordering::Relaxed),
            self.scatter.load(Ordering::Relaxed),
            self.gather.load(Ordering::Relaxed),
        )
    }
}

impl PipelineJob for CountingJob {
    fn run_io(&self, _device: usize, _lane: usize) {
        self.io.fetch_add(1, Ordering::Relaxed); // sync-audit: role counter; read post-completion.
    }
    fn run_scatter(&self, _worker: usize) {
        self.scatter.fetch_add(1, Ordering::Relaxed); // sync-audit: role counter; read post-completion.
    }
    fn run_gather(&self, _worker: usize) {
        self.gather.fetch_add(1, Ordering::Relaxed); // sync-audit: role counter; read post-completion.
    }
}

/// One submission through the full worker set: in every schedule each role
/// runs exactly once (no job lost, none duplicated), and drop joins every
/// worker without deadlock (a leaked worker would show up as a model
/// deadlock — the checker reports threads that never terminate).
#[test]
fn submit_runs_every_role_then_drop_quiesces() {
    let report = check_with(cfg(2), || {
        let rt = Runtime::new(1, 1, 1, 1);
        let job = CountingJob::default();
        rt.submit(&job, true);
        assert_eq!(job.counts(), (1, 1, 1), "every role exactly once");
        drop(rt); // shutdown: drain + join, must terminate in every schedule
    });
    assert!(report.executions > 1, "explored only one schedule");
}

/// Back-to-back submissions reuse the same quiesced workers; the second
/// job must be served exactly like the first (no stale mailbox state).
/// Bound 1 keeps the two-job state space tractable.
#[test]
fn sequential_submissions_reuse_workers() {
    let report = check_with(cfg(1), || {
        let rt = Runtime::new(1, 1, 1, 1);
        for _ in 0..2 {
            let job = CountingJob::default();
            rt.submit(&job, true);
            assert_eq!(job.counts(), (1, 1, 1), "every role exactly once");
        }
        drop(rt);
    });
    assert!(report.executions > 1, "explored only one schedule");
}

/// The sync-variant submission must not dispatch the gather worker, and
/// the runtime must still complete and shut down cleanly.
#[test]
fn sync_variant_submission_skips_gather() {
    let report = check_with(cfg(1), || {
        let rt = Runtime::new(1, 1, 1, 1);
        let job = CountingJob::default();
        rt.submit(&job, false);
        assert_eq!(job.counts(), (1, 1, 0), "gather must not participate");
        drop(rt);
    });
    assert!(report.executions > 1, "explored only one schedule");
}

/// Two submitter threads race their jobs into the shared workers. Both
/// jobs must complete with every role served in every interleaving —
/// mailbox FIFO plus the single submission lock keeps the workers
/// consistent — and shutdown afterwards loses neither. The runtime is
/// shrunk to one IO and one scatter worker (the cross-job ordering
/// argument only needs two mailboxes that must agree on job order);
/// adding a gather worker pushes exploration past the execution cap.
#[test]
fn concurrent_submitters_both_complete() {
    let report = check_with(cfg(1), || {
        let rt = Runtime::new(1, 1, 1, 0);
        thread::scope(|s| {
            for _ in 0..2 {
                let rt = &rt;
                s.spawn(move || {
                    let job = CountingJob::default();
                    rt.submit(&job, false);
                    assert_eq!(job.counts(), (1, 1, 0), "job lost a role");
                });
            }
        });
        drop(rt);
    });
    assert!(report.executions > 1, "explored only one schedule");
}

/// A job whose scatter role panics: the panic reaches the submitter (via
/// the completion handle, not a worker crash), and the runtime stays fully
/// operational for the next submission in every schedule.
#[test]
fn panicking_job_leaves_runtime_operational() {
    struct PanickingJob;
    impl PipelineJob for PanickingJob {
        fn run_io(&self, _device: usize, _lane: usize) {}
        fn run_scatter(&self, _worker: usize) {
            panic!("scatter role panicked");
        }
        fn run_gather(&self, _worker: usize) {}
    }

    let report = check_with(cfg(1), || {
        let rt = Runtime::new(1, 1, 1, 1);
        let caught = blaze_sync::panic::catch_unwind(|| rt.submit(&PanickingJob, true));
        assert!(caught.is_err(), "panic must re-raise on the submitter");
        // The poisoned job must not take a worker down with it.
        let job = CountingJob::default();
        rt.submit(&job, true);
        assert_eq!(job.counts(), (1, 1, 1), "runtime died with the job");
        drop(rt);
    });
    assert!(report.executions > 1, "explored only one schedule");
}
