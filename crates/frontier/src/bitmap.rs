//! A fixed-size concurrent bitmap.

use blaze_sync::atomic::{AtomicU64, Ordering};

/// A bitmap over `len` bits supporting lock-free concurrent set operations.
///
/// `set` uses `fetch_or` and reports whether the bit was newly set, which
/// gives exactly-once semantics for frontier insertion without any lock.
#[derive(Debug)]
pub struct AtomicBitmap {
    words: Vec<AtomicU64>,
    len: usize,
}

impl AtomicBitmap {
    /// Creates an all-zero bitmap over `len` bits.
    pub fn new(len: usize) -> Self {
        let words = (0..len.div_ceil(64)).map(|_| AtomicU64::new(0)).collect();
        Self { words, len }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitmap covers zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `i`; returns `true` iff the bit was previously clear.
    #[inline]
    pub fn set(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let mask = 1u64 << (i % 64);
        let prev = self.words[i / 64].fetch_or(mask, Ordering::Relaxed); // sync-audit: atomic RMW gives exactly-once claims; no payload is published through the bit, so no ordering needed.
        prev & mask == 0
    }

    /// Clears bit `i`; returns `true` iff the bit was previously set. The
    /// concurrent inverse of [`set`](Self::set): the priority frontier uses
    /// the pair as an enqueue claim that popping releases.
    #[inline]
    pub fn unset(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let mask = 1u64 << (i % 64);
        let prev = self.words[i / 64].fetch_and(!mask, Ordering::Relaxed); // sync-audit: atomic RMW gives exactly-once releases; no payload is published through the bit, so no ordering needed.
        prev & mask != 0
    }

    /// Reads bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64].load(Ordering::Relaxed) & (1u64 << (i % 64)) != 0 // sync-audit: racy read by design; callers observe a consistent frontier only after the iteration barrier.
    }

    /// Clears every bit. Requires exclusive access (no concurrent readers).
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w.get_mut() = 0;
        }
    }

    /// Sets every bit in `0..len`.
    pub fn set_all(&mut self) {
        let full_words = self.len / 64;
        for w in &mut self.words[..full_words] {
            *w.get_mut() = u64::MAX;
        }
        let rem = self.len % 64;
        if rem > 0 {
            *self.words[full_words].get_mut() = (1u64 << rem) - 1;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words
            .iter()
            // sync-audit: racy read by design; callers observe a consistent
            // frontier only after the iteration barrier.
            .map(|w| w.load(Ordering::Relaxed).count_ones() as usize)
            .sum()
    }

    /// Iterates indices of set bits in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, w)| {
            let mut bits = w.load(Ordering::Relaxed); // sync-audit: racy read by design; callers observe a consistent frontier only after the iteration barrier.
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let tz = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(wi * 64 + tz)
            })
        })
    }

    /// Bytes of memory occupied by the bit words.
    pub fn memory_bytes(&self) -> u64 {
        (self.words.len() * 8) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_reports_first_setter() {
        let b = AtomicBitmap::new(100);
        assert!(b.set(5));
        assert!(!b.set(5));
        assert!(b.get(5));
        assert!(!b.get(6));
    }

    #[test]
    fn unset_reports_last_clearer() {
        let b = AtomicBitmap::new(100);
        b.set(5);
        assert!(b.unset(5));
        assert!(!b.unset(5));
        assert!(!b.get(5));
        // Claim cycle: set → unset → set again reports newly set.
        assert!(b.set(5));
    }

    #[test]
    fn count_and_iter_agree() {
        let b = AtomicBitmap::new(200);
        for i in [0usize, 63, 64, 65, 127, 128, 199] {
            b.set(i);
        }
        assert_eq!(b.count_ones(), 7);
        let ones: Vec<usize> = b.iter_ones().collect();
        assert_eq!(ones, vec![0, 63, 64, 65, 127, 128, 199]);
    }

    #[test]
    fn set_all_respects_length() {
        let mut b = AtomicBitmap::new(70);
        b.set_all();
        assert_eq!(b.count_ones(), 70);
        assert!(b.get(69));
        let mut c = AtomicBitmap::new(64);
        c.set_all();
        assert_eq!(c.count_ones(), 64);
    }

    #[test]
    fn clear_resets() {
        let mut b = AtomicBitmap::new(10);
        b.set(3);
        b.clear();
        assert_eq!(b.count_ones(), 0);
    }

    #[test]
    fn concurrent_sets_count_exactly_once() {
        let b = blaze_sync::Arc::new(AtomicBitmap::new(1024));
        let mut handles = Vec::new();
        let firsts = blaze_sync::Arc::new(blaze_sync::atomic::AtomicUsize::new(0));
        for _ in 0..4 {
            let b = b.clone();
            let firsts = firsts.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..1024 {
                    if b.set(i) {
                        firsts.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Each bit reports "newly set" to exactly one thread.
        assert_eq!(firsts.load(Ordering::Relaxed), 1024); // sync-audit: racy read by design; callers observe a consistent frontier only after the iteration barrier.
        assert_eq!(b.count_ones(), 1024);
    }

    #[test]
    fn empty_bitmap() {
        let b = AtomicBitmap::new(0);
        assert!(b.is_empty());
        assert_eq!(b.count_ones(), 0);
        assert_eq!(b.iter_ones().count(), 0);
    }
}
