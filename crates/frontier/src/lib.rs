//! Frontier data structures: [`VertexSubset`] and [`PageSubset`].
//!
//! Blaze represents the set of active vertices with a dual sparse/dense
//! structure, as in Ligra: a concurrent list while the set is sparse, a
//! bitmap once it grows past a density threshold (Section IV-C). Both
//! representations share an atomic bitmap for duplicate suppression, so
//! concurrent inserts from gather threads need no locking.
//!
//! [`PageSubset`] is the IO-side frontier: the sorted set of disk pages
//! holding the edges of the active vertices, partitioned per device. It is
//! internal to the engine and never exposed to algorithm code.
//!
//! [`PriorityFrontier`] is the asynchronous counterpart of [`VertexSubset`]:
//! a bucketed priority queue that gather workers push into while the driver
//! pops the most urgent batch, replacing the superstep barrier for monotone
//! algorithms.
//!
//! [`wire`] is the frontier's network face: a self-describing dense/sparse
//! codec the scale-out layer uses to ship frontier deltas between shards.

// The unsafe-audit rule (cargo xtask lint) keys off this: crates that
// need no unsafe code forbid it outright, so the audit scope cannot
// silently grow.
#![forbid(unsafe_code)]

pub mod bitmap;
pub mod pagesubset;
pub mod priority;
pub mod subset;
pub mod wire;

pub use bitmap::AtomicBitmap;
pub use pagesubset::PageSubset;
pub use priority::{PriorityFrontier, PrioritySnapshot};
pub use subset::VertexSubset;
