//! The page frontier: disk pages holding the edges of active vertices,
//! partitioned per device (Figure 5, step 1).

use blaze_types::PageId;

/// A sorted, deduplicated set of global page ids, split into per-device
/// lists of *local* page ids under the RAID-0 mapping
/// `device = page % num_devices`, `local = page / num_devices` — the same
/// convention as `blaze_storage::StripedStorage`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageSubset {
    per_device: Vec<Vec<u64>>,
    total: usize,
}

impl PageSubset {
    /// Builds the subset from an iterator of (possibly overlapping,
    /// unordered) inclusive page ranges — one range per frontier vertex.
    pub fn from_page_ranges(
        ranges: impl IntoIterator<Item = std::ops::RangeInclusive<PageId>>,
        num_devices: usize,
    ) -> Self {
        assert!(num_devices >= 1);
        let mut pages: Vec<PageId> = Vec::new();
        for r in ranges {
            pages.extend(r);
        }
        pages.sort_unstable();
        pages.dedup();
        Self::from_sorted_pages(&pages, num_devices)
    }

    /// Builds the subset from a sorted, deduplicated global page list.
    pub fn from_sorted_pages(pages: &[PageId], num_devices: usize) -> Self {
        assert!(num_devices >= 1);
        debug_assert!(pages.windows(2).all(|w| w[0] < w[1]));
        let mut per_device = vec![Vec::new(); num_devices];
        for &p in pages {
            per_device[(p % num_devices as u64) as usize].push(p / num_devices as u64);
        }
        Self {
            per_device,
            total: pages.len(),
        }
    }

    /// Merges several subsets built over disjoint chunks of the frontier
    /// (the parallel transform of Figure 5 step 1). Page lists may overlap
    /// between chunks; the merge re-deduplicates.
    pub fn merge(parts: Vec<PageSubset>, num_devices: usize) -> Self {
        let mut pages: Vec<PageId> = Vec::new();
        for part in &parts {
            for (d, locals) in part.per_device.iter().enumerate() {
                for &l in locals {
                    pages.push(l * part.per_device.len() as u64 + d as u64);
                }
            }
        }
        pages.sort_unstable();
        pages.dedup();
        Self::from_sorted_pages(&pages, num_devices)
    }

    /// Number of devices this subset is partitioned across.
    pub fn num_devices(&self) -> usize {
        self.per_device.len()
    }

    /// Sorted local page ids for `device`.
    pub fn local_pages(&self, device: usize) -> &[u64] {
        &self.per_device[device]
    }

    /// Total pages across all devices.
    pub fn total_pages(&self) -> usize {
        self.total
    }

    /// Whether no pages are selected.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// All global page ids, ascending.
    pub fn global_pages(&self) -> Vec<PageId> {
        let n = self.per_device.len() as u64;
        let mut pages: Vec<PageId> = self
            .per_device
            .iter()
            .enumerate()
            .flat_map(|(d, locals)| locals.iter().map(move |&l| l * n + d as u64))
            .collect();
        pages.sort_unstable();
        pages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_dedup_and_partition() {
        // Vertices spanning pages [0..=2], [2..=3], [7..=7].
        let s = PageSubset::from_page_ranges(vec![0..=2, 2..=3, 7..=7], 2);
        assert_eq!(s.total_pages(), 5);
        assert_eq!(s.local_pages(0), &[0, 1]); // globals 0, 2
        assert_eq!(s.local_pages(1), &[0, 1, 3]); // globals 1, 3, 7
        assert_eq!(s.global_pages(), vec![0, 1, 2, 3, 7]);
    }

    #[test]
    fn single_device_keeps_global_ids() {
        let s = PageSubset::from_sorted_pages(&[1, 5, 9], 1);
        assert_eq!(s.local_pages(0), &[1, 5, 9]);
        assert_eq!(s.global_pages(), vec![1, 5, 9]);
    }

    #[test]
    fn empty_subset() {
        let s = PageSubset::from_page_ranges(Vec::new(), 4);
        assert!(s.is_empty());
        assert_eq!(s.total_pages(), 0);
        for d in 0..4 {
            assert!(s.local_pages(d).is_empty());
        }
    }

    #[test]
    fn local_lists_stay_sorted() {
        let s = PageSubset::from_page_ranges(vec![10..=20, 0..=5], 3);
        for d in 0..3 {
            let l = s.local_pages(d);
            assert!(l.windows(2).all(|w| w[0] < w[1]), "device {d}");
        }
    }

    #[test]
    fn merge_re_deduplicates_overlap() {
        let a = PageSubset::from_page_ranges(vec![0..=4], 2);
        let b = PageSubset::from_page_ranges(vec![3..=6], 2);
        let m = PageSubset::merge(vec![a, b], 2);
        assert_eq!(m.global_pages(), vec![0, 1, 2, 3, 4, 5, 6]);
        assert_eq!(m.total_pages(), 7);
    }

    #[test]
    fn contiguous_range_balances_across_devices() {
        let s = PageSubset::from_page_ranges(vec![0..=999], 8);
        let sizes: Vec<usize> = (0..8).map(|d| s.local_pages(d).len()).collect();
        let max = sizes.iter().max().unwrap();
        let min = sizes.iter().min().unwrap();
        assert!(max - min <= 1, "sizes {sizes:?}");
    }
}
