//! The asynchronous priority frontier.
//!
//! Sync execution re-collects a fresh [`VertexSubset`](crate::VertexSubset)
//! per superstep and only then looks at it — the barrier is the
//! synchronization. Async execution has no barrier: gather workers *push*
//! newly activated vertices the moment their value improves, and the driver
//! *pops* the most urgent batch to scatter next. This type is that meeting
//! point. Vertices are bucketed by a per-algorithm priority key (BFS/SSSP
//! distance, scaled WCC label) so draining the minimum non-empty bucket
//! approximates Dijkstra/delta-stepping order, which is what makes async
//! converge in fewer relaxations — and fewer re-read pages — than
//! Bellman-Ford-style supersteps.
//!
//! Invariants (model-checked in `tests/loom_priority.rs`):
//!
//! * **Exactly-once enqueue.** A vertex is in at most one bucket lane at a
//!   time: `push` claims a per-vertex bit (`fetch_or`) before touching any
//!   lane, and only `pop_batch` releases it. Duplicate activations between
//!   a push and the next pop collapse into one entry.
//! * **Re-activation after pop re-queues.** The claim is released *before*
//!   the batch is returned, so a gather improving a vertex that is being
//!   scattered right now still gets it back into a bucket.
//! * **No lost quiescence.** [`is_quiescent`](PriorityFrontier::is_quiescent)
//!   can only return `true` when no vertex is queued *and* no popped batch
//!   is still being processed; `pop_batch` raises the outstanding-batch
//!   counter before it removes anything from the queue, so the counter and
//!   the length can never both read zero while work is in flight.

use blaze_sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use blaze_sync::Mutex;

use blaze_types::VertexId;

use crate::bitmap::AtomicBitmap;

/// Per-bucket lane count; pushes hash across lanes by vertex id so one hot
/// bucket does not serialize every gather worker on a single lock.
const LANES: usize = 8;

/// One priority bucket: sharded member lanes plus a size hint for the
/// min-bucket scan. The hint may briefly trail the lanes (a pusher bumps it
/// after appending); `pop_batch` only trusts what it actually drains.
#[derive(Debug)]
struct Bucket {
    lanes: Vec<Mutex<Vec<VertexId>>>,
    count: AtomicUsize,
}

impl Bucket {
    fn new() -> Self {
        Self {
            lanes: (0..LANES).map(|_| Mutex::new(Vec::new())).collect(),
            count: AtomicUsize::new(0),
        }
    }
}

/// Counters describing the traffic a [`PriorityFrontier`] has seen.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrioritySnapshot {
    /// Vertices accepted by [`push`](PriorityFrontier::push).
    pub pushed: u64,
    /// Pushes collapsed into an existing queue entry.
    pub deduped: u64,
    /// Vertices handed out by [`pop_batch`](PriorityFrontier::pop_batch).
    pub popped: u64,
    /// Batches handed out.
    pub batches: u64,
}

/// A bucketed priority queue of active vertices for asynchronous execution.
///
/// All methods take `&self`; gather workers push concurrently while the
/// driver pops. Priorities are monotone urgency keys — smaller is sooner —
/// and saturate into the last bucket.
#[derive(Debug)]
pub struct PriorityFrontier {
    /// One claim bit per vertex: set while the vertex sits in some lane.
    queued: AtomicBitmap,
    buckets: Vec<Bucket>,
    /// Total queued vertices. Release on push / Acquire on read, so an
    /// observed count implies the matching lane entries are visible.
    len: AtomicUsize,
    /// Batches popped but not yet [`complete_batch`](Self::complete_batch)d.
    outstanding: AtomicUsize,
    pushed: AtomicU64,
    deduped: AtomicU64,
    popped: AtomicU64,
    batches: AtomicU64,
}

impl PriorityFrontier {
    /// An empty frontier over vertices `0..capacity` with `num_buckets`
    /// priority levels (priorities at or past the last bucket saturate).
    pub fn new(capacity: usize, num_buckets: usize) -> Self {
        assert!(num_buckets > 0, "need at least one priority bucket");
        Self {
            queued: AtomicBitmap::new(capacity),
            buckets: (0..num_buckets).map(|_| Bucket::new()).collect(),
            len: AtomicUsize::new(0),
            outstanding: AtomicUsize::new(0),
            pushed: AtomicU64::new(0),
            deduped: AtomicU64::new(0),
            popped: AtomicU64::new(0),
            batches: AtomicU64::new(0),
        }
    }

    /// Capacity (total vertices in the graph).
    pub fn capacity(&self) -> usize {
        self.queued.len()
    }

    /// Number of priority buckets.
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// The bucket a priority key lands in.
    #[inline]
    fn bucket_of(&self, priority: u64) -> usize {
        (priority as usize).min(self.buckets.len() - 1)
    }

    /// Enqueues `v` at `priority`; returns `true` iff it was not already
    /// queued. Safe to call concurrently from many gather workers.
    ///
    /// A duplicate push does *not* re-prioritize: the vertex stays in the
    /// bucket of its first push. That is sound for monotone algorithms —
    /// processing a vertex late never produces a wrong value, only possibly
    /// an extra relaxation — and keeps pushes lock-free in the common
    /// already-queued case.
    pub fn push(&self, v: VertexId, priority: u64) -> bool {
        if !self.queued.set(v as usize) {
            self.deduped.fetch_add(1, Ordering::Relaxed); // sync-audit: stat counter; atomicity suffices, exact order unobservable.
            return false;
        }
        let b = self.bucket_of(priority);
        self.buckets[b].lanes[v as usize % LANES].lock().push(v);
        // sync-audit: Release pairs with the Acquire in len/is_quiescent so
        // an observed count implies the lane entry above is visible.
        self.buckets[b].count.fetch_add(1, Ordering::Release);
        self.len.fetch_add(1, Ordering::Release); // sync-audit: Release pairs with the Acquire in len/is_quiescent; see above.
        self.pushed.fetch_add(1, Ordering::Relaxed); // sync-audit: stat counter; atomicity suffices, exact order unobservable.
        true
    }

    /// Drains up to `max` vertices from the minimum non-empty bucket.
    /// Returns the bucket index and the batch, or `None` if every bucket is
    /// empty. A successful pop counts as an outstanding batch until
    /// [`complete_batch`](Self::complete_batch) is called.
    ///
    /// The popped vertices' claims are released before returning, so a
    /// concurrent `push` of the same vertex re-queues it — required for
    /// correctness when a gather improves a vertex that is mid-scatter.
    pub fn pop_batch(&self, max: usize) -> Option<(u64, Vec<VertexId>)> {
        assert!(max > 0, "zero-sized batches cannot make progress");
        // Raise the in-flight marker BEFORE removing anything, so len and
        // outstanding never both read zero while this batch exists.
        self.outstanding.fetch_add(1, Ordering::Release); // sync-audit: Release pairs with the Acquire in is_quiescent; raised before len drops.
        for (b, bucket) in self.buckets.iter().enumerate() {
            // sync-audit: Acquire pairs with the Release bump in push; a zero
            // hint may trail an in-flight push, which the next pop catches.
            if bucket.count.load(Ordering::Acquire) == 0 {
                continue;
            }
            let mut batch: Vec<VertexId> = Vec::new();
            for lane in &bucket.lanes {
                let mut lane = lane.lock();
                let spare = max.saturating_sub(batch.len());
                if spare >= lane.len() {
                    batch.append(&mut lane);
                } else {
                    // Leave the overflow queued; it keeps its claim bit.
                    let keep = lane.len() - spare;
                    batch.extend(lane.drain(keep..));
                }
            }
            if batch.is_empty() {
                // The hint trailed a push that has not landed in a lane yet;
                // treat the bucket as empty this round.
                continue;
            }
            for &v in &batch {
                let was_queued = self.queued.unset(v as usize);
                debug_assert!(was_queued, "popped vertex {v} held no claim");
            }
            // sync-audit: Release pairs with the Acquire in len/is_quiescent;
            // outstanding is already raised, so quiescence cannot misfire.
            self.buckets[b]
                .count
                .fetch_sub(batch.len(), Ordering::Release);
            self.len.fetch_sub(batch.len(), Ordering::Release); // sync-audit: Release pairs with the Acquire in len/is_quiescent; see above.
            self.popped.fetch_add(batch.len() as u64, Ordering::Relaxed); // sync-audit: stat counter; atomicity suffices, exact order unobservable.
            self.batches.fetch_add(1, Ordering::Relaxed); // sync-audit: stat counter; atomicity suffices, exact order unobservable.
            return Some((b as u64, batch));
        }
        self.outstanding.fetch_sub(1, Ordering::Release); // sync-audit: Release pairs with the Acquire in is_quiescent; empty pop leaves no batch in flight.
        None
    }

    /// Marks one popped batch as fully processed (every activation it could
    /// cause has been pushed).
    pub fn complete_batch(&self) {
        // sync-audit: Release pairs with the Acquire in is_quiescent so the
        // pushes this batch performed are visible before it stops counting.
        let prev = self.outstanding.fetch_sub(1, Ordering::Release);
        debug_assert!(prev > 0, "complete_batch without a popped batch");
    }

    /// Number of currently queued vertices. Live (Acquire) — callers that
    /// need a convergence decision must use
    /// [`is_quiescent`](Self::is_quiescent) instead.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire) // sync-audit: pairs with the Release add/sub in push/pop_batch.
    }

    /// Whether no vertices are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Convergence test: no queued vertex and no batch still in flight.
    ///
    /// Authoritative once every popped batch has been completed and the
    /// pushing workers have quiesced (in the engine: `submit` returned and
    /// [`complete_batch`](Self::complete_batch) ran). While batches are in
    /// flight it can only err towards `false`: `pop_batch` raises
    /// `outstanding` before shrinking `len`.
    pub fn is_quiescent(&self) -> bool {
        // sync-audit: Acquire pairs with the Release counter updates in
        // push/pop_batch/complete_batch; outstanding is read first so a
        // batch mid-pop is seen by one counter or the other.
        self.outstanding.load(Ordering::Acquire) == 0 && self.len.load(Ordering::Acquire) == 0
    }

    /// Traffic counters since construction.
    pub fn snapshot(&self) -> PrioritySnapshot {
        PrioritySnapshot {
            pushed: self.pushed.load(Ordering::Relaxed), // sync-audit: stat counter; atomicity suffices, exact order unobservable.
            deduped: self.deduped.load(Ordering::Relaxed), // sync-audit: stat counter; atomicity suffices, exact order unobservable.
            popped: self.popped.load(Ordering::Relaxed), // sync-audit: stat counter; atomicity suffices, exact order unobservable.
            batches: self.batches.load(Ordering::Relaxed), // sync-audit: stat counter; atomicity suffices, exact order unobservable.
        }
    }

    /// Memory footprint: the claim bitmap plus queued lane entries.
    pub fn memory_bytes(&self) -> u64 {
        self.queued.memory_bytes() + (self.len() * std::mem::size_of::<VertexId>()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_roundtrip_in_priority_order() {
        let pf = PriorityFrontier::new(100, 4);
        assert!(pf.push(10, 2));
        assert!(pf.push(20, 0));
        assert!(pf.push(30, 2));
        assert_eq!(pf.len(), 3);
        let (b, batch) = pf.pop_batch(64).unwrap();
        assert_eq!(b, 0);
        assert_eq!(batch, vec![20]);
        pf.complete_batch();
        let (b, mut batch) = pf.pop_batch(64).unwrap();
        batch.sort_unstable();
        assert_eq!(b, 2);
        assert_eq!(batch, vec![10, 30]);
        pf.complete_batch();
        assert!(pf.pop_batch(64).is_none());
        assert!(pf.is_quiescent());
    }

    #[test]
    fn duplicate_pushes_collapse_until_popped() {
        let pf = PriorityFrontier::new(10, 4);
        assert!(pf.push(5, 1));
        assert!(!pf.push(5, 0), "second push dedups");
        assert_eq!(pf.len(), 1);
        let (_, batch) = pf.pop_batch(8).unwrap();
        assert_eq!(batch, vec![5]);
        // Claim released by the pop: the vertex can be re-queued while the
        // batch is still outstanding.
        assert!(pf.push(5, 3));
        assert!(!pf.is_quiescent(), "batch still in flight");
        pf.complete_batch();
        assert!(!pf.is_quiescent(), "re-queued vertex still pending");
        let (b, _) = pf.pop_batch(8).unwrap();
        assert_eq!(b, 3);
        pf.complete_batch();
        assert!(pf.is_quiescent());
        assert_eq!(
            pf.snapshot(),
            PrioritySnapshot {
                pushed: 2,
                deduped: 1,
                popped: 2,
                batches: 2,
            }
        );
    }

    #[test]
    fn priorities_saturate_into_the_last_bucket() {
        let pf = PriorityFrontier::new(10, 3);
        pf.push(1, 999);
        pf.push(2, 2);
        let (b, mut batch) = pf.pop_batch(8).unwrap();
        batch.sort_unstable();
        assert_eq!(b, 2);
        assert_eq!(batch, vec![1, 2]);
        pf.complete_batch();
    }

    #[test]
    fn batch_cap_leaves_overflow_queued() {
        let pf = PriorityFrontier::new(100, 2);
        for v in 0..10 {
            pf.push(v, 0);
        }
        let (_, first) = pf.pop_batch(4).unwrap();
        assert_eq!(first.len(), 4);
        assert_eq!(pf.len(), 6);
        pf.complete_batch();
        let mut seen: Vec<VertexId> = first;
        while let Some((_, batch)) = pf.pop_batch(4) {
            seen.extend(batch);
            pf.complete_batch();
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
        assert!(pf.is_quiescent());
    }

    #[test]
    fn concurrent_pushes_are_exactly_once() {
        let pf = blaze_sync::Arc::new(PriorityFrontier::new(1000, 8));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let pf = pf.clone();
            handles.push(std::thread::spawn(move || {
                let mut fresh = 0;
                for v in 0..1000u32 {
                    if pf.push(v, (v as u64 + t) % 8) {
                        fresh += 1;
                    }
                }
                fresh
            }));
        }
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 1000);
        assert_eq!(pf.len(), 1000);
        let mut seen = Vec::new();
        while let Some((_, batch)) = pf.pop_batch(256) {
            seen.extend(batch);
            pf.complete_batch();
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..1000).collect::<Vec<_>>());
    }
}
