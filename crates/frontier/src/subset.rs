//! The vertex frontier: Ligra-style dual sparse/dense representation.

use blaze_sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use blaze_sync::Mutex;

use blaze_types::VertexId;

use crate::bitmap::AtomicBitmap;

/// Number of sparse-list shards; inserts hash across them to avoid a single
/// contended lock.
const SHARDS: usize = 16;

/// A frontier switches from the sparse list to the dense bitmap when it
/// exceeds `capacity / DENSE_DIVISOR` members.
const DENSE_DIVISOR: usize = 20;

/// A set of active vertices.
///
/// Membership is tracked in an [`AtomicBitmap`], so concurrent
/// [`insert`](Self::insert) calls are lock-free and exactly-once. While the
/// set is sparse, members are additionally appended to sharded lists so
/// iteration does not scan the whole bitmap; once the set passes the density
/// threshold the lists are abandoned and the bitmap serves iteration.
#[derive(Debug)]
pub struct VertexSubset {
    bitmap: AtomicBitmap,
    shards: Vec<Mutex<Vec<VertexId>>>,
    count: AtomicUsize,
    dense: AtomicBool,
    /// Sorted member list, built by [`seal`](Self::seal) for sparse sets.
    sealed: Option<Vec<VertexId>>,
    /// Set only by [`full`](Self::full): every vertex is a member, so
    /// membership probes can be skipped wholesale.
    complete: bool,
    /// Whether construction has finished ([`seal`](Self::seal) ran, or the
    /// set was born finalized via [`full`](Self::full)). Only finalized sets
    /// may answer [`len`](Self::len)/[`is_empty`](Self::is_empty) — the
    /// loop-termination reads of every algorithm must not race inserts.
    finalized: bool,
}

impl VertexSubset {
    /// An empty frontier over vertices `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        Self {
            bitmap: AtomicBitmap::new(capacity),
            shards: (0..SHARDS).map(|_| Mutex::new(Vec::new())).collect(),
            count: AtomicUsize::new(0),
            dense: AtomicBool::new(false),
            sealed: None,
            complete: false,
            finalized: false,
        }
    }

    /// A frontier containing exactly `v`.
    pub fn single(capacity: usize, v: VertexId) -> Self {
        let mut s = Self::new(capacity);
        s.insert(v);
        s.seal();
        s
    }

    /// A dense frontier containing every vertex (PageRank/WCC start state).
    pub fn full(capacity: usize) -> Self {
        let mut s = Self::new(capacity);
        s.bitmap.set_all();
        s.count.store(capacity, Ordering::Relaxed); // sync-audit: constructor/exclusive path; no concurrent readers yet.
        s.dense.store(true, Ordering::Relaxed); // sync-audit: monotonic one-way flag; late observers just buffer a little longer.
        s.complete = true;
        s.finalized = true;
        s
    }

    /// Builds a sealed frontier from a list of members (duplicates ignored).
    pub fn from_members(capacity: usize, members: impl IntoIterator<Item = VertexId>) -> Self {
        let s = Self::new(capacity);
        for v in members {
            s.insert(v);
        }
        let mut s = s;
        s.seal();
        s
    }

    /// Capacity (total vertices in the graph).
    pub fn capacity(&self) -> usize {
        self.bitmap.len()
    }

    /// Inserts `v`; returns `true` iff it was not already a member.
    /// Safe to call concurrently from many threads.
    pub fn insert(&self, v: VertexId) -> bool {
        if !self.bitmap.set(v as usize) {
            return false;
        }
        // sync-audit: Release pairs with the Acquire in live_len/len so a
        // reader that observes the count also observes the bitmap bit and
        // (transitively) the vertex-array writes that preceded the insert.
        let count = self.count.fetch_add(1, Ordering::Release) + 1;
        if !self.dense.load(Ordering::Relaxed) {
            // sync-audit: stale read only delays the dense switch or is post-seal.
            self.shards[v as usize % SHARDS].lock().push(v);
            if count * DENSE_DIVISOR > self.capacity() {
                self.dense.store(true, Ordering::Relaxed); // sync-audit: monotonic one-way flag; late observers just buffer a little longer.
            }
        }
        true
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        self.bitmap.get(v as usize)
    }

    /// Number of members. Authoritative: only valid once the set is
    /// finalized ([`seal`](Self::seal) ran, or [`full`](Self::full) built
    /// it), which debug builds enforce. Mid-construction readers — the
    /// async engine path, diagnostics — must use
    /// [`live_len`](Self::live_len) instead.
    pub fn len(&self) -> usize {
        debug_assert!(
            self.finalized,
            "VertexSubset::len before seal(): the termination read would race inserts"
        );
        self.live_len()
    }

    /// Instantaneous member count, readable while inserts are still in
    /// flight. Monotone (never overcounts a finished set): the Acquire load
    /// pairs with the Release increment in [`insert`](Self::insert), so any
    /// count observed comes with the matching bitmap bits visible.
    pub fn live_len(&self) -> usize {
        self.count.load(Ordering::Acquire) // sync-audit: pairs with the Release fetch_add in insert; see that comment.
    }

    /// Whether the frontier is empty — the loop-termination test of every
    /// algorithm. Like [`len`](Self::len), requires a finalized set.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether this frontier is known to contain *every* vertex.
    ///
    /// Only [`full`](Self::full) sets this; a frontier that happens to grow
    /// to capacity through inserts is deliberately not detected (the flag is
    /// a constructor-time fact, not a racy counter comparison). The scatter
    /// loop uses it to skip the per-source bitmap probe on dense
    /// PageRank/WCC-style iterations.
    #[inline]
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// Whether the dense representation is active.
    pub fn is_dense(&self) -> bool {
        self.dense.load(Ordering::Relaxed) // sync-audit: stale read only delays the dense switch or is post-seal.
    }

    /// Finalizes the frontier after concurrent construction: sparse sets get
    /// their member list drained, sorted, and stored for fast iteration, and
    /// [`len`](Self::len)/[`is_empty`](Self::is_empty) become answerable.
    /// `&mut self` is the happens-before barrier: every inserting thread
    /// joined before the caller could hold an exclusive reference.
    pub fn seal(&mut self) {
        self.finalized = true;
        // sync-audit: stale read only delays the dense switch or is post-seal.
        if self.dense.load(Ordering::Relaxed) {
            self.sealed = None;
            for shard in &self.shards {
                shard.lock().clear();
            }
            return;
        }
        let mut members = Vec::with_capacity(self.len());
        for shard in &self.shards {
            members.append(&mut shard.lock());
        }
        // The dense flag may have flipped mid-insert; the bitmap is always
        // authoritative, so only keep the list if it is complete.
        if members.len() == self.len() {
            members.sort_unstable();
            self.sealed = Some(members);
        } else {
            self.sealed = None;
        }
    }

    /// Sorted member list. Cheap for sealed sparse sets; scans the bitmap
    /// otherwise.
    pub fn members(&self) -> Vec<VertexId> {
        if let Some(sealed) = &self.sealed {
            return sealed.clone();
        }
        self.bitmap.iter_ones().map(|i| i as VertexId).collect()
    }

    /// Calls `f` for every member in ascending order.
    pub fn for_each(&self, mut f: impl FnMut(VertexId)) {
        if let Some(sealed) = &self.sealed {
            for &v in sealed {
                f(v);
            }
        } else {
            for i in self.bitmap.iter_ones() {
                f(i as VertexId);
            }
        }
    }

    /// Calls `f` for every member inside `range`, in ascending order — the
    /// scale-out exchange uses this to slice one shard's share out of a
    /// shared frontier without materializing the full member list per
    /// shard. Sealed sparse sets binary-search their sorted list; dense or
    /// unsealed sets probe only the bits of `range`, so a full sweep over
    /// disjoint shard ranges stays `O(capacity)` total.
    pub fn for_each_in_range(&self, range: std::ops::Range<VertexId>, mut f: impl FnMut(VertexId)) {
        if let Some(sealed) = &self.sealed {
            let lo = sealed.partition_point(|&v| v < range.start);
            for &v in &sealed[lo..] {
                if v >= range.end {
                    break;
                }
                f(v);
            }
            return;
        }
        let end = (range.end as usize).min(self.capacity());
        for i in (range.start as usize)..end {
            if self.bitmap.get(i) {
                f(i as VertexId);
            }
        }
    }

    /// Memory footprint of the frontier (Figure 12 accounting): the bitmap
    /// plus any sparse member list.
    pub fn memory_bytes(&self) -> u64 {
        let list = self.sealed.as_ref().map_or(0, |s| s.len() * 4) as u64;
        self.bitmap.memory_bytes() + list
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_membership() {
        let mut s = VertexSubset::new(100);
        assert!(s.insert(7));
        assert!(!s.insert(7));
        assert!(s.contains(7));
        assert!(!s.contains(8));
        assert_eq!(s.live_len(), 1);
        s.seal();
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn single_and_full_constructors() {
        let s = VertexSubset::single(50, 10);
        assert_eq!(s.len(), 1);
        assert_eq!(s.members(), vec![10]);
        let f = VertexSubset::full(50);
        assert_eq!(f.len(), 50);
        assert!(f.is_dense());
        assert!(f.is_complete());
        assert_eq!(f.members().len(), 50);
    }

    #[test]
    fn complete_is_a_constructor_fact() {
        // Growing to capacity through inserts does not set the flag…
        let mut s = VertexSubset::new(4);
        for v in 0..4 {
            s.insert(v);
        }
        s.seal();
        assert_eq!(s.len(), 4);
        assert!(!s.is_complete());
        // …and neither do the other constructors.
        assert!(!VertexSubset::single(4, 0).is_complete());
        assert!(!VertexSubset::from_members(4, 0..4).is_complete());
    }

    #[test]
    fn sealed_sparse_iterates_sorted() {
        let mut s = VertexSubset::new(1000);
        for v in [500u32, 3, 77, 12] {
            s.insert(v);
        }
        s.seal();
        assert_eq!(s.members(), vec![3, 12, 77, 500]);
        let mut seen = Vec::new();
        s.for_each(|v| seen.push(v));
        assert_eq!(seen, vec![3, 12, 77, 500]);
    }

    #[test]
    fn grows_dense_past_threshold() {
        let mut s = VertexSubset::new(100);
        for v in 0..20 {
            s.insert(v);
        }
        assert!(s.is_dense(), "20/100 > 1/20 must flip dense");
        s.seal();
        assert_eq!(s.members(), (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn dense_iteration_uses_bitmap() {
        let mut s = VertexSubset::full(64);
        s.seal();
        assert_eq!(s.members().len(), 64);
    }

    #[test]
    fn concurrent_inserts_are_exactly_once() {
        let s = blaze_sync::Arc::new(VertexSubset::new(10_000));
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let s = s.clone();
            handles.push(std::thread::spawn(move || {
                let mut fresh = 0;
                for i in 0..10_000u32 {
                    // Overlapping ranges across threads.
                    if s.insert((i + t * 2500) % 10_000) {
                        fresh += 1;
                    }
                }
                fresh
            }));
        }
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 10_000);
        assert_eq!(s.live_len(), 10_000);
        let mut s = blaze_sync::Arc::try_unwrap(s).expect("all inserters joined");
        s.seal();
        assert_eq!(s.len(), 10_000);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "before seal")]
    fn len_before_seal_is_rejected() {
        let s = VertexSubset::new(8);
        s.insert(1);
        let _ = s.len();
    }

    #[test]
    fn unsealed_members_falls_back_to_bitmap() {
        let s = VertexSubset::new(100);
        s.insert(42);
        s.insert(1);
        // No seal() call: members still correct via bitmap scan.
        assert_eq!(s.members(), vec![1, 42]);
    }

    #[test]
    fn for_each_in_range_slices_sorted() {
        // Sealed sparse path.
        let mut s = VertexSubset::new(1000);
        for v in [500u32, 3, 77, 12, 999] {
            s.insert(v);
        }
        s.seal();
        let slice = |s: &VertexSubset, r: std::ops::Range<u32>| {
            let mut out = Vec::new();
            s.for_each_in_range(r, |v| out.push(v));
            out
        };
        assert_eq!(slice(&s, 0..1000), vec![3, 12, 77, 500, 999]);
        assert_eq!(slice(&s, 12..500), vec![12, 77]);
        assert_eq!(slice(&s, 501..999), Vec::<u32>::new());
        // Dense path.
        let f = VertexSubset::full(64);
        assert_eq!(slice(&f, 10..13), vec![10, 11, 12]);
        // Unsealed path falls back to bitmap probes.
        let u = VertexSubset::new(100);
        u.insert(42);
        let mut out = Vec::new();
        u.for_each_in_range(40..50, |v| out.push(v));
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn from_members_dedups() {
        let s = VertexSubset::from_members(10, [1, 2, 2, 3, 1]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.members(), vec![1, 2, 3]);
    }
}
