//! Wire codec for shipping frontier deltas between scale-out shards.
//!
//! A shard broadcasts the slice of the frontier it owns (the members inside
//! its destination range) to its peers at the start of every superstep. The
//! codec mirrors the frontier's own dual representation: a **sparse** form
//! (delta-encoded LEB128 varints — consecutive activations on power-law
//! graphs cluster, so deltas are mostly one byte) and a **dense** form (a
//! bitmap over the encoded range), whichever is smaller for the payload at
//! hand. Messages are self-describing: the header carries the range, so the
//! decoder needs no out-of-band partition table.
//!
//! Layout: `[tag u8][start u32 le][span u32 le][count u32 le][payload]`
//! where tag 0 = sparse (count varints: first is `id - start`, the rest are
//! gaps between consecutive ids, which are strictly increasing) and tag 1 =
//! dense (`(span + 7) / 8` bitmap bytes, bit `i` = membership of
//! `start + i`).

use blaze_types::{BlazeError, Result, VertexId};

use crate::subset::VertexSubset;

/// Sparse message: delta-encoded varint ids.
pub const TAG_SPARSE: u8 = 0;
/// Dense message: a bitmap over the encoded range.
pub const TAG_DENSE: u8 = 1;

/// Fixed header size: tag + start + span + count.
pub const HEADER_BYTES: usize = 13;

fn push_varint(buf: &mut Vec<u8>, mut v: u32) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

fn read_varint(bytes: &[u8], pos: &mut usize) -> Result<u32> {
    let mut out: u32 = 0;
    let mut shift = 0u32;
    loop {
        let &byte = bytes
            .get(*pos)
            .ok_or_else(|| BlazeError::Format("wire: truncated varint".into()))?;
        *pos += 1;
        if shift == 28 && byte & 0xf0 != 0 {
            return Err(BlazeError::Format("wire: varint overflows u32".into()));
        }
        out |= u32::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(out);
        }
        shift += 7;
        if shift > 28 {
            return Err(BlazeError::Format("wire: varint overflows u32".into()));
        }
    }
}

fn write_header(buf: &mut [u8], tag: u8, start: u32, span: u32, count: u32) {
    buf[0] = tag;
    buf[1..5].copy_from_slice(&start.to_le_bytes());
    buf[5..9].copy_from_slice(&span.to_le_bytes());
    buf[9..13].copy_from_slice(&count.to_le_bytes());
}

/// Encodes the members of `subset` that fall inside `range`, picking the
/// cheaper of the sparse and dense forms. The empty slice encodes to a
/// header-only sparse message.
pub fn encode_range(subset: &VertexSubset, range: std::ops::Range<VertexId>) -> Vec<u8> {
    let start = range.start;
    let span = range.end.saturating_sub(range.start);
    let mut members: Vec<VertexId> = Vec::new();
    subset.for_each_in_range(range, |v| members.push(v));

    // Sparse attempt: first delta from the range start, then the strictly
    // positive gaps between consecutive (sorted) members.
    let mut buf = vec![0u8; HEADER_BYTES];
    let mut prev = start;
    for &v in &members {
        push_varint(&mut buf, v - prev);
        prev = v;
    }
    let dense_payload = (span as usize).div_ceil(8);
    if buf.len() - HEADER_BYTES <= dense_payload {
        write_header(&mut buf, TAG_SPARSE, start, span, members.len() as u32);
        return buf;
    }
    // Dense wins: bitmap over the range.
    buf.truncate(HEADER_BYTES);
    buf.resize(HEADER_BYTES + dense_payload, 0);
    for &v in &members {
        let bit = (v - start) as usize;
        buf[HEADER_BYTES + bit / 8] |= 1 << (bit % 8);
    }
    write_header(&mut buf, TAG_DENSE, start, span, members.len() as u32);
    buf
}

/// Decodes a message produced by [`encode_range`], inserting every carried
/// id into `out`. Returns the number of ids decoded. Malformed input —
/// truncation, ids escaping the declared range, a range escaping `out`'s
/// capacity — is a [`BlazeError::Format`], never a panic or a silent
/// corruption.
pub fn decode_into(bytes: &[u8], out: &VertexSubset) -> Result<u64> {
    if bytes.len() < HEADER_BYTES {
        return Err(BlazeError::Format(format!(
            "wire: message of {} bytes is shorter than the {HEADER_BYTES}-byte header",
            bytes.len()
        )));
    }
    let tag = bytes[0];
    let start = u32::from_le_bytes([bytes[1], bytes[2], bytes[3], bytes[4]]);
    let span = u32::from_le_bytes([bytes[5], bytes[6], bytes[7], bytes[8]]);
    let count = u32::from_le_bytes([bytes[9], bytes[10], bytes[11], bytes[12]]);
    let end = start
        .checked_add(span)
        .ok_or_else(|| BlazeError::Format("wire: range end overflows u32".into()))?;
    if end as usize > out.capacity() {
        return Err(BlazeError::Format(format!(
            "wire: range {start}..{end} escapes the frontier capacity {}",
            out.capacity()
        )));
    }
    match tag {
        TAG_SPARSE => {
            let mut pos = HEADER_BYTES;
            let mut prev = start;
            for i in 0..count {
                let delta = read_varint(bytes, &mut pos)?;
                let v = prev
                    .checked_add(delta)
                    .ok_or_else(|| BlazeError::Format("wire: id overflows u32".into()))?;
                if v >= end || (i > 0 && delta == 0) {
                    return Err(BlazeError::Format(format!(
                        "wire: sparse id {v} outside range {start}..{end} or not increasing"
                    )));
                }
                out.insert(v);
                prev = v;
            }
            Ok(u64::from(count))
        }
        TAG_DENSE => {
            let payload = &bytes[HEADER_BYTES..];
            if payload.len() != (span as usize).div_ceil(8) {
                return Err(BlazeError::Format(format!(
                    "wire: dense payload {} bytes for span {span}",
                    payload.len()
                )));
            }
            let mut decoded = 0u64;
            for (i, &byte) in payload.iter().enumerate() {
                let mut b = byte;
                while b != 0 {
                    let bit = b.trailing_zeros() as usize;
                    b &= b - 1;
                    let v = start + (i * 8 + bit) as u32;
                    if v >= end {
                        return Err(BlazeError::Format(format!(
                            "wire: dense bit for {v} outside range {start}..{end}"
                        )));
                    }
                    out.insert(v);
                    decoded += 1;
                }
            }
            if decoded != u64::from(count) {
                return Err(BlazeError::Format(format!(
                    "wire: dense header claims {count} members, payload has {decoded}"
                )));
            }
            Ok(decoded)
        }
        other => Err(BlazeError::Format(format!("wire: unknown tag {other}"))),
    }
}

/// The range a message covers, without decoding its payload.
pub fn decoded_range(bytes: &[u8]) -> Result<std::ops::Range<VertexId>> {
    if bytes.len() < HEADER_BYTES {
        return Err(BlazeError::Format("wire: truncated header".into()));
    }
    let start = u32::from_le_bytes([bytes[1], bytes[2], bytes[3], bytes[4]]);
    let span = u32::from_le_bytes([bytes[5], bytes[6], bytes[7], bytes[8]]);
    Ok(start..start.saturating_add(span))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(capacity: usize, members: &[VertexId], range: std::ops::Range<VertexId>) {
        let src = VertexSubset::from_members(capacity, members.iter().copied());
        let bytes = encode_range(&src, range.clone());
        assert_eq!(decoded_range(&bytes).unwrap(), range);
        let mut out = VertexSubset::new(capacity);
        let n = decode_into(&bytes, &out).unwrap();
        out.seal();
        let expect: Vec<VertexId> = members
            .iter()
            .copied()
            .filter(|v| range.contains(v))
            .collect();
        assert_eq!(n as usize, expect.len());
        assert_eq!(out.members(), expect, "range {range:?}");
    }

    #[test]
    fn sparse_roundtrip_filters_to_the_range() {
        roundtrip(1000, &[3, 12, 77, 500, 999], 0..1000);
        roundtrip(1000, &[3, 12, 77, 500, 999], 50..600);
        roundtrip(1000, &[3, 12, 77, 500, 999], 600..1000);
        roundtrip(1000, &[], 0..1000);
        roundtrip(1000, &[0], 0..1);
    }

    #[test]
    fn dense_slices_pick_the_bitmap_form() {
        let members: Vec<VertexId> = (0..512).collect();
        let src = VertexSubset::from_members(1024, members.iter().copied());
        let bytes = encode_range(&src, 0..1024);
        assert_eq!(bytes[0], TAG_DENSE, "512/1024 members must go dense");
        // Bitmap over 1024 bits = 128 bytes; sparse would be 512 varints.
        assert_eq!(bytes.len(), HEADER_BYTES + 128);
        let mut out = VertexSubset::new(1024);
        assert_eq!(decode_into(&bytes, &out).unwrap(), 512);
        out.seal();
        assert_eq!(out.members(), members);
    }

    #[test]
    fn sparse_slices_stay_sparse_and_small() {
        let src = VertexSubset::from_members(1 << 20, [7u32, 8, 9, 1000]);
        let bytes = encode_range(&src, 0..(1 << 20));
        assert_eq!(bytes[0], TAG_SPARSE);
        // One small varint per member plus the gap to 1000 (2 bytes).
        assert!(bytes.len() <= HEADER_BYTES + 5 + 2, "{} bytes", bytes.len());
    }

    #[test]
    fn decode_accumulates_across_messages() {
        // Peers' slices land in one replica.
        let a = VertexSubset::from_members(100, [1u32, 2]);
        let b = VertexSubset::from_members(100, [50u32, 99]);
        let out = VertexSubset::new(100);
        decode_into(&encode_range(&a, 0..10), &out).unwrap();
        decode_into(&encode_range(&b, 10..100), &out).unwrap();
        let mut out = out;
        out.seal();
        assert_eq!(out.members(), vec![1, 2, 50, 99]);
    }

    #[test]
    fn malformed_messages_are_format_errors() {
        let out = VertexSubset::new(100);
        // Truncated header.
        assert!(decode_into(&[0u8; 5], &out).is_err());
        // Unknown tag.
        let mut msg = vec![0u8; HEADER_BYTES];
        msg[0] = 9;
        assert!(decode_into(&msg, &out).is_err());
        // Sparse header promising more varints than present.
        let mut msg = vec![0u8; HEADER_BYTES];
        write_header(&mut msg, TAG_SPARSE, 0, 100, 3);
        msg.push(1); // only one of the three ids
        assert!(decode_into(&msg, &out).is_err());
        // Range escaping the output capacity.
        let src = VertexSubset::from_members(1000, [900u32]);
        let bytes = encode_range(&src, 800..1000);
        assert!(decode_into(&bytes, &out).is_err());
        // Dense payload length mismatch.
        let mut msg = vec![0u8; HEADER_BYTES + 3];
        write_header(&mut msg, TAG_DENSE, 0, 64, 0);
        assert!(decode_into(&msg, &out).is_err());
    }

    #[test]
    fn pseudo_random_roundtrips() {
        // Deterministic xorshift sweep over densities and ranges.
        let mut x = 0x9e3779b97f4a7c15u64;
        let mut rand = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for trial in 0..50 {
            let n = 64 + (rand() % 2000) as usize;
            let density = 1 + rand() % 10;
            let mut members: Vec<VertexId> =
                (0..n as u32).filter(|_| rand() % 10 < density).collect();
            members.dedup();
            let lo = (rand() % n as u64) as u32;
            let hi = lo + (rand() % (n as u64 - u64::from(lo)).max(1)) as u32 + 1;
            roundtrip(n, &members, lo..hi.min(n as u32));
            let _ = trial;
        }
    }
}
