//! Model-checked tests of the frontier bitmap's lock-free set/test paths.
//! The real code uses `Relaxed` `fetch_or`/`load`; the model executes
//! atomics sequentially-consistently, so what these tests prove is the
//! *atomicity* of the read-modify-write (no lost bits, exactly-once claim
//! semantics) under every interleaving — the ordering side is covered by
//! the `// sync-audit:` annotations and the xtask lint.
//!
//! Run with:
//! `RUSTFLAGS="--cfg loom" cargo test -p blaze-frontier --test loom_bitmap --release`
#![cfg(loom)]

use blaze_frontier::AtomicBitmap;
use blaze_sync::model::{check_with, Config};
use blaze_sync::{thread, Arc};

fn cfg(preemption_bound: usize) -> Config {
    Config {
        preemption_bound,
        ..Config::default()
    }
}

/// Two threads set different bits of the SAME word: the `fetch_or` must not
/// lose either bit (a load/store implementation would, and the checker
/// would find the schedule).
#[test]
fn concurrent_sets_in_one_word_never_lose_bits() {
    let report = check_with(cfg(2), || {
        let bm = Arc::new(AtomicBitmap::new(64));
        let handles: Vec<_> = [3usize, 17]
            .into_iter()
            .map(|bit| {
                let bm = bm.clone();
                thread::spawn(move || bm.set(bit))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(bm.get(3) && bm.get(17), "a concurrent set was lost");
        assert_eq!(bm.count_ones(), 2);
        assert_eq!(bm.iter_ones().collect::<Vec<_>>(), vec![3, 17]);
    });
    assert!(report.executions > 1, "explored only one schedule");
}

/// Two threads race to claim the SAME bit: exactly one must win (`set`
/// returning `true`), in every schedule — the exactly-once frontier
/// insertion the engine relies on to avoid duplicate vertex activations.
#[test]
fn racing_claims_of_one_bit_have_exactly_one_winner() {
    let report = check_with(cfg(2), || {
        let bm = Arc::new(AtomicBitmap::new(8));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let bm = bm.clone();
                thread::spawn(move || bm.set(5))
            })
            .collect();
        let wins = handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .filter(|won| *won)
            .count();
        assert_eq!(wins, 1, "bit claimed zero or two times");
        assert!(bm.get(5));
    });
    assert!(report.executions > 1, "explored only one schedule");
}

/// A set bit is visible to a reader that joined the setter (the hand-off
/// the engine performs between scatter rounds).
#[test]
fn set_is_visible_after_join() {
    check_with(cfg(2), || {
        let bm = Arc::new(AtomicBitmap::new(8));
        let setter = {
            let bm = bm.clone();
            thread::spawn(move || {
                assert!(bm.set(2), "fresh bit must be newly set");
            })
        };
        setter.join().unwrap();
        assert!(bm.get(2));
        assert_eq!(bm.count_ones(), 1);
    });
}

/// Concurrent sets racing a reader: the reader may observe any prefix of
/// the sets, but never a torn word (a bit that was neither 0 nor the set
/// value) — expressed here as: every observed one-bit must be one that some
/// thread actually set.
#[test]
fn reader_never_observes_phantom_bits() {
    check_with(cfg(2), || {
        let bm = Arc::new(AtomicBitmap::new(64));
        let writers: Vec<_> = [1usize, 33]
            .into_iter()
            .map(|bit| {
                let bm = bm.clone();
                thread::spawn(move || bm.set(bit))
            })
            .collect();
        let seen: Vec<usize> = bm.iter_ones().collect();
        for bit in &seen {
            assert!([1, 33].contains(bit), "phantom bit {bit} observed");
        }
        for w in writers {
            w.join().unwrap();
        }
        assert_eq!(bm.iter_ones().collect::<Vec<_>>(), vec![1, 33]);
    });
}
