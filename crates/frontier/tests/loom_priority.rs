//! Model-checked tests of the [`PriorityFrontier`]'s push/pop/quiescence
//! protocol — the synchronization the async execution mode stands on. The
//! model executes atomics sequentially-consistently, so what these tests
//! prove is the *protocol*: exactly-once enqueue under racing pushes, no
//! vertex lost between a push and a pop, re-queue after pop, and a
//! quiescence test that never fires while work is in flight. The
//! Acquire/Release ordering side is covered by the `// sync-audit:`
//! annotations and the xtask lint.
//!
//! Run with:
//! `RUSTFLAGS="--cfg loom" cargo test -p blaze-frontier --test loom_priority --release`
#![cfg(loom)]

use blaze_frontier::PriorityFrontier;
use blaze_sync::model::{check_with, Config};
use blaze_sync::{thread, Arc};

fn cfg(preemption_bound: usize) -> Config {
    Config {
        preemption_bound,
        ..Config::default()
    }
}

/// Two gather workers race to activate the SAME vertex: exactly one push
/// wins in every schedule, and one pop retrieves the vertex exactly once.
#[test]
fn racing_pushes_enqueue_exactly_once() {
    let report = check_with(cfg(2), || {
        let pf = Arc::new(PriorityFrontier::new(8, 4));
        let handles: Vec<_> = [1u64, 3]
            .into_iter()
            .map(|prio| {
                let pf = pf.clone();
                thread::spawn(move || pf.push(5, prio))
            })
            .collect();
        let wins = handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .filter(|won| *won)
            .count();
        assert_eq!(wins, 1, "vertex enqueued zero or two times");
        let (_, batch) = pf.pop_batch(8).expect("the winning push must be visible");
        assert_eq!(batch, vec![5]);
        pf.complete_batch();
        assert!(pf.pop_batch(8).is_none(), "duplicate entry survived dedup");
        assert!(pf.is_quiescent());
    });
    assert!(report.executions > 1, "explored only one schedule");
}

/// A pusher races the popping driver: the vertex is either in the batch the
/// driver pops or still queued afterwards — never lost, and quiescence never
/// reads true while it is unaccounted for.
#[test]
fn push_racing_pop_never_loses_the_vertex() {
    let report = check_with(cfg(2), || {
        let pf = Arc::new(PriorityFrontier::new(8, 2));
        pf.push(1, 0);
        let pusher = {
            let pf = pf.clone();
            thread::spawn(move || {
                pf.push(2, 0);
            })
        };
        let mut got = Vec::new();
        while let Some((_, batch)) = pf.pop_batch(8) {
            got.extend(batch);
            assert!(!pf.is_quiescent(), "batch in flight must block quiescence");
            pf.complete_batch();
        }
        pusher.join().unwrap();
        // Whatever the schedule, vertex 2 is in `got` or still queued.
        while let Some((_, batch)) = pf.pop_batch(8) {
            got.extend(batch);
            pf.complete_batch();
        }
        got.sort_unstable();
        assert_eq!(got, vec![1, 2], "a pushed vertex was lost");
        assert!(pf.is_quiescent());
    });
    assert!(report.executions > 1, "explored only one schedule");
}

/// The re-activation window: a gather improves a vertex while its batch is
/// mid-flight. Because `pop_batch` releases the claim before returning, the
/// concurrent re-push must be accepted and the vertex processed again.
#[test]
fn reactivation_during_processing_requeues() {
    let report = check_with(cfg(2), || {
        let pf = Arc::new(PriorityFrontier::new(8, 4));
        pf.push(6, 1);
        let (_, batch) = pf.pop_batch(8).unwrap();
        assert_eq!(batch, vec![6]);
        // Simulate a gather worker re-activating the popped vertex while
        // the driver is still scattering the batch.
        let gather = {
            let pf = pf.clone();
            thread::spawn(move || pf.push(6, 0))
        };
        pf.complete_batch();
        assert!(gather.join().unwrap(), "claim was released by the pop");
        assert!(!pf.is_quiescent(), "re-queued vertex must be seen as work");
        let (_, again) = pf.pop_batch(8).expect("re-queued vertex poppable");
        assert_eq!(again, vec![6]);
        pf.complete_batch();
        assert!(pf.is_quiescent());
    });
    assert!(report.executions > 1, "explored only one schedule");
}
