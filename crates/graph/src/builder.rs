//! Edge-list to CSR construction.

use blaze_types::VertexId;

use crate::csr::Csr;

/// Accumulates an edge list and converts it into a [`Csr`] with counting
/// sort (O(V + E), no comparison sort of the full edge list).
#[derive(Debug, Default)]
pub struct GraphBuilder {
    num_vertices: usize,
    edges: Vec<(VertexId, VertexId)>,
    dedup: bool,
    symmetrize: bool,
    drop_self_loops: bool,
}

impl GraphBuilder {
    /// Starts a builder for a graph with `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        Self {
            num_vertices,
            ..Default::default()
        }
    }

    /// Removes duplicate edges during [`build`](Self::build).
    pub fn dedup(mut self, yes: bool) -> Self {
        self.dedup = yes;
        self
    }

    /// Adds the reverse of every edge, producing an undirected view.
    pub fn symmetrize(mut self, yes: bool) -> Self {
        self.symmetrize = yes;
        self
    }

    /// Drops `v -> v` edges during [`build`](Self::build).
    pub fn drop_self_loops(mut self, yes: bool) -> Self {
        self.drop_self_loops = yes;
        self
    }

    /// Adds one directed edge.
    pub fn add_edge(&mut self, src: VertexId, dst: VertexId) {
        debug_assert!((src as usize) < self.num_vertices);
        debug_assert!((dst as usize) < self.num_vertices);
        self.edges.push((src, dst));
    }

    /// Adds many edges at once.
    pub fn extend(&mut self, edges: impl IntoIterator<Item = (VertexId, VertexId)>) {
        self.edges.extend(edges);
    }

    /// Number of edges currently staged (before symmetrize/dedup).
    pub fn staged_edges(&self) -> usize {
        self.edges.len()
    }

    /// Builds the CSR. Neighbors of each vertex are sorted ascending, which
    /// makes the on-disk layout deterministic.
    pub fn build(mut self) -> Csr {
        if self.drop_self_loops {
            self.edges.retain(|&(s, d)| s != d);
        }
        if self.symmetrize {
            let reversed: Vec<_> = self.edges.iter().map(|&(s, d)| (d, s)).collect();
            self.edges.extend(reversed);
        }
        let n = self.num_vertices;
        // Counting sort by source.
        let mut counts = vec![0u64; n + 1];
        for &(s, _) in &self.edges {
            counts[s as usize + 1] += 1;
        }
        for i in 1..=n {
            counts[i] += counts[i - 1];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut neighbors = vec![0 as VertexId; self.edges.len()];
        for &(s, d) in &self.edges {
            let slot = cursor[s as usize];
            neighbors[slot as usize] = d;
            cursor[s as usize] += 1;
        }
        // Sort each adjacency list; dedup in place if requested.
        if self.dedup {
            let mut new_offsets = vec![0u64; n + 1];
            let mut write = 0usize;
            for v in 0..n {
                let (start, end) = (offsets[v] as usize, offsets[v + 1] as usize);
                neighbors[start..end].sort_unstable();
                let mut prev: Option<VertexId> = None;
                for i in start..end {
                    let d = neighbors[i];
                    if prev != Some(d) {
                        neighbors[write] = d;
                        write += 1;
                        prev = Some(d);
                    }
                }
                new_offsets[v + 1] = write as u64;
            }
            neighbors.truncate(write);
            return Csr::from_parts(new_offsets, neighbors);
        }
        for v in 0..n {
            neighbors[offsets[v] as usize..offsets[v + 1] as usize].sort_unstable();
        }
        Csr::from_parts(offsets, neighbors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_sorted_adjacency() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 2);
        b.add_edge(0, 1);
        b.add_edge(2, 0);
        let g = b.build();
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[] as &[u32]);
        assert_eq!(g.neighbors(2), &[0]);
    }

    #[test]
    fn dedup_removes_parallel_edges() {
        let mut b = GraphBuilder::new(2).dedup(true);
        b.extend([(0, 1), (0, 1), (0, 1), (1, 0)]);
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(0), &[1]);
    }

    #[test]
    fn symmetrize_adds_reverse_edges() {
        let mut b = GraphBuilder::new(3).symmetrize(true).dedup(true);
        b.extend([(0, 1), (1, 2)]);
        let g = b.build();
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.neighbors(2), &[1]);
    }

    #[test]
    fn self_loops_dropped_when_asked() {
        let mut b = GraphBuilder::new(2).drop_self_loops(true);
        b.extend([(0, 0), (0, 1), (1, 1)]);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.neighbors(0), &[1]);
    }

    #[test]
    fn dedup_preserves_distinct_neighbors() {
        let mut b = GraphBuilder::new(4).dedup(true);
        b.extend([(1, 3), (1, 0), (1, 3), (1, 2)]);
        let g = b.build();
        assert_eq!(g.neighbors(1), &[0, 2, 3]);
        // Offsets of untouched vertices stay consistent.
        assert_eq!(g.degree(0), 0);
        assert_eq!(g.degree(3), 0);
        assert_eq!(g.num_edges(), 3);
    }
}
