//! In-memory Compressed Sparse Row graph.
//!
//! The in-memory CSR is the source of truth for building on-disk graphs, the
//! reference implementations of every query, and the functional baselines.

use blaze_types::VertexId;

/// A directed graph in Compressed Sparse Row form.
///
/// `offsets` has `num_vertices + 1` entries; the out-neighbors of vertex `v`
/// are `neighbors[offsets[v]..offsets[v+1]]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    offsets: Vec<u64>,
    neighbors: Vec<VertexId>,
}

impl Csr {
    /// Builds a CSR from raw parts. `offsets` must be monotonically
    /// non-decreasing, start at 0, and end at `neighbors.len()`.
    pub fn from_parts(offsets: Vec<u64>, neighbors: Vec<VertexId>) -> Self {
        assert!(!offsets.is_empty(), "offsets must have >= 1 entry");
        assert_eq!(offsets[0], 0);
        assert_eq!(
            offsets.last().copied().unwrap_or(0) as usize,
            neighbors.len()
        );
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        Self { offsets, neighbors }
    }

    /// An empty graph with `n` vertices and no edges.
    pub fn empty(n: usize) -> Self {
        Self {
            offsets: vec![0; n + 1],
            neighbors: Vec::new(),
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> u64 {
        self.offsets.last().copied().unwrap_or(0)
    }

    /// Out-degree of `v`.
    pub fn degree(&self, v: VertexId) -> u32 {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as u32
    }

    /// Offset of `v`'s first edge in the neighbor stream.
    pub fn edge_offset(&self, v: VertexId) -> u64 {
        self.offsets[v as usize]
    }

    /// Out-neighbors of `v`.
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.neighbors[self.offsets[v as usize] as usize..self.offsets[v as usize + 1] as usize]
    }

    /// The raw neighbor stream, in vertex order — exactly the byte layout of
    /// the on-disk adjacency file.
    pub fn neighbor_stream(&self) -> &[VertexId] {
        &self.neighbors
    }

    /// The raw offset array (`num_vertices + 1` entries).
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// Iterates all `(src, dst)` edges.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        (0..self.num_vertices() as VertexId)
            .flat_map(move |v| self.neighbors(v).iter().map(move |&d| (v, d)))
    }

    /// Builds the transpose (in-edges become out-edges). Used for queries
    /// that propagate along incoming edges (WCC on undirected views, BC's
    /// backward sweep).
    pub fn transpose(&self) -> Csr {
        let n = self.num_vertices();
        let mut in_degrees = vec![0u64; n + 1];
        for &d in &self.neighbors {
            in_degrees[d as usize + 1] += 1;
        }
        let mut offsets = in_degrees;
        for i in 1..=n {
            offsets[i] += offsets[i - 1];
        }
        let mut cursor = offsets.clone();
        let mut neighbors = vec![0 as VertexId; self.neighbors.len()];
        for v in 0..n as VertexId {
            for &d in self.neighbors(v) {
                let slot = cursor[d as usize];
                neighbors[slot as usize] = v;
                cursor[d as usize] += 1;
            }
        }
        Csr { offsets, neighbors }
    }

    /// Total bytes of the graph as stored on disk: the 4-byte neighbor
    /// stream plus the 4-byte degree array. This is the "input graph size"
    /// denominator of Figure 12 and the bin-space heuristic.
    pub fn storage_bytes(&self) -> u64 {
        self.num_edges() * 4 + self.num_vertices() as u64 * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0 -> 1,2 ; 1 -> 2 ; 2 -> 0 ; 3 isolated.
    fn small() -> Csr {
        Csr::from_parts(vec![0, 2, 3, 4, 4], vec![1, 2, 2, 0])
    }

    #[test]
    fn basic_accessors() {
        let g = small();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(3), 0);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(2), &[0]);
        assert_eq!(g.edge_offset(2), 3);
    }

    #[test]
    fn edges_iterates_in_csr_order() {
        let g = small();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2), (2, 0)]);
    }

    #[test]
    fn transpose_reverses_edges() {
        let g = small();
        let t = g.transpose();
        assert_eq!(t.num_edges(), g.num_edges());
        assert_eq!(t.neighbors(0), &[2]);
        assert_eq!(t.neighbors(2), &[0, 1]);
        assert_eq!(t.degree(3), 0);
        // Transposing twice restores the original edge set.
        let tt = t.transpose();
        let mut orig: Vec<_> = g.edges().collect();
        let mut back: Vec<_> = tt.edges().collect();
        orig.sort_unstable();
        back.sort_unstable();
        assert_eq!(orig, back);
    }

    #[test]
    fn empty_graph() {
        let g = Csr::empty(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
        assert!(g.neighbors(4).is_empty());
    }

    #[test]
    fn storage_bytes_counts_stream_plus_degrees() {
        let g = small();
        assert_eq!(g.storage_bytes(), 4 * 4 + 4 * 4);
    }

    #[test]
    #[should_panic]
    fn inconsistent_parts_are_rejected() {
        Csr::from_parts(vec![0, 3], vec![1]);
    }
}
