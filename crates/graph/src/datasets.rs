//! The seven target datasets of Table II, at reproducible reduced scale.
//!
//! The paper's graphs range from 2.3 GB (sk2005) to 102 GB (rmat30)
//! downloads; this reproduction regenerates topologically equivalent
//! stand-ins. Every phenomenon the evaluation relies on is a function of
//! *shape*, not absolute size:
//!
//! * power-law vs uniform degree distribution (skewed computation, Fig 2),
//! * vertex-numbering locality (sk2005's page-cache friendliness, Fig 7),
//! * diameter (iteration count of BFS/BC).
//!
//! Scales are expressed as a divisor relative to the paper (e.g.
//! [`DatasetScale::Small`] is 1/4096 of the paper's vertex count), so
//! harnesses can trade runtime for fidelity uniformly.

use crate::csr::Csr;
use crate::gen::{self, RmatConfig};

/// How far below paper scale to generate. Vertex counts divide by 2^shift.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetScale {
    /// 1/16384 of paper scale — unit tests.
    Tiny,
    /// 1/4096 of paper scale — default for bench harnesses.
    Small,
    /// 1/1024 of paper scale — higher-fidelity runs.
    Medium,
}

impl DatasetScale {
    /// log2 of the vertex-count divisor.
    pub fn shift(self) -> u32 {
        match self {
            DatasetScale::Tiny => 14,
            DatasetScale::Small => 12,
            DatasetScale::Medium => 10,
        }
    }
}

/// The seven graphs of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// rmat27: synthetic power-law, |V| = 134 M, |E| = 2147 M, diameter 10.
    Rmat27,
    /// rmat30: synthetic power-law, |V| = 1074 M, |E| = 17180 M, diameter 11.
    Rmat30,
    /// uran27: synthetic uniform, |V| = 134 M, |E| = 2147 M — the
    /// adversarial no-locality graph.
    Uran27,
    /// twitter: real power-law, |V| = 61 M, |E| = 1468 M, diameter 75.
    Twitter,
    /// sk2005: real power-law web crawl with high locality, diameter 205.
    Sk2005,
    /// friendster: real power-law social graph, diameter 56.
    Friendster,
    /// hyperlink14: real power-law web graph, |V| = 1727 M, |E| = 64422 M.
    Hyperlink14,
}

impl Dataset {
    /// The six graphs used in the main comparisons (Figures 1, 7, 8, 9).
    pub fn main_six() -> [Dataset; 6] {
        [
            Dataset::Rmat27,
            Dataset::Rmat30,
            Dataset::Uran27,
            Dataset::Twitter,
            Dataset::Sk2005,
            Dataset::Friendster,
        ]
    }

    /// All seven graphs of Table II.
    pub fn all() -> [Dataset; 7] {
        [
            Dataset::Rmat27,
            Dataset::Rmat30,
            Dataset::Uran27,
            Dataset::Twitter,
            Dataset::Sk2005,
            Dataset::Friendster,
            Dataset::Hyperlink14,
        ]
    }

    /// Paper shorthand (Table II "Short" column).
    pub fn short_name(self) -> &'static str {
        match self {
            Dataset::Rmat27 => "r2",
            Dataset::Rmat30 => "r3",
            Dataset::Uran27 => "ur",
            Dataset::Twitter => "tw",
            Dataset::Sk2005 => "sk",
            Dataset::Friendster => "fr",
            Dataset::Hyperlink14 => "hy",
        }
    }

    /// Full dataset name.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::Rmat27 => "rmat27",
            Dataset::Rmat30 => "rmat30",
            Dataset::Uran27 => "uran27",
            Dataset::Twitter => "twitter",
            Dataset::Sk2005 => "sk2005",
            Dataset::Friendster => "friendster",
            Dataset::Hyperlink14 => "hyperlink14",
        }
    }

    /// Whether the paper classifies the graph as synthetic.
    pub fn is_synthetic(self) -> bool {
        matches!(self, Dataset::Rmat27 | Dataset::Rmat30 | Dataset::Uran27)
    }

    /// log2 vertex count at paper scale.
    fn paper_scale(self) -> u32 {
        match self {
            Dataset::Rmat27 | Dataset::Uran27 => 27,
            Dataset::Rmat30 => 30,
            // 61 M vertices ≈ 2^26; 51 M ≈ 2^25.6; 124 M ≈ 2^27; 1.7 B ≈ 2^30.7.
            Dataset::Twitter => 26,
            Dataset::Sk2005 => 26,
            Dataset::Friendster => 27,
            Dataset::Hyperlink14 => 31,
        }
    }

    /// Edges per vertex at paper scale (|E| / |V| from Table II).
    fn edge_factor(self) -> usize {
        match self {
            Dataset::Rmat27 | Dataset::Rmat30 | Dataset::Uran27 => 16,
            Dataset::Twitter => 24,
            Dataset::Sk2005 => 38,
            Dataset::Friendster => 15,
            Dataset::Hyperlink14 => 37,
        }
    }

    /// Generates the stand-in graph at the given scale. Deterministic.
    ///
    /// Diameter-stretching path tails shrink with the scale divisor (full
    /// length at [`DatasetScale::Medium`], ÷4 at `Small`, ÷16 at `Tiny`) so
    /// that per-iteration IO volume keeps a sane ratio to iteration count.
    pub fn generate(self, scale: DatasetScale) -> Csr {
        let s = self.paper_scale().saturating_sub(scale.shift()).max(6);
        let ef = self.edge_factor();
        let tail = |base: usize| (base >> (scale.shift() - 10)).max(3);
        match self {
            Dataset::Rmat27 => gen::rmat(&RmatConfig::new(s).edge_factor(ef).seed(27)),
            Dataset::Rmat30 => gen::rmat(&RmatConfig::new(s).edge_factor(ef).seed(30)),
            Dataset::Uran27 => gen::uniform(s, ef, 27),
            // Twitter: strongly skewed hubs (celebrities), random vertex
            // numbering, moderate diameter (75 in the paper).
            Dataset::Twitter => {
                let base = gen::rmat(
                    &RmatConfig::new(s)
                        .edge_factor(ef)
                        .seed(61)
                        .skew(0.62, 0.18, 0.15),
                );
                gen::shuffle_labels(&gen::with_path_tail(&base, tail(64)), 61)
            }
            // sk2005: power-law *with* crawl-order locality and a long
            // diameter (205 in the paper).
            Dataset::Sk2005 => {
                let base = gen::rmat(&RmatConfig::new(s).edge_factor(ef).seed(51));
                gen::relabel_bfs_order(&gen::with_path_tail(&base, tail(192)))
            }
            // friendster: milder skew, no locality, diameter 56.
            Dataset::Friendster => {
                let base = gen::rmat(
                    &RmatConfig::new(s)
                        .edge_factor(ef)
                        .seed(124)
                        .skew(0.50, 0.22, 0.22),
                );
                gen::shuffle_labels(&gen::with_path_tail(&base, tail(48)), 124)
            }
            // hyperlink14: the largest graph; crawl-order locality, the
            // paper's longest diameter (790).
            Dataset::Hyperlink14 => {
                let base = gen::rmat(&RmatConfig::new(s).edge_factor(ef).seed(64));
                gen::relabel_bfs_order(&gen::with_path_tail(&base, tail(256)))
            }
        }
    }

    /// Parses a short or full name.
    pub fn from_name(name: &str) -> Option<Dataset> {
        Dataset::all()
            .into_iter()
            .find(|d| d.short_name() == name || d.name() == name)
    }
}

impl std::fmt::Display for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{DegreeDistribution, GraphStats};

    #[test]
    fn names_round_trip() {
        for d in Dataset::all() {
            assert_eq!(Dataset::from_name(d.short_name()), Some(d));
            assert_eq!(Dataset::from_name(d.name()), Some(d));
        }
        assert_eq!(Dataset::from_name("nope"), None);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::Twitter.generate(DatasetScale::Tiny);
        let b = Dataset::Twitter.generate(DatasetScale::Tiny);
        assert_eq!(a, b);
    }

    #[test]
    fn distributions_match_table2() {
        for d in [Dataset::Rmat27, Dataset::Twitter, Dataset::Friendster] {
            let g = d.generate(DatasetScale::Tiny);
            let s = GraphStats::compute(&g);
            assert_eq!(
                s.distribution,
                DegreeDistribution::PowerLaw,
                "{d} should be power-law"
            );
        }
        let s = GraphStats::compute(&Dataset::Uran27.generate(DatasetScale::Tiny));
        assert_eq!(s.distribution, DegreeDistribution::Uniform);
    }

    #[test]
    fn sk2005_has_longer_diameter_than_rmat() {
        let sk = GraphStats::compute(&Dataset::Sk2005.generate(DatasetScale::Tiny));
        let r2 = GraphStats::compute(&Dataset::Rmat27.generate(DatasetScale::Tiny));
        assert!(
            sk.approx_diameter > 2 * r2.approx_diameter,
            "sk {} vs rmat {}",
            sk.approx_diameter,
            r2.approx_diameter
        );
    }

    #[test]
    fn rmat30_is_the_largest_of_main_six() {
        let sizes: Vec<u64> = Dataset::main_six()
            .iter()
            .map(|d| d.generate(DatasetScale::Tiny).num_edges())
            .collect();
        let r3 = Dataset::Rmat30.generate(DatasetScale::Tiny).num_edges();
        assert_eq!(sizes.iter().copied().max().unwrap(), r3);
    }
}
