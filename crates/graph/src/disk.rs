//! The on-disk graph: page-packed adjacency stream over striped storage,
//! plus the in-memory metadata needed to address it.
//!
//! On disk, a graph is the raw neighbor stream (4-byte little-endian vertex
//! ids, in vertex order) packed into 4 KiB pages and striped across the
//! device array. The artifact-compatible file layout is one `.gr.index`
//! file (header + degree array) and one `.gr.adj.<i>` file per device.

use blaze_sync::Arc;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use blaze_storage::{BlockDevice, FileDevice, StripedStorage};
use blaze_types::{BlazeError, PageId, Result, VertexId, EDGES_PER_PAGE, PAGE_SIZE};

use crate::csr::Csr;
use crate::fallback;
use crate::index::GraphIndex;
use crate::pagemap::PageVertexMap;

const INDEX_MAGIC: &[u8; 8] = b"BLZIDX01";

/// Writes the adjacency stream of `g` into `storage`, page-interleaved.
/// Returns the number of pages written.
pub fn write_to_storage(g: &Csr, storage: &StripedStorage) -> Result<u64> {
    let stream = g.neighbor_stream();
    let num_pages = stream.len().div_ceil(EDGES_PER_PAGE) as u64;
    let mut page = vec![0u8; PAGE_SIZE];
    for p in 0..num_pages {
        let start = p as usize * EDGES_PER_PAGE;
        let end = (start + EDGES_PER_PAGE).min(stream.len());
        page.fill(0);
        for (i, &v) in stream[start..end].iter().enumerate() {
            page[i * 4..i * 4 + 4].copy_from_slice(&v.to_le_bytes());
        }
        storage.write_page(p, &page)?;
    }
    Ok(num_pages)
}

/// Writes the `.gr.index` file: magic, vertex count, edge count, degrees.
pub fn write_index_file(path: impl AsRef<Path>, index: &GraphIndex) -> Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    f.write_all(INDEX_MAGIC)?;
    f.write_all(&(index.num_vertices() as u64).to_le_bytes())?;
    f.write_all(&index.num_edges().to_le_bytes())?;
    for &d in index.degrees() {
        f.write_all(&d.to_le_bytes())?;
    }
    f.flush()?;
    Ok(())
}

/// Reads a `.gr.index` file back into a [`GraphIndex`].
pub fn read_index_file(path: impl AsRef<Path>) -> Result<GraphIndex> {
    let file = std::fs::File::open(path)?;
    let file_len = file.metadata()?.len();
    let mut f = std::io::BufReader::new(file);
    let mut magic = [0u8; 8];
    f.read_exact(&mut magic)?;
    if &magic != INDEX_MAGIC {
        return Err(BlazeError::Format("bad index magic".into()));
    }
    let mut u64buf = [0u8; 8];
    f.read_exact(&mut u64buf)?;
    let num_vertices = u64::from_le_bytes(u64buf) as usize;
    f.read_exact(&mut u64buf)?;
    let num_edges = u64::from_le_bytes(u64buf);
    // Validate the header against the file size *before* allocating the
    // degree array: a corrupted vertex count must not trigger a huge
    // allocation or a short read.
    let expected_len = 24u64.saturating_add((num_vertices as u64).saturating_mul(4));
    if file_len != expected_len {
        return Err(BlazeError::Format(format!(
            "index file length {file_len} does not match header ({num_vertices} vertices \
             need {expected_len} bytes)"
        )));
    }
    let mut degrees = vec![0u32; num_vertices];
    let mut u32buf = [0u8; 4];
    for d in &mut degrees {
        f.read_exact(&mut u32buf)?;
        *d = u32::from_le_bytes(u32buf);
    }
    let index = GraphIndex::from_degrees(degrees);
    if index.num_edges() != num_edges {
        return Err(BlazeError::Format(format!(
            "index edge count mismatch: header {num_edges}, degrees sum {}",
            index.num_edges()
        )));
    }
    Ok(index)
}

/// Writes the artifact-style file set `{base}.index` plus
/// `{base}.adj.<i>` for `num_files` stripe files into `dir` — pass
/// `"name.gr"` for the out-edge set and `"name.tgr"` for the transpose, as
/// in the paper's artifact. Returns `(index_path, adj_paths)`.
pub fn save_files(
    g: &Csr,
    dir: impl AsRef<Path>,
    base: &str,
    num_files: usize,
) -> Result<(PathBuf, Vec<PathBuf>)> {
    let dir = dir.as_ref();
    let index_path = dir.join(format!("{base}.index"));
    write_index_file(&index_path, &GraphIndex::from_csr(g))?;
    let adj_paths: Vec<PathBuf> = (0..num_files)
        .map(|i| dir.join(format!("{base}.adj.{i}")))
        .collect();
    let devices: Vec<Arc<dyn BlockDevice>> = adj_paths
        .iter()
        .map(|p| FileDevice::create(p).map(|d| Arc::new(d) as Arc<dyn BlockDevice>))
        .collect::<Result<_>>()?;
    let storage = StripedStorage::new(devices)?;
    write_to_storage(g, &storage)?;
    Ok((index_path, adj_paths))
}

/// A disk-resident graph: striped adjacency pages plus in-memory metadata.
///
/// This is the graph handle the out-of-core engine operates on. It holds no
/// adjacency data in memory — only the [`GraphIndex`] (~4.5 B/vertex) and
/// the [`PageVertexMap`] (8 B/page).
pub struct DiskGraph {
    storage: Arc<StripedStorage>,
    index: GraphIndex,
    pagemap: PageVertexMap,
}

impl DiskGraph {
    /// Writes `g` into `storage` and returns the handle. The common path for
    /// tests and benches.
    pub fn create(g: &Csr, storage: Arc<StripedStorage>) -> Result<Self> {
        write_to_storage(g, &storage)?;
        let index = GraphIndex::from_csr(g);
        let pagemap = PageVertexMap::build(&index);
        Ok(Self {
            storage,
            index,
            pagemap,
        })
    }

    /// Opens a graph whose adjacency pages are already present in `storage`,
    /// loading metadata from the given `.gr.index` file.
    pub fn open(index_path: impl AsRef<Path>, storage: Arc<StripedStorage>) -> Result<Self> {
        let index = read_index_file(index_path)?;
        let pagemap = PageVertexMap::build(&index);
        Ok(Self {
            storage,
            index,
            pagemap,
        })
    }

    /// Opens the artifact-style file set written by [`save_files`].
    pub fn open_files(index_path: impl AsRef<Path>, adj_paths: &[PathBuf]) -> Result<Self> {
        let devices: Vec<Arc<dyn BlockDevice>> = adj_paths
            .iter()
            .map(|p| FileDevice::open(p).map(|d| Arc::new(d) as Arc<dyn BlockDevice>))
            .collect::<Result<_>>()?;
        Self::open(index_path, Arc::new(StripedStorage::new(devices)?))
    }

    /// The device array holding the adjacency pages.
    pub fn storage(&self) -> &Arc<StripedStorage> {
        &self.storage
    }

    /// The in-memory index.
    pub fn index(&self) -> &GraphIndex {
        &self.index
    }

    /// The page → vertex map.
    pub fn pagemap(&self) -> &PageVertexMap {
        &self.pagemap
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.index.num_vertices()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> u64 {
        self.index.num_edges()
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> u32 {
        self.index.degree(v)
    }

    /// Number of adjacency pages.
    pub fn num_pages(&self) -> u64 {
        self.pagemap.num_pages()
    }

    /// The inclusive page range holding `v`'s edges, or `None` if `v` has
    /// no edges.
    pub fn pages_of_vertex(&self, v: VertexId) -> Option<std::ops::RangeInclusive<PageId>> {
        let deg = self.index.degree(v) as u64;
        if deg == 0 {
            return None;
        }
        let off = self.index.edge_offset(v);
        Some(off / EDGES_PER_PAGE as u64..=(off + deg - 1) / EDGES_PER_PAGE as u64)
    }

    /// Size of the graph on disk (neighbor stream + degree array), the
    /// denominator of Figure 12.
    pub fn storage_bytes(&self) -> u64 {
        self.num_edges() * 4 + self.num_vertices() as u64 * 4
    }

    /// Memory used by the in-memory metadata (index + page map).
    pub fn metadata_bytes(&self) -> u64 {
        self.index.memory_bytes() + self.pagemap.memory_bytes()
    }

    /// Decodes one fetched page: calls `f(src, dsts)` for every vertex whose
    /// edges intersect page `page`, with `dsts` the *portion of its
    /// adjacency list stored in this page*.
    ///
    /// On little-endian targets with a 4-byte-aligned `data` buffer, `dsts`
    /// borrows the page bytes directly (the neighbor stream is stored as
    /// little-endian `u32` words, so an aligned reinterpret is the decoded
    /// list) and `scratch` is untouched. Otherwise each run is byte-decoded
    /// into `scratch` via the `fallback` module. Vertex metadata comes
    /// from a sequential [`IndexCursor`](crate::IndexCursor) instead of
    /// per-vertex `edge_offset` lookups.
    ///
    /// `data` must be the `PAGE_SIZE` bytes of page `page`.
    pub fn for_each_vertex_in_page<F>(
        &self,
        page: PageId,
        data: &[u8],
        scratch: &mut Vec<VertexId>,
        mut f: F,
    ) where
        F: FnMut(VertexId, &[VertexId]),
    {
        debug_assert_eq!(data.len(), PAGE_SIZE);
        let Some((begin, end)) = self.pagemap.vertices_in_page(page) else {
            return;
        };
        let page_first_edge = page * EDGES_PER_PAGE as u64;
        let page_last_edge = page_first_edge + EDGES_PER_PAGE as u64;
        let words = page_as_words(data);
        let mut cursor = self.index.cursor(begin);
        for v in begin..=end {
            let (deg, off) = cursor.advance();
            let deg = deg as u64;
            if deg == 0 {
                continue;
            }
            let lo = off.max(page_first_edge);
            let hi = (off + deg).min(page_last_edge);
            if lo >= hi {
                continue;
            }
            let word_lo = (lo - page_first_edge) as usize;
            let word_hi = (hi - page_first_edge) as usize;
            match words {
                Some(words) => f(v, &words[word_lo..word_hi]),
                None => {
                    fallback::decode_run(scratch, &data[word_lo * 4..word_hi * 4]);
                    f(v, scratch);
                }
            }
        }
    }

    /// The pre-optimization page decode: per-vertex `degree`/`edge_offset`
    /// index lookups and a byte-copy of every neighbor run into `scratch`.
    ///
    /// Semantically identical to [`for_each_vertex_in_page`]; kept as the
    /// "before" arm of the `compute_path` bench
    /// (`EngineOptions::bytewise_decode`) and as a behavior reference for
    /// the zero-copy path.
    ///
    /// [`for_each_vertex_in_page`]: Self::for_each_vertex_in_page
    pub fn for_each_vertex_in_page_bytewise<F>(
        &self,
        page: PageId,
        data: &[u8],
        scratch: &mut Vec<VertexId>,
        mut f: F,
    ) where
        F: FnMut(VertexId, &[VertexId]),
    {
        debug_assert_eq!(data.len(), PAGE_SIZE);
        let Some((begin, end)) = self.pagemap.vertices_in_page(page) else {
            return;
        };
        let page_first_edge = page * EDGES_PER_PAGE as u64;
        let page_last_edge = page_first_edge + EDGES_PER_PAGE as u64;
        for v in begin..=end {
            let deg = self.index.degree(v) as u64;
            if deg == 0 {
                continue;
            }
            let off = self.index.edge_offset(v);
            let lo = off.max(page_first_edge);
            let hi = (off + deg).min(page_last_edge);
            if lo >= hi {
                continue;
            }
            let byte_lo = ((lo - page_first_edge) * 4) as usize;
            let byte_hi = ((hi - page_first_edge) * 4) as usize;
            fallback::decode_run(scratch, &data[byte_lo..byte_hi]);
            f(v, scratch);
        }
    }

    /// Reads the full adjacency list of `v` from storage. Convenience for
    /// tests and examples; the engine never calls this.
    pub fn read_neighbors(&self, v: VertexId) -> Result<Vec<VertexId>> {
        let mut out = Vec::with_capacity(self.index.degree(v) as usize);
        let Some(pages) = self.pages_of_vertex(v) else {
            return Ok(out);
        };
        let mut buf = vec![0u8; PAGE_SIZE];
        let mut scratch = Vec::new();
        for p in pages {
            self.storage.read_page(p, &mut buf)?;
            self.for_each_vertex_in_page(p, &buf, &mut scratch, |src, dsts| {
                if src == v {
                    out.extend_from_slice(dsts);
                }
            });
        }
        Ok(out)
    }
}

/// Reinterprets a page buffer as its little-endian `u32` neighbor words.
///
/// Returns `None` when the buffer is not 4-byte aligned or the target is
/// big-endian (the on-disk words are little-endian, so a plain reinterpret
/// would byte-swap them); callers then decode through [`fallback`].
#[inline]
fn page_as_words(data: &[u8]) -> Option<&[u32]> {
    if cfg!(not(target_endian = "little"))
        || data.as_ptr().align_offset(std::mem::align_of::<u32>()) != 0
    {
        return None;
    }
    // SAFETY: the pointer is 4-byte aligned (checked above), the length is
    // rounded down to whole `u32` words, `u32` has no invalid bit patterns,
    // and the returned slice's lifetime is tied to `data`'s borrow.
    Some(unsafe { std::slice::from_raw_parts(data.as_ptr() as *const u32, data.len() / 4) })
}

impl std::fmt::Debug for DiskGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiskGraph")
            .field("num_vertices", &self.num_vertices())
            .field("num_edges", &self.num_edges())
            .field("num_pages", &self.num_pages())
            .field("num_devices", &self.storage.num_devices())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{rmat, uniform, RmatConfig};

    fn disk_graph(g: &Csr, devices: usize) -> DiskGraph {
        let storage = Arc::new(StripedStorage::in_memory(devices).unwrap());
        DiskGraph::create(g, storage).unwrap()
    }

    #[test]
    fn neighbors_round_trip_single_device() {
        let g = rmat(&RmatConfig::new(9));
        let dg = disk_graph(&g, 1);
        for v in (0..g.num_vertices() as VertexId).step_by(37) {
            assert_eq!(dg.read_neighbors(v).unwrap(), g.neighbors(v), "vertex {v}");
        }
    }

    #[test]
    fn neighbors_round_trip_striped() {
        let g = uniform(9, 12, 5);
        let dg = disk_graph(&g, 4);
        for v in (0..g.num_vertices() as VertexId).step_by(29) {
            assert_eq!(dg.read_neighbors(v).unwrap(), g.neighbors(v), "vertex {v}");
        }
    }

    #[test]
    fn every_edge_is_decoded_exactly_once() {
        let g = rmat(&RmatConfig::new(8));
        let dg = disk_graph(&g, 2);
        let mut total = 0u64;
        let mut buf = vec![0u8; PAGE_SIZE];
        let mut scratch = Vec::new();
        for p in 0..dg.num_pages() {
            dg.storage().read_page(p, &mut buf).unwrap();
            dg.for_each_vertex_in_page(p, &buf, &mut scratch, |src, dsts| {
                // Every decoded dst must be a real neighbor of src.
                for d in dsts {
                    assert!(g.neighbors(src).contains(d));
                }
                total += dsts.len() as u64;
            });
        }
        assert_eq!(total, g.num_edges());
    }

    /// Collects `(src, dsts)` pairs from one page decode.
    fn decode_page(
        dg: &DiskGraph,
        page: u64,
        data: &[u8],
        bytewise: bool,
    ) -> Vec<(VertexId, Vec<VertexId>)> {
        let mut out = Vec::new();
        let mut scratch = Vec::new();
        let collect = |src: VertexId, dsts: &[VertexId]| (src, dsts.to_vec());
        if bytewise {
            dg.for_each_vertex_in_page_bytewise(page, data, &mut scratch, |s, d| {
                out.push(collect(s, d))
            });
        } else {
            dg.for_each_vertex_in_page(page, data, &mut scratch, |s, d| out.push(collect(s, d)));
        }
        out
    }

    #[test]
    fn zero_copy_matches_bytewise_decode() {
        let g = rmat(&RmatConfig::new(8));
        let dg = disk_graph(&g, 2);
        let mut buf = vec![0u8; PAGE_SIZE];
        for p in 0..dg.num_pages() {
            dg.storage().read_page(p, &mut buf).unwrap();
            assert_eq!(
                decode_page(&dg, p, &buf, false),
                decode_page(&dg, p, &buf, true),
                "page {p}"
            );
        }
    }

    #[test]
    fn misaligned_buffer_decodes_correctly() {
        let g = rmat(&RmatConfig::new(7));
        let dg = disk_graph(&g, 1);
        let mut aligned = vec![0u8; PAGE_SIZE];
        // Stage the page at an odd offset so the aligned reinterpret cannot
        // apply and the byte-wise fallback must carry the decode.
        let mut shifted = vec![0u8; PAGE_SIZE + 1];
        for p in 0..dg.num_pages() {
            dg.storage().read_page(p, &mut aligned).unwrap();
            shifted[1..].copy_from_slice(&aligned);
            assert_eq!(
                decode_page(&dg, p, &shifted[1..], false),
                decode_page(&dg, p, &aligned, true),
                "page {p}"
            );
        }
    }

    #[test]
    fn pages_of_vertex_match_pagemap() {
        let g = rmat(&RmatConfig::new(8));
        let dg = disk_graph(&g, 1);
        for v in 0..g.num_vertices() as VertexId {
            match dg.pages_of_vertex(v) {
                None => assert_eq!(g.degree(v), 0),
                Some(pages) => {
                    for p in pages {
                        let (b, e) = dg.pagemap().vertices_in_page(p).unwrap();
                        assert!(b <= v && v <= e);
                    }
                }
            }
        }
    }

    #[test]
    fn file_round_trip() {
        let g = rmat(&RmatConfig::new(8));
        let dir = tempfile::tempdir().unwrap();
        let (index_path, adj_paths) = save_files(&g, dir.path(), "test.gr", 2).unwrap();
        assert_eq!(adj_paths.len(), 2);
        let dg = DiskGraph::open_files(&index_path, &adj_paths).unwrap();
        assert_eq!(dg.num_vertices(), g.num_vertices());
        assert_eq!(dg.num_edges(), g.num_edges());
        for v in (0..g.num_vertices() as VertexId).step_by(41) {
            assert_eq!(dg.read_neighbors(v).unwrap(), g.neighbors(v));
        }
    }

    #[test]
    fn index_file_rejects_corruption() {
        let g = rmat(&RmatConfig::new(6));
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("x.gr.index");
        write_index_file(&path, &GraphIndex::from_csr(&g)).unwrap();
        // Corrupt the magic.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] = b'X';
        std::fs::write(&path, &bytes).unwrap();
        assert!(read_index_file(&path).is_err());
    }

    #[test]
    fn metadata_is_small_relative_to_graph() {
        let g = rmat(&RmatConfig::new(12));
        let dg = disk_graph(&g, 1);
        let ratio = dg.metadata_bytes() as f64 / dg.storage_bytes() as f64;
        assert!(ratio < 0.15, "metadata ratio {ratio}");
    }
}
