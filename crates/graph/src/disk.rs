//! The on-disk graph: page-packed adjacency stream over striped storage,
//! plus the in-memory metadata needed to address it.
//!
//! On disk, a graph is the raw neighbor stream (4-byte little-endian vertex
//! ids, in vertex order) packed into 4 KiB pages and striped across the
//! device array. The artifact-compatible file layout is one `.gr.index`
//! file (header + degree array) and one `.gr.adj.<i>` file per device.

use blaze_sync::Arc;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use blaze_storage::{BlockDevice, FileDevice, StripedStorage};
use blaze_types::{BlazeError, PageId, Result, VertexId, EDGES_PER_PAGE, PAGE_SIZE};

use crate::csr::Csr;
use crate::fallback;
use crate::index::GraphIndex;
use crate::layout::{VertexLayout, VertexPermutation};
use crate::pagemap::PageVertexMap;

const INDEX_MAGIC: &[u8; 8] = b"BLZIDX01";
/// Version 2 appends a layout section after the degree array: one tag byte
/// ([`VertexLayout::tag`]), the `hot_vertices` count (u64 LE), and the
/// physical→original permutation as `num_vertices` u32 LE words. Identity
/// layouts keep writing version 1, byte-identical to the pre-layout format.
const INDEX_MAGIC_V2: &[u8; 8] = b"BLZIDX02";

/// Layout metadata carried by a version-2 index file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayoutMeta {
    /// Which plan produced the ordering (provenance, kept for tooling).
    pub kind: VertexLayout,
    /// Leading physical vertices considered hot (the hub prefix).
    pub hot_vertices: u64,
    /// Original ↔ physical id maps.
    pub perm: VertexPermutation,
}

/// Writes the adjacency stream of `g` into `storage`, page-interleaved.
/// Returns the number of pages written.
pub fn write_to_storage(g: &Csr, storage: &StripedStorage) -> Result<u64> {
    let stream = g.neighbor_stream();
    let num_pages = stream.len().div_ceil(EDGES_PER_PAGE) as u64;
    let mut page = vec![0u8; PAGE_SIZE];
    for p in 0..num_pages {
        let start = p as usize * EDGES_PER_PAGE;
        let end = (start + EDGES_PER_PAGE).min(stream.len());
        page.fill(0);
        for (i, &v) in stream[start..end].iter().enumerate() {
            page[i * 4..i * 4 + 4].copy_from_slice(&v.to_le_bytes());
        }
        storage.write_page(p, &page)?;
    }
    Ok(num_pages)
}

/// Writes the `.gr.index` file: magic, vertex count, edge count, degrees.
pub fn write_index_file(path: impl AsRef<Path>, index: &GraphIndex) -> Result<()> {
    write_index_file_with_layout(path, index, None)
}

/// Writes a `.gr.index` file, appending the version-2 layout section when
/// `meta` carries a genuine (non-identity) permutation. Identity layouts
/// fall back to the version-1 format so unreordered graphs stay
/// byte-identical to files written before layouts existed.
pub fn write_index_file_with_layout(
    path: impl AsRef<Path>,
    index: &GraphIndex,
    meta: Option<&LayoutMeta>,
) -> Result<()> {
    let meta = meta.filter(|m| !m.perm.is_identity());
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    f.write_all(if meta.is_some() {
        INDEX_MAGIC_V2
    } else {
        INDEX_MAGIC
    })?;
    f.write_all(&(index.num_vertices() as u64).to_le_bytes())?;
    f.write_all(&index.num_edges().to_le_bytes())?;
    for &d in index.degrees() {
        f.write_all(&d.to_le_bytes())?;
    }
    if let Some(meta) = meta {
        // panic-audit: the v2 branch is entered only for non-identity
        // layouts (the caller filters identities back to v1), and a
        // non-identity permutation always carries its mapping.
        let phys_to_orig = meta.perm.phys_to_orig().expect("non-identity layout");
        if phys_to_orig.len() != index.num_vertices() {
            return Err(BlazeError::Format(format!(
                "layout covers {} vertices, index has {}",
                phys_to_orig.len(),
                index.num_vertices()
            )));
        }
        f.write_all(&[meta.kind.tag()])?;
        f.write_all(&meta.hot_vertices.to_le_bytes())?;
        for &o in phys_to_orig {
            f.write_all(&o.to_le_bytes())?;
        }
    }
    f.flush()?;
    Ok(())
}

/// Reads a `.gr.index` file back into a [`GraphIndex`], ignoring any layout
/// section. Prefer [`read_index_file_full`] when translation matters.
pub fn read_index_file(path: impl AsRef<Path>) -> Result<GraphIndex> {
    read_index_file_full(path).map(|(index, _)| index)
}

/// Reads a `.gr.index` file (either version) into the index plus the layout
/// metadata, `None` for version-1 files.
pub fn read_index_file_full(path: impl AsRef<Path>) -> Result<(GraphIndex, Option<LayoutMeta>)> {
    let file = std::fs::File::open(path)?;
    let file_len = file.metadata()?.len();
    let mut f = std::io::BufReader::new(file);
    let mut magic = [0u8; 8];
    f.read_exact(&mut magic)?;
    let has_layout = match &magic {
        m if m == INDEX_MAGIC => false,
        m if m == INDEX_MAGIC_V2 => true,
        _ => return Err(BlazeError::Format("bad index magic".into())),
    };
    let mut u64buf = [0u8; 8];
    f.read_exact(&mut u64buf)?;
    let num_vertices = u64::from_le_bytes(u64buf) as usize;
    f.read_exact(&mut u64buf)?;
    let num_edges = u64::from_le_bytes(u64buf);
    // Validate the header against the file size *before* allocating the
    // degree array: a corrupted vertex count must not trigger a huge
    // allocation or a short read. Version 2 carries 9 extra header bytes
    // (layout tag + hot count) plus one u32 per vertex for the permutation.
    let payload = (num_vertices as u64).saturating_mul(if has_layout { 8 } else { 4 });
    let expected_len = (if has_layout { 33u64 } else { 24u64 }).saturating_add(payload);
    if file_len != expected_len {
        return Err(BlazeError::Format(format!(
            "index file length {file_len} does not match header ({num_vertices} vertices \
             need {expected_len} bytes)"
        )));
    }
    let mut degrees = vec![0u32; num_vertices];
    let mut u32buf = [0u8; 4];
    for d in &mut degrees {
        f.read_exact(&mut u32buf)?;
        *d = u32::from_le_bytes(u32buf);
    }
    let index = GraphIndex::from_degrees(degrees);
    if index.num_edges() != num_edges {
        return Err(BlazeError::Format(format!(
            "index edge count mismatch: header {num_edges}, degrees sum {}",
            index.num_edges()
        )));
    }
    let meta = if has_layout {
        let mut tag = [0u8; 1];
        f.read_exact(&mut tag)?;
        let kind = VertexLayout::from_tag(tag[0])
            .ok_or_else(|| BlazeError::Format(format!("unknown layout tag {}", tag[0])))?;
        f.read_exact(&mut u64buf)?;
        let hot_vertices = u64::from_le_bytes(u64buf);
        if hot_vertices > num_vertices as u64 {
            return Err(BlazeError::Format(format!(
                "hot vertex count {hot_vertices} exceeds {num_vertices} vertices"
            )));
        }
        let mut phys_to_orig = vec![0 as VertexId; num_vertices];
        for o in &mut phys_to_orig {
            f.read_exact(&mut u32buf)?;
            *o = u32::from_le_bytes(u32buf);
        }
        Some(LayoutMeta {
            kind,
            hot_vertices,
            perm: VertexPermutation::from_phys_to_orig(phys_to_orig)?,
        })
    } else {
        None
    };
    Ok((index, meta))
}

/// Number of leading adjacency pages covered by the first `hot_vertices`
/// physical vertices. The boundary page is counted hot even when cold
/// vertices share it — a page is worth protecting if any hub lives there.
pub fn hot_page_count(index: &GraphIndex, hot_vertices: u64) -> u64 {
    if hot_vertices == 0 {
        return 0;
    }
    let nv = index.num_vertices() as u64;
    let hot_edges = if hot_vertices >= nv {
        index.num_edges()
    } else {
        index.edge_offset(hot_vertices as VertexId)
    };
    hot_edges.div_ceil(EDGES_PER_PAGE as u64)
}

/// Writes the artifact-style file set `{base}.index` plus
/// `{base}.adj.<i>` for `num_files` stripe files into `dir` — pass
/// `"name.gr"` for the out-edge set and `"name.tgr"` for the transpose, as
/// in the paper's artifact. Returns `(index_path, adj_paths)`.
pub fn save_files(
    g: &Csr,
    dir: impl AsRef<Path>,
    base: &str,
    num_files: usize,
) -> Result<(PathBuf, Vec<PathBuf>)> {
    save_files_with_layout(g, dir, base, num_files, None)
}

/// [`save_files`] for a graph already relabeled into physical id space:
/// `g` must be the *permuted* CSR and `meta` the layout that produced it.
/// `None` (or an identity permutation) writes the version-1 file set.
pub fn save_files_with_layout(
    g: &Csr,
    dir: impl AsRef<Path>,
    base: &str,
    num_files: usize,
    meta: Option<&LayoutMeta>,
) -> Result<(PathBuf, Vec<PathBuf>)> {
    let dir = dir.as_ref();
    let index_path = dir.join(format!("{base}.index"));
    write_index_file_with_layout(&index_path, &GraphIndex::from_csr(g), meta)?;
    let adj_paths: Vec<PathBuf> = (0..num_files)
        .map(|i| dir.join(format!("{base}.adj.{i}")))
        .collect();
    let devices: Vec<Arc<dyn BlockDevice>> = adj_paths
        .iter()
        .map(|p| FileDevice::create(p).map(|d| Arc::new(d) as Arc<dyn BlockDevice>))
        .collect::<Result<_>>()?;
    let storage = StripedStorage::new(devices)?;
    write_to_storage(g, &storage)?;
    Ok((index_path, adj_paths))
}

/// A disk-resident graph: striped adjacency pages plus in-memory metadata.
///
/// This is the graph handle the out-of-core engine operates on. It holds no
/// adjacency data in memory — only the [`GraphIndex`] (~4.5 B/vertex) and
/// the [`PageVertexMap`] (8 B/page).
pub struct DiskGraph {
    storage: Arc<StripedStorage>,
    index: GraphIndex,
    pagemap: PageVertexMap,
    /// Original ↔ physical id maps; identity for unreordered graphs. The
    /// engine and the decode path work purely in physical ids — only the
    /// algorithm API boundary consults this.
    layout: VertexPermutation,
}

impl DiskGraph {
    /// Writes `g` into `storage` and returns the handle. The common path for
    /// tests and benches. `g` is taken as-is (identity layout).
    pub fn create(g: &Csr, storage: Arc<StripedStorage>) -> Result<Self> {
        write_to_storage(g, &storage)?;
        let index = GraphIndex::from_csr(g);
        let pagemap = PageVertexMap::build(&index);
        let layout = VertexPermutation::identity(g.num_vertices());
        Ok(Self {
            storage,
            index,
            pagemap,
            layout,
        })
    }

    /// Plans `layout` for `g` (given in original ids), relabels it into
    /// physical id space, and writes the reordered stream into `storage`.
    /// The handle carries the permutation and the hot-page metadata.
    pub fn create_with_layout(
        g: &Csr,
        storage: Arc<StripedStorage>,
        layout: VertexLayout,
    ) -> Result<Self> {
        let (perm, hot_vertices) = layout.plan(g);
        let physical = perm.permute_csr(g);
        write_to_storage(&physical, &storage)?;
        let index = GraphIndex::from_csr(&physical);
        let mut pagemap = PageVertexMap::build(&index);
        pagemap.set_hot_pages(hot_page_count(&index, hot_vertices));
        Ok(Self {
            storage,
            index,
            pagemap,
            layout: perm,
        })
    }

    /// Opens a graph whose adjacency pages are already present in `storage`,
    /// loading metadata (including any layout section) from the given
    /// `.gr.index` file.
    pub fn open(index_path: impl AsRef<Path>, storage: Arc<StripedStorage>) -> Result<Self> {
        let (index, meta) = read_index_file_full(index_path)?;
        let mut pagemap = PageVertexMap::build(&index);
        let layout = match meta {
            Some(meta) => {
                pagemap.set_hot_pages(hot_page_count(&index, meta.hot_vertices));
                meta.perm
            }
            None => VertexPermutation::identity(index.num_vertices()),
        };
        Ok(Self {
            storage,
            index,
            pagemap,
            layout,
        })
    }

    /// Opens the artifact-style file set written by [`save_files`].
    pub fn open_files(index_path: impl AsRef<Path>, adj_paths: &[PathBuf]) -> Result<Self> {
        let devices: Vec<Arc<dyn BlockDevice>> = adj_paths
            .iter()
            .map(|p| FileDevice::open(p).map(|d| Arc::new(d) as Arc<dyn BlockDevice>))
            .collect::<Result<_>>()?;
        Self::open(index_path, Arc::new(StripedStorage::new(devices)?))
    }

    /// The device array holding the adjacency pages.
    pub fn storage(&self) -> &Arc<StripedStorage> {
        &self.storage
    }

    /// The in-memory index.
    pub fn index(&self) -> &GraphIndex {
        &self.index
    }

    /// The page → vertex map.
    pub fn pagemap(&self) -> &PageVertexMap {
        &self.pagemap
    }

    /// The original ↔ physical vertex permutation (identity when the graph
    /// was written without a layout).
    pub fn layout(&self) -> &VertexPermutation {
        &self.layout
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.index.num_vertices()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> u64 {
        self.index.num_edges()
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> u32 {
        self.index.degree(v)
    }

    /// Number of adjacency pages.
    pub fn num_pages(&self) -> u64 {
        self.pagemap.num_pages()
    }

    /// The inclusive page range holding `v`'s edges, or `None` if `v` has
    /// no edges.
    pub fn pages_of_vertex(&self, v: VertexId) -> Option<std::ops::RangeInclusive<PageId>> {
        let deg = self.index.degree(v) as u64;
        if deg == 0 {
            return None;
        }
        let off = self.index.edge_offset(v);
        Some(off / EDGES_PER_PAGE as u64..=(off + deg - 1) / EDGES_PER_PAGE as u64)
    }

    /// Size of the graph on disk (neighbor stream + degree array), the
    /// denominator of Figure 12.
    pub fn storage_bytes(&self) -> u64 {
        self.num_edges() * 4 + self.num_vertices() as u64 * 4
    }

    /// Memory used by the in-memory metadata (index + page map + layout).
    pub fn metadata_bytes(&self) -> u64 {
        self.index.memory_bytes() + self.pagemap.memory_bytes() + self.layout.memory_bytes()
    }

    /// Decodes one fetched page: calls `f(src, dsts)` for every vertex whose
    /// edges intersect page `page`, with `dsts` the *portion of its
    /// adjacency list stored in this page*.
    ///
    /// On little-endian targets with a 4-byte-aligned `data` buffer, `dsts`
    /// borrows the page bytes directly (the neighbor stream is stored as
    /// little-endian `u32` words, so an aligned reinterpret is the decoded
    /// list) and `scratch` is untouched. Otherwise each run is byte-decoded
    /// into `scratch` via the `fallback` module. Vertex metadata comes
    /// from a sequential [`IndexCursor`](crate::IndexCursor) instead of
    /// per-vertex `edge_offset` lookups.
    ///
    /// `data` must be the `PAGE_SIZE` bytes of page `page`.
    pub fn for_each_vertex_in_page<F>(
        &self,
        page: PageId,
        data: &[u8],
        scratch: &mut Vec<VertexId>,
        mut f: F,
    ) where
        F: FnMut(VertexId, &[VertexId]),
    {
        debug_assert_eq!(data.len(), PAGE_SIZE);
        let Some((begin, end)) = self.pagemap.vertices_in_page(page) else {
            return;
        };
        let page_first_edge = page * EDGES_PER_PAGE as u64;
        let page_last_edge = page_first_edge + EDGES_PER_PAGE as u64;
        let words = page_as_words(data);
        let mut cursor = self.index.cursor(begin);
        for v in begin..=end {
            let (deg, off) = cursor.advance();
            let deg = deg as u64;
            if deg == 0 {
                continue;
            }
            let lo = off.max(page_first_edge);
            let hi = (off + deg).min(page_last_edge);
            if lo >= hi {
                continue;
            }
            let word_lo = (lo - page_first_edge) as usize;
            let word_hi = (hi - page_first_edge) as usize;
            match words {
                Some(words) => f(v, &words[word_lo..word_hi]),
                None => {
                    fallback::decode_run(scratch, &data[word_lo * 4..word_hi * 4]);
                    f(v, scratch);
                }
            }
        }
    }

    /// The pre-optimization page decode: per-vertex `degree`/`edge_offset`
    /// index lookups and a byte-copy of every neighbor run into `scratch`.
    ///
    /// Semantically identical to [`for_each_vertex_in_page`]; kept as the
    /// "before" arm of the `compute_path` bench
    /// (`EngineOptions::bytewise_decode`) and as a behavior reference for
    /// the zero-copy path.
    ///
    /// [`for_each_vertex_in_page`]: Self::for_each_vertex_in_page
    pub fn for_each_vertex_in_page_bytewise<F>(
        &self,
        page: PageId,
        data: &[u8],
        scratch: &mut Vec<VertexId>,
        mut f: F,
    ) where
        F: FnMut(VertexId, &[VertexId]),
    {
        debug_assert_eq!(data.len(), PAGE_SIZE);
        let Some((begin, end)) = self.pagemap.vertices_in_page(page) else {
            return;
        };
        let page_first_edge = page * EDGES_PER_PAGE as u64;
        let page_last_edge = page_first_edge + EDGES_PER_PAGE as u64;
        for v in begin..=end {
            let deg = self.index.degree(v) as u64;
            if deg == 0 {
                continue;
            }
            let off = self.index.edge_offset(v);
            let lo = off.max(page_first_edge);
            let hi = (off + deg).min(page_last_edge);
            if lo >= hi {
                continue;
            }
            let byte_lo = ((lo - page_first_edge) * 4) as usize;
            let byte_hi = ((hi - page_first_edge) * 4) as usize;
            fallback::decode_run(scratch, &data[byte_lo..byte_hi]);
            f(v, scratch);
        }
    }

    /// Reads the full adjacency list of `v` from storage. Convenience for
    /// tests and examples; the engine never calls this.
    pub fn read_neighbors(&self, v: VertexId) -> Result<Vec<VertexId>> {
        let mut out = Vec::with_capacity(self.index.degree(v) as usize);
        let Some(pages) = self.pages_of_vertex(v) else {
            return Ok(out);
        };
        let mut buf = vec![0u8; PAGE_SIZE];
        let mut scratch = Vec::new();
        for p in pages {
            self.storage.read_page(p, &mut buf)?;
            self.for_each_vertex_in_page(p, &buf, &mut scratch, |src, dsts| {
                if src == v {
                    out.extend_from_slice(dsts);
                }
            });
        }
        Ok(out)
    }
}

/// Reinterprets a page buffer as its little-endian `u32` neighbor words.
///
/// Returns `None` when the buffer is not 4-byte aligned or the target is
/// big-endian (the on-disk words are little-endian, so a plain reinterpret
/// would byte-swap them); callers then decode through [`fallback`].
#[inline]
fn page_as_words(data: &[u8]) -> Option<&[u32]> {
    if cfg!(not(target_endian = "little"))
        || data.as_ptr().align_offset(std::mem::align_of::<u32>()) != 0
    {
        return None;
    }
    // SAFETY: the pointer is 4-byte aligned (checked above), the length is
    // rounded down to whole `u32` words, `u32` has no invalid bit patterns,
    // and the returned slice's lifetime is tied to `data`'s borrow.
    Some(unsafe { std::slice::from_raw_parts(data.as_ptr() as *const u32, data.len() / 4) })
}

impl std::fmt::Debug for DiskGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiskGraph")
            .field("num_vertices", &self.num_vertices())
            .field("num_edges", &self.num_edges())
            .field("num_pages", &self.num_pages())
            .field("num_devices", &self.storage.num_devices())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{rmat, uniform, RmatConfig};

    fn disk_graph(g: &Csr, devices: usize) -> DiskGraph {
        let storage = Arc::new(StripedStorage::in_memory(devices).unwrap());
        DiskGraph::create(g, storage).unwrap()
    }

    #[test]
    fn neighbors_round_trip_single_device() {
        let g = rmat(&RmatConfig::new(9));
        let dg = disk_graph(&g, 1);
        for v in (0..g.num_vertices() as VertexId).step_by(37) {
            assert_eq!(dg.read_neighbors(v).unwrap(), g.neighbors(v), "vertex {v}");
        }
    }

    #[test]
    fn neighbors_round_trip_striped() {
        let g = uniform(9, 12, 5);
        let dg = disk_graph(&g, 4);
        for v in (0..g.num_vertices() as VertexId).step_by(29) {
            assert_eq!(dg.read_neighbors(v).unwrap(), g.neighbors(v), "vertex {v}");
        }
    }

    #[test]
    fn every_edge_is_decoded_exactly_once() {
        let g = rmat(&RmatConfig::new(8));
        let dg = disk_graph(&g, 2);
        let mut total = 0u64;
        let mut buf = vec![0u8; PAGE_SIZE];
        let mut scratch = Vec::new();
        for p in 0..dg.num_pages() {
            dg.storage().read_page(p, &mut buf).unwrap();
            dg.for_each_vertex_in_page(p, &buf, &mut scratch, |src, dsts| {
                // Every decoded dst must be a real neighbor of src.
                for d in dsts {
                    assert!(g.neighbors(src).contains(d));
                }
                total += dsts.len() as u64;
            });
        }
        assert_eq!(total, g.num_edges());
    }

    /// Collects `(src, dsts)` pairs from one page decode.
    fn decode_page(
        dg: &DiskGraph,
        page: u64,
        data: &[u8],
        bytewise: bool,
    ) -> Vec<(VertexId, Vec<VertexId>)> {
        let mut out = Vec::new();
        let mut scratch = Vec::new();
        let collect = |src: VertexId, dsts: &[VertexId]| (src, dsts.to_vec());
        if bytewise {
            dg.for_each_vertex_in_page_bytewise(page, data, &mut scratch, |s, d| {
                out.push(collect(s, d))
            });
        } else {
            dg.for_each_vertex_in_page(page, data, &mut scratch, |s, d| out.push(collect(s, d)));
        }
        out
    }

    #[test]
    fn zero_copy_matches_bytewise_decode() {
        let g = rmat(&RmatConfig::new(8));
        let dg = disk_graph(&g, 2);
        let mut buf = vec![0u8; PAGE_SIZE];
        for p in 0..dg.num_pages() {
            dg.storage().read_page(p, &mut buf).unwrap();
            assert_eq!(
                decode_page(&dg, p, &buf, false),
                decode_page(&dg, p, &buf, true),
                "page {p}"
            );
        }
    }

    #[test]
    fn misaligned_buffer_decodes_correctly() {
        let g = rmat(&RmatConfig::new(7));
        let dg = disk_graph(&g, 1);
        let mut aligned = vec![0u8; PAGE_SIZE];
        // Stage the page at an odd offset so the aligned reinterpret cannot
        // apply and the byte-wise fallback must carry the decode.
        let mut shifted = vec![0u8; PAGE_SIZE + 1];
        for p in 0..dg.num_pages() {
            dg.storage().read_page(p, &mut aligned).unwrap();
            shifted[1..].copy_from_slice(&aligned);
            assert_eq!(
                decode_page(&dg, p, &shifted[1..], false),
                decode_page(&dg, p, &aligned, true),
                "page {p}"
            );
        }
    }

    #[test]
    fn pages_of_vertex_match_pagemap() {
        let g = rmat(&RmatConfig::new(8));
        let dg = disk_graph(&g, 1);
        for v in 0..g.num_vertices() as VertexId {
            match dg.pages_of_vertex(v) {
                None => assert_eq!(g.degree(v), 0),
                Some(pages) => {
                    for p in pages {
                        let (b, e) = dg.pagemap().vertices_in_page(p).unwrap();
                        assert!(b <= v && v <= e);
                    }
                }
            }
        }
    }

    #[test]
    fn file_round_trip() {
        let g = rmat(&RmatConfig::new(8));
        let dir = tempfile::tempdir().unwrap();
        let (index_path, adj_paths) = save_files(&g, dir.path(), "test.gr", 2).unwrap();
        assert_eq!(adj_paths.len(), 2);
        let dg = DiskGraph::open_files(&index_path, &adj_paths).unwrap();
        assert_eq!(dg.num_vertices(), g.num_vertices());
        assert_eq!(dg.num_edges(), g.num_edges());
        for v in (0..g.num_vertices() as VertexId).step_by(41) {
            assert_eq!(dg.read_neighbors(v).unwrap(), g.neighbors(v));
        }
    }

    #[test]
    fn index_file_rejects_corruption() {
        let g = rmat(&RmatConfig::new(6));
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("x.gr.index");
        write_index_file(&path, &GraphIndex::from_csr(&g)).unwrap();
        // Corrupt the magic.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] = b'X';
        std::fs::write(&path, &bytes).unwrap();
        assert!(read_index_file(&path).is_err());
    }

    #[test]
    fn identity_layout_writes_version_one_bytes() {
        let g = rmat(&RmatConfig::new(6));
        let dir = tempfile::tempdir().unwrap();
        let index = GraphIndex::from_csr(&g);
        let v1 = dir.path().join("v1.index");
        let via_meta = dir.path().join("meta.index");
        write_index_file(&v1, &index).unwrap();
        let meta = LayoutMeta {
            kind: VertexLayout::None,
            hot_vertices: 0,
            perm: VertexPermutation::identity(g.num_vertices()),
        };
        write_index_file_with_layout(&via_meta, &index, Some(&meta)).unwrap();
        assert_eq!(
            std::fs::read(&v1).unwrap(),
            std::fs::read(&via_meta).unwrap(),
            "identity layout must not change the file format"
        );
        let (_, read_meta) = read_index_file_full(&v1).unwrap();
        assert!(read_meta.is_none());
    }

    #[test]
    fn layout_file_round_trip() {
        let g = rmat(&RmatConfig::new(8));
        let (perm, hot) = VertexLayout::Degree.plan(&g);
        let physical = perm.permute_csr(&g);
        let meta = LayoutMeta {
            kind: VertexLayout::Degree,
            hot_vertices: hot,
            perm: perm.clone(),
        };
        let dir = tempfile::tempdir().unwrap();
        let (index_path, adj_paths) =
            save_files_with_layout(&physical, dir.path(), "test.gr", 2, Some(&meta)).unwrap();
        let dg = DiskGraph::open_files(&index_path, &adj_paths).unwrap();
        assert_eq!(dg.layout(), &perm);
        assert_eq!(
            dg.pagemap().hot_pages(),
            hot_page_count(dg.index(), hot),
            "hot page count recomputed at open"
        );
        assert!(dg.pagemap().hot_pages() > 0);
        // Neighbors, translated back to original ids, match the input.
        for v in (0..g.num_vertices() as VertexId).step_by(37) {
            let p = dg.layout().to_physical(v);
            let mut back: Vec<VertexId> = dg
                .read_neighbors(p)
                .unwrap()
                .iter()
                .map(|&d| dg.layout().to_original(d))
                .collect();
            back.sort_unstable();
            let mut orig = g.neighbors(v).to_vec();
            orig.sort_unstable();
            assert_eq!(back, orig, "vertex {v}");
        }
    }

    #[test]
    fn layout_index_rejects_truncation_and_bad_tags() {
        let g = rmat(&RmatConfig::new(6));
        let (perm, hot) = VertexLayout::Hub.plan(&g);
        let physical = perm.permute_csr(&g);
        let meta = LayoutMeta {
            kind: VertexLayout::Hub,
            hot_vertices: hot,
            perm,
        };
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("x.gr.index");
        write_index_file_with_layout(&path, &GraphIndex::from_csr(&physical), Some(&meta)).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        // Truncated permutation section.
        std::fs::write(&path, &bytes[..bytes.len() - 4]).unwrap();
        assert!(read_index_file_full(&path).is_err());
        // Unknown layout tag.
        let mut bad = bytes.clone();
        let tag_at = 24 + 4 * physical.num_vertices();
        bad[tag_at] = 7;
        std::fs::write(&path, &bad).unwrap();
        assert!(read_index_file_full(&path).is_err());
        // Pristine bytes still parse.
        std::fs::write(&path, &bytes).unwrap();
        assert!(read_index_file_full(&path).unwrap().1.is_some());
    }

    #[test]
    fn create_with_layout_matches_file_path() {
        let g = rmat(&RmatConfig::new(7));
        let storage = Arc::new(StripedStorage::in_memory(2).unwrap());
        let dg = DiskGraph::create_with_layout(&g, storage, VertexLayout::Degree).unwrap();
        assert!(!dg.layout().is_identity());
        assert!(dg.pagemap().hot_pages() > 0);
        // Physical vertex 0 carries the max degree.
        let max_deg = (0..g.num_vertices() as VertexId)
            .map(|v| g.degree(v))
            .max()
            .unwrap();
        assert_eq!(dg.degree(0), max_deg);
    }

    #[test]
    fn metadata_is_small_relative_to_graph() {
        let g = rmat(&RmatConfig::new(12));
        let dg = disk_graph(&g, 1);
        let ratio = dg.metadata_bytes() as f64 / dg.storage_bytes() as f64;
        assert!(ratio < 0.15, "metadata ratio {ratio}");
    }
}
