//! Byte-copy adjacency decode — the endian/alignment fallback.
//!
//! The scatter hot path reinterprets page bytes as an aligned `&[u32]` and
//! hands sub-slices straight to the per-vertex callback (see
//! [`DiskGraph::for_each_vertex_in_page`]). That reinterpret is only valid
//! on little-endian targets when the page buffer is 4-byte aligned; every
//! other combination decodes through this module instead, copying each
//! neighbor run into the caller's scratch vector one `u32::from_le_bytes`
//! at a time.
//!
//! This is the only module allowed to contain the `scratch.extend`
//! byte-copy pattern — `cargo xtask lint` rejects it anywhere else so the
//! slow path cannot quietly leak back into the hot loop.
//!
//! [`DiskGraph::for_each_vertex_in_page`]: crate::disk::DiskGraph::for_each_vertex_in_page

use blaze_types::VertexId;

/// Decodes `bytes` (a 4-byte-multiple neighbor run in little-endian page
/// layout) into `scratch`, replacing its previous contents.
#[inline]
pub(crate) fn decode_run(scratch: &mut Vec<VertexId>, bytes: &[u8]) {
    debug_assert_eq!(bytes.len() % 4, 0);
    scratch.clear();
    scratch.extend(
        bytes
            .chunks_exact(4)
            .map(|c| VertexId::from_le_bytes([c[0], c[1], c[2], c[3]])),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_little_endian_runs() {
        let mut bytes = Vec::new();
        for v in [0u32, 1, 7, u32::MAX] {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let mut scratch = vec![99; 2];
        decode_run(&mut scratch, &bytes);
        assert_eq!(scratch, vec![0, 1, 7, u32::MAX]);
    }

    #[test]
    fn empty_run_clears_scratch() {
        let mut scratch = vec![5, 6];
        decode_run(&mut scratch, &[]);
        assert!(scratch.is_empty());
    }
}
