//! Synthetic graph generators.
//!
//! The paper evaluates on three synthetic graphs (rmat27, rmat30, uran27) and
//! four real graphs. The synthetic generators here are faithful; the real
//! graphs are *stand-ins* generated to match the topological properties the
//! paper's phenomena depend on — degree distribution (power-law vs uniform)
//! and locality — at a reduced scale (see `datasets`).

use blaze_types::{SplitMix64, VertexId};

use crate::builder::GraphBuilder;
use crate::csr::Csr;

/// R-MAT recursive matrix generator (Chakrabarti et al.), the generator
/// behind the paper's rmat27/rmat30 graphs. Produces a power-law degree
/// distribution for the default `(a, b, c, d) = (0.57, 0.19, 0.19, 0.05)`.
#[derive(Debug, Clone)]
pub struct RmatConfig {
    /// log2 of the vertex count.
    pub scale: u32,
    /// Edges per vertex.
    pub edge_factor: usize,
    /// Quadrant probabilities; must sum to ~1.
    pub a: f64,
    pub b: f64,
    pub c: f64,
    /// Random seed for reproducibility.
    pub seed: u64,
}

impl RmatConfig {
    /// Graph500-style defaults at the given scale.
    pub fn new(scale: u32) -> Self {
        Self {
            scale,
            edge_factor: 16,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            seed: 42,
        }
    }

    /// Sets the edge factor.
    pub fn edge_factor(mut self, ef: usize) -> Self {
        self.edge_factor = ef;
        self
    }

    /// Sets the seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets skew: larger `a` concentrates edges on low-id vertices.
    pub fn skew(mut self, a: f64, b: f64, c: f64) -> Self {
        self.a = a;
        self.b = b;
        self.c = c;
        self
    }
}

/// Generates one R-MAT edge endpoint pair.
fn rmat_edge(rng: &mut SplitMix64, scale: u32, a: f64, b: f64, c: f64) -> (VertexId, VertexId) {
    let (mut src, mut dst) = (0u64, 0u64);
    for _ in 0..scale {
        src <<= 1;
        dst <<= 1;
        let r: f64 = rng.next_f64();
        if r < a {
            // top-left quadrant: no bits set
        } else if r < a + b {
            dst |= 1;
        } else if r < a + b + c {
            src |= 1;
        } else {
            src |= 1;
            dst |= 1;
        }
    }
    (src as VertexId, dst as VertexId)
}

/// Generates an R-MAT graph (deduplicated, self-loops removed).
pub fn rmat(config: &RmatConfig) -> Csr {
    let n = 1usize << config.scale;
    let m = n * config.edge_factor;
    let mut rng = SplitMix64::seed_from_u64(config.seed);
    let mut b = GraphBuilder::new(n).dedup(true).drop_self_loops(true);
    for _ in 0..m {
        let (s, d) = rmat_edge(&mut rng, config.scale, config.a, config.b, config.c);
        b.add_edge(s, d);
    }
    b.build()
}

/// Generates a uniform-random (Erdős–Rényi-style) graph — the paper's
/// uran27: no popular vertices, no spatial locality, the adversarial extreme.
pub fn uniform(scale: u32, edge_factor: usize, seed: u64) -> Csr {
    let n = 1usize << scale;
    let m = n * edge_factor;
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n).dedup(true).drop_self_loops(true);
    for _ in 0..m {
        let s = rng.below(n as u64) as VertexId;
        let d = rng.below(n as u64) as VertexId;
        b.add_edge(s, d);
    }
    b.build()
}

/// Relabels vertices in BFS visit order from the highest-degree vertex.
///
/// Web crawls like sk2005 number pages in crawl order, which places
/// neighbors near each other on disk (high spatial locality) and makes page
/// caches effective — the property that lets FlashGraph beat Blaze on sk2005
/// (Section V-B). Applying this relabeling to a power-law graph reproduces
/// that locality.
pub fn relabel_bfs_order(g: &Csr) -> Csr {
    let n = g.num_vertices();
    let root = (0..n as VertexId).max_by_key(|&v| g.degree(v)).unwrap_or(0);
    let mut order = vec![VertexId::MAX; n];
    let mut next_label: VertexId = 0;
    let mut queue = std::collections::VecDeque::new();
    // BFS from the hub; then sweep remaining unvisited vertices.
    let mut assign = |v: VertexId, order: &mut Vec<VertexId>| {
        order[v as usize] = next_label;
        next_label += 1;
    };
    assign(root, &mut order);
    queue.push_back(root);
    while let Some(v) = queue.pop_front() {
        for &d in g.neighbors(v) {
            if order[d as usize] == VertexId::MAX {
                assign(d, &mut order);
                queue.push_back(d);
            }
        }
    }
    for v in 0..n as VertexId {
        if order[v as usize] == VertexId::MAX {
            assign(v, &mut order);
        }
    }
    let mut b = GraphBuilder::new(n);
    for (s, d) in g.edges() {
        b.add_edge(order[s as usize], order[d as usize]);
    }
    b.build()
}

/// Randomly permutes vertex labels, destroying any locality the generator
/// introduced. Used for the friendster-like stand-in (social graphs have
/// essentially random vertex numbering).
pub fn shuffle_labels(g: &Csr, seed: u64) -> Csr {
    let n = g.num_vertices();
    let mut perm: Vec<VertexId> = (0..n as VertexId).collect();
    let mut rng = SplitMix64::seed_from_u64(seed);
    for i in (1..n).rev() {
        let j = rng.below_usize(i + 1);
        perm.swap(i, j);
    }
    let mut b = GraphBuilder::new(n);
    for (s, d) in g.edges() {
        b.add_edge(perm[s as usize], perm[d as usize]);
    }
    b.build()
}

/// Appends a bidirectional path of `tail` extra vertices, anchored at the
/// highest-degree vertex, stretching the graph's diameter by `tail` hops.
///
/// Real web/social graphs in the paper have diameters from 56 (friendster)
/// to 790 (hyperlink14) while plain R-MAT has ~10; a path tail reproduces
/// the long-diameter behaviour (many BFS iterations, small frontiers in the
/// tail) with a negligible edge-count perturbation.
pub fn with_path_tail(g: &Csr, tail: usize) -> Csr {
    let n = g.num_vertices();
    let hub = (0..n as VertexId).max_by_key(|&v| g.degree(v)).unwrap_or(0);
    let mut b = GraphBuilder::new(n + tail);
    b.extend(g.edges());
    let mut prev = hub;
    for i in 0..tail {
        let next = (n + i) as VertexId;
        b.add_edge(prev, next);
        b.add_edge(next, prev);
        prev = next;
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmat_is_deterministic() {
        let a = rmat(&RmatConfig::new(8));
        let b = rmat(&RmatConfig::new(8));
        assert_eq!(a, b);
    }

    #[test]
    fn rmat_has_power_law_skew() {
        let g = rmat(&RmatConfig::new(12));
        let n = g.num_vertices();
        let mean = g.num_edges() as f64 / n as f64;
        let max = (0..n as VertexId).map(|v| g.degree(v)).max().unwrap();
        assert!(
            max as f64 > 20.0 * mean,
            "rmat max degree {max} should dwarf mean {mean}"
        );
    }

    #[test]
    fn uniform_has_no_skew() {
        let g = uniform(12, 16, 7);
        let n = g.num_vertices();
        let mean = g.num_edges() as f64 / n as f64;
        let max = (0..n as VertexId).map(|v| g.degree(v)).max().unwrap();
        assert!(
            (max as f64) < 4.0 * mean,
            "uniform max degree {max} should stay near mean {mean}"
        );
    }

    #[test]
    fn generators_produce_simple_graphs() {
        for g in [rmat(&RmatConfig::new(8)), uniform(8, 8, 3)] {
            for v in 0..g.num_vertices() as VertexId {
                let ns = g.neighbors(v);
                assert!(ns.windows(2).all(|w| w[0] < w[1]), "sorted unique");
                assert!(!ns.contains(&v), "no self loops");
            }
        }
    }

    #[test]
    fn relabel_preserves_structure() {
        let g = rmat(&RmatConfig::new(8));
        let r = relabel_bfs_order(&g);
        assert_eq!(r.num_vertices(), g.num_vertices());
        assert_eq!(r.num_edges(), g.num_edges());
        // Degree multiset is invariant under relabeling.
        let mut dg: Vec<u32> = (0..g.num_vertices() as VertexId)
            .map(|v| g.degree(v))
            .collect();
        let mut dr: Vec<u32> = (0..r.num_vertices() as VertexId)
            .map(|v| r.degree(v))
            .collect();
        dg.sort_unstable();
        dr.sort_unstable();
        assert_eq!(dg, dr);
    }

    #[test]
    fn relabel_improves_locality() {
        // Mean |src - dst| gap should shrink after BFS relabeling.
        fn mean_gap(g: &Csr) -> f64 {
            let (mut sum, mut cnt) = (0f64, 0f64);
            for (s, d) in g.edges() {
                sum += (s as f64 - d as f64).abs();
                cnt += 1.0;
            }
            sum / cnt
        }
        let g = shuffle_labels(&rmat(&RmatConfig::new(10)), 5);
        let r = relabel_bfs_order(&g);
        assert!(
            mean_gap(&r) < 0.8 * mean_gap(&g),
            "bfs order gap {} vs shuffled {}",
            mean_gap(&r),
            mean_gap(&g)
        );
    }

    #[test]
    fn shuffle_preserves_degree_multiset() {
        let g = rmat(&RmatConfig::new(8));
        let s = shuffle_labels(&g, 11);
        let mut dg: Vec<u32> = (0..g.num_vertices() as VertexId)
            .map(|v| g.degree(v))
            .collect();
        let mut ds: Vec<u32> = (0..s.num_vertices() as VertexId)
            .map(|v| s.degree(v))
            .collect();
        dg.sort_unstable();
        ds.sort_unstable();
        assert_eq!(dg, ds);
    }

    #[test]
    fn path_tail_extends_vertices_and_chains() {
        let g = rmat(&RmatConfig::new(6));
        let n = g.num_vertices();
        let t = with_path_tail(&g, 10);
        assert_eq!(t.num_vertices(), n + 10);
        assert_eq!(t.num_edges(), g.num_edges() + 20);
        // Tail vertices form a path: middle ones have degree 2.
        assert_eq!(t.degree((n + 4) as VertexId), 2);
        assert_eq!(t.degree((n + 9) as VertexId), 1);
    }
}
