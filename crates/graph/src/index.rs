//! Indirection-based graph index (Figure 6).
//!
//! Blaze keeps one 4-byte degree per vertex, packed sixteen to a cache line,
//! plus one 8-byte edge offset per cache line. Looking up a vertex's edge
//! offset reads the line offset and sums the preceding degrees within the
//! line — at most fifteen additions, all within one cache line. Total memory
//! is ~4.5 bytes per vertex instead of the 8 bytes of a full offset array.

use blaze_types::{EdgeOffset, VertexId, DEGREES_PER_LINE};

use crate::csr::Csr;

/// The in-memory graph index of the semi-external model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphIndex {
    degrees: Vec<u32>,
    /// Edge offset of the first vertex of each 16-degree line.
    line_offsets: Vec<EdgeOffset>,
    num_edges: u64,
}

impl GraphIndex {
    /// Builds the index from a degree array.
    pub fn from_degrees(degrees: Vec<u32>) -> Self {
        let num_lines = degrees.len().div_ceil(DEGREES_PER_LINE);
        let mut line_offsets = Vec::with_capacity(num_lines);
        let mut running: u64 = 0;
        for (i, &d) in degrees.iter().enumerate() {
            if i % DEGREES_PER_LINE == 0 {
                line_offsets.push(running);
            }
            running += d as u64;
        }
        Self {
            degrees,
            line_offsets,
            num_edges: running,
        }
    }

    /// Builds the index for `g`.
    pub fn from_csr(g: &Csr) -> Self {
        let degrees = (0..g.num_vertices() as VertexId)
            .map(|v| g.degree(v))
            .collect();
        Self::from_degrees(degrees)
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.degrees.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> u64 {
        self.num_edges
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> u32 {
        self.degrees[v as usize]
    }

    /// The raw degree array.
    pub fn degrees(&self) -> &[u32] {
        &self.degrees
    }

    /// Edge offset of `v`: line offset plus the sum of preceding degrees
    /// within the line (the indirection lookup of Figure 6).
    #[inline]
    pub fn edge_offset(&self, v: VertexId) -> EdgeOffset {
        let v = v as usize;
        let line = v / DEGREES_PER_LINE;
        let line_start = line * DEGREES_PER_LINE;
        let within: u64 = self.degrees[line_start..v].iter().map(|&d| d as u64).sum();
        self.line_offsets[line] + within
    }

    /// Bytes of memory this index occupies (the Figure 12 accounting).
    pub fn memory_bytes(&self) -> u64 {
        (self.degrees.len() * 4 + self.line_offsets.len() * 8) as u64
    }

    /// Starts a sequential cursor at `begin`.
    ///
    /// [`edge_offset`](Self::edge_offset) re-sums up to fifteen preceding
    /// degrees on every call. The scatter hot loop visits the vertices of a
    /// page in order, so a cursor pays that cost once when seeded and then
    /// advances by plain accumulation, touching each packed-degree cache
    /// line once per [`DEGREES_PER_LINE`] vertices.
    #[inline]
    pub fn cursor(&self, begin: VertexId) -> IndexCursor<'_> {
        IndexCursor {
            index: self,
            next: begin as usize,
            offset: if (begin as usize) < self.degrees.len() {
                self.edge_offset(begin)
            } else {
                self.num_edges
            },
        }
    }
}

/// Sequential `(degree, edge_offset)` reader over a [`GraphIndex`].
///
/// Produced by [`GraphIndex::cursor`]; each [`advance`](IndexCursor::advance)
/// call yields the degree and edge offset of the next vertex in id order.
#[derive(Debug)]
pub struct IndexCursor<'a> {
    index: &'a GraphIndex,
    /// Vertex the next `advance()` call describes.
    next: usize,
    /// Edge offset of `self.next`, maintained by accumulation.
    offset: EdgeOffset,
}

impl IndexCursor<'_> {
    /// Degree and edge offset of the current vertex; advances the cursor.
    #[inline]
    pub fn advance(&mut self) -> (u32, EdgeOffset) {
        let deg = self.index.degrees[self.next];
        let off = self.offset;
        self.next += 1;
        self.offset += deg as u64;
        // Cross-check the running sum against the per-line offsets each time
        // the cursor enters a new packed-degree line.
        debug_assert!(
            !self.next.is_multiple_of(DEGREES_PER_LINE)
                || self.next / DEGREES_PER_LINE >= self.index.line_offsets.len()
                || self.offset == self.index.line_offsets[self.next / DEGREES_PER_LINE],
            "cursor offset diverged at vertex {}",
            self.next
        );
        (deg, off)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{rmat, RmatConfig};

    #[test]
    fn matches_plain_prefix_sum() {
        let g = rmat(&RmatConfig::new(10));
        let idx = GraphIndex::from_csr(&g);
        assert_eq!(idx.num_vertices(), g.num_vertices());
        assert_eq!(idx.num_edges(), g.num_edges());
        for v in 0..g.num_vertices() as VertexId {
            assert_eq!(idx.degree(v), g.degree(v), "degree of {v}");
            assert_eq!(idx.edge_offset(v), g.edge_offset(v), "offset of {v}");
        }
    }

    #[test]
    fn handles_non_multiple_of_sixteen() {
        let degrees = vec![3u32; 21];
        let idx = GraphIndex::from_degrees(degrees);
        assert_eq!(idx.num_edges(), 63);
        assert_eq!(idx.edge_offset(16), 48);
        assert_eq!(idx.edge_offset(20), 60);
    }

    #[test]
    fn cursor_matches_edge_offset() {
        let g = rmat(&RmatConfig::new(9));
        let idx = GraphIndex::from_csr(&g);
        for start in [0u32, 1, 15, 16, 17, 100] {
            let mut cur = idx.cursor(start);
            for v in start..idx.num_vertices() as VertexId {
                let (deg, off) = cur.advance();
                assert_eq!(deg, idx.degree(v), "degree of {v} from {start}");
                assert_eq!(off, idx.edge_offset(v), "offset of {v} from {start}");
            }
        }
    }

    #[test]
    fn cursor_handles_non_multiple_of_sixteen() {
        let idx = GraphIndex::from_degrees(vec![3u32; 21]);
        let mut cur = idx.cursor(0);
        for v in 0..21 {
            assert_eq!(cur.advance(), (3, v * 3));
        }
    }

    #[test]
    fn empty_index() {
        let idx = GraphIndex::from_degrees(Vec::new());
        assert_eq!(idx.num_vertices(), 0);
        assert_eq!(idx.num_edges(), 0);
        assert_eq!(idx.memory_bytes(), 0);
    }

    #[test]
    fn memory_is_about_4_5_bytes_per_vertex() {
        let idx = GraphIndex::from_degrees(vec![1; 16000]);
        let per_vertex = idx.memory_bytes() as f64 / 16000.0;
        assert!(
            (4.4..4.6).contains(&per_vertex),
            "bytes/vertex {per_vertex}"
        );
    }
}
