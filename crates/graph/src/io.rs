//! Plain-text and binary edge-list readers/writers, so real-world graphs
//! (SNAP dumps, `.tsv` crawls) can be converted into the Blaze on-disk
//! format.

use std::io::{BufRead, BufWriter, Read, Write};
use std::path::Path;

use blaze_types::{BlazeError, Result, VertexId};

use crate::builder::GraphBuilder;
use crate::csr::Csr;

/// Parses a whitespace-separated text edge list (`src dst` per line).
///
/// Lines starting with `#` or `%` are comments (SNAP and Matrix-Market
/// conventions). Vertex ids may be sparse; the graph is sized to the
/// maximum id seen. Duplicate edges and self-loops are preserved unless
/// `dedup` is set.
pub fn read_edge_list_text<R: Read>(reader: R, dedup: bool) -> Result<Csr> {
    let reader = std::io::BufReader::new(reader);
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    let mut max_id: u64 = 0;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut fields = trimmed.split_whitespace();
        let (Some(s), Some(d)) = (fields.next(), fields.next()) else {
            return Err(BlazeError::Format(format!(
                "line {}: expected `src dst`, got {trimmed:?}",
                lineno + 1
            )));
        };
        let parse = |tok: &str| -> Result<VertexId> {
            tok.parse::<u64>()
                .map_err(|e| {
                    BlazeError::Format(format!("line {}: bad vertex id {tok:?}: {e}", lineno + 1))
                })
                .and_then(|v| {
                    VertexId::try_from(v).map_err(|_| {
                        BlazeError::Format(format!(
                            "line {}: vertex id {v} exceeds the 32-bit id space",
                            lineno + 1
                        ))
                    })
                })
        };
        let (s, d) = (parse(s)?, parse(d)?);
        max_id = max_id.max(s as u64).max(d as u64);
        edges.push((s, d));
    }
    let n = if edges.is_empty() {
        0
    } else {
        max_id as usize + 1
    };
    let mut b = GraphBuilder::new(n).dedup(dedup);
    b.extend(edges);
    Ok(b.build())
}

/// Reads a text edge list from a file path.
pub fn read_edge_list_file(path: impl AsRef<Path>, dedup: bool) -> Result<Csr> {
    read_edge_list_text(std::fs::File::open(path)?, dedup)
}

/// Writes `g` as a text edge list (one `src dst` per line, `#` header).
pub fn write_edge_list_text<W: Write>(g: &Csr, writer: W) -> Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    )?;
    for (s, d) in g.edges() {
        writeln!(w, "{s} {d}")?;
    }
    w.flush()?;
    Ok(())
}

/// Binary edge list: little-endian `(u32 src, u32 dst)` pairs after an
/// 8-byte header holding the edge count — the compact interchange format
/// the converter uses for large inputs.
pub fn write_edge_list_binary<W: Write>(g: &Csr, writer: W) -> Result<()> {
    let mut w = BufWriter::new(writer);
    w.write_all(&g.num_edges().to_le_bytes())?;
    for (s, d) in g.edges() {
        w.write_all(&s.to_le_bytes())?;
        w.write_all(&d.to_le_bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// Reads the binary edge-list format written by [`write_edge_list_binary`].
pub fn read_edge_list_binary<R: Read>(reader: R, dedup: bool) -> Result<Csr> {
    let mut r = std::io::BufReader::new(reader);
    let mut header = [0u8; 8];
    r.read_exact(&mut header)?;
    let m = u64::from_le_bytes(header);
    let mut edges = Vec::with_capacity(m.min(1 << 24) as usize);
    let mut rec = [0u8; 8];
    let mut max_id = 0u32;
    for i in 0..m {
        r.read_exact(&mut rec).map_err(|e| {
            BlazeError::Format(format!("edge {i}/{m}: truncated binary edge list: {e}"))
        })?;
        let s = u32::from_le_bytes([rec[0], rec[1], rec[2], rec[3]]);
        let d = u32::from_le_bytes([rec[4], rec[5], rec[6], rec[7]]);
        max_id = max_id.max(s).max(d);
        edges.push((s, d));
    }
    let n = if edges.is_empty() {
        0
    } else {
        max_id as usize + 1
    };
    let mut b = GraphBuilder::new(n).dedup(dedup);
    b.extend(edges);
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{rmat, RmatConfig};

    #[test]
    fn text_round_trip() {
        let g = rmat(&RmatConfig::new(7));
        let mut buf = Vec::new();
        write_edge_list_text(&g, &mut buf).unwrap();
        let back = read_edge_list_text(&buf[..], false).unwrap();
        assert_eq!(back.num_edges(), g.num_edges());
        let mut a: Vec<_> = g.edges().collect();
        let mut b: Vec<_> = back.edges().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn binary_round_trip() {
        let g = rmat(&RmatConfig::new(7));
        let mut buf = Vec::new();
        write_edge_list_binary(&g, &mut buf).unwrap();
        let back = read_edge_list_binary(&buf[..], false).unwrap();
        let mut a: Vec<_> = g.edges().collect();
        let mut b: Vec<_> = back.edges().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = "# snap header\n% mm header\n\n0 1\n1 2\n\n2 0\n";
        let g = read_edge_list_text(text.as_bytes(), false).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.neighbors(0), &[1]);
    }

    #[test]
    fn dedup_collapses_duplicates() {
        let text = "0 1\n0 1\n0 1\n";
        let g = read_edge_list_text(text.as_bytes(), true).unwrap();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn malformed_lines_are_rejected_with_line_numbers() {
        let err = read_edge_list_text("0 1\nhello\n".as_bytes(), false).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        let err = read_edge_list_text("0\n".as_bytes(), false).unwrap_err();
        assert!(err.to_string().contains("expected"), "{err}");
        let err = read_edge_list_text("0 99999999999\n".as_bytes(), false).unwrap_err();
        assert!(err.to_string().contains("32-bit"), "{err}");
    }

    #[test]
    fn truncated_binary_is_rejected() {
        let g = rmat(&RmatConfig::new(6));
        let mut buf = Vec::new();
        write_edge_list_binary(&g, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        let err = read_edge_list_binary(&buf[..], false).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
    }

    #[test]
    fn empty_inputs_give_empty_graphs() {
        let g = read_edge_list_text("# nothing\n".as_bytes(), false).unwrap();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }
}
