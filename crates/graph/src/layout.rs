//! Degree-aware physical vertex layout (ROADMAP open item 3).
//!
//! Blaze's page-interleaved CSR inherits whatever vertex order the dataset
//! ships with, so high-degree hubs end up scattered across the adjacency
//! stream and the clock cache keeps evicting the pages that matter most.
//! This module introduces the *physical* vertex id space: a
//! [`VertexPermutation`] maps original ids (what callers pass in and read
//! out) to physical ids (the order vertices are packed on disk), and a
//! [`VertexLayout`] plans orderings that cluster hubs into a contiguous
//! **hot prefix** of the stream:
//!
//! * **`degree`** — every vertex sorted by descending degree (ties broken
//!   by original id, so the plan is deterministic). Maximally packs heavy
//!   adjacency lists into the leading pages.
//! * **`hub`** — only the hubs (degree ≥ 2× mean, capped at a quarter of
//!   the vertices) are pulled to the front in degree order; the cold tail
//!   keeps its original relative order, preserving whatever locality the
//!   input labeling already had (e.g. crawl order).
//!
//! Both plans report `hot_vertices`, the length of the hub prefix; the disk
//! layer turns that into a hot *page* count recorded in
//! [`PageVertexMap`](crate::PageVertexMap) metadata, which the storage-side
//! clock cache uses for heat-informed admission.
//!
//! The identity permutation is a zero-cost fast path: it stores only the
//! vertex count, translation is the identity function, and index files
//! written for identity layouts are byte-identical to the pre-layout
//! format.

use blaze_types::{BlazeError, Result, VertexId};

use crate::csr::Csr;

/// Which physical ordering to apply when building a graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VertexLayout {
    /// Keep the original vertex order (identity permutation, no hot region).
    #[default]
    None,
    /// Sort all vertices by descending degree.
    Degree,
    /// Pull hub vertices to the front; the tail keeps its original order.
    Hub,
}

impl VertexLayout {
    /// Parses a `--layout` flag value. Accepts `degree`, `hub`, `none`.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "none" => Some(Self::None),
            "degree" => Some(Self::Degree),
            "hub" => Some(Self::Hub),
            _ => None,
        }
    }

    /// The flag spelling of this layout (inverse of [`parse`](Self::parse)).
    pub fn name(self) -> &'static str {
        match self {
            Self::None => "none",
            Self::Degree => "degree",
            Self::Hub => "hub",
        }
    }

    /// The on-disk tag byte for index files (0 = none, 1 = degree, 2 = hub).
    pub fn tag(self) -> u8 {
        match self {
            Self::None => 0,
            Self::Degree => 1,
            Self::Hub => 2,
        }
    }

    /// Inverse of [`tag`](Self::tag).
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(Self::None),
            1 => Some(Self::Degree),
            2 => Some(Self::Hub),
            _ => None,
        }
    }

    /// Plans this layout for `g`: returns the permutation plus
    /// `hot_vertices`, the number of leading physical ids considered hot.
    ///
    /// The plan is deterministic (ties broken by original id) and degrades
    /// to the identity permutation when the ordering would not move any
    /// vertex — e.g. `Degree` on an already degree-sorted graph.
    pub fn plan(self, g: &Csr) -> (VertexPermutation, u64) {
        let n = g.num_vertices();
        if self == Self::None || n == 0 {
            return (VertexPermutation::identity(n), 0);
        }
        let hubs = hub_count(g);
        let phys_to_orig: Vec<VertexId> = match self {
            Self::None => unreachable!("handled above"),
            Self::Degree => {
                let mut order: Vec<VertexId> = (0..n as VertexId).collect();
                // Stable sort + ascending-id tie break: deterministic plan.
                order.sort_by_key(|&v| (std::cmp::Reverse(g.degree(v)), v));
                order
            }
            Self::Hub => {
                let mut hub_ids: Vec<VertexId> = (0..n as VertexId).collect();
                hub_ids.sort_by_key(|&v| (std::cmp::Reverse(g.degree(v)), v));
                hub_ids.truncate(hubs);
                let mut is_hub = vec![false; n];
                for &v in &hub_ids {
                    is_hub[v as usize] = true;
                }
                hub_ids.extend((0..n as VertexId).filter(|&v| !is_hub[v as usize]));
                hub_ids
            }
        };
        // panic-audit: both plans emit each vertex id exactly once (a sort
        // or a partition of 0..n), so validation can only fail on a planner
        // bug — that must surface, not round-trip as an IO error.
        let perm = VertexPermutation::from_phys_to_orig(phys_to_orig)
            .expect("planned order is a bijection");
        (perm, hubs as u64)
    }
}

/// Hub criterion shared by both reordering plans: degree at least twice the
/// mean, never more than a quarter of all vertices. The cap keeps the hot
/// prefix a genuine minority so protecting it in the cache is meaningful.
fn hub_count(g: &Csr) -> usize {
    let n = g.num_vertices();
    if n == 0 || g.num_edges() == 0 {
        return 0;
    }
    let threshold = (2 * g.num_edges()).div_ceil(n as u64).max(1);
    let heavy = (0..n as VertexId)
        .filter(|&v| g.degree(v) as u64 >= threshold)
        .count();
    heavy.min(n / 4).max(usize::from(heavy > 0))
}

/// A bijection between original vertex ids (the caller-facing space) and
/// physical vertex ids (the on-disk packing order).
///
/// `Identity` is the zero-cost fast path: no arrays, translation returns
/// its argument, and `is_identity()` lets boundary code skip output
/// translation entirely.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VertexPermutation {
    /// Physical id == original id for all `n` vertices.
    Identity(usize),
    /// A genuine reordering, stored in both directions for O(1) lookup.
    Mapped {
        /// `orig_to_phys[orig] == phys`.
        orig_to_phys: Vec<VertexId>,
        /// `phys_to_orig[phys] == orig`.
        phys_to_orig: Vec<VertexId>,
    },
}

impl VertexPermutation {
    /// The identity permutation over `n` vertices.
    pub fn identity(n: usize) -> Self {
        Self::Identity(n)
    }

    /// Builds a permutation from its physical→original map, validating that
    /// it is a bijection. Collapses to `Identity` when every id maps to
    /// itself, so callers get the fast path without checking themselves.
    pub fn from_phys_to_orig(phys_to_orig: Vec<VertexId>) -> Result<Self> {
        let n = phys_to_orig.len();
        if phys_to_orig
            .iter()
            .enumerate()
            .all(|(p, &o)| p as u64 == o as u64)
        {
            return Ok(Self::Identity(n));
        }
        let mut orig_to_phys = vec![VertexId::MAX; n];
        for (phys, &orig) in phys_to_orig.iter().enumerate() {
            let slot = orig_to_phys.get_mut(orig as usize).ok_or_else(|| {
                BlazeError::Format(format!("layout maps to vertex {orig} >= {n}"))
            })?;
            if *slot != VertexId::MAX {
                return Err(BlazeError::Format(format!(
                    "layout is not a bijection: vertex {orig} appears twice"
                )));
            }
            *slot = phys as VertexId;
        }
        Ok(Self::Mapped {
            orig_to_phys,
            phys_to_orig,
        })
    }

    /// Number of vertices the permutation covers.
    pub fn len(&self) -> usize {
        match self {
            Self::Identity(n) => *n,
            Self::Mapped { phys_to_orig, .. } => phys_to_orig.len(),
        }
    }

    /// Whether the permutation covers zero vertices.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether this is the identity (boundary code skips translation).
    #[inline]
    pub fn is_identity(&self) -> bool {
        matches!(self, Self::Identity(_))
    }

    /// Original → physical id.
    #[inline]
    pub fn to_physical(&self, orig: VertexId) -> VertexId {
        match self {
            Self::Identity(_) => orig,
            Self::Mapped { orig_to_phys, .. } => orig_to_phys[orig as usize],
        }
    }

    /// Physical → original id.
    #[inline]
    pub fn to_original(&self, phys: VertexId) -> VertexId {
        match self {
            Self::Identity(_) => phys,
            Self::Mapped { phys_to_orig, .. } => phys_to_orig[phys as usize],
        }
    }

    /// The physical→original map for persistence, or `None` for identity.
    pub fn phys_to_orig(&self) -> Option<&[VertexId]> {
        match self {
            Self::Identity(_) => None,
            Self::Mapped { phys_to_orig, .. } => Some(phys_to_orig),
        }
    }

    /// Relabels `g` into physical id space: vertex `p` of the result holds
    /// the (translated, re-sorted) adjacency list of `to_original(p)`.
    /// Neighbor lists are sorted ascending so the on-disk stream is
    /// deterministic regardless of the input's neighbor order.
    pub fn permute_csr(&self, g: &Csr) -> Csr {
        assert_eq!(
            g.num_vertices(),
            self.len(),
            "permutation/graph size mismatch"
        );
        if self.is_identity() {
            return g.clone();
        }
        let n = g.num_vertices();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u64);
        let mut running = 0u64;
        for p in 0..n as VertexId {
            running += g.degree(self.to_original(p)) as u64;
            offsets.push(running);
        }
        let mut neighbors = Vec::with_capacity(g.num_edges() as usize);
        for p in 0..n as VertexId {
            let start = neighbors.len();
            neighbors.extend(
                g.neighbors(self.to_original(p))
                    .iter()
                    .map(|&d| self.to_physical(d)),
            );
            neighbors[start..].sort_unstable();
        }
        Csr::from_parts(offsets, neighbors)
    }

    /// Memory held by the translation arrays (identity holds none).
    pub fn memory_bytes(&self) -> u64 {
        match self {
            Self::Identity(_) => 0,
            Self::Mapped { phys_to_orig, .. } => (phys_to_orig.len() * 2 * 4) as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{rmat, RmatConfig};
    use crate::GraphBuilder;

    fn star_plus_chain() -> Csr {
        // Vertex 5 is a hub (degree 6); the rest form a sparse chain.
        let mut b = GraphBuilder::new(8);
        for d in 0..6 {
            b.add_edge(5, d);
        }
        for v in 0..7 {
            b.add_edge(v, v + 1);
        }
        b.build()
    }

    #[test]
    fn parse_and_name_round_trip() {
        for l in [VertexLayout::None, VertexLayout::Degree, VertexLayout::Hub] {
            assert_eq!(VertexLayout::parse(l.name()), Some(l));
            assert_eq!(VertexLayout::from_tag(l.tag()), Some(l));
        }
        assert_eq!(VertexLayout::parse("bogus"), None);
        assert_eq!(VertexLayout::from_tag(9), None);
    }

    #[test]
    fn none_layout_is_identity_with_no_hot_region() {
        let g = star_plus_chain();
        let (perm, hot) = VertexLayout::None.plan(&g);
        assert!(perm.is_identity());
        assert_eq!(perm.len(), 8);
        assert_eq!(hot, 0);
    }

    #[test]
    fn degree_layout_sorts_descending_with_stable_ties() {
        let g = star_plus_chain();
        let (perm, hot) = VertexLayout::Degree.plan(&g);
        assert!(hot >= 1);
        let degs: Vec<u32> = (0..8).map(|p| g.degree(perm.to_original(p))).collect();
        assert!(degs.windows(2).all(|w| w[0] >= w[1]), "{degs:?}");
        assert_eq!(perm.to_original(0), 5, "the hub leads the physical order");
        // Equal-degree vertices keep ascending original order.
        for w in (0..8u32).collect::<Vec<_>>().windows(2) {
            if g.degree(perm.to_original(w[0])) == g.degree(perm.to_original(w[1])) {
                assert!(perm.to_original(w[0]) < perm.to_original(w[1]));
            }
        }
    }

    #[test]
    fn hub_layout_keeps_cold_tail_in_original_order() {
        let g = star_plus_chain();
        let (perm, hot) = VertexLayout::Hub.plan(&g);
        assert!((1..=2).contains(&hot), "hub prefix capped at n/4: {hot}");
        let tail: Vec<VertexId> = (hot as VertexId..8).map(|p| perm.to_original(p)).collect();
        let mut sorted = tail.clone();
        sorted.sort_unstable();
        assert_eq!(tail, sorted, "cold tail preserves original relative order");
    }

    #[test]
    fn round_trip_is_identity_on_rmat() {
        let g = rmat(&RmatConfig::new(8));
        for layout in [VertexLayout::Degree, VertexLayout::Hub] {
            let (perm, _) = layout.plan(&g);
            for v in 0..g.num_vertices() as VertexId {
                assert_eq!(perm.to_original(perm.to_physical(v)), v);
                assert_eq!(perm.to_physical(perm.to_original(v)), v);
            }
        }
    }

    #[test]
    fn from_phys_to_orig_rejects_non_bijections() {
        assert!(VertexPermutation::from_phys_to_orig(vec![0, 0, 1]).is_err());
        assert!(VertexPermutation::from_phys_to_orig(vec![0, 9]).is_err());
        assert!(VertexPermutation::from_phys_to_orig(vec![2, 0, 1]).is_ok());
    }

    #[test]
    fn trivial_map_collapses_to_identity() {
        let p = VertexPermutation::from_phys_to_orig(vec![0, 1, 2]).unwrap();
        assert!(p.is_identity());
        assert_eq!(p.memory_bytes(), 0);
        assert!(p.phys_to_orig().is_none());
    }

    #[test]
    fn permute_csr_preserves_edges_under_translation() {
        let g = rmat(&RmatConfig::new(7));
        let (perm, _) = VertexLayout::Degree.plan(&g);
        let pg = perm.permute_csr(&g);
        assert_eq!(pg.num_vertices(), g.num_vertices());
        assert_eq!(pg.num_edges(), g.num_edges());
        for v in 0..g.num_vertices() as VertexId {
            let p = perm.to_physical(v);
            let mut back: Vec<VertexId> = pg
                .neighbors(p)
                .iter()
                .map(|&d| perm.to_original(d))
                .collect();
            back.sort_unstable();
            let mut orig = g.neighbors(v).to_vec();
            orig.sort_unstable();
            assert_eq!(back, orig, "vertex {v}");
        }
    }

    #[test]
    fn permuted_adjacency_is_sorted() {
        let g = rmat(&RmatConfig::new(7));
        let (perm, _) = VertexLayout::Hub.plan(&g);
        let pg = perm.permute_csr(&g);
        for p in 0..pg.num_vertices() as VertexId {
            assert!(pg.neighbors(p).windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn empty_graph_plans_cleanly() {
        let g = Csr::empty(0);
        for layout in [VertexLayout::None, VertexLayout::Degree, VertexLayout::Hub] {
            let (perm, hot) = layout.plan(&g);
            assert!(perm.is_identity());
            assert_eq!(hot, 0);
        }
    }
}
