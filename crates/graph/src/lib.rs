//! Graph substrate for Blaze: in-memory CSR, synthetic graph generators, the
//! page-interleaved on-disk format, and the compact in-memory metadata
//! (indirection index + page→vertex map) of Section IV-F.
//!
//! The out-of-core engine never materializes the adjacency lists in memory;
//! it keeps only:
//!
//! * a [`GraphIndex`] — degrees packed 16-per-cache-line with one 64-bit
//!   offset per line (Figure 6), ~4.5 bytes per vertex;
//! * a [`PageVertexMap`] — `(begin_vid, end_vid)` per 4 KiB page, 8 bytes
//!   per page;
//!
//! while the neighbor stream lives on a [`StripedStorage`] array in 4 KiB
//! pages ([`DiskGraph`]).
//!
//! [`StripedStorage`]: blaze_storage::StripedStorage

pub mod builder;
pub mod csr;
pub mod datasets;
pub mod disk;
mod fallback;
pub mod gen;
pub mod index;
pub mod io;
pub mod layout;
pub mod pagemap;
pub mod stats;

pub use builder::GraphBuilder;
pub use csr::Csr;
pub use datasets::{Dataset, DatasetScale};
pub use disk::{write_to_storage, DiskGraph};
pub use index::{GraphIndex, IndexCursor};
pub use layout::{VertexLayout, VertexPermutation};
pub use pagemap::PageVertexMap;
pub use stats::{DegreeDistribution, GraphStats};
