//! Page → vertex map (Section IV-F).
//!
//! For each on-disk adjacency page, Blaze keeps the pair
//! `(begin_vertex_id, end_vertex_id)` of the vertices whose edges intersect
//! the page — 8 bytes per page. Scatter threads use it to decode a fetched
//! page without consulting any per-vertex structure beyond the index.

use blaze_types::{PageId, VertexId, EDGES_PER_PAGE};

use crate::index::GraphIndex;

/// Per-page vertex span of the adjacency stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageVertexMap {
    begin: Vec<VertexId>,
    end: Vec<VertexId>,
    /// Pages `0..hot_pages` hold the hub prefix of a degree-aware layout
    /// (see [`crate::layout`]); 0 when the graph has no hot region.
    hot_pages: u64,
}

impl PageVertexMap {
    /// Builds the map from the graph index. Runs in O(V + P).
    pub fn build(index: &GraphIndex) -> Self {
        let num_pages = (index.num_edges() as usize).div_ceil(EDGES_PER_PAGE);
        let mut begin = vec![VertexId::MAX; num_pages];
        let mut end = vec![0 as VertexId; num_pages];
        let mut offset: u64 = 0;
        for v in 0..index.num_vertices() as VertexId {
            let deg = index.degree(v) as u64;
            if deg == 0 {
                continue;
            }
            let first_page = offset / EDGES_PER_PAGE as u64;
            let last_page = (offset + deg - 1) / EDGES_PER_PAGE as u64;
            for p in first_page..=last_page {
                let p = p as usize;
                if begin[p] == VertexId::MAX {
                    begin[p] = v;
                }
                end[p] = v;
            }
            offset += deg;
        }
        Self {
            begin,
            end,
            hot_pages: 0,
        }
    }

    /// Number of leading pages in the hot (hub) region; 0 without a layout.
    pub fn hot_pages(&self) -> u64 {
        self.hot_pages
    }

    /// Records the hot-region page count (set by the disk layer from the
    /// layout metadata; clamped to the actual page count).
    pub fn set_hot_pages(&mut self, hot_pages: u64) {
        self.hot_pages = hot_pages.min(self.num_pages());
    }

    /// Whether page `p` lies in the hot (hub) region.
    #[inline]
    pub fn is_hot(&self, p: PageId) -> bool {
        p < self.hot_pages
    }

    /// Number of pages covered.
    pub fn num_pages(&self) -> u64 {
        self.begin.len() as u64
    }

    /// Inclusive `(begin_vid, end_vid)` span of page `p`, or `None` for a
    /// page holding no edges (possible only past the end of the stream).
    pub fn vertices_in_page(&self, p: PageId) -> Option<(VertexId, VertexId)> {
        let b = *self.begin.get(p as usize)?;
        if b == VertexId::MAX {
            return None;
        }
        Some((b, self.end[p as usize]))
    }

    /// Bytes of memory the map occupies: 8 per page (Figure 12 accounting).
    pub fn memory_bytes(&self) -> u64 {
        (self.begin.len() * 8) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::Csr;
    use crate::gen::{rmat, RmatConfig};

    #[test]
    fn single_page_graph() {
        // 3 vertices, 5 edges -> one page spanning vertices 0..=2.
        let idx = GraphIndex::from_degrees(vec![2, 0, 3]);
        let map = PageVertexMap::build(&idx);
        assert_eq!(map.num_pages(), 1);
        assert_eq!(map.vertices_in_page(0), Some((0, 2)));
        assert_eq!(map.vertices_in_page(1), None);
    }

    #[test]
    fn huge_vertex_spans_multiple_pages() {
        // Vertex 1 has 3000 edges: pages 0..=3 all include it.
        let idx = GraphIndex::from_degrees(vec![100, 3000, 50]);
        let map = PageVertexMap::build(&idx);
        assert_eq!(map.num_pages(), 4); // 3150 edges / 1024 per page
        assert_eq!(map.vertices_in_page(0), Some((0, 1)));
        assert_eq!(map.vertices_in_page(1), Some((1, 1)));
        assert_eq!(map.vertices_in_page(2), Some((1, 1)));
        assert_eq!(map.vertices_in_page(3), Some((1, 2)));
    }

    #[test]
    fn page_boundaries_are_exact() {
        // Vertex 0 fills exactly one page; vertex 1 starts page 1.
        let idx = GraphIndex::from_degrees(vec![EDGES_PER_PAGE as u32, 4]);
        let map = PageVertexMap::build(&idx);
        assert_eq!(map.vertices_in_page(0), Some((0, 0)));
        assert_eq!(map.vertices_in_page(1), Some((1, 1)));
    }

    #[test]
    fn spans_cover_every_vertex_with_edges() {
        let g = rmat(&RmatConfig::new(10));
        let idx = GraphIndex::from_csr(&g);
        let map = PageVertexMap::build(&idx);
        for v in 0..g.num_vertices() as VertexId {
            let deg = g.degree(v) as u64;
            if deg == 0 {
                continue;
            }
            let off = g.edge_offset(v);
            for p in off / EDGES_PER_PAGE as u64..=(off + deg - 1) / EDGES_PER_PAGE as u64 {
                let (b, e) = map.vertices_in_page(p).expect("page has edges");
                assert!(b <= v && v <= e, "vertex {v} not in span of page {p}");
            }
        }
    }

    #[test]
    fn empty_graph_has_no_pages() {
        let map = PageVertexMap::build(&GraphIndex::from_csr(&Csr::empty(10)));
        assert_eq!(map.num_pages(), 0);
        assert_eq!(map.memory_bytes(), 0);
    }

    #[test]
    fn hot_pages_clamp_to_page_count() {
        let mut map = PageVertexMap::build(&GraphIndex::from_degrees(vec![100, 3000, 50]));
        assert_eq!(map.hot_pages(), 0);
        assert!(!map.is_hot(0));
        map.set_hot_pages(2);
        assert!(map.is_hot(0) && map.is_hot(1) && !map.is_hot(2));
        map.set_hot_pages(u64::MAX);
        assert_eq!(map.hot_pages(), map.num_pages());
    }
}
