//! Graph statistics: the columns of Table II.

use blaze_types::VertexId;

use crate::csr::Csr;

/// Degree-distribution classification used in Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegreeDistribution {
    /// Heavy-tailed: a few hubs hold a large fraction of the edges.
    PowerLaw,
    /// Degrees concentrated around the mean.
    Uniform,
}

impl std::fmt::Display for DegreeDistribution {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DegreeDistribution::PowerLaw => write!(f, "power"),
            DegreeDistribution::Uniform => write!(f, "uniform"),
        }
    }
}

/// Summary statistics of one graph.
#[derive(Debug, Clone)]
pub struct GraphStats {
    /// Vertex count.
    pub num_vertices: usize,
    /// Directed edge count.
    pub num_edges: u64,
    /// Maximum out-degree.
    pub max_degree: u32,
    /// Mean out-degree.
    pub mean_degree: f64,
    /// Fraction of edges owned by the top 1% highest-degree vertices.
    pub top1pct_edge_share: f64,
    /// Classified distribution.
    pub distribution: DegreeDistribution,
    /// Approximate diameter (longest BFS depth from a double sweep).
    pub approx_diameter: u32,
}

impl GraphStats {
    /// Computes all statistics for `g`.
    pub fn compute(g: &Csr) -> Self {
        let n = g.num_vertices();
        let m = g.num_edges();
        let mut degrees: Vec<u32> = (0..n as VertexId).map(|v| g.degree(v)).collect();
        let max_degree = degrees.iter().copied().max().unwrap_or(0);
        let mean_degree = if n == 0 { 0.0 } else { m as f64 / n as f64 };
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        let top = (n / 100).max(1).min(n.max(1));
        let top_edges: u64 = degrees.iter().take(top).map(|&d| d as u64).sum();
        let top1pct_edge_share = if m == 0 {
            0.0
        } else {
            top_edges as f64 / m as f64
        };
        let distribution = classify(max_degree, mean_degree, top1pct_edge_share);
        let approx_diameter = approx_diameter(g);
        Self {
            num_vertices: n,
            num_edges: m,
            max_degree,
            mean_degree,
            top1pct_edge_share,
            distribution,
            approx_diameter,
        }
    }
}

/// Power-law if the top 1% of vertices holds a disproportionate edge share
/// or the maximum degree dwarfs the mean.
fn classify(max_degree: u32, mean_degree: f64, top1pct_share: f64) -> DegreeDistribution {
    if top1pct_share > 0.10 || max_degree as f64 > 20.0 * mean_degree.max(1.0) {
        DegreeDistribution::PowerLaw
    } else {
        DegreeDistribution::Uniform
    }
}

/// Undirected BFS depth from `root`, and the deepest vertex reached.
/// Traverses both `g` and its transpose so direction does not truncate the
/// sweep (the paper reports undirected diameters).
fn bfs_depth(g: &Csr, t: &Csr, root: VertexId) -> (u32, VertexId) {
    let n = g.num_vertices();
    let mut visited = vec![false; n];
    let mut frontier = vec![root];
    visited[root as usize] = true;
    let mut depth = 0u32;
    let mut last = root;
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for &v in &frontier {
            for &d in g.neighbors(v).iter().chain(t.neighbors(v)) {
                if !visited[d as usize] {
                    visited[d as usize] = true;
                    next.push(d);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        last = next[0];
        depth += 1;
        frontier = next;
    }
    (depth, last)
}

/// Double-sweep diameter lower bound on the undirected view: BFS from the
/// max-degree vertex, then BFS again from the deepest vertex found.
pub fn approx_diameter(g: &Csr) -> u32 {
    let n = g.num_vertices();
    if n == 0 {
        return 0;
    }
    let t = g.transpose();
    let start = (0..n as VertexId).max_by_key(|&v| g.degree(v)).unwrap_or(0);
    let (d1, far) = bfs_depth(g, &t, start);
    let (d2, _) = bfs_depth(g, &t, far);
    d1.max(d2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::gen::{rmat, uniform, RmatConfig};

    #[test]
    fn classifies_rmat_as_power_law() {
        let s = GraphStats::compute(&rmat(&RmatConfig::new(10)));
        assert_eq!(s.distribution, DegreeDistribution::PowerLaw);
        assert!(
            s.top1pct_edge_share > 0.10,
            "share {}",
            s.top1pct_edge_share
        );
    }

    #[test]
    fn classifies_uniform_as_uniform() {
        let s = GraphStats::compute(&uniform(10, 16, 3));
        assert_eq!(s.distribution, DegreeDistribution::Uniform);
    }

    #[test]
    fn diameter_of_path_graph() {
        // 0 -> 1 -> 2 -> 3 -> 4 (undirected)
        let mut b = GraphBuilder::new(5).symmetrize(true);
        for v in 0..4 {
            b.add_edge(v, v + 1);
        }
        let g = b.build();
        assert_eq!(approx_diameter(&g), 4);
    }

    #[test]
    fn diameter_of_star_is_small() {
        let mut b = GraphBuilder::new(10).symmetrize(true);
        for v in 1..10 {
            b.add_edge(0, v);
        }
        let g = b.build();
        assert_eq!(approx_diameter(&g), 2);
    }

    #[test]
    fn stats_of_empty_graph() {
        let s = GraphStats::compute(&Csr::empty(3));
        assert_eq!(s.num_edges, 0);
        assert_eq!(s.max_degree, 0);
        assert_eq!(s.approx_diameter, 0);
    }

    use crate::csr::Csr;
}
