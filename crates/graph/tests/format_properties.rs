//! Property-based tests of the on-disk format: round-trips for arbitrary
//! graphs and rejection of corrupted metadata.

use proptest::prelude::*;

use blaze_graph::disk::{read_index_file, save_files, write_index_file};
use blaze_graph::{Csr, DiskGraph, GraphBuilder, GraphIndex};

fn arb_graph() -> impl Strategy<Value = Csr> {
    proptest::collection::vec((0u32..96, 0u32..96), 0..800).prop_map(|edges| {
        let n = 96.max(edges.iter().map(|&(s, d)| s.max(d) + 1).max().unwrap_or(0) as usize);
        let mut b = GraphBuilder::new(n).dedup(true);
        b.extend(edges);
        b.build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Index files round-trip any degree sequence.
    #[test]
    fn index_file_round_trips(degrees in proptest::collection::vec(0u32..5000, 0..300)) {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("x.idx");
        let index = GraphIndex::from_degrees(degrees);
        write_index_file(&path, &index).unwrap();
        let back = read_index_file(&path).unwrap();
        prop_assert_eq!(back, index);
    }

    /// A full save/open cycle over 1-3 stripe files preserves every
    /// adjacency list.
    #[test]
    fn graph_files_round_trip(g in arb_graph(), stripes in 1usize..4) {
        let dir = tempfile::tempdir().unwrap();
        let (index, adj) = save_files(&g, dir.path(), "g.gr", stripes).unwrap();
        let dg = DiskGraph::open_files(&index, &adj).unwrap();
        prop_assert_eq!(dg.num_vertices(), g.num_vertices());
        prop_assert_eq!(dg.num_edges(), g.num_edges());
        for v in 0..g.num_vertices() as u32 {
            prop_assert_eq!(dg.read_neighbors(v).unwrap(), g.neighbors(v).to_vec());
        }
    }

    /// Any single-byte corruption of the header region is either detected
    /// or yields a structurally consistent (never panicking) index.
    #[test]
    fn corrupted_headers_never_panic(
        degrees in proptest::collection::vec(0u32..100, 1..50),
        byte in 0usize..24,
        value in 0u8..=255,
    ) {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("x.idx");
        write_index_file(&path, &GraphIndex::from_degrees(degrees)).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        prop_assume!(bytes[byte] != value);
        bytes[byte] = value;
        std::fs::write(&path, &bytes).unwrap();
        // Must not panic; corrupt magic/counts must be an Err.
        if let Ok(index) = read_index_file(&path) {
            // Only possible if the corruption kept counts consistent.
            let _ = index.num_edges();
        }
    }

    /// Truncated files are rejected, not mis-read.
    #[test]
    fn truncated_index_is_rejected(
        degrees in proptest::collection::vec(1u32..100, 2..50),
        cut in 1usize..20,
    ) {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("x.idx");
        write_index_file(&path, &GraphIndex::from_degrees(degrees)).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        prop_assume!(cut < bytes.len());
        std::fs::write(&path, &bytes[..bytes.len() - cut]).unwrap();
        prop_assert!(read_index_file(&path).is_err());
    }
}
