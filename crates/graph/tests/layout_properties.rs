//! Property-based tests of the vertex layout layer: for any degree
//! sequence — random zero-heavy sequences, zero-degree prefixes with a
//! multi-page super-vertex, generated R-MAT graphs — every planned
//! permutation must be a bijection that round-trips, order vertices the
//! way its policy promises, and relabel the CSR to the same edge multiset.

use proptest::prelude::*;

use blaze_graph::gen::{rmat, RmatConfig};
use blaze_graph::{Csr, VertexLayout, VertexPermutation};
use blaze_types::{VertexId, EDGES_PER_PAGE};

/// Builds a (multi)graph with exactly the given out-degrees; targets cycle
/// through the vertex set so super-vertices get multi-page neighbor runs.
fn csr_from_degrees(degrees: &[u32]) -> Csr {
    let n = degrees.len().max(1) as u32;
    let mut offsets = Vec::with_capacity(degrees.len() + 1);
    let mut neighbors = Vec::new();
    let mut off = 0u64;
    offsets.push(0);
    for (v, &d) in degrees.iter().enumerate() {
        let mut targets: Vec<VertexId> = (0..d).map(|i| (v as u32 + i) % n).collect();
        targets.sort_unstable();
        neighbors.extend(targets);
        off += d as u64;
        offsets.push(off);
    }
    Csr::from_parts(offsets, neighbors)
}

/// Every layout invariant at once: round-trip bijection, policy ordering,
/// hot-prefix dominance, and edge-multiset preservation under relabeling.
fn check_layouts(g: &Csr) {
    let n = g.num_vertices();
    for layout in [VertexLayout::None, VertexLayout::Degree, VertexLayout::Hub] {
        let (perm, hot_vertices) = layout.plan(g);
        assert_eq!(perm.len(), n);
        assert!(hot_vertices <= n as u64, "hot prefix within vertex range");
        if layout == VertexLayout::None {
            assert!(perm.is_identity());
            assert_eq!(hot_vertices, 0);
        }
        // Round trip: the permutation is a bijection on [0, n).
        for v in 0..n as VertexId {
            let p = perm.to_physical(v);
            assert!((p as usize) < n);
            assert_eq!(perm.to_original(p), v, "round trip of vertex {v}");
        }
        let phys = perm.permute_csr(g);
        assert_eq!(phys.num_vertices(), n);
        assert_eq!(phys.num_edges(), g.num_edges());
        match layout {
            // Degree layout: physical degrees are non-increasing.
            VertexLayout::Degree => {
                for p in 1..n as VertexId {
                    assert!(
                        phys.degree(p - 1) >= phys.degree(p),
                        "degree order broken at physical {p}"
                    );
                }
            }
            // Hub layout: every vertex in the hot prefix has degree at
            // least that of every vertex outside it, and the cold tail
            // keeps its original relative order.
            VertexLayout::Hub => {
                let hot = hot_vertices as VertexId;
                let min_hot = (0..hot).map(|p| phys.degree(p)).min();
                let max_cold = (hot..n as VertexId).map(|p| phys.degree(p)).max();
                if let (Some(lo), Some(hi)) = (min_hot, max_cold) {
                    assert!(lo >= hi, "hub prefix min degree {lo} < cold max {hi}");
                }
                let cold_origs: Vec<VertexId> =
                    (hot..n as VertexId).map(|p| perm.to_original(p)).collect();
                assert!(
                    cold_origs.windows(2).all(|w| w[0] < w[1]),
                    "cold tail must keep original order"
                );
            }
            VertexLayout::None => {}
        }
        // Edge multiset preserved: each original vertex's neighbor multiset
        // survives the relabeling (mapped back through the permutation).
        for v in 0..n as VertexId {
            let mut got: Vec<VertexId> = phys
                .neighbors(perm.to_physical(v))
                .iter()
                .map(|&x| perm.to_original(x))
                .collect();
            got.sort_unstable();
            let mut want = g.neighbors(v).to_vec();
            want.sort_unstable();
            assert_eq!(got, want, "neighbor multiset of vertex {v}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary degree sequences, zero-heavy by construction (~40% of the
    /// sampled degrees forced to zero).
    #[test]
    fn layouts_hold_for_arbitrary_degrees(
        raw in proptest::collection::vec((0u32..10, 1u32..4000), 1..200),
    ) {
        let degrees: Vec<u32> = raw
            .into_iter()
            .map(|(zero_die, d)| if zero_die < 4 { 0 } else { d })
            .collect();
        check_layouts(&csr_from_degrees(&degrees));
    }

    /// A zero-degree prefix followed by a super-vertex spanning many pages:
    /// degree layouts must pull the super-vertex to physical 0 and both
    /// layouts must keep its multi-page neighbor run intact.
    #[test]
    fn zero_prefix_and_super_vertex(
        zeros in 0usize..50,
        super_degree in (4 * EDGES_PER_PAGE as u32)..(40 * EDGES_PER_PAGE as u32),
        tail in proptest::collection::vec(0u32..100, 0..50),
    ) {
        let mut degrees = vec![0u32; zeros];
        degrees.push(super_degree);
        degrees.extend(tail);
        let g = csr_from_degrees(&degrees);
        check_layouts(&g);
        let (perm, hot_vertices) = VertexLayout::Degree.plan(&g);
        assert_eq!(perm.to_physical(zeros as VertexId), 0,
            "super-vertex must lead the degree layout");
        // With at least two other vertices the super-vertex clears the
        // 2x-mean hub threshold (on tiny graphs it IS the mean).
        if degrees.len() >= 3 {
            assert!(hot_vertices >= 1, "a super-vertex is always hot");
        }
    }

    /// Generated R-MAT graphs: power-law degrees, zero-degree vertices all
    /// over — the shape the layouts exist for.
    #[test]
    fn rmat_graphs_keep_every_invariant(scale in 6u32..9, seed in 0u64..64) {
        check_layouts(&rmat(&RmatConfig::new(scale).seed(seed)));
    }

    /// `from_phys_to_orig` accepts exactly the bijections: any shuffle of
    /// 0..n round-trips; corrupting one slot to a duplicate is rejected.
    #[test]
    fn permutation_validation_accepts_shuffles_rejects_duplicates(
        seed in 0u64..(1 << 48),
        corrupt_at in 0usize..64,
    ) {
        // Fisher-Yates with a splitmix-style step: a deterministic shuffle
        // per seed (the shim proptest has no shuffle strategy).
        let mut shuffle: Vec<u32> = (0u32..64).collect();
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        for i in (1..shuffle.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (s >> 33) as usize % (i + 1);
            shuffle.swap(i, j);
        }
        let perm = VertexPermutation::from_phys_to_orig(shuffle.clone()).unwrap();
        for (p, &orig) in shuffle.iter().enumerate() {
            assert_eq!(perm.to_original(p as VertexId), orig);
            assert_eq!(perm.to_physical(orig), p as VertexId);
        }
        // Duplicate one entry: no longer a bijection.
        let mut bad = shuffle.clone();
        let dup = bad[(corrupt_at + 1) % bad.len()];
        if bad[corrupt_at] != dup {
            bad[corrupt_at] = dup;
            assert!(VertexPermutation::from_phys_to_orig(bad).is_err());
        }
        // Out-of-range entry: rejected too.
        let mut oob = shuffle;
        oob[corrupt_at] = 64;
        assert!(VertexPermutation::from_phys_to_orig(oob).is_err());
    }
}
