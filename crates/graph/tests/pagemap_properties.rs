//! Property-based tests of the page → vertex map (Section IV-F): for any
//! degree sequence — zero-degree prefixes, a super-vertex spanning many
//! pages, generated RMAT graphs — every in-range page must report a span,
//! and the span must be exactly what `GraphIndex::edge_offset` implies.

use proptest::prelude::*;

use blaze_graph::gen::{rmat, RmatConfig};
use blaze_graph::{GraphIndex, PageVertexMap};
use blaze_types::{VertexId, EDGES_PER_PAGE};

/// Brute-force reference: the inclusive vertex span of page `p` is the set
/// of vertices whose edge range `[edge_offset(v), edge_offset(v)+deg(v))`
/// intersects the page's edge range.
fn reference_span(index: &GraphIndex, p: u64) -> Option<(VertexId, VertexId)> {
    let page_start = p * EDGES_PER_PAGE as u64;
    let page_end = page_start + EDGES_PER_PAGE as u64;
    let mut span: Option<(VertexId, VertexId)> = None;
    for v in 0..index.num_vertices() as VertexId {
        let deg = index.degree(v) as u64;
        if deg == 0 {
            continue;
        }
        let off = index.edge_offset(v);
        if off < page_end && off + deg > page_start {
            span = Some(match span {
                None => (v, v),
                Some((b, _)) => (b, v),
            });
        }
    }
    span
}

fn check_map(index: &GraphIndex) {
    let map = PageVertexMap::build(index);
    let expected_pages = (index.num_edges() as usize).div_ceil(EDGES_PER_PAGE) as u64;
    assert_eq!(map.num_pages(), expected_pages);
    for p in 0..expected_pages {
        let span = map.vertices_in_page(p);
        assert!(
            span.is_some(),
            "in-range page {p} of {expected_pages} has no span"
        );
        assert_eq!(span, reference_span(index, p), "span of page {p}");
        let (b, e) = span.unwrap();
        assert!(b <= e);
        // Span endpoints own edges; the begin vertex's edges reach into
        // the page and the end vertex's edges start before it ends.
        assert!(index.degree(b) > 0 && index.degree(e) > 0);
        let page_start = p * EDGES_PER_PAGE as u64;
        let page_end = page_start + EDGES_PER_PAGE as u64;
        assert!(index.edge_offset(b) + index.degree(b) as u64 > page_start);
        assert!(index.edge_offset(e) < page_end);
    }
    // One past the stream: never a span.
    assert_eq!(map.vertices_in_page(expected_pages), None);
    assert_eq!(map.vertices_in_page(expected_pages + 7), None);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary degree sequences, zero-heavy by construction (~40% of the
    /// sampled degrees are forced to zero), agree with the edge_offset
    /// reference.
    #[test]
    fn spans_match_reference_for_arbitrary_degrees(
        raw in proptest::collection::vec((0u32..10, 1u32..4000), 0..200),
    ) {
        let degrees: Vec<u32> = raw
            .into_iter()
            .map(|(zero_die, d)| if zero_die < 4 { 0 } else { d })
            .collect();
        check_map(&GraphIndex::from_degrees(degrees));
    }

    /// A zero-degree prefix followed by a super-vertex spanning many pages:
    /// the worst case for page decoding (one vertex owning every edge of
    /// dozens of pages) plus leading vertices that own nothing.
    #[test]
    fn zero_prefix_and_super_vertex(
        zeros in 0usize..50,
        super_degree in (4 * EDGES_PER_PAGE as u32)..(40 * EDGES_PER_PAGE as u32),
        tail in proptest::collection::vec(0u32..100, 0..50),
    ) {
        let mut degrees = vec![0u32; zeros];
        degrees.push(super_degree);
        degrees.extend(tail);
        let index = GraphIndex::from_degrees(degrees);
        check_map(&index);
        // Every fully-interior page of the super-vertex spans only it.
        let map = PageVertexMap::build(&index);
        let sv = zeros as VertexId;
        let off = index.edge_offset(sv);
        let first_full = off.div_ceil(EDGES_PER_PAGE as u64);
        let last_full = (off + super_degree as u64) / EDGES_PER_PAGE as u64;
        assert!(last_full - first_full >= 3, "super-vertex spans many pages");
        for p in first_full..last_full {
            assert_eq!(map.vertices_in_page(p), Some((sv, sv)));
        }
    }

    /// Generated RMAT graphs (power-law degrees, zero-degree vertices all
    /// over): every in-range page has a span consistent with edge_offset.
    #[test]
    fn rmat_graphs_have_consistent_spans(scale in 6u32..9, seed in 0u64..64) {
        let g = rmat(&RmatConfig::new(scale).seed(seed));
        check_map(&GraphIndex::from_csr(&g));
    }
}
