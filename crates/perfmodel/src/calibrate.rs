//! Live calibration: measure this host's per-operation costs instead of
//! using the paper-machine defaults.
//!
//! The default [`CostModel`] constants describe the
//! paper's 2.1 GHz Xeon. When modeling "what would Blaze do on *this*
//! machine with an Optane attached", [`calibrated_cost_model`] replaces
//! the CPU-side constants with measured values from short single-threaded
//! microbenchmarks (the IO-side constants still come from the device
//! profile).

use std::time::Instant;

use crate::costs::CostModel;

/// Measures the average nanoseconds per call of `op` over enough
/// iterations to fill roughly `budget_ms` milliseconds.
fn measure_ns(budget_ms: u64, mut op: impl FnMut(usize) -> u64) -> f64 {
    // Warm up and estimate a batch size.
    let t0 = Instant::now();
    let mut sink = 0u64;
    let mut iters = 0usize;
    while t0.elapsed().as_millis() < budget_ms as u128 {
        sink = sink.wrapping_add(op(iters));
        iters += 1;
    }
    std::hint::black_box(sink);
    if iters == 0 {
        return 0.0;
    }
    t0.elapsed().as_nanos() as f64 / iters as f64
}

/// A cost model with CPU-side constants measured on the current host.
///
/// Each probe mimics the hot loop it calibrates:
/// * scatter — decode a neighbor id, test a bitmap bit, write a staging
///   slot;
/// * gather — read-modify-write a vertex array slot through a relaxed
///   atomic;
/// * CAS — `compare_exchange` on a shared cell;
/// * message — push plus pop of a `(dst, value)` pair through a `Vec`
///   queue.
pub fn calibrated_cost_model(budget_ms: u64) -> CostModel {
    use blaze_sync::atomic::{AtomicU64, Ordering};
    let n = 1 << 16;
    let ids: Vec<u32> = (0..n as u32)
        .map(|i| i.wrapping_mul(2654435761) % n as u32)
        .collect();

    // Scatter proxy: read id, mask test, staged write.
    let mut staging = vec![0u32; 64];
    let bitmap = vec![u64::MAX; n / 64];
    let scatter_ns = measure_ns(budget_ms, |i| {
        let id = ids[i % n];
        let bit = bitmap[(id as usize / 64) % bitmap.len()] >> (id % 64) & 1;
        staging[(i % 64) & 63] = id.wrapping_add(bit as u32);
        staging[i % 64] as u64
    });

    // Gather proxy: relaxed load + store on a shared array.
    let cells: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
    let gather_ns = measure_ns(budget_ms, |i| {
        let c = &cells[ids[i % n] as usize];
        let v = c.load(Ordering::Relaxed).wrapping_add(1); // sync-audit: single-threaded probe measuring the raw cost of the op itself.
        c.store(v, Ordering::Relaxed); // sync-audit: single-threaded probe measuring the raw cost of the op itself.
        v
    });

    // CAS proxy: the sync variant's per-record cost over gather's.
    let cas_ns = measure_ns(budget_ms, |i| {
        let c = &cells[ids[i % n] as usize];
        let cur = c.load(Ordering::Relaxed); // sync-audit: single-threaded probe measuring the raw cost of the op itself.
        let _ = c.compare_exchange(cur, cur + 1, Ordering::Relaxed, Ordering::Relaxed); // sync-audit: single-threaded probe measuring the raw cost of the op itself.
        cur
    });

    // Message proxy: queue push + later pop/apply.
    let mut queue: Vec<(u32, u32)> = Vec::with_capacity(n);
    let msg_ns = measure_ns(budget_ms, |i| {
        if queue.len() == n {
            let mut acc = 0u64;
            for &(d, v) in &queue {
                acc = acc.wrapping_add((d ^ v) as u64);
            }
            queue.clear();
            acc
        } else {
            queue.push((ids[i % n], i as u32));
            0
        }
    });

    let defaults = CostModel::default();
    CostModel {
        scatter_ns_per_edge: scatter_ns.max(0.3),
        gather_ns_per_record: gather_ns.max(0.3),
        cas_ns_per_op: (cas_ns - gather_ns).max(1.0),
        message_ns: (2.0 * msg_ns).max(1.0),
        ..defaults
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_yields_plausible_constants() {
        let c = calibrated_cost_model(20);
        // Single-digit-to-tens of ns per op on any modern machine.
        assert!((0.3..500.0).contains(&c.scatter_ns_per_edge), "{c:?}");
        assert!((0.3..500.0).contains(&c.gather_ns_per_record), "{c:?}");
        assert!((1.0..1000.0).contains(&c.cas_ns_per_op), "{c:?}");
        assert!((1.0..2000.0).contains(&c.message_ns), "{c:?}");
        // IO-side constants keep their defaults.
        assert_eq!(
            c.io_submit_ns_per_request,
            CostModel::default().io_submit_ns_per_request
        );
    }

    #[test]
    fn measure_handles_trivial_ops() {
        let ns = measure_ns(5, |i| i as u64);
        assert!(ns >= 0.0);
    }
}
