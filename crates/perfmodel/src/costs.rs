//! Calibrated per-operation CPU costs.
//!
//! The constants are anchored to two observations in the paper:
//!
//! * Figure 4: single-threaded graph computation runs at ~0.5–2.5 GB/s of
//!   edge data (4 bytes/edge), i.e. ~1.6–8 ns per edge depending on the
//!   query's per-edge work.
//! * Figures 1/8: FlashGraph reaches 23% of Optane bandwidth on PR/rmat30
//!   (straggler-bound message processing) and the sync-Blaze variant
//!   reaches 38–85% (CAS overhead + hub contention).

/// Per-operation costs in nanoseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Decoding one edge in a fetched page and evaluating `cond`/`scatter`,
    /// plus staging the record (Blaze scatter path).
    pub scatter_ns_per_edge: f64,
    /// Applying one bin record to vertex data (Blaze gather path; no
    /// synchronization).
    pub gather_ns_per_record: f64,
    /// Creating plus processing one message in the FlashGraph model (queue
    /// push, later pop and apply).
    pub message_ns: f64,
    /// Extra cost of one atomic read-modify-write vs a plain store, before
    /// contention (sync variant and Graphene-style direct updates).
    pub cas_ns_per_op: f64,
    /// Multiplier applied to CAS cost per unit of destination skew
    /// (`max_bin / mean_bin`), modeling hub cache-line contention.
    pub cas_contention_factor: f64,
    /// Graphene's per-edge cost on its single compute thread per disk
    /// (plain array updates, no atomics needed with one updater).
    pub graphene_ns_per_edge: f64,
    /// Per-page decode overhead (page→vertex map lookups).
    pub page_decode_ns: f64,
    /// Frontier→page-frontier transform per frontier vertex.
    pub transform_ns_per_vertex: f64,
    /// Async-IO submission cost per request, paid by the IO thread.
    pub io_submit_ns_per_request: f64,
    /// Cost of one full-bin handoff (queue push/pop, gather lock, buffer
    /// return, possible scatter stall). Dominates when bin buffers are tiny
    /// (Figure 10's left edge).
    pub bin_handoff_ns: f64,
    /// Fixed cost per *active* bin per iteration (staging flush, partial
    /// drain, cache pressure). Dominates at very large bin counts
    /// (Figure 11's right edge).
    pub bin_fixed_ns: f64,
    /// Cost of probing an idle bin during the end-of-iteration flush.
    pub bin_probe_ns: f64,
    /// Per-iteration barrier/coordination cost.
    pub barrier_ns: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            scatter_ns_per_edge: 3.0,
            gather_ns_per_record: 4.0,
            message_ns: 25.0,
            cas_ns_per_op: 25.0,
            cas_contention_factor: 5.0,
            graphene_ns_per_edge: 5.0,
            page_decode_ns: 150.0,
            transform_ns_per_vertex: 8.0,
            io_submit_ns_per_request: 1200.0,
            bin_handoff_ns: 900.0,
            bin_fixed_ns: 120.0,
            bin_probe_ns: 4.0,
            barrier_ns: 10_000.0,
        }
    }
}

impl CostModel {
    /// Effective CAS cost per operation at the given destination skew
    /// (`max_bin_records / mean_bin_records`; 1.0 = perfectly uniform).
    pub fn cas_cost_ns(&self, skew: f64) -> f64 {
        let excess = (skew - 1.0).max(0.0);
        self.cas_ns_per_op + self.cas_contention_factor * excess.min(8.0)
    }

    /// Single-threaded edge-processing rate in bytes/second for a query
    /// whose per-edge work is `scatter + records/edges * gather` — the bars
    /// of Figure 4.
    pub fn single_thread_rate(&self, edges: u64, records: u64) -> f64 {
        if edges == 0 {
            return 0.0;
        }
        let per_edge =
            self.scatter_ns_per_edge + self.gather_ns_per_record * records as f64 / edges as f64;
        4.0 / (per_edge * 1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_in_figure4_range() {
        let c = CostModel::default();
        // All-records query (SpMV-like): 4 B / 7 ns ≈ 0.57 GB/s.
        let spmv_rate = c.single_thread_rate(1000, 1000);
        assert!((0.3e9..1.5e9).contains(&spmv_rate), "rate {spmv_rate}");
        // Cond-heavy query (BFS-like, 10% records): faster.
        let bfs_rate = c.single_thread_rate(1000, 100);
        assert!(bfs_rate > spmv_rate);
        assert!(bfs_rate < 2.5e9);
    }

    #[test]
    fn contention_grows_with_skew_and_saturates() {
        let c = CostModel::default();
        assert_eq!(c.cas_cost_ns(1.0), c.cas_ns_per_op);
        assert!(c.cas_cost_ns(4.0) > c.cas_cost_ns(2.0));
        assert_eq!(c.cas_cost_ns(100.0), c.cas_cost_ns(40.0));
    }

    #[test]
    fn zero_edges_rate_is_zero() {
        assert_eq!(CostModel::default().single_thread_rate(0, 0), 0.0);
    }
}
