//! Trace-driven performance model of out-of-core graph engines.
//!
//! # Why a model
//!
//! The paper's phenomena — straggler threads idling an Optane SSD
//! (Figure 2), per-disk IO skew (Figure 3), thread scaling to 16 cores
//! (Figure 9) — are properties of a 20-core machine driving a 2.5 GB/s
//! device. This reproduction executes every engine *functionally* on
//! whatever hardware runs the tests and records, per iteration, exactly
//! how much work of each kind happened (bytes and requests per device,
//! edges scattered, records per bin, messages per thread). This crate
//! replays those measured quantities on a virtual machine with the
//! paper's core count and the Table I device profiles, using calibrated
//! per-operation costs. The *work* is real; only the time axis is
//! modeled.
//!
//! # Per-system models
//!
//! * **Blaze** — IO, scatter, and gather phases fully pipeline; iteration
//!   time is the max of the three, plus the frontier transform. Gather
//!   work balances across threads at bin granularity.
//! * **Sync variant** — no gather threads; every record pays a CAS whose
//!   cost grows with destination skew (hub contention).
//! * **FlashGraph** — edge processing overlaps IO, but the per-thread
//!   message queues (`dst % threads`) drain in a separate phase whose
//!   length is set by the *straggler* thread; the device idles meanwhile.
//! * **Graphene** — one IO and one compute thread per disk; each disk's
//!   pipeline is throttled by its slower side, and the iteration ends when
//!   the most-loaded disk finishes (skewed IO).

// The unsafe-audit rule (cargo xtask lint) keys off this: crates that
// need no unsafe code forbid it outright, so the audit scope cannot
// silently grow.
#![forbid(unsafe_code)]

pub mod calibrate;
pub mod costs;
pub mod machine;
pub mod systems;
pub mod timeline;

pub use calibrate::calibrated_cost_model;
pub use costs::CostModel;
pub use machine::{MachineConfig, NetworkProfile};
pub use systems::{IterationTiming, PerfModel, QueryTiming};
pub use timeline::{Timeline, TimelineSegment};
