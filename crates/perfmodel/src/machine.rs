//! The virtual machine the model replays traces on.

use blaze_storage::{AccessPattern, DeviceProfile};

/// The network interface of a machine, for pricing the scale-out exchange
/// leg: frontier deltas crossing machines pay per-message latency plus
/// payload bytes over the link bandwidth.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkProfile {
    /// Link bandwidth in bytes per second.
    pub bandwidth: f64,
    /// Per-message one-way latency in nanoseconds.
    pub latency_ns: f64,
}

impl NetworkProfile {
    /// A 10 GbE NIC: 1.25 GB/s, 10 us per message — the class of link the
    /// paper's testbed cluster would use between boxes.
    pub fn ten_gbe() -> Self {
        Self {
            bandwidth: 1.25e9,
            latency_ns: 10_000.0,
        }
    }
}

/// Machine configuration: compute threads plus a device array.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Compute threads available to the engine (16 in the paper; the
    /// testbed has 20 physical cores, IO threads use the remainder).
    pub compute_threads: usize,
    /// Fraction of compute threads used for scatter in the Blaze model.
    pub scatter_ratio: f64,
    /// The device array.
    pub devices: Vec<DeviceProfile>,
    /// The NIC connecting this machine to its shard peers.
    pub network: NetworkProfile,
}

impl MachineConfig {
    /// The paper's primary setup: 16 compute threads, one Optane P4800X.
    pub fn paper_optane() -> Self {
        Self {
            compute_threads: 16,
            scatter_ratio: 0.5,
            devices: vec![DeviceProfile::optane_p4800x()],
            network: NetworkProfile::ten_gbe(),
        }
    }

    /// The paper's NAND setup (Figure 2a).
    pub fn paper_nand() -> Self {
        Self {
            compute_threads: 16,
            scatter_ratio: 0.5,
            devices: vec![DeviceProfile::nand_s3520()],
            network: NetworkProfile::ten_gbe(),
        }
    }

    /// The 8-SSD array of Figure 3.
    pub fn eight_disk_array() -> Self {
        Self {
            compute_threads: 16,
            scatter_ratio: 0.5,
            devices: vec![DeviceProfile::optane_p4800x(); 8],
            network: NetworkProfile::ten_gbe(),
        }
    }

    /// Replaces the thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.compute_threads = threads.max(2);
        self
    }

    /// Replaces the scatter ratio.
    pub fn with_scatter_ratio(mut self, ratio: f64) -> Self {
        self.scatter_ratio = ratio.clamp(0.01, 0.99);
        self
    }

    /// Replaces the network profile.
    pub fn with_network(mut self, network: NetworkProfile) -> Self {
        self.network = network;
        self
    }

    /// Scatter thread count under the ratio (at least 1, leaving >= 1
    /// gather thread).
    pub fn scatter_threads(&self) -> usize {
        let s = (self.compute_threads as f64 * self.scatter_ratio).round() as usize;
        s.clamp(1, self.compute_threads - 1)
    }

    /// Gather thread count.
    pub fn gather_threads(&self) -> usize {
        self.compute_threads - self.scatter_threads()
    }

    /// Aggregate device read bandwidth (bytes/s) assuming random 4 KiB
    /// access — the red line of Figures 1, 2, and 8.
    pub fn aggregate_bandwidth(&self) -> f64 {
        self.devices.iter().map(|d| d.rand_read_bw).sum()
    }

    /// Modeled busy time of one device serving `bytes` over `requests`
    /// requests of which `sequential` continued their predecessor.
    pub fn device_io_ns(&self, device: usize, bytes: u64, requests: u64, sequential: u64) -> f64 {
        if bytes == 0 || requests == 0 {
            return 0.0;
        }
        let profile = &self.devices[device];
        let avg = bytes / requests;
        let seq = sequential.min(requests);
        let rand = requests - seq;
        seq as f64 * profile.read_service_ns(avg, AccessPattern::Sequential) as f64
            + rand as f64 * profile.read_service_ns(avg, AccessPattern::Random) as f64
    }

    /// Modeled wall time of the network leg of a scale-out run: `bytes`
    /// shipped across `messages` point-to-point sends on this machine's
    /// NIC. Latencies are charged per message (they do not pipeline in the
    /// barriered superstep — every round waits for its slowest exchange),
    /// bytes are charged at link bandwidth.
    pub fn network_ns(&self, bytes: u64, messages: u64) -> f64 {
        if bytes == 0 && messages == 0 {
            return 0.0;
        }
        messages as f64 * self.network.latency_ns + bytes as f64 / self.network.bandwidth * 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_machine_has_sixteen_threads_and_optane() {
        let m = MachineConfig::paper_optane();
        assert_eq!(m.compute_threads, 16);
        assert_eq!(m.scatter_threads(), 8);
        assert_eq!(m.gather_threads(), 8);
        assert!(m.devices[0].is_fnd());
    }

    #[test]
    fn ratio_split_keeps_both_sides_nonzero() {
        let m = MachineConfig::paper_optane().with_scatter_ratio(0.99);
        assert!(m.gather_threads() >= 1);
        let m = MachineConfig::paper_optane().with_scatter_ratio(0.01);
        assert!(m.scatter_threads() >= 1);
    }

    #[test]
    fn io_time_scales_with_bytes_and_pattern() {
        let m = MachineConfig::paper_nand();
        let seq = m.device_io_ns(0, 1 << 20, 64, 64);
        let rand = m.device_io_ns(0, 1 << 20, 64, 0);
        assert!(rand > 2.0 * seq, "NAND random {rand} vs seq {seq}");
        assert_eq!(m.device_io_ns(0, 0, 0, 0), 0.0);
    }

    #[test]
    fn eight_disks_aggregate() {
        let m = MachineConfig::eight_disk_array();
        assert_eq!(m.devices.len(), 8);
        assert!(m.aggregate_bandwidth() > 8.0 * 2.0e9);
    }

    #[test]
    fn network_leg_charges_latency_and_bandwidth() {
        let m = MachineConfig::paper_optane();
        assert_eq!(m.network_ns(0, 0), 0.0);
        // Pure latency: 10 messages of nothing = 10 * 10 us.
        assert_eq!(m.network_ns(0, 10), 100_000.0);
        // 1.25 GB at 1.25 GB/s = 1 s, plus one message latency.
        let ns = m.network_ns(1_250_000_000, 1);
        assert!((ns - 1.000_010e9).abs() < 1.0, "{ns}");
        // Bandwidth term dominates for bulk transfers.
        assert!(m.network_ns(1 << 30, 4) > m.network_ns(1 << 20, 4));
    }

    #[test]
    fn network_profile_is_tunable() {
        let fast = NetworkProfile {
            bandwidth: 12.5e9,
            latency_ns: 2_000.0,
        };
        let m = MachineConfig::paper_optane().with_network(fast.clone());
        assert_eq!(m.network, fast);
        assert!(m.network_ns(1 << 30, 1) < MachineConfig::paper_optane().network_ns(1 << 30, 1));
    }
}
