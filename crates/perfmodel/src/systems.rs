//! Per-system iteration and query timing models.

use blaze_types::IterationTrace;

use crate::costs::CostModel;
use crate::machine::MachineConfig;

/// The modeled phases of one iteration, nanoseconds.
#[derive(Debug, Clone, Copy, Default)]
pub struct IterationTiming {
    /// Frontier → page-frontier transform (not overlapped).
    pub transform_ns: f64,
    /// Device busy time (max over devices).
    pub io_ns: f64,
    /// Pipelined compute time (scatter/gather or edge processing).
    pub compute_ns: f64,
    /// Non-overlapped tail (message processing, barrier).
    pub tail_ns: f64,
}

impl IterationTiming {
    /// Total iteration wall time: transform, then the pipelined max of IO
    /// and compute, then the tail.
    pub fn total_ns(&self) -> f64 {
        self.transform_ns + self.io_ns.max(self.compute_ns) + self.tail_ns
    }

    /// Fraction of the iteration the device spends busy.
    pub fn io_utilization(&self) -> f64 {
        let total = self.total_ns();
        if total == 0.0 {
            return 0.0;
        }
        self.io_ns / total
    }
}

/// Aggregated timing of a whole query.
#[derive(Debug, Clone, Default)]
pub struct QueryTiming {
    /// Per-iteration timings.
    pub iterations: Vec<IterationTiming>,
    /// Total bytes read.
    pub io_bytes: u64,
}

impl QueryTiming {
    /// Total modeled query time in nanoseconds.
    pub fn total_ns(&self) -> f64 {
        self.iterations.iter().map(IterationTiming::total_ns).sum()
    }

    /// Total modeled query time in seconds.
    pub fn total_s(&self) -> f64 {
        self.total_ns() * 1e-9
    }

    /// Average read bandwidth over the query (bytes/second) — the metric of
    /// Figures 1 and 8 ("total read IO bytes divided by total query
    /// execution time").
    pub fn avg_bandwidth(&self) -> f64 {
        let t = self.total_ns();
        if t == 0.0 {
            return 0.0;
        }
        self.io_bytes as f64 / (t * 1e-9)
    }
}

/// A machine + cost model bound together.
#[derive(Debug, Clone)]
pub struct PerfModel {
    /// The virtual machine.
    pub machine: MachineConfig,
    /// Per-operation costs.
    pub costs: CostModel,
}

impl PerfModel {
    /// Creates a model with default costs.
    pub fn new(machine: MachineConfig) -> Self {
        Self {
            machine,
            costs: CostModel::default(),
        }
    }

    /// Max over devices of modeled IO busy time for one iteration.
    fn max_device_io_ns(&self, t: &IterationTrace) -> f64 {
        (0..t.io_bytes_per_device.len())
            .map(|d| {
                self.machine.device_io_ns(
                    d.min(self.machine.devices.len() - 1),
                    t.io_bytes_per_device[d],
                    t.io_requests_per_device[d],
                    t.io_sequential_requests_per_device
                        .get(d)
                        .copied()
                        .unwrap_or(0),
                )
            })
            .fold(0.0, f64::max)
    }

    /// IO-submission CPU time charged to the iteration's IO threads.
    fn io_submit_ns(&self, t: &IterationTrace) -> f64 {
        // One IO thread per device; the busiest thread bounds the phase.
        t.io_requests_per_device
            .iter()
            .map(|&r| r as f64 * self.costs.io_submit_ns_per_request)
            .fold(0.0, f64::max)
    }

    /// Gather skew: max bin load over mean bin load, floor 1.
    fn bin_skew(t: &IterationTrace) -> f64 {
        let total: u64 = t.records_per_bin.iter().sum();
        let n = t.records_per_bin.len();
        if total == 0 || n == 0 {
            return 1.0;
        }
        let max = t.records_per_bin.iter().max().copied().unwrap_or(0) as f64;
        (max / (total as f64 / n as f64)).max(1.0)
    }

    // --- Blaze (online binning) ---------------------------------------

    /// One Blaze iteration: transform, then pipelined max(IO, scatter,
    /// gather), then a barrier.
    pub fn blaze_iteration(&self, t: &IterationTrace) -> IterationTiming {
        let s_threads = self.machine.scatter_threads() as f64;
        let g_threads = self.machine.gather_threads() as f64;
        let pages = t.total_io_bytes() as f64 / 4096.0;
        let scatter_work = t.edges_processed as f64 * self.costs.scatter_ns_per_edge
            + pages * self.costs.page_decode_ns;
        let scatter_ns = scatter_work / s_threads;
        // Gather balances dynamically at bin granularity: a thread can never
        // hold more than max(mean, heaviest bin).
        let total_records: f64 = t.records_produced as f64;
        let max_bin = t.records_per_bin.iter().copied().max().unwrap_or(0) as f64;
        // Full-bin handoffs: each buffer of `bin_buffer_capacity` records
        // costs one queue round-trip, split between scatter and gather.
        let handoffs = if t.bin_buffer_capacity > 0 {
            total_records / t.bin_buffer_capacity as f64
        } else {
            0.0
        };
        let handoff_ns = handoffs * self.costs.bin_handoff_ns / 2.0;
        // Only bins that received records pay the flush/drain cost; idle
        // bins are a cheap emptiness probe.
        let active_bins = t.records_per_bin.iter().filter(|&&r| r > 0).count() as f64;
        let bin_fixed = active_bins * self.costs.bin_fixed_ns
            + t.records_per_bin.len() as f64 * self.costs.bin_probe_ns;
        let scatter_ns = scatter_ns + handoff_ns / s_threads;
        let gather_ns = ((total_records / g_threads).max(max_bin))
            * self.costs.gather_ns_per_record
            + (handoff_ns + bin_fixed) / g_threads;
        let io_ns = self.max_device_io_ns(t).max(self.io_submit_ns(t));
        IterationTiming {
            transform_ns: t.frontier_size as f64 * self.costs.transform_ns_per_vertex
                / self.machine.compute_threads as f64,
            io_ns,
            compute_ns: scatter_ns.max(gather_ns),
            tail_ns: self.costs.barrier_ns
                + t.vertex_map_size as f64 * self.costs.transform_ns_per_vertex
                    / self.machine.compute_threads as f64,
        }
    }

    // --- Synchronization-based variant ---------------------------------

    /// One iteration of the CAS-based variant: all compute threads scatter
    /// and apply; every record pays a contention-scaled CAS.
    pub fn sync_iteration(&self, t: &IterationTrace) -> IterationTiming {
        let threads = self.machine.compute_threads as f64;
        let pages = t.total_io_bytes() as f64 / 4096.0;
        let records = if t.atomic_ops > 0 {
            t.atomic_ops
        } else {
            t.records_produced
        };
        let skew = Self::bin_skew(t);
        let work = t.edges_processed as f64 * self.costs.scatter_ns_per_edge
            + pages * self.costs.page_decode_ns
            + records as f64 * (self.costs.gather_ns_per_record + self.costs.cas_cost_ns(skew));
        let io_ns = self.max_device_io_ns(t).max(self.io_submit_ns(t));
        IterationTiming {
            transform_ns: t.frontier_size as f64 * self.costs.transform_ns_per_vertex / threads,
            io_ns,
            compute_ns: work / threads,
            tail_ns: self.costs.barrier_ns
                + t.vertex_map_size as f64 * self.costs.transform_ns_per_vertex / threads,
        }
    }

    // --- FlashGraph -----------------------------------------------------

    /// One FlashGraph iteration: edge processing overlaps IO, then the
    /// straggler thread drains its message queue while the device idles
    /// (Section III-A, Figure 2).
    pub fn flashgraph_iteration(&self, t: &IterationTrace) -> IterationTiming {
        let threads = self.machine.compute_threads as f64;
        let pages = t.total_io_bytes() as f64 / 4096.0;
        let edge_ns = (t.edges_processed as f64 * self.costs.scatter_ns_per_edge
            + pages * self.costs.page_decode_ns
            + t.records_produced as f64 * self.costs.message_ns * 0.5)
            / threads;
        // The non-overlapped tail: the busiest thread's queue.
        let straggler = t.messages_per_thread.iter().copied().max().unwrap_or(0);
        let msg_ns = straggler as f64 * self.costs.message_ns * 0.5;
        let io_ns = self.max_device_io_ns(t).max(self.io_submit_ns(t));
        IterationTiming {
            transform_ns: t.frontier_size as f64 * self.costs.transform_ns_per_vertex / threads,
            io_ns,
            compute_ns: edge_ns,
            tail_ns: msg_ns
                + self.costs.barrier_ns
                + t.vertex_map_size as f64 * self.costs.transform_ns_per_vertex / threads,
        }
    }

    // --- Graphene ---------------------------------------------------------

    /// One Graphene iteration: each disk is served by one IO thread and one
    /// compute thread; the iteration ends when the most-loaded disk's
    /// pipeline drains (Sections III-B, III-C).
    pub fn graphene_iteration(&self, t: &IterationTrace) -> IterationTiming {
        let total_bytes = t.total_io_bytes() as f64;
        let mut worst = 0.0f64;
        let mut worst_io = 0.0f64;
        for d in 0..t.io_bytes_per_device.len() {
            let bytes = t.io_bytes_per_device[d] as f64;
            let io = self.machine.device_io_ns(
                d.min(self.machine.devices.len() - 1),
                t.io_bytes_per_device[d],
                t.io_requests_per_device[d],
                t.io_sequential_requests_per_device
                    .get(d)
                    .copied()
                    .unwrap_or(0),
            ) + t.io_requests_per_device[d] as f64 * self.costs.io_submit_ns_per_request;
            // Edges on this disk scale with its share of the bytes.
            let edges = if total_bytes > 0.0 {
                t.edges_processed as f64 * bytes / total_bytes
            } else {
                0.0
            };
            let compute = edges * self.costs.graphene_ns_per_edge
                + (bytes / 4096.0) * self.costs.page_decode_ns;
            worst = worst.max(io.max(compute));
            worst_io = worst_io.max(io);
        }
        IterationTiming {
            transform_ns: t.frontier_size as f64 * self.costs.transform_ns_per_vertex
                / self.machine.compute_threads as f64,
            io_ns: worst_io,
            compute_ns: worst,
            tail_ns: self.costs.barrier_ns
                + t.vertex_map_size as f64 * self.costs.transform_ns_per_vertex
                    / self.machine.compute_threads as f64,
        }
    }

    // --- Query aggregation ----------------------------------------------

    /// Applies `iteration` over every trace of a query.
    pub fn query_timing(
        &self,
        traces: &[IterationTrace],
        iteration: impl Fn(&Self, &IterationTrace) -> IterationTiming,
    ) -> QueryTiming {
        QueryTiming {
            iterations: traces.iter().map(|t| iteration(self, t)).collect(),
            io_bytes: traces.iter().map(IterationTrace::total_io_bytes).sum(),
        }
    }

    /// Convenience: Blaze query timing.
    pub fn blaze_query(&self, traces: &[IterationTrace]) -> QueryTiming {
        self.query_timing(traces, Self::blaze_iteration)
    }

    /// Convenience: sync-variant query timing.
    pub fn sync_query(&self, traces: &[IterationTrace]) -> QueryTiming {
        self.query_timing(traces, Self::sync_iteration)
    }

    /// Convenience: FlashGraph query timing.
    pub fn flashgraph_query(&self, traces: &[IterationTrace]) -> QueryTiming {
        self.query_timing(traces, Self::flashgraph_iteration)
    }

    /// Convenience: Graphene query timing.
    pub fn graphene_query(&self, traces: &[IterationTrace]) -> QueryTiming {
        self.query_timing(traces, Self::graphene_iteration)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic SpMV-like iteration: every edge produces a record.
    fn spmv_trace(edges: u64, skewed: bool) -> IterationTrace {
        let mut t = IterationTrace::new(1);
        let bytes = edges * 4;
        t.io_bytes_per_device = vec![bytes];
        t.io_requests_per_device = vec![(bytes / 16384).max(1)];
        t.io_sequential_requests_per_device = vec![(bytes / 16384).max(1) / 2];
        t.edges_processed = edges;
        t.records_produced = edges;
        let bins = 1024usize;
        t.records_per_bin = if skewed {
            // One hub bin holds 10% of all records.
            let mut v = vec![edges * 9 / 10 / (bins as u64 - 1); bins];
            v[0] = edges / 10;
            v
        } else {
            vec![edges / bins as u64; bins]
        };
        t.messages_per_thread = if skewed {
            let mut v = vec![edges / 32; 16];
            v[0] = edges / 2; // straggler holds half the messages
            v
        } else {
            vec![edges / 16; 16]
        };
        t.frontier_size = 1000;
        t
    }

    #[test]
    fn blaze_is_io_bound_on_optane() {
        let m = PerfModel::new(MachineConfig::paper_optane());
        let t = spmv_trace(10_000_000, false);
        let timing = m.blaze_iteration(&t);
        assert!(
            timing.io_ns > timing.compute_ns,
            "16 threads must keep up with one Optane: io {} vs compute {}",
            timing.io_ns,
            timing.compute_ns
        );
        assert!(
            timing.io_utilization() > 0.85,
            "util {}",
            timing.io_utilization()
        );
    }

    #[test]
    fn sync_variant_is_slower_than_blaze() {
        let m = PerfModel::new(MachineConfig::paper_optane());
        let t = spmv_trace(10_000_000, true);
        let blaze = m.blaze_iteration(&t).total_ns();
        let sync = m.sync_iteration(&t).total_ns();
        assert!(sync > 1.1 * blaze, "sync {sync} vs blaze {blaze}");
        // But not absurdly slower (paper: 38-85% of bandwidth).
        let util = m.sync_iteration(&t).io_utilization();
        assert!((0.30..0.95).contains(&util), "sync util {util}");
    }

    #[test]
    fn flashgraph_straggler_tanks_utilization_on_optane_only() {
        let t = spmv_trace(10_000_000, true);
        let optane = PerfModel::new(MachineConfig::paper_optane());
        let nand = PerfModel::new(MachineConfig::paper_nand());
        let u_opt = optane.flashgraph_iteration(&t).io_utilization();
        let u_nand = nand.flashgraph_iteration(&t).io_utilization();
        assert!(u_opt < 0.5, "Optane util should collapse: {u_opt}");
        assert!(u_nand > 0.7, "NAND mostly hides the straggler: {u_nand}");
    }

    #[test]
    fn flashgraph_without_skew_performs_well() {
        let t = spmv_trace(10_000_000, false);
        let m = PerfModel::new(MachineConfig::paper_optane());
        let u = m.flashgraph_iteration(&t).io_utilization();
        let t_skew = spmv_trace(10_000_000, true);
        let u_skew = m.flashgraph_iteration(&t_skew).io_utilization();
        assert!(u > u_skew, "balanced {u} vs skewed {u_skew}");
    }

    #[test]
    fn graphene_pipeline_is_compute_bound_on_optane() {
        let m = PerfModel::new(MachineConfig::paper_optane());
        let t = spmv_trace(10_000_000, false);
        let timing = m.graphene_iteration(&t);
        assert!(
            timing.compute_ns > timing.io_ns,
            "one compute thread per disk cannot keep up: {timing:?}"
        );
        let util = timing.io_utilization();
        assert!((0.1..0.7).contains(&util), "graphene util {util}");
    }

    #[test]
    fn thread_scaling_saturates_at_device_bandwidth() {
        let t = spmv_trace(10_000_000, false);
        let mut times = Vec::new();
        for threads in [2usize, 4, 8, 16] {
            let m = PerfModel::new(MachineConfig::paper_optane().with_threads(threads));
            times.push(m.blaze_query(std::slice::from_ref(&t)).total_ns());
        }
        // 2 -> 4 threads should speed up markedly; 8 -> 16 barely (IO-bound).
        assert!(times[0] / times[1] > 1.5, "2->4: {times:?}");
        assert!(times[2] / times[3] < 1.3, "8->16 saturated: {times:?}");
    }

    #[test]
    fn query_bandwidth_matches_bytes_over_time() {
        let m = PerfModel::new(MachineConfig::paper_optane());
        let t = spmv_trace(1_000_000, false);
        let q = m.blaze_query(&[t.clone(), t]);
        let bw = q.avg_bandwidth();
        assert!(bw > 0.0);
        assert!(bw <= m.machine.devices[0].seq_read_bw * 1.01);
    }

    #[test]
    fn empty_trace_costs_only_barrier() {
        let m = PerfModel::new(MachineConfig::paper_optane());
        let t = IterationTrace::new(1);
        let timing = m.blaze_iteration(&t);
        assert_eq!(timing.io_ns, 0.0);
        assert!(timing.total_ns() >= m.costs.barrier_ns);
    }
}
