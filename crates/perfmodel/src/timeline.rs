//! Bandwidth-over-time timelines (Figure 2).

use blaze_types::IterationTrace;

use crate::systems::{IterationTiming, PerfModel};

/// One constant-bandwidth span of the timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimelineSegment {
    /// Start time, seconds.
    pub start_s: f64,
    /// End time, seconds.
    pub end_s: f64,
    /// Read bandwidth over the span, bytes/second.
    pub bandwidth: f64,
}

/// A read-bandwidth timeline of a query execution.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    /// Ordered, contiguous segments.
    pub segments: Vec<TimelineSegment>,
}

impl Timeline {
    /// Builds the timeline from per-iteration timings: during each
    /// iteration's pipelined phase the device streams its bytes; during the
    /// transform and tail phases it is idle (bandwidth zero) — the gaps of
    /// Figure 2(b).
    pub fn build(
        model: &PerfModel,
        traces: &[IterationTrace],
        iteration: impl Fn(&PerfModel, &IterationTrace) -> IterationTiming,
    ) -> Timeline {
        let mut segments = Vec::new();
        let mut t = 0.0f64;
        let mut push = |t: &mut f64, dur_ns: f64, bw: f64| {
            if dur_ns <= 0.0 {
                return;
            }
            let dur = dur_ns * 1e-9;
            segments.push(TimelineSegment {
                start_s: *t,
                end_s: *t + dur,
                bandwidth: bw,
            });
            *t += dur;
        };
        for trace in traces {
            let timing = iteration(model, trace);
            push(&mut t, timing.transform_ns, 0.0);
            let busy = timing.io_ns.max(timing.compute_ns);
            let bw = if busy > 0.0 {
                trace.total_io_bytes() as f64 / (busy * 1e-9)
            } else {
                0.0
            };
            push(&mut t, busy, bw);
            push(&mut t, timing.tail_ns, 0.0);
        }
        Timeline { segments }
    }

    /// Total duration in seconds.
    pub fn duration_s(&self) -> f64 {
        self.segments.last().map_or(0.0, |s| s.end_s)
    }

    /// Samples the timeline at `samples` evenly spaced instants —
    /// the plotted series of Figure 2.
    pub fn sample(&self, samples: usize) -> Vec<(f64, f64)> {
        let dur = self.duration_s();
        if dur == 0.0 || samples == 0 {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(samples);
        let mut seg = 0usize;
        for i in 0..samples {
            let t = dur * (i as f64 + 0.5) / samples as f64;
            while seg + 1 < self.segments.len() && self.segments[seg].end_s < t {
                seg += 1;
            }
            out.push((t, self.segments[seg].bandwidth));
        }
        out
    }

    /// Fraction of total time the device spends idle (bandwidth below
    /// `threshold` bytes/s).
    pub fn idle_fraction(&self, threshold: f64) -> f64 {
        let dur = self.duration_s();
        if dur == 0.0 {
            return 0.0;
        }
        let idle: f64 = self
            .segments
            .iter()
            .filter(|s| s.bandwidth < threshold)
            .map(|s| s.end_s - s.start_s)
            .sum();
        idle / dur
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineConfig;

    fn trace(edges: u64, straggler: bool) -> IterationTrace {
        let mut t = IterationTrace::new(1);
        t.io_bytes_per_device = vec![edges * 4];
        t.io_requests_per_device = vec![(edges * 4 / 16384).max(1)];
        t.io_sequential_requests_per_device = vec![0];
        t.edges_processed = edges;
        t.records_produced = edges;
        t.messages_per_thread = if straggler {
            let mut v = vec![edges / 64; 16];
            v[3] = edges / 2;
            v
        } else {
            vec![edges / 16; 16]
        };
        t
    }

    #[test]
    fn segments_are_contiguous_and_ordered() {
        let m = PerfModel::new(MachineConfig::paper_optane());
        let traces = vec![trace(1_000_000, true); 3];
        let tl = Timeline::build(&m, &traces, PerfModel::flashgraph_iteration);
        for w in tl.segments.windows(2) {
            assert!((w[0].end_s - w[1].start_s).abs() < 1e-12);
            assert!(w[0].start_s < w[0].end_s);
        }
        assert!(tl.duration_s() > 0.0);
    }

    #[test]
    fn flashgraph_on_optane_shows_idle_gaps_but_not_on_nand() {
        let traces = vec![trace(4_000_000, true); 4];
        let optane = PerfModel::new(MachineConfig::paper_optane());
        let nand = PerfModel::new(MachineConfig::paper_nand());
        let tl_opt = Timeline::build(&optane, &traces, PerfModel::flashgraph_iteration);
        let tl_nand = Timeline::build(&nand, &traces, PerfModel::flashgraph_iteration);
        let idle_opt = tl_opt.idle_fraction(1e6);
        let idle_nand = tl_nand.idle_fraction(1e6);
        assert!(idle_opt > 0.3, "Optane idle fraction {idle_opt}");
        assert!(idle_nand < 0.25, "NAND idle fraction {idle_nand}");
    }

    #[test]
    fn sampling_covers_the_whole_duration() {
        let m = PerfModel::new(MachineConfig::paper_optane());
        let traces = vec![trace(1_000_000, false); 2];
        let tl = Timeline::build(&m, &traces, PerfModel::blaze_iteration);
        let series = tl.sample(100);
        assert_eq!(series.len(), 100);
        assert!(series[0].0 < series[99].0);
        assert!(series[99].0 <= tl.duration_s());
        assert!(series.iter().any(|&(_, bw)| bw > 0.0));
    }

    #[test]
    fn empty_timeline() {
        let tl = Timeline::default();
        assert_eq!(tl.duration_s(), 0.0);
        assert!(tl.sample(10).is_empty());
        assert_eq!(tl.idle_fraction(1.0), 0.0);
    }
}
