//! Property-based sanity constraints on the performance model: physical
//! monotonicity must hold for arbitrary workload traces.

use proptest::prelude::*;

use blaze_perfmodel::{MachineConfig, PerfModel};
use blaze_types::IterationTrace;

fn arb_trace() -> impl Strategy<Value = IterationTrace> {
    (
        1u64..10_000,                                            // pages read
        0u64..5_000_000,                                         // edges
        proptest::sample::select(vec![1usize, 4, 16, 64, 1024]), // bins
        0.0f64..1.0,                                             // record fraction
        0.0f64..1.0,                                             // sequential fraction
    )
        .prop_map(|(pages, edges, bins, rec_frac, seq_frac)| {
            let mut t = IterationTrace::new(1);
            let bytes = pages * 4096;
            let requests = pages.div_ceil(4).max(1);
            t.io_bytes_per_device = vec![bytes];
            t.io_requests_per_device = vec![requests];
            t.io_sequential_requests_per_device = vec![(requests as f64 * seq_frac) as u64];
            t.edges_processed = edges;
            t.records_produced = (edges as f64 * rec_frac) as u64;
            // Spread records over bins with a hub in bin 0.
            let per = t.records_produced / bins as u64;
            let mut v = vec![per; bins];
            v[0] += t.records_produced - per * bins as u64;
            t.records_per_bin = v;
            t.messages_per_thread = vec![t.records_produced / 16; 16];
            t.frontier_size = 1000;
            t.bin_buffer_capacity = 256;
            t
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// More compute threads never slow a Blaze query down.
    #[test]
    fn blaze_time_monotonic_in_threads(t in arb_trace()) {
        let mut prev = f64::INFINITY;
        for threads in [2usize, 4, 8, 16, 32] {
            let m = PerfModel::new(MachineConfig::paper_optane().with_threads(threads));
            let total = m.blaze_query(std::slice::from_ref(&t)).total_ns();
            prop_assert!(total <= prev * 1.0001, "{} threads: {} > {}", threads, total, prev);
            prev = total;
        }
    }

    /// A faster device never slows any system down.
    #[test]
    fn faster_device_never_hurts(t in arb_trace()) {
        let nand = PerfModel::new(MachineConfig::paper_nand());
        let optane = PerfModel::new(MachineConfig::paper_optane());
        let ts = std::slice::from_ref(&t);
        prop_assert!(optane.blaze_query(ts).total_ns() <= nand.blaze_query(ts).total_ns());
        prop_assert!(
            optane.flashgraph_query(ts).total_ns() <= nand.flashgraph_query(ts).total_ns()
        );
        prop_assert!(optane.sync_query(ts).total_ns() <= nand.sync_query(ts).total_ns());
    }

    /// With enough bins to feed the gather threads, the sync variant never
    /// beats online binning by more than the bin bookkeeping the binned
    /// engine pays. (With very few bins gather serializes and sync *can*
    /// win — exactly the left edge of Figure 11, so those cases are
    /// excluded here.)
    #[test]
    fn sync_is_never_meaningfully_faster(t in arb_trace()) {
        prop_assume!(t.records_per_bin.len() >= 16);
        // Record-light queries (BFS) genuinely favor sync: the binned
        // engine's gather threads idle while sync uses all threads for
        // scatter — visible in the paper's own Figure 8. Require real
        // gather work for the claim.
        prop_assume!(t.records_produced >= t.edges_processed / 2);
        prop_assume!(t.records_produced > 10_000);
        let m = PerfModel::new(MachineConfig::paper_optane());
        let ts = std::slice::from_ref(&t);
        let blaze = m.blaze_query(ts).total_ns();
        let sync = m.sync_query(ts).total_ns();
        prop_assert!(sync >= blaze - t.records_per_bin.len() as f64 * 200.0 - 1e4,
            "sync {} vs blaze {}", sync, blaze);
    }

    /// Utilization is a fraction, and bandwidth never exceeds the device.
    #[test]
    fn utilization_and_bandwidth_are_bounded(t in arb_trace()) {
        let m = PerfModel::new(MachineConfig::paper_optane());
        for timing in [
            m.blaze_iteration(&t),
            m.sync_iteration(&t),
            m.flashgraph_iteration(&t),
            m.graphene_iteration(&t),
        ] {
            let u = timing.io_utilization();
            prop_assert!((0.0..=1.0).contains(&u), "util {}", u);
        }
        let q = m.blaze_query(std::slice::from_ref(&t));
        prop_assert!(q.avg_bandwidth() <= m.machine.devices[0].seq_read_bw * 1.01);
    }

    /// Total time is monotonic in trace volume.
    #[test]
    fn time_monotonic_in_volume(t in arb_trace()) {
        let m = PerfModel::new(MachineConfig::paper_optane());
        let mut bigger = t.clone();
        bigger.io_bytes_per_device[0] *= 2;
        bigger.io_requests_per_device[0] *= 2;
        bigger.edges_processed *= 2;
        bigger.records_produced *= 2;
        for b in &mut bigger.records_per_bin { *b *= 2; }
        let small = m.blaze_query(std::slice::from_ref(&t)).total_ns();
        let large = m.blaze_query(std::slice::from_ref(&bigger)).total_ns();
        prop_assert!(large >= small, "large {} < small {}", large, small);
    }
}
