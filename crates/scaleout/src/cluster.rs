//! The simulated cluster: one Blaze engine per machine, zero network
//! traffic inside `EdgeMap`, frontier broadcast between iterations.

use blaze_sync::Arc;

use blaze_binning::BinValue;
use blaze_core::{BlazeEngine, EngineOptions};
use blaze_frontier::VertexSubset;
use blaze_graph::{Csr, DiskGraph};
use blaze_storage::StripedStorage;
use blaze_types::{Result, VertexId};

use crate::partition::{partition_by_destination, DstPartition};

/// One machine of the cluster.
pub struct Machine {
    /// Destination range this machine gathers for.
    pub dst_range: std::ops::Range<VertexId>,
    /// The machine's engine over its destination-partitioned subgraph.
    pub engine: BlazeEngine,
}

/// Cross-machine communication accounting.
#[derive(Debug, Clone, Default)]
pub struct ClusterStats {
    /// `edge_map` rounds executed.
    pub rounds: usize,
    /// Bytes each machine would send per round to broadcast its newly
    /// activated vertices (id + value) to the other machines, summed.
    pub broadcast_bytes: u64,
    /// Total bytes read from every machine's device array.
    pub io_bytes: u64,
}

/// A destination-partitioned Blaze cluster.
///
/// Every machine holds the edges whose destination is in its range, so the
/// gather side of every `EdgeMap` is machine-local (bins never cross the
/// network). The input frontier is replicated: in a real deployment each
/// machine would receive the newly activated ids (and the source values
/// the scatter function reads) at the end of the previous iteration —
/// [`ClusterStats::broadcast_bytes`] measures exactly that traffic.
pub struct Cluster {
    machines: Vec<Machine>,
    num_vertices: usize,
    stats: blaze_sync::Mutex<ClusterStats>,
}

impl Cluster {
    /// Builds a cluster of `machines` over `g`, each machine with
    /// `devices_per_machine` simulated SSDs and the given engine options.
    pub fn build(
        g: &Csr,
        machines: usize,
        devices_per_machine: usize,
        options: EngineOptions,
    ) -> Result<Self> {
        let parts = partition_by_destination(g, machines);
        let machines = parts
            .into_iter()
            .map(
                |DstPartition {
                     dst_range,
                     subgraph,
                 }|
                 -> Result<Machine> {
                    let storage = Arc::new(StripedStorage::in_memory(devices_per_machine)?);
                    let graph = Arc::new(DiskGraph::create(&subgraph, storage)?);
                    let engine = BlazeEngine::new(graph, options.clone())?;
                    Ok(Machine { dst_range, engine })
                },
            )
            .collect::<Result<Vec<_>>>()?;
        Ok(Self {
            machines,
            num_vertices: g.num_vertices(),
            stats: blaze_sync::Mutex::new(ClusterStats::default()),
        })
    }

    /// Number of machines.
    pub fn num_machines(&self) -> usize {
        self.machines.len()
    }

    /// Number of vertices in the global graph.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Per-machine engines (for inspecting traces/stats).
    pub fn machines(&self) -> &[Machine] {
        &self.machines
    }

    /// Communication accounting so far.
    pub fn stats(&self) -> ClusterStats {
        self.stats.lock().clone()
    }

    /// Distributed `EdgeMap`: every machine runs the same scatter/gather
    /// over its destination partition; the returned frontier is the union
    /// of the machines' outputs. `value_bytes` sizes the per-activation
    /// broadcast for the communication model (vertex id + scattered state).
    pub fn edge_map<V, FS, FG, FC>(
        &self,
        frontier: &VertexSubset,
        scatter: FS,
        gather: FG,
        cond: FC,
        output: bool,
        value_bytes: usize,
    ) -> Result<VertexSubset>
    where
        V: BinValue,
        FS: Fn(VertexId, VertexId) -> V + Sync,
        FG: Fn(VertexId, V) -> bool + Sync,
        FC: Fn(VertexId) -> bool + Sync,
    {
        let mut out = VertexSubset::new(self.num_vertices);
        let mut broadcast = 0u64;
        for machine in &self.machines {
            let local = machine
                .engine
                .edge_map(frontier, &scatter, &gather, &cond, output)?;
            // Activations outside this machine's own range would be a bug:
            // destination partitioning guarantees locality.
            debug_assert!(local
                .members()
                .iter()
                .all(|v| machine.dst_range.contains(v)));
            // Each activation must reach the other machines before the
            // next round (they need it in their replicated frontier).
            broadcast +=
                local.len() as u64 * (4 + value_bytes as u64) * (self.machines.len() as u64 - 1);
            for v in local.members() {
                out.insert(v);
            }
        }
        let mut stats = self.stats.lock();
        stats.rounds += 1;
        stats.broadcast_bytes += broadcast;
        stats.io_bytes = self
            .machines
            .iter()
            .map(|m| m.engine.stats().io_bytes)
            .sum();
        drop(stats);
        out.seal();
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blaze_core::VertexArray;
    use blaze_graph::gen::{rmat, uniform, RmatConfig};

    /// Cluster BFS levels, mirroring Algorithm 1 over the cluster API.
    fn cluster_bfs(cluster: &Cluster, root: VertexId) -> Vec<i64> {
        let n = cluster.num_vertices();
        let level = VertexArray::<i64>::new(n, -1);
        level.set(root as usize, 0);
        let mut frontier = VertexSubset::single(n, root);
        let mut depth = 0i64;
        while !frontier.is_empty() {
            depth += 1;
            let d = depth;
            frontier = cluster
                .edge_map(
                    &frontier,
                    |_s: u32, _d: u32| 0u32,
                    |dst: u32, _v: u32| {
                        if level.get(dst as usize) == -1 {
                            level.set(dst as usize, d);
                            true
                        } else {
                            false
                        }
                    },
                    |dst: u32| level.get(dst as usize) == -1,
                    true,
                    4,
                )
                .unwrap();
        }
        level.to_vec()
    }

    fn reference_levels(g: &Csr, root: u32) -> Vec<i64> {
        let mut level = vec![-1i64; g.num_vertices()];
        level[root as usize] = 0;
        let mut frontier = vec![root];
        let mut d = 0;
        while !frontier.is_empty() {
            d += 1;
            let mut next = Vec::new();
            for &v in &frontier {
                for &w in g.neighbors(v) {
                    if level[w as usize] == -1 {
                        level[w as usize] = d;
                        next.push(w);
                    }
                }
            }
            frontier = next;
        }
        level
    }

    #[test]
    fn cluster_bfs_matches_single_machine_reference() {
        let g = rmat(&RmatConfig::new(9));
        for machines in [1, 2, 4] {
            let cluster = Cluster::build(&g, machines, 1, EngineOptions::default()).unwrap();
            assert_eq!(
                cluster_bfs(&cluster, 0),
                reference_levels(&g, 0),
                "{machines} machines"
            );
        }
    }

    #[test]
    fn gather_stays_machine_local() {
        // The debug_assert in edge_map enforces it; run a full-frontier
        // round on 4 machines to exercise it.
        let g = uniform(9, 8, 5);
        let cluster = Cluster::build(&g, 4, 2, EngineOptions::default()).unwrap();
        let frontier = VertexSubset::full(g.num_vertices());
        let sum = VertexArray::<u64>::new(g.num_vertices(), 0);
        cluster
            .edge_map(
                &frontier,
                |_s: u32, _d: u32| 1u32,
                |d: u32, v: u32| {
                    sum.set(d as usize, sum.get(d as usize) + v as u64);
                    true
                },
                |_d: u32| true,
                true,
                4,
            )
            .unwrap();
        let total: u64 = (0..g.num_vertices()).map(|v| sum.get(v)).sum();
        assert_eq!(
            total,
            g.num_edges(),
            "every edge delivered exactly once across machines"
        );
    }

    #[test]
    fn broadcast_bytes_scale_with_activations_and_machines() {
        let g = rmat(&RmatConfig::new(8));
        let f2 = {
            let c = Cluster::build(&g, 2, 1, EngineOptions::default()).unwrap();
            cluster_bfs(&c, 0);
            c.stats()
        };
        let f4 = {
            let c = Cluster::build(&g, 4, 1, EngineOptions::default()).unwrap();
            cluster_bfs(&c, 0);
            c.stats()
        };
        assert!(f4.broadcast_bytes > f2.broadcast_bytes, "{f4:?} vs {f2:?}");
        // 4 machines broadcast to 3 peers vs 1 peer: exactly 3x the bytes
        // for the same activation stream.
        assert_eq!(f4.broadcast_bytes, 3 * f2.broadcast_bytes);
        assert!(f2.rounds > 0 && f2.io_bytes > 0);
    }

    #[test]
    fn io_splits_across_machines() {
        let g = rmat(&RmatConfig::new(9));
        let single = Cluster::build(&g, 1, 1, EngineOptions::default()).unwrap();
        let quad = Cluster::build(&g, 4, 1, EngineOptions::default()).unwrap();
        let frontier = VertexSubset::full(g.num_vertices());
        let run = |c: &Cluster| {
            c.edge_map(
                &frontier,
                |s: u32, _d: u32| s,
                |_d: u32, _v: u32| false,
                |_| true,
                false,
                4,
            )
            .unwrap();
            c.machines()
                .iter()
                .map(|m| m.engine.stats().io_bytes)
                .collect::<Vec<_>>()
        };
        let s = run(&single);
        let q = run(&quad);
        // Each machine reads only its own column slice; totals are close to
        // the single-machine scan (pages are padded per machine).
        let total_q: u64 = q.iter().sum();
        // Page rounding pads each machine's last page, so allow modest
        // overhead at this tiny scale.
        assert!(
            total_q as f64 <= 1.5 * s[0] as f64,
            "quad {total_q} vs single {}",
            s[0]
        );
        let max = *q.iter().max().unwrap() as f64;
        let min = *q.iter().min().unwrap() as f64;
        assert!(max / min.max(1.0) < 2.0, "per-machine IO balanced: {q:?}");
    }
}
