//! The scale-out cluster: destination-partitioned shards running
//! supersteps concurrently, exchanging only frontier deltas.
//!
//! Every shard (one [`Machine`]) owns the edges whose destination falls in
//! its range, so the gather side of every `EdgeMap` is machine-local —
//! bins never cross the network (paper Section VI). What does cross is the
//! frontier: at the start of a superstep each shard wire-encodes the slice
//! of the input frontier it owns ([`blaze_frontier::wire`]) and swaps it
//! with every peer over the bounded [`ExchangeFabric`], then rebuilds the
//! full replica locally. The input frontier of round `k` is exactly the
//! set activated in round `k-1`, so this ships only deltas, never the
//! accumulated visited set.
//!
//! Execution is genuinely concurrent: a persistent
//! [`ShardPool`] thread per shard drives that
//! shard's engine, and [`edge_map`](Cluster::edge_map) is the superstep
//! barrier — it returns once every shard has finished and the outputs are
//! unioned. [`ClusterStats`] reports measured per-shard [`ExecStats`] and
//! measured exchange traffic, which the perfmodel's network leg prices.

use std::ops::Range;

use blaze_sync::{Arc, Mutex};

use blaze_binning::BinValue;
use blaze_core::{BlazeEngine, EngineOptions, ExecStats, ShardPool};
use blaze_frontier::{wire, VertexSubset};
use blaze_graph::{Csr, DiskGraph, VertexLayout, VertexPermutation};
use blaze_storage::StripedStorage;
use blaze_types::{BlazeError, Result, VertexId};

use crate::exchange::ExchangeFabric;
use crate::partition::{partition_by_destination, DstPartition};
use crate::router::ShardRouter;

/// One machine of the cluster.
pub struct Machine {
    /// Destination range this machine gathers for (physical id space).
    pub dst_range: Range<VertexId>,
    /// The machine's engine over its destination-partitioned subgraph.
    pub engine: BlazeEngine,
}

/// Measured cluster execution statistics.
#[derive(Debug, Clone, Default)]
pub struct ClusterStats {
    /// `edge_map` rounds executed.
    pub rounds: usize,
    /// Measured wire bytes shipped through the exchange fabric: encoded
    /// frontier slices plus per-frame framing.
    pub exchange_bytes: u64,
    /// Modeled bytes for the scattered values accompanying the exchanged
    /// ids (`frontier members x value_bytes x peers`); the ids themselves
    /// are measured in [`exchange_bytes`](Self::exchange_bytes).
    pub exchange_value_bytes: u64,
    /// Point-to-point messages completed on the fabric.
    pub exchange_messages: u64,
    /// Total bytes read from every machine's device array.
    pub io_bytes: u64,
    /// Per-shard engine statistics, index-aligned with
    /// [`Cluster::machines`].
    pub per_shard: Vec<ExecStats>,
}

/// Round accounting the fabric cannot measure itself.
struct Counters {
    rounds: usize,
    value_bytes: u64,
}

/// A destination-partitioned Blaze cluster with concurrent supersteps.
pub struct Cluster {
    machines: Vec<Machine>,
    pool: ShardPool,
    fabric: ExchangeFabric,
    router: ShardRouter,
    layout: VertexPermutation,
    /// Global out-degrees in physical id space. Shard subgraphs filter
    /// neighbor lists to their own range, so degree-normalizing algorithms
    /// (PageRank) must read the unfiltered degree from here.
    out_degrees: Vec<u32>,
    num_vertices: usize,
    counters: Mutex<Counters>,
}

impl Cluster {
    /// Builds a cluster of `machines` over `g` (original id order kept),
    /// each machine with `devices_per_machine` simulated SSDs and the
    /// given engine options.
    pub fn build(
        g: &Csr,
        machines: usize,
        devices_per_machine: usize,
        options: EngineOptions,
    ) -> Result<Self> {
        Self::build_with_layout(
            g,
            VertexLayout::None,
            machines,
            devices_per_machine,
            options,
        )
    }

    /// Builds a cluster over `g` after applying `layout`, so the physical
    /// packing order (and hence the destination partitioning) matches what
    /// a single engine with the same layout would see.
    pub fn build_with_layout(
        g: &Csr,
        layout: VertexLayout,
        machines: usize,
        devices_per_machine: usize,
        options: EngineOptions,
    ) -> Result<Self> {
        let (perm, _hot) = layout.plan(g);
        let physical = perm.permute_csr(g);
        Self::build_physical(&physical, perm, machines, devices_per_machine, options)
    }

    /// Builds a cluster over a graph already in physical id space, carrying
    /// the permutation that maps it back to original ids — the path the CLI
    /// takes when sharding an on-disk graph whose layout was fixed at
    /// convert time.
    pub fn build_physical(
        physical: &Csr,
        layout: VertexPermutation,
        machines: usize,
        devices_per_machine: usize,
        options: EngineOptions,
    ) -> Result<Self> {
        if layout.len() != physical.num_vertices() {
            return Err(BlazeError::Config(format!(
                "layout covers {} vertices but the graph has {}",
                layout.len(),
                physical.num_vertices()
            )));
        }
        let n = physical.num_vertices();
        let out_degrees: Vec<u32> = (0..n as VertexId).map(|v| physical.degree(v)).collect();
        let parts = partition_by_destination(physical, machines);
        let mut bounds: Vec<VertexId> = parts.iter().map(|p| p.dst_range.start).collect();
        bounds.push(n as VertexId);
        let machines = parts
            .into_iter()
            .map(
                |DstPartition {
                     dst_range,
                     subgraph,
                 }|
                 -> Result<Machine> {
                    let storage = Arc::new(StripedStorage::in_memory(devices_per_machine)?);
                    let graph = Arc::new(DiskGraph::create(&subgraph, storage)?);
                    let engine = BlazeEngine::new(graph, options.clone())?;
                    Ok(Machine { dst_range, engine })
                },
            )
            .collect::<Result<Vec<_>>>()?;
        let shards = machines.len();
        Ok(Self {
            machines,
            pool: ShardPool::new(shards),
            fabric: ExchangeFabric::with_defaults(shards),
            router: ShardRouter::new(bounds),
            layout,
            out_degrees,
            num_vertices: n,
            counters: Mutex::new(Counters {
                rounds: 0,
                value_bytes: 0,
            }),
        })
    }

    /// Number of machines.
    pub fn num_machines(&self) -> usize {
        self.machines.len()
    }

    /// Number of vertices in the global graph.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Per-machine engines (for inspecting traces/stats).
    pub fn machines(&self) -> &[Machine] {
        &self.machines
    }

    /// The original ↔ physical permutation shared by every shard.
    pub fn layout(&self) -> &VertexPermutation {
        &self.layout
    }

    /// Global out-degrees in physical id space (shard subgraphs only see
    /// their filtered slice).
    pub fn out_degrees(&self) -> &[u32] {
        &self.out_degrees
    }

    /// The router mapping vertex ids to owning shards.
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// The shard owning `orig` (an original-space vertex id). Ids beyond
    /// the graph take the router's consistent-hash fallback.
    pub fn owner_of(&self, orig: VertexId) -> usize {
        if (orig as usize) < self.num_vertices {
            self.router.route(self.layout.to_physical(orig))
        } else {
            self.router.route(orig)
        }
    }

    /// Measured statistics so far.
    pub fn stats(&self) -> ClusterStats {
        let (rounds, value_bytes) = {
            let c = self.counters.lock();
            (c.rounds, c.value_bytes)
        };
        let per_shard: Vec<ExecStats> = self.machines.iter().map(|m| m.engine.stats()).collect();
        ClusterStats {
            rounds,
            exchange_bytes: self.fabric.bytes_sent(),
            exchange_value_bytes: value_bytes,
            exchange_messages: self.fabric.messages_sent(),
            io_bytes: per_shard.iter().map(|s| s.io_bytes).sum(),
            per_shard,
        }
    }

    /// Distributed `EdgeMap`, one superstep: every shard concurrently
    /// exchanges its slice of `frontier` with its peers, rebuilds the full
    /// replica, and runs the same scatter/gather over its destination
    /// partition; the returned frontier is the union of the shards'
    /// outputs. `value_bytes` sizes the modeled value payload that rides
    /// along with each exchanged activation (vertex state the scatter
    /// side reads).
    ///
    /// Ids in `frontier` (and those seen by `scatter`/`gather`/`cond`) are
    /// physical — the same space a single engine built with the same
    /// layout uses.
    pub fn edge_map<V, FS, FG, FC>(
        &self,
        frontier: &VertexSubset,
        scatter: FS,
        gather: FG,
        cond: FC,
        output: bool,
        value_bytes: usize,
    ) -> Result<VertexSubset>
    where
        V: BinValue,
        FS: Fn(VertexId, VertexId) -> V + Sync,
        FG: Fn(VertexId, V) -> bool + Sync,
        FC: Fn(VertexId) -> bool + Sync,
    {
        let shards = self.machines.len();
        let active = frontier.len() as u64;
        let out = if shards == 1 {
            // Single shard: nothing to exchange, drive the engine directly.
            self.machines[0]
                .engine
                .edge_map(frontier, &scatter, &gather, &cond, output)?
        } else {
            let slots: Vec<Mutex<Option<Result<VertexSubset>>>> =
                (0..shards).map(|_| Mutex::new(None)).collect();
            self.pool.run(&|shard| {
                let result =
                    self.shard_superstep(shard, frontier, &scatter, &gather, &cond, output);
                *slots[shard].lock() = Some(result);
            });
            let mut out = VertexSubset::new(self.num_vertices);
            for slot in &slots {
                // panic-audit: unreachable — `run` is a completion barrier,
                // so every worker stored its result (or `run` re-raised the
                // panic) before this loop starts.
                let local = slot.lock().take().expect("every shard reports a result")?;
                for v in local.members() {
                    out.insert(v);
                }
            }
            out.seal();
            out
        };
        let mut c = self.counters.lock();
        c.rounds += 1;
        c.value_bytes += active * value_bytes as u64 * (shards as u64 - 1);
        drop(c);
        Ok(out)
    }

    /// One shard's half of a superstep, executed on its pool thread.
    ///
    /// Every fallible step sits *after* the collective exchange, so a shard
    /// hitting an error still completes the all-to-all and cannot strand
    /// its peers mid-round; the error surfaces through the result slot.
    fn shard_superstep<V, FS, FG, FC>(
        &self,
        shard: usize,
        frontier: &VertexSubset,
        scatter: &FS,
        gather: &FG,
        cond: &FC,
        output: bool,
    ) -> Result<VertexSubset>
    where
        V: BinValue,
        FS: Fn(VertexId, VertexId) -> V + Sync,
        FG: Fn(VertexId, V) -> bool + Sync,
        FC: Fn(VertexId) -> bool + Sync,
    {
        let machine = &self.machines[shard];
        let payload = wire::encode_range(frontier, machine.dst_range.clone());
        let inbox = self.fabric.exchange(shard, &payload);
        let mut replica = VertexSubset::new(self.num_vertices);
        frontier.for_each_in_range(machine.dst_range.clone(), |v| {
            replica.insert(v);
        });
        for (src, message) in inbox.iter().enumerate() {
            if src == shard {
                continue;
            }
            wire::decode_into(message, &replica)?;
        }
        replica.seal();
        let local = machine
            .engine
            .edge_map(&replica, scatter, gather, cond, output)?;
        // Destination partitioning guarantees gather locality; an escape
        // means the partition table and the subgraphs disagree, and the
        // union frontier (and every downstream round) would silently
        // corrupt. Fail loudly, in release builds too.
        for v in local.members() {
            if !machine.dst_range.contains(&v) {
                return Err(BlazeError::Engine(format!(
                    "shard {shard} activated vertex {v} outside its destination \
                     range {:?}: destination partitioning is broken",
                    machine.dst_range
                )));
            }
        }
        Ok(local)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blaze_core::VertexArray;
    use blaze_graph::gen::{rmat, uniform, RmatConfig};

    /// Cluster BFS levels, mirroring Algorithm 1 over the cluster API.
    fn cluster_bfs(cluster: &Cluster, root: VertexId) -> Vec<i64> {
        let n = cluster.num_vertices();
        let level = VertexArray::<i64>::new(n, -1);
        level.set(root as usize, 0);
        let mut frontier = VertexSubset::single(n, root);
        let mut depth = 0i64;
        while !frontier.is_empty() {
            depth += 1;
            let d = depth;
            frontier = cluster
                .edge_map(
                    &frontier,
                    |_s: u32, _d: u32| 0u32,
                    |dst: u32, _v: u32| {
                        if level.get(dst as usize) == -1 {
                            level.set(dst as usize, d);
                            true
                        } else {
                            false
                        }
                    },
                    |dst: u32| level.get(dst as usize) == -1,
                    true,
                    4,
                )
                .unwrap();
        }
        level.to_vec()
    }

    fn reference_levels(g: &Csr, root: u32) -> Vec<i64> {
        let mut level = vec![-1i64; g.num_vertices()];
        level[root as usize] = 0;
        let mut frontier = vec![root];
        let mut d = 0;
        while !frontier.is_empty() {
            d += 1;
            let mut next = Vec::new();
            for &v in &frontier {
                for &w in g.neighbors(v) {
                    if level[w as usize] == -1 {
                        level[w as usize] = d;
                        next.push(w);
                    }
                }
            }
            frontier = next;
        }
        level
    }

    #[test]
    fn cluster_bfs_matches_single_machine_reference() {
        let g = rmat(&RmatConfig::new(9));
        for machines in [1, 2, 4] {
            let cluster = Cluster::build(&g, machines, 1, EngineOptions::default()).unwrap();
            assert_eq!(
                cluster_bfs(&cluster, 0),
                reference_levels(&g, 0),
                "{machines} machines"
            );
        }
    }

    #[test]
    fn gather_stays_machine_local() {
        // A full-frontier round on 4 machines: every edge must be applied
        // exactly once, each on the machine owning its destination.
        let g = uniform(9, 8, 5);
        let cluster = Cluster::build(&g, 4, 2, EngineOptions::default()).unwrap();
        let frontier = VertexSubset::full(g.num_vertices());
        let sum = VertexArray::<u64>::new(g.num_vertices(), 0);
        cluster
            .edge_map(
                &frontier,
                |_s: u32, _d: u32| 1u32,
                |d: u32, v: u32| {
                    sum.set(d as usize, sum.get(d as usize) + v as u64);
                    true
                },
                |_d: u32| true,
                true,
                4,
            )
            .unwrap();
        let total: u64 = (0..g.num_vertices()).map(|v| sum.get(v)).sum();
        assert_eq!(
            total,
            g.num_edges(),
            "every edge delivered exactly once across machines"
        );
    }

    #[test]
    fn exchange_traffic_is_measured_and_scales_with_machines() {
        let g = rmat(&RmatConfig::new(8));
        let f1 = {
            let c = Cluster::build(&g, 1, 1, EngineOptions::default()).unwrap();
            cluster_bfs(&c, 0);
            c.stats()
        };
        let f2 = {
            let c = Cluster::build(&g, 2, 1, EngineOptions::default()).unwrap();
            cluster_bfs(&c, 0);
            c.stats()
        };
        let f4 = {
            let c = Cluster::build(&g, 4, 1, EngineOptions::default()).unwrap();
            cluster_bfs(&c, 0);
            c.stats()
        };
        // One shard never touches the fabric.
        assert_eq!(f1.exchange_bytes, 0);
        assert_eq!(f1.exchange_messages, 0);
        assert_eq!(f1.exchange_value_bytes, 0);
        // More peers, more traffic — both the measured delta bytes and the
        // modeled value payload.
        assert!(f4.exchange_bytes > f2.exchange_bytes, "{f4:?} vs {f2:?}");
        // BFS is deterministic, so the frontiers per round are identical
        // across shard counts: the modeled value payload scales exactly
        // with the peer count (3 peers vs 1).
        assert_eq!(f4.exchange_value_bytes, 3 * f2.exchange_value_bytes);
        // Messages: every round completes peers x shards point-to-point
        // sends; same round count means an exact 6x ratio (4*3 vs 2*1).
        assert_eq!(f2.rounds, f4.rounds);
        assert_eq!(f4.exchange_messages, 6 * f2.exchange_messages);
        assert!(f2.rounds > 0 && f2.io_bytes > 0);
    }

    #[test]
    fn stats_report_per_shard_engines() {
        let g = rmat(&RmatConfig::new(8));
        let c = Cluster::build(&g, 4, 1, EngineOptions::default()).unwrap();
        cluster_bfs(&c, 0);
        let stats = c.stats();
        assert_eq!(stats.per_shard.len(), 4);
        assert_eq!(
            stats.io_bytes,
            stats.per_shard.iter().map(|s| s.io_bytes).sum::<u64>()
        );
        assert!(stats.per_shard.iter().all(|s| s.iterations > 0));
    }

    #[test]
    fn io_splits_across_machines() {
        let g = rmat(&RmatConfig::new(9));
        let single = Cluster::build(&g, 1, 1, EngineOptions::default()).unwrap();
        let quad = Cluster::build(&g, 4, 1, EngineOptions::default()).unwrap();
        let frontier = VertexSubset::full(g.num_vertices());
        let run = |c: &Cluster| {
            c.edge_map(
                &frontier,
                |s: u32, _d: u32| s,
                |_d: u32, _v: u32| false,
                |_| true,
                false,
                4,
            )
            .unwrap();
            c.machines()
                .iter()
                .map(|m| m.engine.stats().io_bytes)
                .collect::<Vec<_>>()
        };
        let s = run(&single);
        let q = run(&quad);
        // Each machine reads only its own column slice; totals are close to
        // the single-machine scan (pages are padded per machine).
        let total_q: u64 = q.iter().sum();
        // Page rounding pads each machine's last page, so allow modest
        // overhead at this tiny scale.
        assert!(
            total_q as f64 <= 1.5 * s[0] as f64,
            "quad {total_q} vs single {}",
            s[0]
        );
        let max = *q.iter().max().unwrap() as f64;
        let min = *q.iter().min().unwrap() as f64;
        assert!(max / min.max(1.0) < 2.0, "per-machine IO balanced: {q:?}");
    }

    #[test]
    fn degree_layout_cluster_matches_reference_after_translation() {
        let g = rmat(&RmatConfig::new(8));
        let cluster =
            Cluster::build_with_layout(&g, VertexLayout::Degree, 3, 1, EngineOptions::default())
                .unwrap();
        let layout = cluster.layout().clone();
        assert!(!layout.is_identity(), "rmat graphs reorder under degree");
        let root_phys = layout.to_physical(0);
        let phys_levels = cluster_bfs(&cluster, root_phys);
        let expect = reference_levels(&g, 0);
        let got: Vec<i64> = (0..g.num_vertices())
            .map(|orig| phys_levels[layout.to_physical(orig as u32) as usize])
            .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn owner_of_agrees_with_machine_ranges() {
        let g = rmat(&RmatConfig::new(8));
        let cluster = Cluster::build(&g, 4, 1, EngineOptions::default()).unwrap();
        for orig in (0..g.num_vertices() as u32).step_by(7) {
            let shard = cluster.owner_of(orig);
            let phys = cluster.layout().to_physical(orig);
            assert!(
                cluster.machines()[shard].dst_range.contains(&phys),
                "vertex {orig} routed to shard {shard} which does not own it"
            );
        }
        // Beyond the graph: the hash fallback still names a real shard.
        assert!(cluster.owner_of(u32::MAX) < 4);
    }
}
