//! The delta-exchange fabric: bounded point-to-point links between shards.
//!
//! At the start of every superstep each shard broadcasts the slice of the
//! frontier it owns — already wire-encoded by [`blaze_frontier::wire`] — to
//! every peer, and assembles its peers' slices into the replica it drives
//! its engine with. The fabric gives each ordered shard pair a bounded
//! [`ArrayQueue`] of frames, so a round's traffic is flow-controlled the
//! way a socket's send buffer would be: a fast sender fills the link and
//! must drain its own inbox before pushing more, which is exactly what
//! makes the all-to-all deadlock-free under bounded capacity.
//!
//! [`exchange`](ExchangeFabric::exchange) is symmetric and collective —
//! every shard calls it once per superstep with its own payload and
//! returns with everyone else's. The enclosing superstep barrier
//! (`ShardPool::run`) guarantees rounds never overlap on a link, so a
//! frame in flight always belongs to the current round.

use blaze_sync::atomic::{AtomicU64, Ordering};
use blaze_sync::queue::ArrayQueue;
use blaze_sync::Backoff;

/// Modeled per-frame wire overhead (length prefix + flags), counted into
/// [`ExchangeFabric::bytes_sent`] so the network leg prices framing too.
pub const FRAME_HEADER_BYTES: usize = 8;

/// Default frame payload granularity: 32 KiB, a typical socket write.
pub const DEFAULT_FRAME_BYTES: usize = 32 << 10;

/// Default per-link capacity in frames (the "send buffer" depth).
pub const DEFAULT_LINK_CAPACITY: usize = 4;

/// One flow-controlled chunk of a shard's round payload.
struct Frame {
    /// Marks the final frame of the sender's payload for this round.
    last: bool,
    data: Vec<u8>,
}

/// All-to-all frame links between `shards` peers.
pub struct ExchangeFabric {
    shards: usize,
    frame_bytes: usize,
    /// Link from shard `s` to shard `d` at index `s * shards + d`.
    /// Self-links exist but stay empty (keeps indexing branch-free).
    links: Vec<ArrayQueue<Frame>>,
    /// Total bytes pushed across all links (payload + frame headers).
    bytes: AtomicU64,
    /// Total point-to-point messages (one per peer per round).
    messages: AtomicU64,
}

impl ExchangeFabric {
    /// A fabric with explicit link capacity (frames) and frame payload
    /// size (bytes). Tiny values force multi-frame rounds and link
    /// backpressure — the loom model uses capacity 1 and 2-byte frames.
    pub fn new(shards: usize, link_capacity: usize, frame_bytes: usize) -> Self {
        assert!(shards >= 1 && link_capacity >= 1 && frame_bytes >= 1);
        Self {
            shards,
            frame_bytes,
            links: (0..shards * shards)
                .map(|_| ArrayQueue::new(link_capacity))
                .collect(),
            bytes: AtomicU64::new(0),
            messages: AtomicU64::new(0),
        }
    }

    /// A fabric with production defaults.
    pub fn with_defaults(shards: usize) -> Self {
        Self::new(shards, DEFAULT_LINK_CAPACITY, DEFAULT_FRAME_BYTES)
    }

    /// Number of shards the fabric connects.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Total bytes shipped so far (payload plus frame headers).
    pub fn bytes_sent(&self) -> u64 {
        // sync-audit: statistics only; readers run after the superstep
        // barrier, which already orders the counter writes.
        self.bytes.load(Ordering::Relaxed)
    }

    /// Total point-to-point messages completed so far.
    pub fn messages_sent(&self) -> u64 {
        // sync-audit: statistics only, ordered by the superstep barrier.
        self.messages.load(Ordering::Relaxed)
    }

    /// One shard's half of a collective round: ship `payload` to every
    /// peer, return each peer's complete payload (the entry at the
    /// caller's own index stays empty). Blocks until both directions
    /// finish; every shard of the fabric must call this exactly once per
    /// round or everyone waits forever.
    ///
    /// Sending and receiving interleave: when a link is full the caller
    /// keeps draining its inbox instead of spinning on the push, so the
    /// all-to-all makes progress under any capacity >= 1.
    pub fn exchange(&self, shard: usize, payload: &[u8]) -> Vec<Vec<u8>> {
        assert!(shard < self.shards);
        let mut inbox: Vec<Vec<u8>> = (0..self.shards).map(|_| Vec::new()).collect();
        if self.shards == 1 {
            return inbox;
        }
        let mut got_last = vec![false; self.shards];
        got_last[shard] = true;
        let mut rx_pending = self.shards - 1;
        let mut cursor = vec![0usize; self.shards];
        let mut sent_last = vec![false; self.shards];
        sent_last[shard] = true;
        let mut tx_pending = self.shards - 1;
        let mut round_bytes = 0u64;
        let backoff = Backoff::new();
        while tx_pending > 0 || rx_pending > 0 {
            let mut progress = false;
            // Drain everything currently queued for us. A peer only ever
            // queues current-round frames (the superstep barrier orders
            // rounds), so popping past its `last` frame cannot happen.
            for src in 0..self.shards {
                if src == shard {
                    continue;
                }
                while let Some(frame) = self.links[src * self.shards + shard].pop() {
                    progress = true;
                    inbox[src].extend_from_slice(&frame.data);
                    if frame.last && !got_last[src] {
                        got_last[src] = true;
                        rx_pending -= 1;
                    }
                }
            }
            // Push the next frame toward every peer still behind.
            for dst in 0..self.shards {
                if sent_last[dst] {
                    continue;
                }
                let start = cursor[dst];
                let end = (start + self.frame_bytes).min(payload.len());
                let frame = Frame {
                    last: end == payload.len(),
                    data: payload[start..end].to_vec(),
                };
                let last = frame.last;
                if self.links[shard * self.shards + dst].push(frame).is_ok() {
                    progress = true;
                    round_bytes += (end - start + FRAME_HEADER_BYTES) as u64;
                    cursor[dst] = end;
                    if last {
                        sent_last[dst] = true;
                        tx_pending -= 1;
                    }
                }
            }
            if progress {
                backoff.reset();
            } else {
                backoff.snooze();
            }
        }
        // sync-audit: statistics counters — no payload data is published
        // through them (frames hand off via the queue), and readers only
        // look after the superstep barrier.
        self.bytes.fetch_add(round_bytes, Ordering::Relaxed);
        self.messages
            .fetch_add(self.shards as u64 - 1, Ordering::Relaxed);
        inbox
    }
}

impl std::fmt::Debug for ExchangeFabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExchangeFabric")
            .field("shards", &self.shards)
            .field("frame_bytes", &self.frame_bytes)
            .field("bytes_sent", &self.bytes_sent())
            .field("messages_sent", &self.messages_sent())
            .finish()
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use blaze_sync::thread;

    fn all_to_all(shards: usize, capacity: usize, frame_bytes: usize, sizes: &[usize]) {
        let fabric = ExchangeFabric::new(shards, capacity, frame_bytes);
        let payloads: Vec<Vec<u8>> = (0..shards)
            .map(|s| {
                (0..sizes[s])
                    .map(|i| (s * 31 + i) as u8)
                    .collect::<Vec<u8>>()
            })
            .collect();
        thread::scope(|scope| {
            let handles: Vec<_> = (0..shards)
                .map(|s| {
                    let fabric = &fabric;
                    let payloads = &payloads;
                    scope.spawn(move || fabric.exchange(s, &payloads[s]))
                })
                .collect();
            for (s, h) in handles.into_iter().enumerate() {
                let inbox = h.join().unwrap();
                for (src, got) in inbox.iter().enumerate() {
                    if src == s {
                        assert!(got.is_empty(), "own slot stays empty");
                    } else {
                        assert_eq!(got, &payloads[src], "shard {s} from {src}");
                    }
                }
            }
        });
    }

    #[test]
    fn two_shards_swap_payloads() {
        all_to_all(2, 4, 8, &[5, 29]);
    }

    #[test]
    fn multi_frame_payloads_survive_tiny_links() {
        // Payloads much larger than capacity * frame: backpressure must
        // engage without deadlocking.
        all_to_all(3, 1, 4, &[100, 0, 57]);
        all_to_all(4, 2, 16, &[1000, 3, 500, 64]);
    }

    #[test]
    fn empty_payloads_still_complete_the_round() {
        all_to_all(4, 1, 8, &[0, 0, 0, 0]);
    }

    #[test]
    fn single_shard_is_a_no_op() {
        let fabric = ExchangeFabric::with_defaults(1);
        let inbox = fabric.exchange(0, &[1, 2, 3]);
        assert_eq!(inbox.len(), 1);
        assert!(inbox[0].is_empty());
        assert_eq!(fabric.bytes_sent(), 0);
        assert_eq!(fabric.messages_sent(), 0);
    }

    #[test]
    fn accounting_counts_frames_and_messages() {
        let fabric = ExchangeFabric::new(2, 4, 8);
        thread::scope(|scope| {
            let a = scope.spawn(|| fabric.exchange(0, &[0u8; 20]));
            let b = scope.spawn(|| fabric.exchange(1, &[0u8; 4]));
            a.join().unwrap();
            b.join().unwrap();
        });
        // Shard 0: frames of 8+8+4 payload bytes; shard 1: one 4-byte frame.
        assert_eq!(
            fabric.bytes_sent(),
            (20 + 3 * FRAME_HEADER_BYTES + 4 + FRAME_HEADER_BYTES) as u64
        );
        assert_eq!(fabric.messages_sent(), 2);
    }

    #[test]
    fn rounds_accumulate_without_crosstalk() {
        let fabric = ExchangeFabric::new(2, 1, 4);
        for round in 0u8..5 {
            let pa = vec![round; 9];
            let pb = vec![round ^ 0xff; 3];
            thread::scope(|scope| {
                let a = scope.spawn(|| fabric.exchange(0, &pa));
                let b = scope.spawn(|| fabric.exchange(1, &pb));
                assert_eq!(a.join().unwrap()[1], pb);
                assert_eq!(b.join().unwrap()[0], pa);
            });
        }
        assert_eq!(fabric.messages_sent(), 10);
    }
}
