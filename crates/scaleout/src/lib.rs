//! Scale-out Blaze: destination-partitioned execution across machines —
//! an implementation of the extension sketched in Section VI of the paper:
//!
//! > "One potential way to scale out Blaze is to partition the input graph
//! > based on the destination vertex and place each partition in each
//! > machine. This allows a single machine to process only a subset of
//! > edges and vertex-related values, and, more importantly, to propagate
//! > values between scatter and gather threads locally, avoiding the
//! > costly network communications during EDGEMAP execution."
//!
//! Each [`Machine`](cluster::Machine) owns the edges whose *destination* falls in its vertex
//! range, stored as its own page-interleaved `DiskGraph` over its own
//! device array, and runs a full Blaze engine over them. Because the
//! destination ranges are disjoint, every gather is machine-local: bins
//! never cross machines, so `EdgeMap` needs **zero network traffic**. The
//! only cross-machine communication is the iteration-boundary broadcast of
//! newly-activated frontier vertices (and their source values), which
//! [`ClusterStats`] accounts so the network cost of the design can be
//! modeled.

// The unsafe-audit rule (cargo xtask lint) keys off this: crates that
// need no unsafe code forbid it outright, so the audit scope cannot
// silently grow.
#![forbid(unsafe_code)]

pub mod cluster;
pub mod partition;

pub use cluster::{Cluster, ClusterStats};
pub use partition::{partition_by_destination, DstPartition};
